module github.com/parallel-frontend/pfe

go 1.22
