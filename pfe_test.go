package pfe

import (
	"testing"
)

func TestPresetsConstruct(t *testing.T) {
	for _, fe := range AllFrontEnds() {
		m := Preset(fe)
		if m.Name() != string(fe) {
			t.Errorf("preset %s has name %s", fe, m.Name())
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(names))
	}
	if names[0] != "bzip2" || names[11] != "vpr" {
		t.Errorf("unexpected order: %v", names)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nonesuch", Preset(W16), Quick()); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

// TestFrontEndShapeOnGzip checks the paper's core ordering on one small
// benchmark: slot utilization must rank W16 < TC < PF-2x8w < PF-4x4w
// (Fig 4), and every mechanism must beat W16 on IPC (Fig 8's premise).
func TestFrontEndShapeOnGzip(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline calibration")
	}
	res := map[FrontEnd]*Result{}
	for _, fe := range []FrontEnd{W16, TC, PF2x8w, PF4x4w, PR2x8w} {
		r, err := Run("gzip", Preset(fe), Quick())
		if err != nil {
			t.Fatalf("%s: %v", fe, err)
		}
		res[fe] = r
		t.Logf("%s", r)
	}
	if !(res[W16].FetchSlotUtilization < res[TC].FetchSlotUtilization) {
		t.Errorf("utilization W16 (%.2f) !< TC (%.2f)",
			res[W16].FetchSlotUtilization, res[TC].FetchSlotUtilization)
	}
	if !(res[TC].FetchSlotUtilization < res[PF2x8w].FetchSlotUtilization) {
		t.Errorf("utilization TC (%.2f) !< PF-2x8w (%.2f)",
			res[TC].FetchSlotUtilization, res[PF2x8w].FetchSlotUtilization)
	}
	if !(res[PF2x8w].FetchSlotUtilization < res[PF4x4w].FetchSlotUtilization) {
		t.Errorf("utilization PF-2x8w (%.2f) !< PF-4x4w (%.2f)",
			res[PF2x8w].FetchSlotUtilization, res[PF4x4w].FetchSlotUtilization)
	}
	for _, fe := range []FrontEnd{TC, PR2x8w} {
		if res[fe].IPC <= res[W16].IPC {
			t.Errorf("%s IPC %.2f does not beat W16 %.2f", fe, res[fe].IPC, res[W16].IPC)
		}
	}
	if res[PR2x8w].RenameRate <= res[PF2x8w].RenameRate {
		t.Errorf("parallel rename rate %.2f does not beat sequential %.2f",
			res[PR2x8w].RenameRate, res[PF2x8w].RenameRate)
	}
}
