package core

import (
	"time"

	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/rename"
)

// fragState tracks one in-flight fragment between fetch and rename.
type fragState struct {
	ff  *FetchedFrag
	buf *frag.Buffer // pool buffer (parallel fetch only; nil otherwise)

	// effLen is the number of valid instructions: normally the fragment
	// length, shortened when a redirect truncates the fragment at its
	// mispredicted instruction (the correct prefix still renames and
	// commits).
	effLen int

	fetched  int  // instructions available to rename
	complete bool // fetched == effLen

	// missPending marks a fragment with an outstanding parked miss
	// (switch-on-miss policy): no sequencer should pick it up until the
	// fill delivers.
	missPending bool

	// enteredAt is the cycle the fragment entered the queue (buffer
	// residency measurement).
	enteredAt uint64

	renamed   int
	firstRead bool // rename has touched this fragment (for §3.3 stats)

	// renamedAtCycleStart is delayed rename's per-cycle snapshot of
	// renamed, taken before any renamer advances (inter-renamer mapping
	// updates become visible only next cycle).
	renamedAtCycleStart int

	// Parallel rename state.
	phase1Done bool
	loPred     rename.LiveOuts
	loHit      bool
}

func (fs *fragState) len() int { return fs.effLen }

func (fs *fragState) firstSeq() uint64 { return fs.ff.Ops[0].Seq }

// markFetched records newly arrived instructions.
func (fs *fragState) markFetched(n int) {
	fs.fetched += n
	if fs.fetched >= fs.len() {
		fs.fetched = fs.len()
		fs.complete = true
	}
	if fs.buf != nil {
		fs.buf.MarkFetched(n)
	}
}

// renameStage is the rename half of a front-end.
type renameStage interface {
	// cycle consumes available instructions from the program-ordered
	// fragment queue, inserting renamed ops into the back-end. Fully
	// renamed fragments land in the queue's popped list, which the
	// owning Unit drains once per cycle.
	cycle(now uint64, queue *fragQueue)
	// redirect clears any in-progress rename state.
	redirect()
}

// fragQueue is the program-ordered list of in-flight fragments. Fragments
// that finish renaming are moved to popped, which the owning Unit drains
// once per cycle to release fragment buffers — the single place buffers are
// given back, so no pop path can leak them.
type fragQueue struct {
	frags  []*fragState
	popped []*fragState
}

func (q *fragQueue) push(fs *fragState, now uint64) {
	fs.enteredAt = now
	q.frags = append(q.frags, fs)
}
func (q *fragQueue) empty() bool         { return len(q.frags) == 0 }
func (q *fragQueue) at(i int) *fragState { return q.frags[i] }
func (q *fragQueue) size() int           { return len(q.frags) }

// unrenamedOps returns the number of fetched-or-pending instructions not
// yet renamed (fetch back-pressure).
func (q *fragQueue) unrenamedOps() int {
	n := 0
	for _, fs := range q.frags {
		n += fs.len() - fs.renamed
	}
	return n
}

// oldestUnrenamedSeq returns the smallest op seq not yet renamed.
func (q *fragQueue) oldestUnrenamedSeq() (uint64, bool) {
	for _, fs := range q.frags {
		if fs.renamed < fs.len() {
			return fs.ff.Ops[fs.renamed].Seq, true
		}
	}
	return 0, false
}

// removeRenamed pops fully renamed fragments off the front into popped.
func (q *fragQueue) removeRenamed() {
	i := 0
	for i < len(q.frags) && q.frags[i].renamed == q.frags[i].len() {
		q.popped = append(q.popped, q.frags[i])
		i++
	}
	if i > 0 {
		q.frags = q.frags[:copy(q.frags, q.frags[i:])]
	}
}

// drainPopped returns and clears the fragments popped since the last call.
// The returned slice aliases the queue's scratch storage and is valid only
// until the next rename cycle.
func (q *fragQueue) drainPopped() []*fragState {
	p := q.popped
	q.popped = q.popped[:0]
	return p
}

func (q *fragQueue) clear() { q.frags = q.frags[:0] }

// sequentialRename is the monolithic renamer: it drains the oldest fragment
// only, up to width instructions per cycle, switching fragments at most
// once per cycle — §3.4's serialization. An incomplete oldest fragment
// blocks everything younger, which is exactly the head-of-line effect
// parallel rename removes.
type sequentialRename struct {
	width int
	be    Backend
	stats *Stats
	obs   *observer
}

func newSequentialRename(width int, be Backend, stats *Stats, obs *observer) *sequentialRename {
	return &sequentialRename{width: width, be: be, stats: stats, obs: obs}
}

func (sr *sequentialRename) redirect() {}

func (sr *sequentialRename) cycle(now uint64, q *fragQueue) {
	if q.empty() {
		return
	}
	fs := q.at(0)
	if !fs.firstRead {
		// The fragment just reached the head of the queue: sample the
		// §3.3 statistic (was it fully constructed by the time rename
		// asked for it?).
		fs.firstRead = true
		sr.stats.FragReadByRename++
		if fs.complete {
			sr.stats.FragCompleteAtRename++
		}
		// Monolithic rename has no allocation phase; admission to the
		// renamer is its phase 1.
		sr.obs.phase1(now, fs)
	}
	// Rename consumes the oldest fragment's instructions as they arrive
	// (it is a FIFO), but never reads past it into younger fragments: an
	// incomplete oldest fragment — a sequencer still fetching, or stalled
	// on a cache miss — blocks every complete younger fragment behind it
	// (§3.4). That cross-fragment serialization is what parallel rename
	// removes.
	n := fs.fetched - fs.renamed
	if n > sr.width {
		n = sr.width
	}
	if free := sr.be.FreeSlots(); n > free {
		n = free
	}
	start := fs.renamed
	for i := 0; i < n; i++ {
		sr.be.Insert(fs.ff.Ops[fs.renamed])
		fs.renamed++
		sr.stats.Renamed++
	}
	sr.obs.phase2(now, fs, start, n, 0)
	if fs.renamed == fs.len() {
		q.removeRenamed()
	}
}

// parallelRename is the paper's §4 mechanism: phase 1 serial (one fragment
// per cycle, in order, gated on a live-out prediction and reorder-buffer
// space), phase 2 parallel across as many renamers as configured, each
// renaming its fragment at its own width as instructions arrive.
type parallelRename struct {
	n     int
	width int
	be    Backend
	stats *Stats
	obs   *observer
	lo    *rename.LiveOutPredictor
	prof  *obs.StageProf // optional phase-1/phase-2 wall-time attribution

	reserved int // window slots reserved by phase 1, not yet inserted

	// mispredictSquash asks the simulator to squash ops younger than the
	// returned seq; the front-end polls it after cycle().
	squashFrom  uint64
	havePending bool

	// assigned is the per-cycle renamer-assignment scratch, reused across
	// cycles.
	assigned []*fragState
}

func newParallelRename(n, width int, lo *rename.LiveOutPredictor, be Backend, stats *Stats, obs *observer) *parallelRename {
	return &parallelRename{n: n, width: width, be: be, stats: stats, obs: obs, lo: lo}
}

func (pr *parallelRename) redirect() {
	pr.reserved = 0
	pr.havePending = false
}

// takeSquash returns a pending live-out-misprediction squash request.
func (pr *parallelRename) takeSquash() (uint64, bool) {
	if !pr.havePending {
		return 0, false
	}
	pr.havePending = false
	return pr.squashFrom, true
}

func (pr *parallelRename) cycle(now uint64, q *fragQueue) {
	// Sampled self-profiling: on sampled cycles the serial allocation
	// phase and the concurrent renaming phase are timed separately
	// (their sum is a sub-breakdown of the Unit-level rename time).
	profiled := pr.prof.Sampled(now)
	var tP1, tP2 time.Time
	if profiled {
		tP1 = time.Now()
	}

	// Phase 1: the oldest fragment without it, strictly in order.
	for i := 0; i < q.size(); i++ {
		fs := q.at(i)
		if fs.phase1Done {
			continue
		}
		lo, hit := pr.lo.Predict(fs.ff.Frag.ID)
		if !hit {
			// Unpredicted fragment: fall back to serial rename —
			// phase 1 may only proceed once every older fragment
			// is fully renamed, at which point the true live-outs
			// are computable (the paper's conservative path).
			pr.stats.LiveOutMisses++
			if i != 0 || fs.renamed != 0 {
				// Can't serialize yet; phase 1 stalls entirely
				// (it is in-order).
				goto phase2
			}
			lo = rename.ComputeLiveOuts(fs.ff.Frag.Insts)
			hit = true
		}
		if pr.be.FreeSlots()-pr.reserved < fs.len() {
			goto phase2 // no reorder-buffer space: phase 1 stalls
		}
		fs.loPred = lo
		fs.loHit = hit
		fs.phase1Done = true
		pr.reserved += fs.len()
		pr.stats.LiveOutPredicted++
		pr.obs.phase1(now, fs)
		break // one fragment per cycle
	}

phase2:
	if profiled {
		tP2 = time.Now()
		pr.prof.Add(obs.StageRenameP1, tP2.Sub(tP1))
	}
	// Phase 2: the renamers take the oldest phase-1-complete fragments
	// that still have instructions to rename, one fragment per renamer,
	// and advance concurrently.
	assigned := pr.assigned[:0]
	for i := 0; i < q.size() && len(assigned) < pr.n; i++ {
		fs := q.at(i)
		if !fs.phase1Done || fs.renamed == fs.len() {
			continue
		}
		assigned = append(assigned, fs)
	}
	pr.assigned = assigned

	oldestUnrenamed, haveOldest := q.oldestUnrenamedSeq()
	for lane, fs := range assigned {
		if !fs.firstRead {
			fs.firstRead = true
			pr.stats.FragReadByRename++
			if fs.complete {
				pr.stats.FragCompleteAtRename++
			}
		}
		n := fs.fetched - fs.renamed
		if n > pr.width {
			n = pr.width
		}
		start := fs.renamed
		for i := 0; i < n; i++ {
			op := fs.ff.Ops[fs.renamed]
			if haveOldest {
				for p := 0; p < op.NProd; p++ {
					if op.Producers[p] >= oldestUnrenamed && op.Producers[p] < op.Seq {
						pr.stats.InstrsRenamedBeforeSource++
						break
					}
				}
			}
			pr.be.Insert(op)
			fs.renamed++
			pr.reserved--
			pr.stats.Renamed++
		}
		pr.obs.phase2(now, fs, start, n, lane)
		if fs.renamed == fs.len() {
			pr.finishFragment(fs, q)
		}
	}
	// A live-out misprediction detected this cycle must reset every
	// younger fragment BEFORE the pop below, or a younger fragment that
	// also finished this cycle would leave the queue with its ops
	// squashed from the window but never re-renamed.
	if pr.havePending {
		for i := 0; i < q.size(); i++ {
			fs := q.at(i)
			if fs.firstSeq() < pr.squashFrom {
				continue
			}
			fs.renamed = 0
			fs.phase1Done = false
			for _, op := range fs.ff.Ops[:fs.len()] {
				op.ResetExec()
			}
		}
	}
	q.removeRenamed()
	if profiled {
		pr.prof.Add(obs.StageRenameP2, time.Since(tP2))
	}
}

// finishFragment verifies the live-out prediction against the fragment's
// actual writes (§4.3) and trains the predictor. A detected misprediction
// requests a squash of every younger fragment.
func (pr *parallelRename) finishFragment(fs *fragState, q *fragQueue) {
	actual := rename.ComputeLiveOuts(fs.ff.Frag.Insts)
	if fs.loHit {
		if kind := rename.CheckPrediction(fs.loPred, fs.ff.Frag.Insts); kind != rename.PredictionCorrect {
			pr.stats.LiveOutMispredict++
			// Squash all future fragments: they may have consumed
			// wrong mappings.
			for i := 0; i < q.size(); i++ {
				if other := q.at(i); other.firstSeq() > fs.firstSeq() {
					pr.requestSquash(other.firstSeq())
					break
				}
			}
		}
	}
	pr.lo.Train(fs.ff.Frag.ID, actual)
}

func (pr *parallelRename) requestSquash(seq uint64) {
	if !pr.havePending || seq < pr.squashFrom {
		pr.squashFrom = seq
		pr.havePending = true
	}
}

// recomputeReserved rebuilds the reservation counter after a live-out
// misprediction squash reset younger fragments' rename progress.
func (pr *parallelRename) recomputeReserved(q *fragQueue) {
	pr.reserved = 0
	for i := 0; i < q.size(); i++ {
		if fs := q.at(i); fs.phase1Done {
			pr.reserved += fs.len() - fs.renamed
		}
	}
}
