package core

import (
	"fmt"
	"time"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/pool"
	"github.com/parallel-frontend/pfe/internal/rename"
	"github.com/parallel-frontend/pfe/internal/tcache"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// ExecBackend is the back-end contract the front-ends drive.
type ExecBackend interface {
	FreeSlots() int
	Insert(op *backend.Op)
	SquashFrom(seq uint64) int
	// SetCommitBarrier communicates the lowest op sequence rename has
	// not yet delivered (^uint64(0) = none outstanding): commit must not
	// pass an allocated-but-unwritten reorder-buffer slot.
	SetCommitBarrier(seq uint64)
	// OldestSeq returns the sequence number of the oldest op still in
	// the window (ok=false when empty). The front-end uses it to decide
	// when a renamed fragment's op storage can be recycled.
	OldestSeq() (uint64, bool)
}

// retiredFrag is a fully renamed fragment whose op storage is waiting for
// the back-end to finish with its ops before the FetchedFrag is recycled.
type retiredFrag struct {
	ff       *FetchedFrag
	firstSeq uint64
	lastSeq  uint64
}

// Unit is a complete front-end: a fetch engine composed with a rename
// stage over a shared fragment queue.
type Unit struct {
	cfg    Config
	stream *Stream
	engine fetchEngine
	stage  renameStage
	queue  fragQueue
	pool   *frag.Pool // parallel fetch only
	tc     *tcache.Cache
	be     ExecBackend
	stats  Stats
	obs    observer
	prof   *obs.StageProf

	fetchAllowedAt uint64
	pr             *parallelRename // non-nil when rename is parallel

	fsp *fsPool // recycles fragState entries

	// retireq is the FIFO of fully renamed fragments whose FetchedFrags
	// (and inline op storage) are still referenced by the back-end window
	// or the stream's previous-fragment pointer. drainRetired recycles
	// entries once both references have moved past them.
	retireq    []retiredFrag
	retireHead int

	// drops is the per-redirect scratch of fully-younger dropped
	// fragments, recycled after the engine and stage drop their refs.
	drops []*fragState
}

// NewUnit builds the front-end described by cfg over the given stream,
// instruction-cache path and back-end.
func NewUnit(cfg Config, stream *Stream, ic *ICache, be ExecBackend) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{cfg: cfg, stream: stream, be: be, prof: cfg.Prof, fsp: newFSPool()}
	u.obs = observer{sink: cfg.Sink, met: cfg.Metrics}
	stream.Attach(cfg.Sink, cfg.Metrics)

	switch cfg.Fetch {
	case FetchSequential:
		u.engine = newSeqFetch(ic, stream, &u.stats, &u.obs, u.fsp, cfg.FetchWidth)
	case FetchTraceCache:
		u.tc = cfg.TC
		if u.tc == nil {
			u.tc = tcache.New(tcache.Config{SizeBytes: cfg.TraceCache, Ways: 2})
		}
		u.engine = newTCFetch(ic, u.tc, stream, &u.stats, &u.obs, u.fsp, cfg.FetchWidth)
	case FetchParallel:
		u.pool = frag.NewPool(cfg.FragBuffers)
		u.engine = newPFFetch(ic, stream, &u.stats, &u.obs, u.pool, u.fsp, cfg.Sequencers, cfg.SeqWidth, cfg.SwitchOnMiss)
	default:
		return nil, fmt.Errorf("core: unknown fetch kind %v", cfg.Fetch)
	}

	switch cfg.Rename {
	case RenameSequential:
		u.stage = newSequentialRename(cfg.RenameWidth, be, &u.stats, &u.obs)
	case RenameParallel:
		lo := cfg.LiveOutPred
		if lo == nil {
			lo = rename.NewLiveOutPredictor(cfg.LiveOut)
		}
		u.pr = newParallelRename(cfg.Renamers, cfg.RenWidth, lo, be, &u.stats, &u.obs)
		u.pr.prof = cfg.Prof
		u.stage = u.pr
	case RenameDelayed:
		u.stage = newDelayedRename(cfg.Renamers, cfg.RenWidth, be, &u.stats, &u.obs)
	default:
		return nil, fmt.Errorf("core: unknown rename kind %v", cfg.Rename)
	}
	return u, nil
}

// Stats exposes the front-end counters.
func (u *Unit) Stats() *Stats { return &u.stats }

// TraceCache exposes the trace cache (nil for non-TC front-ends).
func (u *Unit) TraceCache() *tcache.Cache { return u.tc }

// Pool exposes the fragment buffer pool (nil unless parallel fetch).
func (u *Unit) Pool() *frag.Pool { return u.pool }

// Cycle advances fetch then rename by one cycle. On sampled cycles (see
// obs.StageProf) the two halves are timed for host-side wall-time
// attribution; everywhere else the profiler costs a single branch.
func (u *Unit) Cycle(now uint64) {
	u.stats.Cycles++
	u.stream.Tick(now)
	if u.prof.Sampled(now) {
		t0 := time.Now()
		u.cycleFetch(now)
		t1 := time.Now()
		u.cycleRename(now)
		u.prof.Add(obs.StageFetch, t1.Sub(t0))
		u.prof.Add(obs.StageRename, time.Since(t1))
		return
	}
	u.cycleFetch(now)
	u.cycleRename(now)
}

// cycleFetch is the fetch half of a cycle.
func (u *Unit) cycleFetch(now uint64) {
	if now >= u.fetchAllowedAt {
		u.engine.cycle(now, &u.queue)
	}
}

// cycleRename is the rename half of a cycle: the rename stage itself plus
// the queue and squash bookkeeping that follows it.
func (u *Unit) cycleRename(now uint64) {
	u.stage.cycle(now, &u.queue)
	if seq, ok := u.queue.oldestUnrenamedSeq(); ok {
		u.be.SetCommitBarrier(seq)
	} else {
		u.be.SetCommitBarrier(^uint64(0))
	}
	for _, fs := range u.queue.drainPopped() {
		u.obs.retired(now, fs)
		if fs.buf != nil {
			u.pool.Release(fs.buf)
		}
		// The fragState itself is done — no fetch engine holds a
		// reference to a complete fragment (sequencers detach eagerly) —
		// but the FetchedFrag's inline op storage is still live in the
		// back-end window; park it until the window drains past it. The
		// first/last range uses the FULL op span (not effLen): a
		// redirect-truncated fragment's dropped tail ops were squashed,
		// but the stream's prevLastOp may still point into it.
		ff := fs.ff
		u.retireq = append(u.retireq, retiredFrag{
			ff:       ff,
			firstSeq: ff.Ops[0].Seq,
			lastSeq:  ff.Ops[len(ff.Ops)-1].Seq,
		})
		u.fsp.recycle(fs)
	}
	u.drainRetired()
	// Live-out misprediction recovery: the rename stage has already reset
	// every younger fragment's rename progress (§4.3: "on a misprediction,
	// all future fragments are squashed"); remove their ops from the
	// window and rebuild the reservation counter.
	if u.pr != nil {
		if seq, ok := u.pr.takeSquash(); ok {
			n := u.be.SquashFrom(seq)
			u.obs.squash(now, seq, n, trace.CauseLiveOutMispredict)
			u.pr.recomputeReserved(&u.queue)
		}
	}
}

// drainRetired recycles FetchedFrags whose ops the back-end has finished
// with. The retire queue is in program order and the blockers (window
// occupancy, the stream's previous-fragment pointer) only move forward, so
// the scan stops at the first entry that is still referenced.
func (u *Unit) drainRetired() {
	oldest, haveOldest := u.be.OldestSeq()
	for u.retireHead < len(u.retireq) {
		rf := u.retireq[u.retireHead]
		if haveOldest && oldest <= rf.lastSeq {
			break // an op of this fragment is still in the window
		}
		if pl, ok := u.stream.PrevLastSeq(); ok && pl >= rf.firstSeq && pl <= rf.lastSeq {
			break // the stream still reads this fragment's last op
		}
		u.stream.RecycleFrag(rf.ff)
		u.retireq[u.retireHead] = retiredFrag{}
		u.retireHead++
	}
	if u.retireHead == len(u.retireq) {
		u.retireq = u.retireq[:0]
		u.retireHead = 0
	} else if u.retireHead >= 64 {
		n := copy(u.retireq, u.retireq[u.retireHead:])
		tail := u.retireq[n:]
		for i := range tail {
			tail[i] = retiredFrag{}
		}
		u.retireq = u.retireq[:n]
		u.retireHead = 0
	}
}

// Drained reports whether every fetched instruction has been renamed and
// handed to the back-end.
func (u *Unit) Drained() bool { return u.queue.unrenamedOps() == 0 }

// Redirect recovers the front-end after the back-end resolved the
// mispredicted instruction with the given sequence number: younger
// fragments are dropped, the fragment containing the culprit is truncated
// to its correct prefix, and fetch pauses for the configured pipeline
// bubble.
func (u *Unit) Redirect(now uint64, culpritSeq uint64) {
	u.stats.Redirects++
	kept := u.queue.frags[:0]
	drops := u.drops[:0]
	for _, fs := range u.queue.frags {
		first := fs.ff.Ops[0].Seq
		last := fs.ff.Ops[len(fs.ff.Ops)-1].Seq
		switch {
		case last <= culpritSeq:
			kept = append(kept, fs)
		case first > culpritSeq:
			// Fully younger: dropped. Its buffer is squashed below; the
			// fragState and FetchedFrag are recycled once the engine and
			// stage have dropped their references (the simulator squashed
			// its ops from the window before calling Redirect, and the
			// stream cleared its previous-fragment pointer).
			drops = append(drops, fs)
		default:
			// Contains the culprit: truncate to the correct prefix.
			n := int(culpritSeq-first) + 1
			fs.effLen = n
			if fs.fetched > n {
				fs.fetched = n
			}
			if fs.renamed > n {
				fs.renamed = n
			}
			fs.complete = fs.fetched == n
			kept = append(kept, fs)
		}
	}
	u.queue.frags = kept
	if u.pool != nil {
		u.pool.SquashYounger(culpritSeq + 1)
	}
	u.engine.redirect()
	u.stage.redirect()
	for i, fs := range drops {
		u.stream.RecycleFrag(fs.ff)
		u.fsp.recycle(fs)
		drops[i] = nil
	}
	u.drops = drops[:0]
	if u.pr != nil {
		u.pr.recomputeReserved(&u.queue)
	}
	u.fetchAllowedAt = now + uint64(u.cfg.RedirectBubble)
}

// PoolStats aggregates the Unit's free-list traffic: fragState recycling
// plus the stream's FetchedFrag recycling.
func (u *Unit) PoolStats() pool.Stats {
	s := u.fsp.fl.Stats()
	s.Add(u.stream.PoolStats())
	return s
}
