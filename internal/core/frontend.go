package core

import (
	"fmt"
	"time"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/rename"
	"github.com/parallel-frontend/pfe/internal/tcache"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// ExecBackend is the back-end contract the front-ends drive.
type ExecBackend interface {
	FreeSlots() int
	Insert(op *backend.Op)
	SquashFrom(seq uint64) int
	// SetCommitBarrier communicates the lowest op sequence rename has
	// not yet delivered (^uint64(0) = none outstanding): commit must not
	// pass an allocated-but-unwritten reorder-buffer slot.
	SetCommitBarrier(seq uint64)
}

// Unit is a complete front-end: a fetch engine composed with a rename
// stage over a shared fragment queue.
type Unit struct {
	cfg    Config
	stream *Stream
	engine fetchEngine
	stage  renameStage
	queue  fragQueue
	pool   *frag.Pool // parallel fetch only
	tc     *tcache.Cache
	be     ExecBackend
	stats  Stats
	obs    observer
	prof   *obs.StageProf

	fetchAllowedAt uint64
	pr             *parallelRename // non-nil when rename is parallel
}

// NewUnit builds the front-end described by cfg over the given stream,
// instruction-cache path and back-end.
func NewUnit(cfg Config, stream *Stream, ic *ICache, be ExecBackend) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Unit{cfg: cfg, stream: stream, be: be, prof: cfg.Prof}
	u.obs = observer{sink: cfg.Sink, met: cfg.Metrics}
	stream.Attach(cfg.Sink, cfg.Metrics)

	switch cfg.Fetch {
	case FetchSequential:
		u.engine = newSeqFetch(ic, stream, &u.stats, &u.obs, cfg.FetchWidth)
	case FetchTraceCache:
		u.tc = tcache.New(tcache.Config{SizeBytes: cfg.TraceCache, Ways: 2})
		u.engine = newTCFetch(ic, u.tc, stream, &u.stats, &u.obs, cfg.FetchWidth)
	case FetchParallel:
		u.pool = frag.NewPool(cfg.FragBuffers)
		u.engine = newPFFetch(ic, stream, &u.stats, &u.obs, u.pool, cfg.Sequencers, cfg.SeqWidth, cfg.SwitchOnMiss)
	default:
		return nil, fmt.Errorf("core: unknown fetch kind %v", cfg.Fetch)
	}

	switch cfg.Rename {
	case RenameSequential:
		u.stage = newSequentialRename(cfg.RenameWidth, be, &u.stats, &u.obs)
	case RenameParallel:
		lo := rename.NewLiveOutPredictor(cfg.LiveOut)
		u.pr = newParallelRename(cfg.Renamers, cfg.RenWidth, lo, be, &u.stats, &u.obs)
		u.pr.prof = cfg.Prof
		u.stage = u.pr
	case RenameDelayed:
		u.stage = newDelayedRename(cfg.Renamers, cfg.RenWidth, be, &u.stats, &u.obs)
	default:
		return nil, fmt.Errorf("core: unknown rename kind %v", cfg.Rename)
	}
	return u, nil
}

// Stats exposes the front-end counters.
func (u *Unit) Stats() *Stats { return &u.stats }

// TraceCache exposes the trace cache (nil for non-TC front-ends).
func (u *Unit) TraceCache() *tcache.Cache { return u.tc }

// Pool exposes the fragment buffer pool (nil unless parallel fetch).
func (u *Unit) Pool() *frag.Pool { return u.pool }

// Cycle advances fetch then rename by one cycle. On sampled cycles (see
// obs.StageProf) the two halves are timed for host-side wall-time
// attribution; everywhere else the profiler costs a single branch.
func (u *Unit) Cycle(now uint64) {
	u.stats.Cycles++
	u.stream.Tick(now)
	if u.prof.Sampled(now) {
		t0 := time.Now()
		u.cycleFetch(now)
		t1 := time.Now()
		u.cycleRename(now)
		u.prof.Add(obs.StageFetch, t1.Sub(t0))
		u.prof.Add(obs.StageRename, time.Since(t1))
		return
	}
	u.cycleFetch(now)
	u.cycleRename(now)
}

// cycleFetch is the fetch half of a cycle.
func (u *Unit) cycleFetch(now uint64) {
	if now >= u.fetchAllowedAt {
		u.engine.cycle(now, &u.queue)
	}
}

// cycleRename is the rename half of a cycle: the rename stage itself plus
// the queue and squash bookkeeping that follows it.
func (u *Unit) cycleRename(now uint64) {
	u.stage.cycle(now, &u.queue)
	if seq, ok := u.queue.oldestUnrenamedSeq(); ok {
		u.be.SetCommitBarrier(seq)
	} else {
		u.be.SetCommitBarrier(^uint64(0))
	}
	for _, fs := range u.queue.drainPopped() {
		u.obs.retired(now, fs)
		if fs.buf != nil {
			u.pool.Release(fs.buf)
		}
	}
	// Live-out misprediction recovery: the rename stage has already reset
	// every younger fragment's rename progress (§4.3: "on a misprediction,
	// all future fragments are squashed"); remove their ops from the
	// window and rebuild the reservation counter.
	if u.pr != nil {
		if seq, ok := u.pr.takeSquash(); ok {
			n := u.be.SquashFrom(seq)
			u.obs.squash(now, seq, n, trace.CauseLiveOutMispredict)
			u.pr.recomputeReserved(&u.queue)
		}
	}
}

// Drained reports whether every fetched instruction has been renamed and
// handed to the back-end.
func (u *Unit) Drained() bool { return u.queue.unrenamedOps() == 0 }

// Redirect recovers the front-end after the back-end resolved the
// mispredicted instruction with the given sequence number: younger
// fragments are dropped, the fragment containing the culprit is truncated
// to its correct prefix, and fetch pauses for the configured pipeline
// bubble.
func (u *Unit) Redirect(now uint64, culpritSeq uint64) {
	u.stats.Redirects++
	kept := u.queue.frags[:0]
	for _, fs := range u.queue.frags {
		first := fs.ff.Ops[0].Seq
		last := fs.ff.Ops[len(fs.ff.Ops)-1].Seq
		switch {
		case last <= culpritSeq:
			kept = append(kept, fs)
		case first > culpritSeq:
			// Fully younger: dropped. Its buffer is squashed below.
		default:
			// Contains the culprit: truncate to the correct prefix.
			n := int(culpritSeq-first) + 1
			fs.effLen = n
			if fs.fetched > n {
				fs.fetched = n
			}
			if fs.renamed > n {
				fs.renamed = n
			}
			fs.complete = fs.fetched == n
			kept = append(kept, fs)
		}
	}
	u.queue.frags = kept
	if u.pool != nil {
		u.pool.SquashYounger(culpritSeq + 1)
	}
	u.engine.redirect()
	u.stage.redirect()
	if u.pr != nil {
		u.pr.recomputeReserved(&u.queue)
	}
	u.fetchAllowedAt = now + uint64(u.cfg.RedirectBubble)
}
