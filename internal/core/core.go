// Package core implements the paper's contribution: the front-ends. Four
// mechanisms are modelled behind one interface, all driven by the same
// fragment predictor and the same selection heuristics so the comparison is
// exactly the paper's:
//
//	W16  — a 16-wide sequential fetch unit (§5: the baseline): fetches up
//	       to 16 sequential instructions per cycle, stopping at taken
//	       branches and cache-line boundaries, with a monolithic renamer.
//	TC   — a trace cache (§5: TC/TC2x): supplies a whole trace per cycle
//	       on a hit; misses fall back to the W16 mechanism and fill.
//	PF   — parallel fetch (§3): multiple narrow sequencers fetch multiple
//	       predicted fragments concurrently through a banked instruction
//	       cache into fragment buffers (with reuse), but rename remains
//	       sequential — the serialization §3.4 identifies.
//	PR   — PF plus the parallel two-phase renamer with live-out
//	       prediction (§4). The parallel renamer also composes with the
//	       trace-cache fetch engine (§4.4), which is Fig 6's experiment.
//
// A front-end is a fetch engine composed with a rename stage; both
// dimensions are selectable independently, mirroring §4.4's observation that
// parallel renaming only requires fragment buffers, not parallel fetch.
package core

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/metrics"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/rename"
	"github.com/parallel-frontend/pfe/internal/tcache"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// FetchKind selects the fetch engine.
type FetchKind int

const (
	FetchSequential FetchKind = iota // W16-style wide sequential fetch
	FetchTraceCache                  // trace cache with sequential fallback
	FetchParallel                    // multiple sequencers + fragment buffers
)

// String names the fetch kind.
func (k FetchKind) String() string {
	switch k {
	case FetchSequential:
		return "sequential"
	case FetchTraceCache:
		return "trace-cache"
	case FetchParallel:
		return "parallel"
	}
	return fmt.Sprintf("fetch(%d)", int(k))
}

// RenameKind selects the rename stage.
type RenameKind int

const (
	RenameSequential RenameKind = iota // monolithic in-order renamer
	RenameParallel                     // multiple renamers + live-out prediction
	// RenameDelayed is §4's "first solution" (Multiscalar-style):
	// multiple renamers with no live-out prediction; instructions whose
	// cross-fragment source mappings are not yet available are delayed.
	RenameDelayed
)

// String names the rename kind.
func (k RenameKind) String() string {
	switch k {
	case RenameSequential:
		return "sequential"
	case RenameParallel:
		return "parallel"
	case RenameDelayed:
		return "delayed"
	}
	return fmt.Sprintf("rename(%d)", int(k))
}

// Config describes one front-end. Presets for the paper's configurations
// live in the public pfe package.
type Config struct {
	Name   string
	Fetch  FetchKind
	Rename RenameKind

	// FetchWidth is the aggregate fetch width (16 in every paper config).
	FetchWidth int

	// TraceCache sizes the trace cache (FetchTraceCache only).
	TraceCache int // bytes

	// Sequencers and SeqWidth shape the parallel fetch unit
	// (FetchParallel only): PF-2x8w is 2×8, PF-4x4w is 4×4.
	Sequencers int
	SeqWidth   int

	// FragBuffers is the number of fragment buffers (Table 1: 16).
	FragBuffers int

	// SwitchOnMiss enables §2.2's optional sequencer policy: on an
	// instruction-cache miss the sequencer parks its fragment and
	// fetches a different one while the fill completes.
	SwitchOnMiss bool

	// Renamers and RenWidth shape the parallel rename unit
	// (RenameParallel only): PR-2x8w is 2×8, PR-4x4w is 4×4.
	Renamers int
	RenWidth int

	// RenameWidth is the monolithic renamer's width (RenameSequential).
	RenameWidth int

	// FragHeuristics parameterizes fragment selection (zero value =
	// the paper's 16-instruction, cutoff-8 heuristics).
	FragHeuristics frag.Heuristics

	// Predictor configures the shared fragment/trace predictor.
	Predictor bpred.Config

	// LiveOut configures the live-out predictor (RenameParallel only).
	LiveOut rename.LiveOutPredictorConfig

	// RedirectBubble is the number of dead cycles between a resolved
	// misprediction and the first new prediction (front-end pipeline
	// refill).
	RedirectBubble int

	// Sink, if non-nil, receives a typed trace event for every pipeline
	// occurrence in this front-end (fetch deliveries, rename phases,
	// live-out squashes; see internal/trace). A nil sink costs one
	// pointer check per emit site.
	Sink trace.Sink

	// Metrics, if non-nil, accumulates the pipeline histograms observed
	// at fragment granularity (buffer residency, squash depth). sim.Run
	// always attaches one.
	Metrics *metrics.Pipeline

	// Prof, if non-nil, attributes the simulator's own wall time to
	// pipeline stages via sampled timers (see internal/obs): fetch and
	// rename at the Unit level, plus the parallel renamer's phase-1/
	// phase-2 split. A nil profiler costs one branch per cycle.
	Prof *obs.StageProf

	// LiveOutPred, if non-nil, is an externally built live-out predictor
	// used instead of constructing one from LiveOut (RenameParallel only)
	// — the seam through which sampled and time-parallel runs carry
	// functionally trained predictor state into a detailed window. It must
	// not be shared with a concurrent run.
	LiveOutPred *rename.LiveOutPredictor

	// TC, if non-nil, is an externally built trace cache used instead of
	// constructing one from TraceCache (FetchTraceCache only) — the same
	// warmed-state seam as LiveOutPred.
	TC *tcache.Cache
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0:
		return fmt.Errorf("core: %s: FetchWidth must be positive", c.Name)
	case c.Fetch == FetchParallel && (c.Sequencers <= 0 || c.SeqWidth <= 0):
		return fmt.Errorf("core: %s: parallel fetch needs sequencers", c.Name)
	case c.Fetch == FetchParallel && c.FragBuffers <= 0:
		return fmt.Errorf("core: %s: parallel fetch needs fragment buffers", c.Name)
	case (c.Rename == RenameParallel || c.Rename == RenameDelayed) && (c.Renamers <= 0 || c.RenWidth <= 0):
		return fmt.Errorf("core: %s: parallel rename needs renamers", c.Name)
	case c.Rename == RenameSequential && c.RenameWidth <= 0:
		return fmt.Errorf("core: %s: sequential rename needs a width", c.Name)
	case c.Fetch == FetchTraceCache && c.TraceCache <= 0:
		return fmt.Errorf("core: %s: trace-cache fetch needs a size", c.Name)
	}
	return nil
}

// Stats is the front-end side of the measurement contract: the counters
// behind Fig 4 (fetch slots), Fig 5 (fetch/rename rates) and the §3.2/§3.3
// claims (buffer reuse, fragment construction).
type Stats struct {
	Cycles uint64

	// Fetch-slot accounting (§5.1). Slots accumulate Width per active
	// sequencer cycle; FetchedFromCache counts instructions delivered
	// through the instruction-cache path (or trace-cache hit) against
	// those slots.
	FetchSlots       int64
	FetchedFromCache int64

	// Fetched counts every instruction delivered by the fetch unit
	// (including buffer reuse), wrong-path included — Fig 5's fetch rate.
	Fetched int64

	// Renamed counts instructions leaving the rename stage, wrong-path
	// included — Fig 5's rename rate.
	Renamed int64

	// Fragment buffer behaviour.
	FragAllocs           int64
	FragReuses           int64
	FragCompleteAtRename int64 // fragments already complete when rename first read them
	FragReadByRename     int64

	// Live-out predictor behaviour (parallel rename only).
	LiveOutPredicted  int64
	LiveOutMispredict int64
	LiveOutMisses     int64

	// BankConflicts counts sequencer-cycles lost entirely to
	// instruction-cache bank conflicts; ConflictTrunc counts fetch groups
	// truncated by a conflict mid-group.
	BankConflicts int64
	ConflictTrunc int64

	// Redirects taken by this front-end.
	Redirects int64

	// InstrsRenamedBeforeSource counts instructions renamed before the
	// producer of at least one of their sources (§5.2's 4–12% claim).
	InstrsRenamedBeforeSource int64

	// DelayedForMapping counts rename slots lost waiting for an older
	// fragment's register mapping (RenameDelayed only).
	DelayedForMapping int64
}

// Add accumulates o's counters into s — the piecewise aggregation behind
// sampled and time-parallel runs, where one logical run's statistics are the
// sum of its windows' or slices'.
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.FetchSlots += o.FetchSlots
	s.FetchedFromCache += o.FetchedFromCache
	s.Fetched += o.Fetched
	s.Renamed += o.Renamed
	s.FragAllocs += o.FragAllocs
	s.FragReuses += o.FragReuses
	s.FragCompleteAtRename += o.FragCompleteAtRename
	s.FragReadByRename += o.FragReadByRename
	s.LiveOutPredicted += o.LiveOutPredicted
	s.LiveOutMispredict += o.LiveOutMispredict
	s.LiveOutMisses += o.LiveOutMisses
	s.BankConflicts += o.BankConflicts
	s.ConflictTrunc += o.ConflictTrunc
	s.Redirects += o.Redirects
	s.InstrsRenamedBeforeSource += o.InstrsRenamedBeforeSource
	s.DelayedForMapping += o.DelayedForMapping
}

// SlotUtilization returns FetchedFromCache/FetchSlots (Fig 4).
func (s *Stats) SlotUtilization() float64 {
	if s.FetchSlots == 0 {
		return 0
	}
	return float64(s.FetchedFromCache) / float64(s.FetchSlots)
}

// FetchRate and RenameRate return per-cycle rates (Fig 5).
func (s *Stats) FetchRate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Fetched) / float64(s.Cycles)
}

func (s *Stats) RenameRate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Renamed) / float64(s.Cycles)
}

// ReuseRate returns the fraction of fragment allocations satisfied by
// buffer reuse (§3.2: 20–70%).
func (s *Stats) ReuseRate() float64 {
	if s.FragAllocs == 0 {
		return 0
	}
	return float64(s.FragReuses) / float64(s.FragAllocs)
}

// ConstructedBeforeRename returns the fraction of fragments fully fetched
// by the time rename first read them (§3.3: 84%).
func (s *Stats) ConstructedBeforeRename() float64 {
	if s.FragReadByRename == 0 {
		return 0
	}
	return float64(s.FragCompleteAtRename) / float64(s.FragReadByRename)
}

// FrontEnd is one fetch+rename mechanism coupled to a back-end.
type FrontEnd interface {
	// Cycle advances the front-end one cycle: fetch, rename, and insert
	// renamed ops into the back-end window.
	Cycle(now uint64)

	// Redirect squashes all speculative front-end state and restarts
	// fetch on the corrected path (the stream has already been rewound).
	Redirect(now uint64)

	// Stats exposes the measurement counters.
	Stats() *Stats

	// Drained reports whether the front-end holds no unrenamed
	// instructions (used at end of program).
	Drained() bool
}

// Backend is the narrow view of the execution engine the front-ends need.
type Backend interface {
	FreeSlots() int
	Insert(op *backend.Op)
}

// ICache bundles the instruction-cache path handed to fetch engines.
type ICache struct {
	L1I   *mem.Cache
	Banks int
}

// IBankOf returns the bank serving addr.
func (ic *ICache) IBankOf(addr uint64) int {
	if ic.Banks <= 1 {
		return 0
	}
	return int(ic.L1I.BlockOf(addr)) & (ic.Banks - 1)
}
