package core

import (
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/pool"
	"github.com/parallel-frontend/pfe/internal/tcache"
)

// fsPool recycles fragState entries for one Unit. newFragState performs the
// full-struct reset (the composite literal zeroes every recycled field), so
// a reused entry is indistinguishable from a fresh one.
type fsPool struct{ fl *pool.FreeList[fragState] }

func newFSPool() *fsPool { return &fsPool{fl: pool.NewFreeList[fragState](nil)} }

func (p *fsPool) newFragState(ff *FetchedFrag) *fragState {
	fs := p.fl.Get()
	*fs = fragState{ff: ff, effLen: len(ff.Ops)}
	return fs
}

func (p *fsPool) recycle(fs *fragState) { p.fl.Put(fs) }

// fetchEngine is the fetch half of a front-end: it pulls fragments from the
// stream (respecting its own prediction-rate limit), moves their
// instructions through the instruction-cache path, and marks them fetched
// in the fragment queue.
type fetchEngine interface {
	cycle(now uint64, q *fragQueue)
	redirect()
}

// lineWords is the number of instructions per cache line (64-byte blocks).
const lineWords = 16

// deliver marks n instructions of fs as fetched, charges the delivery
// statistics shared by every fetch path, and emits the fetch event.
// fromCache distinguishes the instruction-cache/trace-cache path (counted
// against fetch slots in Fig 4) from buffer reuse, which spends no cache
// bandwidth. lane is the delivering sequencer (0 for monolithic engines).
func deliver(st *Stats, obs *observer, now uint64, fs *fragState, n, lane int, fromCache bool) {
	if n == 0 {
		return
	}
	start := fs.fetched
	fs.markFetched(n)
	st.Fetched += int64(n)
	if fromCache {
		st.FetchedFromCache += int64(n)
	}
	obs.fetched(now, fs, start, n, lane)
}

// lineOf returns the line-aligned address containing pc.
func lineOf(pc uint64) uint64 { return pc &^ (lineWords*isa.InstBytes - 1) }

// runLen computes how many instructions a sequential fetch can take from
// fragment fs starting at index start this cycle: bounded by max, by the
// cache line containing the first instruction, and by taken control
// transfers (a transfer is taken when the next instruction's address is not
// sequential).
func runLen(fs *fragState, start, max int) int {
	pcs := fs.ff.Frag.PCs
	line := lineOf(pcs[start])
	n := 0
	for start+n < fs.len() && n < max {
		pc := pcs[start+n]
		if lineOf(pc) != line {
			break
		}
		n++
		// Stop after a taken transfer (the next instruction is not
		// sequential). The last instruction of a fragment ends the
		// run regardless.
		if start+n < fs.len() && pcs[start+n] != pc+isa.InstBytes {
			break
		}
	}
	return n
}

// seqFetch is the W16 fetch engine: one line per cycle, up to width
// instructions, stopping at taken branches and line boundaries. It pulls as
// many fragment predictions per cycle as it needs — the paper's W16 has "no
// restriction on the number of branch predictions in a cycle".
type seqFetch struct {
	ic     *ICache
	stream *Stream
	stats  *Stats
	obs    *observer
	fsp    *fsPool
	width  int
	qcap   int // max unrenamed instructions buffered ahead of rename

	stallUntil uint64
	pending    []*fragState // fragments receiving the in-flight line
	pendingN   []int

	// taken/takenN are the per-cycle run-building scratch, reused across
	// cycles (reset to length 0, capacity kept).
	taken  []*fragState
	takenN []int
}

func newSeqFetch(ic *ICache, stream *Stream, stats *Stats, obs *observer, fsp *fsPool, width int) *seqFetch {
	return &seqFetch{ic: ic, stream: stream, stats: stats, obs: obs, fsp: fsp, width: width, qcap: 3 * width}
}

func (sf *seqFetch) redirect() {
	sf.stallUntil = 0
	sf.pending = sf.pending[:0]
	sf.pendingN = sf.pendingN[:0]
}

// topUp generates fragments until the queue has instructions to fetch or
// the cap is reached.
func (sf *seqFetch) topUp(q *fragQueue, now uint64) {
	for q.unrenamedOps() < sf.qcap {
		ff, err := sf.stream.Next()
		if err != nil {
			return
		}
		q.push(sf.fsp.newFragState(ff), now)
	}
}

// firstUnfetched returns the oldest fragment with unfetched instructions.
func firstUnfetched(q *fragQueue) *fragState {
	for i := 0; i < q.size(); i++ {
		if fs := q.at(i); fs.fetched < fs.len() {
			return fs
		}
	}
	return nil
}

func (sf *seqFetch) cycle(now uint64, q *fragQueue) {
	// Deliver an in-flight missed line when it arrives. Waiting cycles
	// carry no fetch slots: a fetch unit stalled on a miss has no
	// "potential maximum number of instructions it can fetch" (§5.1); the
	// delivery cycle does.
	if sf.stallUntil != 0 {
		if now < sf.stallUntil {
			return
		}
		sf.stats.FetchSlots += int64(sf.width)
		for i, fs := range sf.pending {
			deliver(sf.stats, sf.obs, now, fs, sf.pendingN[i], 0, true)
		}
		sf.stallUntil = 0
		sf.pending = sf.pending[:0]
		sf.pendingN = sf.pendingN[:0]
		return
	}

	sf.topUp(q, now)
	fs := firstUnfetched(q)
	if fs == nil {
		return // nothing to fetch: not active
	}
	sf.stats.FetchSlots += int64(sf.width)

	// Build this cycle's run. W16 treats the predicted stream as flat:
	// the run continues through not-taken branches and across fragment
	// boundaries while control flow stays sequential, stopping at taken
	// transfers, the cache-line boundary, or the width limit.
	startPC := fs.ff.Frag.PCs[fs.fetched]
	line := lineOf(startPC)
	done := sf.ic.L1I.Access(line, false, now)

	taken := sf.taken[:0]
	takenN := sf.takenN[:0]
	budget := sf.width
	idx := indexOf(q, fs)
	cur := fs
	pos := cur.fetched
	count := 0
walk:
	for budget > 0 {
		pc := cur.ff.Frag.PCs[pos]
		if lineOf(pc) != line {
			break
		}
		count++
		pos++
		budget--
		if pos == cur.len() {
			// Fragment boundary: continue into the next fragment
			// only if it is present, unfetched, and sequential.
			taken = append(taken, cur)
			takenN = append(takenN, count)
			count = 0
			idx++
			if idx >= q.size() {
				break walk
			}
			next := q.at(idx)
			if next.fetched != 0 || next.len() == 0 || next.ff.Frag.PCs[0] != pc+isa.InstBytes {
				break walk
			}
			cur, pos = next, 0
			continue
		}
		if cur.ff.Frag.PCs[pos] != pc+isa.InstBytes {
			break // taken transfer inside the fragment
		}
	}
	if count > 0 {
		taken = append(taken, cur)
		takenN = append(takenN, count)
	}

	if done <= now+1 {
		for i, t := range taken {
			deliver(sf.stats, sf.obs, now, t, takenN[i], 0, true)
		}
		sf.taken, sf.takenN = taken, takenN
		return
	}
	// Miss: instructions arrive when the line does. The built run becomes
	// the pending delivery; the previous pending backing array (drained)
	// becomes next cycle's scratch — the two buffers just swap roles.
	sf.stallUntil = done
	sf.pending, sf.taken = taken, sf.pending[:0]
	sf.pendingN, sf.takenN = takenN, sf.pendingN[:0]
}

func indexOf(q *fragQueue, fs *fragState) int {
	for i := 0; i < q.size(); i++ {
		if q.at(i) == fs {
			return i
		}
	}
	return -1
}

// tcFetch is the trace-cache fetch engine: one trace-cache lookup per cycle
// supplying a whole fragment on a hit; on a miss the fragment is fetched
// through the instruction cache with the sequential mechanism and then
// filled into the trace cache.
type tcFetch struct {
	ic     *ICache
	tc     *tcache.Cache
	stream *Stream
	stats  *Stats
	obs    *observer
	fsp    *fsPool
	width  int
	qcap   int

	fallback   *fragState // fragment being fetched from the I-cache
	stallUntil uint64
	pendingN   int
}

func newTCFetch(ic *ICache, tc *tcache.Cache, stream *Stream, stats *Stats, obs *observer, fsp *fsPool, width int) *tcFetch {
	return &tcFetch{ic: ic, tc: tc, stream: stream, stats: stats, obs: obs, fsp: fsp, width: width, qcap: 3 * width}
}

func (tf *tcFetch) redirect() {
	tf.fallback = nil
	tf.stallUntil = 0
	tf.pendingN = 0
}

func (tf *tcFetch) cycle(now uint64, q *fragQueue) {
	if tf.fallback != nil {
		tf.fallbackCycle(now)
		return
	}
	if q.unrenamedOps() >= tf.qcap {
		return // back-pressured
	}
	ff, err := tf.stream.Next()
	if err != nil {
		return
	}
	tf.stats.FetchSlots += int64(tf.width)
	fs := tf.fsp.newFragState(ff)
	q.push(fs, now)
	if _, hit := tf.tc.Lookup(ff.Frag.ID); hit {
		deliver(tf.stats, tf.obs, now, fs, fs.len(), 0, true)
		return
	}
	tf.fallback = fs
	tf.fallbackCycle(now)
}

// fallbackCycle advances the W16-style fetch of the missing trace.
func (tf *tcFetch) fallbackCycle(now uint64) {
	fs := tf.fallback
	if tf.stallUntil != 0 {
		if now < tf.stallUntil {
			return // miss wait: no fetch potential, no slots
		}
		tf.stats.FetchSlots += int64(tf.width)
		deliver(tf.stats, tf.obs, now, fs, tf.pendingN, 0, true)
		tf.stallUntil = 0
		tf.pendingN = 0
		tf.finishIfDone()
		return
	}
	n := runLen(fs, fs.fetched, tf.width)
	if n == 0 {
		tf.finishIfDone()
		return
	}
	tf.stats.FetchSlots += int64(tf.width)
	line := lineOf(fs.ff.Frag.PCs[fs.fetched])
	done := tf.ic.L1I.Access(line, false, now)
	if done <= now+1 {
		deliver(tf.stats, tf.obs, now, fs, n, 0, true)
		tf.finishIfDone()
		return
	}
	tf.stallUntil = done
	tf.pendingN = n
}

func (tf *tcFetch) finishIfDone() {
	fs := tf.fallback
	if fs.fetched >= fs.len() {
		// Fill the trace cache with the constructed trace (the fill
		// unit). Wrong-path traces fill too — real trace caches are
		// polluted by wrong-path fills.
		tf.tc.Fill(fs.ff.Frag)
		tf.fallback = nil
	}
}

// pfFetch is the parallel fetch engine (§3): one fragment prediction per
// cycle allocated to a fragment buffer (reusing stale buffer contents when
// the same fragment is still resident), and several narrow sequencers
// fetching the oldest unfetched fragments concurrently through the banked
// instruction cache.
type pfFetch struct {
	ic     *ICache
	stream *Stream
	stats  *Stats
	obs    *observer
	pool   *frag.Pool
	fsp    *fsPool
	width  int // per-sequencer width

	seqs []sequencer

	// switchOnMiss enables §2.2's optional policy: a sequencer that
	// misses parks the fragment (the fill completes in the background)
	// and fetches a different fragment meanwhile. Off in the paper's
	// base design; the "switchonmiss" ablation measures its value.
	switchOnMiss bool
	parked       []parkedMiss

	// Per-cycle bank-arbitration scratch, reused across cycles. The
	// entry counts are tiny (at most sequencers x width distinct lines),
	// so linear scans replace the per-cycle maps the seed allocated.
	banks []bankClaim
	lines []lineFill
}

// bankClaim records which line a cache bank is serving this cycle.
type bankClaim struct {
	bank int
	line uint64
}

// lineFill records the completion time of a line already read this cycle.
type lineFill struct {
	line uint64
	done uint64
}

// lineDone reports whether line was already read this cycle and when it
// completes.
func (pf *pfFetch) lineDone(line uint64) (uint64, bool) {
	for _, lf := range pf.lines {
		if lf.line == line {
			return lf.done, true
		}
	}
	return 0, false
}

// bankLine reports which line (if any) bank is serving this cycle.
func (pf *pfFetch) bankLine(bank int) (uint64, bool) {
	for _, bc := range pf.banks {
		if bc.bank == bank {
			return bc.line, true
		}
	}
	return 0, false
}

// parkedMiss is an outstanding miss whose instructions will arrive at done.
type parkedMiss struct {
	fs   *fragState
	n    int
	lane int // sequencer that initiated the fill
	done uint64
}

type sequencer struct {
	fs         *fragState
	stallUntil uint64
	pendingN   int
}

func newPFFetch(ic *ICache, stream *Stream, stats *Stats, obs *observer, pool *frag.Pool, fsp *fsPool, nseq, width int, switchOnMiss bool) *pfFetch {
	return &pfFetch{
		ic: ic, stream: stream, stats: stats, obs: obs, pool: pool, fsp: fsp,
		width: width, seqs: make([]sequencer, nseq),
		switchOnMiss: switchOnMiss,
	}
}

func (pf *pfFetch) redirect() {
	for i := range pf.seqs {
		pf.seqs[i] = sequencer{}
	}
	for _, pk := range pf.parked {
		pk.fs.missPending = false
	}
	pf.parked = pf.parked[:0]
}

// deliverParked completes background fills whose lines have arrived.
func (pf *pfFetch) deliverParked(now uint64) {
	kept := pf.parked[:0]
	for _, pk := range pf.parked {
		if pk.done > now {
			kept = append(kept, pk)
			continue
		}
		pk.fs.missPending = false
		deliver(pf.stats, pf.obs, now, pk.fs, pk.n, pk.lane, true)
	}
	pf.parked = kept
}

func (pf *pfFetch) cycle(now uint64, q *fragQueue) {
	if pf.switchOnMiss {
		pf.deliverParked(now)
	}
	// One prediction/allocation per cycle, gated on a free buffer.
	if ff, err := pf.streamNextIfBufferFree(q); err == nil && ff != nil {
		fs := pf.fsp.newFragState(ff)
		buf, reused := pf.pool.Allocate(ff.Frag, ff.Ops[0].Seq)
		fs.buf = buf
		pf.stats.FragAllocs++
		q.push(fs, now)
		if reused {
			// Buffer reuse: the instructions are already on chip;
			// no sequencer or cache bandwidth is spent.
			pf.stats.FragReuses++
			deliver(pf.stats, pf.obs, now, fs, fs.len(), 0, false)
		}
	}

	// Sequencers: assign idle ones to the oldest unassigned incomplete
	// fragments, then advance, arbitrating cache banks. Two sequencers
	// requesting the SAME line share the bank's read (common when
	// consecutive fragments abut in straight-line code); different lines
	// on one bank conflict.
	pf.banks = pf.banks[:0] // bank -> line served this cycle
	pf.lines = pf.lines[:0] // line -> completion cycle
	for i := range pf.seqs {
		sq := &pf.seqs[i]
		if sq.fs == nil || sq.fs.complete {
			sq.fs = pf.nextFetchTarget(q)
			sq.stallUntil = 0
			sq.pendingN = 0
		}
		if sq.fs == nil {
			continue // idle: no fragment to fetch, no slots charged
		}
		switch {
		case sq.stallUntil != 0 && now < sq.stallUntil:
			// Miss in progress: the sequencer is waiting and has no
			// fetch potential this cycle — no slots (§5.1).
		case sq.stallUntil != 0:
			// Line arrived: deliver. Detach eagerly once the fragment is
			// complete — rename may pop (and the Unit recycle) a complete
			// fragState the same cycle, so a sequencer must not keep a
			// pointer to one past delivery.
			pf.stats.FetchSlots += int64(pf.width)
			deliver(pf.stats, pf.obs, now, sq.fs, sq.pendingN, i, true)
			sq.stallUntil = 0
			sq.pendingN = 0
			if sq.fs.complete {
				sq.fs = nil
			}
		default:
			// The sequencer knows its fragment's instruction
			// addresses from the prediction, so unlike W16 it does
			// not stop at taken transfers: it gathers up to width
			// instructions per cycle through the banked cache,
			// claiming every distinct line's bank. A bank conflict
			// truncates the group; a miss on any line delays the
			// whole group until the last line arrives.
			pf.stats.FetchSlots += int64(pf.width)
			fs := sq.fs
			pcs := fs.ff.Frag.PCs
			n := 0
			var done uint64
			truncated := false
			for n < pf.width && fs.fetched+n < fs.len() {
				line := lineOf(pcs[fs.fetched+n])
				bank := pf.ic.IBankOf(line)
				if d, shared := pf.lineDone(line); shared {
					// Same line already read this cycle: share it.
					if d > done {
						done = d
					}
				} else if servedLine, used := pf.bankLine(bank); used && servedLine != line {
					truncated = true
					break // different line on a busy bank: conflict
				} else {
					d := pf.ic.L1I.Access(line, false, now)
					pf.banks = append(pf.banks, bankClaim{bank: bank, line: line})
					pf.lines = append(pf.lines, lineFill{line: line, done: d})
					if d > done {
						done = d
					}
				}
				n++
			}
			if n == 0 {
				pf.stats.BankConflicts++
				continue // pure bank conflict: retry next cycle
			}
			if truncated {
				pf.stats.ConflictTrunc++
			}
			if done <= now+1 {
				deliver(pf.stats, pf.obs, now, fs, n, i, true)
				if fs.complete {
					sq.fs = nil // eager detach (see the delivery case above)
				}
			} else if pf.switchOnMiss {
				// Park the miss; the fill completes in the
				// background and the sequencer is free to take a
				// different fragment next cycle (§2.2).
				fs.missPending = true
				pf.parked = append(pf.parked, parkedMiss{fs: fs, n: n, lane: i, done: done})
				sq.fs = nil
			} else {
				sq.stallUntil = done
				sq.pendingN = n
			}
		}
	}
}

// streamNextIfBufferFree asks the stream for the next fragment only when a
// buffer is available to hold it (otherwise the predictor stalls).
func (pf *pfFetch) streamNextIfBufferFree(q *fragQueue) (*FetchedFrag, error) {
	if pf.pool.InUseCount() >= pf.pool.Size() {
		return nil, nil
	}
	ff, err := pf.stream.Next()
	if err != nil {
		return nil, err
	}
	return ff, nil
}

// nextFetchTarget returns the oldest fragment that needs a sequencer.
func (pf *pfFetch) nextFetchTarget(q *fragQueue) *fragState {
	for i := 0; i < q.size(); i++ {
		fs := q.at(i)
		if fs.complete || fs.fetched >= fs.len() || fs.missPending {
			continue
		}
		if pf.isAssigned(fs) {
			continue
		}
		return fs
	}
	return nil
}

func (pf *pfFetch) isAssigned(fs *fragState) bool {
	for i := range pf.seqs {
		if pf.seqs[i].fs == fs {
			return true
		}
	}
	return false
}
