package core

// delayedRename is the paper's §4 "first solution" to parallel renaming —
// the Multiscalar-style scheme: no live-out prediction, no phase-1
// pre-allocation. Each renamer renames its fragment in order, but an
// instruction whose source is produced by an older fragment that has not
// yet renamed that register is DELAYED until the mapping becomes available;
// renamers exchange map-table updates as they go.
//
// The paper's assessment, which this model lets you measure (the "delayed"
// ablation experiment): it removes serialization completely and can never
// mispredict, but delayed instructions sit in fragment buffers longer,
// which throttles the fetch unit's lookahead.
type delayedRename struct {
	n     int
	width int
	be    Backend
	stats *Stats
	obs   *observer

	reserved int // window slots reserved for eligible fragments

	// assigned is the per-cycle renamer-assignment scratch, reused across
	// cycles.
	assigned []*fragState
}

func newDelayedRename(n, width int, be Backend, stats *Stats, obs *observer) *delayedRename {
	return &delayedRename{n: n, width: width, be: be, stats: stats, obs: obs}
}

func (dr *delayedRename) redirect() { dr.reserved = 0 }

func (dr *delayedRename) cycle(now uint64, q *fragQueue) {
	// Reorder-buffer allocation, in order, one fragment per cycle (the
	// same §4.2 allocation discipline as the live-out scheme). We borrow
	// the phase1Done flag to mean "eligible for a renamer".
	for i := 0; i < q.size(); i++ {
		fs := q.at(i)
		if fs.phase1Done {
			continue
		}
		if dr.be.FreeSlots()-dr.reserved < fs.len() {
			break
		}
		fs.phase1Done = true
		dr.reserved += fs.len()
		dr.obs.phase1(now, fs)
		break
	}

	// Snapshot rename progress before any renamer advances: mappings
	// produced this cycle become visible to other renamers only next
	// cycle, modelling the inter-renamer communication latency the paper
	// calls out.
	for i := 0; i < q.size(); i++ {
		fs := q.at(i)
		fs.renamedAtCycleStart = fs.renamed
	}

	assigned := dr.assigned[:0]
	for i := 0; i < q.size() && len(assigned) < dr.n; i++ {
		fs := q.at(i)
		if !fs.phase1Done || fs.renamed == fs.len() {
			continue
		}
		assigned = append(assigned, fs)
	}
	dr.assigned = assigned

	for lane, fs := range assigned {
		if !fs.firstRead {
			fs.firstRead = true
			dr.stats.FragReadByRename++
			if fs.complete {
				dr.stats.FragCompleteAtRename++
			}
		}
		first := fs.firstSeq()
		n := fs.fetched - fs.renamed
		if n > dr.width {
			n = dr.width
		}
		start := fs.renamed
		for i := 0; i < n; i++ {
			op := fs.ff.Ops[fs.renamed]
			blocked := false
			for p := 0; p < op.NProd; p++ {
				prod := op.Producers[p]
				if prod >= first {
					continue // intra-fragment: renamed in order
				}
				if !renamedBefore(q, prod) {
					blocked = true
					break
				}
			}
			if blocked {
				// Delay this instruction (and, since rename is
				// in-order within a fragment, the rest of the
				// fragment) until the mapping arrives.
				dr.stats.DelayedForMapping++
				break
			}
			dr.be.Insert(op)
			fs.renamed++
			dr.reserved--
			dr.stats.Renamed++
		}
		dr.obs.phase2(now, fs, start, fs.renamed-start, lane)
	}
	q.removeRenamed()
}

// renamedBefore reports whether the producer of producerSeq had renamed it
// before this cycle began. A producer outside the queue has long since
// renamed; inside the queue, it must be below its fragment's start-of-cycle
// rename point.
func renamedBefore(q *fragQueue, producerSeq uint64) bool {
	for i := 0; i < q.size(); i++ {
		fs := q.at(i)
		first := fs.firstSeq()
		if producerSeq < first {
			continue
		}
		if producerSeq >= first+uint64(fs.len()) {
			continue
		}
		return int(producerSeq-first) < fs.renamedAtCycleStart
	}
	return true
}
