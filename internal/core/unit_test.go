package core

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/rename"
)

// newUnitRig assembles a complete front-end + back-end over a real program,
// without the sim package: the cycle loop lives in the test so Unit-level
// behaviour (redirect truncation, drain, barrier maintenance) is directly
// observable.
type unitRig struct {
	unit   *Unit
	be     *backend.Backend
	stream *Stream
}

func newUnitRig(t *testing.T, cfg Config) *unitRig {
	t.Helper()
	spec := program.TestSpec()
	spec.PhaseIters = 100
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	stream := NewStream(p, bpred.New(bpred.Config{PrimaryEntries: 4096, SecondaryEntries: 1024}), frag.Heuristics{}, nil)
	be := backend.New(backend.DefaultConfig(), hier.L1D)
	ic := &ICache{L1I: hier.L1I, Banks: hier.IBanks}
	unit, err := NewUnit(cfg, stream, ic, be)
	if err != nil {
		t.Fatal(err)
	}
	return &unitRig{unit: unit, be: be, stream: stream}
}

// runCycles advances the rig like the simulator would.
func (r *unitRig) runCycles(t *testing.T, n uint64) {
	t.Helper()
	for now := uint64(0); now < n; now++ {
		r.unit.Cycle(now)
		_, res := r.be.Cycle(now)
		if res != nil {
			pend := r.stream.Pending()
			if pend != nil && res.Op.Seq == pend.CulpritSeq {
				red := r.stream.ApplyRedirect()
				r.be.SquashFrom(red.CulpritSeq + 1)
				r.be.ClearMispredictPoint(res.Op)
				r.unit.Redirect(now, red.CulpritSeq)
			} else {
				r.be.ClearMispredictPoint(res.Op)
			}
		}
	}
}

func pfConfig() Config {
	return Config{
		Name: "unit-PF", Fetch: FetchParallel, Rename: RenameSequential,
		FetchWidth: 16, RenameWidth: 16, FragBuffers: 16,
		Sequencers: 2, SeqWidth: 8,
		Predictor:      bpred.Config{PrimaryEntries: 4096, SecondaryEntries: 1024},
		LiveOut:        rename.DefaultLiveOutConfig(),
		RedirectBubble: 3,
	}
}

func TestUnitProgressAndRedirects(t *testing.T) {
	rig := newUnitRig(t, pfConfig())
	rig.runCycles(t, 4000)
	st := rig.unit.Stats()
	if rig.be.Committed() < 1000 {
		t.Errorf("committed only %d in 4000 cycles", rig.be.Committed())
	}
	if st.Redirects == 0 {
		t.Error("expected redirects on the test program")
	}
	if st.FragAllocs == 0 || st.Fetched == 0 || st.Renamed == 0 {
		t.Errorf("dead counters: %+v", st)
	}
}

func TestUnitRedirectTruncatesAndRecovers(t *testing.T) {
	rig := newUnitRig(t, pfConfig())
	// Run until at least one redirect has happened, checking queue
	// consistency after every cycle.
	sawRedirect := false
	for now := uint64(0); now < 6000 && !sawRedirect; now++ {
		rig.unit.Cycle(now)
		_, res := rig.be.Cycle(now)
		if res != nil {
			pend := rig.stream.Pending()
			if pend != nil && res.Op.Seq == pend.CulpritSeq {
				red := rig.stream.ApplyRedirect()
				rig.be.SquashFrom(red.CulpritSeq + 1)
				rig.be.ClearMispredictPoint(res.Op)
				rig.unit.Redirect(now, red.CulpritSeq)
				sawRedirect = true
				// Post-redirect: every remaining fragment must be
				// entirely at or below the culprit.
				for i := 0; i < rig.unit.queue.size(); i++ {
					fs := rig.unit.queue.at(i)
					last := fs.ff.Ops[fs.len()-1].Seq
					if last > red.CulpritSeq {
						t.Fatalf("fragment with seq %d survived redirect at %d", last, red.CulpritSeq)
					}
				}
			} else {
				rig.be.ClearMispredictPoint(res.Op)
			}
		}
	}
	if !sawRedirect {
		t.Fatal("no redirect observed")
	}
	// The machine must keep making progress afterwards.
	before := rig.be.Committed()
	rig.runCycles(t, 2000)
	if rig.be.Committed() <= before {
		t.Error("no progress after redirect")
	}
}

func TestUnitDrainsOnProgramEnd(t *testing.T) {
	cfg := pfConfig()
	rig := newUnitRig(t, cfg)
	for now := uint64(0); now < 200_000; now++ {
		rig.unit.Cycle(now)
		_, res := rig.be.Cycle(now)
		if res != nil {
			pend := rig.stream.Pending()
			if pend != nil && res.Op.Seq == pend.CulpritSeq {
				red := rig.stream.ApplyRedirect()
				rig.be.SquashFrom(red.CulpritSeq + 1)
				rig.be.ClearMispredictPoint(res.Op)
				rig.unit.Redirect(now, red.CulpritSeq)
			} else {
				rig.be.ClearMispredictPoint(res.Op)
			}
		}
		if rig.stream.Done() && rig.unit.Drained() && rig.be.InFlight() == 0 {
			return // clean drain
		}
	}
	t.Fatalf("program did not drain: done=%v drained=%v inflight=%d",
		rig.stream.Done(), rig.unit.Drained(), rig.be.InFlight())
}

func TestUnitConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "no-width", Fetch: FetchSequential, Rename: RenameSequential},
		{Name: "pf-no-seq", Fetch: FetchParallel, Rename: RenameSequential, FetchWidth: 16, RenameWidth: 16},
		{Name: "tc-no-size", Fetch: FetchTraceCache, Rename: RenameSequential, FetchWidth: 16, RenameWidth: 16},
		{Name: "pr-no-renamers", Fetch: FetchParallel, Rename: RenameParallel, FetchWidth: 16,
			Sequencers: 2, SeqWidth: 8, FragBuffers: 16},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", cfg.Name)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if FetchSequential.String() != "sequential" || FetchTraceCache.String() != "trace-cache" ||
		FetchParallel.String() != "parallel" {
		t.Error("fetch kind names wrong")
	}
	if RenameSequential.String() != "sequential" || RenameParallel.String() != "parallel" ||
		RenameDelayed.String() != "delayed" {
		t.Error("rename kind names wrong")
	}
	if FetchKind(99).String() == "" || RenameKind(99).String() == "" {
		t.Error("out-of-range kinds must still render")
	}
}

func TestUnitTCFetchEngine(t *testing.T) {
	cfg := Config{
		Name: "unit-TC", Fetch: FetchTraceCache, Rename: RenameSequential,
		FetchWidth: 16, RenameWidth: 16, TraceCache: 32 << 10,
		Predictor:      bpred.Config{PrimaryEntries: 4096, SecondaryEntries: 1024},
		RedirectBubble: 3,
	}
	rig := newUnitRig(t, cfg)
	rig.runCycles(t, 4000)
	tc := rig.unit.TraceCache()
	if tc == nil {
		t.Fatal("no trace cache on a TC front-end")
	}
	lookups, hits, fills := tc.Stats()
	if lookups == 0 || fills == 0 {
		t.Errorf("trace cache unused: lookups=%d hits=%d fills=%d", lookups, hits, fills)
	}
	if rig.unit.Pool() != nil {
		t.Error("TC front-end must not have a fragment pool")
	}
}

func TestUnitSwitchOnMiss(t *testing.T) {
	cfg := pfConfig()
	cfg.SwitchOnMiss = true
	rig := newUnitRig(t, cfg)
	rig.runCycles(t, 4000)
	if rig.be.Committed() < 1000 {
		t.Errorf("switch-on-miss unit committed only %d", rig.be.Committed())
	}
}
