package core

import (
	"github.com/parallel-frontend/pfe/internal/metrics"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// observer bundles the optional event sink and pipeline metrics every fetch
// engine and rename stage shares. All methods are safe on the zero value
// (no sink, no metrics) and compile down to a nil check on the hot path.
type observer struct {
	sink trace.Sink
	met  *metrics.Pipeline
}

// fetched emits one fetch-delivery event: n instructions of fs became
// available to rename this cycle, starting at op index start, delivered by
// sequencer lane.
func (o *observer) fetched(now uint64, fs *fragState, start, n, lane int) {
	if o.sink == nil || n == 0 {
		return
	}
	ops := fs.ff.Ops
	if start >= len(ops) {
		start = len(ops) - 1
	}
	o.sink.Emit(trace.Event{
		Cycle: now,
		Kind:  trace.KindFetch,
		Seq:   ops[start].Seq,
		Frag:  fs.firstSeq(),
		PC:    ops[start].PC,
		Lane:  int16(lane),
		N:     int32(n),
	})
}

// phase1 emits a fragment's rename phase-1 event: the in-order allocation
// step (live-out prediction and window reservation for the parallel
// renamer; first admission for the monolithic and delayed renamers).
func (o *observer) phase1(now uint64, fs *fragState) {
	if o.sink == nil {
		return
	}
	o.sink.Emit(trace.Event{
		Cycle: now,
		Kind:  trace.KindRenamePhase1,
		Seq:   fs.firstSeq(),
		Frag:  fs.firstSeq(),
		PC:    fs.ff.Ops[0].PC,
		N:     int32(fs.len()),
	})
}

// phase2 emits one renamer's work this cycle: n instructions of fs renamed
// starting at op index start, by renamer lane.
func (o *observer) phase2(now uint64, fs *fragState, start, n, lane int) {
	if o.sink == nil || n == 0 {
		return
	}
	ops := fs.ff.Ops
	if start >= len(ops) {
		start = len(ops) - 1
	}
	o.sink.Emit(trace.Event{
		Cycle: now,
		Kind:  trace.KindRenamePhase2,
		Seq:   ops[start].Seq,
		Frag:  fs.firstSeq(),
		PC:    ops[start].PC,
		Lane:  int16(lane),
		N:     int32(n),
	})
}

// squash emits a squash event and feeds the squash-depth histogram; n is
// the number of window entries removed from seq upward.
func (o *observer) squash(now uint64, seq uint64, n int, cause trace.SquashCause) {
	if o.met != nil {
		o.met.SquashDepth.Observe(int64(n))
	}
	if o.sink == nil {
		return
	}
	o.sink.Emit(trace.Event{
		Cycle: now,
		Kind:  trace.KindSquash,
		Seq:   seq,
		Cause: cause,
		N:     int32(n),
	})
}

// retired feeds the buffer-residency histogram when a fragment finishes
// rename and leaves the queue.
func (o *observer) retired(now uint64, fs *fragState) {
	if o.met != nil {
		o.met.BufResidency.Observe(int64(now - fs.enteredAt))
	}
}
