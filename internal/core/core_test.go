package core

import (
	"errors"
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/rename"
)

func testProgram(t *testing.T) *program.Program {
	t.Helper()
	spec := program.TestSpec()
	spec.PhaseIters = 50
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestStream(t *testing.T, p *program.Program) *Stream {
	t.Helper()
	return NewStream(p, bpred.New(bpred.Config{PrimaryEntries: 4096, SecondaryEntries: 1024}), frag.DefaultHeuristics(), nil)
}

// drainCorrect pulls fragments from the stream, resolving each divergence
// immediately (as if the back-end resolved the culprit instantly), and
// returns the PCs of all correct-path instructions generated.
func drainCorrect(t *testing.T, s *Stream, max int) []uint64 {
	t.Helper()
	var pcs []uint64
	for len(pcs) < max && !s.Done() {
		ff, err := s.Next()
		if errors.Is(err, ErrNoFragment) {
			if red := s.ApplyRedirect(); red == nil {
				break
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ff.WrongFrom; i++ {
			pcs = append(pcs, ff.Ops[i].PC)
		}
		if s.Pending() != nil {
			s.ApplyRedirect()
		}
	}
	return pcs
}

// TestStreamCorrectPathMatchesEmulator: the concatenation of correct-path
// prefixes must equal the functional execution stream.
func TestStreamCorrectPathMatchesEmulator(t *testing.T) {
	p := testProgram(t)
	s := newTestStream(t, p)
	got := drainCorrect(t, s, 30000)

	m := emu.New(p)
	for i, pc := range got {
		d, err := m.Step()
		if err != nil {
			t.Fatalf("oracle ended at %d: %v", i, err)
		}
		if d.PC != pc {
			t.Fatalf("instruction %d: stream %#x, oracle %#x", i, pc, d.PC)
		}
	}
}

func TestStreamSeqsAreStrictlyIncreasing(t *testing.T) {
	p := testProgram(t)
	s := newTestStream(t, p)
	var last uint64
	for i := 0; i < 2000 && !s.Done(); i++ {
		ff, err := s.Next()
		if errors.Is(err, ErrNoFragment) {
			if s.ApplyRedirect() == nil {
				break
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ff.Ops {
			if op.Seq <= last {
				t.Fatalf("seq %d after %d", op.Seq, last)
			}
			last = op.Seq
		}
		// Let some wrong path accumulate before redirecting.
		if s.Pending() != nil && i%3 == 0 {
			s.ApplyRedirect()
		}
	}
}

func TestStreamDivergenceBookkeeping(t *testing.T) {
	p := testProgram(t)
	s := newTestStream(t, p)
	for i := 0; i < 5000; i++ {
		ff, err := s.Next()
		if errors.Is(err, ErrNoFragment) {
			if s.ApplyRedirect() == nil {
				t.Fatal("stream stuck with no pending redirect")
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		pend := s.Pending()
		if pend == nil {
			continue
		}
		// A divergence was just detected (or is ongoing). The culprit
		// must be flagged and its seq must precede the resume point.
		if !pend.Culprit.MispredictPoint {
			t.Fatal("culprit not flagged as mispredict point")
		}
		if pend.TruePC != 0 {
			in, ok := p.InstAt(pend.TruePC)
			if !ok {
				t.Fatalf("redirect PC %#x outside code", pend.TruePC)
			}
			_ = in
		}
		// Wrong-path ops in this fragment must be marked.
		for i := ff.WrongFrom; i < len(ff.Ops); i++ {
			if !ff.Ops[i].WrongPath {
				t.Fatal("wrong-path op not marked")
			}
		}
		red := s.ApplyRedirect()
		if red != pend {
			t.Fatal("ApplyRedirect returned a different redirect")
		}
		if s.Pending() != nil {
			t.Fatal("pending redirect survived ApplyRedirect")
		}
		return // exercised one full divergence cycle
	}
	t.Fatal("no divergence observed in 5000 fragments")
}

func TestStreamEndsAfterHalt(t *testing.T) {
	spec := program.TestSpec() // tiny: runs to halt quickly
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestStream(t, p)
	pcs := drainCorrect(t, s, 1<<30)
	if !s.Done() {
		t.Fatal("stream not done after drain")
	}
	if _, err := s.Next(); !errors.Is(err, ErrNoFragment) {
		t.Errorf("Next after done = %v", err)
	}
	// The last correct-path instruction must be the halt.
	last, ok := p.InstAt(pcs[len(pcs)-1])
	if !ok || last.Op != isa.OpHalt {
		t.Errorf("final instruction is %v, want halt", last.Op)
	}
}

// fakeBackend implements ExecBackend for rename-stage unit tests.
type fakeBackend struct {
	slots    int
	inserted []uint64
	squashes []uint64
}

func (f *fakeBackend) FreeSlots() int              { return f.slots - len(f.inserted) }
func (f *fakeBackend) SetCommitBarrier(seq uint64) {}
func (f *fakeBackend) OldestSeq() (uint64, bool) {
	if len(f.inserted) == 0 {
		return 0, false
	}
	oldest := f.inserted[0]
	for _, s := range f.inserted[1:] {
		if s < oldest {
			oldest = s
		}
	}
	return oldest, true
}
func (f *fakeBackend) Insert(op *backend.Op) {
	f.inserted = append(f.inserted, op.Seq)
}
func (f *fakeBackend) SquashFrom(seq uint64) int {
	f.squashes = append(f.squashes, seq)
	n := 0
	kept := f.inserted[:0]
	for _, s := range f.inserted {
		if s < seq {
			kept = append(kept, s)
		} else {
			n++
		}
	}
	f.inserted = kept
	return n
}

// mkFrag builds a synthetic fragState with n single-dest ALU ops starting
// at the given seq.
func mkFrag(seq uint64, n int) *fragState {
	ff := &FetchedFrag{
		Frag: &frag.Fragment{ID: frag.ID{StartPC: 0x1000 * seq}},
		Ops:  make([]*backend.Op, n),
	}
	ff.WrongFrom = n
	for i := 0; i < n; i++ {
		in := isa.Inst{Op: isa.OpAddi, Rd: isa.Reg(1 + i%8), Rs1: 1, Imm: 1}
		ff.Ops[i] = &backend.Op{Seq: seq + uint64(i), Inst: in}
		ff.Frag.Insts = append(ff.Frag.Insts, in)
		ff.Frag.PCs = append(ff.Frag.PCs, 0x1000*seq+uint64(4*i))
	}
	return &fragState{ff: ff, effLen: n}
}

func TestSequentialRenameOneFragmentPerCycle(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	sr := newSequentialRename(16, be, &stats, &observer{})
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4)
	a.markFetched(4)
	b.markFetched(4)
	q.push(a, 0)
	q.push(b, 0)

	sr.cycle(0, &q)
	if len(be.inserted) != 4 {
		t.Fatalf("cycle 0 inserted %d ops, want 4 (one fragment per cycle)", len(be.inserted))
	}
	sr.cycle(1, &q)
	if len(be.inserted) != 8 {
		t.Fatalf("cycle 1 inserted total %d, want 8", len(be.inserted))
	}
	if q.size() != 0 {
		t.Error("queue should be drained")
	}
}

func TestSequentialRenameHeadOfLineBlocking(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	sr := newSequentialRename(16, be, &stats, &observer{})
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4)
	b.markFetched(4) // younger complete, older empty
	q.push(a, 0)
	q.push(b, 0)

	sr.cycle(0, &q)
	if len(be.inserted) != 0 {
		t.Fatal("renamed younger fragment past an unfetched older one")
	}
	a.markFetched(2)
	sr.cycle(1, &q)
	if len(be.inserted) != 2 {
		t.Fatalf("partial prefix not renamed: %d", len(be.inserted))
	}
}

func TestSequentialRenameRespectsWindowSpace(t *testing.T) {
	be := &fakeBackend{slots: 3}
	var stats Stats
	sr := newSequentialRename(16, be, &stats, &observer{})
	var q fragQueue
	a := mkFrag(1, 8)
	a.markFetched(8)
	q.push(a, 0)
	sr.cycle(0, &q)
	if len(be.inserted) != 3 {
		t.Fatalf("inserted %d, want 3 (window limit)", len(be.inserted))
	}
}

func newTestParallelRename(n, w int, be Backend, stats *Stats) *parallelRename {
	lo := rename.NewLiveOutPredictor(rename.LiveOutPredictorConfig{Entries: 256, Ways: 2})
	return newParallelRename(n, w, lo, be, stats, &observer{})
}

func TestParallelRenameConcurrentFragments(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	pr := newTestParallelRename(2, 8, be, &stats)
	var q fragQueue
	a, b := mkFrag(1, 8), mkFrag(9, 8)
	a.markFetched(8)
	b.markFetched(8)
	// Train the live-out predictor so phase 1 hits.
	pr.lo.Train(a.ff.Frag.ID, rename.ComputeLiveOuts(a.ff.Frag.Insts))
	pr.lo.Train(b.ff.Frag.ID, rename.ComputeLiveOuts(b.ff.Frag.Insts))
	q.push(a, 0)
	q.push(b, 0)

	pr.cycle(0, &q) // phase1 a; phase2 a (8 ops)
	if len(be.inserted) != 8 {
		t.Fatalf("cycle 0: %d ops", len(be.inserted))
	}
	pr.cycle(1, &q) // phase1 b; phase2 b — concurrent with nothing left of a
	if len(be.inserted) != 16 {
		t.Fatalf("cycle 1: %d ops total, want 16", len(be.inserted))
	}
}

func TestParallelRenameNotBlockedByIncompleteOldest(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	pr := newTestParallelRename(2, 8, be, &stats)
	var q fragQueue
	a, b := mkFrag(1, 8), mkFrag(9, 8)
	b.markFetched(8) // older fragment has nothing fetched yet
	pr.lo.Train(a.ff.Frag.ID, rename.ComputeLiveOuts(a.ff.Frag.Insts))
	pr.lo.Train(b.ff.Frag.ID, rename.ComputeLiveOuts(b.ff.Frag.Insts))
	q.push(a, 0)
	q.push(b, 0)

	pr.cycle(0, &q) // phase1 a (no instructions), nothing renames from a
	pr.cycle(1, &q) // phase1 b; phase2 renames b despite a being empty
	if len(be.inserted) != 8 {
		t.Fatalf("younger complete fragment blocked: %d ops", len(be.inserted))
	}
	for _, s := range be.inserted {
		if s < 9 {
			t.Fatal("unexpected op from the unfetched fragment")
		}
	}
}

func TestParallelRenameLiveOutMissSerializes(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	pr := newTestParallelRename(2, 8, be, &stats)
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4)
	a.markFetched(4)
	b.markFetched(4)
	// No training: both fragments miss in the live-out predictor.
	q.push(a, 0)
	q.push(b, 0)

	pr.cycle(0, &q)
	// Fragment a is the oldest with renamed==0, so it serializes with
	// computed live-outs; b must NOT pass phase 1 this cycle.
	if len(be.inserted) != 4 {
		t.Fatalf("cycle 0: %d ops, want 4 (a only)", len(be.inserted))
	}
	if stats.LiveOutMisses == 0 {
		t.Error("miss not counted")
	}
	pr.cycle(1, &q)
	if len(be.inserted) != 8 {
		t.Fatalf("cycle 1: %d ops total", len(be.inserted))
	}
}

func TestParallelRenameMispredictSquash(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	pr := newTestParallelRename(2, 8, be, &stats)
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4)
	a.markFetched(4)
	b.markFetched(4)
	// Train a's entry with WRONG live-outs (missing registers) so
	// phase 2 detects condition 1.
	pr.lo.Train(a.ff.Frag.ID, rename.LiveOuts{})
	pr.lo.Train(b.ff.Frag.ID, rename.ComputeLiveOuts(b.ff.Frag.Insts))
	q.push(a, 0)
	q.push(b, 0)

	pr.cycle(0, &q)
	pr.cycle(1, &q)
	pr.cycle(2, &q)
	if stats.LiveOutMispredict == 0 {
		t.Fatal("injected live-out misprediction not detected")
	}
	if seq, ok := pr.takeSquash(); !ok || seq != 5 {
		t.Fatalf("squash request = %d,%v, want seq 5", seq, ok)
	}
	// b must have been reset for re-rename.
	if b.renamed != 0 || b.phase1Done {
		t.Error("younger fragment not reset after live-out squash")
	}
}

func TestFragQueueAccounting(t *testing.T) {
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 6)
	q.push(a, 0)
	q.push(b, 0)
	if q.unrenamedOps() != 10 {
		t.Errorf("unrenamed = %d", q.unrenamedOps())
	}
	a.renamed = 4
	q.removeRenamed()
	if q.size() != 1 || q.at(0) != b {
		t.Error("removeRenamed misbehaved")
	}
	popped := q.drainPopped()
	if len(popped) != 1 || popped[0] != a {
		t.Error("popped accounting lost a fragment")
	}
	if len(q.drainPopped()) != 0 {
		t.Error("drainPopped must clear")
	}
	if seq, ok := q.oldestUnrenamedSeq(); !ok || seq != 5 {
		t.Errorf("oldest unrenamed = %d,%v", seq, ok)
	}
}
