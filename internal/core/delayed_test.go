package core

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/isa"
)

// mkDepFrags builds two fragments where the second's first instruction
// consumes a value produced by the FIRST fragment's LAST instruction,
// exercising the cross-fragment delay logic.
func mkDepFrags() (*fragState, *fragState) {
	a := mkFrag(1, 4)
	b := mkFrag(5, 4)
	// b's first op depends on a's last op (seq 4).
	b.ff.Ops[0].Producers[0] = 4
	b.ff.Ops[0].NProd = 1
	return a, b
}

func TestDelayedRenameWaitsForMapping(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	dr := newDelayedRename(2, 8, be, &stats, &observer{})
	var q fragQueue
	a, b := mkDepFrags()
	// Only b's instructions have been fetched; a is empty, so a's last
	// op (the producer) cannot have renamed.
	b.markFetched(4)
	q.push(a, 0)
	q.push(b, 0)

	dr.cycle(0, &q) // a eligible; nothing to rename from a; b not yet eligible
	dr.cycle(1, &q) // b eligible; its first op is blocked on a's unrenamed op
	if len(be.inserted) != 0 {
		t.Fatalf("renamed %d ops while the producer is unrenamed", len(be.inserted))
	}
	if stats.DelayedForMapping == 0 {
		t.Error("delay not counted")
	}

	// Fetch a; its ops rename; b unblocks the cycle AFTER a's last op
	// renames (mappings propagate with one cycle of communication).
	a.markFetched(4)
	dr.cycle(2, &q)
	if len(be.inserted) != 4 {
		t.Fatalf("cycle 2: %d ops, want a's 4", len(be.inserted))
	}
	dr.cycle(3, &q)
	if len(be.inserted) != 8 {
		t.Fatalf("cycle 3: %d ops total, want 8", len(be.inserted))
	}
}

func TestDelayedRenameIndependentFragmentsProceed(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	dr := newDelayedRename(2, 8, be, &stats, &observer{})
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4) // no cross-fragment deps
	b.markFetched(4)
	q.push(a, 0)
	q.push(b, 0)

	dr.cycle(0, &q)
	dr.cycle(1, &q)
	// b renames even though a has nothing fetched: no mapping conflict.
	if len(be.inserted) != 4 {
		t.Fatalf("independent younger fragment blocked: %d", len(be.inserted))
	}
}

func TestDelayedRenameRespectsWindowReservation(t *testing.T) {
	be := &fakeBackend{slots: 6}
	var stats Stats
	dr := newDelayedRename(2, 8, be, &stats, &observer{})
	var q fragQueue
	a, b := mkFrag(1, 4), mkFrag(5, 4)
	a.markFetched(4)
	b.markFetched(4)
	q.push(a, 0)
	q.push(b, 0)

	dr.cycle(0, &q) // a eligible (4 <= 6), renames
	dr.cycle(1, &q) // b needs 4 slots; 6-4reserved... a inserted 4, free=2: b not eligible
	for _, s := range be.inserted {
		if s >= 5 {
			t.Fatal("fragment b renamed without window space")
		}
	}
}

func TestDelayedRenameSameCycleMappingInvisible(t *testing.T) {
	// A producer renamed in cycle N must not unblock its consumer in the
	// SAME cycle (renamer-to-renamer communication takes a cycle).
	be := &fakeBackend{slots: 256}
	var stats Stats
	dr := newDelayedRename(2, 8, be, &stats, &observer{})
	var q fragQueue
	a, b := mkDepFrags()
	a.markFetched(4)
	b.markFetched(4)
	q.push(a, 0)
	q.push(b, 0)

	dr.cycle(0, &q) // a eligible + renames fully; b not eligible yet
	if len(be.inserted) != 4 {
		t.Fatalf("cycle 0: %d", len(be.inserted))
	}
	dr.cycle(1, &q) // b eligible; a's mapping is now visible (renamed cycle 0)
	if len(be.inserted) != 8 {
		t.Fatalf("cycle 1: %d", len(be.inserted))
	}
}

func TestDelayedRenameProducerOutsideQueueIsReady(t *testing.T) {
	be := &fakeBackend{slots: 256}
	var stats Stats
	dr := newDelayedRename(1, 8, be, &stats, &observer{})
	var q fragQueue
	b := mkFrag(100, 4)
	b.ff.Ops[0].Producers[0] = 7 // long-retired producer
	b.ff.Ops[0].NProd = 1
	b.markFetched(4)
	q.push(b, 0)
	dr.cycle(0, &q)
	if len(be.inserted) != 4 {
		t.Fatalf("retired producer blocked rename: %d", len(be.inserted))
	}
	if stats.DelayedForMapping != 0 {
		t.Error("spurious delay counted")
	}
}

// Interface conformance checks for the backend contract.
var (
	_ ExecBackend = (*backend.Backend)(nil)
	_             = isa.OpAdd
)
