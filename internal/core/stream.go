package core

import (
	"errors"
	"fmt"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/metrics"
	"github.com/parallel-frontend/pfe/internal/pool"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// Stream generates the speculative fetch stream every front-end consumes:
// predicted fragments, materialized from the static code image, compared
// against the true dynamic stream (the functional emulator). When a
// prediction diverges from the truth, the stream keeps producing wrong-path
// fragments — which occupy fetch slots, buffers and window entries exactly
// like real speculative hardware — until the mispredicted instruction
// resolves in the back-end and the simulator applies the redirect.
//
// The stream also owns the oracle-side bookkeeping hardware keeps in its
// own structures: per-register last-writer state for dependence edges
// (proven equivalent to parallel rename's bindings by the rename package's
// tests), speculative vs. retirement predictor history, and the redirect
// checkpoint.
type Stream struct {
	prog *program.Program
	mach emu.Oracle
	pred *bpred.TracePredictor
	heur frag.Heuristics

	// Oracle lookahead ring.
	oracle     []emu.DynInst
	oracleBase uint64 // Seq of oracle[0]
	oracleEOF  bool

	// Speculative state.
	specHist   bpred.History
	retireHist bpred.History
	lastWriter [isa.NumRegs]uint64 // speculative seq+1 of last writer (0 = none)
	nextSeq    uint64              // next speculative op seq (starts at 1)

	trueCursor uint64 // oracle seq speculation has correctly consumed
	onTrue     bool
	prevFrag   *frag.Fragment // last generated fragment (successor computation)
	prevLastOp *backend.Op    // its final op (retroactive mispredict points)

	pending *Redirect
	// redFree recycles the consumed Redirect: at most one divergence is
	// outstanding, and its record is only read in the cycle it resolves,
	// so the next divergence (created no earlier than the next fetch
	// cycle) can safely reuse the object.
	redFree *Redirect

	fragsGenerated int64
	fragsCorrect   int64
	doneTrue       bool // true path fully generated (halt fragment emitted)

	// ffPool recycles FetchedFrags (and their inline op storage) once the
	// owning Unit proves every reference is gone — the cycle loop's biggest
	// allocation source before pooling. fragMemo caches FromCode results:
	// Fragments are immutable and FromCode is a pure function of
	// (program, id), so each distinct fragment is constructed once per
	// simulation and shared by every subsequent use.
	ffPool   *pool.FreeList[FetchedFrag]
	fragMemo map[frag.ID]*frag.Fragment

	// Observability: attached by the owning Unit; now is the current
	// cycle, advanced by Unit.Cycle via Tick so prediction events carry
	// the cycle they were made in.
	sink trace.Sink
	met  *metrics.Pipeline
	now  uint64
}

// Redirect is the recovery checkpoint for the single outstanding divergence.
type Redirect struct {
	CulpritSeq uint64      // spec seq of the op whose execution reveals the misprediction
	Culprit    *backend.Op // that op
	TrueSeq    uint64      // oracle seq fetch resumes from
	TruePC     uint64      // address of that instruction
	retireHist bpred.History
	lastWriter [isa.NumRegs]uint64
}

// FetchedFrag is one generated fragment with everything the fetch and
// rename stages need.
type FetchedFrag struct {
	Frag *frag.Fragment
	Ops  []*backend.Op // parallel to Frag.Insts
	// WrongFrom is the index of the first wrong-path instruction
	// (len(Ops) when the fragment is fully correct-path).
	WrongFrom int

	// lastWriterAtWrong snapshots the dependence table as of the first
	// wrong-path instruction, restored on redirect.
	lastWriterAtWrong [isa.NumRegs]uint64

	// opsStore is the inline backing for Ops: a recycled FetchedFrag
	// carries its micro-ops with it, so materialize resets ops in place
	// instead of allocating per instruction. opsPtrs is initialized once
	// at construction (opsPtrs[i] = &opsStore[i]) and Ops re-sliced from
	// it per use; the indirection keeps the public []*backend.Op shape the
	// stages and back-end share.
	opsStore [frag.AbsMaxLen]backend.Op
	opsPtrs  [frag.AbsMaxLen]*backend.Op
}

// ErrNoFragment is returned when the stream cannot produce a fragment this
// cycle (wrong-path fetch ran off the code image, or the predictor has no
// target after an indirect jump on the wrong path). The front-end simply
// idles; the pending redirect will restart fetch.
var ErrNoFragment = errors.New("core: no fragment available")

// NewStream builds a stream over the given oracle for p; a nil oracle means
// a fresh live emulator (the cold path). An artifact-cache tape reader
// passed here replays a recorded dynamic stream instead — bit-identical by
// the tape package's contract, so the rest of the front-end cannot tell the
// difference. A zero Heuristics value selects the paper's fragment
// selection.
func NewStream(p *program.Program, pred *bpred.TracePredictor, h frag.Heuristics, oracle emu.Oracle) *Stream {
	if oracle == nil {
		oracle = emu.New(p)
	}
	s := &Stream{
		prog:     p,
		mach:     oracle,
		pred:     pred,
		heur:     h,
		nextSeq:  1,
		onTrue:   true,
		fragMemo: make(map[frag.ID]*frag.Fragment, 256),
	}
	s.ffPool = pool.NewFreeList(func() *FetchedFrag {
		ff := &FetchedFrag{}
		for i := range ff.opsStore {
			ff.opsPtrs[i] = &ff.opsStore[i]
		}
		return ff
	})
	s.refill()
	return s
}

// fragFor returns the fragment for id, memoized: FromCode is pure and
// Fragments are immutable, so one construction per distinct id serves the
// whole simulation (the trace cache and fragment buffers already share
// Fragment pointers the same way).
func (s *Stream) fragFor(id frag.ID) *frag.Fragment {
	if f, ok := s.fragMemo[id]; ok {
		return f
	}
	f := s.heur.FromCode(s.prog, id)
	s.fragMemo[id] = f
	return f
}

// RecycleFrag returns ff to the stream's free list. The owning Unit calls
// this once it has proven no reference survives: ff's ops have all left the
// back-end window and ff is not the stream's divergence bookkeeping target
// (see PrevLastSeq).
func (s *Stream) RecycleFrag(ff *FetchedFrag) { s.ffPool.Put(ff) }

// PrevLastSeq returns the sequence number of the last op of the most
// recently generated fragment (ok=false when none is retained). That op is
// the one live pointer the stream keeps into previously issued state — a
// divergence detected at a fragment boundary flags it retroactively as the
// mispredict point — so its fragment must not be recycled.
func (s *Stream) PrevLastSeq() (uint64, bool) {
	if s.prevLastOp == nil {
		return 0, false
	}
	return s.prevLastOp.Seq, true
}

// PoolStats reports the stream's free-list traffic (fetched-fragment
// recycling).
func (s *Stream) PoolStats() pool.Stats { return s.ffPool.Stats() }

// refill extends the oracle lookahead and trims consumed entries.
func (s *Stream) refill() {
	// Trim below trueCursor.
	if drop := int(s.trueCursor - s.oracleBase); drop > 0 {
		s.oracle = s.oracle[:copy(s.oracle, s.oracle[drop:])]
		s.oracleBase = s.trueCursor
	}
	for len(s.oracle) < 8*frag.MaxLen && !s.mach.Halted() {
		d, err := s.mach.Step()
		if err != nil {
			s.oracleEOF = true
			return
		}
		s.oracle = append(s.oracle, d)
	}
	if s.mach.Halted() {
		s.oracleEOF = true
	}
}

// oracleAt returns the oracle entry for seq (must be >= trueCursor and
// within lookahead).
func (s *Stream) oracleAt(seq uint64) (emu.DynInst, bool) {
	i := int(seq - s.oracleBase)
	if i < 0 || i >= len(s.oracle) {
		return emu.DynInst{}, false
	}
	return s.oracle[i], true
}

// Attach wires the optional event sink and pipeline metrics into the
// stream. Called once by NewUnit; nil values are fine.
func (s *Stream) Attach(sink trace.Sink, met *metrics.Pipeline) {
	s.sink = sink
	s.met = met
}

// Tick tells the stream the current cycle (for event timestamps).
func (s *Stream) Tick(now uint64) { s.now = now }

// Done reports whether the true path has been fully generated (the fragment
// containing halt was produced) and no redirect is pending.
func (s *Stream) Done() bool { return s.doneTrue && s.pending == nil }

// Pending returns the outstanding redirect, if any.
func (s *Stream) Pending() *Redirect { return s.pending }

// Accuracy returns generated-fragment statistics.
func (s *Stream) Accuracy() (generated, correct int64) {
	return s.fragsGenerated, s.fragsCorrect
}

// Next generates the next speculative fragment. The caller enforces the
// one-prediction-per-cycle limit. After the program's halt fragment has
// been generated, Next returns ErrNoFragment forever.
func (s *Stream) Next() (*FetchedFrag, error) {
	if s.onTrue {
		if s.doneTrue {
			return nil, ErrNoFragment
		}
		return s.nextTruePath()
	}
	return s.nextWrongPath()
}

// nextTruePath generates a fragment starting at the known correct PC,
// using the predictor for directions and detecting divergence inline.
func (s *Stream) nextTruePath() (*FetchedFrag, error) {
	s.refill()
	trueStart, ok := s.oracleAt(s.trueCursor)
	if !ok {
		// Lookahead empty: program halted exactly at cursor.
		s.doneTrue = true
		return nil, ErrNoFragment
	}

	// Choose the predicted ID: the predictor's if it agrees on the start
	// PC, otherwise a not-taken walk from the known start.
	pred := s.pred.Predict(&s.specHist)
	id := frag.ID{StartPC: trueStart.PC}
	if pred.Valid && pred.ID.StartPC == trueStart.PC {
		id = pred.ID
	}
	f := s.fragFor(id)
	if f.Len() == 0 {
		return nil, fmt.Errorf("core: empty fragment at true PC %#x", trueStart.PC)
	}

	// Compare against the oracle.
	m := 0
	for ; m < f.Len(); m++ {
		d, ok := s.oracleAt(s.trueCursor + uint64(m))
		if !ok || d.PC != f.PCs[m] {
			break
		}
	}

	// Determine the true fragment at this position for training and
	// retirement history.
	trueLen, trueID := s.splitTrue(s.trueCursor)
	s.pred.Update(&s.retireHist, trueID)

	ff := s.materialize(f, m)
	s.fragsGenerated++
	s.specHist.Push(f.ID.Key())

	if m == f.Len() && f.ID == trueID {
		// Fully correct fragment (boundary and directions included).
		s.fragsCorrect++
		s.retireHist.Push(trueID.Key())
		s.trueCursor += uint64(trueLen)
		if f.Insts[f.Len()-1].Op == isa.OpHalt {
			s.doneTrue = true
		}
		return ff, nil
	}

	// Divergence. Instructions [0,m) are correct path and will commit;
	// the divergence resolves when the culprit executes.
	s.retireHist.Push(trueID.Key())
	red := s.redFree
	s.redFree = nil
	if red == nil {
		red = new(Redirect)
	}
	*red = Redirect{
		TrueSeq:    s.trueCursor + uint64(m),
		retireHist: s.retireHist,
	}
	if d, ok := s.oracleAt(red.TrueSeq); ok {
		red.TruePC = d.PC
	} else {
		// The true path ends inside this fragment (halt reached); the
		// correct prefix will commit and the program finishes. Treat
		// the remaining suffix as wrong path resolved by the last
		// correct instruction.
		red.TruePC = 0
	}
	if m > 0 {
		red.Culprit = ff.Ops[m-1]
	} else {
		red.Culprit = s.prevLastOp
	}
	if red.Culprit == nil {
		// Divergence at the very first fragment with no predecessor
		// (cannot happen: the first fragment starts at the entry PC,
		// which is forced correct for at least one instruction).
		return nil, fmt.Errorf("core: divergence with no culprit at %#x", trueStart.PC)
	}
	red.CulpritSeq = red.Culprit.Seq
	red.Culprit.MispredictPoint = true
	// Checkpoint the last-writer state as of the correct prefix: the
	// materialize call has already applied all instructions, so rebuild
	// from the snapshot it took at the divergence index.
	red.lastWriter = ff.lastWriterAtWrong
	s.pending = red
	s.onTrue = false
	return ff, nil
}

// splitTrue computes the true fragment boundary and ID at oracle seq.
func (s *Stream) splitTrue(seq uint64) (int, frag.ID) {
	var buf [2 * 32]frag.Dyn
	n := 0
	for ; n < len(buf); n++ {
		d, ok := s.oracleAt(seq + uint64(n))
		if !ok {
			break
		}
		buf[n] = frag.Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken}
	}
	return s.heur.Split(buf[:n])
}

// nextWrongPath generates a fragment beyond the divergence point: pure
// speculation through the static image, steered by the predictor where it
// has an opinion and by fallthrough otherwise.
func (s *Stream) nextWrongPath() (*FetchedFrag, error) {
	start, known := s.successorOf(s.prevFrag)
	pred := s.pred.Predict(&s.specHist)
	var id frag.ID
	switch {
	case known && pred.Valid && pred.ID.StartPC == start:
		id = pred.ID
	case known:
		id = frag.ID{StartPC: start}
	case pred.Valid:
		id = pred.ID
	default:
		return nil, ErrNoFragment
	}
	f := s.fragFor(id)
	if f.Len() == 0 {
		return nil, ErrNoFragment
	}
	ff := s.materialize(f, 0) // entirely wrong path
	s.fragsGenerated++
	s.specHist.Push(f.ID.Key())
	return ff, nil
}

// successorOf computes the address the speculative stream continues at
// after fragment f, when that is statically determined (everything except
// indirect terminators).
func (s *Stream) successorOf(f *frag.Fragment) (uint64, bool) {
	if f == nil || f.Len() == 0 {
		return 0, false
	}
	last := f.Insts[f.Len()-1]
	lastPC := f.PCs[f.Len()-1]
	switch {
	case last.IsIndirect():
		return 0, false
	case last.IsDirectJump():
		return uint64(last.Imm) * isa.InstBytes, true
	case last.IsCondBranch():
		if taken, _ := f.DirectionOf(f.Len() - 1); taken {
			return uint64(int64(lastPC) + isa.InstBytes + int64(last.Imm)*isa.InstBytes), true
		}
		return lastPC + isa.InstBytes, true
	default:
		return lastPC + isa.InstBytes, true
	}
}

// materialize assigns sequence numbers, dependence edges and oracle
// effective addresses to the fragment's instructions. wrongFrom is the
// index of the first wrong-path instruction (0 for fully wrong-path
// fragments; f.Len() would mean fully correct but callers pass m).
func (s *Stream) materialize(f *frag.Fragment, wrongFrom int) *FetchedFrag {
	ff := s.ffPool.Get()
	ff.Frag = f
	ff.Ops = ff.opsPtrs[:f.Len()]
	if s.onTrue {
		ff.WrongFrom = wrongFrom
	} else {
		ff.WrongFrom = 0
	}
	if ff.WrongFrom >= f.Len() {
		// The snapshot below is never taken (no wrong-path instruction in
		// this fragment), but a divergence detected at the fragment
		// boundary still reads it: clear any recycled contents so the
		// checkpoint stays the zero value a fresh FetchedFrag carried.
		ff.lastWriterAtWrong = [isa.NumRegs]uint64{}
	}
	// Correct the common caller idiom: nextTruePath passes the matched
	// prefix length m which may equal f.Len() (fully correct).
	for i, in := range f.Insts {
		op := ff.Ops[i]
		// Full-struct reset: the composite literal zeroes the recycled
		// op's scheduling state (issued/done), producers and flags.
		*op = backend.Op{
			Seq:  s.nextSeq,
			PC:   f.PCs[i],
			Inst: in,
		}
		s.nextSeq++
		op.WrongPath = i >= ff.WrongFrom
		if i == ff.WrongFrom {
			ff.lastWriterAtWrong = s.lastWriter
		}
		// Dependence edges from the speculative last-writer table.
		var srcs [3]isa.Reg
		for _, src := range in.Sources(srcs[:0]) {
			if w := s.lastWriter[src]; w != 0 {
				op.Producers[op.NProd] = w - 1
				op.NProd++
			}
		}
		if rd, ok := in.Dest(); ok {
			s.lastWriter[rd] = op.Seq + 1
		}
		if in.IsMem() && !op.WrongPath {
			if d, ok := s.oracleAt(s.trueCursor + uint64(i)); ok {
				op.EA = d.EA
			}
		}
	}
	if f.Len() > 0 {
		s.prevFrag = f
		s.prevLastOp = ff.Ops[f.Len()-1]
	}
	if s.met != nil {
		s.met.FragLen.Observe(int64(f.Len()))
	}
	if s.sink != nil {
		s.sink.Emit(trace.Event{
			Cycle: s.now,
			Kind:  trace.KindFragPredict,
			Seq:   ff.Ops[0].Seq,
			Frag:  ff.Ops[0].Seq,
			PC:    f.PCs[0],
			N:     int32(f.Len()),
			Arg:   uint64(ff.WrongFrom),
		})
	}
	return ff
}

// ApplyRedirect consumes the pending redirect after the back-end resolved
// the culprit: speculation state is rewound to the divergence point and the
// stream resumes on the true path. It returns the redirect so the simulator
// can squash the window (every op with Seq > CulpritSeq is wrong-path).
func (s *Stream) ApplyRedirect() *Redirect {
	red := s.pending
	if red == nil {
		return nil
	}
	s.pending = nil
	s.onTrue = true
	s.trueCursor = red.TrueSeq
	s.specHist = red.retireHist
	s.retireHist = red.retireHist
	s.lastWriter = red.lastWriter
	s.prevFrag = nil
	s.prevLastOp = nil
	if red.TruePC == 0 {
		// True path ended inside the mispredicted fragment.
		s.doneTrue = true
	}
	s.refill()
	s.redFree = red
	return red
}
