// Package backend models the paper's aggressive out-of-order core (Table 1):
// a 256-entry instruction window, 16-wide commit, abundant functional units
// (16 integer ALUs, 4 integer multipliers, 4 FP adders, 1 FP multiplier,
// 4 load/store units), with load/store latency supplied by the data-cache
// hierarchy. The back-end is deliberately generous — the paper's point is to
// make the front-end the bottleneck — but it models true data-dependence
// wake-up, FU contention and in-order commit, because branch-resolution
// latency (and therefore the cost of a front-end misprediction) emerges from
// the dependence schedule.
package backend

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// Config sizes the back-end.
type Config struct {
	WindowSize  int
	CommitWidth int
	FUCounts    [isa.NumClasses]int
}

// DefaultConfig returns Table 1's back-end.
func DefaultConfig() Config {
	var fu [isa.NumClasses]int
	fu[isa.ClassIntALU] = 16
	fu[isa.ClassIntMul] = 4
	fu[isa.ClassFPAdd] = 4
	fu[isa.ClassFPMul] = 1
	fu[isa.ClassLoadStore] = 4
	return Config{WindowSize: 256, CommitWidth: 16, FUCounts: fu}
}

// Op is one in-flight instruction. The front-end fills identity and
// dependence fields at rename; the back-end owns scheduling state.
type Op struct {
	Seq  uint64 // speculative program order (squash key, commit order)
	PC   uint64
	Inst isa.Inst

	// Producers are the Seqs of the instructions producing this op's
	// register sources (up to 3; NProd valid entries). Ops whose
	// producers have left the window treat those sources as ready.
	Producers [3]uint64
	NProd     int

	WrongPath bool
	EA        uint64 // effective address for right-path memory ops

	// MispredictPoint marks the op whose execution reveals a front-end
	// misprediction; when it completes, the simulator redirects fetch.
	MispredictPoint bool

	issued bool
	done   uint64 // completion cycle (valid once issued)
}

// Issued reports whether the op has been selected for execution, and Done
// its completion cycle.
func (o *Op) Issued() bool { return o.issued }
func (o *Op) Done() uint64 { return o.done }

// ResetExec clears scheduling state so a squashed op can be re-inserted
// (live-out misprediction recovery re-renames squashed fragments).
func (o *Op) ResetExec() {
	o.issued = false
	o.done = 0
}

// Backend is the out-of-order execution engine.
type Backend struct {
	cfg Config
	d   *mem.Cache // L1 data cache (loads/stores go through it)

	window map[uint64]*Op // in-flight ops by seq

	// order is the seq-ordered FIFO of in-flight ops. Commit advances head
	// instead of re-slicing the front (which loses front capacity and
	// forces periodic reallocation); the vacated prefix is compacted once
	// it reaches a window's worth of slots, so the backing array's
	// capacity — and the cycle loop's allocation count — stays constant.
	order []*Op
	head  int

	// res is the reused Resolution returned by Cycle; valid until the next
	// Cycle call (the simulator consumes it within the same cycle).
	res Resolution

	committed     int64
	wrongPathExec int64
	loadCount     int64

	// commitBarrier is the lowest sequence number not yet written into
	// the window by rename (reorder-buffer slots are allocated to older
	// fragments in order, so an op at or above the barrier cannot be the
	// true commit head even when every inserted op below it has
	// committed). Maintained by the front-end each cycle.
	commitBarrier uint64

	// CommitHook, if set, observes every committed op in program order —
	// instrumentation for correctness tests and tracing tools.
	CommitHook func(*Op)

	// Sink, if non-nil, receives a dispatch event for every op entering
	// the window and a commit event for every op retiring. Events carry
	// the cycle last passed to StartCycle.
	Sink trace.Sink

	now uint64 // current cycle (StartCycle), for Insert-time events
}

// New creates a back-end over the given data cache.
func New(cfg Config, dcache *mem.Cache) *Backend {
	if cfg.WindowSize <= 0 {
		cfg = DefaultConfig()
	}
	return &Backend{
		cfg:           cfg,
		d:             dcache,
		window:        make(map[uint64]*Op, cfg.WindowSize),
		commitBarrier: ^uint64(0),
	}
}

// StartCycle tells the back-end the current cycle before the front-end runs,
// so dispatch events emitted from Insert carry the right timestamp (Insert
// has no cycle parameter of its own).
func (b *Backend) StartCycle(now uint64) { b.now = now }

// SetCommitBarrier tells the back-end the lowest sequence number the rename
// stage has not yet delivered; commit never passes it. ^uint64(0) means no
// barrier (everything in flight has been delivered).
func (b *Backend) SetCommitBarrier(seq uint64) { b.commitBarrier = seq }

// FreeSlots returns how many more ops the window can accept.
func (b *Backend) FreeSlots() int { return b.cfg.WindowSize - (len(b.order) - b.head) }

// Insert places a renamed op into the window. Caller must respect
// FreeSlots. Ops must be inserted in non-decreasing Seq order per fragment,
// but fragments renamed in parallel may interleave; the window keeps seq
// order internally so commit stays program-ordered.
func (b *Backend) Insert(op *Op) {
	if b.Sink != nil {
		b.Sink.Emit(trace.Event{
			Cycle: b.now,
			Kind:  trace.KindDispatch,
			Seq:   op.Seq,
			PC:    op.PC,
			N:     1,
		})
	}
	b.window[op.Seq] = op
	// Common case: append (mostly ordered input); otherwise insert into
	// position to maintain seq order.
	n := len(b.order)
	if n == b.head || b.order[n-1].Seq < op.Seq {
		b.order = append(b.order, op)
		return
	}
	i := n
	for i > b.head && b.order[i-1].Seq > op.Seq {
		i--
	}
	b.order = append(b.order, nil)
	copy(b.order[i+1:], b.order[i:])
	b.order[i] = op
}

// ready reports whether all of op's producers have completed by cycle now.
func (b *Backend) ready(op *Op, now uint64) bool {
	for i := 0; i < op.NProd; i++ {
		if p, ok := b.window[op.Producers[i]]; ok {
			if !p.issued || p.done > now {
				return false
			}
		}
	}
	return true
}

// Resolution describes a completed mispredict-point op the simulator must
// act on.
type Resolution struct {
	Op    *Op
	Cycle uint64 // completion cycle
}

// Cycle advances the back-end by one cycle: select-and-issue oldest-first
// bounded by FU counts, then commit in order. It returns the number of
// instructions committed this cycle and the oldest mispredict-point op that
// completed at or before now (nil if none). The Resolution is reused across
// cycles: callers must consume it before the next Cycle call.
func (b *Backend) Cycle(now uint64) (int, *Resolution) {
	// Issue: oldest-first over unissued ops, bounded per FU class.
	var used [isa.NumClasses]int
	for _, op := range b.order[b.head:] {
		if op.issued {
			continue
		}
		class := op.Inst.Classify()
		if used[class] >= b.cfg.FUCounts[class] {
			continue
		}
		if !b.ready(op, now) {
			continue
		}
		used[class]++
		op.issued = true
		b.issue(op, now)
	}

	// Find the oldest resolved mispredict point.
	var res *Resolution
	for _, op := range b.order[b.head:] {
		if op.MispredictPoint && op.issued && op.done <= now {
			b.res = Resolution{Op: op, Cycle: op.done}
			res = &b.res
			break
		}
	}

	// Commit in order.
	committed := 0
	for committed < b.cfg.CommitWidth && b.head < len(b.order) {
		head := b.order[b.head]
		if head.Seq >= b.commitBarrier {
			break // an older op has not been renamed yet
		}
		if !head.issued || head.done > now || head.WrongPath {
			break
		}
		// A mispredict point must not commit before the simulator has
		// redirected; the simulator squashes younger ops at the
		// resolution cycle, after which the point itself commits.
		if head.MispredictPoint {
			break
		}
		b.order[b.head] = nil
		b.head++
		delete(b.window, head.Seq)
		committed++
		b.committed++
		if b.Sink != nil {
			b.Sink.Emit(trace.Event{
				Cycle: now,
				Kind:  trace.KindCommit,
				Seq:   head.Seq,
				PC:    head.PC,
				N:     1,
			})
		}
		if b.CommitHook != nil {
			b.CommitHook(head)
		}
	}
	b.compact()
	return committed, res
}

// compact reclaims the committed prefix of the order FIFO once it reaches a
// window's worth of slots, keeping the backing array's capacity bounded by
// ~2x the window (the live span is at most WindowSize ops). Amortized cost
// is one pointer move per committed op.
func (b *Backend) compact() {
	if b.head == len(b.order) {
		b.order = b.order[:0]
		b.head = 0
		return
	}
	if b.head < b.cfg.WindowSize {
		return
	}
	n := copy(b.order, b.order[b.head:])
	clearTail := b.order[n:]
	for i := range clearTail {
		clearTail[i] = nil
	}
	b.order = b.order[:n]
	b.head = 0
}

// issue computes the op's completion time, charging FU latency and, for
// right-path memory ops, the data-cache access.
func (b *Backend) issue(op *Op, now uint64) {
	lat := uint64(op.Inst.Latency())
	if op.Inst.IsMem() && !op.WrongPath && b.d != nil {
		done := b.d.Access(op.EA, op.Inst.IsStore(), now)
		op.done = done + lat - 1
		b.loadCount++
		return
	}
	if op.WrongPath {
		b.wrongPathExec++
	}
	op.done = now + lat
}

// ClearMispredictPoint commits a resolved mispredict point after the
// simulator has handled the redirect: the op itself is on the correct path
// (it is the mispredicted branch, which really executed), so it simply
// stops blocking commit.
func (b *Backend) ClearMispredictPoint(op *Op) { op.MispredictPoint = false }

// SquashFrom removes every op with Seq >= seq (wrong-path ops after a
// redirect).
func (b *Backend) SquashFrom(seq uint64) int {
	n := len(b.order)
	cut := n
	for cut > b.head && b.order[cut-1].Seq >= seq {
		cut--
	}
	squashed := n - cut
	for i := cut; i < n; i++ {
		delete(b.window, b.order[i].Seq)
		b.order[i] = nil
	}
	b.order = b.order[:cut]
	return squashed
}

// DebugHead describes the window head for deadlock diagnostics.
func (b *Backend) DebugHead() string {
	if b.head == len(b.order) {
		return "window empty"
	}
	h := b.order[b.head]
	return fmt.Sprintf("head seq=%d pc=%#x op=%v issued=%v done=%d wrong=%v mp=%v nprod=%d prods=%v inflight=%d",
		h.Seq, h.PC, h.Inst.Op, h.issued, h.done, h.WrongPath, h.MispredictPoint, h.NProd, h.Producers[:h.NProd], b.InFlight())
}

// OldestSeq returns the seq of the oldest in-flight op (ok=false if empty).
func (b *Backend) OldestSeq() (uint64, bool) {
	if b.head == len(b.order) {
		return 0, false
	}
	return b.order[b.head].Seq, true
}

// InFlight returns the number of ops in the window.
func (b *Backend) InFlight() int { return len(b.order) - b.head }

// Committed returns the total instructions committed.
func (b *Backend) Committed() int64 { return b.committed }

// WrongPathExecuted returns how many wrong-path ops were issued.
func (b *Backend) WrongPathExecuted() int64 { return b.wrongPathExec }
