package backend

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/program"
)

func newTestBackend() *Backend {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	return New(DefaultConfig(), h.L1D)
}

func alu(seq uint64, producers ...uint64) *Op {
	op := &Op{Seq: seq, Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3}}
	copy(op.Producers[:], producers)
	op.NProd = len(producers)
	return op
}

// run advances the backend until idle or limit, returning the cycle at
// which everything committed.
func run(t *testing.T, b *Backend, limit uint64) uint64 {
	t.Helper()
	for now := uint64(0); now < limit; now++ {
		b.Cycle(now)
		if b.InFlight() == 0 {
			return now
		}
	}
	t.Fatalf("backend did not drain in %d cycles", limit)
	return 0
}

func TestIndependentOpsIssueTogether(t *testing.T) {
	b := newTestBackend()
	for i := 0; i < 16; i++ {
		b.Insert(alu(uint64(i)))
	}
	// All 16 fit the 16 integer ALUs: issue at cycle 0 (done at 1),
	// commit at cycle 1.
	b.Cycle(0)
	n, _ := b.Cycle(1)
	if n != 16 {
		t.Errorf("committed %d at cycle 1, want 16", n)
	}
}

func TestFUContention(t *testing.T) {
	b := newTestBackend()
	// 5 independent multiplies, but only 4 multipliers.
	for i := 0; i < 5; i++ {
		b.Insert(&Op{Seq: uint64(i), Inst: isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}})
	}
	b.Cycle(0) // 4 issue
	issued := 0
	for _, seq := range []uint64{0, 1, 2, 3, 4} {
		if op, ok := b.window[seq]; ok && op.Issued() {
			issued++
		}
	}
	if issued != 4 {
		t.Errorf("%d multiplies issued in cycle 0, want 4", issued)
	}
}

func TestDependenceChainSerializes(t *testing.T) {
	b := newTestBackend()
	// Chain of 5 dependent single-cycle ALU ops: completion at cycles
	// 1,2,3,4,5 -> all committed by cycle 5.
	for i := uint64(0); i < 5; i++ {
		if i == 0 {
			b.Insert(alu(i))
		} else {
			b.Insert(alu(i, i-1))
		}
	}
	end := run(t, b, 100)
	if end != 5 {
		t.Errorf("chain drained at cycle %d, want 5", end)
	}
}

func TestCommitIsInOrder(t *testing.T) {
	b := newTestBackend()
	// Op 0 is a slow multiply (3 cycles); ops 1..5 are fast but must
	// wait for op 0 to commit first.
	b.Insert(&Op{Seq: 0, Inst: isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}})
	for i := uint64(1); i <= 5; i++ {
		b.Insert(alu(i))
	}
	var commits []int
	for now := uint64(0); now <= 4; now++ {
		n, _ := b.Cycle(now)
		commits = append(commits, n)
	}
	// Nothing commits until the multiply completes at cycle 3.
	if commits[0] != 0 || commits[1] != 0 || commits[2] != 0 {
		t.Errorf("early commits: %v", commits)
	}
	if commits[3] != 6 {
		t.Errorf("cycle 3 committed %d, want all 6", commits[3])
	}
}

func TestLoadGoesThroughDCache(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	b := New(DefaultConfig(), h.L1D)
	ld := &Op{Seq: 0, Inst: isa.Inst{Op: isa.OpLw, Rd: 1, Rs1: 2}, EA: program.DataBase}
	b.Insert(ld)
	b.Cycle(0)
	// Cold load: L1 miss -> L2 miss -> memory: 1+10+100 = 111.
	if ld.Done() != 111 {
		t.Errorf("cold load done at %d, want 111", ld.Done())
	}
	// A second load to the same block hits L1.
	ld2 := &Op{Seq: 1, Inst: isa.Inst{Op: isa.OpLw, Rd: 1, Rs1: 2}, EA: program.DataBase + 8}
	b.Insert(ld2)
	b.Cycle(200)
	if ld2.Done() != 201 {
		t.Errorf("warm load done at %d, want 201", ld2.Done())
	}
}

func TestWrongPathOpsDoNotCommit(t *testing.T) {
	b := newTestBackend()
	b.Insert(alu(0))
	wp := alu(1)
	wp.WrongPath = true
	b.Insert(wp)
	b.Cycle(0)
	n, _ := b.Cycle(1)
	if n != 1 {
		t.Errorf("committed %d, want 1 (wrong-path op must block, not commit)", n)
	}
	if b.InFlight() != 1 {
		t.Errorf("in flight %d, want the wrong-path op", b.InFlight())
	}
	b.SquashFrom(1)
	if b.InFlight() != 0 {
		t.Error("squash did not remove wrong-path op")
	}
}

func TestMispredictPointResolution(t *testing.T) {
	b := newTestBackend()
	br := &Op{Seq: 0, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 2}, MispredictPoint: true}
	b.Insert(br)
	wp := alu(1)
	wp.WrongPath = true
	b.Insert(wp)

	_, res := b.Cycle(0) // issues, completes at cycle 1
	if res != nil {
		t.Fatal("resolution before completion")
	}
	n, res := b.Cycle(1)
	if res == nil || res.Op != br || res.Cycle != 1 {
		t.Fatalf("resolution = %+v", res)
	}
	if n != 0 {
		t.Errorf("mispredict point committed before being cleared (%d)", n)
	}
	// Simulator handles the redirect: squash younger, clear the point.
	b.SquashFrom(1)
	b.ClearMispredictPoint(br)
	n, _ = b.Cycle(2)
	if n != 1 {
		t.Errorf("cleared branch did not commit: %d", n)
	}
}

func TestSquashFromKeepsOlder(t *testing.T) {
	b := newTestBackend()
	for i := uint64(0); i < 10; i++ {
		b.Insert(alu(i))
	}
	if got := b.SquashFrom(4); got != 6 {
		t.Errorf("squashed %d, want 6", got)
	}
	if b.InFlight() != 4 {
		t.Errorf("in flight %d, want 4", b.InFlight())
	}
	if seq, ok := b.OldestSeq(); !ok || seq != 0 {
		t.Errorf("oldest = %d,%v", seq, ok)
	}
}

func TestOutOfOrderInsertKeepsSeqOrder(t *testing.T) {
	b := newTestBackend()
	// Parallel rename inserts fragment i+1's ops before fragment i's
	// stragglers; commit order must still be seq order.
	b.Insert(alu(2))
	b.Insert(alu(0))
	b.Insert(alu(1))
	if b.order[0].Seq != 0 || b.order[1].Seq != 1 || b.order[2].Seq != 2 {
		t.Fatalf("window order: %d %d %d", b.order[0].Seq, b.order[1].Seq, b.order[2].Seq)
	}
}

func TestWindowCapacity(t *testing.T) {
	b := newTestBackend()
	if b.FreeSlots() != 256 {
		t.Fatalf("free slots %d", b.FreeSlots())
	}
	// Fill with a dependence chain so nothing commits quickly.
	for i := uint64(0); i < 256; i++ {
		var op *Op
		if i == 0 {
			op = &Op{Seq: i, Inst: isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}}
		} else {
			op = &Op{Seq: i, Inst: isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}}
			op.Producers[0] = i - 1
			op.NProd = 1
		}
		b.Insert(op)
	}
	if b.FreeSlots() != 0 {
		t.Errorf("free slots %d after filling", b.FreeSlots())
	}
}
