package backend

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
)

func TestCommitBarrierBlocksYoungerOps(t *testing.T) {
	b := newTestBackend()
	// Ops 5..8 are in the window; ops 0..4 have not been delivered by
	// rename yet (e.g. a delayed renamer waiting on a mapping).
	for i := uint64(5); i < 9; i++ {
		b.Insert(alu(i))
	}
	b.SetCommitBarrier(5)
	b.Cycle(0)
	n, _ := b.Cycle(1)
	if n != 0 {
		t.Fatalf("committed %d ops past the barrier", n)
	}
	// Rename delivers the older ops and lifts the barrier.
	for i := uint64(0); i < 5; i++ {
		b.Insert(alu(i))
	}
	b.SetCommitBarrier(^uint64(0))
	b.Cycle(2)
	n, _ = b.Cycle(3)
	if n != 9 {
		t.Fatalf("committed %d, want all 9", n)
	}
}

func TestCommitBarrierExactBoundary(t *testing.T) {
	b := newTestBackend()
	b.Insert(alu(3))
	b.Insert(alu(4))
	b.SetCommitBarrier(4) // op 3 may commit; op 4 may not
	b.Cycle(0)
	n, _ := b.Cycle(1)
	if n != 1 {
		t.Fatalf("committed %d, want exactly 1 (below the barrier)", n)
	}
}

func TestWrongPathExecutionCounted(t *testing.T) {
	b := newTestBackend()
	wp := alu(0)
	wp.WrongPath = true
	b.Insert(wp)
	b.Cycle(0)
	if b.WrongPathExecuted() != 1 {
		t.Errorf("wrong-path executed = %d", b.WrongPathExecuted())
	}
	if b.FreeSlots() != b.cfg.WindowSize-1 {
		t.Errorf("free slots %d", b.FreeSlots())
	}
}

func TestIssueIsOldestFirstUnderFUContention(t *testing.T) {
	b := newTestBackend()
	// Five multiplies (4 FUs): the four OLDEST must win.
	var ops []*Op
	for i := uint64(0); i < 5; i++ {
		op := &Op{Seq: i, Inst: isa.Inst{Op: isa.OpMul, Rd: 1, Rs1: 2, Rs2: 3}}
		ops = append(ops, op)
		b.Insert(op)
	}
	b.Cycle(0)
	for i, op := range ops {
		wantIssued := i < 4
		if op.Issued() != wantIssued {
			t.Errorf("op %d issued=%v, want %v", i, op.Issued(), wantIssued)
		}
	}
}

func TestResolutionReportsOldestPoint(t *testing.T) {
	b := newTestBackend()
	young := &Op{Seq: 10, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 2}, MispredictPoint: true}
	old := &Op{Seq: 3, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 2}, MispredictPoint: true}
	b.Insert(young)
	b.Insert(old)
	b.Cycle(0)
	_, res := b.Cycle(1)
	if res == nil || res.Op != old {
		t.Fatalf("resolution = %+v, want the oldest point", res)
	}
}

func TestSquashFromIsExactPrefix(t *testing.T) {
	b := newTestBackend()
	for i := uint64(0); i < 8; i += 2 { // gappy seqs, as after earlier squashes
		b.Insert(alu(i))
	}
	if n := b.SquashFrom(3); n != 2 {
		t.Fatalf("squashed %d, want 2 (seqs 4 and 6)", n)
	}
	if b.InFlight() != 2 {
		t.Errorf("in flight %d, want 2 (seqs 0 and 2)", b.InFlight())
	}
}
