package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rule is one deterministic network fault: the first Times requests to the
// named endpoint are affected, then the rule is spent. Faults are counted,
// not sampled — a chaos run is reproducible.
//
// Kinds:
//
//	drop       send the request, discard the response, surface a transport
//	           error (the server-side effect happened; the client must cope
//	           with not knowing — exercises duplicate-report fencing)
//	blackhole  never send the request, surface a transport error (a
//	           heartbeat blackhole starves the lease into expiry)
//	dup        send the request twice, return the second response (the
//	           duplicate exercises idempotence/fencing server-side)
//	delay      hold the request for Delay (default 100ms) before sending
//	corrupt    send the request, flip the last byte of the response body
//	           (a bit error on the wire — a framed blob fails its CRC
//	           re-verification and the fetcher must quarantine and retry)
type Rule struct {
	Endpoint string // "config", "lease", "heartbeat", "report", "blob"
	Kind     string // "drop", "blackhole", "dup", "delay", "corrupt"
	Times    int    // requests affected (0 = 1)
	Delay    time.Duration
}

// ChaosKinds lists the accepted network fault kinds.
var ChaosKinds = []string{"drop", "blackhole", "dup", "delay", "corrupt"}

// ChaosEndpoints lists the endpoints a rule may target.
var ChaosEndpoints = []string{"config", "lease", "heartbeat", "report", "blob"}

var endpointPaths = map[string]string{
	"config":    PathConfig,
	"lease":     PathLease,
	"heartbeat": PathHeartbeat,
	"report":    PathReport,
	"blob":      PathBlob,
}

// ParseRule parses one "endpoint=kind[:times]" chaos spec entry.
func ParseRule(s string) (Rule, error) {
	ep, rest, ok := strings.Cut(s, "=")
	if !ok {
		return Rule{}, fmt.Errorf("fabric: chaos rule %q: want endpoint=kind[:times]", s)
	}
	if _, known := endpointPaths[ep]; !known {
		return Rule{}, fmt.Errorf("fabric: chaos rule %q: endpoint must be one of %s",
			s, strings.Join(ChaosEndpoints, ", "))
	}
	kind, timesStr, hasTimes := strings.Cut(rest, ":")
	r := Rule{Endpoint: ep, Kind: kind, Times: 1}
	switch kind {
	case "drop", "blackhole", "dup", "corrupt":
	case "delay":
		r.Delay = 100 * time.Millisecond
	default:
		return Rule{}, fmt.Errorf("fabric: chaos rule %q: kind must be one of %s",
			s, strings.Join(ChaosKinds, ", "))
	}
	if hasTimes {
		n, err := strconv.Atoi(timesStr)
		if err != nil || n < 1 {
			return Rule{}, fmt.Errorf("fabric: chaos rule %q: times must be a positive integer", s)
		}
		r.Times = n
	}
	return r, nil
}

type ruleState struct {
	Rule
	left int
}

// Chaos applies a deterministic fault schedule to a fabric client's
// transport. One Chaos instance is shared across a fleet's clients, so
// "first N requests" counts globally and a run is reproducible regardless
// of which worker draws the fault.
type Chaos struct {
	mu    sync.Mutex
	rules []*ruleState
}

// NewChaos builds a schedule from rules (nil/empty is a valid no-op).
func NewChaos(rules []Rule) *Chaos {
	c := &Chaos{}
	for _, r := range rules {
		times := r.Times
		if times < 1 {
			times = 1
		}
		c.rules = append(c.rules, &ruleState{Rule: r, left: times})
	}
	return c
}

// take consumes one firing of the first live rule matching path, if any.
func (c *Chaos) take(path string) *Rule {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rs := range c.rules {
		if rs.left > 0 && matchEndpoint(path, rs.Endpoint) {
			rs.left--
			r := rs.Rule
			return &r
		}
	}
	return nil
}

// matchEndpoint matches a request path against a rule's endpoint. The blob
// endpoint is a prefix (the kind/key ride in the path); the control-plane
// endpoints are exact paths matched by suffix (the BaseURL may carry a
// prefix in front of them).
func matchEndpoint(path, endpoint string) bool {
	p := endpointPaths[endpoint]
	if endpoint == "blob" {
		return strings.Contains(path, p)
	}
	return strings.HasSuffix(path, p)
}

// Remaining reports how many rule firings are left unconsumed (0 after a
// fully exercised run — tests assert the schedule actually fired).
func (c *Chaos) Remaining() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, rs := range c.rules {
		n += rs.left
	}
	return n
}

// chaosTransport wraps an http.RoundTripper with the fault schedule.
type chaosTransport struct {
	c  *Chaos
	rt http.RoundTripper
}

// Wrap returns a transport applying c's schedule over rt (nil rt = the
// default transport). A nil *Chaos returns rt unchanged.
func (c *Chaos) Wrap(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	if c == nil {
		return rt
	}
	return &chaosTransport{c: c, rt: rt}
}

// ErrChaos marks transport errors injected by the chaos layer.
var ErrChaos = errors.New("fabric: chaos-injected transport fault")

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.c.take(req.URL.Path)
	if r == nil {
		return t.rt.RoundTrip(req)
	}
	switch r.Kind {
	case "blackhole":
		// Consume the body like a real transport would have.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: blackholed %s", ErrChaos, req.URL.Path)
	case "drop":
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: dropped response from %s", ErrChaos, req.URL.Path)
	case "dup":
		first, second, err := t.duplicate(req)
		if err != nil {
			return nil, err
		}
		if first != nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return second, nil
	case "delay":
		timer := time.NewTimer(r.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.rt.RoundTrip(req)
	case "corrupt":
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			// Flip the last byte: for a framed blob that's inside the
			// payload, so the CRC re-verification on receipt must fail.
			body[len(body)-1] ^= 0xff
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	}
	return t.rt.RoundTrip(req)
}

// duplicate sends req twice (requires a rewindable body) and returns both
// responses; the caller discards the first — the duplicate is what the
// server saw twice.
func (t *chaosTransport) duplicate(req *http.Request) (first, second *http.Response, err error) {
	var body []byte
	if req.Body != nil {
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	mk := func() *http.Request {
		r2 := req.Clone(req.Context())
		if body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
		}
		return r2
	}
	first, err = t.rt.RoundTrip(mk())
	if err != nil {
		return nil, nil, err
	}
	second, err = t.rt.RoundTrip(mk())
	if err != nil {
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		return nil, nil, err
	}
	return first, second, nil
}
