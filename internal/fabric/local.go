package fabric

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
)

// LocalFleet is the -local mode: the coordinator served over an httptest
// loopback listener with N in-process workers pulling from it. It exists so
// the bit-identical determinism suite gates the distributed path — leases,
// epochs, heartbeats, fencing, chaos — with the exact same HTTP surface a
// multi-machine deployment uses, minus the machines.
type LocalFleet struct {
	srv    *httptest.Server
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	errs []error
}

// StartLocal serves c over a loopback listener and starts n workers against
// it, each built by mk (worker ids are "w0".."wN-1"). chaos, when non-nil,
// wraps every worker's transport with the shared fault schedule. Call
// c.Shutdown() then fleet.Close() to drain.
func StartLocal(c *Coordinator, n int, chaos *Chaos, mk func(id, baseURL string, client *http.Client) *Worker) *LocalFleet {
	srv := httptest.NewServer(c.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	f := &LocalFleet{srv: srv, cancel: cancel}
	client := &http.Client{Transport: chaos.Wrap(nil)}
	for i := 0; i < n; i++ {
		w := mk(fmt.Sprintf("w%d", i), srv.URL, client)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if err := w.Loop(ctx); err != nil && ctx.Err() == nil {
				f.mu.Lock()
				f.errs = append(f.errs, fmt.Errorf("worker %s: %w", w.ID, err))
				f.mu.Unlock()
			}
		}()
	}
	return f
}

// URL returns the fleet's loopback coordinator URL.
func (f *LocalFleet) URL() string { return f.srv.URL }

// Close waits for the workers to exit (they do once the coordinator is shut
// down), then tears the listener down. It returns the first worker error,
// if any.
func (f *LocalFleet) Close() error {
	f.wg.Wait()
	f.cancel()
	f.srv.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.errs) > 0 {
		return f.errs[0]
	}
	return nil
}
