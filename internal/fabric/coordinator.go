package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parallel-frontend/pfe/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat before
	// the cell is re-queued (0 = 10s). Heartbeat is the interval workers are
	// told to beat at (0 = LeaseTTL/3).
	LeaseTTL  time.Duration
	Heartbeat time.Duration

	// MaxRetries and RetryBackoff mirror the harness's per-cell retry
	// machinery: every lease expiry or errored report counts as one failed
	// attempt, a cell is re-queued until it has failed 1+MaxRetries times,
	// and a re-queued cell only becomes leasable again after the attempt's
	// backoff (0 = 100ms base, doubling per attempt, capped at 5s; negative
	// disables the delay).
	MaxRetries   int
	RetryBackoff time.Duration

	// Config is the opaque sweep configuration served at /config; workers
	// build their run options from it.
	Config json.RawMessage

	// Blobs, when non-nil, backs the artifact plane at PathBlob: workers
	// fetch program images, oracle tapes and memoized results by hash
	// instead of rebuilding them. Nil disables the plane (blob GETs answer
	// 404 and workers build locally).
	Blobs BlobSource

	// BuildHoldoff is the build-collapse window on the artifact plane: after
	// one worker is handed the builder role for a missing blob (a 404),
	// further askers are answered 202 (build pending, poll again) for this
	// long before the role is presumed abandoned and reassigned (0 = 15s).
	BuildHoldoff time.Duration
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 10 * time.Second
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return o.leaseTTL() / 3
}

func (c *Coordinator) buildHoldoff() time.Duration {
	if c.opts.BuildHoldoff > 0 {
		return c.opts.BuildHoldoff
	}
	return 15 * time.Second
}

// backoff returns how long a cell stays unleasable after its attempt-th
// failure, mirroring the harness's sleepBackoff schedule.
func (o Options) backoff(attempt int) time.Duration {
	base := o.RetryBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = 100 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > 5*time.Second || d <= 0 {
		d = 5 * time.Second
	}
	return d
}

// ResultMeta is the provenance of an accepted result: which worker produced
// it, under which lease epoch, after how many attempts and re-queues.
type ResultMeta struct {
	Worker    string
	WorkerNum int
	Epoch     int64
	Attempts  int
	Requeues  int
	Wall      time.Duration
}

// BatchHooks receives batch lifecycle callbacks. All hooks may be nil; they
// are invoked from HTTP handler goroutines (and the expiry scanner) without
// the coordinator lock held. For a given cell, lifecycle events are ordered:
// a lease precedes its requeue or resolution, and a cell resolves exactly
// once (OnResult or OnFailure, never both).
type BatchHooks struct {
	OnLease   func(index int, worker string, workerNum int, epoch int64)
	OnRequeue func(index int, worker string, epoch int64, cause string)
	OnResult  func(index int, result json.RawMessage, m ResultMeta)
	OnFailure func(index int, e CellError, attempts int)
}

// WorkerStat is one worker's accounting for a completed batch.
type WorkerStat struct {
	ID        string
	Num       int
	Leases    int
	Completed int
	Requeued  int // leases lost to expiry or errored attempts
	Fenced    int // stale-epoch reports rejected
}

// WorkerStatus is one roster entry for /status: process-lifetime accounting
// plus liveness.
type WorkerStatus struct {
	ID              string  `json:"id"`
	Num             int     `json:"num"`
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	Busy            string  `json:"busy,omitempty"` // "exp/bench/key" of the held lease
	Leases          int64   `json:"leases"`
	Completed       int64   `json:"completed"`
	Requeued        int64   `json:"requeued"`
	Fenced          int64   `json:"fenced"`
}

type cellKey struct {
	exp          string
	batch, index int
}

func refKey(r CellRef) cellKey { return cellKey{r.Exp, r.Batch, r.Index} }

// cellState is one cell's lease-table row within the active batch.
type cellState struct {
	ref       CellRef
	epoch     int64 // last issued epoch (0 = never leased)
	leased    bool
	worker    string
	deadline  time.Time
	attempts  int // failed attempts (expiries + errored reports)
	requeues  int
	notBefore time.Time // backoff gate for the next lease
	resolved  bool
}

// workerInfo is the process-lifetime roster entry for one worker id.
type workerInfo struct {
	id                                  string
	num                                 int // dense arrival order, used for span attribution
	lastSeen                            time.Time
	busy                                string
	gone                                bool // answered 410 after Shutdown (clean exit observed)
	leases, completed, requeued, fenced int64
}

// batchRun is the state of the single active RunBatch.
type batchRun struct {
	cells   map[cellKey]*cellState
	order   []cellKey // lease-table iteration order (cell index order)
	queue   []cellKey // leasable cells, FIFO
	pending int
	hooks   BatchHooks
	stats   map[string]*WorkerStat
	done    chan struct{} // closed when pending hits 0

	// hookWG counts scheduled-but-unfinished hook invocations. Hooks run
	// outside the coordinator lock, so the batch can be "done" (pending 0)
	// while a hook for an earlier-resolved cell is still writing its
	// outcome; RunBatch drains this before returning.
	hookWG sync.WaitGroup
}

// Coordinator owns the lease table and serves the fabric protocol. One batch
// of cells runs at a time (the harness schedules batches sequentially);
// workers polling between batches get 204 and retry.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	batch    *batchRun
	workers  map[string]*workerInfo
	closed   bool
	closedAt time.Time

	// Process-lifetime counters (pfe_fabric_* metrics).
	leases     atomic.Int64
	heartbeats atomic.Int64
	expiries   atomic.Int64
	requeues   atomic.Int64
	fenced     atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64

	// Artifact-plane counters (pfe_fabric_blob_* metrics; see blob.go).
	blobs blobStats
}

// NewCoordinator returns an idle coordinator; RunBatch activates it.
func NewCoordinator(opts Options) *Coordinator {
	return &Coordinator{opts: opts, workers: map[string]*workerInfo{}}
}

// HeartbeatEvery is the interval workers are told to beat at.
func (c *Coordinator) HeartbeatEvery() time.Duration { return c.opts.heartbeat() }

// Shutdown makes every subsequent lease request answer 410 Gone, which is a
// worker's signal to exit. In-flight batches are unaffected (there should be
// none when the harness shuts down).
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.closed = true
	if c.closedAt.IsZero() {
		c.closedAt = time.Now()
	}
	c.mu.Unlock()
}

// DrainGone blocks until every worker recently seen (within window of
// Shutdown) has polled once more and received its 410 exit signal, or until
// timeout. It exists so the coordinator's listener is not torn down between
// a worker's last report and its next lease poll — that window would turn a
// clean drain into a spurious coordinator-unreachable exit. Workers silent
// for longer than window (killed or partitioned) are not waited for; their
// absence is exactly why the wait is bounded. Reports whether every live
// worker drained.
func (c *Coordinator) DrainGone(window, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		cut := c.closedAt.Add(-window)
		drained := true
		for _, w := range c.workers {
			if !w.gone && w.lastSeen.After(cut) {
				drained = false
				break
			}
		}
		c.mu.Unlock()
		if drained {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Register exposes the coordinator's counters as pfe_fabric_* metrics.
func (c *Coordinator) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cf := func(v *atomic.Int64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	reg.CounterFunc("pfe_fabric_leases_total", "Cell leases granted to workers.", cf(&c.leases))
	reg.CounterFunc("pfe_fabric_heartbeats_total", "Lease heartbeats accepted.", cf(&c.heartbeats))
	reg.CounterFunc("pfe_fabric_lease_expiries_total", "Leases expired (missed heartbeats) and re-queued.", cf(&c.expiries))
	reg.CounterFunc("pfe_fabric_requeues_total", "Cells re-queued after an expiry or errored attempt.", cf(&c.requeues))
	reg.CounterFunc("pfe_fabric_fenced_reports_total", "Stale-epoch reports and heartbeats fenced out.", cf(&c.fenced))
	reg.CounterFunc("pfe_fabric_cells_completed_total", "Cells resolved with a result.", cf(&c.completed))
	reg.CounterFunc("pfe_fabric_cells_failed_total", "Cells that exhausted their retries.", cf(&c.failed))
	reg.CounterFunc("pfe_fabric_blob_serves_total", "Artifact blobs served to workers.", cf(&c.blobs.serves))
	reg.CounterFunc("pfe_fabric_blob_serve_misses_total", "Blob fetches answered 404 (artifact absent).", cf(&c.blobs.serveMisses))
	reg.CounterFunc("pfe_fabric_blob_collapses_total", "Blob fetches answered 202 (build pending on another worker).", cf(&c.blobs.collapses))
	reg.CounterFunc("pfe_fabric_blob_accepts_total", "Worker-published blobs ingested into the store.", cf(&c.blobs.accepts))
	reg.CounterFunc("pfe_fabric_blob_dup_accepts_total", "Duplicate blob publishes (already present).", cf(&c.blobs.dupAccepts))
	reg.CounterFunc("pfe_fabric_blob_rejects_total", "Blob publishes rejected for a bad CRC frame.", cf(&c.blobs.rejects))
	reg.CounterFunc("pfe_fabric_blob_bytes_out_total", "Framed blob bytes served to workers.", cf(&c.blobs.bytesOut))
	reg.CounterFunc("pfe_fabric_blob_bytes_in_total", "Framed blob bytes received from worker publishes.", cf(&c.blobs.bytesIn))
	reg.GaugeFunc("pfe_fabric_blob_unique_served", "Distinct artifacts ever served over the wire.", func() float64 {
		c.blobs.mu.Lock()
		defer c.blobs.mu.Unlock()
		return float64(len(c.blobs.unique))
	})
	reg.GaugeFunc("pfe_fabric_workers", "Workers ever seen by the coordinator.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	reg.GaugeFunc("pfe_fabric_cells_pending", "Unresolved cells in the active batch.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.batch == nil {
			return 0
		}
		return float64(c.batch.pending)
	})
}

// Roster snapshots every worker the coordinator has ever seen, in arrival
// order (the /status fleet view).
func (c *Coordinator) Roster() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			ID: w.id, Num: w.num,
			LastSeenSeconds: time.Since(w.lastSeen).Seconds(),
			Busy:            w.busy,
			Leases:          w.leases, Completed: w.completed,
			Requeued: w.requeued, Fenced: w.fenced,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// RunBatch registers cells with the lease table, makes them leasable, and
// blocks until every cell is resolved (result or retries exhausted) or ctx
// is cancelled. Hooks fire as cells progress; per-worker stats for the batch
// are returned. Only one batch may be active at a time.
func (c *Coordinator) RunBatch(ctx context.Context, cells []CellRef, h BatchHooks) ([]WorkerStat, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	b := &batchRun{
		cells: make(map[cellKey]*cellState, len(cells)),
		hooks: h,
		stats: map[string]*WorkerStat{},
		done:  make(chan struct{}),
	}
	c.mu.Lock()
	if c.batch != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: a batch is already running")
	}
	for _, ref := range cells {
		k := refKey(ref)
		if _, dup := b.cells[k]; dup {
			c.mu.Unlock()
			return nil, fmt.Errorf("fabric: duplicate cell %s batch %d index %d", ref.Exp, ref.Batch, ref.Index)
		}
		b.cells[k] = &cellState{ref: ref}
		b.order = append(b.order, k)
		b.queue = append(b.queue, k)
	}
	b.pending = len(cells)
	c.batch = b
	c.mu.Unlock()

	// Expiry scanner: leases are also checked lazily on every request, but
	// an idle fleet (all workers dead) must still expire and fail cells.
	tick := c.opts.leaseTTL() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.mu.Lock()
				calls := c.scanExpiredLocked(time.Now())
				if len(calls) > 0 {
					b.hookWG.Add(len(calls))
				}
				c.mu.Unlock()
				for _, fn := range calls {
					fn()
					b.hookWG.Done()
				}
			case <-b.done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var err error
	select {
	case <-b.done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	c.mu.Lock()
	c.batch = nil
	stats := make([]WorkerStat, 0, len(b.stats))
	for _, s := range b.stats {
		stats = append(stats, *s)
	}
	c.mu.Unlock()
	<-scanDone
	// No hook can be scheduled anymore (the batch is detached); wait out the
	// ones already in flight so the caller may read what they wrote.
	b.hookWG.Wait()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Num < stats[j].Num })
	return stats, err
}

// Stats snapshots the process-lifetime fabric counters (the CLI's end-of-run
// summary; the live view is the pfe_fabric_* metrics).
type Stats struct {
	Leases     int64
	Heartbeats int64
	Expiries   int64
	Requeues   int64
	Fenced     int64
	Completed  int64
	Failed     int64
}

// Stats returns the coordinator's lifetime counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Leases:     c.leases.Load(),
		Heartbeats: c.heartbeats.Load(),
		Expiries:   c.expiries.Load(),
		Requeues:   c.requeues.Load(),
		Fenced:     c.fenced.Load(),
		Completed:  c.completed.Load(),
		Failed:     c.failed.Load(),
	}
}

// touchLocked records worker liveness and returns its roster entry.
func (c *Coordinator) touchLocked(id string) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{id: id, num: len(c.workers)}
		c.workers[id] = w
	}
	w.lastSeen = time.Now()
	return w
}

// statLocked returns the batch-scoped stats row for a worker.
func (b *batchRun) statLocked(w *workerInfo) *WorkerStat {
	s := b.stats[w.id]
	if s == nil {
		s = &WorkerStat{ID: w.id, Num: w.num}
		b.stats[w.id] = s
	}
	return s
}

// scanExpiredLocked walks the lease table and re-queues (or fails) every
// cell whose lease deadline has passed, counting each expiry as one failed
// attempt. It returns the hook invocations to run after the lock is
// released. Callers hold c.mu.
func (c *Coordinator) scanExpiredLocked(now time.Time) []func() {
	b := c.batch
	if b == nil {
		return nil
	}
	var calls []func()
	for _, k := range b.order {
		cs := b.cells[k]
		if cs.resolved || !cs.leased || now.Before(cs.deadline) {
			continue
		}
		c.expiries.Add(1)
		if w := c.workers[cs.worker]; w != nil {
			w.requeued++
			w.busy = ""
			b.statLocked(w).Requeued++
		}
		calls = append(calls, c.attemptFailedLocked(b, cs, now, "expiry")...)
	}
	return calls
}

// attemptFailedLocked charges one failed attempt to a cell: the lease is
// invalidated (fencing any late report under its epoch), and the cell is
// either re-queued behind its backoff or, with retries exhausted, resolved
// as a failure. Callers hold c.mu; the returned closures run unlocked.
func (c *Coordinator) attemptFailedLocked(b *batchRun, cs *cellState, now time.Time, cause string) []func() {
	cs.leased = false
	cs.attempts++
	worker, epoch, idx := cs.worker, cs.epoch, cs.ref.Index
	if cs.attempts > c.opts.MaxRetries {
		cs.resolved = true
		b.pending--
		c.failed.Add(1)
		attempts := cs.attempts
		var calls []func()
		if h := b.hooks.OnFailure; h != nil {
			e := CellError{
				Msg:  fmt.Sprintf("fabric: lease on %s/%s lost to %s under worker %q (epoch %d)", cs.ref.Bench, cs.ref.Key, cause, worker, epoch),
				Kind: "lease-" + cause,
			}
			calls = append(calls, func() { h(idx, e, attempts) })
		}
		if b.pending == 0 {
			close(b.done)
		}
		return calls
	}
	cs.requeues++
	cs.notBefore = now.Add(c.opts.backoff(cs.attempts))
	b.queue = append(b.queue, refKey(cs.ref))
	c.requeues.Add(1)
	if h := b.hooks.OnRequeue; h != nil {
		return []func(){func() { h(idx, worker, epoch, cause) }}
	}
	return nil
}

// Handler returns the coordinator's HTTP mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathConfig, c.handleConfig)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathReport, c.handleReport)
	mux.HandleFunc(PathBlob, c.handleBlob)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "fabric: bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	cfg := c.opts.Config
	if cfg == nil {
		cfg = json.RawMessage("{}")
	}
	writeJSON(w, http.StatusOK, ConfigResponse{
		Config:      cfg,
		LeaseTTLMs:  c.opts.leaseTTL().Milliseconds(),
		HeartbeatMs: c.opts.heartbeat().Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		// Record that this worker observed the shutdown (DrainGone watches
		// for it) before sending its exit signal.
		c.touchLocked(req.Worker).gone = true
		c.mu.Unlock()
		w.WriteHeader(http.StatusGone)
		return
	}
	wi := c.touchLocked(req.Worker)
	calls := c.scanExpiredLocked(now)
	b := c.batch
	max := req.Max
	if max < 1 {
		max = 1
	}
	var granted []Lease
	if b != nil {
		// FIFO over leasable cells, skipping the ones still in backoff;
		// grant up to max leases in one pass and keep the rest queued.
		var kept []cellKey
		for _, k := range b.queue {
			cs := b.cells[k]
			if len(granted) >= max || cs.resolved || cs.leased || now.Before(cs.notBefore) {
				kept = append(kept, k)
				continue
			}
			cs.leased = true
			cs.worker = req.Worker
			cs.epoch++
			cs.deadline = now.Add(c.opts.leaseTTL())
			granted = append(granted, Lease{Cell: cs.ref, Epoch: cs.epoch, TTLMs: c.opts.leaseTTL().Milliseconds()})
			c.leases.Add(1)
			wi.leases++
			wi.busy = cs.ref.Exp + "/" + cs.ref.Bench + "/" + cs.ref.Key
			b.statLocked(wi).Leases++
			if h := b.hooks.OnLease; h != nil {
				idx, worker, num, epoch := cs.ref.Index, req.Worker, wi.num, cs.epoch
				calls = append(calls, func() { h(idx, worker, num, epoch) })
			}
		}
		b.queue = kept
	}
	if len(calls) > 0 {
		b.hookWG.Add(len(calls))
	}
	c.mu.Unlock()
	for _, fn := range calls {
		fn()
		b.hookWG.Done()
	}
	if len(granted) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	lease := granted[0]
	lease.More = granted[1:]
	if len(lease.More) == 0 {
		lease.More = nil
	}
	writeJSON(w, http.StatusOK, &lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.touchLocked(req.Worker)
	calls := c.scanExpiredLocked(now)
	b := c.batch
	ok := false
	if b != nil {
		if cs := b.cells[refKey(req.Cell)]; cs != nil &&
			!cs.resolved && cs.leased && cs.worker == req.Worker && cs.epoch == req.Epoch {
			cs.deadline = now.Add(c.opts.leaseTTL())
			c.heartbeats.Add(1)
			ok = true
		}
	}
	if !ok {
		c.fenced.Add(1)
	}
	if len(calls) > 0 {
		b.hookWG.Add(len(calls))
	}
	c.mu.Unlock()
	for _, fn := range calls {
		fn()
		b.hookWG.Done()
	}
	if !ok {
		w.WriteHeader(http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Result == nil && req.Error == nil {
		http.Error(w, "fabric: report carries neither result nor error", http.StatusBadRequest)
		return
	}
	now := time.Now()
	c.mu.Lock()
	wi := c.touchLocked(req.Worker)
	calls := c.scanExpiredLocked(now)
	b := c.batch
	var cs *cellState
	if b != nil {
		cs = b.cells[refKey(req.Cell)]
	}
	// Fencing: only the live lease's epoch may resolve the cell. A zombie
	// worker whose lease expired (and was re-issued under epoch+1) gets 409
	// here, and its result — computed under a lost lease — is discarded.
	if cs == nil || cs.resolved || !cs.leased || cs.epoch != req.Epoch {
		c.fenced.Add(1)
		wi.fenced++
		if b != nil {
			b.statLocked(wi).Fenced++
		}
		if len(calls) > 0 {
			b.hookWG.Add(len(calls))
		}
		c.mu.Unlock()
		for _, fn := range calls {
			fn()
			b.hookWG.Done()
		}
		w.WriteHeader(http.StatusConflict)
		return
	}
	wi.busy = ""
	if req.Error != nil {
		wi.requeued++
		b.statLocked(wi).Requeued++
		e := *req.Error
		attemptsBefore := cs.attempts
		more := c.attemptFailedLocked(b, cs, now, "error")
		// attemptFailedLocked charges the attempt; on exhaustion it reports
		// a generic lease-loss error, so substitute the worker's structured
		// one (the last attempt's real cause).
		if cs.resolved && b.hooks.OnFailure != nil {
			idx, attempts := cs.ref.Index, attemptsBefore+1
			h := b.hooks.OnFailure
			calls = append(calls, func() { h(idx, e, attempts) })
		} else {
			calls = append(calls, more...)
		}
		if len(calls) > 0 {
			b.hookWG.Add(len(calls))
		}
		c.mu.Unlock()
		for _, fn := range calls {
			fn()
			b.hookWG.Done()
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	cs.resolved = true
	cs.leased = false
	b.pending--
	c.completed.Add(1)
	wi.completed++
	b.statLocked(wi).Completed++
	meta := ResultMeta{
		Worker: req.Worker, WorkerNum: wi.num, Epoch: req.Epoch,
		Attempts: cs.attempts + 1, Requeues: cs.requeues,
		Wall: time.Duration(req.WallMs * float64(time.Millisecond)),
	}
	if h := b.hooks.OnResult; h != nil {
		idx, res := cs.ref.Index, req.Result
		calls = append(calls, func() { h(idx, res, meta) })
	}
	if b.pending == 0 {
		close(b.done)
	}
	if len(calls) > 0 {
		b.hookWG.Add(len(calls))
	}
	c.mu.Unlock()
	for _, fn := range calls {
		fn()
		b.hookWG.Done()
	}
	w.WriteHeader(http.StatusOK)
}
