package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parallel-frontend/pfe/internal/artifact/store"
)

// memBlobs is a BlobSource over a map, using the store's real frame so the
// endpoint tests exercise the exact wire format workers verify.
type memBlobs struct {
	mu sync.Mutex
	m  map[string][]byte // framed, key = kind/key
}

func newMemBlobs() *memBlobs { return &memBlobs{m: map[string][]byte{}} }

func (b *memBlobs) put(kind, key string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[kind+"/"+key] = store.Frame(payload)
}

func (b *memBlobs) OpenBlob(kind, key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.m[kind+"/"+key]
	return f, ok
}

func (b *memBlobs) AcceptBlob(kind, key string, framed []byte) (bool, error) {
	if _, err := store.CheckFrame(framed); err != nil {
		return false, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.m[kind+"/"+key]; dup {
		return false, nil
	}
	b.m[kind+"/"+key] = framed
	return true, nil
}

// TestSplitBlobPath pins the blob address grammar, including the rejection
// of kinds and keys that could steer a store outside its object tree.
func TestSplitBlobPath(t *testing.T) {
	kind, key, ok := SplitBlobPath(BlobPath("tape", "tape:abc:123"))
	if !ok || kind != "tape" || key != "tape:abc:123" {
		t.Errorf("round trip = (%q, %q, %v), want (tape, tape:abc:123, true)", kind, key, ok)
	}
	bad := []string{
		"/fabric/v1/blob/",               // no kind
		PathBlob + "tape",                // no key
		PathBlob + "tape/",               // empty key
		PathBlob + "../escape/key",       // kind escaping the object tree
		PathBlob + "ta.pe/key",           // kind charset violation
		PathBlob + "tape/k%2Fey",         // key with an escaped slash
		PathBlob + "tape/k%5Cey",         // key with an escaped backslash
		PathBlob + "tape/%zz",            // undecodable escape
		"/fabric/v1/lease",               // not a blob path at all
		PathBlob + "Tape/key",            // uppercase kind (charset is lowercase)
		PathBlob + "tape/sub/deeper/key", // key may not contain raw slashes
	}
	for _, p := range bad {
		if k, ky, ok := SplitBlobPath(p); ok {
			t.Errorf("SplitBlobPath(%q) = (%q, %q, true), want rejection", p, k, ky)
		}
	}
}

// TestBlobEndpoint drives GET and PUT over HTTP against a coordinator's blob
// plane: hits, misses, publishes, duplicate publishes, and corrupt-frame
// rejection, with every counter asserted.
func TestBlobEndpoint(t *testing.T) {
	src := newMemBlobs()
	payload := []byte("oracle tape bytes, block-compressed")
	src.put("tape", "tape:abc:1", payload)
	c := NewCoordinator(Options{Blobs: src})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// GET hit: the body is a verifiable frame carrying the exact payload.
	resp, err := http.Get(srv.URL + BlobPath("tape", "tape:abc:1"))
	if err != nil {
		t.Fatal(err)
	}
	framed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blob GET: status %d, want 200", resp.StatusCode)
	}
	got, err := store.CheckFrame(framed)
	if err != nil {
		t.Fatalf("served frame failed verification: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("served payload = %q, want %q", got, payload)
	}

	// GET miss.
	resp, err = http.Get(srv.URL + BlobPath("tape", "absent"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent blob GET: status %d, want 404", resp.StatusCode)
	}

	// Malformed path: kind charset violation (raw ../ would be cleaned by
	// the client before the request; SplitBlobPath covers it at unit level).
	resp, err = http.Get(srv.URL + PathBlob + "ta.pe/key")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("traversal blob GET: status %d, want 400", resp.StatusCode)
	}

	put := func(kind, key string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, srv.URL+BlobPath(kind, key), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// PUT: publish, duplicate publish, corrupt publish.
	pub := store.Frame([]byte("program image"))
	if code := put("program", "prog:xyz", pub); code != http.StatusOK {
		t.Fatalf("publish: status %d, want 200", code)
	}
	if code := put("program", "prog:xyz", pub); code != http.StatusOK {
		t.Fatalf("duplicate publish: status %d, want 200", code)
	}
	corrupt := append([]byte(nil), pub...)
	corrupt[len(corrupt)-1] ^= 0xff
	if code := put("program", "prog:bad", corrupt); code != http.StatusBadRequest {
		t.Fatalf("corrupt publish: status %d, want 400", code)
	}
	if _, ok := src.OpenBlob("program", "prog:bad"); ok {
		t.Error("corrupt publish was ingested")
	}
	if _, ok := src.OpenBlob("program", "prog:xyz"); !ok {
		t.Error("published blob not ingested")
	}

	bs := c.BlobStats()
	if bs.Serves != 1 || bs.ServeMisses != 1 || bs.UniqueServed != 1 {
		t.Errorf("serve stats = %+v, want 1 serve, 1 miss, 1 unique", bs)
	}
	if bs.Accepts != 1 || bs.DupAccepts != 1 || bs.Rejects != 1 {
		t.Errorf("accept stats = %+v, want 1 accept, 1 dup, 1 reject", bs)
	}
	if bs.BytesOut != int64(len(framed)) {
		t.Errorf("BytesOut = %d, want %d", bs.BytesOut, len(framed))
	}
	if want := int64(3 * len(pub)); bs.BytesIn != want {
		t.Errorf("BytesIn = %d, want %d (two publishes and one corrupt)", bs.BytesIn, want)
	}
}

// TestBlobEndpointWithoutSource pins the storeless coordinator: GETs answer
// 404 (workers build locally) and publishes are acknowledged and dropped.
func TestBlobEndpointWithoutSource(t *testing.T) {
	c := NewCoordinator(Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + BlobPath("tape", "k"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("sourceless GET: status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, srv.URL+BlobPath("tape", "k"),
		bytes.NewReader(store.Frame([]byte("x"))))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("sourceless publish: status %d, want 200 (acknowledged and dropped)", resp.StatusCode)
	}
}

// TestLeaseBatchingGrantsUpToMax pins the batched control plane: a Max=3
// request drains up to three queued cells in one round trip (extras in
// Lease.More, each under its own epoch), and a legacy request (Max 0) still
// gets exactly one.
func TestLeaseBatchingGrantsUpToMax(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	bc := newBatchCollector()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.RunBatch(context.Background(), refs(4), bc.hooks()); err != nil {
			t.Error(err)
		}
	}()

	var l1 Lease
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w", Max: 3}, &l1); code != http.StatusOK {
		t.Fatalf("batched lease: status %d", code)
	}
	if len(l1.More) != 2 {
		t.Fatalf("batched grant carried %d extras, want 2", len(l1.More))
	}
	leases := append([]Lease{l1}, l1.More...)
	seen := map[int]bool{}
	for i, l := range leases {
		if l.Epoch != 1 || seen[l.Cell.Index] {
			t.Errorf("lease %+v: want epoch 1 and a distinct cell", l)
		}
		seen[l.Cell.Index] = true
		if i > 0 && len(l.More) > 0 {
			t.Errorf("nested More on extra lease %+v", l)
		}
	}

	// Legacy single-lease request drains the last cell, no More.
	var l2 Lease
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w2"}, &l2); code != http.StatusOK {
		t.Fatalf("legacy lease: status %d", code)
	}
	if len(l2.More) != 0 {
		t.Errorf("legacy request got %d extras, want 0", len(l2.More))
	}

	// Queue empty: a further batched request answers 204.
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w", Max: 3}, nil); code != http.StatusNoContent {
		t.Errorf("empty-queue batched lease: status %d, want 204", code)
	}

	for _, l := range append(leases, l2) {
		rep := ReportRequest{Worker: "w", Cell: l.Cell, Epoch: l.Epoch, Result: json.RawMessage(`{}`)}
		if code := postJSON(t, srv.URL+PathReport, rep, nil); code != http.StatusOK {
			t.Fatalf("report for cell %d: status %d", l.Cell.Index, code)
		}
	}
	<-done
	if len(bc.results) != 4 {
		t.Errorf("resolved %d cells, want 4", len(bc.results))
	}
}

// TestWorkerBatchedLeasesWithPrefetch drives a full fleet with lease
// batching and prefetch: every cell resolves exactly once, and the prefetch
// hook observed upcoming cells while earlier ones ran.
func TestWorkerBatchedLeasesWithPrefetch(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second})
	var prefetched atomic.Int64
	fleet := StartLocal(c, 2, nil, func(id, baseURL string, client *http.Client) *Worker {
		return &Worker{ID: id, BaseURL: baseURL, Client: client, Poll: 2 * time.Millisecond,
			MaxLeases: 3,
			Prefetch:  func(l Lease) { prefetched.Add(1) },
			Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
				return json.RawMessage(fmt.Sprintf(`{"cell":%d}`, l.Cell.Index)), time.Millisecond, nil, false
			}}
	})
	bc := newBatchCollector()
	stats, err := c.RunBatch(context.Background(), refs(9), bc.hooks())
	c.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.results) != 9 {
		t.Fatalf("resolved %d cells, want 9", len(bc.results))
	}
	for i := 0; i < 9; i++ {
		var got struct{ Cell int }
		if err := json.Unmarshal([]byte(bc.payloads[i]), &got); err != nil || got.Cell != i {
			t.Errorf("cell %d payload = %q, want its own index", i, bc.payloads[i])
		}
	}
	var leasesSum int
	for _, s := range stats {
		leasesSum += s.Leases
	}
	if leasesSum != 9 {
		t.Errorf("lease grants sum to %d, want 9 (batched leases still count once each)", leasesSum)
	}
	if prefetched.Load() == 0 {
		t.Error("prefetch hook never fired despite batched leases")
	}
}

// TestBatchedLeasesSurviveLongCells pins the heartbeat discipline for queued
// leases: with cells that outlive the TTL, a batch's later leases must not
// expire while the first one computes.
func TestBatchedLeasesSurviveLongCells(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 80 * time.Millisecond, Heartbeat: 20 * time.Millisecond, RetryBackoff: -1})
	fleet := StartLocal(c, 1, nil, func(id, baseURL string, client *http.Client) *Worker {
		return &Worker{ID: id, BaseURL: baseURL, Client: client, Poll: 2 * time.Millisecond,
			MaxLeases: 3,
			Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
				time.Sleep(120 * time.Millisecond) // > TTL: only heartbeats keep the batch alive
				return json.RawMessage(`{}`), time.Millisecond, nil, false
			}}
	})
	bc := newBatchCollector()
	_, err := c.RunBatch(context.Background(), refs(3), bc.hooks())
	c.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.results) != 3 {
		t.Fatalf("resolved %d cells, want 3", len(bc.results))
	}
	if st := c.Stats(); st.Expiries != 0 {
		t.Errorf("expiries = %d, want 0 (queued batch leases must heartbeat from grant)", st.Expiries)
	}
	for i, m := range bc.results {
		if m.Attempts != 1 {
			t.Errorf("cell %d took %d attempts, want 1 (no lease loss)", i, m.Attempts)
		}
	}
}

// TestRetryDelay pins the backoff envelope: growth with attempts, the cap,
// and the jitter band.
func TestRetryDelay(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 10; attempt++ {
		raw := base << (attempt - 1)
		if raw > max || raw <= 0 {
			raw = max
		}
		for i := 0; i < 50; i++ {
			d := retryDelay(attempt, base, max)
			lo := time.Duration(float64(raw) * 0.5)
			hi := time.Duration(float64(raw) * 1.5)
			if d < lo || d >= hi {
				t.Fatalf("retryDelay(%d) = %v, want in [%v, %v)", attempt, d, lo, hi)
			}
		}
	}
	if d := retryDelay(3, 0, time.Second); d <= 0 {
		t.Errorf("zero base produced %v, want a positive delay", d)
	}
}

// TestChaosCorruptFlipsBlobByte pins the corrupt kind end to end at the
// transport: a blob fetched through the chaos client fails frame
// verification exactly once, then the schedule is spent and the retry
// verifies clean.
func TestChaosCorruptFlipsBlobByte(t *testing.T) {
	src := newMemBlobs()
	src.put("tape", "k", []byte("payload bytes"))
	c := NewCoordinator(Options{Blobs: src})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	chaos := NewChaos([]Rule{{Endpoint: "blob", Kind: "corrupt"}})
	client := &http.Client{Transport: chaos.Wrap(nil)}
	fetch := func() error {
		resp, err := client.Get(srv.URL + BlobPath("tape", "k"))
		if err != nil {
			return err
		}
		framed, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		_, err = store.CheckFrame(framed)
		return err
	}
	if err := fetch(); err == nil {
		t.Fatal("corrupted transfer passed frame verification")
	}
	if err := fetch(); err != nil {
		t.Fatalf("post-chaos transfer failed verification: %v", err)
	}
	if n := chaos.Remaining(); n != 0 {
		t.Errorf("chaos schedule has %d unfired faults, want 0", n)
	}
	// The control-plane endpoints never matched the blob rule.
	if got := c.BlobStats().Serves; got != 2 {
		t.Errorf("serves = %d, want 2", got)
	}
}

// TestParseRuleBlobCorrupt pins the extended chaos grammar.
func TestParseRuleBlobCorrupt(t *testing.T) {
	r, err := ParseRule("blob=corrupt:2")
	if err != nil {
		t.Fatal(err)
	}
	if (r != Rule{Endpoint: "blob", Kind: "corrupt", Times: 2}) {
		t.Errorf("ParseRule(blob=corrupt:2) = %+v", r)
	}
	if _, err := ParseRule("blob=smash"); err == nil {
		t.Error("ParseRule(blob=smash) accepted, want an error")
	}
	for _, in := range []string{"blob=drop", "blob=blackhole:3", "blob=delay", "report=corrupt"} {
		if _, err := ParseRule(in); err != nil {
			t.Errorf("ParseRule(%q): %v", in, err)
		}
	}
}

// TestBlobBuildCollapse pins the fleet-wide build-collapse protocol: the
// first asker to miss becomes the builder (404), later askers are parked
// (202) until the builder publishes, and an abandoned claim is reassigned
// after the holdoff.
func TestBlobBuildCollapse(t *testing.T) {
	src := newMemBlobs()
	c := NewCoordinator(Options{Blobs: src, BuildHoldoff: 50 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(key string) int {
		resp, err := http.Get(srv.URL + BlobPath("tape", key))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("k"); code != http.StatusNotFound {
		t.Fatalf("first miss: status %d, want 404 (asker becomes builder)", code)
	}
	if code := get("k"); code != http.StatusAccepted {
		t.Fatalf("second miss during build: status %d, want 202 (collapsed)", code)
	}
	// A different key is an independent claim.
	if code := get("other"); code != http.StatusNotFound {
		t.Fatalf("miss on a different key: status %d, want 404", code)
	}
	// The publish releases the claim and the blob serves.
	src.put("tape", "k", []byte("payload"))
	req, _ := http.NewRequest(http.MethodPut, srv.URL+BlobPath("tape", "k"),
		bytes.NewReader(store.Frame([]byte("payload"))))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if code := get("k"); code != http.StatusOK {
		t.Fatalf("post-publish fetch: status %d, want 200", code)
	}
	// The abandoned "other" claim expires: after the holdoff a new asker is
	// handed the builder role instead of parking forever.
	time.Sleep(80 * time.Millisecond)
	if code := get("other"); code != http.StatusNotFound {
		t.Fatalf("miss after holdoff expiry: status %d, want 404 (role reassigned)", code)
	}
	bs := c.BlobStats()
	if bs.Collapses != 1 || bs.ServeMisses != 3 {
		t.Errorf("collapse stats: %+v, want 1 collapse and 3 builder 404s", bs)
	}
}
