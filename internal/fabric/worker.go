package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"
)

// Runner executes one leased cell. It returns the opaque result payload (or
// a structured error) plus the measured wall time. abandon=true means the
// worker walks away without reporting — the chaos layer's in-process stand-in
// for a killed worker: no report, no further heartbeats, so the coordinator
// recovers the cell through lease expiry.
//
// ctx is cancelled when the worker learns its lease was lost (a heartbeat
// answered 409); long-running work may ignore it, in which case the eventual
// report is fenced server-side.
type Runner func(ctx context.Context, lease Lease) (result json.RawMessage, wall time.Duration, cellErr *CellError, abandon bool)

// Worker pulls leases from a coordinator, runs them, and reports results
// with the lease epoch attached, heartbeating while a cell is in flight.
type Worker struct {
	ID      string
	BaseURL string
	Run     Runner

	// Client is the HTTP client (nil = a fresh default client); the chaos
	// layer injects faults by wrapping its transport.
	Client *http.Client

	// Poll is the idle re-poll interval when the coordinator has no work
	// (0 = 200ms). Heartbeat timing comes from the coordinator's config.
	Poll time.Duration

	// MaxLeases is how many leases to request per round trip (0 or 1 = one
	// at a time, the PR 9 behavior). Batched leases run sequentially, each
	// under its own heartbeat, so the TTL/heartbeat safety story is
	// unchanged — batching only amortizes the lease round trips.
	MaxLeases int

	// Prefetch, when non-nil, is called with the next queued lease just
	// before the current one starts running. Implementations warm caches
	// (fetch the cell's program image and oracle tape from the coordinator)
	// so the network transfer overlaps the running cell's compute. Called
	// on its own goroutine; it must be safe to run concurrently with Run.
	Prefetch func(lease Lease)

	// Log, when non-nil, receives one-line worker events (lease grants,
	// lost leases, report retries).
	Log io.Writer

	cfg ConfigResponse
}

// DefaultWorkerID names a worker after its host and pid.
func DefaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.ID, fmt.Sprintf(format, args...))
	}
}

// post sends a JSON body and decodes a JSON response into out (when non-nil
// and the status has a body). It returns the HTTP status code.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// FetchConfig retrieves the coordinator's sweep configuration (retrying
// while the coordinator comes up) and remembers the lease timing parameters
// for Loop.
func (w *Worker) FetchConfig(ctx context.Context) (json.RawMessage, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cfg ConfigResponse
		code, err := w.post(ctx, PathConfig, struct{}{}, &cfg)
		if err == nil && code == http.StatusOK {
			w.cfg = cfg
			return cfg.Config, nil
		}
		if err == nil {
			err = fmt.Errorf("fabric: config endpoint answered %d", code)
		}
		lastErr = err
		sleepCtx(ctx, 250*time.Millisecond)
	}
	return nil, fmt.Errorf("fabric: fetching config from %s: %w", w.BaseURL, lastErr)
}

// Loop pulls and runs leases until the coordinator shuts down (410, returns
// nil) or ctx is cancelled (returns ctx.Err()). Transport errors and empty
// polls back off and retry — a worker outlives coordinator restarts within
// reason.
func (w *Worker) Loop(ctx context.Context) error {
	if w.cfg.LeaseTTLMs == 0 {
		if _, err := w.FetchConfig(ctx); err != nil {
			return err
		}
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease Lease
		code, err := w.post(ctx, PathLease, LeaseRequest{Worker: w.ID, Max: w.MaxLeases}, &lease)
		switch {
		case err != nil:
			failures++
			if failures >= 30 {
				// The coordinator has been unreachable for ~30 poll
				// intervals: it is gone for good (crashed, or shut down
				// after we missed the 410 window). Exit rather than spin.
				return fmt.Errorf("fabric: coordinator unreachable after %d attempts: %w", failures, err)
			}
			w.logf("lease request failed: %v", err)
			// Exponential backoff with jitter so a large fleet doesn't
			// hammer a briefly unreachable coordinator in lockstep. Capped
			// relative to the poll interval, keeping the total give-up
			// window proportional to the configured tempo.
			sleepCtx(ctx, retryDelay(failures, w.poll(), 10*w.poll()))
		case code == http.StatusGone:
			w.logf("coordinator gone, exiting")
			return nil
		case code == http.StatusOK:
			failures = 0
			leases := append([]Lease{lease}, lease.More...)
			leases[0].More = nil
			w.runLeases(ctx, leases)
		default: // 204: no work right now
			failures = 0
			sleepCtx(ctx, w.poll())
		}
	}
}

// retryDelay is the attempt-th (1-based) retry's backoff: base doubling per
// attempt, capped at max, scaled by a jitter factor in [0.5, 1.5) so a fleet
// retrying the same outage decorrelates instead of thundering back together.
func retryDelay(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// runLeases runs a batch of leases sequentially. Every lease in the batch
// heartbeats from the moment of grant — a queued lease must not expire while
// an earlier one computes — and while lease k runs, lease k+1 is handed to
// Prefetch so its artifact fetches overlap k's compute.
func (w *Worker) runLeases(ctx context.Context, leases []Lease) {
	beats := make([]*heartbeater, len(leases))
	for i, l := range leases {
		beats[i] = w.startHeartbeat(ctx, l)
	}
	defer func() {
		for _, hb := range beats {
			if hb != nil {
				hb.halt()
			}
		}
	}()
	for i, l := range leases {
		if ctx.Err() != nil {
			return
		}
		if w.Prefetch != nil && i+1 < len(leases) {
			next := leases[i+1]
			go w.Prefetch(next)
		}
		if !w.runLease(ctx, l, beats[i]) {
			// Chaos kill: the worker vanishes mid-cell. Stop heartbeating
			// every lease in the batch so the coordinator recovers them all
			// through expiry, exactly as if the process died.
			return
		}
		beats[i] = nil
	}
}

// heartbeater keeps one lease alive from grant to report. cellCtx is
// cancelled when the lease is fenced (a heartbeat answered 409) — the cell
// belongs to someone else now, so the run should stop.
type heartbeater struct {
	cellCtx context.Context
	cancel  context.CancelFunc
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// halt stops the heartbeat loop and waits it out. Idempotent.
func (hb *heartbeater) halt() {
	hb.once.Do(func() { close(hb.stop) })
	hb.wg.Wait()
	hb.cancel()
}

// startHeartbeat begins heartbeating a granted lease immediately (liveness
// is visible before the first tick, and every lease — however short or
// however deep in a batch — beats at least once).
func (w *Worker) startHeartbeat(ctx context.Context, lease Lease) *heartbeater {
	cellCtx, cancel := context.WithCancel(ctx)
	hb := &heartbeater{cellCtx: cellCtx, cancel: cancel, stop: make(chan struct{})}

	hbEvery := time.Duration(w.cfg.HeartbeatMs) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Duration(lease.TTLMs) * time.Millisecond / 3
	}
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hb.wg.Add(1)
	go func() {
		defer hb.wg.Done()
		// beat reports false when the lease was fenced (expired and
		// re-issued): the cell is someone else's now, stop working on it.
		beat := func() bool {
			code, err := w.post(ctx, PathHeartbeat,
				HeartbeatRequest{Worker: w.ID, Cell: lease.Cell, Epoch: lease.Epoch}, nil)
			if err == nil && code == http.StatusConflict {
				w.logf("lease on %s/%s fenced, abandoning", lease.Cell.Bench, lease.Cell.Key)
				cancel()
				return false
			}
			return true
		}
		if !beat() {
			return
		}
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if !beat() {
					return
				}
			case <-hb.stop:
				return
			case <-cellCtx.Done():
				return
			}
		}
	}()
	return hb
}

// runLease executes one lease under its heartbeat, then reports its outcome.
// It reports false when the runner abandoned the cell (chaos kill): the
// caller must stop heartbeating everything it still holds and walk away.
func (w *Worker) runLease(ctx context.Context, lease Lease, hb *heartbeater) bool {
	w.logf("leased %s/%s/%s epoch %d", lease.Cell.Exp, lease.Cell.Bench, lease.Cell.Key, lease.Epoch)

	result, wall, cellErr, abandon := w.Run(hb.cellCtx, lease)
	if abandon {
		// Chaos kill: vanish mid-cell. The coordinator's lease TTL is the
		// only thing that brings this cell back.
		w.logf("abandoning %s/%s mid-cell (chaos kill)", lease.Cell.Bench, lease.Cell.Key)
		return false
	}
	hb.halt()

	rep := ReportRequest{
		Worker: w.ID, Cell: lease.Cell, Epoch: lease.Epoch,
		WallMs: float64(wall) / float64(time.Millisecond),
		Result: result, Error: cellErr,
	}
	for attempt := 1; attempt <= 3; attempt++ {
		code, err := w.post(ctx, PathReport, rep, nil)
		if err == nil && code == http.StatusOK {
			return true
		}
		if err == nil && code == http.StatusConflict {
			// Fenced: the lease expired (or a duplicated report already
			// landed). The coordinator has moved on; so do we.
			w.logf("report for %s/%s epoch %d fenced", lease.Cell.Bench, lease.Cell.Key, lease.Epoch)
			return true
		}
		if ctx.Err() != nil {
			return true
		}
		w.logf("report attempt %d failed (status %d, err %v), retrying", attempt, code, err)
		// Exponential backoff + jitter (capped): transient coordinator
		// hiccups clear without a synchronized fleet-wide retry storm.
		sleepCtx(ctx, retryDelay(attempt, 100*time.Millisecond, time.Second))
	}
	return true
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
