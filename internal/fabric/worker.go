package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Runner executes one leased cell. It returns the opaque result payload (or
// a structured error) plus the measured wall time. abandon=true means the
// worker walks away without reporting — the chaos layer's in-process stand-in
// for a killed worker: no report, no further heartbeats, so the coordinator
// recovers the cell through lease expiry.
//
// ctx is cancelled when the worker learns its lease was lost (a heartbeat
// answered 409); long-running work may ignore it, in which case the eventual
// report is fenced server-side.
type Runner func(ctx context.Context, lease Lease) (result json.RawMessage, wall time.Duration, cellErr *CellError, abandon bool)

// Worker pulls leases from a coordinator, runs them, and reports results
// with the lease epoch attached, heartbeating while a cell is in flight.
type Worker struct {
	ID      string
	BaseURL string
	Run     Runner

	// Client is the HTTP client (nil = a fresh default client); the chaos
	// layer injects faults by wrapping its transport.
	Client *http.Client

	// Poll is the idle re-poll interval when the coordinator has no work
	// (0 = 200ms). Heartbeat timing comes from the coordinator's config.
	Poll time.Duration

	// Log, when non-nil, receives one-line worker events (lease grants,
	// lost leases, report retries).
	Log io.Writer

	cfg ConfigResponse
}

// DefaultWorkerID names a worker after its host and pid.
func DefaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "worker %s: %s\n", w.ID, fmt.Sprintf(format, args...))
	}
}

// post sends a JSON body and decodes a JSON response into out (when non-nil
// and the status has a body). It returns the HTTP status code.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// FetchConfig retrieves the coordinator's sweep configuration (retrying
// while the coordinator comes up) and remembers the lease timing parameters
// for Loop.
func (w *Worker) FetchConfig(ctx context.Context) (json.RawMessage, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cfg ConfigResponse
		code, err := w.post(ctx, PathConfig, struct{}{}, &cfg)
		if err == nil && code == http.StatusOK {
			w.cfg = cfg
			return cfg.Config, nil
		}
		if err == nil {
			err = fmt.Errorf("fabric: config endpoint answered %d", code)
		}
		lastErr = err
		sleepCtx(ctx, 250*time.Millisecond)
	}
	return nil, fmt.Errorf("fabric: fetching config from %s: %w", w.BaseURL, lastErr)
}

// Loop pulls and runs leases until the coordinator shuts down (410, returns
// nil) or ctx is cancelled (returns ctx.Err()). Transport errors and empty
// polls back off and retry — a worker outlives coordinator restarts within
// reason.
func (w *Worker) Loop(ctx context.Context) error {
	if w.cfg.LeaseTTLMs == 0 {
		if _, err := w.FetchConfig(ctx); err != nil {
			return err
		}
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease Lease
		code, err := w.post(ctx, PathLease, LeaseRequest{Worker: w.ID}, &lease)
		switch {
		case err != nil:
			failures++
			if failures >= 30 {
				// The coordinator has been unreachable for ~30 poll
				// intervals: it is gone for good (crashed, or shut down
				// after we missed the 410 window). Exit rather than spin.
				return fmt.Errorf("fabric: coordinator unreachable after %d attempts: %w", failures, err)
			}
			w.logf("lease request failed: %v", err)
			sleepCtx(ctx, w.poll())
		case code == http.StatusGone:
			w.logf("coordinator gone, exiting")
			return nil
		case code == http.StatusOK:
			failures = 0
			w.runLease(ctx, lease)
		default: // 204: no work right now
			failures = 0
			sleepCtx(ctx, w.poll())
		}
	}
}

// runLease executes one lease under a heartbeat, then reports its outcome.
func (w *Worker) runLease(ctx context.Context, lease Lease) {
	w.logf("leased %s/%s/%s epoch %d", lease.Cell.Exp, lease.Cell.Bench, lease.Cell.Key, lease.Epoch)
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	hbEvery := time.Duration(w.cfg.HeartbeatMs) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Duration(lease.TTLMs) * time.Millisecond / 3
	}
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		// beat reports false when the lease was fenced (expired and
		// re-issued): the cell is someone else's now, stop working on it.
		beat := func() bool {
			code, err := w.post(ctx, PathHeartbeat,
				HeartbeatRequest{Worker: w.ID, Cell: lease.Cell, Epoch: lease.Epoch}, nil)
			if err == nil && code == http.StatusConflict {
				w.logf("lease on %s/%s fenced, abandoning", lease.Cell.Bench, lease.Cell.Key)
				cancel()
				return false
			}
			return true
		}
		// One beat lands immediately on lease grant — liveness is visible
		// before the first tick, and every cell (however short) heartbeats
		// at least once.
		if !beat() {
			return
		}
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if !beat() {
					return
				}
			case <-hbStop:
				return
			case <-cellCtx.Done():
				return
			}
		}
	}()

	result, wall, cellErr, abandon := w.Run(cellCtx, lease)
	close(hbStop)
	hbWG.Wait()
	if abandon {
		// Chaos kill: vanish mid-cell. The coordinator's lease TTL is the
		// only thing that brings this cell back.
		w.logf("abandoning %s/%s mid-cell (chaos kill)", lease.Cell.Bench, lease.Cell.Key)
		return
	}

	rep := ReportRequest{
		Worker: w.ID, Cell: lease.Cell, Epoch: lease.Epoch,
		WallMs: float64(wall) / float64(time.Millisecond),
		Result: result, Error: cellErr,
	}
	for attempt := 1; attempt <= 3; attempt++ {
		code, err := w.post(ctx, PathReport, rep, nil)
		if err == nil && code == http.StatusOK {
			return
		}
		if err == nil && code == http.StatusConflict {
			// Fenced: the lease expired (or a duplicated report already
			// landed). The coordinator has moved on; so do we.
			w.logf("report for %s/%s epoch %d fenced", lease.Cell.Bench, lease.Cell.Key, lease.Epoch)
			return
		}
		if ctx.Err() != nil {
			return
		}
		w.logf("report attempt %d failed (status %d, err %v), retrying", attempt, code, err)
		sleepCtx(ctx, 100*time.Millisecond)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
