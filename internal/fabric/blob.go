package fabric

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// BlobSource is the coordinator's artifact plane backing: the harness plugs
// in its content-addressed store (see internal/artifact.BlobRelay). Blobs are
// opaque to the fabric and travel the wire in the store's CRC frame, so the
// receiving end re-verifies the exact checksum the sender maintains on disk.
//
// OpenBlob returns the framed bytes for (kind, key), or ok=false when the
// artifact is absent. AcceptBlob ingests a framed blob published by a worker;
// it must verify the frame itself and reject a corrupt body with an error.
// accepted=false with a nil error means the blob was already present (a
// benign duplicate publish from a racing fleet).
type BlobSource interface {
	OpenBlob(kind, key string) (framed []byte, ok bool)
	AcceptBlob(kind, key string, framed []byte) (accepted bool, err error)
}

// maxBlobBody bounds a published blob's body. Oracle tapes are the largest
// artifact class and stay block-compressed on the wire (a few MB at paper
// budgets); 1 GiB is far above any real artifact while still bounding a
// hostile or corrupted Content-Length.
const maxBlobBody = 1 << 30

// blobStats is the coordinator-side accounting for the artifact plane.
type blobStats struct {
	serves      atomic.Int64 // 200s served
	serveMisses atomic.Int64 // 404s (artifact not in the store)
	collapses   atomic.Int64 // 202s served (build already claimed elsewhere)
	accepts     atomic.Int64 // published blobs ingested
	dupAccepts  atomic.Int64 // publishes that were already present
	rejects     atomic.Int64 // publishes rejected (bad frame)
	bytesOut    atomic.Int64 // framed bytes served
	bytesIn     atomic.Int64 // framed bytes accepted (dups included)
	serveNanos  atomic.Int64 // cumulative time spent serving 200s

	mu      sync.Mutex
	unique  map[string]struct{}  // distinct kind/key ever served
	pending map[string]time.Time // kind/key -> when its build was claimed
}

// claimBuild implements fleet-wide build collapsing. The first asker to miss
// on (kind, key) becomes the builder (it gets the 404 and builds locally);
// every later asker within holdoff is told the build is pending (202) and
// polls instead of duplicating the work. A claim older than holdoff is
// presumed dead (the builder crashed or stalled) and ownership transfers to
// the current asker — the plane degrades to redundant builds, never to a
// stall.
func (s *blobStats) claimBuild(kind, key string, holdoff time.Duration) (builder bool) {
	now := time.Now()
	mk := kind + "/" + key
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		s.pending = map[string]time.Time{}
	}
	if at, ok := s.pending[mk]; ok && now.Sub(at) < holdoff {
		return false
	}
	s.pending[mk] = now
	return true
}

// buildDone clears a pending build claim: the artifact is now present (or was
// all along), so future misses may claim afresh.
func (s *blobStats) buildDone(kind, key string) {
	mk := kind + "/" + key
	s.mu.Lock()
	delete(s.pending, mk)
	s.mu.Unlock()
}

func (s *blobStats) servedUnique(kind, key string) {
	s.mu.Lock()
	if s.unique == nil {
		s.unique = map[string]struct{}{}
	}
	s.unique[kind+"/"+key] = struct{}{}
	s.mu.Unlock()
}

// BlobStats snapshots the coordinator's artifact-plane counters.
type BlobStats struct {
	Serves       int64   // blob GETs answered 200
	ServeMisses  int64   // blob GETs answered 404 (asker becomes the builder)
	Collapses    int64   // blob GETs answered 202 (build pending elsewhere)
	UniqueServed int     // distinct artifacts ever served
	Accepts      int64   // blobs published by workers and ingested
	DupAccepts   int64   // duplicate publishes (already present)
	Rejects      int64   // publishes rejected for a bad frame
	BytesOut     int64   // framed bytes served
	BytesIn      int64   // framed bytes received from publishes
	ServeSeconds float64 // cumulative wall time inside 200 serves
}

// BlobStats returns the coordinator's lifetime artifact-plane counters.
func (c *Coordinator) BlobStats() BlobStats {
	s := &c.blobs
	s.mu.Lock()
	unique := len(s.unique)
	s.mu.Unlock()
	return BlobStats{
		Serves:       s.serves.Load(),
		ServeMisses:  s.serveMisses.Load(),
		Collapses:    s.collapses.Load(),
		UniqueServed: unique,
		Accepts:      s.accepts.Load(),
		DupAccepts:   s.dupAccepts.Load(),
		Rejects:      s.rejects.Load(),
		BytesOut:     s.bytesOut.Load(),
		BytesIn:      s.bytesIn.Load(),
		ServeSeconds: float64(s.serveNanos.Load()) / float64(time.Second),
	}
}

// handleBlob serves GET (fetch by kind/key) and PUT (publish) on PathBlob.
// Without a BlobSource the endpoint answers 404 for everything — a worker
// falls back to building locally, which is always correct.
func (c *Coordinator) handleBlob(w http.ResponseWriter, r *http.Request) {
	kind, key, ok := SplitBlobPath(r.URL.Path)
	if !ok {
		http.Error(w, "fabric: malformed blob path", http.StatusBadRequest)
		return
	}
	src := c.opts.Blobs
	switch r.Method {
	case http.MethodGet:
		if src == nil {
			c.blobs.serveMisses.Add(1)
			http.NotFound(w, r)
			return
		}
		start := time.Now()
		framed, ok := src.OpenBlob(kind, key)
		if !ok {
			// Collapse duplicate builds fleet-wide: exactly one asker per
			// holdoff window gets the 404 (and with it the builder role);
			// everyone else gets 202 and polls for the builder's publish.
			if c.blobs.claimBuild(kind, key, c.buildHoldoff()) {
				c.blobs.serveMisses.Add(1)
				http.NotFound(w, r)
			} else {
				c.blobs.collapses.Add(1)
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusAccepted)
			}
			return
		}
		c.blobs.buildDone(kind, key)
		c.blobs.serves.Add(1)
		c.blobs.bytesOut.Add(int64(len(framed)))
		c.blobs.servedUnique(kind, key)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(framed)
		c.blobs.serveNanos.Add(time.Since(start).Nanoseconds())
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBody+1))
		if err != nil {
			http.Error(w, "fabric: reading blob body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxBlobBody {
			http.Error(w, "fabric: blob too large", http.StatusRequestEntityTooLarge)
			return
		}
		c.blobs.bytesIn.Add(int64(len(body)))
		if src == nil {
			// No store behind the coordinator: acknowledge and drop, so a
			// publishing worker doesn't treat a storeless coordinator as an
			// error worth retrying.
			w.WriteHeader(http.StatusOK)
			return
		}
		accepted, err := src.AcceptBlob(kind, key, body)
		if err != nil {
			c.blobs.rejects.Add(1)
			http.Error(w, "fabric: blob rejected: "+err.Error(), http.StatusBadRequest)
			return
		}
		if accepted {
			c.blobs.accepts.Add(1)
		} else {
			c.blobs.dupAccepts.Add(1)
		}
		c.blobs.buildDone(kind, key)
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "fabric: method not allowed", http.StatusMethodNotAllowed)
	}
}
