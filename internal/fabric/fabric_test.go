package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// postJSON is a bare protocol client for tests that speak to the coordinator
// without a Worker (so lease/heartbeat/report timing is under test control).
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
		return resp.StatusCode
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// refs builds an n-cell batch in one experiment.
func refs(n int) []CellRef {
	out := make([]CellRef, n)
	for i := range out {
		out[i] = CellRef{
			Exp: "exp", Batch: 0, Index: i,
			Bench: "gcc", Key: fmt.Sprintf("k%d", i), Hash: fmt.Sprintf("h%d", i),
		}
	}
	return out
}

// batchCollector records hook firings for assertions.
type batchCollector struct {
	mu       sync.Mutex
	results  map[int]ResultMeta
	payloads map[int]string
	requeues []string // "index/cause"
	failures map[int]CellError
	attempts map[int]int
}

func newBatchCollector() *batchCollector {
	return &batchCollector{
		results:  map[int]ResultMeta{},
		payloads: map[int]string{},
		failures: map[int]CellError{},
		attempts: map[int]int{},
	}
}

func (bc *batchCollector) hooks() BatchHooks {
	return BatchHooks{
		OnRequeue: func(i int, worker string, epoch int64, cause string) {
			bc.mu.Lock()
			bc.requeues = append(bc.requeues, fmt.Sprintf("%d/%s", i, cause))
			bc.mu.Unlock()
		},
		OnResult: func(i int, res json.RawMessage, m ResultMeta) {
			bc.mu.Lock()
			bc.results[i] = m
			bc.payloads[i] = string(res)
			bc.mu.Unlock()
		},
		OnFailure: func(i int, e CellError, attempts int) {
			bc.mu.Lock()
			bc.failures[i] = e
			bc.attempts[i] = attempts
			bc.mu.Unlock()
		},
	}
}

// TestLeaseEpochFencing pins the zombie-fencing contract: a lease that
// expires is re-issued under the next epoch, the original holder's late
// report answers 409, and only the live epoch's result resolves the cell.
func TestLeaseEpochFencing(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 60 * time.Millisecond, MaxRetries: 3, RetryBackoff: -1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	bc := newBatchCollector()
	var stats []WorkerStat
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stats, runErr = c.RunBatch(context.Background(), refs(1), bc.hooks())
	}()

	var l1 Lease
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "zombie"}, &l1); code != http.StatusOK {
		t.Fatalf("first lease: status %d", code)
	}
	if l1.Epoch != 1 {
		t.Fatalf("first lease epoch = %d, want 1", l1.Epoch)
	}

	// No heartbeats: the lease must expire and the cell re-queue for the
	// next worker under an incremented epoch.
	var l2 Lease
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "fresh"}, &l2); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cell never re-queued after lease expiry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if l2.Epoch != l1.Epoch+1 {
		t.Errorf("re-issued epoch = %d, want %d", l2.Epoch, l1.Epoch+1)
	}

	// The zombie's late report carries the dead epoch: fenced out.
	zombieRep := ReportRequest{Worker: "zombie", Cell: l1.Cell, Epoch: l1.Epoch,
		Result: json.RawMessage(`{"v":"zombie"}`)}
	if code := postJSON(t, srv.URL+PathReport, zombieRep, nil); code != http.StatusConflict {
		t.Errorf("stale-epoch report: status %d, want 409", code)
	}

	freshRep := ReportRequest{Worker: "fresh", Cell: l2.Cell, Epoch: l2.Epoch,
		Result: json.RawMessage(`{"v":"fresh"}`)}
	if code := postJSON(t, srv.URL+PathReport, freshRep, nil); code != http.StatusOK {
		t.Fatalf("live-epoch report: status %d, want 200", code)
	}
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	m, ok := bc.results[0]
	if !ok {
		t.Fatal("cell never resolved with a result")
	}
	if m.Worker != "fresh" || m.Epoch != l2.Epoch || m.Attempts != 2 || m.Requeues != 1 {
		t.Errorf("result meta = %+v, want fresh/epoch %d/2 attempts/1 requeue", m, l2.Epoch)
	}
	if bc.payloads[0] != `{"v":"fresh"}` {
		t.Errorf("accepted payload = %s, want the live lease's", bc.payloads[0])
	}
	st := c.Stats()
	if st.Expiries < 1 || st.Fenced < 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want >=1 expiry, >=1 fenced, 1 completed", st)
	}
	byID := map[string]WorkerStat{}
	for _, s := range stats {
		byID[s.ID] = s
	}
	if byID["zombie"].Requeued != 1 || byID["zombie"].Fenced != 1 {
		t.Errorf("zombie stats = %+v, want 1 requeued, 1 fenced", byID["zombie"])
	}
	if byID["fresh"].Completed != 1 {
		t.Errorf("fresh stats = %+v, want 1 completed", byID["fresh"])
	}
}

// TestHeartbeatExtendsLease pins liveness: a lease heartbeated on schedule
// survives well past its TTL and its eventual report is accepted, with no
// expiries charged.
func TestHeartbeatExtendsLease(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 150 * time.Millisecond, RetryBackoff: -1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	bc := newBatchCollector()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.RunBatch(context.Background(), refs(1), bc.hooks()); err != nil {
			t.Error(err)
		}
	}()

	var l Lease
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w"}, &l); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	// Hold the lease for ~3 TTLs via heartbeats.
	for i := 0; i < 15; i++ {
		time.Sleep(30 * time.Millisecond)
		hb := HeartbeatRequest{Worker: "w", Cell: l.Cell, Epoch: l.Epoch}
		if code := postJSON(t, srv.URL+PathHeartbeat, hb, nil); code != http.StatusOK {
			t.Fatalf("heartbeat %d: status %d — lease expired despite on-schedule heartbeats", i, code)
		}
	}
	rep := ReportRequest{Worker: "w", Cell: l.Cell, Epoch: l.Epoch, Result: json.RawMessage(`{}`)}
	if code := postJSON(t, srv.URL+PathReport, rep, nil); code != http.StatusOK {
		t.Fatalf("report after heartbeats: status %d, want 200", code)
	}
	<-done

	if m := bc.results[0]; m.Attempts != 1 || m.Epoch != 1 {
		t.Errorf("result meta = %+v, want a clean first-epoch resolution", m)
	}
	st := c.Stats()
	if st.Expiries != 0 || st.Requeues != 0 {
		t.Errorf("stats = %+v, want zero expiries/requeues under live heartbeats", st)
	}
	if st.Heartbeats < 10 {
		t.Errorf("heartbeats accepted = %d, want >= 10", st.Heartbeats)
	}
}

// TestErroredReportsExhaustRetries pins the retry fold: every errored report
// charges one attempt, re-queues until MaxRetries is spent, then resolves as
// a failure carrying the last attempt's structured error.
func TestErroredReportsExhaustRetries(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second, MaxRetries: 1, RetryBackoff: -1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	bc := newBatchCollector()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.RunBatch(context.Background(), refs(1), bc.hooks()); err != nil {
			t.Error(err)
		}
	}()

	for want := int64(1); want <= 2; want++ {
		var l Lease
		deadline := time.Now().Add(5 * time.Second)
		for {
			if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w"}, &l); code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no lease for attempt %d", want)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if l.Epoch != want {
			t.Fatalf("attempt %d under epoch %d", want, l.Epoch)
		}
		rep := ReportRequest{Worker: "w", Cell: l.Cell, Epoch: l.Epoch,
			Error: &CellError{Msg: "boom", Kind: "error"}}
		if code := postJSON(t, srv.URL+PathReport, rep, nil); code != http.StatusOK {
			t.Fatalf("errored report %d: status %d", want, code)
		}
	}
	<-done

	if len(bc.requeues) != 1 || bc.requeues[0] != "0/error" {
		t.Errorf("requeues = %v, want one errored requeue of cell 0", bc.requeues)
	}
	e, ok := bc.failures[0]
	if !ok {
		t.Fatal("cell never resolved as a failure")
	}
	if e.Msg != "boom" || e.Kind != "error" || bc.attempts[0] != 2 {
		t.Errorf("failure = %+v after %d attempts, want the worker's error after 2", e, bc.attempts[0])
	}
	if len(bc.results) != 0 {
		t.Errorf("failed cell also produced a result: %+v", bc.results)
	}
	if st := c.Stats(); st.Failed != 1 || st.Requeues != 1 {
		t.Errorf("stats = %+v, want 1 failed, 1 requeue", st)
	}
}

// TestReportWithoutPayloadRejected pins the report invariant: a report must
// carry a result or an error.
func TestReportWithoutPayloadRejected(t *testing.T) {
	c := NewCoordinator(Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	rep := ReportRequest{Worker: "w", Cell: refs(1)[0], Epoch: 1}
	if code := postJSON(t, srv.URL+PathReport, rep, nil); code != http.StatusBadRequest {
		t.Errorf("empty report: status %d, want 400", code)
	}
}

// TestShutdownAnswersGone pins the drain signal: after Shutdown every lease
// poll answers 410 and a Worker.Loop exits nil.
func TestShutdownAnswersGone(t *testing.T) {
	c := NewCoordinator(Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	c.Shutdown()
	if code := postJSON(t, srv.URL+PathLease, LeaseRequest{Worker: "w"}, nil); code != http.StatusGone {
		t.Fatalf("lease after shutdown: status %d, want 410", code)
	}
	w := &Worker{ID: "w", BaseURL: srv.URL, Poll: time.Millisecond,
		Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
			t.Error("runner invoked after shutdown")
			return nil, 0, nil, false
		}}
	if err := w.Loop(context.Background()); err != nil {
		t.Errorf("worker loop after shutdown = %v, want nil exit", err)
	}
}

// TestWorkerLoopRunsBatch drives the full worker client against a live
// coordinator: config fetch, lease polling, heartbeats, reports, and the
// 410 exit, with every cell resolved by the runner's payload.
func TestWorkerLoopRunsBatch(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := &Worker{
		ID: "w0", BaseURL: srv.URL, Poll: 2 * time.Millisecond,
		Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
			return json.RawMessage(fmt.Sprintf(`{"cell":%d}`, l.Cell.Index)), time.Millisecond, nil, false
		},
	}
	loopErr := make(chan error, 1)
	go func() { loopErr <- w.Loop(context.Background()) }()

	bc := newBatchCollector()
	stats, err := c.RunBatch(context.Background(), refs(5), bc.hooks())
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	if err := <-loopErr; err != nil {
		t.Fatalf("worker loop: %v", err)
	}

	for i := 0; i < 5; i++ {
		var got struct{ Cell int }
		if err := json.Unmarshal([]byte(bc.payloads[i]), &got); err != nil || got.Cell != i {
			t.Errorf("cell %d payload = %q (err %v), want its own index", i, bc.payloads[i], err)
		}
		if m := bc.results[i]; m.Worker != "w0" || m.Wall <= 0 {
			t.Errorf("cell %d meta = %+v, want worker w0 with positive wall", i, m)
		}
	}
	if len(stats) != 1 || stats[0].ID != "w0" || stats[0].Completed != 5 || stats[0].Leases != 5 {
		t.Errorf("batch stats = %+v, want w0 with 5 leases and 5 completions", stats)
	}
}

// TestLocalFleetCompletesBatch pins -local mode at the package level: N
// in-process workers over the loopback listener resolve a batch, and the
// drain order (Shutdown then Close) joins every worker cleanly.
func TestLocalFleetCompletesBatch(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second})
	var ran atomic.Int64
	fleet := StartLocal(c, 3, nil, func(id, baseURL string, client *http.Client) *Worker {
		return &Worker{ID: id, BaseURL: baseURL, Client: client, Poll: 2 * time.Millisecond,
			Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
				ran.Add(1)
				return json.RawMessage(`{}`), time.Millisecond, nil, false
			}}
	})
	bc := newBatchCollector()
	stats, err := c.RunBatch(context.Background(), refs(12), bc.hooks())
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	if err := fleet.Close(); err != nil {
		t.Fatalf("fleet close: %v", err)
	}
	if ran.Load() != 12 || len(bc.results) != 12 {
		t.Errorf("ran %d cells, %d results; want 12/12", ran.Load(), len(bc.results))
	}
	var completed int
	for _, s := range stats {
		completed += s.Completed
	}
	if completed != 12 {
		t.Errorf("per-worker completions sum to %d, want 12", completed)
	}
}

// TestAbandonedLeaseRecovers pins the kill drill at the fabric layer: a
// worker that walks off a lease (no report, no heartbeats) forces recovery
// through lease expiry, and the re-issued lease resolves the cell.
func TestAbandonedLeaseRecovers(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 60 * time.Millisecond, MaxRetries: 2, RetryBackoff: -1})
	var abandoned atomic.Bool
	fleet := StartLocal(c, 2, nil, func(id, baseURL string, client *http.Client) *Worker {
		return &Worker{ID: id, BaseURL: baseURL, Client: client, Poll: 2 * time.Millisecond,
			Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
				if l.Cell.Index == 0 && !abandoned.Swap(true) {
					return nil, 0, nil, true // vanish mid-cell
				}
				return json.RawMessage(`{}`), time.Millisecond, nil, false
			}}
	})
	bc := newBatchCollector()
	_, err := c.RunBatch(context.Background(), refs(4), bc.hooks())
	c.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.results) != 4 || len(bc.failures) != 0 {
		t.Fatalf("%d results, %d failures; want all 4 recovered", len(bc.results), len(bc.failures))
	}
	if m := bc.results[0]; m.Attempts != 2 || m.Epoch != 2 {
		t.Errorf("recovered cell meta = %+v, want 2 attempts under epoch 2", m)
	}
	if st := c.Stats(); st.Expiries < 1 || st.Requeues < 1 {
		t.Errorf("stats = %+v, want the abandonment visible as an expiry+requeue", st)
	}
}

// TestChaosTransportKinds pins each network fault kind's observable
// semantics against a counting server, and that the schedule is consumed
// deterministically (Remaining reaches 0).
func TestChaosTransportKinds(t *testing.T) {
	var mu sync.Mutex
	hits := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits[r.URL.Path]++
		mu.Unlock()
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	count := func(path string) int {
		mu.Lock()
		defer mu.Unlock()
		return hits[path]
	}

	chaos := NewChaos([]Rule{
		{Endpoint: "report", Kind: "dup"},
		{Endpoint: "heartbeat", Kind: "blackhole", Times: 2},
		{Endpoint: "lease", Kind: "drop"},
	})
	client := &http.Client{Transport: chaos.Wrap(nil)}
	post := func(path string) error {
		resp, err := client.Post(srv.URL+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// dup: one client call, two server hits, success returned.
	if err := post(PathReport); err != nil {
		t.Fatalf("dup request errored: %v", err)
	}
	if n := count(PathReport); n != 2 {
		t.Errorf("dup: server saw %d report requests, want 2", n)
	}

	// blackhole: transport error, request never reaches the server — twice.
	for i := 0; i < 2; i++ {
		if err := post(PathHeartbeat); !errors.Is(err, ErrChaos) {
			t.Errorf("blackhole %d: err = %v, want ErrChaos", i, err)
		}
	}
	if n := count(PathHeartbeat); n != 0 {
		t.Errorf("blackhole: server saw %d heartbeats, want 0", n)
	}
	// Schedule spent: the third heartbeat goes through.
	if err := post(PathHeartbeat); err != nil {
		t.Errorf("post-blackhole heartbeat errored: %v", err)
	}
	if n := count(PathHeartbeat); n != 1 {
		t.Errorf("post-blackhole: server saw %d heartbeats, want 1", n)
	}

	// drop: the server processed it, the client got a transport error — the
	// ambiguity that exercises fencing.
	if err := post(PathLease); !errors.Is(err, ErrChaos) {
		t.Errorf("drop: err = %v, want ErrChaos", err)
	}
	if n := count(PathLease); n != 1 {
		t.Errorf("drop: server saw %d lease requests, want 1 (request must be delivered)", n)
	}

	if n := chaos.Remaining(); n != 0 {
		t.Errorf("chaos schedule has %d unfired faults, want 0", n)
	}
	// Untouched endpoints pass through a spent schedule.
	if err := post(PathConfig); err != nil {
		t.Errorf("config through spent schedule errored: %v", err)
	}
}

// TestChaosDupReportIsFenced pins idempotence end to end: a duplicated
// report resolves its cell exactly once — the duplicate answers 409 and the
// batch completes with a single result per cell.
func TestChaosDupReportIsFenced(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Second, MaxRetries: 1, RetryBackoff: -1})
	chaos := NewChaos([]Rule{{Endpoint: "report", Kind: "dup", Times: 3}})
	fleet := StartLocal(c, 2, chaos, func(id, baseURL string, client *http.Client) *Worker {
		return &Worker{ID: id, BaseURL: baseURL, Client: client, Poll: 2 * time.Millisecond,
			Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
				return json.RawMessage(`{}`), time.Millisecond, nil, false
			}}
	})
	var resolved atomic.Int64
	_, err := c.RunBatch(context.Background(), refs(6), BatchHooks{
		OnResult: func(i int, res json.RawMessage, m ResultMeta) { resolved.Add(1) },
	})
	c.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Load() != 6 {
		t.Errorf("resolved %d cells, want exactly 6 (duplicates must not double-resolve)", resolved.Load())
	}
	if st := c.Stats(); st.Fenced < 3 {
		t.Errorf("fenced = %d, want >= 3 (each duplicated report's second copy)", st.Fenced)
	}
	if n := chaos.Remaining(); n != 0 {
		t.Errorf("chaos schedule has %d unfired faults, want 0", n)
	}
}

// TestParseRule pins the chaos spec grammar, including rejection of unknown
// endpoints and kinds.
func TestParseRule(t *testing.T) {
	good := []struct {
		in    string
		want  Rule
		delay time.Duration
	}{
		{"report=drop", Rule{Endpoint: "report", Kind: "drop", Times: 1}, 0},
		{"heartbeat=blackhole:4", Rule{Endpoint: "heartbeat", Kind: "blackhole", Times: 4}, 0},
		{"lease=dup:2", Rule{Endpoint: "lease", Kind: "dup", Times: 2}, 0},
		{"config=delay", Rule{Endpoint: "config", Kind: "delay", Times: 1}, 100 * time.Millisecond},
	}
	for _, tc := range good {
		r, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		tc.want.Delay = tc.delay
		if r != tc.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.in, r, tc.want)
		}
	}
	bad := []string{"", "report", "report=smash", "bogus=drop", "report=drop:0", "report=drop:x"}
	for _, in := range bad {
		if _, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) accepted, want an error", in)
		}
	}
}

// TestWorkerGivesUpOnDeadCoordinator pins the orphan bound: a worker whose
// coordinator vanishes exits with an error instead of spinning forever.
func TestWorkerGivesUpOnDeadCoordinator(t *testing.T) {
	c := NewCoordinator(Options{})
	srv := httptest.NewServer(c.Handler())
	w := &Worker{ID: "w", BaseURL: srv.URL, Poll: time.Millisecond,
		Run: func(ctx context.Context, l Lease) (json.RawMessage, time.Duration, *CellError, bool) {
			return json.RawMessage(`{}`), 0, nil, false
		}}
	if _, err := w.FetchConfig(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close() // the coordinator dies without ever answering 410
	err := w.Loop(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("orphaned worker loop = %v, want an unreachable-coordinator error", err)
	}
}
