// Package fabric is the distributed sweep layer: a coordinator that leases
// experiment cells to worker processes over HTTP/JSON, with lease TTLs,
// heartbeats, and monotonic lease epochs so a zombie worker's late result is
// fenced out instead of double-resolving a cell.
//
// The package is deliberately decoupled from the experiment harness: cells
// travel as opaque references (experiment id, batch number, cell index, and
// the config hash the coordinator computed), and results travel as opaque
// JSON payloads. Workers re-derive the actual work from the reference — the
// cell grid of every experiment is a pure function of the sweep options, so
// shipping a reference plus a hash cross-check is both sufficient and a
// fault-domain guard: a worker whose binary or budgets have skewed produces
// a different hash and is rejected before it can contribute a wrong result.
//
// Protocol (all POST, JSON bodies):
//
//	/fabric/v1/config     -> the coordinator's sweep configuration blob
//	/fabric/v1/lease      -> 200 lease | 204 no work now | 410 shut down
//	/fabric/v1/heartbeat  -> 200 extended | 409 lease lost (fenced)
//	/fabric/v1/report     -> 200 accepted | 409 fenced (stale epoch)
//
// plus the artifact plane (bodies are CRC-framed blobs, see blob.go):
//
//	GET /fabric/v1/blob/{kind}/{key}  -> 200 framed blob | 404 absent
//	PUT /fabric/v1/blob/{kind}/{key}  -> 200 accepted | 400 bad frame
package fabric

import (
	"encoding/json"
	"net/url"
	"strings"
)

// Endpoint paths (versioned so a skewed worker fails fast and loudly).
const (
	PathConfig    = "/fabric/v1/config"
	PathLease     = "/fabric/v1/lease"
	PathHeartbeat = "/fabric/v1/heartbeat"
	PathReport    = "/fabric/v1/report"

	// PathBlob is the artifact-plane prefix; the full path is
	// PathBlob + kind + "/" + escaped key (see BlobPath).
	PathBlob = "/fabric/v1/blob/"
)

// BlobPath returns the blob endpoint path addressing one artifact by kind
// ("program", "tape", "result") and content key.
func BlobPath(kind, key string) string {
	return PathBlob + kind + "/" + url.PathEscape(key)
}

// SplitBlobPath parses a blob endpoint path back into (kind, key). The kind
// is restricted to simple identifiers so a hostile path cannot steer the
// coordinator's store outside its object directories.
func SplitBlobPath(path string) (kind, key string, ok bool) {
	rest, found := strings.CutPrefix(path, PathBlob)
	if !found {
		return "", "", false
	}
	kind, escKey, found := strings.Cut(rest, "/")
	if !found || kind == "" || escKey == "" {
		return "", "", false
	}
	for _, r := range kind {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return "", "", false
		}
	}
	key, err := url.PathUnescape(escKey)
	if err != nil || key == "" || strings.ContainsAny(key, "/\\") {
		return "", "", false
	}
	return kind, key, true
}

// CellRef identifies one sweep cell without carrying its (unserializable)
// machine configuration: the experiment id, the ordinal of the runCells
// batch within that experiment, and the cell's index in that batch. Bench,
// Key and Hash are redundant with (Exp, Batch, Index) and exist as the
// cross-check: a worker that enumerates a different grid (version or budget
// skew) detects the mismatch instead of simulating the wrong cell.
type CellRef struct {
	Exp   string `json:"exp"`
	Batch int    `json:"batch"`
	Index int    `json:"index"`
	Bench string `json:"bench"`
	Key   string `json:"key"`
	Hash  string `json:"hash"`
}

// ConfigResponse is what /config serves: the harness-defined sweep
// configuration (opaque to this package) plus the lease timing parameters
// every worker must honor.
type ConfigResponse struct {
	Config      json.RawMessage `json:"config"`
	LeaseTTLMs  int64           `json:"lease_ttl_ms"`
	HeartbeatMs int64           `json:"heartbeat_ms"`
}

// LeaseRequest asks for work. Max caps how many cells the coordinator may
// grant in one round trip (0 or 1 = a single lease, the PR 9 wire shape); a
// batching worker sets Max>1 and receives the extras in Lease.More.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// Lease grants one cell until the deadline TTLMs from now; heartbeats extend
// it. Epoch is monotonic per cell: every re-issue (after an expiry or an
// errored attempt) increments it, and the coordinator only accepts reports
// carrying the epoch of the live lease.
type Lease struct {
	Cell  CellRef `json:"cell"`
	Epoch int64   `json:"epoch"`
	TTLMs int64   `json:"ttl_ms"`

	// More carries the extra leases of a batched grant (LeaseRequest.Max > 1).
	// Each entry is a full independent lease — same TTL and heartbeat rules —
	// and never nests further (More is nil on every element).
	More []Lease `json:"more,omitempty"`
}

// HeartbeatRequest extends a held lease.
type HeartbeatRequest struct {
	Worker string  `json:"worker"`
	Cell   CellRef `json:"cell"`
	Epoch  int64   `json:"epoch"`
}

// CellError is a worker-side attempt failure, structured enough for the
// coordinator to fold into the harness's failure accounting (panic flag,
// stack, watchdog dump path on the worker's disk).
type CellError struct {
	Msg      string `json:"msg"`
	Kind     string `json:"kind,omitempty"` // "panic", "error", "watchdog-stall", "config-skew", ...
	Panic    bool   `json:"panic,omitempty"`
	Stack    string `json:"stack,omitempty"`
	DumpPath string `json:"dump_path,omitempty"`
}

// ReportRequest resolves a lease: exactly one of Result (opaque payload the
// harness decodes) or Error is set. WallMs is the worker-measured execution
// time, surfaced for ETA/throughput accounting.
type ReportRequest struct {
	Worker string          `json:"worker"`
	Cell   CellRef         `json:"cell"`
	Epoch  int64           `json:"epoch"`
	WallMs float64         `json:"wall_ms,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *CellError      `json:"error,omitempty"`
}
