// Package metrics provides the measurement primitives the simulator fills
// on every run: named counters and fixed-bucket histograms. Unlike the
// aggregate counters in core.Stats, histograms capture *distributions* —
// fragment length, fragment-buffer residency, squash depth — which is what
// the paper's microarchitectural claims (§3.2 buffer occupancy, §4.3 squash
// behaviour) are actually about.
//
// Everything here is allocation-free after construction: Observe is two
// array index operations, so the simulator keeps histograms hot on every
// run, sink or no sink.
package metrics

import (
	"fmt"
	"strings"
)

// Counter is a named monotonic tally.
type Counter struct {
	name string
	v    int64
}

// NewCounter creates a named counter at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// Histogram is a fixed-bucket linear histogram: nbuckets buckets of equal
// width plus an implicit overflow bucket. Bucket i covers
// [i*width, (i+1)*width); values at or beyond nbuckets*width land in the
// overflow bucket. Negative observations clamp to bucket 0.
type Histogram struct {
	name    string
	width   int64
	buckets []int64 // len = nbuckets+1; last entry is overflow
	count   int64
	sum     int64
	max     int64
}

// NewHistogram creates a histogram with nbuckets linear buckets of the
// given width (both forced to at least 1).
func NewHistogram(name string, nbuckets int, width int64) *Histogram {
	if nbuckets < 1 {
		nbuckets = 1
	}
	if width < 1 {
		width = 1
	}
	return &Histogram{name: name, width: width, buckets: make([]int64, nbuckets+1)}
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// BucketWidth returns the linear bucket width.
func (h *Histogram) BucketWidth() int64 { return h.width }

// NumBuckets returns the number of regular buckets (overflow excluded).
func (h *Histogram) NumBuckets() int { return len(h.buckets) - 1 }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := v / h.width
	switch {
	case i < 0:
		i = 0
	case i >= int64(len(h.buckets)-1):
		i = int64(len(h.buckets) - 1)
	}
	h.buckets[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns bucket i's lower bound (inclusive), upper bound
// (exclusive; -1 for the overflow bucket) and count.
func (h *Histogram) Bucket(i int) (lo, hi, count int64) {
	lo = int64(i) * h.width
	if i == len(h.buckets)-1 {
		hi = -1
	} else {
		hi = lo + h.width
	}
	return lo, hi, h.buckets[i]
}

// Overflow returns the overflow bucket's count.
func (h *Histogram) Overflow() int64 { return h.buckets[len(h.buckets)-1] }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) assuming
// values are spread within buckets: the exclusive upper edge of the bucket
// where the q-th observation falls. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == len(h.buckets)-1 {
				return h.max
			}
			return int64(i+1) * h.width
		}
	}
	return h.max
}

// Reset zeroes every bucket and summary statistic.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
}

// Merge accumulates o's observations into h. The histograms must have the
// same shape (bucket count and width); mismatched shapes are a programming
// error and panic.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.buckets) != len(o.buckets) || h.width != o.width {
		panic(fmt.Sprintf("metrics: merging mismatched histograms %s (%d×%d) and %s (%d×%d)",
			h.name, len(h.buckets)-1, h.width, o.name, len(o.buckets)-1, o.width))
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.2f p90<=%d max=%d", h.name, h.count, h.Mean(), h.Quantile(0.9), h.max)
}

// Pipeline bundles the per-run pipeline distributions the simulator always
// collects. All observations happen at fragment granularity (one per ~12
// instructions) or rarer, so the cost is negligible against a cycle loop.
type Pipeline struct {
	// FragLen is the length in instructions of each predicted fragment,
	// observed at prediction time (wrong path included).
	FragLen *Histogram

	// BufResidency is the number of cycles each fragment spent in flight
	// between entering the fragment queue and finishing rename — the
	// buffer occupancy behind §3.2's reuse claims.
	BufResidency *Histogram

	// SquashDepth is the number of window entries removed per squash,
	// split by nothing — causes are on the event stream.
	SquashDepth *Histogram
}

// NewPipeline creates the standard pipeline histogram set: fragment length
// in single-instruction buckets up to 32, residency in 8-cycle buckets up
// to 256, squash depth in 16-op buckets up to 256 (the window size).
func NewPipeline() *Pipeline {
	return &Pipeline{
		FragLen:      NewHistogram("fragment-length", 32, 1),
		BufResidency: NewHistogram("buffer-residency-cycles", 32, 8),
		SquashDepth:  NewHistogram("squash-depth-ops", 16, 16),
	}
}

// Reset zeroes all histograms (the simulator calls this when measurement
// starts so warmup does not pollute the distributions).
func (p *Pipeline) Reset() {
	p.FragLen.Reset()
	p.BufResidency.Reset()
	p.SquashDepth.Reset()
}

// Merge accumulates o's distributions into p — combining the measurement
// windows of a sampled run, or the slices of a time-parallel one, into one
// logical run's histograms.
func (p *Pipeline) Merge(o *Pipeline) {
	p.FragLen.Merge(o.FragLen)
	p.BufResidency.Merge(o.BufResidency)
	p.SquashDepth.Merge(o.SquashDepth)
}

// All returns the histograms in presentation order.
func (p *Pipeline) All() []*Histogram {
	return []*Histogram{p.FragLen, p.BufResidency, p.SquashDepth}
}

// Summary renders the one-line summaries of every histogram.
func (p *Pipeline) Summary() string {
	var b strings.Builder
	for _, h := range p.All() {
		fmt.Fprintf(&b, "%s\n", h)
	}
	return b.String()
}
