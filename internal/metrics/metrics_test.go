package metrics

import "testing"

func TestCounter(t *testing.T) {
	c := NewCounter("redirects")
	if c.Name() != "redirects" || c.Value() != 0 {
		t.Fatalf("fresh counter: name %q value %d", c.Name(), c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("value = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset left %d", c.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram("h", 4, 8) // buckets [0,8) [8,16) [16,24) [24,32) + overflow
	h.Observe(0)
	h.Observe(7)  // last value of bucket 0
	h.Observe(8)  // first value of bucket 1
	h.Observe(31) // last value of bucket 3
	h.Observe(32) // first overflow value
	h.Observe(1000)

	wantCounts := []int64{2, 1, 0, 1, 2}
	for i, want := range wantCounts {
		lo, hi, c := h.Bucket(i)
		if c != want {
			t.Errorf("bucket %d [%d,%d): count %d, want %d", i, lo, hi, c, want)
		}
		if wantLo := int64(i) * 8; lo != wantLo {
			t.Errorf("bucket %d lo = %d, want %d", i, lo, wantLo)
		}
	}
	if _, hi, _ := h.Bucket(4); hi != -1 {
		t.Errorf("overflow bucket hi = %d, want -1", hi)
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow() = %d, want 2", h.Overflow())
	}
	if h.Count() != 6 || h.Max() != 1000 || h.Sum() != 0+7+8+31+32+1000 {
		t.Errorf("count %d max %d sum %d", h.Count(), h.Max(), h.Sum())
	}
}

func TestHistogramNegativeClampsToZeroBucket(t *testing.T) {
	h := NewHistogram("h", 4, 8)
	h.Observe(-100)
	if _, _, c := h.Bucket(0); c != 1 {
		t.Fatalf("negative observation landed elsewhere (bucket0 = %d)", c)
	}
	if h.Sum() != -100 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram("h", 0, 0) // forced up to 1 bucket of width 1
	if h.NumBuckets() != 1 || h.BucketWidth() != 1 {
		t.Fatalf("got %d buckets width %d", h.NumBuckets(), h.BucketWidth())
	}
	h.Observe(0)
	h.Observe(5)
	if _, _, c := h.Bucket(0); c != 1 {
		t.Errorf("bucket0 = %d", c)
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d", h.Overflow())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("h", 10, 1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for v := int64(0); v < 10; v++ {
		h.Observe(v)
	}
	// The q-th observation's bucket upper edge: p50 of 0..9 is the 5th
	// observation (value 4), upper edge 5.
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %d, want 10", got)
	}
	h.Observe(500) // overflow: quantile falls back to max
	if got := h.Quantile(1.0); got != 500 {
		t.Errorf("p100 with overflow = %d, want 500", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram("h", 4, 8)
	h.Observe(3)
	h.Observe(90)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Overflow() != 0 {
		t.Fatalf("reset left count=%d sum=%d max=%d overflow=%d",
			h.Count(), h.Sum(), h.Max(), h.Overflow())
	}
	for i := 0; i <= h.NumBuckets(); i++ {
		if _, _, c := h.Bucket(i); c != 0 {
			t.Fatalf("bucket %d nonzero after reset", i)
		}
	}
}

func TestPipelineBundle(t *testing.T) {
	p := NewPipeline()
	all := p.All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d histograms", len(all))
	}
	names := map[string]bool{}
	for _, h := range all {
		names[h.Name()] = true
	}
	for _, want := range []string{"fragment-length", "buffer-residency-cycles", "squash-depth-ops"} {
		if !names[want] {
			t.Errorf("missing histogram %q", want)
		}
	}
	p.FragLen.Observe(12)
	p.BufResidency.Observe(40)
	p.SquashDepth.Observe(100)
	p.Reset()
	for _, h := range all {
		if h.Count() != 0 {
			t.Errorf("%s not reset", h.Name())
		}
	}
}
