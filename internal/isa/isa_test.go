package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{0, "r0"}, {31, "r31"}, {FPBase, "f0"}, {63, "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
	if RegZero.IsFP() || !Reg(40).IsFP() {
		t.Error("IsFP misclassifies registers")
	}
}

func TestOpString(t *testing.T) {
	for op := OpInvalid; int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty mnemonic", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("out-of-range op string = %q", Op(200).String())
	}
}

func TestDestSuppressesZeroRegister(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: RegZero, Rs1: 1, Rs2: 2}
	if _, ok := in.Dest(); ok {
		t.Error("write to r0 must not report a destination")
	}
	in.Rd = 5
	if rd, ok := in.Dest(); !ok || rd != 5 {
		t.Errorf("Dest() = %v,%v, want r5,true", rd, ok)
	}
}

func TestDestOfCalls(t *testing.T) {
	if rd, ok := (Inst{Op: OpJal, Imm: 10}).Dest(); !ok || rd != RegLink {
		t.Errorf("jal Dest() = %v,%v, want link,true", rd, ok)
	}
	if rd, ok := (Inst{Op: OpJalr, Rd: 7, Rs1: 3}).Dest(); !ok || rd != 7 {
		t.Errorf("jalr Dest() = %v,%v, want r7,true", rd, ok)
	}
	if _, ok := (Inst{Op: OpJr, Rs1: RegLink}).Dest(); ok {
		t.Error("jr must not write a register")
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Inst{Op: OpAdd, Rd: 1, Rs1: RegZero, Rs2: 3}, []Reg{3}},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 5}, []Reg{2}},
		{Inst{Op: OpSw, Rs1: 4, Rs2: 5, Imm: 8}, []Reg{4, 5}},
		{Inst{Op: OpBeq, Rs1: 6, Rs2: 7, Imm: -4}, []Reg{6, 7}},
		{Inst{Op: OpJ, Imm: 100}, nil},
		{Inst{Op: OpLui, Rd: 9, Imm: 3}, nil},
		{Inst{Op: OpJr, Rs1: RegLink}, []Reg{RegLink}},
	}
	for _, c := range cases {
		got := c.in.Sources(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v Sources = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v Sources = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in    Inst
		class Class
		lat   int
	}{
		{Inst{Op: OpAdd}, ClassIntALU, 1},
		{Inst{Op: OpMul}, ClassIntMul, 3},
		{Inst{Op: OpFadd}, ClassFPAdd, 2},
		{Inst{Op: OpFmul}, ClassFPMul, 4},
		{Inst{Op: OpLw}, ClassLoadStore, 1},
	}
	for _, c := range cases {
		if got := c.in.Classify(); got != c.class {
			t.Errorf("%v class = %v, want %v", c.in, got, c.class)
		}
		if got := c.in.Latency(); got != c.lat {
			t.Errorf("%v latency = %d, want %d", c.in, got, c.lat)
		}
	}
}

func TestControlFlowPredicates(t *testing.T) {
	beq := Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 8}
	if !beq.IsCondBranch() || !beq.ChangesFlow() || beq.IsIndirect() {
		t.Error("beq misclassified")
	}
	ret := Inst{Op: OpJr, Rs1: RegLink}
	if !ret.IsReturn() || !ret.IsIndirect() {
		t.Error("jr r31 must be a return")
	}
	jr := Inst{Op: OpJr, Rs1: 5}
	if jr.IsReturn() {
		t.Error("jr r5 must not be a return")
	}
	if !(Inst{Op: OpJal, Imm: 4}).IsCall() || !(Inst{Op: OpJalr, Rd: 1, Rs1: 2}).IsCall() {
		t.Error("calls misclassified")
	}
	if !(Inst{Op: OpHalt}).ChangesFlow() {
		t.Error("halt must end flow")
	}
}

// validInst produces a random encodable instruction.
func validInst(r *rand.Rand) Inst {
	ops := []Op{
		OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSlt, OpSll, OpSrl, OpSra, OpMul,
		OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli, OpLui,
		OpLw, OpSw, OpLf, OpSf, OpFadd, OpFsub, OpFmul, OpFneg,
		OpBeq, OpBne, OpBlt, OpBge, OpJ, OpJal, OpJr, OpJalr, OpHalt,
	}
	in := Inst{
		Op:  ops[r.Intn(len(ops))],
		Rd:  Reg(r.Intn(NumRegs)),
		Rs1: Reg(r.Intn(NumRegs)),
		Rs2: Reg(r.Intn(NumRegs)),
	}
	switch {
	case in.Op == OpJ || in.Op == OpJal:
		in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		in.Imm = int32(r.Intn(jTarget + 1))
	case in.Op == OpHalt:
		in = Inst{Op: OpHalt}
	case isRFormat(in.Op):
		in.Imm = 0
		if in.Op == OpJr || in.Op == OpJalr {
			in.Rs2 = 0
			if in.Op == OpJr {
				in.Rd = 0
			}
		}
		if in.Op == OpFneg {
			in.Rs2 = 0
		}
	default:
		in.Rs2 = 0
		in.Imm = int32(r.Intn(immMax-immMin+1) + immMin)
		if in.IsStore() || in.IsCondBranch() {
			in.Rd = 0
			in.Rs2 = Reg(r.Intn(NumRegs))
		}
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := validInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Logf("encode %v: %v", in, err)
			return false
		}
		out := Decode(w)
		if out != in {
			t.Logf("round trip: %+v -> %#x -> %+v", in, w, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsBadImmediates(t *testing.T) {
	cases := []Inst{
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: immMax + 1},
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: immMin - 1},
		{Op: OpJ, Imm: -1},
		{Op: OpJ, Imm: jTarget + 1},
		{Op: OpInvalid},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	w := uint32(NumOps+1) << opShift
	if got := Decode(w); got.Op != OpInvalid {
		t.Errorf("Decode unknown opcode = %v, want invalid", got)
	}
}

func TestEncodeAllDecodeImage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	insts := make([]Inst, 257)
	for i := range insts {
		insts[i] = validInst(r)
	}
	img, err := EncodeAll(insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != len(insts)*InstBytes {
		t.Fatalf("image size = %d, want %d", len(img), len(insts)*InstBytes)
	}
	back := DecodeImage(img)
	for i := range insts {
		if back[i] != insts[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, back[i], insts[i])
		}
	}
}

func TestDisassemblyIsNonEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		in := validInst(r)
		if in.String() == "" {
			t.Fatalf("empty disassembly for %+v", in)
		}
	}
}
