package isa

import (
	"encoding/binary"
	"fmt"
)

// Wire format (32 bits):
//
//	bits 31..26  opcode
//	bits 25..20  field A (rd, or rs2 for stores/branches)
//	bits 19..14  field B (rs1)
//	bits 13..0   signed 14-bit immediate
//
// J-format instructions (j, jal) use bits 25..0 as an unsigned absolute word
// target instead. The format exists so the instruction cache stores a real
// byte image; the simulator decodes through this path, which keeps the image
// and the decoded program honest with respect to each other.

const (
	immBits = 14
	immMask = 1<<immBits - 1
	immMax  = 1<<(immBits-1) - 1
	immMin  = -(1 << (immBits - 1))
	jTarget = 1<<26 - 1
	regMask = 0x3f
	opShift = 26
	aShift  = 20
	bShift  = 14
)

// Encode packs the instruction into the 32-bit wire format. It returns an
// error if an immediate or register does not fit, which the program
// generator treats as a bug.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpInvalid || int(in.Op) >= NumOps {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	if in.Rd > regMask || in.Rs1 > regMask || in.Rs2 > regMask {
		return 0, fmt.Errorf("isa: encode %v: register out of range", in)
	}
	w := uint32(in.Op) << opShift
	switch {
	case in.Op == OpJ || in.Op == OpJal:
		if in.Imm < 0 || in.Imm > jTarget {
			return 0, fmt.Errorf("isa: encode %v: jump target out of range", in)
		}
		return w | uint32(in.Imm), nil
	case in.IsStore() || in.IsCondBranch():
		// A=rs2, B=rs1, imm.
		if in.Imm < immMin || in.Imm > immMax {
			return 0, fmt.Errorf("isa: encode %v: immediate out of range", in)
		}
		w |= uint32(in.Rs2) << aShift
		w |= uint32(in.Rs1) << bShift
		w |= uint32(in.Imm) & immMask
		return w, nil
	default:
		// A=rd, B=rs1, imm or rs2 in the low bits.
		if in.Imm < immMin || in.Imm > immMax {
			return 0, fmt.Errorf("isa: encode %v: immediate out of range", in)
		}
		w |= uint32(in.Rd) << aShift
		w |= uint32(in.Rs1) << bShift
		if isRFormat(in.Op) {
			w |= uint32(in.Rs2) & regMask
		} else {
			w |= uint32(in.Imm) & immMask
		}
		return w, nil
	}
}

// Decode unpacks a 32-bit word into an instruction. Unknown opcodes decode
// to OpInvalid rather than failing: wrong-path fetch may run off the end of
// a function into arbitrary bytes, and the paper's machine would raise a
// fault only if such an instruction committed, which never happens.
func Decode(w uint32) Inst {
	op := Op(w >> opShift)
	if int(op) >= NumOps {
		return Inst{Op: OpInvalid}
	}
	in := Inst{Op: op}
	switch {
	case op == OpJ || op == OpJal:
		in.Imm = int32(w & jTarget)
	case op == OpHalt || op == OpInvalid:
		// no fields
	default:
		a := Reg(w >> aShift & regMask)
		b := Reg(w >> bShift & regMask)
		if in.IsStore() || in.IsCondBranch() {
			in.Rs2, in.Rs1 = a, b
			in.Imm = signExtend14(w)
		} else {
			in.Rd, in.Rs1 = a, b
			if isRFormat(op) {
				in.Rs2 = Reg(w & regMask)
			} else {
				in.Imm = signExtend14(w)
			}
		}
	}
	return in
}

func signExtend14(w uint32) int32 {
	return int32(w<<(32-immBits)) >> (32 - immBits)
}

// isRFormat reports whether the op's low bits carry rs2 rather than an
// immediate.
func isRFormat(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSlt, OpSll, OpSrl, OpSra, OpMul,
		OpFadd, OpFsub, OpFmul, OpFneg, OpJr, OpJalr:
		return true
	}
	return false
}

// EncodeAll encodes insts into a contiguous little-endian byte image.
func EncodeAll(insts []Inst) ([]byte, error) {
	img := make([]byte, len(insts)*InstBytes)
	for i, in := range insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: at instruction %d: %w", i, err)
		}
		binary.LittleEndian.PutUint32(img[i*InstBytes:], w)
	}
	return img, nil
}

// DecodeImage decodes a byte image produced by EncodeAll back into
// instructions. Trailing bytes that do not fill a word are ignored.
func DecodeImage(img []byte) []Inst {
	n := len(img) / InstBytes
	insts := make([]Inst, n)
	for i := 0; i < n; i++ {
		insts[i] = Decode(binary.LittleEndian.Uint32(img[i*InstBytes:]))
	}
	return insts
}
