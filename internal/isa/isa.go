// Package isa defines the synthetic RISC instruction set used by the
// reproduction. The paper's simulator borrowed Alpha instruction semantics
// from SimpleScalar; this package plays the same role for our from-scratch
// simulator.
//
// The ISA is deliberately Alpha-flavoured where it matters to the front-end:
//
//   - 64 logical registers (32 integer + 32 floating point), matching the
//     84-bit live-out predictor entries in the paper's Table 1 (4-bit tag +
//     64-bit register bitmap + 16-bit last-write bitmap).
//   - Fixed 4-byte instructions, so a 64-byte cache block holds 16
//     instructions exactly as in Table 1.
//   - Direct conditional branches, direct jumps, calls, indirect jumps and
//     returns — the control-flow classes the fragment-selection heuristics
//     distinguish.
//
// Programs never contain NOPs; the paper strips NOPs before counting, so the
// generator simply does not emit them.
package isa

import "fmt"

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 4

// LuiShift is how far OpLui shifts its immediate: rd = imm << LuiShift.
// 13 keeps the low part of any sub-64 MB address within the unsigned range
// of the 14-bit signed immediate, so lui+ori materializes any address the
// program generator lays out.
const LuiShift = 13

// NumIntRegs, NumFPRegs and NumRegs describe the logical register file.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
)

// Reg names a logical register. Integer registers are 0..31 and floating
// point registers are 32..63, so a single Reg value indexes the combined
// 64-entry rename map and the 64-bit live-out bitmaps directly.
type Reg uint8

// Well-known integer registers. R0 reads as zero and writes to it are
// discarded, which gives the program generator a free sink/source. R30 is
// the stack pointer and R31 the link register by software convention.
const (
	RegZero Reg = 0
	RegSP   Reg = 30
	RegLink Reg = 31
)

// FPBase is the Reg value of floating point register F0.
const FPBase Reg = NumIntRegs

// IsFP reports whether r is a floating point register.
func (r Reg) IsFP() bool { return r >= FPBase }

// String renders the conventional assembly name (r0..r31, f0..f31).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-FPBase))
	}
	return fmt.Sprintf("r%d", int(r))
}

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; decoding it is an error, and wrong-path
	// fetch beyond the end of the code image produces it.
	OpInvalid Op = iota

	// Integer register-register ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSlt // set rd = (rs1 < rs2)
	OpSll // shift left logical by rs2&63
	OpSrl // shift right logical
	OpSra // shift right arithmetic
	OpMul // integer multiply (separate FU pool, longer latency)

	// Integer register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSlli
	OpSrli
	OpLui // rd = imm << LuiShift

	// Memory. Addresses are rs1 + imm. LW/SW move integer registers,
	// LF/SF floating point registers.
	OpLw
	OpSw
	OpLf
	OpSf

	// Floating point arithmetic.
	OpFadd
	OpFsub
	OpFmul
	OpFneg

	// Control flow. Conditional branches compare rs1 against rs2 and are
	// PC-relative. OpJ/OpJal use absolute word targets. OpJr jumps to the
	// address in rs1; OpJalr additionally links into rd.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJ
	OpJal
	OpJr
	OpJalr

	// OpHalt terminates the program.
	OpHalt

	numOps
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSlt: "slt", OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpMul: "mul",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlti: "slti", OpSlli: "slli", OpSrli: "srli", OpLui: "lui",
	OpLw: "lw", OpSw: "sw", OpLf: "lf", OpSf: "sf",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFneg: "fneg",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJ: "j", OpJal: "jal", OpJr: "jr", OpJalr: "jalr",
	OpHalt: "halt",
}

// String returns the assembly mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// NumOps is the number of defined opcodes (including OpInvalid).
const NumOps = int(numOps)

// Class groups opcodes by the functional unit pool that executes them,
// mirroring Table 1 of the paper.
type Class uint8

const (
	ClassIntALU    Class = iota // 16 units, 1-cycle latency
	ClassIntMul                 // 4 units, 3-cycle latency
	ClassFPAdd                  // 4 units, 2-cycle latency
	ClassFPMul                  // 1 unit, 4-cycle latency
	ClassLoadStore              // 4 units, latency from the data cache
	NumClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassFPAdd:
		return "fp-add"
	case ClassFPMul:
		return "fp-mul"
	case ClassLoadStore:
		return "load-store"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Inst is one decoded instruction. The generator produces Inst values
// directly and Encode/Decode round-trip them through the 32-bit wire format
// so the code image is a real byte image for the instruction cache.
type Inst struct {
	Op  Op
	Rd  Reg   // destination register (register writes only)
	Rs1 Reg   // first source
	Rs2 Reg   // second source
	Imm int32 // immediate / branch offset (instructions) / absolute word target
}

// Classify returns the functional unit class for the instruction.
func (in Inst) Classify() Class {
	switch in.Op {
	case OpMul:
		return ClassIntMul
	case OpFadd, OpFsub, OpFneg:
		return ClassFPAdd
	case OpFmul:
		return ClassFPMul
	case OpLw, OpSw, OpLf, OpSf:
		return ClassLoadStore
	default:
		return ClassIntALU
	}
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Inst) IsCondBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsDirectJump reports whether the instruction is an unconditional direct
// jump or call.
func (in Inst) IsDirectJump() bool { return in.Op == OpJ || in.Op == OpJal }

// IsIndirect reports whether the instruction's target comes from a register
// (indirect jump, indirect call, or return).
func (in Inst) IsIndirect() bool { return in.Op == OpJr || in.Op == OpJalr }

// IsCall reports whether the instruction links a return address.
func (in Inst) IsCall() bool { return in.Op == OpJal || in.Op == OpJalr }

// IsReturn reports whether the instruction is a return by convention
// (an indirect jump through the link register).
func (in Inst) IsReturn() bool { return in.Op == OpJr && in.Rs1 == RegLink }

// ChangesFlow reports whether the instruction can redirect the PC.
func (in Inst) ChangesFlow() bool {
	return in.IsCondBranch() || in.IsDirectJump() || in.IsIndirect() || in.Op == OpHalt
}

// IsLoad and IsStore classify memory operations.
func (in Inst) IsLoad() bool  { return in.Op == OpLw || in.Op == OpLf }
func (in Inst) IsStore() bool { return in.Op == OpSw || in.Op == OpSf }

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool { return in.IsLoad() || in.IsStore() }

// Dest returns the destination register and true if the instruction writes a
// register. Writes to RegZero are architectural no-ops and report false so
// the renamer never allocates for them.
func (in Inst) Dest() (Reg, bool) {
	var rd Reg
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSlt, OpSll, OpSrl, OpSra, OpMul,
		OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli, OpLui,
		OpLw, OpLf, OpFadd, OpFsub, OpFmul, OpFneg:
		rd = in.Rd
	case OpJal:
		rd = RegLink
	case OpJalr:
		rd = in.Rd
	default:
		return 0, false
	}
	if rd == RegZero {
		return 0, false
	}
	return rd, true
}

// Sources appends the source registers of the instruction to dst and returns
// it. RegZero sources are omitted (always ready). Stores report both the
// address register and the data register.
func (in Inst) Sources(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RegZero {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSlt, OpSll, OpSrl, OpSra, OpMul,
		OpFadd, OpFsub, OpFmul:
		add(in.Rs1)
		add(in.Rs2)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpSlli, OpSrli,
		OpLw, OpLf, OpJr, OpJalr, OpFneg:
		add(in.Rs1)
	case OpSw, OpSf:
		add(in.Rs1) // address base
		add(in.Rs2) // store data
	case OpBeq, OpBne, OpBlt, OpBge:
		add(in.Rs1)
		add(in.Rs2)
	case OpLui, OpJ, OpJal, OpHalt, OpInvalid:
		// no register sources
	}
	return dst
}

// Latency returns the execution latency in cycles for non-memory
// instructions (memory latency comes from the cache hierarchy).
func (in Inst) Latency() int {
	switch in.Classify() {
	case ClassIntMul:
		return 3
	case ClassFPAdd:
		return 2
	case ClassFPMul:
		return 4
	default:
		return 1
	}
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == OpHalt || in.Op == OpInvalid:
		return in.Op.String()
	case in.Op == OpJ || in.Op == OpJal:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm)*InstBytes)
	case in.Op == OpJr:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case in.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, %+d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op == OpLui:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op == OpFneg:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case in.Op >= OpAddi && in.Op <= OpSrli:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
