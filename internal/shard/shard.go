// Package shard is the deterministic work-stealing task pool shared by the
// experiment sweep machinery (cells across a config grid) and the
// time-parallel simulation slicer (tape-indexed slices of one long run).
// Scheduling never perturbs results: tasks are identified by index, victims
// are scanned in a fixed order, and callers combine outcomes by index, so a
// batch is bit-identical across worker counts.
package shard

import (
	"context"
	"sync"
	"time"
)

// Stat describes one worker's share of a Run batch.
type Stat struct {
	Ran         int     // tasks this worker executed
	Stolen      int     // tasks it took from other workers' deques
	BusySeconds float64 // wall time spent executing tasks
}

// Steal-granularity tuning: a worker claims enough tasks per deque access to
// amortize the lock when tasks are very short, but never so many that the
// claimed work exceeds ~batchTarget — claimed tasks cannot be stolen, so
// large batches would recreate the tail-skew that stealing exists to fix.
const (
	batchTarget = 10 * time.Millisecond
	maxBatch    = 32
)

// deque is one worker's task queue: the owner takes batches from the front,
// thieves steal the back half — the tasks the owner would reach last, so a
// steal never races the owner for the same locality.
type deque struct {
	mu    sync.Mutex
	tasks []int
}

// takeFront removes up to max tasks from the front of the deque, appending
// them to buf.
func (d *deque) takeFront(buf []int, max int) []int {
	d.mu.Lock()
	n := len(d.tasks)
	if max > n {
		max = n
	}
	buf = append(buf, d.tasks[:max]...)
	d.tasks = d.tasks[max:]
	d.mu.Unlock()
	return buf
}

// stealHalf removes the back half (rounded up) of the deque, appending it
// to buf.
func (d *deque) stealHalf(buf []int) []int {
	d.mu.Lock()
	n := len(d.tasks)
	k := (n + 1) / 2
	buf = append(buf, d.tasks[n-k:]...)
	d.tasks = d.tasks[:n-k]
	d.mu.Unlock()
	return buf
}

// push appends tasks to the back of the deque.
func (d *deque) push(tasks []int) {
	d.mu.Lock()
	d.tasks = append(d.tasks, tasks...)
	d.mu.Unlock()
}

// Hooks observes scheduling decisions without influencing them. All callbacks
// may be nil and must be safe for concurrent use — they run on worker
// goroutines.
type Hooks struct {
	// OnSteal fires after a successful steal: thief took n tasks from victim.
	OnSteal func(thief, victim, n int)
}

// Run executes run(i) exactly once for every i in [0, n), across up to
// workers goroutines, with work stealing: each worker owns a deque seeded
// with a contiguous block of task indices; a worker whose deque runs dry
// scans the other deques in a fixed order (no randomness — scheduling must
// not perturb results) and steals half of the first non-empty one. Stealing
// bounds the tail skew of uneven task durations by the length of one task
// plus one batch rather than by the length of a whole block.
//
// Batch sizes adapt to the measured task duration (an EMA): long tasks are
// claimed one at a time so they stay stealable; very short tasks are claimed
// in groups to amortize deque locking.
//
// The returned per-worker statistics report how the batch was actually
// scheduled. run is called from multiple goroutines and must be safe for
// concurrent use; exactly-once delivery holds because every task index lives
// in exactly one deque and both take and steal remove under the deque's
// lock.
//
// Cancelling ctx drains the pool: each worker finishes the task it is
// executing, then stops claiming new ones. Tasks never claimed are simply
// not run — at-most-once under cancellation, exactly-once otherwise.
func Run(ctx context.Context, n, workers int, run func(idx int)) []Stat {
	return RunHooked(ctx, n, workers, Hooks{}, func(_, idx int) { run(idx) })
}

// RunHooked is Run with two observability extensions: run receives the
// worker index executing the task (for span/worker attribution — scheduling
// is still by task index, so this cannot perturb results), and h's callbacks
// fire on scheduling events.
func RunHooked(ctx context.Context, n, workers int, h Hooks, run func(worker, idx int)) []Stat {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	deques := make([]deque, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		block := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			block = append(block, i)
		}
		deques[w].tasks = block
	}

	stats := make([]Stat, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			self := &deques[w]
			var batch []int
			var busy time.Duration
			var emaNs float64
			batchSize := 1
			for {
				if ctx.Err() != nil {
					break
				}
				batch = self.takeFront(batch[:0], batchSize)
				if len(batch) == 0 {
					// Own deque dry: steal half of the first
					// non-empty victim into it, then retry. A worker
					// exits only when every deque looked empty — a
					// task claimed by another worker mid-scan is that
					// worker's to finish, so exiting early never
					// strands work.
					for i := 1; i < workers; i++ {
						v := (w + i) % workers
						if got := deques[v].stealHalf(nil); len(got) > 0 {
							st.Stolen += len(got)
							self.push(got)
							if h.OnSteal != nil {
								h.OnSteal(w, v, len(got))
							}
							break
						}
					}
					batch = self.takeFront(batch[:0], batchSize)
					if len(batch) == 0 {
						break
					}
				}
				start := time.Now()
				ran := 0
				for _, idx := range batch {
					if ctx.Err() != nil {
						break
					}
					run(w, idx)
					ran++
				}
				d := time.Since(start)
				busy += d
				st.Ran += ran
				if ran == 0 {
					break // canceled before the batch started
				}
				per := float64(d.Nanoseconds()) / float64(ran)
				if emaNs == 0 {
					emaNs = per
				} else {
					emaNs = 0.7*emaNs + 0.3*per
				}
				if emaNs <= 0 {
					// Unmeasurably fast tasks: claim the cap.
					batchSize = maxBatch
				} else {
					batchSize = int(float64(batchTarget.Nanoseconds()) / emaNs)
					if batchSize < 1 {
						batchSize = 1
					}
					if batchSize > maxBatch {
						batchSize = maxBatch
					}
				}
			}
			st.BusySeconds = busy.Seconds()
		}(w)
	}
	wg.Wait()
	return stats
}
