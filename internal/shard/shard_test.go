package shard

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestRunExactlyOnce checks the pool's core contract under contention:
// every task index runs exactly once, whatever the worker count, and the
// per-shard Ran counts account for all of them. With -race this also
// exercises the deque locking across take/steal/push. (The experiment-level
// behaviour — determinism of sweep results across worker counts — is pinned
// by internal/experiments' scheduler tests through the adapter.)
func TestRunExactlyOnce(t *testing.T) {
	const n = 5000
	counts := make([]atomic.Int32, n)
	for _, workers := range []int{1, 3, 8, 64} {
		for i := range counts {
			counts[i].Store(0)
		}
		stats := Run(context.Background(), n, workers, func(i int) { counts[i].Add(1) })
		if len(stats) != workers {
			t.Fatalf("workers=%d: %d shard stats", workers, len(stats))
		}
		total := 0
		for _, s := range stats {
			total += s.Ran
		}
		if total != n {
			t.Errorf("workers=%d: shards report %d tasks ran, want %d", workers, total, n)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want exactly once", workers, i, c)
			}
		}
	}
}

// TestRunHookedWorkerAttribution checks the observability extensions: the
// worker index handed to run is the goroutine that executed the task (its
// Ran count must match), and OnSteal totals agree with the Stolen stats.
func TestRunHookedWorkerAttribution(t *testing.T) {
	const n = 2000
	for _, workers := range []int{1, 4, 8} {
		perWorker := make([]atomic.Int32, workers)
		var hookStolen atomic.Int32
		h := Hooks{OnSteal: func(thief, victim, cnt int) {
			if thief == victim || thief < 0 || victim < 0 || thief >= workers || victim >= workers || cnt <= 0 {
				t.Errorf("bad steal event thief=%d victim=%d n=%d", thief, victim, cnt)
			}
			hookStolen.Add(int32(cnt))
		}}
		stats := RunHooked(context.Background(), n, workers, h, func(w, i int) {
			if w < 0 || w >= workers {
				t.Errorf("task %d: worker index %d out of range", i, w)
			}
			perWorker[w].Add(1)
		})
		total := 0
		statStolen := 0
		for w, s := range stats {
			if int(perWorker[w].Load()) != s.Ran {
				t.Errorf("workers=%d: worker %d ran %d tasks but Stat says %d",
					workers, w, perWorker[w].Load(), s.Ran)
			}
			total += s.Ran
			statStolen += s.Stolen
		}
		if total != n {
			t.Errorf("workers=%d: %d tasks ran, want %d", workers, total, n)
		}
		if int(hookStolen.Load()) != statStolen {
			t.Errorf("workers=%d: OnSteal saw %d stolen tasks, stats say %d",
				workers, hookStolen.Load(), statStolen)
		}
	}
}

// TestRunZeroAndNegative pins the edge cases: nothing to run returns no
// stats, and degenerate worker counts clamp to one.
func TestRunZeroAndNegative(t *testing.T) {
	if st := Run(context.Background(), 0, 4, func(int) { t.Fatal("ran") }); st != nil {
		t.Fatalf("n=0: got stats %v", st)
	}
	ran := 0
	st := Run(context.Background(), 3, -2, func(int) { ran++ })
	if len(st) != 1 || ran != 3 {
		t.Fatalf("workers=-2: stats=%d ran=%d, want 1 worker running 3 tasks", len(st), ran)
	}
}
