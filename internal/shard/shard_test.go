package shard

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestRunExactlyOnce checks the pool's core contract under contention:
// every task index runs exactly once, whatever the worker count, and the
// per-shard Ran counts account for all of them. With -race this also
// exercises the deque locking across take/steal/push. (The experiment-level
// behaviour — determinism of sweep results across worker counts — is pinned
// by internal/experiments' scheduler tests through the adapter.)
func TestRunExactlyOnce(t *testing.T) {
	const n = 5000
	counts := make([]atomic.Int32, n)
	for _, workers := range []int{1, 3, 8, 64} {
		for i := range counts {
			counts[i].Store(0)
		}
		stats := Run(context.Background(), n, workers, func(i int) { counts[i].Add(1) })
		if len(stats) != workers {
			t.Fatalf("workers=%d: %d shard stats", workers, len(stats))
		}
		total := 0
		for _, s := range stats {
			total += s.Ran
		}
		if total != n {
			t.Errorf("workers=%d: shards report %d tasks ran, want %d", workers, total, n)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want exactly once", workers, i, c)
			}
		}
	}
}

// TestRunZeroAndNegative pins the edge cases: nothing to run returns no
// stats, and degenerate worker counts clamp to one.
func TestRunZeroAndNegative(t *testing.T) {
	if st := Run(context.Background(), 0, 4, func(int) { t.Fatal("ran") }); st != nil {
		t.Fatalf("n=0: got stats %v", st)
	}
	ran := 0
	st := Run(context.Background(), 3, -2, func(int) { ran++ })
	if len(st) != 1 || ran != 3 {
		t.Fatalf("workers=-2: stats=%d ran=%d, want 1 worker running 3 tasks", len(st), ran)
	}
}
