package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// SchemaVersion is the benchmark-report JSON schema version. Readers reject
// any other version: the report is a provenance record, and silently
// reinterpreting fields across schema changes would corrupt the perf
// trajectory it exists to protect.
const SchemaVersion = 1

// Provenance records where a benchmark run came from.
type Provenance struct {
	GitSHA      string `json:"git_sha"`
	GitModified bool   `json:"git_modified,omitempty"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	NumCPU      int    `json:"num_cpu"`
	Hostname    string `json:"hostname,omitempty"`
}

// CollectProvenance fills a Provenance from the running binary: the git SHA
// comes from debug.ReadBuildInfo's VCS stamp (set by `go build` inside a
// git work tree), falling back to $PFE_GIT_SHA, then "unknown".
func CollectProvenance() Provenance {
	p := Provenance{
		GitSHA:    "unknown",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if h, err := os.Hostname(); err == nil {
		p.Hostname = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitSHA = s.Value
			case "vcs.modified":
				p.GitModified = s.Value == "true"
			}
		}
	}
	if p.GitSHA == "unknown" {
		if v := os.Getenv("PFE_GIT_SHA"); v != "" {
			p.GitSHA = v
		}
	}
	return p
}

// RunSpec records the options a benchmark run was invoked with.
type RunSpec struct {
	WarmupInsts  int64    `json:"warmup_insts"`
	MeasureInsts int64    `json:"measure_insts"`
	Benchmarks   []string `json:"benchmarks,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	Experiments  []string `json:"experiments"`

	// Acceleration modes, present only when the run used them: sampled
	// runs report estimates (not exact IPCs), sliced runs reconcile
	// cycle counts at seams — a comparator reading two reports should
	// know whether the numbers are commensurable.
	SampleUnit   int64 `json:"sample_unit,omitempty"`
	SamplePeriod int64 `json:"sample_period,omitempty"`
	SampleWarmup int64 `json:"sample_warmup,omitempty"`
	Slices       int   `json:"slices,omitempty"`
	SliceWarmup  int64 `json:"slice_warmup,omitempty"`
}

// Row is one simulation's metrics inside a report: every per-benchmark
// number the comparator can gate on.
type Row struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`

	IPC              float64 `json:"ipc"`
	FetchRate        float64 `json:"fetch_rate"`
	RenameRate       float64 `json:"rename_rate"`
	FetchSlotUtil    float64 `json:"fetch_slot_util"`
	FragPredAccuracy float64 `json:"frag_pred_accuracy"`
	TCHitRate        float64 `json:"tc_hit_rate,omitempty"`
	L1IMissRate      float64 `json:"l1i_miss_rate"`
	L1DMissRate      float64 `json:"l1d_miss_rate"`
	BufferReuseRate  float64 `json:"buffer_reuse_rate,omitempty"`

	Cycles    uint64 `json:"cycles"`
	Committed int64  `json:"committed"`

	// Timing is the cell's wall-time breakdown from the sweep span trace
	// (present only when the run traced spans): where this cell's wall time
	// went between waiting for a worker, building the workload, and simulating.
	Timing *RowTiming `json:"timing,omitempty"`
}

// RowTiming decomposes one cell's wall time, derived from its span timeline:
// queue-wait is the delay between sweep start and the cell being claimed by a
// worker; build covers program-build and tape-build/replay phases; sim covers
// the detailed simulation (including sampled windows, gap warming, and
// time-parallel slices); overhead is the remainder (scheduling, journaling,
// memo lookups, retry backoff).
type RowTiming struct {
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	BuildSeconds     float64 `json:"build_seconds"`
	SimSeconds       float64 `json:"sim_seconds"`
	OverheadSeconds  float64 `json:"overhead_seconds"`
}

// CellFailure is one experiment cell that exhausted its retries: the
// structured failure record the harness reports instead of aborting the
// sweep. DumpPath, when set, references the stall diagnostic bundle
// (flight-recorder events, per-stage occupancy, predictor state) written
// for a watchdog trip.
type CellFailure struct {
	Experiment string `json:"experiment"`
	Bench      string `json:"bench"`
	Key        string `json:"config"`
	Attempts   int    `json:"attempts"`
	Error      string `json:"error"`
	Panic      bool   `json:"panic,omitempty"`
	Stack      string `json:"stack,omitempty"`
	DumpPath   string `json:"dump_path,omitempty"`
}

// ArtifactsReport summarizes the run's cross-cell workload reuse: traffic
// and footprint of the content-addressed artifact cache (shared program
// images, oracle tapes, memoized cell results). Hits are work the run did
// not repeat; tape_fallback_steps counts instructions a tape reader served
// by live emulation after outrunning a truncated recording (0 in healthy
// runs).
type ArtifactsReport struct {
	ProgramHits       int64 `json:"program_hits"`
	ProgramMisses     int64 `json:"program_misses"`
	TapeHits          int64 `json:"tape_hits"`
	TapeMisses        int64 `json:"tape_misses"`
	ResultHits        int64 `json:"result_hits"`
	ResultMisses      int64 `json:"result_misses"`
	WarmHits          int64 `json:"warm_hits,omitempty"`
	WarmMisses        int64 `json:"warm_misses,omitempty"`
	Evictions         int64 `json:"evictions,omitempty"`
	Bytes             int64 `json:"bytes"`
	TapeBytes         int64 `json:"tape_bytes"`
	MaxBytes          int64 `json:"max_bytes,omitempty"`
	TapeFallbackSteps int64 `json:"tape_fallback_steps,omitempty"`

	// Disk summarizes the persistent store tier (present only when the run
	// had one attached). Additive and omitted when absent.
	Disk *ArtifactsDiskReport `json:"disk,omitempty"`
}

// ArtifactsDiskReport summarizes the persistent artifact store's traffic for
// one run: per-kind disk hits/misses (a disk hit is a build the process
// inherited from an earlier run), footprint against the -artifact-disk
// budget, and the integrity counters (quarantined blobs, orphans swept,
// torn journal tails — all zero in healthy runs).
type ArtifactsDiskReport struct {
	Dir          string           `json:"dir,omitempty"`
	Kinds        map[string]int64 `json:"hits,omitempty"`
	KindMisses   map[string]int64 `json:"misses,omitempty"`
	Entries      int              `json:"entries"`
	Bytes        int64            `json:"bytes"`
	MaxBytes     int64            `json:"max_bytes,omitempty"`
	Puts         int64            `json:"puts,omitempty"`
	PutErrors    int64            `json:"put_errors,omitempty"`
	Evictions    int64            `json:"evictions,omitempty"`
	Quarantined  int64            `json:"quarantined,omitempty"`
	OrphansSwept int64            `json:"orphans_swept,omitempty"`
	TornTail     int64            `json:"torn_tail,omitempty"`
	IndexRebuilt bool             `json:"index_rebuilt,omitempty"`
}

// SchedulerReport summarizes how the work-stealing scheduler executed an
// experiment's simulations: pool size, steal traffic, and how much of the
// workers' combined wall time was spent running simulations (utilization).
type SchedulerReport struct {
	Workers     int     `json:"workers"`
	Tasks       int     `json:"tasks"`
	Stolen      int     `json:"stolen"`
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`

	// Fabric is the per-worker lease accounting of a distributed sweep
	// (absent for in-process runs — additive, so the schema version is
	// unchanged). Sorted by worker id at Finalize.
	Fabric []FabricWorkerReport `json:"fabric,omitempty"`
}

// FabricWorkerReport is one fabric worker's lease accounting within an
// experiment: leases granted, cells completed, leases lost to expiry or
// errored attempts (requeued), and stale-epoch reports fenced out.
type FabricWorkerReport struct {
	ID        string `json:"id"`
	Leases    int    `json:"leases"`
	Completed int    `json:"completed"`
	Requeued  int    `json:"requeued"`
	Fenced    int    `json:"fenced"`
}

// ExperimentReport is one experiment's slice of a report.
type ExperimentReport struct {
	ID          string           `json:"id"`
	Title       string           `json:"title"`
	WallSeconds float64          `json:"wall_seconds"`
	Sims        int              `json:"sims"`
	SimsPerSec  float64          `json:"sims_per_sec,omitempty"`
	Scheduler   *SchedulerReport `json:"scheduler,omitempty"`
	Rows        []Row            `json:"rows,omitempty"`
}

// Report is the versioned machine-readable record of one pfe-bench run —
// the artifact behind `pfe-bench -json`, the BENCH_*.json trajectory and
// the `-compare` regression gate.
type Report struct {
	SchemaVersion int        `json:"schema_version"`
	CreatedAt     string     `json:"created_at"`
	Tool          string     `json:"tool"`
	Provenance    Provenance `json:"provenance"`
	Options       RunSpec    `json:"options"`

	WallSeconds float64 `json:"wall_seconds"`
	TotalSims   int     `json:"total_sims"`
	SimsPerSec  float64 `json:"sims_per_sec,omitempty"`

	// Partial marks a report emitted by a run that did not complete every
	// planned cell — an interrupted (SIGINT/SIGTERM-drained) sweep or one
	// degraded by cell failures. Partial reports are still valid resume
	// bases and comparator inputs for the rows they do contain.
	Partial bool `json:"partial,omitempty"`

	// Failures lists the cells that failed under the failure budget.
	Failures []CellFailure `json:"failures,omitempty"`

	// StageSeconds is the aggregate simulator self-profile (present only
	// when runs were profiled).
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`

	// Artifacts is the workload-reuse summary (present only when the run
	// used the artifact cache). Additive and omitted when absent, so the
	// schema version is unchanged.
	Artifacts *ArtifactsReport `json:"artifacts,omitempty"`

	// Fabric is the distributed-sweep summary (present only for fabric
	// runs). Additive and omitted when absent, so the schema version is
	// unchanged.
	Fabric *FabricReport `json:"fabric,omitempty"`

	Experiments []ExperimentReport `json:"experiments"`
}

// FabricReport is the run-level distributed-sweep summary: fleet size plus
// the artifact plane's transfer accounting.
type FabricReport struct {
	Workers int                `json:"workers"`
	Blobs   *FabricBlobsReport `json:"blobs,omitempty"`
}

// FabricBlobsReport aggregates the artifact plane's wire traffic: the
// coordinator's serve/accept side and the fleet's fetch/publish side. The
// dedup invariant — each distinct artifact crosses the wire at most once per
// worker — is checkable as Serves <= UniqueServed * Workers.
type FabricBlobsReport struct {
	Serves       int64   `json:"serves"`
	ServeMisses  int64   `json:"serve_misses,omitempty"`
	Collapses    int64   `json:"collapses,omitempty"`
	UniqueServed int     `json:"unique_served"`
	Accepts      int64   `json:"accepts"`
	DupAccepts   int64   `json:"dup_accepts,omitempty"`
	Rejects      int64   `json:"rejects,omitempty"`
	BytesOut     int64   `json:"bytes_out"`
	BytesIn      int64   `json:"bytes_in"`
	ServeSeconds float64 `json:"serve_seconds,omitempty"`

	// Worker-side aggregates across the -local fleet (absent for external
	// workers, whose counters live in their own processes).
	WorkerFetches         int64   `json:"worker_fetches,omitempty"`
	WorkerFetchBytes      int64   `json:"worker_fetch_bytes,omitempty"`
	WorkerCorruptRejected int64   `json:"worker_corrupt_rejected,omitempty"`
	WorkerPublishes       int64   `json:"worker_publishes,omitempty"`
	WorkerFetchSeconds    float64 `json:"worker_fetch_seconds,omitempty"`
	WorkerWaitSeconds     float64 `json:"worker_wait_seconds,omitempty"`
}

// EncodeReport writes r as indented JSON.
func EncodeReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport reads a report, rejecting schema-version mismatches.
func DecodeReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: decoding report: %w", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("obs: report schema version %d, this binary reads only version %d",
			rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// WriteReportFile writes r to path.
func WriteReportFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeReport(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReportFile reads and validates a report from path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := DecodeReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// ReportBuilder accumulates a Report while experiments run; AddRow and
// AddStageSeconds are safe to call from concurrent simulation workers.
type ReportBuilder struct {
	mu     sync.Mutex
	rep    Report
	order  []string
	byID   map[string]*ExperimentReport
	stages map[string]float64
}

// NewReportBuilder stamps provenance and options for a new report.
func NewReportBuilder(tool string, spec RunSpec) *ReportBuilder {
	return &ReportBuilder{
		rep: Report{
			SchemaVersion: SchemaVersion,
			CreatedAt:     time.Now().UTC().Format(time.RFC3339),
			Tool:          tool,
			Provenance:    CollectProvenance(),
			Options:       spec,
		},
		byID: map[string]*ExperimentReport{},
	}
}

// StartExperiment adds an experiment section.
func (b *ReportBuilder) StartExperiment(id, title string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.byID[id] != nil {
		return
	}
	b.byID[id] = &ExperimentReport{ID: id, Title: title}
	b.order = append(b.order, id)
}

// AddRow appends one simulation's metrics to an experiment.
func (b *ReportBuilder) AddRow(id string, row Row) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.byID[id]; e != nil {
		e.Rows = append(e.Rows, row)
		e.Sims++
	}
}

// SetRowTiming attaches a span-derived wall-time breakdown to the matching
// row of an experiment (the first row for that bench/config still missing
// one). Call before Finalize; rows without trace coverage keep Timing nil.
func (b *ReportBuilder) SetRowTiming(id, bench, config string, t RowTiming) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byID[id]
	if e == nil {
		return
	}
	for i := range e.Rows {
		r := &e.Rows[i]
		if r.Bench == bench && r.Config == config && r.Timing == nil {
			tc := t
			r.Timing = &tc
			return
		}
	}
}

// AddStageSeconds merges one run's self-profile into the aggregate.
func (b *ReportBuilder) AddStageSeconds(sec map[string]float64) {
	if len(sec) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stages == nil {
		b.stages = map[string]float64{}
	}
	for k, v := range sec {
		b.stages[k] += v
	}
}

// AddScheduler merges one batch's work-stealing scheduler statistics into an
// experiment's report (an experiment may shard cells in several batches:
// worker counts take the max, the rest accumulate).
func (b *ReportBuilder) AddScheduler(id string, workers, tasks, stolen int, busySeconds float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byID[id]
	if e == nil {
		return
	}
	if e.Scheduler == nil {
		e.Scheduler = &SchedulerReport{}
	}
	if workers > e.Scheduler.Workers {
		e.Scheduler.Workers = workers
	}
	e.Scheduler.Tasks += tasks
	e.Scheduler.Stolen += stolen
	e.Scheduler.BusySeconds += busySeconds
}

// AddFabricWorkers merges one distributed batch's per-worker lease stats
// into an experiment's scheduler block (stats accumulate across batches,
// keyed by worker id). Tasks counts leased completions; Workers tracks the
// distinct fleet size.
func (b *ReportBuilder) AddFabricWorkers(id string, ws []FabricWorkerReport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byID[id]
	if e == nil {
		return
	}
	if e.Scheduler == nil {
		e.Scheduler = &SchedulerReport{}
	}
	s := e.Scheduler
	for _, w := range ws {
		var cur *FabricWorkerReport
		for i := range s.Fabric {
			if s.Fabric[i].ID == w.ID {
				cur = &s.Fabric[i]
				break
			}
		}
		if cur == nil {
			s.Fabric = append(s.Fabric, FabricWorkerReport{ID: w.ID})
			cur = &s.Fabric[len(s.Fabric)-1]
		}
		cur.Leases += w.Leases
		cur.Completed += w.Completed
		cur.Requeued += w.Requeued
		cur.Fenced += w.Fenced
		s.Tasks += w.Completed
	}
	if len(s.Fabric) > s.Workers {
		s.Workers = len(s.Fabric)
	}
}

// AddFailure records one failed cell in the report's failures block.
func (b *ReportBuilder) AddFailure(f CellFailure) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rep.Failures = append(b.rep.Failures, f)
	b.rep.Partial = true
}

// SetArtifacts records the workload-reuse summary in the report.
func (b *ReportBuilder) SetArtifacts(a ArtifactsReport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rep.Artifacts = &a
}

// SetFabric records the distributed-sweep summary in the report.
func (b *ReportBuilder) SetFabric(f FabricReport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rep.Fabric = &f
}

// SetPartial marks the report as covering an incomplete run (e.g. a sweep
// drained early by SIGINT/SIGTERM).
func (b *ReportBuilder) SetPartial() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rep.Partial = true
}

// FinishExperiment records an experiment's wall time.
func (b *ReportBuilder) FinishExperiment(id string, wall time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.byID[id]; e != nil {
		e.WallSeconds = wall.Seconds()
		if e.WallSeconds > 0 {
			e.SimsPerSec = float64(e.Sims) / e.WallSeconds
		}
		if s := e.Scheduler; s != nil && s.Workers > 0 && e.WallSeconds > 0 {
			s.Utilization = s.BusySeconds / (float64(s.Workers) * e.WallSeconds)
		}
	}
}

// Finalize sorts rows deterministically, fills the totals and returns the
// report. The builder must not be used afterwards.
func (b *ReportBuilder) Finalize(totalWall time.Duration) *Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, id := range b.order {
		e := b.byID[id]
		sort.Slice(e.Rows, func(x, y int) bool {
			if e.Rows[x].Bench != e.Rows[y].Bench {
				return e.Rows[x].Bench < e.Rows[y].Bench
			}
			return e.Rows[x].Config < e.Rows[y].Config
		})
		if s := e.Scheduler; s != nil && len(s.Fabric) > 0 {
			// Worker rows arrive in lease-grant order, which is racy across
			// runs; sort so the report is deterministic.
			sort.Slice(s.Fabric, func(x, y int) bool { return s.Fabric[x].ID < s.Fabric[y].ID })
		}
		total += e.Sims
		b.rep.Experiments = append(b.rep.Experiments, *e)
	}
	sort.Slice(b.rep.Failures, func(x, y int) bool {
		fx, fy := b.rep.Failures[x], b.rep.Failures[y]
		if fx.Experiment != fy.Experiment {
			return fx.Experiment < fy.Experiment
		}
		if fx.Bench != fy.Bench {
			return fx.Bench < fy.Bench
		}
		return fx.Key < fy.Key
	})
	b.rep.TotalSims = total
	b.rep.WallSeconds = totalWall.Seconds()
	if b.rep.WallSeconds > 0 {
		b.rep.SimsPerSec = float64(total) / b.rep.WallSeconds
	}
	b.rep.StageSeconds = b.stages
	return &b.rep
}
