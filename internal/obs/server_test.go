package obs_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/parallel-frontend/pfe/internal/obs"
)

// TestServerShutdownDrainsInFlightScrape pins the graceful-shutdown
// contract: a /metrics scrape that is mid-flight when Shutdown is called
// completes with a full body, the listener stops accepting new connections,
// and Shutdown does not return before the request finishes.
func TestServerShutdownDrainsInFlightScrape(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pfe_test_total", "test counter").Add(42)
	// A scrape-time gauge that blocks until released, holding the scrape
	// in flight across the Shutdown call.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	reg.GaugeFunc("pfe_slow_gauge", "blocks the first scrape", func() float64 {
		if !once {
			once = true
			close(entered)
			<-release
		}
		return 1
	})

	srv, err := obs.Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	type scrape struct {
		body string
		code int
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(b), code: resp.StatusCode, err: err}
	}()

	<-entered // the scrape is now blocked inside the handler

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not race past it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a scrape was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape failed: %v", s.err)
	}
	if s.code != http.StatusOK {
		t.Fatalf("in-flight scrape status = %d, want 200", s.code)
	}
	if !strings.Contains(s.body, "pfe_test_total 42") {
		t.Errorf("scrape body incomplete:\n%s", s.body)
	}

	// The listener is closed: new connections are refused.
	if conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting connections after Shutdown")
	}

	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", obs.NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown after Close: %v", err)
	}
}
