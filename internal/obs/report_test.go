package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fixtureReport builds a report with one experiment ("fig8") whose rows have
// the given bench→IPC values, and the given aggregate sims/sec.
func fixtureReport(ipc map[string]float64, simsPerSec float64) *Report {
	b := NewReportBuilder("pfe-bench", RunSpec{WarmupInsts: 1, MeasureInsts: 2, Experiments: []string{"fig8"}})
	b.StartExperiment("fig8", "Figure 8: Performance")
	for bench, v := range ipc {
		b.AddRow("fig8", Row{Bench: bench, Config: "PR-2x8w", IPC: v, Cycles: 100, Committed: int64(100 * v)})
	}
	b.FinishExperiment("fig8", 2*time.Second)
	rep := b.Finalize(2 * time.Second)
	rep.SimsPerSec = simsPerSec
	return rep
}

func TestReportRoundTrip(t *testing.T) {
	rep := fixtureReport(map[string]float64{"gcc": 3.5, "gzip": 4.25}, 10)
	rep.StageSeconds = map[string]float64{"fetch": 1.5, "backend": 3}

	var buf bytes.Buffer
	if err := EncodeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", got.SchemaVersion, SchemaVersion)
	}
	if got.Tool != "pfe-bench" || got.TotalSims != 2 {
		t.Errorf("Tool/TotalSims = %q/%d, want pfe-bench/2", got.Tool, got.TotalSims)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].ID != "fig8" || len(got.Experiments[0].Rows) != 2 {
		t.Fatalf("experiments did not round-trip: %+v", got.Experiments)
	}
	// Finalize sorts rows by bench: gcc before gzip.
	rows := got.Experiments[0].Rows
	if rows[0].Bench != "gcc" || rows[0].IPC != 3.5 || rows[1].Bench != "gzip" || rows[1].IPC != 4.25 {
		t.Errorf("rows did not round-trip sorted: %+v", rows)
	}
	if got.StageSeconds["backend"] != 3 {
		t.Errorf("StageSeconds did not round-trip: %v", got.StageSeconds)
	}
	if got.Provenance.GoVersion == "" || got.Provenance.GitSHA == "" {
		t.Errorf("provenance not stamped: %+v", got.Provenance)
	}
}

func TestDecodeReportRejectsSchemaMismatch(t *testing.T) {
	rep := fixtureReport(map[string]float64{"gcc": 3.5}, 10)
	rep.SchemaVersion = SchemaVersion + 1
	var buf bytes.Buffer
	if err := EncodeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReport(&buf); err == nil {
		t.Fatal("decoding a future schema version should fail")
	} else if !strings.Contains(err.Error(), "schema version") {
		t.Errorf("error should name the schema version: %v", err)
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 3.5, "gzip": 4.25}, 10)
	new := fixtureReport(map[string]float64{"gcc": 3.5, "gzip": 4.25}, 10)
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 0 {
		t.Errorf("identical reports: exit %d, want 0\n%s", c.ExitCode(), c.Table())
	}
	if !strings.Contains(c.Table(), "RESULT: PASS") {
		t.Errorf("table should say PASS:\n%s", c.Table())
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 3.5}, 10)
	new := fixtureReport(map[string]float64{"gcc": 3.85}, 10) // +10%
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 0 {
		t.Errorf("improvement: exit %d, want 0\n%s", c.ExitCode(), c.Table())
	}
	if c.Improvements != 1 {
		t.Errorf("Improvements = %d, want 1", c.Improvements)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 1000}, 10)
	new := fixtureReport(map[string]float64{"gcc": 996}, 10) // -0.4%, inside 0.5%
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 0 {
		t.Errorf("within tolerance: exit %d, want 0\n%s", c.ExitCode(), c.Table())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 4.0, "gzip": 4.0}, 10)
	new := fixtureReport(map[string]float64{"gcc": 3.8, "gzip": 4.0}, 10) // gcc -5%
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 1 {
		t.Fatalf("5%% IPC drop: exit %d, want 1", c.ExitCode())
	}
	tbl := c.Table()
	for _, want := range []string{"gcc", "REGRESSION", "-5.00%", "RESULT: REGRESSION"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestCompareMissingRowFails(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 4.0, "gzip": 4.0}, 10)
	new := fixtureReport(map[string]float64{"gcc": 4.0}, 10)
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 1 {
		t.Errorf("vanished row: exit %d, want 1 (coverage must not shrink silently)", c.ExitCode())
	}
	if c.Missing != 1 || !strings.Contains(c.Table(), "MISSING") {
		t.Errorf("Missing = %d, table:\n%s", c.Missing, c.Table())
	}
}

func TestCompareZeroToleranceIsExact(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 1000}, 10)
	new := fixtureReport(map[string]float64{"gcc": 999.9}, 10) // -0.01%
	c := Compare(old, new, CompareOptions{IPCTolPct: 0, ThroughputTolPct: 25})
	if c.Opts.IPCTolPct != 0 {
		t.Fatalf("explicit zero tolerance coerced to %v", c.Opts.IPCTolPct)
	}
	if c.ExitCode() != 1 {
		t.Errorf("-tol 0 with any IPC drop: exit %d, want 1\n%s", c.ExitCode(), c.Table())
	}
	// Negative still means "use the default": -0.01% passes at 0.5%.
	if c2 := Compare(old, new, CompareOptions{IPCTolPct: -1, ThroughputTolPct: -1}); c2.ExitCode() != 0 {
		t.Errorf("default tolerance: exit %d, want 0\n%s", c2.ExitCode(), c2.Table())
	}
}

func TestCompareNotesSkippedThroughputGate(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 4.0}, 10)
	new := fixtureReport(map[string]float64{"gcc": 4.0}, 0) // no sims_per_sec
	c := Compare(old, new, DefaultCompareOptions())
	if c.ThroughputRegressed {
		t.Error("gate cannot judge a zero sims/sec side")
	}
	if tbl := c.Table(); !strings.Contains(tbl, "SKIPPED") {
		t.Errorf("table should note the skipped throughput gate:\n%s", tbl)
	}
}

func TestCompareThroughputCollapseFails(t *testing.T) {
	old := fixtureReport(map[string]float64{"gcc": 4.0}, 10)
	new := fixtureReport(map[string]float64{"gcc": 4.0}, 5) // -50% sims/sec
	c := Compare(old, new, DefaultCompareOptions())
	if c.ExitCode() != 1 {
		t.Errorf("host throughput -50%%: exit %d, want 1", c.ExitCode())
	}
	// A small throughput wobble stays inside the loose default tolerance.
	new2 := fixtureReport(map[string]float64{"gcc": 4.0}, 9)
	if c2 := Compare(old, new2, DefaultCompareOptions()); c2.ExitCode() != 0 {
		t.Errorf("host throughput -10%%: exit %d, want 0", c2.ExitCode())
	}
}
