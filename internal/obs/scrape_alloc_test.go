package obs

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestScrapeAllocationGuard bounds the per-scrape cost of the /metrics
// exposition path: allocations must stay proportional to the number of
// exposition lines (transient fmt/strconv work), independent of how many
// scrapes came before or how large the counter values have grown. A leak
// here would turn a long -http run into steady GC churn for a process whose
// simulation hot path is otherwise allocation-free.
func TestScrapeAllocationGuard(t *testing.T) {
	r := NewRegistry()
	sc := NewSimCounters(r)
	tr := NewTracker(r)
	tr.StartExperiment("fig8", "Figure 8: Performance")
	tr.AddPlanned("fig8", 100)
	for i := 0; i < 32; i++ {
		tr.SimDone("fig8", 3.5, 50*time.Millisecond)
	}
	sc.Cycles.Add(1_000_000_000)
	sc.Committed.Add(3_200_000_000)
	sc.PoolGets.Add(123_456_789)
	sc.PoolMisses.Add(789)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines == 0 {
		t.Fatal("empty exposition")
	}

	avg := testing.AllocsPerRun(20, func() {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	// ~8 allocations per line is generous for the fmt boxing and float
	// formatting each line performs; anything beyond it means per-scrape
	// state is accumulating somewhere.
	budget := float64(8*lines + 64)
	if avg > budget {
		t.Errorf("scrape allocated %.0f objects for %d lines, budget %.0f", avg, lines, budget)
	}
}
