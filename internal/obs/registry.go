// Package obs is the live observability layer: a lock-cheap registry of
// named counters, gauges and histograms snapshotted from running
// simulations, Prometheus text-format exposition, an opt-in HTTP server
// (/metrics, /status, net/http/pprof), sampled per-stage wall-time
// self-profiling of the simulator, and the machine-readable benchmark
// provenance schema plus regression comparator behind
// `pfe-bench -json` / `pfe-bench -compare`.
//
// Everything on the update path is a single atomic operation (or a plain
// branch when observability is off), so simulations pay nothing unless a
// caller attaches the instruments.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic tally, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 value, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bound atomic histogram exposed in Prometheus
// cumulative form (_bucket{le=...}, _sum, _count). Bounds are the inclusive
// upper edges of the finite buckets; an implicit +Inf bucket catches the
// rest. Observe is one atomic add per bucket touched.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram returns a standalone histogram with the given (sorted)
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind is the Prometheus family type.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance inside a family.
type series struct {
	labels []labelPair
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

type labelPair struct{ k, v string }

type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series // keyed by rendered label string
	order      []string
}

// Registry holds named metrics for Prometheus exposition. Registration
// takes a mutex; updates to the returned instruments are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// labels converts alternating key, value strings to sorted pairs.
func toPairs(kv []string) []labelPair {
	if len(kv)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	pairs := make([]labelPair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, labelPair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	return pairs
}

func renderLabels(pairs []labelPair, extra ...labelPair) string {
	all := append(append([]labelPair(nil), pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// getSeries returns (creating if needed) the series for name+labels,
// checking the family's kind and help are consistent. init runs on the
// series while the registry lock is still held, so instrument creation is
// synchronized with concurrent WritePrometheus scrapes and with concurrent
// registrations of the same metric.
func (r *Registry) getSeries(name, help string, kind metricKind, kv []string, init func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.fams[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	pairs := toPairs(kv)
	key := renderLabels(pairs)
	s := fam.series[key]
	if s == nil {
		s = &series{labels: pairs}
		fam.series[key] = s
		fam.order = append(fam.order, key)
		sort.Strings(fam.order)
	}
	init(s)
	return s
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getSeries(name, help, kindCounter, labels, func(s *series) {
		if s.c == nil {
			s.c = NewCounter()
		}
	})
	return s.c
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getSeries(name, help, kindGauge, labels, func(s *series) {
		if s.g == nil {
			s.g = &Gauge{}
		}
	})
	return s.g
}

// GaugeFunc registers a gauge computed by f at scrape time. f must be safe
// for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...string) {
	r.getSeries(name, help, kindGauge, labels, func(s *series) { s.f = f })
}

// CounterFunc registers a counter-typed metric computed by f at scrape time
// (for monotonic values accumulated elsewhere, e.g. stage wall time). f
// must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...string) {
	r.getSeries(name, help, kindCounter, labels, func(s *series) { s.f = f })
}

// Histogram registers (or returns the existing) histogram name{labels} with
// the given upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.getSeries(name, help, kindHistogram, labels, func(s *series) {
		if s.h == nil {
			s.h = NewHistogram(bounds)
		}
	})
	return s.h
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, families sorted by name, series sorted by labels.
// It is safe to call concurrently with metric updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		fam := r.fams[n]
		fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, key := range fam.order {
			s := fam.series[key]
			switch {
			case s.h != nil:
				var cum int64
				for i, bound := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.name,
						renderLabels(s.labels, labelPair{"le", formatFloat(bound)}), cum)
				}
				cum += s.h.buckets[len(s.h.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.name,
					renderLabels(s.labels, labelPair{"le", "+Inf"}), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam.name, key, formatFloat(s.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam.name, key, s.h.Count())
			case s.f != nil:
				fmt.Fprintf(bw, "%s%s %s\n", fam.name, key, formatFloat(s.f()))
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", fam.name, key, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %s\n", fam.name, key, formatFloat(s.g.Value()))
			}
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}
