package obs

import (
	"fmt"
	"sort"
	"strings"

	"github.com/parallel-frontend/pfe/internal/stats"
)

// CompareOptions tunes the regression comparator. A zero tolerance means
// exact match; a negative one means "use the default".
type CompareOptions struct {
	// IPCTolPct is the per-row IPC tolerance in percent: a row whose IPC
	// dropped by more than this is a regression. Simulations are
	// deterministic, so this mostly absorbs intentional model changes.
	IPCTolPct float64

	// ThroughputTolPct is the tolerance on the runs' aggregate sims/sec.
	// Host throughput is noisy run to run, so this defaults much looser
	// than the IPC gate.
	ThroughputTolPct float64
}

// DefaultCompareOptions returns the gate defaults: 0.5% on IPC, 25% on
// host throughput.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{IPCTolPct: 0.5, ThroughputTolPct: 25}
}

// RowDelta is one (experiment, bench, config) comparison.
type RowDelta struct {
	Experiment string
	Bench      string
	Config     string
	OldIPC     float64
	NewIPC     float64
	DeltaPct   float64
	Status     string // "ok" | "improvement" | "REGRESSION" | "MISSING"
}

// Comparison is the diff of two benchmark reports.
type Comparison struct {
	Opts CompareOptions
	Rows []RowDelta

	Compared     int
	Regressions  int
	Improvements int
	Missing      int // rows present in old but absent in new
	Added        int // rows present in new but absent in old

	OldSimsPerSec       float64
	NewSimsPerSec       float64
	ThroughputDeltaPct  float64
	ThroughputRegressed bool
}

// Compare diffs two reports row by row. Rows are matched on
// (experiment, bench, config); a row that disappeared counts as a
// regression (the gate must not pass because coverage silently shrank).
func Compare(old, new *Report, opts CompareOptions) *Comparison {
	// Zero is a meaningful tolerance (exact match — simulations are
	// deterministic), so only a negative value means "use the default".
	if opts.IPCTolPct < 0 {
		opts.IPCTolPct = DefaultCompareOptions().IPCTolPct
	}
	if opts.ThroughputTolPct < 0 {
		opts.ThroughputTolPct = DefaultCompareOptions().ThroughputTolPct
	}
	c := &Comparison{Opts: opts}

	type key struct{ exp, bench, cfg string }
	newRows := map[key]Row{}
	newSeen := map[key]bool{}
	for _, e := range new.Experiments {
		for _, r := range e.Rows {
			newRows[key{e.ID, r.Bench, r.Config}] = r
		}
	}
	for _, e := range old.Experiments {
		for _, r := range e.Rows {
			k := key{e.ID, r.Bench, r.Config}
			d := RowDelta{Experiment: e.ID, Bench: r.Bench, Config: r.Config, OldIPC: r.IPC}
			nr, ok := newRows[k]
			if !ok {
				d.Status = "MISSING"
				c.Missing++
				c.Rows = append(c.Rows, d)
				continue
			}
			newSeen[k] = true
			d.NewIPC = nr.IPC
			if r.IPC != 0 {
				d.DeltaPct = 100 * (nr.IPC - r.IPC) / r.IPC
			}
			switch {
			case d.DeltaPct < -opts.IPCTolPct:
				d.Status = "REGRESSION"
				c.Regressions++
			case d.DeltaPct > opts.IPCTolPct:
				d.Status = "improvement"
				c.Improvements++
			default:
				d.Status = "ok"
			}
			c.Compared++
			c.Rows = append(c.Rows, d)
		}
	}
	c.Added = len(newRows) - len(newSeen)
	sort.Slice(c.Rows, func(i, j int) bool {
		a, b := c.Rows[i], c.Rows[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Config < b.Config
	})

	c.OldSimsPerSec = old.SimsPerSec
	c.NewSimsPerSec = new.SimsPerSec
	if old.SimsPerSec > 0 && new.SimsPerSec > 0 {
		c.ThroughputDeltaPct = 100 * (new.SimsPerSec - old.SimsPerSec) / old.SimsPerSec
		c.ThroughputRegressed = c.ThroughputDeltaPct < -opts.ThroughputTolPct
	}
	return c
}

// Regressed reports whether the gate should fail: any IPC regression,
// missing coverage, or a host-throughput collapse beyond tolerance.
func (c *Comparison) Regressed() bool {
	return c.Regressions > 0 || c.Missing > 0 || c.ThroughputRegressed
}

// ExitCode maps the comparison to a process exit code: 0 = pass
// (improvements included), 1 = regression.
func (c *Comparison) ExitCode() int {
	if c.Regressed() {
		return 1
	}
	return 0
}

// Table renders a readable diff: every row whose status is not "ok" (or
// every row, when 20 or fewer were compared), then the summary.
func (c *Comparison) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("Benchmark comparison (IPC tolerance %.2f%%)", c.Opts.IPCTolPct),
		"Experiment", "Benchmark", "Config", "old IPC", "new IPC", "delta", "status")
	shown := 0
	for _, d := range c.Rows {
		if d.Status == "ok" && len(c.Rows) > 20 {
			continue
		}
		newIPC := fmt.Sprintf("%.4f", d.NewIPC)
		delta := fmt.Sprintf("%+.2f%%", d.DeltaPct)
		if d.Status == "MISSING" {
			newIPC, delta = "-", "-"
		}
		t.AddRow(d.Experiment, d.Bench, d.Config,
			fmt.Sprintf("%.4f", d.OldIPC), newIPC, delta, d.Status)
		shown++
	}
	var b strings.Builder
	if shown > 0 {
		b.WriteString(t.String())
	}
	fmt.Fprintf(&b, "%d rows compared: %d ok, %d improved, %d regressed",
		c.Compared, c.Compared-c.Regressions-c.Improvements, c.Improvements, c.Regressions)
	if c.Missing > 0 {
		fmt.Fprintf(&b, ", %d MISSING from new report", c.Missing)
	}
	if c.Added > 0 {
		fmt.Fprintf(&b, ", %d new rows not in old report", c.Added)
	}
	b.WriteByte('\n')
	if c.OldSimsPerSec > 0 && c.NewSimsPerSec > 0 {
		status := "ok"
		if c.ThroughputRegressed {
			status = "REGRESSION"
		}
		fmt.Fprintf(&b, "host throughput: %.2f -> %.2f sims/s (%+.1f%%, tolerance %.0f%%) %s\n",
			c.OldSimsPerSec, c.NewSimsPerSec, c.ThroughputDeltaPct, c.Opts.ThroughputTolPct, status)
	} else {
		fmt.Fprintf(&b, "host throughput gate SKIPPED: old %.2f, new %.2f sims/s (a report with zero sims_per_sec cannot be gated)\n",
			c.OldSimsPerSec, c.NewSimsPerSec)
	}
	if c.Regressed() {
		b.WriteString("RESULT: REGRESSION\n")
	} else {
		b.WriteString("RESULT: PASS\n")
	}
	return b.String()
}
