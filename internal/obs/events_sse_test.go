package obs_test

// SSE ordering test: an /events client must observe cell timelines in
// deterministic cell order — cell 0's events, then cell 1's, ... — no matter
// how many workers execute the sweep or which worker steals which cell. The
// test runs the same sweep work-stolen under 1, 4, and 8 workers and asserts
// the cell-scoped event stream is identical across all three.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/obs/span"
	"github.com/parallel-frontend/pfe/internal/shard"
)

// collectSSE connects to url and decodes every SSE message until the server
// closes the stream (tracer Close) or the timeout hits.
func collectSSE(t *testing.T, url string) []span.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET /events: Content-Type %q, want text/event-stream", ct)
	}
	var events []span.Event
	var evType string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev span.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if ev.Type != evType {
				t.Errorf("SSE event field %q disagrees with payload type %q", evType, ev.Type)
			}
			events = append(events, ev)
		}
	}
	return events
}

// runTracedSweep executes one synthetic work-stolen sweep of n cells under
// the given worker count, streaming to an /events client, and returns the
// events the client observed.
func runTracedSweep(t *testing.T, n, workers int) []span.Event {
	t.Helper()
	tr := span.New()
	srv := httptest.NewServer(obs.NewMux(nil, nil, tr))
	defer srv.Close()

	done := make(chan []span.Event, 1)
	go func() { done <- collectSSE(t, srv.URL+"/events") }()
	// Give the client a beat to subscribe so it sees the whole stream.
	time.Sleep(50 * time.Millisecond)

	b := tr.StartBatch("sse-sweep", n)
	shard.RunHooked(context.Background(), n, workers, shard.Hooks{OnSteal: b.Steal},
		func(worker, i int) {
			cs := b.StartCell(i, fmt.Sprintf("bench%d", i%3), "PR-2x8w", worker)
			ps := cs.Child(span.KindPhase, "sim")
			// Deterministically uneven work so later cells often finish
			// before earlier ones under multiple workers.
			time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
			ps.Int("cycles", int64(1000+i))
			ps.End()
			cs.Str("source", "fresh")
			cs.End()
		})
	b.End()
	tr.Close()

	select {
	case evs := <-done:
		return evs
	case <-time.After(30 * time.Second):
		t.Fatal("SSE client never saw the stream end")
		return nil
	}
}

// cellScopedSignature reduces an event stream to the deterministic part: the
// ordered (type, kind, name, cell) tuples of cell-scoped span events.
// Timestamps, worker attribution, and steal events legitimately vary.
func cellScopedSignature(events []span.Event) []string {
	var sig []string
	for _, ev := range events {
		if ev.Span == nil || ev.Span.Cell < 0 {
			continue
		}
		sig = append(sig, fmt.Sprintf("%s/%s/%s/cell%d", ev.Type, ev.Span.Kind, ev.Span.Name, ev.Span.Cell))
	}
	return sig
}

func TestEventsStreamDeterministicCellOrder(t *testing.T) {
	const n = 12
	var first []string
	for _, workers := range []int{1, 4, 8} {
		events := runTracedSweep(t, n, workers)

		// Cells must be released strictly in index order: each cell-scoped
		// event's cell is >= the previous one's, covering 0..n-1.
		last := -1
		seen := map[int]bool{}
		for _, ev := range events {
			if ev.Span == nil || ev.Span.Cell < 0 {
				continue
			}
			c := ev.Span.Cell
			if c < last {
				t.Fatalf("workers=%d: cell %d event arrived after cell %d (out of order)", workers, c, last)
			}
			last = c
			seen[c] = true
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: saw events for %d cells, want %d", workers, len(seen), n)
		}

		// Progress events count up monotonically to n.
		prev := 0
		for _, ev := range events {
			if ev.Type != "progress" {
				continue
			}
			if ev.Done != prev+1 {
				t.Fatalf("workers=%d: progress jumped %d -> %d", workers, prev, ev.Done)
			}
			prev = ev.Done
		}
		if prev != n {
			t.Fatalf("workers=%d: final progress %d, want %d", workers, prev, n)
		}

		// The cell-scoped stream is bit-for-bit the same for every worker
		// count: same events, same order.
		sig := cellScopedSignature(events)
		if first == nil {
			first = sig
			continue
		}
		if len(sig) != len(first) {
			t.Fatalf("workers=%d: %d cell-scoped events, want %d (same as workers=1)", workers, len(sig), len(first))
		}
		for i := range sig {
			if sig[i] != first[i] {
				t.Fatalf("workers=%d: event %d = %q, want %q (stream must not depend on worker count)", workers, i, sig[i], first[i])
			}
		}
	}
}
