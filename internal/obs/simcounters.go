package obs

// journalFsyncBounds are the pfe_journal_fsync_seconds bucket upper edges:
// sub-100µs (page cache), the common SSD range, and pathological stalls.
var journalFsyncBounds = []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1}

// sampleCIBounds bucket the final sampled-IPC 95% CI half-width: the gate in
// ValidateSampling passes runs well under 0.1 IPC, so the edges resolve the
// healthy range and flag pathological spread.
var sampleCIBounds = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// SimCounters is the live telemetry a running simulation feeds: aggregate
// counters shared by every concurrent simulation in the process, flushed in
// batches from the cycle loop (see internal/sim). All fields are safe for
// concurrent use; a nil *SimCounters disables the whole path for the cost
// of one branch per cycle.
type SimCounters struct {
	// Cycles and Committed accumulate across all runs (warmup included);
	// their ratio is the running aggregate IPC exposed as pfe_running_ipc.
	Cycles    *Counter
	Committed *Counter

	// Squashes counts squash events (branch mispredict + live-out).
	Squashes *Counter

	// Redirects counts front-end redirects taken.
	Redirects *Counter

	// SimsStarted and SimsCompleted count whole simulations.
	SimsStarted   *Counter
	SimsCompleted *Counter

	// PoolGets and PoolMisses count the simulator's internal free-list
	// traffic (fragment/op recycling): a get that found no recycled
	// object is a miss, so Gets - Misses is the number of allocations
	// the pools avoided.
	PoolGets   *Counter
	PoolMisses *Counter

	// WatchdogTrips counts forward-progress watchdog trips (deadlocked,
	// livelocked or MaxCycles-exhausted runs).
	WatchdogTrips *Counter

	// CellRetries and CellFailures count experiment-harness cell retry
	// attempts and cells that exhausted their retries.
	CellRetries  *Counter
	CellFailures *Counter

	// JournalFsync observes the crash-safe journal's per-record fsync
	// latency in seconds.
	JournalFsync *Histogram

	// Sampled-run telemetry (pfe_sample_*): detailed windows simulated, gap
	// instructions fast-forwarded through functional warming, instructions
	// served by the tape readers' live-emulation fallback during sampled
	// runs, and the final per-run IPC CI95 half-width distribution.
	SampleWindows  *Counter
	SampleGapInsts *Counter
	SampleFallback *Counter
	SampleCI       *Histogram

	// Time-parallel slicing telemetry (pfe_slice_*): slices simulated,
	// overlapped warmup cycles spent re-entering interior slices (the
	// seam-reconcile overhead), and measured instructions trimmed at seams
	// (interior-slice overshoot reconciled away).
	Slices          *Counter
	SliceSeamCycles *Counter
	SliceSeamInsts  *Counter

	// Prof attributes the simulator's own wall time per pipeline stage;
	// shared by every simulation that runs with these counters attached.
	Prof *StageProf
}

// RunningIPC returns aggregate committed instructions per simulated cycle
// across every run so far (0 before the first flush).
func (s *SimCounters) RunningIPC() float64 {
	cyc := s.Cycles.Value()
	if cyc == 0 {
		return 0
	}
	return float64(s.Committed.Value()) / float64(cyc)
}

// PoolReuseRatio returns the fraction of free-list gets satisfied by a
// recycled object (0 before the first flush).
func (s *SimCounters) PoolReuseRatio() float64 {
	gets := s.PoolGets.Value()
	if gets == 0 {
		return 0
	}
	return float64(gets-s.PoolMisses.Value()) / float64(gets)
}

// NewSimCounters builds the standard simulation telemetry set, registering
// it on r when r is non-nil:
//
//	pfe_cycles_total, pfe_committed_instructions_total, pfe_squashes_total,
//	pfe_redirects_total, pfe_sims_started_total, pfe_sims_completed_total,
//	pfe_pool_gets_total, pfe_pool_misses_total, pfe_pool_reuse_ratio,
//	pfe_running_ipc, pfe_stage_seconds_total{stage=...},
//	pfe_watchdog_trips_total, pfe_cell_retries_total,
//	pfe_cell_failures_total, pfe_journal_fsync_seconds,
//	pfe_sample_windows_total, pfe_sample_gap_instructions_total,
//	pfe_sample_fallback_steps_total, pfe_sample_ci_halfwidth,
//	pfe_slice_slices_total, pfe_slice_seam_cycles_total,
//	pfe_slice_seam_trimmed_instructions_total
func NewSimCounters(r *Registry) *SimCounters {
	s := &SimCounters{Prof: NewStageProf(0)}
	if r == nil {
		s.Cycles = NewCounter()
		s.Committed = NewCounter()
		s.Squashes = NewCounter()
		s.Redirects = NewCounter()
		s.SimsStarted = NewCounter()
		s.SimsCompleted = NewCounter()
		s.PoolGets = NewCounter()
		s.PoolMisses = NewCounter()
		s.WatchdogTrips = NewCounter()
		s.CellRetries = NewCounter()
		s.CellFailures = NewCounter()
		s.JournalFsync = NewHistogram(journalFsyncBounds)
		s.SampleWindows = NewCounter()
		s.SampleGapInsts = NewCounter()
		s.SampleFallback = NewCounter()
		s.SampleCI = NewHistogram(sampleCIBounds)
		s.Slices = NewCounter()
		s.SliceSeamCycles = NewCounter()
		s.SliceSeamInsts = NewCounter()
		return s
	}
	s.Cycles = r.Counter("pfe_cycles_total", "Simulated cycles across all runs (warmup included).")
	s.Committed = r.Counter("pfe_committed_instructions_total", "Committed instructions across all runs (warmup included).")
	s.Squashes = r.Counter("pfe_squashes_total", "Squash events across all runs (branch mispredict and live-out mispredict).")
	s.Redirects = r.Counter("pfe_redirects_total", "Front-end redirects taken across all runs.")
	s.SimsStarted = r.Counter("pfe_sims_started_total", "Simulations started.")
	s.SimsCompleted = r.Counter("pfe_sims_completed_total", "Simulations completed.")
	s.PoolGets = r.Counter("pfe_pool_gets_total", "Free-list gets across all runs (simulator object recycling).")
	s.PoolMisses = r.Counter("pfe_pool_misses_total", "Free-list gets that had to allocate (no recycled object available).")
	s.WatchdogTrips = r.Counter("pfe_watchdog_trips_total", "Forward-progress watchdog trips (deadlocked, livelocked or MaxCycles-exhausted runs).")
	s.CellRetries = r.Counter("pfe_cell_retries_total", "Experiment cell retry attempts after a failed or panicked run.")
	s.CellFailures = r.Counter("pfe_cell_failures_total", "Experiment cells that exhausted their retries and were recorded as failures.")
	s.JournalFsync = r.Histogram("pfe_journal_fsync_seconds", "Crash-safe journal per-record fsync latency.", journalFsyncBounds)
	s.SampleWindows = r.Counter("pfe_sample_windows_total", "Detailed windows simulated by sampled runs.")
	s.SampleGapInsts = r.Counter("pfe_sample_gap_instructions_total", "Gap instructions fast-forwarded through functional warming in sampled runs.")
	s.SampleFallback = r.Counter("pfe_sample_fallback_steps_total", "Instructions served by tape readers' live-emulation fallback during sampled runs.")
	s.SampleCI = r.Histogram("pfe_sample_ci_halfwidth", "Final sampled-IPC 95% confidence half-width per sampled run.", sampleCIBounds)
	s.Slices = r.Counter("pfe_slice_slices_total", "Tape slices simulated by time-parallel runs.")
	s.SliceSeamCycles = r.Counter("pfe_slice_seam_cycles_total", "Overlapped warmup cycles spent re-entering interior slices (seam-reconcile overhead).")
	s.SliceSeamInsts = r.Counter("pfe_slice_seam_trimmed_instructions_total", "Measured instructions trimmed at slice seams (interior overshoot reconciled away).")
	r.GaugeFunc("pfe_pool_reuse_ratio", "Fraction of free-list gets satisfied by a recycled object.", s.PoolReuseRatio)
	r.GaugeFunc("pfe_running_ipc", "Aggregate committed instructions per simulated cycle across all runs.", s.RunningIPC)
	for _, st := range Stages() {
		st := st
		r.CounterFunc("pfe_stage_seconds_total",
			"Estimated simulator wall time attributed to each pipeline stage (sampled; rename_phase1/2 are a sub-breakdown of rename).",
			func() float64 { return s.Prof.StageSeconds(st) },
			"stage", st.String())
	}
	return s
}
