package obs_test

// Live-scrape test: runs real simulations with telemetry attached while a
// client hammers /metrics and /status. Run under -race this doubles as the
// data-race check on the whole exposition path (external test package so it
// can import the root pfe package without a cycle).

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/obs"
)

var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+))$`)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

func TestLiveScrapeDuringSimulation(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.NewSimCounters(reg)
	tr := obs.NewTracker(reg)
	srv := httptest.NewServer(obs.NewMux(reg, tr, nil))
	defer srv.Close()

	opts := pfe.RunOptions{WarmupInsts: 5_000, MeasureInsts: 20_000, Obs: sc, SelfProfile: true}

	// Scrape continuously while simulations run.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(srv.URL + "/status")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	tr.StartExperiment("race", "race smoke")
	tr.AddPlanned("race", 2)
	var sims sync.WaitGroup
	for _, fe := range []pfe.FrontEnd{pfe.PR2x8w, pfe.W16} {
		sims.Add(1)
		go func(fe pfe.FrontEnd) {
			defer sims.Done()
			start := time.Now()
			r, err := pfe.Run("gcc", pfe.Preset(fe), opts)
			if err != nil {
				t.Error(err)
				return
			}
			tr.SimDone("race", r.IPC, time.Since(start))
		}(fe)
	}
	sims.Wait()
	tr.FinishExperiment("race")
	close(stop)
	scrapers.Wait()

	// Final /metrics scrape: well-formed and carrying real values.
	body := scrape(t, srv.URL+"/metrics")
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line %d is not valid Prometheus text: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"pfe_running_ipc ",
		`pfe_stage_seconds_total{stage="fetch"}`,
		`pfe_stage_seconds_total{stage="rename_phase1"}`,
		"pfe_sim_duration_seconds_bucket",
		`pfe_experiment_sims_completed{experiment="race"} 2`,
		"pfe_sims_completed_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if sc.Cycles.Value() == 0 || sc.Committed.Value() == 0 {
		t.Errorf("counters not fed: cycles=%d committed=%d", sc.Cycles.Value(), sc.Committed.Value())
	}
	if ipc := sc.RunningIPC(); ipc <= 0 {
		t.Errorf("RunningIPC = %v, want > 0", ipc)
	}
	// SelfProfile merges each run's samples into the shared profiler.
	if fetch := sc.Prof.StageSeconds(obs.StageFetch); fetch <= 0 {
		t.Errorf("no fetch stage time attributed: %v", fetch)
	}

	// /status decodes into the documented shape.
	var st obs.Status
	if err := json.Unmarshal([]byte(scrape(t, srv.URL+"/status")), &st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if len(st.Experiments) != 1 || st.Experiments[0].CompletedSims != 2 || st.Experiments[0].Running {
		t.Errorf("/status = %+v, want one finished experiment with 2 sims", st.Experiments)
	}
}
