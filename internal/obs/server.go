package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the telemetry HTTP handler:
//
//	/metrics        Prometheus text exposition of reg (404 when reg is nil)
//	/status         JSON experiment progress + ETA from tr (404 when nil)
//	/debug/pprof/*  the standard runtime profiles (CPU, heap, goroutine, ...)
func NewMux(reg *Registry, tr *Tracker) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	if tr != nil {
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tr.Status())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry server on addr (e.g. ":6060") in a background
// goroutine and returns the server plus the bound address. Callers should
// Close the returned server when done.
func Serve(addr string, reg *Registry, tr *Tracker) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, tr)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
