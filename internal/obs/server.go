package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// NewMux builds the telemetry HTTP handler:
//
//	/metrics        Prometheus text exposition of reg (404 when reg is nil)
//	/status         JSON experiment progress + ETA from tr (404 when nil)
//	/debug/pprof/*  the standard runtime profiles (CPU, heap, goroutine, ...)
func NewMux(reg *Registry, tr *Tracker) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	if tr != nil {
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tr.Status())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry server with an explicit shutdown path:
// Shutdown stops the listener, lets in-flight scrapes finish, and only then
// returns — so a final /metrics pull during process teardown is never cut
// off mid-body.
type Server struct {
	srv  *http.Server
	addr net.Addr

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed when the serve loop exits
}

// Serve starts the telemetry server on addr (e.g. ":6060") in a background
// goroutine. Callers must Shutdown (graceful) or Close (abrupt) the returned
// server when done.
func Serve(addr string, reg *Registry, tr *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: NewMux(reg, tr)},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.addr }

// Shutdown gracefully stops the server: the listener closes immediately (no
// new scrapes), in-flight requests run to completion (bounded by ctx), and
// the serve loop has exited by the time Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close abruptly closes the listener and every active connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}
