package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"github.com/parallel-frontend/pfe/internal/obs/span"
)

// NewMux builds the telemetry HTTP handler:
//
//	/metrics        Prometheus text exposition of reg (404 when reg is nil)
//	/status         JSON experiment progress + ETA from tr (404 when nil)
//	/events         live span/progress event stream via SSE (404 when spans
//	                is nil); see handleEvents
//	/debug/pprof/*  the standard runtime profiles (CPU, heap, goroutine, ...)
func NewMux(reg *Registry, tr *Tracker, spans *span.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	if tr != nil {
		mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tr.Status())
		})
	}
	if spans != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			handleEvents(w, r, spans)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleEvents streams the sweep tracer's live feed as Server-Sent Events:
// one message per span open/close, steal, or progress event, with the event
// type in the SSE "event:" field and the span.Event JSON in "data:". Events
// arrive in deterministic cell order (the tracer's head/tail ordered-release
// discipline) even though cells execute work-stolen. The stream ends when
// the tracer closes (end of run) or the client disconnects; a subscriber
// that cannot keep up misses events rather than stalling the harness.
func handleEvents(w http.ResponseWriter, r *http.Request, spans *span.Tracer) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := spans.Subscribe(4096)
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // tracer closed: end of run
			}
			if _, err := io.WriteString(w, "event: "+ev.Type+"\ndata: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends the final \n
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Server is a running telemetry server with an explicit shutdown path:
// Shutdown stops the listener, lets in-flight scrapes finish, and only then
// returns — so a final /metrics pull during process teardown is never cut
// off mid-body.
type Server struct {
	srv  *http.Server
	addr net.Addr

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed when the serve loop exits
}

// Serve starts the telemetry server on addr (e.g. ":6060") in a background
// goroutine. spans, when non-nil, enables the /events SSE stream. Callers
// must Shutdown (graceful) or Close (abrupt) the returned server when done.
func Serve(addr string, reg *Registry, tr *Tracker, spans *span.Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: NewMux(reg, tr, spans)},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.addr }

// Shutdown gracefully stops the server: the listener closes immediately (no
// new scrapes), in-flight requests run to completion (bounded by ctx), and
// the serve loop has exited by the time Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close abruptly closes the listener and every active connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}
