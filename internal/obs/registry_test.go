package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format exactly: HELP/TYPE
// lines, family and series ordering, label rendering, and the histogram's
// cumulative _bucket/_sum/_count expansion.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	r.GaugeFunc("t_func", "A function gauge.", func() float64 { return 0.5 })

	h := r.Histogram("t_hist_seconds", "A histogram.", []float64{0.25, 1}, "op", "run")
	h.Observe(0.25) // lands in le=0.25 (bounds are inclusive upper edges)
	h.Observe(0.5)  // le=1
	h.Observe(2)    // +Inf

	c := r.Counter("t_ops_total", "Operations.")
	c.Add(2)
	c.Inc()

	r.Gauge("t_temp", "A labeled gauge.", "zone", "a").Set(1.5)
	r.Gauge("t_temp", "A labeled gauge.", "zone", "b").Set(-2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	want := `# HELP t_func A function gauge.
# TYPE t_func gauge
t_func 0.5
# HELP t_hist_seconds A histogram.
# TYPE t_hist_seconds histogram
t_hist_seconds_bucket{op="run",le="0.25"} 1
t_hist_seconds_bucket{op="run",le="1"} 2
t_hist_seconds_bucket{op="run",le="+Inf"} 3
t_hist_seconds_sum{op="run"} 2.75
t_hist_seconds_count{op="run"} 3
# HELP t_ops_total Operations.
# TYPE t_ops_total counter
t_ops_total 3
# HELP t_temp A labeled gauge.
# TYPE t_temp gauge
t_temp{zone="a"} 1.5
t_temp{zone="b"} -2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.")
	c2 := r.Counter("x_total", "X.")
	if c1 != c2 {
		t.Error("same name+labels should return the same counter")
	}
	g1 := r.Gauge("y", "Y.", "k", "v1")
	g2 := r.Gauge("y", "Y.", "k", "v2")
	if g1 == g2 {
		t.Error("different labels should return distinct gauges")
	}

	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge after a counter should panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

// TestRegistryConcurrentRegistration registers metrics from many goroutines
// while WritePrometheus scrapes continuously, the pattern pfe-bench hits
// when Tracker.StartExperiment runs with the HTTP server live. Under -race
// this pins instrument creation being synchronized with exposition, and the
// counter identity check catches two racing registrations each allocating
// their own instrument.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const workers = 8
	counters := make([]*Counter, workers)
	var regs sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		regs.Add(1)
		go func() {
			defer regs.Done()
			counters[i] = r.Counter("t_shared_total", "Shared.")
			counters[i].Inc()
			r.Gauge("t_worker", "Per-worker.", "w", string(rune('a'+i))).Set(float64(i))
			r.GaugeFunc("t_worker_func", "Per-worker func.", func() float64 { return float64(i) }, "w", string(rune('a'+i)))
			r.Histogram("t_worker_seconds", "Per-worker hist.", []float64{1, 10}, "w", string(rune('a'+i))).Observe(float64(i))
		}()
	}
	regs.Wait()
	close(stop)
	scrapers.Wait()

	for i := 1; i < workers; i++ {
		if counters[i] != counters[0] {
			t.Fatalf("concurrent registrations of t_shared_total returned distinct counters (worker %d)", i)
		}
	}
	if got := counters[0].Value(); got != workers {
		t.Errorf("t_shared_total = %d, want %d (an increment was lost to a duplicate instrument)", got, workers)
	}
}

func TestSimCountersExposition(t *testing.T) {
	r := NewRegistry()
	s := NewSimCounters(r)
	s.Cycles.Add(1000)
	s.Committed.Add(2500)
	s.SimsStarted.Inc()

	if got := s.RunningIPC(); got != 2.5 {
		t.Errorf("RunningIPC = %v, want 2.5", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pfe_cycles_total counter",
		"pfe_cycles_total 1000",
		"pfe_committed_instructions_total 2500",
		"pfe_running_ipc 2.5",
		`pfe_stage_seconds_total{stage="fetch"} 0`,
		`pfe_stage_seconds_total{stage="rename_phase1"} 0`,
		`pfe_stage_seconds_total{stage="backend"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStageProfSampling(t *testing.T) {
	var nilProf *StageProf
	if nilProf.Sampled(0) {
		t.Error("nil profiler must never sample")
	}
	p := NewStageProf(60) // rounds up to 64
	if p.SampleEvery() != 64 {
		t.Errorf("SampleEvery = %d, want 64", p.SampleEvery())
	}
	if !p.Sampled(0) || !p.Sampled(64) || p.Sampled(1) {
		t.Error("sampling mask wrong")
	}
	p.Add(StageFetch, 1000) // 1000ns of sampled time
	if got := p.StageSeconds(StageFetch); got != 64e3/1e9 {
		t.Errorf("StageSeconds = %v, want %v (scaled by sampling factor)", got, 64e3/1e9)
	}
	sec := p.Seconds()
	if len(sec) != 1 || sec["fetch"] == 0 {
		t.Errorf("Seconds() = %v, want only a positive fetch entry", sec)
	}
}
