package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildTrace makes a small two-cell sweep with phases on distinct workers.
func buildTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := New()
	b := tr.StartBatch("fig8", 2)

	c0 := b.StartCell(0, "gzip", "PF-4x4w", 0)
	a0 := c0.Child(KindAttempt, "attempt")
	pb := a0.Child(KindPhase, "program-build")
	pb.Str("artifact", "miss")
	pb.End()
	sim := a0.Child(KindPhase, "sim")
	sim.Int("cycles", 4000)
	sim.End()
	a0.End()
	c0.End()

	c1 := b.StartCell(1, "mcf", "TR-16x4w", 1)
	a1 := c1.Child(KindAttempt, "attempt")
	tb := a1.Child(KindPhase, "tape-build")
	tb.Str("artifact", "hit")
	tb.End()
	a1.Child(KindPhase, "sim").End()
	a1.End()
	c1.End()

	b.Steal(1, 0, 1)
	b.End()
	return tr
}

// TestChromeTraceRoundTrip writes a Chrome trace and parses it back,
// asserting the structural invariants Perfetto depends on: a traceEvents
// array, "X" events with ts/dur, pid = worker+1, tid = cell+1, and
// process/thread name metadata.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Records()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var xEvents, meta int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if ev["ts"] == nil || ev["dur"] == nil {
				t.Fatalf("X event missing ts/dur: %v", ev)
			}
			pids[ev["pid"].(float64)] = true
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	// 2 cells + 2 attempts + 4 phases + 1 sweep = 9 duration events.
	if xEvents != 9 {
		t.Fatalf("got %d X events, want 9", xEvents)
	}
	if meta == 0 {
		t.Fatal("no process/thread name metadata")
	}
	// pid 0 = harness (sweep), pid 1 = worker 0, pid 2 = worker 1.
	for _, pid := range []float64{0, 1, 2} {
		if !pids[pid] {
			t.Fatalf("missing pid %v in %v", pid, pids)
		}
	}
	if !strings.Contains(buf.String(), `"artifact":"hit"`) {
		t.Fatal("annotation not exported to args")
	}
}

// TestNDJSONRoundTrip checks one valid JSON record per line.
func TestNDJSONRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	recs := tr.Records()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d does not parse: %v", n, err)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("got %d NDJSON lines, want %d", n, len(recs))
	}
}

// TestCellTimings checks the per-cell breakdown: build and sim phases are
// attributed, overhead is the remainder, and queue wait is measured from the
// sweep start.
func TestCellTimings(t *testing.T) {
	tr := buildTrace(t)
	ts := CellTimings(tr.Records())
	if len(ts) != 2 {
		t.Fatalf("got %d cell timings, want 2", len(ts))
	}
	if ts[0].Cell != 0 || ts[1].Cell != 1 {
		t.Fatalf("timings not in cell order: %+v", ts)
	}
	for _, ct := range ts {
		if ct.Bench == "" || ct.Key == "" {
			t.Fatalf("bench/key missing: %+v", ct)
		}
		if ct.QueueWaitSeconds < 0 || ct.BuildSeconds < 0 || ct.SimSeconds < 0 || ct.OverheadSeconds < 0 {
			t.Fatalf("negative component: %+v", ct)
		}
		if ct.BuildSeconds == 0 && ct.SimSeconds == 0 {
			t.Fatalf("no attributed time: %+v", ct)
		}
	}
	if ts[0].Bench != "gzip" || ts[1].Bench != "mcf" {
		t.Fatalf("bench mismatch: %+v", ts)
	}
}
