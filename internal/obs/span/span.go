// Package span is the sweep-level tracing layer: a low-overhead hierarchical
// span tracer for the experiment harness (sweep → cell → attempt → phase).
// It complements internal/trace, which records per-cycle events *inside* one
// simulation; span records where wall-clock goes *across* a sweep — scheduler
// queue time, artifact builds, retries, sampled windows — with explicit
// parent/child IDs, monotonic timestamps, and typed annotations.
//
// A nil *Tracer is a valid no-op sink: every method on Tracer, Batch, and
// Span is nil-receiver safe and allocation-free, so call sites thread spans
// unconditionally and pay ~nothing when tracing is off (alloc-guard tested).
//
// Live streaming follows a head/tail ordered-writer discipline: events for
// cell i are buffered until every cell < i has flushed, so subscribers (the
// /events SSE feed) observe cells in deterministic index order even though
// the work-stealing scheduler completes them out of order. Steal and batch
// lifecycle events are not cell-scoped and stream immediately.
package span

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ID identifies one span within a Tracer. IDs are dense and allocation-ordered
// (1, 2, 3, ...); 0 is "no span" and is what a nil tracer hands out.
type ID uint64

// Span kinds. Kind is informational — the hierarchy is carried by Parent IDs.
const (
	KindSweep   = "sweep"
	KindCell    = "cell"
	KindAttempt = "attempt"
	KindPhase   = "phase"
)

// Annot is one typed key/value annotation on a span. Exactly one of the value
// fields is meaningful per annotation; the zero values of the others are
// omitted from JSON.
type Annot struct {
	Key   string  `json:"k"`
	Str   string  `json:"s,omitempty"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
}

// Record is the completed (or, in "open" events, in-flight) form of a span.
// Timestamps are nanoseconds since the tracer epoch, taken from the monotonic
// clock. Worker and Cell are -1 when the span is not bound to a scheduler
// worker / sweep cell.
type Record struct {
	ID      ID      `json:"id"`
	Parent  ID      `json:"parent,omitempty"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Batch   string  `json:"batch,omitempty"`
	Bench   string  `json:"bench,omitempty"`
	Key     string  `json:"key,omitempty"`
	Worker  int     `json:"worker"`
	Cell    int     `json:"cell"`
	StartNs int64   `json:"start_ns"`
	EndNs   int64   `json:"end_ns"`
	Annots  []Annot `json:"annots,omitempty"`
}

// Dur returns the span duration.
func (r *Record) Dur() time.Duration { return time.Duration(r.EndNs - r.StartNs) }

// Annot returns the annotation with the given key, or nil.
func (r *Record) Annot(key string) *Annot {
	for i := range r.Annots {
		if r.Annots[i].Key == key {
			return &r.Annots[i]
		}
	}
	return nil
}

// Event is one element of the live stream. Type is "open", "close", "steal",
// or "progress". Open/close events carry the span record (EndNs is zero on
// open). Progress events follow each released cell and carry done/planned
// counts; steal events carry thief/victim worker IDs and the task count moved.
type Event struct {
	Type    string  `json:"type"`
	Seq     uint64  `json:"seq"`
	Span    *Record `json:"span,omitempty"`
	Batch   string  `json:"batch,omitempty"`
	Cell    int     `json:"cell,omitempty"`
	Done    int     `json:"done,omitempty"`
	Planned int     `json:"planned,omitempty"`
	Thief   int     `json:"thief,omitempty"`
	Victim  int     `json:"victim,omitempty"`
	Tasks   int     `json:"tasks,omitempty"`
}

// spanState is the mutable in-flight form of a span.
type spanState struct {
	rec   Record
	batch *batchState // non-nil iff the span is cell-scoped
}

// batchState buffers cell-scoped records for ordered release.
type batchState struct {
	name    string
	sweep   ID
	n       int
	head    int // first cell not yet released
	sealed  []bool
	cells   [][]Record // completed records per cell, filled until sealed
	steals  int64
	stolenN int64
}

// Tracer collects spans and fans events out to subscribers. Create with New;
// a nil *Tracer is the documented off switch.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	nextID  ID
	open    map[ID]*spanState
	records []Record
	subs    map[int]chan Event
	nextSub int
	seq     uint64
	dropped uint64
	closed  bool
}

// New returns an empty tracer with its epoch pinned to now.
func New() *Tracer {
	return &Tracer{
		epoch: time.Now(),
		open:  make(map[ID]*spanState),
		subs:  make(map[int]chan Event),
	}
}

func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// Span is a handle on an in-flight span. The zero Span (from a nil tracer)
// is a no-op: all methods are safe and free on it.
type Span struct {
	t  *Tracer
	id ID
}

// Batch is a handle on an in-flight sweep batch (ordered-release domain).
type Batch struct {
	t *Tracer
	b *batchState
}

// publishLocked fans an event out to all subscribers without blocking: a
// subscriber that cannot keep up drops events (counted) rather than stalling
// the harness. Callers hold t.mu.
func (t *Tracer) publishLocked(ev Event) {
	t.seq++
	ev.Seq = t.seq
	for _, ch := range t.subs {
		select {
		case ch <- ev:
		default:
			t.dropped++
		}
	}
}

// startLocked allocates a span state and, when the span is not cell-scoped,
// publishes its open event immediately. Callers hold t.mu.
func (t *Tracer) startLocked(st *spanState) ID {
	t.nextID++
	st.rec.ID = t.nextID
	st.rec.StartNs = t.now()
	t.open[st.rec.ID] = st
	if st.batch == nil {
		rec := st.rec
		t.publishLocked(Event{Type: "open", Span: &rec})
	}
	return st.rec.ID
}

// StartBatch opens a sweep span covering n cells and returns the batch whose
// StartCell/Steal/End calls scope the ordered-release discipline. The sweep
// open event streams immediately.
func (t *Tracer) StartBatch(name string, n int) Batch {
	if t == nil {
		return Batch{}
	}
	if name == "" {
		name = "sweep"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &batchState{
		name:   name,
		n:      n,
		sealed: make([]bool, n),
		cells:  make([][]Record, n),
	}
	st := &spanState{rec: Record{
		Kind:   KindSweep,
		Name:   name,
		Batch:  name,
		Worker: -1,
		Cell:   -1,
	}}
	b.sweep = t.startLocked(st)
	return Batch{t: t, b: b}
}

// StartCell opens the span for cell i of the batch, bound to the worker that
// runs it. Its events (and those of all descendant spans) buffer until every
// prior cell has been released.
func (b Batch) StartCell(i int, bench, key string, worker int) Span {
	if b.t == nil {
		return Span{}
	}
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	st := &spanState{
		rec: Record{
			Parent: b.b.sweep,
			Kind:   KindCell,
			Name:   "cell",
			Batch:  b.b.name,
			Bench:  bench,
			Key:    key,
			Worker: worker,
			Cell:   i,
		},
		batch: b.b,
	}
	id := b.t.startLocked(st)
	return Span{t: b.t, id: id}
}

// Steal records a work-steal: thief took n tasks from victim. The event
// streams immediately (steals are scheduler-level, not cell-scoped) and is
// summarized as annotations on the sweep span at End.
func (b Batch) Steal(thief, victim, n int) {
	if b.t == nil {
		return
	}
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	b.b.steals++
	b.b.stolenN += int64(n)
	b.t.publishLocked(Event{Type: "steal", Batch: b.b.name, Thief: thief, Victim: victim, Tasks: n})
}

// End closes the batch: any straggler cells are force-released (defensive —
// the scheduler seals every cell it ran), steal totals are annotated on the
// sweep span, and the sweep close event streams.
func (b Batch) End() {
	if b.t == nil {
		return
	}
	b.t.mu.Lock()
	defer b.t.mu.Unlock()
	for i := b.b.head; i < b.b.n; i++ {
		b.b.sealed[i] = true
	}
	b.t.sealLocked(b.b)
	if st, ok := b.t.open[b.b.sweep]; ok {
		st.rec.Annots = append(st.rec.Annots,
			Annot{Key: "steals", Int: b.b.steals},
			Annot{Key: "stolen_tasks", Int: b.b.stolenN})
	}
	b.t.endLocked(b.b.sweep)
}

// Tracer returns the tracer backing this batch (nil for the no-op batch).
func (b Batch) Tracer() *Tracer { return b.t }

// Phase opens a phase span under parent. Batch/cell/worker scope is inherited
// from the parent, so phases inside a cell buffer with that cell.
func (t *Tracer) Phase(parent ID, name string) Span {
	return t.child(parent, KindPhase, name)
}

func (t *Tracer) child(parent ID, kind, name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := &spanState{rec: Record{
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Worker: -1,
		Cell:   -1,
	}}
	if p, ok := t.open[parent]; ok {
		st.rec.Batch = p.rec.Batch
		st.rec.Bench = p.rec.Bench
		st.rec.Key = p.rec.Key
		st.rec.Worker = p.rec.Worker
		st.rec.Cell = p.rec.Cell
		st.batch = p.batch
	}
	id := t.startLocked(st)
	return Span{t: t, id: id}
}

// SpanFor returns a handle on an already-open span by ID, for annotating a
// parent from a callee that only received the ID. The handle is a no-op if
// the tracer is nil or the span has already ended.
func (t *Tracer) SpanFor(id ID) Span {
	if t == nil || id == 0 {
		return Span{}
	}
	return Span{t: t, id: id}
}

// ID returns the span's ID (0 for the no-op span).
func (s Span) ID() ID {
	if s.t == nil {
		return 0
	}
	return s.id
}

// OK reports whether the handle is backed by a live tracer.
func (s Span) OK() bool { return s.t != nil }

// Child opens a child span of kind with the given name under s.
func (s Span) Child(kind, name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.child(s.id, kind, name)
}

// Str annotates the span with a string value.
func (s Span) Str(key, v string) {
	if s.t == nil {
		return
	}
	s.t.annot(s.id, Annot{Key: key, Str: v})
}

// Int annotates the span with an integer value.
func (s Span) Int(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.annot(s.id, Annot{Key: key, Int: v})
}

// Float annotates the span with a float value.
func (s Span) Float(key string, v float64) {
	if s.t == nil {
		return
	}
	s.t.annot(s.id, Annot{Key: key, Float: v})
}

func (t *Tracer) annot(id ID, a Annot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.open[id]; ok {
		st.rec.Annots = append(st.rec.Annots, a)
	}
}

// End closes the span. Ending a cell span seals its cell; the tracer then
// releases every sealed cell at the head of the batch, in index order.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.endLocked(s.id)
}

func (t *Tracer) endLocked(id ID) {
	st, ok := t.open[id]
	if !ok {
		return // double End or already-released span: ignore
	}
	delete(t.open, id)
	st.rec.EndNs = t.now()
	t.records = append(t.records, st.rec)
	if st.batch == nil {
		rec := st.rec
		t.publishLocked(Event{Type: "close", Span: &rec})
		return
	}
	b := st.batch
	if c := st.rec.Cell; c >= 0 && c < b.n {
		b.cells[c] = append(b.cells[c], st.rec)
		if st.rec.Kind == KindCell {
			b.sealed[c] = true
			t.sealLocked(b)
		}
	}
}

// sealLocked advances the batch head past every sealed cell, publishing each
// released cell's buffered timeline (open/close pairs in timestamp order)
// followed by a progress event.
func (t *Tracer) sealLocked(b *batchState) {
	for b.head < b.n && b.sealed[b.head] {
		recs := b.cells[b.head]
		b.cells[b.head] = nil
		type item struct {
			at    int64
			close bool
			rec   Record
		}
		items := make([]item, 0, 2*len(recs))
		for _, r := range recs {
			items = append(items, item{at: r.StartNs, rec: r}, item{at: r.EndNs, close: true, rec: r})
		}
		sort.SliceStable(items, func(i, j int) bool {
			if items[i].at != items[j].at {
				return items[i].at < items[j].at
			}
			if items[i].close != items[j].close {
				return !items[i].close // opens before closes at equal timestamps
			}
			if items[i].close {
				return items[i].rec.ID > items[j].rec.ID // children close first
			}
			return items[i].rec.ID < items[j].rec.ID // parents open first
		})
		for _, it := range items {
			rec := it.rec
			if it.close {
				t.publishLocked(Event{Type: "close", Span: &rec})
			} else {
				rec.EndNs = 0
				t.publishLocked(Event{Type: "open", Span: &rec})
			}
		}
		b.head++
		t.publishLocked(Event{Type: "progress", Batch: b.name, Cell: b.head - 1, Done: b.head, Planned: b.n})
	}
}

// Subscribe registers a live event feed with the given channel buffer and
// returns the channel plus a cancel func. Events the subscriber cannot absorb
// are dropped, never blocked on. On a nil or closed tracer the returned
// channel is already closed.
func (t *Tracer) Subscribe(buf int) (<-chan Event, func()) {
	if t == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	id := t.nextSub
	t.nextSub++
	t.subs[id] = ch
	return ch, func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if c, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(c)
		}
	}
}

// Close ends the stream: subscriber channels are closed and late Subscribe
// calls get an already-closed channel. Records remain readable.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for id, ch := range t.subs {
		delete(t.subs, id)
		close(ch)
	}
}

// Records returns a copy of all completed span records, in completion order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// Dropped reports how many events were dropped on slow subscribers.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// String implements fmt.Stringer for debugging.
func (t *Tracer) String() string {
	if t == nil {
		return "span.Tracer(nil)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("span.Tracer{records: %d, open: %d, subs: %d}", len(t.records), len(t.open), len(t.subs))
}
