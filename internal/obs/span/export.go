package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export. The mapping renders a sweep as a flame timeline
// in Perfetto / chrome://tracing: one process per scheduler worker (pid =
// worker+1, pid 0 is the harness itself — sweep spans and anything not bound
// to a worker) and one thread per sweep cell (tid = cell+1, tid 0 for
// batch-level spans). Durations are "X" complete events in microseconds;
// annotations surface in args.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func chromePID(r *Record) int { return r.Worker + 1 }
func chromeTID(r *Record) int { return r.Cell + 1 }

// WriteChromeTrace writes the records as a Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	tr := chromeTrace{DisplayTimeUnit: "ms"}

	pids := map[int]bool{}
	tids := map[[2]int]bool{}
	for i := range recs {
		r := &recs[i]
		pid, tid := chromePID(r), chromeTID(r)
		if !pids[pid] {
			pids[pid] = true
			name := "harness"
			if r.Worker >= 0 {
				name = fmt.Sprintf("worker %d", r.Worker)
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "process_name", Cat: "__metadata", Phase: "M",
				PID: pid, Args: map[string]any{"name": name},
			})
		}
		if k := [2]int{pid, tid}; !tids[k] {
			tids[k] = true
			name := "sweep"
			if r.Cell >= 0 {
				name = fmt.Sprintf("cell %d", r.Cell)
				if r.Bench != "" {
					name = fmt.Sprintf("cell %d %s/%s", r.Cell, r.Bench, r.Key)
				}
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Cat: "__metadata", Phase: "M",
				PID: pid, TID: tid, Args: map[string]any{"name": name},
			})
		}

		name := r.Name
		if r.Kind == KindCell && r.Bench != "" {
			name = r.Bench + "/" + r.Key
		}
		args := map[string]any{"kind": r.Kind, "id": uint64(r.ID)}
		if r.Parent != 0 {
			args["parent"] = uint64(r.Parent)
		}
		if r.Bench != "" {
			args["bench"] = r.Bench
		}
		if r.Key != "" {
			args["config"] = r.Key
		}
		if r.Batch != "" {
			args["batch"] = r.Batch
		}
		for _, a := range r.Annots {
			switch {
			case a.Str != "":
				args[a.Key] = a.Str
			case a.Float != 0:
				args[a.Key] = a.Float
			default:
				args[a.Key] = a.Int
			}
		}
		dur := float64(r.EndNs-r.StartNs) / 1e3
		if dur < 1 {
			dur = 1 // sub-µs spans still render
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Cat: r.Kind, Phase: "X",
			TS: float64(r.StartNs) / 1e3, Dur: dur,
			PID: pid, TID: tid, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// WriteNDJSON writes one span record per line for machine consumption.
func WriteNDJSON(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CellTiming is the per-cell wall-clock breakdown derived from a sweep's
// spans: where cell time went between scheduler queue wait, artifact builds,
// simulation proper, and harness overhead (retry backoff, journal appends,
// bookkeeping).
type CellTiming struct {
	Batch string `json:"batch,omitempty"`
	Cell  int    `json:"cell"`
	Bench string `json:"bench"`
	Key   string `json:"key"`

	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	BuildSeconds     float64 `json:"build_seconds"`
	SimSeconds       float64 `json:"sim_seconds"`
	OverheadSeconds  float64 `json:"overhead_seconds"`
}

// phase names whose durations count as "build" and "sim" in the breakdown.
// The sim set holds the mutually exclusive top-level work phases of the three
// run modes (full, sampled, sliced); their children are not double counted.
var (
	buildPhases = map[string]bool{"program-build": true, "tape-build": true}
	simPhases   = map[string]bool{"sim": true, "window": true, "gap-warm": true, "slice": true}
)

// CellTimings derives the per-cell breakdown from a trace's records.
// Queue wait is measured from the enclosing sweep's start to the cell span's
// start; overhead is the cell duration not attributed to build or sim.
func CellTimings(recs []Record) []CellTiming {
	byID := make(map[ID]*Record, len(recs))
	for i := range recs {
		byID[recs[i].ID] = &recs[i]
	}
	type key struct {
		batch string
		cell  int
	}
	agg := map[key]*CellTiming{}
	var order []key
	for i := range recs {
		r := &recs[i]
		if r.Cell < 0 {
			continue
		}
		k := key{r.Batch, r.Cell}
		ct, ok := agg[k]
		if !ok {
			ct = &CellTiming{Batch: r.Batch, Cell: r.Cell}
			agg[k] = ct
			order = append(order, k)
		}
		sec := float64(r.EndNs-r.StartNs) / 1e9
		switch {
		case r.Kind == KindCell:
			ct.Bench, ct.Key = r.Bench, r.Key
			ct.OverheadSeconds += sec // total for now; build+sim subtracted below
			if sweep, ok := byID[r.Parent]; ok {
				ct.QueueWaitSeconds = float64(r.StartNs-sweep.StartNs) / 1e9
			}
		case buildPhases[r.Name]:
			ct.BuildSeconds += sec
		case simPhases[r.Name]:
			ct.SimSeconds += sec
		}
	}
	out := make([]CellTiming, 0, len(order))
	for _, k := range order {
		ct := agg[k]
		ct.OverheadSeconds -= ct.BuildSeconds + ct.SimSeconds
		if ct.OverheadSeconds < 0 {
			ct.OverheadSeconds = 0
		}
		out = append(out, *ct)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Batch != out[j].Batch {
			return out[i].Batch < out[j].Batch
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}
