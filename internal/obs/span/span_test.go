package span

import (
	"sync"
	"testing"
)

// TestNilTracerAllocFree is the alloc-guard behind "tracing off costs ~0":
// the full call surface on a nil tracer must not allocate at all, so the
// harness can thread spans unconditionally.
func TestNilTracerAllocFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		b := tr.StartBatch("sweep", 8)
		cs := b.StartCell(3, "gzip", "PF-4x4w", 1)
		as := cs.Child(KindAttempt, "attempt")
		ps := as.Child(KindPhase, "sim")
		ps.Str("source", "memo")
		ps.Int("cycles", 123)
		ps.Float("ipc", 1.5)
		ps.End()
		tr.Phase(as.ID(), "journal-append").End()
		tr.SpanFor(cs.ID()).Int("x", 1)
		as.End()
		cs.End()
		b.Steal(1, 0, 4)
		b.End()
		if cs.OK() || as.ID() != 0 {
			t.Fatal("nil tracer handed out a live span")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestOrderedRelease seals cells out of order and asserts subscribers still
// observe them in index order (head/tail ordered-writer discipline).
func TestOrderedRelease(t *testing.T) {
	tr := New()
	ch, cancel := tr.Subscribe(256)
	defer cancel()

	b := tr.StartBatch("fig8", 4)
	spans := make([]Span, 4)
	for i := range spans {
		spans[i] = b.StartCell(i, "gzip", "cfg", i%2)
	}
	// Complete out of order: 2, 0, 3, 1. Nothing may stream for cell 2 until
	// cells 0 and 1 have been released.
	spans[2].End()
	spans[0].End()
	spans[3].End()
	spans[1].End()
	b.End()
	tr.Close()

	var cellOrder []int
	var progress []int
	for ev := range ch {
		switch ev.Type {
		case "open", "close":
			if ev.Span.Kind == KindCell && ev.Type == "close" {
				cellOrder = append(cellOrder, ev.Span.Cell)
			}
		case "progress":
			progress = append(progress, ev.Cell)
		}
	}
	want := []int{0, 1, 2, 3}
	if len(cellOrder) != 4 {
		t.Fatalf("saw %d cell closes, want 4 (%v)", len(cellOrder), cellOrder)
	}
	for i, c := range cellOrder {
		if c != want[i] {
			t.Fatalf("cell close order %v, want %v", cellOrder, want)
		}
	}
	for i, c := range progress {
		if c != want[i] {
			t.Fatalf("progress order %v, want %v", progress, want)
		}
	}
}

// TestCellTimelineOrdering checks that within one released cell, descendant
// span events stream as a well-nested timeline: parent open before child
// open, child close before parent close.
func TestCellTimelineOrdering(t *testing.T) {
	tr := New()
	ch, cancel := tr.Subscribe(64)
	defer cancel()

	b := tr.StartBatch("s", 1)
	cs := b.StartCell(0, "mcf", "cfg", 0)
	as := cs.Child(KindAttempt, "attempt")
	ph := as.Child(KindPhase, "sim")
	ph.End()
	as.End()
	cs.End()
	b.End()
	tr.Close()

	depth := 0
	maxDepth := 0
	for ev := range ch {
		switch ev.Type {
		case "open":
			if ev.Span.Cell == 0 {
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
			}
		case "close":
			if ev.Span.Cell == 0 {
				depth--
				if depth < 0 {
					t.Fatalf("close before open for span %d (%s)", ev.Span.ID, ev.Span.Name)
				}
			}
		}
	}
	if depth != 0 || maxDepth != 3 {
		t.Fatalf("timeline not well nested: final depth %d, max depth %d (want 0, 3)", depth, maxDepth)
	}
}

// TestBatchEndForceReleases ensures End releases cells that never sealed
// (e.g. a canceled sweep) so subscribers are not left waiting.
func TestBatchEndForceReleases(t *testing.T) {
	tr := New()
	ch, cancel := tr.Subscribe(64)
	defer cancel()

	b := tr.StartBatch("s", 3)
	b.StartCell(0, "a", "k", 0).End()
	// cells 1 and 2 never run.
	b.End()
	tr.Close()

	var progress int
	var sweepClosed bool
	for ev := range ch {
		if ev.Type == "progress" {
			progress++
		}
		if ev.Type == "close" && ev.Span.Kind == KindSweep {
			sweepClosed = true
		}
	}
	if progress != 3 {
		t.Fatalf("got %d progress events, want 3 (force-released)", progress)
	}
	if !sweepClosed {
		t.Fatal("sweep span never closed")
	}
}

// TestChildInheritsScope checks batch/cell/worker/bench propagation through
// the parent chain, which the exporters rely on for pid/tid mapping.
func TestChildInheritsScope(t *testing.T) {
	tr := New()
	b := tr.StartBatch("fig4", 2)
	cs := b.StartCell(1, "twolf", "TR-16x4w", 3)
	as := cs.Child(KindAttempt, "attempt")
	ph := as.Child(KindPhase, "tape-build")
	ph.Str("artifact", "hit")
	ph.End()
	as.End()
	cs.End()
	b.End()

	recs := tr.Records()
	var phase *Record
	for i := range recs {
		if recs[i].Name == "tape-build" {
			phase = &recs[i]
		}
	}
	if phase == nil {
		t.Fatal("phase record missing")
	}
	if phase.Cell != 1 || phase.Worker != 3 || phase.Bench != "twolf" || phase.Key != "TR-16x4w" || phase.Batch != "fig4" {
		t.Fatalf("scope not inherited: %+v", phase)
	}
	if a := phase.Annot("artifact"); a == nil || a.Str != "hit" {
		t.Fatalf("annotation lost: %+v", phase.Annots)
	}
}

// TestSlowSubscriberDrops verifies the stream never blocks the harness: an
// unserviced subscriber loses events but Batch/Span calls complete.
func TestSlowSubscriberDrops(t *testing.T) {
	tr := New()
	_, cancel := tr.Subscribe(1) // never read
	defer cancel()

	b := tr.StartBatch("s", 16)
	for i := 0; i < 16; i++ {
		b.StartCell(i, "b", "k", 0).End()
	}
	b.End()
	if tr.Dropped() == 0 {
		t.Fatal("expected drops on a buffer-1 unserviced subscriber")
	}
}

// TestConcurrentCells hammers the tracer from parallel goroutines the way the
// work-stealing scheduler does; run under -race this is the thread-safety
// gate. Ordering is still checked on the far side.
func TestConcurrentCells(t *testing.T) {
	tr := New()
	ch, cancel := tr.Subscribe(4096)
	defer cancel()

	const n = 64
	b := tr.StartBatch("s", n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				cs := b.StartCell(i, "b", "k", w)
				ph := cs.Child(KindPhase, "sim")
				ph.Int("cycles", int64(i))
				ph.End()
				cs.End()
			}
		}(w)
	}
	wg.Wait()
	b.End()
	tr.Close()

	next := 0
	for ev := range ch {
		if ev.Type == "close" && ev.Span.Kind == KindCell {
			if ev.Span.Cell != next {
				t.Fatalf("cell %d streamed before cell %d", ev.Span.Cell, next)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("streamed %d cells, want %d", next, n)
	}
	if len(tr.Records()) != n*2+1 {
		t.Fatalf("got %d records, want %d", len(tr.Records()), n*2+1)
	}
}

// TestSubscribeAfterClose must hand back a closed channel, not panic.
func TestSubscribeAfterClose(t *testing.T) {
	tr := New()
	tr.Close()
	ch, cancel := tr.Subscribe(1)
	defer cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel from closed tracer not closed")
	}
	var nilTr *Tracer
	ch2, cancel2 := nilTr.Subscribe(1)
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Fatal("channel from nil tracer not closed")
	}
}
