package obs_test

// Accelerated-mode scrape test: sampled and time-parallel-sliced simulations
// feed the pfe_sample_* / pfe_slice_* counters while clients hammer /metrics
// and /status. Under -race this checks the whole accelerated telemetry path
// for data races; the final scrape asserts the new metric families carry
// real values.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/obs"
)

func TestLiveScrapeDuringAcceleratedRuns(t *testing.T) {
	reg := obs.NewRegistry()
	sc := obs.NewSimCounters(reg)
	tr := obs.NewTracker(reg)
	tr.SetWorkers(2)
	srv := httptest.NewServer(obs.NewMux(reg, tr, nil))
	defer srv.Close()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/status"} {
					resp, err := http.Get(srv.URL + path)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	tr.StartExperiment("accel", "accelerated smoke")
	tr.AddPlanned("accel", 2)
	var sims sync.WaitGroup
	run := func(name string, opts pfe.RunOptions) {
		defer sims.Done()
		start := time.Now()
		r, err := pfe.Run("gcc", pfe.Preset(pfe.PR2x8w), opts)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		tr.SimDone("accel", r.IPC, time.Since(start))
	}
	sampleSpec := pfe.DefaultSampleSpec()
	sims.Add(2)
	go run("sample", pfe.RunOptions{
		WarmupInsts: 5_000, MeasureInsts: 60_000, Obs: sc, Sample: &sampleSpec,
	})
	go run("slices", pfe.RunOptions{
		WarmupInsts: 5_000, MeasureInsts: 60_000, Obs: sc, Slices: 4, SliceWorkers: 2,
	})
	sims.Wait()
	tr.FinishExperiment("accel")
	close(stop)
	scrapers.Wait()

	body := scrape(t, srv.URL+"/metrics")
	for _, want := range []string{
		"pfe_sample_windows_total ",
		"pfe_sample_gap_instructions_total ",
		"pfe_sample_fallback_steps_total ",
		"pfe_sample_ci_halfwidth_bucket",
		"pfe_slice_slices_total 4",
		"pfe_slice_seam_cycles_total ",
		"pfe_slice_seam_trimmed_instructions_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if sc.SampleWindows.Value() == 0 {
		t.Error("no sampled windows counted")
	}
	if sc.SampleGapInsts.Value() == 0 {
		t.Error("no fast-forwarded gap instructions counted")
	}
	if sc.Slices.Value() != 4 {
		t.Errorf("Slices = %d, want 4", sc.Slices.Value())
	}
	if sc.SliceSeamCycles.Value() == 0 {
		t.Error("no seam warmup cycles counted for interior slices")
	}

	var st obs.Status
	if err := json.Unmarshal([]byte(scrape(t, srv.URL+"/status")), &st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if len(st.Experiments) != 1 || st.Experiments[0].CompletedSims != 2 {
		t.Errorf("/status = %+v, want one experiment with 2 sims", st.Experiments)
	}
	if st.Experiments[0].ColdSimSeconds <= 0 {
		t.Errorf("cold-sim EMA not tracked: %+v", st.Experiments[0])
	}
}
