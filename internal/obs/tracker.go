package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracker follows experiment progress: how many simulations each experiment
// will run, how many have completed, throughput and ETA. The same data
// backs the pfe-bench stderr progress lines and the HTTP /status endpoint.
// All methods are safe for concurrent use.
type Tracker struct {
	mu        sync.Mutex
	startedAt time.Time
	order     []string
	exps      map[string]*expState
	workers   int // configured worker-pool size (SetWorkers), for ETA scaling

	logW     io.Writer
	logEvery time.Duration
	lastLog  time.Time

	// rosterFn, when set, snapshots the fabric coordinator's worker roster
	// for /status (nil outside distributed sweeps).
	rosterFn func() []FabricRosterEntry

	// Registered metrics (nil without a registry).
	reg     *Registry
	durHist *Histogram
	ipcHist *Histogram
}

type expState struct {
	id, title string
	planned   int
	completed int
	startedAt time.Time
	running   bool
	wall      time.Duration

	// ETA inputs. Memoized (or resume-replayed) cells complete in
	// microseconds and are reported with wall == 0 — the documented
	// convention for "this cell did not simulate" — so averaging them into a
	// throughput makes the ETA for the remaining cold cells wildly
	// optimistic. coldEMA tracks only real simulations.
	memoized int     // completions reported with wall == 0
	coldEMA  float64 // EMA of non-memoized cell wall seconds
	coldSeen int     // non-memoized completions

	// Work-stealing scheduler stats, accumulated across batches (reported
	// after each batch completes, so they cover finished batches only).
	workers   int
	stolen    int
	busySec   float64
	shardWall float64

	// Distributed-fabric per-worker accounting, accumulated across batches
	// (keyed by worker id; fabOrder preserves arrival order).
	fabric   map[string]*FabricWorkerStatus
	fabOrder []string

	plannedG, completedG *Gauge
}

// NewTracker returns a tracker; when r is non-nil, per-experiment progress
// gauges (pfe_experiment_sims_planned/completed{experiment=...}) and the
// per-simulation duration and IPC histograms (pfe_sim_duration_seconds,
// pfe_sim_ipc) are registered on it.
func NewTracker(r *Registry) *Tracker {
	t := &Tracker{startedAt: time.Now(), exps: map[string]*expState{}, reg: r}
	if r != nil {
		t.durHist = r.Histogram("pfe_sim_duration_seconds",
			"Wall time of each completed simulation.",
			[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60})
		t.ipcHist = r.Histogram("pfe_sim_ipc",
			"Measured IPC of each completed simulation.",
			[]float64{1, 2, 3, 4, 5, 6, 8, 10})
	}
	return t
}

// SetWorkers records the configured worker-pool size, which scales the
// cold-cell ETA before the first batch's scheduler stats arrive.
func (t *Tracker) SetWorkers(n int) {
	t.mu.Lock()
	if n > 0 {
		t.workers = n
	}
	t.mu.Unlock()
}

// SetLog makes the tracker print one-line progress updates to w on
// simulation completions, at most once per minInterval (the final
// completion of an experiment always prints).
func (t *Tracker) SetLog(w io.Writer, minInterval time.Duration) {
	t.mu.Lock()
	t.logW = w
	t.logEvery = minInterval
	t.mu.Unlock()
}

// StartExperiment begins tracking an experiment.
func (t *Tracker) StartExperiment(id, title string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.exps[id]
	if e == nil {
		e = &expState{id: id, title: title}
		t.exps[id] = e
		t.order = append(t.order, id)
		if t.reg != nil {
			e.plannedG = t.reg.Gauge("pfe_experiment_sims_planned",
				"Simulations planned per experiment.", "experiment", id)
			e.completedG = t.reg.Gauge("pfe_experiment_sims_completed",
				"Simulations completed per experiment.", "experiment", id)
		}
	}
	e.startedAt = time.Now()
	e.running = true
}

// AddPlanned adds n simulations to an experiment's expected total (an
// experiment may plan cells in several batches).
func (t *Tracker) AddPlanned(id string, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.exps[id]; e != nil {
		e.planned += n
		if e.plannedG != nil {
			e.plannedG.Set(float64(e.planned))
		}
	}
}

// SimDone records one completed simulation (with its measured IPC and wall
// time) and emits a throttled progress line when a log writer is attached.
func (t *Tracker) SimDone(id string, ipc float64, wall time.Duration) {
	if t.durHist != nil {
		t.durHist.Observe(wall.Seconds())
		t.ipcHist.Observe(ipc)
	}
	t.mu.Lock()
	e := t.exps[id]
	if e == nil {
		t.mu.Unlock()
		return
	}
	e.completed++
	if e.completedG != nil {
		e.completedG.Set(float64(e.completed))
	}
	if wall == 0 {
		// The harness reports exactly 0 for memoized and resume-replayed
		// cells (no simulation happened); real runs always measure > 0.
		e.memoized++
	} else {
		s := wall.Seconds()
		if e.coldSeen == 0 {
			e.coldEMA = s
		} else {
			e.coldEMA = 0.7*e.coldEMA + 0.3*s
		}
		e.coldSeen++
	}
	line := ""
	if t.logW != nil && (e.completed == e.planned || time.Since(t.lastLog) >= t.logEvery) {
		line = t.progressLine(e)
		t.lastLog = time.Now()
	}
	w := t.logW
	t.mu.Unlock()
	if line != "" {
		fmt.Fprintln(w, line)
	}
}

// ShardingDone records one batch's work-stealing scheduler statistics for an
// experiment: worker-pool utilization and steal counts surface in progress
// lines and /status. Worker counts take the max across batches; the other
// fields accumulate.
func (t *Tracker) ShardingDone(id string, workers, stolen int, busySeconds, wallSeconds float64) {
	t.mu.Lock()
	e := t.exps[id]
	if e == nil {
		t.mu.Unlock()
		return
	}
	if workers > e.workers {
		e.workers = workers
	}
	e.stolen += stolen
	e.busySec += busySeconds
	e.shardWall += wallSeconds
	// A batch completes at most once per runCells sweep, so an
	// unthrottled closing line (the first to carry the batch's
	// utilization) cannot flood the log.
	line := ""
	if t.logW != nil {
		line = t.progressLine(e)
	}
	w := t.logW
	t.mu.Unlock()
	if line != "" {
		fmt.Fprintln(w, line)
	}
}

// FabricWorkerStatus is one fabric worker's per-experiment lease accounting
// (the /status and progress-line view of a distributed sweep).
type FabricWorkerStatus struct {
	ID        string `json:"id"`
	Leases    int    `json:"leases"`
	Completed int    `json:"completed"`
	Requeued  int    `json:"requeued"`
	Fenced    int    `json:"fenced"`
}

// FabricRosterEntry is one process-lifetime roster row from the fabric
// coordinator: liveness plus lifetime lease accounting.
type FabricRosterEntry struct {
	ID              string  `json:"id"`
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	Busy            string  `json:"busy,omitempty"`
	Leases          int64   `json:"leases"`
	Completed       int64   `json:"completed"`
	Requeued        int64   `json:"requeued"`
	Fenced          int64   `json:"fenced"`
}

// SetFabricRoster attaches a live snapshot function for the coordinator's
// worker roster, surfaced verbatim in Status.
func (t *Tracker) SetFabricRoster(fn func() []FabricRosterEntry) {
	t.mu.Lock()
	t.rosterFn = fn
	t.mu.Unlock()
}

// FabricDone folds one distributed batch's per-worker stats into an
// experiment (counts accumulate across batches) and emits an unthrottled
// progress line, mirroring ShardingDone for the leased path.
func (t *Tracker) FabricDone(id string, workers []FabricWorkerStatus) {
	t.mu.Lock()
	e := t.exps[id]
	if e == nil {
		t.mu.Unlock()
		return
	}
	if e.fabric == nil {
		e.fabric = map[string]*FabricWorkerStatus{}
	}
	for _, ws := range workers {
		cur := e.fabric[ws.ID]
		if cur == nil {
			cur = &FabricWorkerStatus{ID: ws.ID}
			e.fabric[ws.ID] = cur
			e.fabOrder = append(e.fabOrder, ws.ID)
		}
		cur.Leases += ws.Leases
		cur.Completed += ws.Completed
		cur.Requeued += ws.Requeued
		cur.Fenced += ws.Fenced
	}
	if len(e.fabric) > e.workers {
		e.workers = len(e.fabric)
	}
	line := ""
	if t.logW != nil {
		line = t.progressLine(e)
	}
	w := t.logW
	t.mu.Unlock()
	if line != "" {
		fmt.Fprintln(w, line)
	}
}

// FinishExperiment marks an experiment done.
func (t *Tracker) FinishExperiment(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.exps[id]; e != nil && e.running {
		e.running = false
		e.wall = time.Since(e.startedAt)
	}
}

// etas returns both remaining-time estimates for an experiment, in seconds
// (0 = unknown): naive extrapolates the overall completion rate — which
// near-instant memoized cells skew wildly optimistic — while cold scales the
// EMA of real simulation durations by the cells left and the worker pool
// executing them. Callers hold t.mu.
func (t *Tracker) etas(e *expState) (naive, cold float64) {
	remaining := e.planned - e.completed
	if !e.running || remaining <= 0 {
		return 0, 0
	}
	elapsed := time.Since(e.startedAt).Seconds()
	if elapsed > 0 && e.completed > 0 {
		naive = float64(remaining) * elapsed / float64(e.completed)
	}
	if e.coldSeen > 0 {
		workers := e.workers
		if workers <= 0 {
			workers = t.workers
		}
		if workers <= 0 {
			workers = 1
		}
		if workers > remaining {
			workers = remaining
		}
		cold = e.coldEMA * float64(remaining) / float64(workers)
	}
	return naive, cold
}

func (t *Tracker) progressLine(e *expState) string {
	elapsed := time.Since(e.startedAt)
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(e.completed) / s
	}
	pct := 0.0
	eta := "?"
	if e.planned > 0 {
		pct = 100 * float64(e.completed) / float64(e.planned)
		naive, cold := t.etas(e)
		// The cold estimate is the honest one once memoized cells are in the
		// mix; before any real simulation finishes, fall back to the naive
		// rate extrapolation.
		if best := cold; best > 0 || naive > 0 {
			if best == 0 {
				best = naive
			}
			eta = time.Duration(best * float64(time.Second)).Round(time.Second).String()
		}
	}
	line := fmt.Sprintf("[%s] %d/%d sims (%.0f%%)  elapsed %s  %.1f sims/s  eta %s",
		e.id, e.completed, e.planned, pct, elapsed.Round(100*time.Millisecond), rate, eta)
	if e.memoized > 0 {
		line += fmt.Sprintf("  (%d memoized)", e.memoized)
	}
	if e.workers > 0 && e.shardWall > 0 {
		line += fmt.Sprintf("  util %.0f%%/%dw (%d stolen)",
			100*e.busySec/(float64(e.workers)*e.shardWall), e.workers, e.stolen)
	}
	if len(e.fabric) > 0 {
		leases, requeued := 0, 0
		for _, ws := range e.fabric {
			leases += ws.Leases
			requeued += ws.Requeued
		}
		line += fmt.Sprintf("  fabric %dw/%d leases", len(e.fabric), leases)
		if requeued > 0 {
			line += fmt.Sprintf(" (%d requeued)", requeued)
		}
	}
	return line
}

// ExpStatus is one experiment's progress snapshot (the /status JSON shape).
type ExpStatus struct {
	ID             string  `json:"id"`
	Title          string  `json:"title"`
	PlannedSims    int     `json:"planned_sims"`
	CompletedSims  int     `json:"completed_sims"`
	Running        bool    `json:"running"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	SimsPerSec     float64 `json:"sims_per_sec"`

	// ETASeconds is the best remaining-time estimate: the cold-cell estimate
	// when at least one real simulation has completed, otherwise the naive
	// rate extrapolation. Both inputs are also exposed: ETANaiveSeconds
	// extrapolates the overall completion rate (memoized cells skew it
	// optimistic), ETAColdSeconds scales the EMA of non-memoized simulation
	// durations (ColdSimSeconds) by the remaining cells over the worker pool.
	ETASeconds      float64 `json:"eta_seconds"`
	ETANaiveSeconds float64 `json:"eta_naive_seconds,omitempty"`
	ETAColdSeconds  float64 `json:"eta_cold_seconds,omitempty"`

	// MemoizedSims counts completions served from the memo/resume caches
	// (reported with zero wall time); ColdSimSeconds is the EMA duration of
	// the real simulations.
	MemoizedSims   int     `json:"memoized_sims,omitempty"`
	ColdSimSeconds float64 `json:"cold_sim_seconds,omitempty"`

	// Work-stealing scheduler stats for completed batches (absent until the
	// first batch finishes).
	Workers     int     `json:"workers,omitempty"`
	StolenSims  int     `json:"stolen_sims,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`

	// FabricWorkers is the per-worker lease accounting of a distributed
	// sweep, accumulated across this experiment's completed batches (absent
	// outside fabric runs).
	FabricWorkers []FabricWorkerStatus `json:"fabric_workers,omitempty"`
}

// Status is the whole process's progress snapshot.
type Status struct {
	StartedAt      time.Time   `json:"started_at"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	Experiments    []ExpStatus `json:"experiments"`

	// FabricRoster is the live fleet view of a distributed sweep: every
	// worker the coordinator has seen, with liveness and lifetime lease
	// accounting (absent outside fabric runs).
	FabricRoster []FabricRosterEntry `json:"fabric_roster,omitempty"`
}

// Status snapshots current progress.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{StartedAt: t.startedAt, ElapsedSeconds: time.Since(t.startedAt).Seconds()}
	for _, id := range t.order {
		e := t.exps[id]
		es := ExpStatus{
			ID: e.id, Title: e.title,
			PlannedSims: e.planned, CompletedSims: e.completed,
			Running: e.running,
		}
		elapsed := e.wall
		if e.running {
			elapsed = time.Since(e.startedAt)
		}
		es.ElapsedSeconds = elapsed.Seconds()
		if es.ElapsedSeconds > 0 {
			es.SimsPerSec = float64(e.completed) / es.ElapsedSeconds
		}
		naive, cold := t.etas(e)
		es.ETANaiveSeconds = naive
		es.ETAColdSeconds = cold
		es.ETASeconds = cold
		if es.ETASeconds == 0 {
			es.ETASeconds = naive
		}
		es.MemoizedSims = e.memoized
		if e.coldSeen > 0 {
			es.ColdSimSeconds = e.coldEMA
		}
		if e.workers > 0 && e.shardWall > 0 {
			es.Workers = e.workers
			es.StolenSims = e.stolen
			es.Utilization = e.busySec / (float64(e.workers) * e.shardWall)
		}
		for _, id := range e.fabOrder {
			es.FabricWorkers = append(es.FabricWorkers, *e.fabric[id])
		}
		st.Experiments = append(st.Experiments, es)
	}
	if t.rosterFn != nil {
		fn := t.rosterFn
		// Snapshot outside the tracker lock: the roster function takes the
		// coordinator's own lock.
		t.mu.Unlock()
		roster := fn()
		t.mu.Lock()
		st.FabricRoster = roster
	}
	return st
}
