package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stage names one wall-time attribution bucket of the simulator itself
// (host-side time, not simulated cycles).
type Stage int

const (
	// StageFetch is the fetch engine's share of a front-end cycle.
	StageFetch Stage = iota
	// StageRename is the whole rename stage (admission, renaming, queue
	// bookkeeping). For parallel-rename front-ends, StageRenameP1 and
	// StageRenameP2 additionally break this down; they are a subset of
	// StageRename, not additional time.
	StageRename
	// StageRenameP1 is the parallel renamer's serial allocation phase
	// (live-out prediction + window reservation).
	StageRenameP1
	// StageRenameP2 is the parallel renamer's concurrent renaming phase.
	StageRenameP2
	// StageBackend is the out-of-order back-end (wakeup, execute, commit).
	StageBackend

	numStages
)

// String returns the stage's metric label.
func (s Stage) String() string {
	switch s {
	case StageFetch:
		return "fetch"
	case StageRename:
		return "rename"
	case StageRenameP1:
		return "rename_phase1"
	case StageRenameP2:
		return "rename_phase2"
	case StageBackend:
		return "backend"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Stages lists every attribution bucket.
func Stages() []Stage {
	return []Stage{StageFetch, StageRename, StageRenameP1, StageRenameP2, StageBackend}
}

// StageProf attributes the simulator's own wall time to pipeline stages via
// cheap sampled timers: one cycle in every SampleEvery is timed with
// time.Now around each stage, and the measured nanoseconds are scaled back
// up by the sampling factor when reported. On unsampled cycles the cost is
// a single branch; a nil *StageProf is valid and always reports unsampled.
//
// One StageProf may be shared by concurrent simulations (all updates are
// atomic); the result is then the aggregate attribution across them.
type StageProf struct {
	mask  uint64
	every int64
	nanos [numStages]Counter
}

// DefaultSampleEvery is the default sampling period in cycles.
const DefaultSampleEvery = 64

// NewStageProf returns a profiler sampling one cycle in every `every`
// (rounded up to a power of two; <=0 means DefaultSampleEvery).
func NewStageProf(every int) *StageProf {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	pow := 1
	for pow < every {
		pow <<= 1
	}
	return &StageProf{mask: uint64(pow - 1), every: int64(pow)}
}

// Sampled reports whether the given cycle should be timed. Safe on nil.
func (p *StageProf) Sampled(cycle uint64) bool {
	return p != nil && cycle&p.mask == 0
}

// SampleEvery returns the sampling period in cycles.
func (p *StageProf) SampleEvery() int64 { return p.every }

// Add attributes a measured duration to a stage.
func (p *StageProf) Add(s Stage, d time.Duration) { p.nanos[s].Add(int64(d)) }

// StageSeconds returns the estimated total wall time of one stage
// (measured sampled time scaled by the sampling factor).
func (p *StageProf) StageSeconds(s Stage) float64 {
	return float64(p.nanos[s].Value()*p.every) / 1e9
}

// Merge adds another profiler's raw samples into p. Both must use the same
// sampling period for the scaled totals to stay meaningful.
func (p *StageProf) Merge(from *StageProf) {
	if from == nil {
		return
	}
	for s := Stage(0); s < numStages; s++ {
		p.nanos[s].Add(from.nanos[s].Value())
	}
}

// Seconds returns the estimated seconds per stage, omitting stages with no
// samples.
func (p *StageProf) Seconds() map[string]float64 {
	if p == nil {
		return nil
	}
	out := map[string]float64{}
	for s := Stage(0); s < numStages; s++ {
		if v := p.StageSeconds(s); v > 0 {
			out[s.String()] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// FormatStageSeconds renders a stage→seconds map sorted by descending
// share, one line per stage.
func FormatStageSeconds(sec map[string]float64) string {
	if len(sec) == 0 {
		return ""
	}
	type kv struct {
		k string
		v float64
	}
	var rows []kv
	var total float64
	for k, v := range sec {
		rows = append(rows, kv{k, v})
		// Phase 1/2 are a sub-breakdown of rename; don't double count.
		if k != StageRenameP1.String() && k != StageRenameP2.String() {
			total += v
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	var b strings.Builder
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.v / total
		}
		fmt.Fprintf(&b, "  %-14s %8.3fs  %5.1f%%\n", r.k, r.v, pct)
	}
	return b.String()
}
