package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/program"
)

// FuzzFrontEndsAgree is the differential form of the golden-stream test:
// for fuzz-chosen generator parameters, every front-end mechanism must
// commit exactly the architectural instruction stream the functional
// emulator produces. Any divergence — an extra commit, a wrong PC, a lost
// instruction after a squash — is a simulator bug by construction.
func FuzzFrontEndsAgree(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(128), uint8(200), uint8(60))
	f.Add(int64(-44), uint8(7), uint8(0), uint8(30), uint8(255))

	cases := []struct {
		name         string
		fetch        core.FetchKind
		rename       core.RenameKind
		switchOnMiss bool
	}{
		{"W16", core.FetchSequential, core.RenameSequential, false},
		{"TC", core.FetchTraceCache, core.RenameSequential, false},
		{"PF", core.FetchParallel, core.RenameSequential, false},
		{"PR", core.FetchParallel, core.RenameParallel, false},
		{"TC+PR", core.FetchTraceCache, core.RenameParallel, false},
		{"PRd", core.FetchParallel, core.RenameDelayed, false},
		{"PF+som", core.FetchParallel, core.RenameSequential, true},
	}

	f.Fuzz(func(t *testing.T, seed int64, iters, memFrac, bias, loopFrac uint8) {
		spec := program.TestSpec()
		spec.Name = "diff-fuzz"
		spec.Seed = seed
		spec.PhaseIters = 1 + int(iters%8)
		spec.MemFrac = float64(memFrac) / 255
		spec.BranchBias = float64(bias) / 255
		spec.LoopFrac = float64(loopFrac) / 255
		p, err := program.Build(spec)
		if err != nil {
			t.Fatalf("Build rejected spec: %v", err)
		}

		// Architectural oracle: the functional emulator's PC stream.
		m := emu.New(p)
		var want []uint64
		for !m.Halted() {
			d, err := m.Step()
			if err != nil {
				t.Fatalf("emulator error: %v", err)
			}
			want = append(want, d.PC)
			if len(want) > 200_000 {
				t.Skip("program too long for a differential run")
			}
		}

		for _, tc := range cases {
			var got []uint64
			fe := feConfig(tc.name, tc.fetch, tc.rename)
			fe.SwitchOnMiss = tc.switchOnMiss
			cfg := testConfig(fe)
			cfg.WarmupInsts = 0
			cfg.MeasureInsts = int64(len(want)) + 1000
			cfg.CommitHook = func(op *backend.Op) { got = append(got, op.PC) }
			if _, err := Run(p, cfg); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: committed %d instructions, oracle has %d (seed %d)",
					tc.name, len(got), len(want), seed)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: commit %d is PC %#x, oracle %#x (seed %d)",
						tc.name, i, got[i], want[i], seed)
				}
			}
		}
	})
}
