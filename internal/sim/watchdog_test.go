package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/program"
)

// neverCommitConfig builds a synthetic livelocked machine: the back-end's
// commit width is zero, so the window fills and nothing ever retires. The
// watchdog is the only thing that can end this run.
func neverCommitConfig(threshold uint64, flight int) Config {
	be := backend.DefaultConfig()
	be.CommitWidth = 0
	return Config{
		FrontEnd:         feConfig("W16", core.FetchSequential, core.RenameSequential),
		Backend:          be,
		Mem:              mem.DefaultHierarchyConfig(),
		WarmupInsts:      1_000,
		MeasureInsts:     10_000,
		NoProgressCycles: threshold,
		FlightRecorder:   flight,
	}
}

func TestWatchdogTripsOnNeverCommittingConfig(t *testing.T) {
	const threshold = 500
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	counters := obs.NewSimCounters(nil)
	cfg := neverCommitConfig(threshold, 256)
	cfg.Obs = counters
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := uint64(0)
	for s.Step() {
		steps++
		if steps > 10*threshold {
			t.Fatalf("watchdog did not trip within %d cycles", 10*threshold)
		}
	}
	_, err = s.Result()
	if err == nil {
		t.Fatal("expected a stall error from a never-committing run")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error %v (%T) is not a *StallError", err, err)
	}
	if stall.Reason != "no-progress" {
		t.Errorf("reason = %q, want no-progress", stall.Reason)
	}
	// The trip must come within one threshold of the last progress (which
	// never happened, so within threshold+1 cycles of the start).
	if steps > threshold+1 {
		t.Errorf("tripped after %d steps, want <= threshold+1 = %d", steps, threshold+1)
	}
	if stall.Diag == nil {
		t.Fatal("stall error carries no diagnostic")
	}
	if got := counters.WatchdogTrips.Value(); got != 1 {
		t.Errorf("pfe_watchdog_trips_total = %d, want 1", got)
	}
	if stall.Diag.Committed != 0 {
		t.Errorf("diag.Committed = %d, want 0 (commit width is zero)", stall.Diag.Committed)
	}
	if stall.Diag.Window == 0 {
		t.Error("diag.Window = 0, want a full window behind a stuck commit head")
	}
}

// TestWatchdogDumpGoldenHeader pins the readable dump's header: field names
// and order are a stable contract (ops tooling greps them), values are
// cross-checked against the diagnostic struct.
func TestWatchdogDumpGoldenHeader(t *testing.T) {
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, neverCommitConfig(300, 64))
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected *StallError, got %v", err)
	}
	d := stall.Diag
	var b strings.Builder
	if err := d.Render(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	lines := strings.Split(dump, "\n")

	want := []string{
		fmt.Sprintf("pfe stall diagnostic v%d", DiagVersion),
		"reason: no-progress",
		"config: W16",
		"bench: tiny",
		fmt.Sprintf("cycle: %d", d.Cycle),
		"committed: 0",
		fmt.Sprintf("window-occupancy: %d", d.Window),
		fmt.Sprintf("frag-buffers-in-use: %d", d.BuffersInUse),
		fmt.Sprintf("frontend-drained: %v", d.Drained),
		fmt.Sprintf("pending-redirect: %s", d.Pending),
	}
	if len(lines) < len(want) {
		t.Fatalf("dump too short (%d lines):\n%s", len(lines), dump)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("dump line %d = %q, want %q", i, lines[i], w)
		}
	}
	// The remaining header fields exist with the right keys.
	for _, key := range []string{"backend-head: ", "fetched: ", "renamed: ", "redirects: ",
		"frag-pred: ", "flight-recorder: "} {
		if !strings.Contains(dump, "\n"+key) {
			t.Errorf("dump missing header field %q", key)
		}
	}
	// Flight recorder captured events and the dump includes them.
	if len(d.Events) == 0 {
		t.Fatal("flight recorder retained no events")
	}
	if !strings.Contains(dump, "--- last events (oldest first) ---") {
		t.Error("dump missing flight-recorder event section")
	}
	// 64-capacity ring on a fetch-heavy run: the tail must end close to
	// the trip cycle, i.e. the ring really did keep the *last* events.
	last := d.Events[len(d.Events)-1]
	if last.Cycle > d.Cycle {
		t.Errorf("last event cycle %d is after the trip cycle %d", last.Cycle, d.Cycle)
	}
}

// TestMaxCyclesProducesStallDiagnostic covers the watchdog's other trigger:
// exhausting the cycle budget also yields a StallError with a bundle.
func TestMaxCyclesProducesStallDiagnostic(t *testing.T) {
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(feConfig("W16", core.FetchSequential, core.RenameSequential))
	cfg.MaxCycles = 50 // far below what the budget needs
	cfg.FlightRecorder = 32
	_, err = Run(p, cfg)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("expected *StallError, got %v", err)
	}
	if stall.Reason != "max-cycles" {
		t.Errorf("reason = %q, want max-cycles", stall.Reason)
	}
	if stall.Diag == nil || stall.Diag.Cycle < 50 {
		t.Errorf("diag missing or cycle %v < MaxCycles", stall.Diag)
	}
}
