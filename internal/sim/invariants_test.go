package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TestPipelineInvariants checks cross-cutting sanity properties on every
// front-end over a real benchmark slice:
//
//	IPC <= machine width;
//	instructions fetched >= renamed >= committed (speculation only adds);
//	slot utilization in (0, 1];
//	committed == the requested budget (give or take a commit group).
func TestPipelineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	spec, err := program.SpecByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		fetch  core.FetchKind
		rename core.RenameKind
	}{
		{"W16", core.FetchSequential, core.RenameSequential},
		{"TC", core.FetchTraceCache, core.RenameSequential},
		{"PF", core.FetchParallel, core.RenameSequential},
		{"PR", core.FetchParallel, core.RenameParallel},
		{"PRd", core.FetchParallel, core.RenameDelayed},
		{"TC+PR", core.FetchTraceCache, core.RenameParallel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(feConfig(tc.name, tc.fetch, tc.rename))
			r, err := Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := r.FrontEnd
			if r.IPC <= 0 || r.IPC > 16 {
				t.Errorf("IPC %.2f out of (0,16]", r.IPC)
			}
			if s.Fetched < s.Renamed {
				t.Errorf("fetched %d < renamed %d", s.Fetched, s.Renamed)
			}
			if s.Renamed < r.Committed {
				t.Errorf("renamed %d < committed %d", s.Renamed, r.Committed)
			}
			if u := s.SlotUtilization(); u <= 0 || u > 1 {
				t.Errorf("slot utilization %.3f out of (0,1]", u)
			}
			if r.Committed < cfg.MeasureInsts || r.Committed > cfg.MeasureInsts+16 {
				t.Errorf("committed %d, budget %d", r.Committed, cfg.MeasureInsts)
			}
			if s.FragReadByRename > 0 {
				early := s.ConstructedBeforeRename()
				if early < 0 || early > 1 {
					t.Errorf("constructed-early %.3f out of range", early)
				}
			}
		})
	}
}

// TestWarmupDoesNotChangeSteadyState: two different warmup lengths on the
// same benchmark should land within a few percent of each other.
func TestWarmupDoesNotChangeSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	spec, err := program.SpecByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ipcAt := func(warm int64) float64 {
		cfg := testConfig(feConfig("TC", core.FetchTraceCache, core.RenameSequential))
		cfg.WarmupInsts = warm
		cfg.MeasureInsts = 60_000
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.IPC
	}
	a, b := ipcAt(100_000), ipcAt(160_000)
	t.Logf("IPC at 100K warmup %.3f, at 160K warmup %.3f", a, b)
	if diff := (a - b) / b; diff > 0.12 || diff < -0.12 {
		t.Errorf("steady state depends on warmup: %.3f vs %.3f", a, b)
	}
}
