// Package sim couples a front-end (internal/core), the out-of-order
// back-end (internal/backend) and the memory hierarchy (internal/mem) into
// the cycle-level processor model of Table 1, and runs generated benchmarks
// on it. One Run is one experiment cell: a (front-end config, benchmark)
// pair producing IPC and the front-end measurements of §5.
package sim

import (
	"fmt"
	"io"
	"time"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/metrics"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/pool"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/rename"
	"github.com/parallel-frontend/pfe/internal/tcache"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// Config is one simulation's complete machine description plus run bounds.
type Config struct {
	FrontEnd core.Config
	Backend  backend.Config
	Mem      mem.HierarchyConfig

	// WarmupInsts commit before measurement starts (caches and
	// predictors stay warm; counters reset). MeasureInsts commit during
	// measurement. MaxCycles bounds runaway simulations.
	WarmupInsts  int64
	MeasureInsts int64
	MaxCycles    uint64

	// NoProgressCycles is the forward-progress watchdog threshold: a run
	// that commits nothing for this many consecutive cycles is declared
	// stalled and ends with a *StallError carrying a diagnostic bundle.
	// 0 means DefaultNoProgressCycles.
	NoProgressCycles uint64

	// FlightRecorder, when positive, attaches a fixed-size ring retaining
	// the last N pipeline events (in addition to any Events sink); the
	// ring's contents go into the stall diagnostic when the watchdog
	// trips. Emission into the ring never allocates.
	FlightRecorder int

	// CommitHook, if set, observes every committed instruction in
	// program order (correctness tests compare this stream against the
	// functional emulator).
	CommitHook func(*backend.Op)

	// Trace, if non-nil, receives a per-cycle pipeline trace for the
	// first TraceCycles cycles: fetch/rename/commit counts, window and
	// buffer occupancy, and redirect events.
	Trace       io.Writer
	TraceCycles uint64

	// Events, if non-nil, receives a typed trace.Event for every pipeline
	// occurrence — fetch deliveries, fragment predictions, rename phases,
	// dispatches, commits, squashes (see internal/trace). A nil sink costs
	// one pointer check per emit site.
	Events trace.Sink

	// Metrics, if non-nil, accumulates the pipeline histograms (fragment
	// length, buffer residency, squash depth). Run resets it when
	// measurement starts so warmup observations are excluded; when nil,
	// Run attaches a fresh one so Result.Pipeline is always populated.
	Metrics *metrics.Pipeline

	// Obs, if non-nil, receives batched live telemetry (cycles, committed
	// instructions, squashes, redirects) flushed from the cycle loop every
	// obsFlushCycles, for /metrics exposition while the run is in flight.
	// The counters are shared: concurrent runs aggregate into them. A nil
	// Obs costs one branch per cycle.
	Obs *obs.SimCounters

	// SelfProfile enables sampled per-stage wall-time attribution of the
	// simulator itself (fetch / rename / rename phases / backend),
	// surfaced in Result.StageSeconds and merged into Obs.Prof when Obs
	// is set. When false but Obs is set, the shared Obs.Prof is fed
	// directly so /metrics still carries live stage times.
	SelfProfile bool

	// Oracle, if non-nil, replaces the live functional emulator as the
	// source of the true dynamic stream (an artifact-cache tape reader).
	// It must produce the exact stream emu.New(p) would; each simulation
	// needs its own instance (the stream is consumed statefully).
	Oracle emu.Oracle

	// Hier, if non-nil, is an externally built memory hierarchy the run
	// uses instead of constructing its own — the seam through which the
	// sampled and time-parallel modes carry functionally warmed cache
	// contents into a detailed window. The hierarchy must match Mem's
	// geometry and must not be shared with a concurrent run.
	Hier *mem.Hierarchy

	// Pred, if non-nil, is an externally built fragment predictor the run
	// uses instead of constructing its own — the same seam as Hier, for
	// predictor tables functionally trained over a skipped prefix. It must
	// match FrontEnd.Predictor's geometry and must not be shared with a
	// concurrent run.
	Pred *bpred.TracePredictor

	// LiveOut and TC are the remaining warmed-state seams: an externally
	// built live-out predictor (parallel rename) and trace cache
	// (trace-cache fetch), injected into the front-end instead of the
	// cold structures it would otherwise build. Nil values keep the
	// front-end self-contained.
	LiveOut *rename.LiveOutPredictor
	TC      *tcache.Cache
}

// Result is one simulation's measurements (post-warmup).
type Result struct {
	Bench     string
	Config    string
	Cycles    uint64
	Committed int64
	IPC       float64

	// WarmupCycles is how many cycles the warmup phase consumed before
	// measurement began — per-slice provenance for time-parallel runs.
	WarmupCycles uint64

	FrontEnd core.Stats

	// Fragment predictor behaviour over the whole run (the predictor is
	// shared machinery, warm by measurement time).
	FragPredAccuracy float64

	// Cache behaviour (whole run).
	L1IMissRate float64
	L1DMissRate float64
	TCHitRate   float64 // trace-cache front-ends only

	// Fragment-buffer behaviour (parallel fetch only).
	BufferReuseRate float64

	// Pipeline holds the measurement-period histograms (fragment length,
	// buffer residency, squash depth). Always non-nil after Run.
	Pipeline *metrics.Pipeline

	// StageSeconds is the simulator's own wall time per pipeline stage
	// (estimated from sampled timers; rename_phase1/2 are a sub-breakdown
	// of rename). Nil unless Config.SelfProfile was set.
	StageSeconds map[string]float64

	// Pool is the free-list traffic of this run's recycled simulator
	// objects (whole run): Gets - Misses heap allocations were avoided.
	Pool pool.Stats
}

// obsFlushCycles is the live-telemetry batching interval (a power of two;
// the flush check is a mask test).
const obsFlushCycles = 1024

// Sim is one in-flight simulation, advanced a cycle at a time. New builds
// the machine, Step runs one cycle, Result finishes the run (driving any
// remaining cycles) and reports the measurements. Run wraps all three; the
// stepwise form exists so tests can measure per-cycle properties (e.g.
// steady-state allocation behaviour) of the hot loop directly.
type Sim struct {
	cfg Config
	p   *program.Program

	met    *metrics.Pipeline
	prof   *obs.StageProf
	hier   *mem.Hierarchy
	stream *core.Stream
	be     *backend.Backend
	fe     *core.Unit
	ring   *trace.RingSink // flight recorder (nil unless configured)

	now          uint64
	measuring    bool
	baseStats    core.Stats
	baseCommit   int64
	baseCycle    uint64
	target       int64
	lastProgress uint64

	// Live-telemetry flush state: counters are shared across concurrent
	// runs, so updates are batched (one set of atomic adds every
	// obsFlushCycles) instead of per cycle.
	flushedCycles                                       uint64
	flushedCommitted, flushedSquashes, flushedRedirects int64
	flushedPool                                         pool.Stats

	prevFetched, prevRenamed int64 // Trace output deltas

	stopped  bool // the cycle loop has exited (ok or error)
	finished bool // post-loop accounting has run
	err      error
	res      *Result
}

// New builds the machine for benchmark p under cfg, ready to Step.
func New(p *program.Program, cfg Config) (*Sim, error) {
	if cfg.MeasureInsts <= 0 {
		return nil, fmt.Errorf("sim: MeasureInsts must be positive")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = uint64(cfg.WarmupInsts+cfg.MeasureInsts)*40 + 1_000_000
	}
	if cfg.NoProgressCycles == 0 {
		cfg.NoProgressCycles = DefaultNoProgressCycles
	}
	var ring *trace.RingSink
	if cfg.FlightRecorder > 0 {
		ring = trace.NewRingSink(cfg.FlightRecorder)
		if cfg.Events != nil {
			cfg.Events = trace.TeeSink{cfg.Events, ring}
		} else {
			cfg.Events = ring
		}
	}

	met := cfg.Metrics
	if met == nil {
		met = metrics.NewPipeline()
	}
	// A dedicated profiler gives this run its own attribution (merged
	// into the shared one afterwards); otherwise the shared profiler is
	// fed directly so live /metrics still sees stage times.
	var prof *obs.StageProf
	switch {
	case cfg.SelfProfile:
		prof = obs.NewStageProf(0)
	case cfg.Obs != nil:
		prof = cfg.Obs.Prof
	}
	cfg.FrontEnd.Sink = cfg.Events
	cfg.FrontEnd.Metrics = met
	cfg.FrontEnd.Prof = prof
	cfg.FrontEnd.LiveOutPred = cfg.LiveOut
	cfg.FrontEnd.TC = cfg.TC

	hier := cfg.Hier
	if hier == nil {
		hier = mem.NewHierarchy(cfg.Mem)
	}
	pred := cfg.Pred
	if pred == nil {
		pred = bpred.New(cfg.FrontEnd.Predictor)
	}
	stream := core.NewStream(p, pred, cfg.FrontEnd.FragHeuristics, cfg.Oracle)
	be := backend.New(cfg.Backend, hier.L1D)
	be.CommitHook = cfg.CommitHook
	be.Sink = cfg.Events
	ic := &core.ICache{L1I: hier.L1I, Banks: hier.IBanks}
	fe, err := core.NewUnit(cfg.FrontEnd, stream, ic, be)
	if err != nil {
		return nil, err
	}

	s := &Sim{
		cfg: cfg, p: p,
		met: met, prof: prof, hier: hier, stream: stream, be: be, fe: fe, ring: ring,
		measuring: cfg.WarmupInsts == 0,
		target:    cfg.WarmupInsts + cfg.MeasureInsts,
	}
	if cfg.Obs != nil {
		cfg.Obs.SimsStarted.Inc()
	}
	return s, nil
}

// flushObs pushes the batched telemetry deltas into the shared counters.
func (s *Sim) flushObs(now uint64) {
	sc := s.cfg.Obs
	sc.Cycles.Add(int64(now - s.flushedCycles))
	s.flushedCycles = now
	c := s.be.Committed()
	sc.Committed.Add(c - s.flushedCommitted)
	s.flushedCommitted = c
	// The squash histogram resets when measurement starts; a count
	// below the last flushed value means "start over", not an
	// un-squash.
	sq := s.met.SquashDepth.Count()
	if sq < s.flushedSquashes {
		s.flushedSquashes = 0
	}
	sc.Squashes.Add(sq - s.flushedSquashes)
	s.flushedSquashes = sq
	r := s.fe.Stats().Redirects
	sc.Redirects.Add(r - s.flushedRedirects)
	s.flushedRedirects = r
	ps := s.fe.PoolStats()
	sc.PoolGets.Add(ps.Gets - s.flushedPool.Gets)
	sc.PoolMisses.Add(ps.Misses - s.flushedPool.Misses)
	s.flushedPool = ps
}

// Step advances the simulation by one cycle. It returns false once the run
// has ended (completed, deadlocked or exhausted its cycle budget) — call
// Result for the outcome. Steady-state Steps perform no heap allocations;
// the allocation test harness pins that property.
func (s *Sim) Step() bool {
	if s.stopped {
		return false
	}
	if s.now >= s.cfg.MaxCycles {
		s.stopped = true
		return false
	}
	now := s.now
	cfg := &s.cfg

	var n int
	var res *backend.Resolution
	if s.prof.Sampled(now) {
		// Sampled self-profiling: the back-end's share of this
		// cycle (the front-end attributes its own halves).
		tA := time.Now()
		s.be.StartCycle(now)
		tB := time.Now()
		s.fe.Cycle(now)
		tC := time.Now()
		n, res = s.be.Cycle(now)
		s.prof.Add(obs.StageBackend, tB.Sub(tA)+time.Since(tC))
	} else {
		s.be.StartCycle(now)
		s.fe.Cycle(now)
		n, res = s.be.Cycle(now)
	}
	if cfg.Obs != nil && now&(obsFlushCycles-1) == obsFlushCycles-1 {
		s.flushObs(now)
	}
	if n > 0 {
		s.lastProgress = now
	}

	if cfg.Trace != nil && now < cfg.TraceCycles {
		st := s.fe.Stats()
		mark := ""
		if res != nil {
			mark = fmt.Sprintf("  RESOLVE seq=%d pc=%#x", res.Op.Seq, res.Op.PC)
		}
		bufs := 0
		if pool := s.fe.Pool(); pool != nil {
			bufs = pool.InUseCount()
		}
		fmt.Fprintf(cfg.Trace, "cycle %6d | fetch %2d rename %2d commit %2d | window %3d bufs %2d%s\n",
			now, st.Fetched-s.prevFetched, st.Renamed-s.prevRenamed, n, s.be.InFlight(), bufs, mark)
		s.prevFetched, s.prevRenamed = st.Fetched, st.Renamed
	}

	if res != nil {
		pend := s.stream.Pending()
		if pend != nil && res.Op.Seq == pend.CulpritSeq {
			red := s.stream.ApplyRedirect()
			nsq := s.be.SquashFrom(red.CulpritSeq + 1)
			s.met.SquashDepth.Observe(int64(nsq))
			if cfg.Events != nil {
				cfg.Events.Emit(trace.Event{
					Cycle: now,
					Kind:  trace.KindSquash,
					Seq:   red.CulpritSeq + 1,
					PC:    red.TruePC,
					Cause: trace.CauseBranchMispredict,
					N:     int32(nsq),
				})
			}
			s.be.ClearMispredictPoint(res.Op)
			s.fe.Redirect(now, red.CulpritSeq)
		} else {
			// The culprit became stale (live-out squash
			// re-renamed past it in an unexpected order) —
			// unblock commit; the stream redirect will be
			// resolved by the re-executed instance.
			s.be.ClearMispredictPoint(res.Op)
		}
	}

	committed := s.be.Committed()
	if !s.measuring && committed >= cfg.WarmupInsts {
		s.baseStats = *s.fe.Stats()
		s.baseCommit = committed
		s.baseCycle = now
		s.measuring = true
		s.target = s.baseCommit + cfg.MeasureInsts
		s.met.Reset() // histograms cover the measurement period only
	}
	if s.measuring && committed >= s.target {
		s.stopped = true
		return false
	}
	if s.stream.Done() && s.fe.Drained() && s.be.InFlight() == 0 {
		s.stopped = true
		return false
	}
	if now-s.lastProgress > cfg.NoProgressCycles {
		pendDesc := "no pending redirect"
		if pend := s.stream.Pending(); pend != nil {
			pendDesc = fmt.Sprintf("pending redirect culprit=%d", pend.CulpritSeq)
		}
		s.err = s.stall("no-progress",
			fmt.Sprintf("sim: %s/%s deadlocked at cycle %d (no commit for %d cycles; committed %d; %s; %s; drained=%v)",
				cfg.FrontEnd.Name, s.p.Name, now, now-s.lastProgress, committed, s.be.DebugHead(), pendDesc, s.fe.Drained()))
		s.stopped = true
		return false
	}
	s.now++
	return true
}

// Result finishes the run — stepping any remaining cycles — and returns its
// measurements. It is idempotent.
func (s *Sim) Result() (*Result, error) {
	for s.Step() {
	}
	if s.finished {
		return s.res, s.err
	}
	s.finished = true
	cfg := &s.cfg
	if s.err != nil {
		// Deadlock: the error already describes it; no final telemetry
		// flush (matching the historical early return).
		return nil, s.err
	}
	if cfg.Obs != nil {
		s.flushObs(s.now)
		if cfg.SelfProfile {
			cfg.Obs.Prof.Merge(s.prof)
		}
	}
	if s.now >= cfg.MaxCycles {
		s.err = s.stall("max-cycles",
			fmt.Sprintf("sim: %s/%s exceeded MaxCycles=%d", cfg.FrontEnd.Name, s.p.Name, cfg.MaxCycles))
		return nil, s.err
	}
	if !s.measuring {
		s.err = fmt.Errorf("sim: %s/%s finished before warmup completed", cfg.FrontEnd.Name, s.p.Name)
		return nil, s.err
	}
	if cfg.Obs != nil {
		cfg.Obs.SimsCompleted.Inc()
	}

	res := &Result{
		Bench:        s.p.Name,
		Config:       cfg.FrontEnd.Name,
		Cycles:       s.now - s.baseCycle,
		Committed:    s.be.Committed() - s.baseCommit,
		WarmupCycles: s.baseCycle,
		FrontEnd:     subStats(*s.fe.Stats(), s.baseStats),
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Committed) / float64(res.Cycles)
	}
	if gen, correct := s.stream.Accuracy(); gen > 0 {
		res.FragPredAccuracy = float64(correct) / float64(gen)
	}
	res.L1IMissRate = s.hier.L1I.MissRate()
	res.L1DMissRate = s.hier.L1D.MissRate()
	if tc := s.fe.TraceCache(); tc != nil {
		res.TCHitRate = tc.HitRate()
	}
	if pool := s.fe.Pool(); pool != nil {
		res.BufferReuseRate = pool.ReuseRate()
	}
	res.Pipeline = s.met
	if cfg.SelfProfile {
		res.StageSeconds = s.prof.Seconds()
	}
	res.Pool = s.fe.PoolStats()
	s.res = res
	return res, nil
}

// Run executes the benchmark p under cfg.
func Run(p *program.Program, cfg Config) (*Result, error) {
	s, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return s.Result()
}

// subStats subtracts warmup-period counters field by field.
func subStats(a, b core.Stats) core.Stats {
	a.Cycles -= b.Cycles
	a.FetchSlots -= b.FetchSlots
	a.FetchedFromCache -= b.FetchedFromCache
	a.Fetched -= b.Fetched
	a.Renamed -= b.Renamed
	a.FragAllocs -= b.FragAllocs
	a.FragReuses -= b.FragReuses
	a.FragCompleteAtRename -= b.FragCompleteAtRename
	a.FragReadByRename -= b.FragReadByRename
	a.LiveOutPredicted -= b.LiveOutPredicted
	a.LiveOutMispredict -= b.LiveOutMispredict
	a.LiveOutMisses -= b.LiveOutMisses
	a.BankConflicts -= b.BankConflicts
	a.ConflictTrunc -= b.ConflictTrunc
	a.Redirects -= b.Redirects
	a.DelayedForMapping -= b.DelayedForMapping
	a.InstrsRenamedBeforeSource -= b.InstrsRenamedBeforeSource
	return a
}
