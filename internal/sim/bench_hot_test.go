package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/program"
)

// bench_hot_test.go is the benchstat-ready hot-path suite: per-configuration
// whole-simulation benchmarks reporting ns/op, allocs/op and the derived
// per-simulated-cycle costs. Run it before and after a perf change:
//
//	go test ./internal/sim -run '^$' -bench BenchmarkHotSim -benchmem -count 10 > old.txt
//	... apply change ...
//	go test ./internal/sim -run '^$' -bench BenchmarkHotSim -benchmem -count 10 > new.txt
//	benchstat old.txt new.txt
//
// (or `make bench-stat`, which drives the same invocation).

// benchProgram builds the fixed-seed benchmark workload once.
func benchProgram(b *testing.B) *program.Program {
	b.Helper()
	spec := program.TestSpec()
	spec.PhaseIters = 2000
	p, err := program.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchCases() []core.Config {
	mk := func(name string, fetch core.FetchKind, ren core.RenameKind, nseq, wseq int) core.Config {
		cfg := feConfig(name, fetch, ren)
		if fetch == core.FetchParallel {
			cfg.Sequencers, cfg.SeqWidth = nseq, wseq
		}
		if ren == core.RenameParallel || ren == core.RenameDelayed {
			cfg.Renamers, cfg.RenWidth = nseq, wseq
		}
		return cfg
	}
	return []core.Config{
		mk("W16", core.FetchSequential, core.RenameSequential, 0, 0),
		mk("TC", core.FetchTraceCache, core.RenameSequential, 0, 0),
		mk("PF-4x4w", core.FetchParallel, core.RenameSequential, 4, 4),
		mk("PR-2x8w", core.FetchParallel, core.RenameParallel, 2, 8),
		mk("PRd-2x8w", core.FetchParallel, core.RenameDelayed, 2, 8),
	}
}

// BenchmarkHotSim measures one full simulation per iteration: the cycle
// loop dominated by fetch/rename/backend work, with no tracing attached —
// the configuration the experiment sweeps run in.
func BenchmarkHotSim(b *testing.B) {
	p := benchProgram(b)
	for _, fe := range benchCases() {
		b.Run(fe.Name, func(b *testing.B) {
			cfg := testConfig(fe)
			b.ReportAllocs()
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Run(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
			}
			b.StopTimer()
			if cycles > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/sim-cycle")
			}
		})
	}
}
