package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/bpred"
	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/mem"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/rename"
)

// feConfig builds a front-end config for tests.
func feConfig(name string, fetch core.FetchKind, ren core.RenameKind) core.Config {
	cfg := core.Config{
		Name:           name,
		Fetch:          fetch,
		Rename:         ren,
		FetchWidth:     16,
		RenameWidth:    16,
		FragBuffers:    16,
		Predictor:      bpred.DefaultConfig(),
		LiveOut:        rename.DefaultLiveOutConfig(),
		RedirectBubble: 3,
	}
	switch fetch {
	case core.FetchTraceCache:
		cfg.TraceCache = 32 << 10
	case core.FetchParallel:
		cfg.Sequencers, cfg.SeqWidth = 2, 8
	}
	if ren == core.RenameParallel || ren == core.RenameDelayed {
		cfg.Renamers, cfg.RenWidth = 2, 8
	}
	return cfg
}

func testConfig(fe core.Config) Config {
	return Config{
		FrontEnd:     fe,
		Backend:      backend.DefaultConfig(),
		Mem:          mem.DefaultHierarchyConfig(),
		WarmupInsts:  5_000,
		MeasureInsts: 30_000,
	}
}

func runTiny(t *testing.T, fe core.Config) *Result {
	t.Helper()
	spec := program.TestSpec()
	spec.PhaseIters = 2000 // long enough for the budget
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, testConfig(fe))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestW16Smoke(t *testing.T) {
	r := runTiny(t, feConfig("W16", core.FetchSequential, core.RenameSequential))
	t.Logf("W16: IPC=%.2f fetch=%.2f rename=%.2f util=%.2f redirects=%d",
		r.IPC, r.FrontEnd.FetchRate(), r.FrontEnd.RenameRate(),
		r.FrontEnd.SlotUtilization(), r.FrontEnd.Redirects)
	if r.IPC < 0.5 || r.IPC > 16 {
		t.Errorf("implausible IPC %.2f", r.IPC)
	}
	if r.Committed < 30_000 {
		t.Errorf("committed %d < budget", r.Committed)
	}
	if r.FrontEnd.Redirects == 0 {
		t.Error("expected some redirects")
	}
}

func TestTCSmoke(t *testing.T) {
	r := runTiny(t, feConfig("TC", core.FetchTraceCache, core.RenameSequential))
	t.Logf("TC: IPC=%.2f fetch=%.2f rename=%.2f util=%.2f tcHit=%.2f",
		r.IPC, r.FrontEnd.FetchRate(), r.FrontEnd.RenameRate(),
		r.FrontEnd.SlotUtilization(), r.TCHitRate)
	if r.IPC < 0.5 || r.IPC > 16 {
		t.Errorf("implausible IPC %.2f", r.IPC)
	}
	if r.TCHitRate == 0 {
		t.Error("trace cache never hit")
	}
}

func TestPFSmoke(t *testing.T) {
	r := runTiny(t, feConfig("PF", core.FetchParallel, core.RenameSequential))
	t.Logf("PF: IPC=%.2f fetch=%.2f rename=%.2f util=%.2f reuse=%.2f early=%.2f",
		r.IPC, r.FrontEnd.FetchRate(), r.FrontEnd.RenameRate(),
		r.FrontEnd.SlotUtilization(), r.BufferReuseRate, r.FrontEnd.ConstructedBeforeRename())
	if r.IPC < 0.5 || r.IPC > 16 {
		t.Errorf("implausible IPC %.2f", r.IPC)
	}
	if r.BufferReuseRate == 0 {
		t.Error("no buffer reuse on a loopy program")
	}
}

func TestPRSmoke(t *testing.T) {
	r := runTiny(t, feConfig("PR", core.FetchParallel, core.RenameParallel))
	t.Logf("PR: IPC=%.2f fetch=%.2f rename=%.2f util=%.2f loMiss=%d loMis=%d beforeSrc=%.3f",
		r.IPC, r.FrontEnd.FetchRate(), r.FrontEnd.RenameRate(),
		r.FrontEnd.SlotUtilization(), r.FrontEnd.LiveOutMisses,
		r.FrontEnd.LiveOutMispredict,
		float64(r.FrontEnd.InstrsRenamedBeforeSource)/float64(r.FrontEnd.Renamed+1))
	if r.IPC < 0.5 || r.IPC > 16 {
		t.Errorf("implausible IPC %.2f", r.IPC)
	}
}

func TestTCPRSmoke(t *testing.T) {
	r := runTiny(t, feConfig("TC+PR", core.FetchTraceCache, core.RenameParallel))
	t.Logf("TC+PR: IPC=%.2f", r.IPC)
	if r.IPC < 0.5 || r.IPC > 16 {
		t.Errorf("implausible IPC %.2f", r.IPC)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runTiny(t, feConfig("PR", core.FetchParallel, core.RenameParallel))
	b := runTiny(t, feConfig("PR", core.FetchParallel, core.RenameParallel))
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestProgramRunsToHalt(t *testing.T) {
	// A very small program that halts before the measurement budget:
	// the simulator must drain and finish without error.
	spec := program.TestSpec()
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(feConfig("W16", core.FetchSequential, core.RenameSequential))
	cfg.WarmupInsts = 0
	cfg.MeasureInsts = 100_000_000 // far beyond program length
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < 1000 {
		t.Errorf("committed only %d", r.Committed)
	}
	t.Logf("tiny program committed %d instructions in %d cycles (IPC %.2f)", r.Committed, r.Cycles, r.IPC)
}
