package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/program"
)

// alloc_test.go pins the allocation-free hot path: once a simulation has
// warmed past its transient phase (free lists populated, fragment memo
// covering the program's static code, FIFO capacities grown), Step must not
// touch the heap at all. Any regression — a map rebuilt per cycle, a slice
// reallocated per fragment, a closure capturing loop state — shows up here
// as a nonzero allocs-per-batch long before it shows up in benchstat noise.

// allocCases are the two fetch organizations with the most per-cycle object
// traffic: the W16 sequential baseline and the paper's parallel front-end
// with four 4-wide sequencers (banked I-cache, fragment buffers, per-frag
// state). The trace cache is excluded: trace construction memoizes new
// traces for as long as it keeps finding them, which is real work, not
// churn.
func allocCases() []core.Config {
	pf := feConfig("PF-4x4w", core.FetchParallel, core.RenameSequential)
	pf.Sequencers, pf.SeqWidth = 4, 4
	return []core.Config{
		feConfig("W16", core.FetchSequential, core.RenameSequential),
		pf,
	}
}

func TestStepZeroAllocSteadyState(t *testing.T) {
	spec := program.TestSpec()
	spec.PhaseIters = 8000 // spec maximum: far more instructions than the stepped cycles consume
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range allocCases() {
		fe := fe
		t.Run(fe.Name, func(t *testing.T) {
			cfg := testConfig(fe)
			// The budget must outlast every Step below: completion would
			// end the run mid-measurement and hide the property under test.
			cfg.MeasureInsts = 1 << 40
			s, err := New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm through the warmup->measure transition and every
			// transient growth phase (pools, memo, FIFO capacities).
			const warmCycles = 10_000
			for i := 0; i < warmCycles; i++ {
				if !s.Step() {
					t.Fatalf("simulation ended during warmup at cycle %d", i)
				}
			}
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < 200; i++ {
					if !s.Step() {
						t.Fatal("simulation ended during measurement")
					}
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Step allocated %.1f objects per 200-cycle batch, want 0", avg)
			}
		})
	}
}
