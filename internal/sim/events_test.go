package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// eventCases are the front-end shapes whose event streams we check. They
// cover every fetch mechanism and every rename mechanism.
var eventCases = []struct {
	name   string
	fetch  core.FetchKind
	rename core.RenameKind
}{
	{"W16", core.FetchSequential, core.RenameSequential},
	{"TC", core.FetchTraceCache, core.RenameSequential},
	{"PF", core.FetchParallel, core.RenameSequential},
	{"PR", core.FetchParallel, core.RenameParallel},
	{"PRd", core.FetchParallel, core.RenameDelayed},
}

// runWithEvents simulates one front-end with both a collecting and a
// counting sink attached and no warmup, so the event stream covers the
// whole measured run.
func runWithEvents(t *testing.T, fe core.Config) (*trace.CollectSink, *trace.CountSink, *Result) {
	t.Helper()
	spec := program.TestSpec()
	spec.PhaseIters = 500
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	collect := &trace.CollectSink{}
	count := &trace.CountSink{}
	cfg := testConfig(fe)
	cfg.WarmupInsts = 0
	cfg.MeasureInsts = 20_000
	cfg.Events = trace.TeeSink{collect, count}
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(collect.Events) == 0 {
		t.Fatal("no events emitted")
	}
	return collect, count, res
}

// TestEventOrderInvariants checks the causal ordering the pipeline
// guarantees: rename phase 1 precedes phase 2 for each fragment, no
// instruction commits without having been dispatched, commits retire in
// sequence order, and every squash carries a valid non-empty cause.
func TestEventOrderInvariants(t *testing.T) {
	for _, tc := range eventCases {
		t.Run(tc.name, func(t *testing.T) {
			collect, _, _ := runWithEvents(t, feConfig(tc.name, tc.fetch, tc.rename))

			phase1Seen := map[uint64]bool{}
			dispatched := map[uint64]bool{}
			lastCommit := uint64(0)
			haveCommit := false
			for i, ev := range collect.Events {
				if !ev.Kind.Valid() {
					t.Fatalf("event %d: invalid kind %d", i, ev.Kind)
				}
				switch ev.Kind {
				case trace.KindRenamePhase1:
					phase1Seen[ev.Frag] = true
				case trace.KindRenamePhase2:
					if !phase1Seen[ev.Frag] {
						t.Fatalf("event %d: phase 2 for fragment %d before its phase 1", i, ev.Frag)
					}
				case trace.KindDispatch:
					for s := ev.Seq; s < ev.Seq+uint64(ev.N); s++ {
						dispatched[s] = true
					}
				case trace.KindCommit:
					for s := ev.Seq; s < ev.Seq+uint64(ev.N); s++ {
						if !dispatched[s] {
							t.Fatalf("event %d: commit of seq %d without a dispatch", i, s)
						}
					}
					if haveCommit && ev.Seq <= lastCommit {
						t.Fatalf("event %d: commit seq %d not after previous commit %d", i, ev.Seq, lastCommit)
					}
					lastCommit, haveCommit = ev.Seq+uint64(ev.N)-1, true
				case trace.KindSquash:
					if !ev.Cause.Valid() || ev.Cause == trace.CauseNone {
						t.Fatalf("event %d: squash with cause %v", i, ev.Cause)
					}
				}
			}
			if !haveCommit {
				t.Fatal("no commit events recorded")
			}
		})
	}
}

// TestEventCountsMatchStats cross-checks the event stream against the
// counters the simulator reports: the ops covered by fetch events equal
// Stats.Fetched, rename phase-2 coverage equals Stats.Renamed, commit
// events equal Result.Committed, and the pipeline funnel narrows
// monotonically (fetched >= renamed >= committed).
func TestEventCountsMatchStats(t *testing.T) {
	for _, tc := range eventCases {
		t.Run(tc.name, func(t *testing.T) {
			_, count, res := runWithEvents(t, feConfig(tc.name, tc.fetch, tc.rename))

			fetched := count.Ops[trace.KindFetch]
			renamed := count.Ops[trace.KindRenamePhase2]
			committed := count.Ops[trace.KindCommit]
			if fetched != res.FrontEnd.Fetched {
				t.Errorf("fetch events cover %d ops, stats say %d", fetched, res.FrontEnd.Fetched)
			}
			if renamed != res.FrontEnd.Renamed {
				t.Errorf("phase-2 events cover %d ops, stats say %d", renamed, res.FrontEnd.Renamed)
			}
			if committed != res.Committed {
				t.Errorf("commit events cover %d ops, result says %d", committed, res.Committed)
			}
			if fetched < renamed || renamed < committed {
				t.Errorf("pipeline funnel widened: fetched %d, renamed %d, committed %d",
					fetched, renamed, committed)
			}
			if count.Events[trace.KindFragPredict] == 0 {
				t.Error("no fragment-prediction events recorded")
			}
		})
	}
}

// TestHistogramsPopulated checks that the always-on metrics bundle actually
// observes the distributions during a run.
func TestHistogramsPopulated(t *testing.T) {
	_, _, res := runWithEvents(t, feConfig("PR", core.FetchParallel, core.RenameParallel))
	if res.Pipeline == nil {
		t.Fatal("Result.Pipeline is nil")
	}
	if n := res.Pipeline.FragLen.Count(); n == 0 {
		t.Error("fragment-length histogram is empty")
	}
	if n := res.Pipeline.BufResidency.Count(); n == 0 {
		t.Error("buffer-residency histogram is empty")
	}
	if res.Pipeline.FragLen.Max() > 32 {
		t.Errorf("implausible max fragment length %d", res.Pipeline.FragLen.Max())
	}
}
