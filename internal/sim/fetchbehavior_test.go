package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// loopProgram builds a counted loop whose body is `body` repeated, giving
// precise control over control-flow density for fetch-behaviour tests.
func loopProgram(t *testing.T, trips int32, bodyLen int, bodyGen func(i int) isa.Inst) *program.Program {
	t.Helper()
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RegZero, Imm: trips})
	head := len(insts)
	for i := 0; i < bodyLen; i++ {
		insts = append(insts, bodyGen(i))
	}
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -1})
	off := int32(head - (len(insts) + 1))
	insts = append(insts, isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: isa.RegZero, Imm: off})
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	p, err := program.FromInsts("loop", insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// alu generates independent adds (sources never written) so the back-end
// never limits fetch-behaviour measurements.
func alu(i int) isa.Inst {
	return isa.Inst{Op: isa.OpAdd, Rd: isa.Reg(4 + i%20), Rs1: 2, Rs2: 3}
}

func runOn(t *testing.T, p *program.Program, fe core.Config) *Result {
	t.Helper()
	cfg := testConfig(fe)
	cfg.WarmupInsts = 1000
	cfg.MeasureInsts = 20_000
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestW16StraightLineUtilization: on branch-sparse code (one taken branch
// per ~62 instructions), W16's only waste is line boundaries and loop
// back-edges — utilization should be high.
func TestW16StraightLineUtilization(t *testing.T) {
	p := loopProgram(t, 2000, 60, alu)
	r := runOn(t, p, feConfig("W16", core.FetchSequential, core.RenameSequential))
	t.Logf("straight-line W16: util %.2f, fetch %.2f/cyc", r.FrontEnd.SlotUtilization(), r.FrontEnd.FetchRate())
	if u := r.FrontEnd.SlotUtilization(); u < 0.80 {
		t.Errorf("utilization %.2f, want > 0.80 on straight-line code", u)
	}
	if r.IPC < 12 {
		t.Errorf("IPC %.2f: independent straight-line code should stream near full width", r.IPC)
	}
}

// TestW16TakenBranchUtilization: with a taken jump every 4 instructions,
// W16 fetches at most 4 per cycle — utilization near 4/16.
func TestW16TakenBranchUtilization(t *testing.T) {
	// Body: 3 ALU ops + a jump over one instruction, repeatedly.
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RegZero, Imm: 3000})
	head := len(insts)
	for g := 0; g < 8; g++ {
		base := len(insts)
		insts = append(insts, alu(0), alu(1), alu(2))
		insts = append(insts, isa.Inst{Op: isa.OpJ, Imm: program.WordTarget(base + 5)})
		insts = append(insts, alu(3)) // skipped
	}
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -1})
	off := int32(head - (len(insts) + 1))
	insts = append(insts, isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: isa.RegZero, Imm: off})
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	p, err := program.FromInsts("jumpy", insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := runOn(t, p, feConfig("W16", core.FetchSequential, core.RenameSequential))
	t.Logf("jumpy W16: util %.2f", r.FrontEnd.SlotUtilization())
	if u := r.FrontEnd.SlotUtilization(); u > 0.45 {
		t.Errorf("utilization %.2f, want < 0.45 with a taken jump every 4", u)
	}
}

// TestPFFetchesThroughTakenJumps: the same jumpy code barely slows the
// parallel sequencers, whose gather follows predicted addresses.
func TestPFFetchesThroughTakenJumps(t *testing.T) {
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: isa.RegZero, Imm: 3000})
	head := len(insts)
	for g := 0; g < 8; g++ {
		base := len(insts)
		insts = append(insts, alu(0), alu(1), alu(2))
		insts = append(insts, isa.Inst{Op: isa.OpJ, Imm: program.WordTarget(base + 5)})
		insts = append(insts, alu(3))
	}
	insts = append(insts, isa.Inst{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -1})
	off := int32(head - (len(insts) + 1))
	insts = append(insts, isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: isa.RegZero, Imm: off})
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	p, err := program.FromInsts("jumpy", insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	w16 := runOn(t, p, feConfig("W16", core.FetchSequential, core.RenameSequential))
	pf := runOn(t, p, feConfig("PF", core.FetchParallel, core.RenameSequential))
	t.Logf("jumpy: W16 IPC %.2f (util %.2f), PF IPC %.2f (buffer reuse %.2f)",
		w16.IPC, w16.FrontEnd.SlotUtilization(), pf.IPC, pf.BufferReuseRate)
	// W16 is capped near 4 IPC by the taken jump every 4 instructions;
	// the parallel front-end, serving the tiny loop from its fragment
	// buffers and gathering across jumps, is not.
	if pf.IPC < 1.8*w16.IPC {
		t.Errorf("PF IPC %.2f should dwarf W16 %.2f on taken-branch-dense code", pf.IPC, w16.IPC)
	}
}

// TestTCHitsOnTightLoop: a loop fitting a handful of fragments should hit
// the trace cache nearly always after warmup.
func TestTCHitsOnTightLoop(t *testing.T) {
	p := loopProgram(t, 3000, 20, alu)
	r := runOn(t, p, feConfig("TC", core.FetchTraceCache, core.RenameSequential))
	t.Logf("tight loop TC: hit rate %.3f", r.TCHitRate)
	if r.TCHitRate < 0.95 {
		t.Errorf("TC hit rate %.3f, want > 0.95 on a tight loop", r.TCHitRate)
	}
}

// TestPFBufferReuseOnTightLoop: a loop whose latch lands after the eighth
// instruction of its fragment has STABLE fragment boundaries (the latch
// terminates the fragment every iteration), so the loop is served almost
// entirely from fragment-buffer reuse, barely touching the I-cache. Body
// length 24 makes the iteration 26 instructions: fragments of 16 and 10.
func TestPFBufferReuseOnTightLoop(t *testing.T) {
	p := loopProgram(t, 3000, 24, alu)
	r := runOn(t, p, feConfig("PF", core.FetchParallel, core.RenameSequential))
	t.Logf("tight loop PF: reuse %.3f", r.BufferReuseRate)
	if r.BufferReuseRate < 0.8 {
		t.Errorf("buffer reuse %.3f, want > 0.8 on a stable-boundary loop", r.BufferReuseRate)
	}
}

// TestReuseCollapsesWithManyFragments: when the dynamic stream cycles
// through more distinct fragments than there are buffers (a benchmark with
// many workers touched round-robin), reuse collapses — the tiny trace cache
// effect only holds for working sets of <= 16 fragments.
func TestReuseCollapsesWithManyFragments(t *testing.T) {
	// A long straight-line run of ~90 fragments per iteration: far more
	// than 16 buffers can hold.
	p := loopProgram(t, 300, 1400, alu)
	r := runOn(t, p, feConfig("PF", core.FetchParallel, core.RenameSequential))
	t.Logf("large-body loop PF: reuse %.3f", r.BufferReuseRate)
	if r.BufferReuseRate > 0.3 {
		t.Errorf("reuse %.3f unexpectedly high with ~90 live fragments", r.BufferReuseRate)
	}
}

// TestPerfectPredictionNoRedirects: a loop with a single, perfectly
// learnable back-edge should settle to essentially no redirects.
func TestPerfectPredictionNoRedirects(t *testing.T) {
	p := loopProgram(t, 3000, 30, alu)
	r := runOn(t, p, feConfig("PR", core.FetchParallel, core.RenameParallel))
	perKilo := float64(r.FrontEnd.Redirects) / float64(r.Committed) * 1000
	t.Logf("loop PR: %.2f redirects per 1000 instructions", perKilo)
	if perKilo > 5 {
		t.Errorf("%.2f redirects/kinst on a perfectly periodic loop", perKilo)
	}
}
