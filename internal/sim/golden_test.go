package sim

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/backend"
	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TestCommittedStreamMatchesOracle is the simulator's golden correctness
// property: whatever the front-end speculates — wrong paths, buffer reuse,
// live-out squashes, redirects — the committed instruction stream must be
// exactly the program's functional execution, for every front-end.
func TestCommittedStreamMatchesOracle(t *testing.T) {
	spec := program.TestSpec()
	spec.PhaseIters = 40
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Reference stream from the functional emulator.
	m := emu.New(p)
	var want []uint64
	for !m.Halted() {
		d, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, d.PC)
	}
	t.Logf("program length: %d dynamic instructions", len(want))

	cases := []struct {
		name         string
		fetch        core.FetchKind
		rename       core.RenameKind
		switchOnMiss bool
	}{
		{"W16", core.FetchSequential, core.RenameSequential, false},
		{"TC", core.FetchTraceCache, core.RenameSequential, false},
		{"PF", core.FetchParallel, core.RenameSequential, false},
		{"PR", core.FetchParallel, core.RenameParallel, false},
		{"TC+PR", core.FetchTraceCache, core.RenameParallel, false},
		{"PRd", core.FetchParallel, core.RenameDelayed, false},
		{"PF+som", core.FetchParallel, core.RenameSequential, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []uint64
			fe := feConfig(tc.name, tc.fetch, tc.rename)
			fe.SwitchOnMiss = tc.switchOnMiss
			cfg := testConfig(fe)
			cfg.WarmupInsts = 0
			cfg.MeasureInsts = int64(len(want)) + 1000
			cfg.CommitHook = func(op *backend.Op) { got = append(got, op.PC) }
			if _, err := Run(p, cfg); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("committed %d instructions, oracle has %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("commit %d: PC %#x, oracle %#x", i, got[i], want[i])
				}
			}
		})
	}
}

// TestNoWrongPathCommits double-checks that squashed ops never reach the
// commit hook.
func TestNoWrongPathCommits(t *testing.T) {
	spec := program.TestSpec()
	spec.PhaseIters = 100
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(feConfig("PR", core.FetchParallel, core.RenameParallel))
	cfg.CommitHook = func(op *backend.Op) {
		if op.WrongPath {
			t.Fatalf("wrong-path op committed at PC %#x", op.PC)
		}
	}
	if _, err := Run(p, cfg); err != nil {
		t.Fatal(err)
	}
}
