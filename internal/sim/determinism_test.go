package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/parallel-frontend/pfe/internal/core"
	"github.com/parallel-frontend/pfe/internal/metrics"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// The golden determinism suite pins every front-end configuration's Result —
// counters, rates, histograms and the full pipeline event stream — against
// testdata/golden_determinism.json, which was recorded from the seed
// (pre-pooling) implementation. Any state leaked across cycles, fragments or
// simulations by the reuse paths shows up here as a bit-level diff.
//
// Regenerate (only when an intentional simulation-behaviour change is made):
//
//	go test ./internal/sim -run TestGoldenDeterminism -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_determinism.json from the current implementation")

const goldenPath = "testdata/golden_determinism.json"

// goldenConfigs returns every front-end mechanism the paper evaluates, in a
// fixed order: the W16 baseline, trace caches, parallel fetch with 2 and 4
// sequencers, parallel and delayed rename, and the TC+PR hybrid.
func goldenConfigs() []core.Config {
	mk := func(name string, fetch core.FetchKind, ren core.RenameKind, nseq, wseq int) core.Config {
		cfg := feConfig(name, fetch, ren)
		if fetch == core.FetchParallel {
			cfg.Sequencers, cfg.SeqWidth = nseq, wseq
		}
		if ren == core.RenameParallel || ren == core.RenameDelayed {
			cfg.Renamers, cfg.RenWidth = nseq, wseq
		}
		return cfg
	}
	cfgs := []core.Config{
		mk("W16", core.FetchSequential, core.RenameSequential, 0, 0),
		mk("TC", core.FetchTraceCache, core.RenameSequential, 0, 0),
		mk("PF-2x8w", core.FetchParallel, core.RenameSequential, 2, 8),
		mk("PF-4x4w", core.FetchParallel, core.RenameSequential, 4, 4),
		mk("PF-8x2w", core.FetchParallel, core.RenameSequential, 8, 2),
		mk("PR-2x8w", core.FetchParallel, core.RenameParallel, 2, 8),
		mk("PR-4x4w", core.FetchParallel, core.RenameParallel, 4, 4),
		mk("PRd-2x8w", core.FetchParallel, core.RenameDelayed, 2, 8),
		mk("TC+PR-2x8w", core.FetchTraceCache, core.RenameParallel, 2, 8),
	}
	// TC2x: double the trace cache against the same workload.
	tc2 := mk("TC2x", core.FetchTraceCache, core.RenameSequential, 0, 0)
	tc2.TraceCache = 64 << 10
	cfgs = append(cfgs, tc2)
	return cfgs
}

// goldenWorkloads returns the fixed-seed programs the suite runs. Both are
// fully deterministic builds: same seed, same code image, same data image.
func goldenWorkloads(t testing.TB) map[string]*program.Program {
	t.Helper()
	ws := map[string]*program.Program{}
	spec := program.TestSpec()
	spec.PhaseIters = 2000
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ws["testspec"] = p

	gcc, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	pg, err := program.Build(gcc)
	if err != nil {
		t.Fatal(err)
	}
	ws["gcc"] = pg
	return ws
}

// eventHasher folds every pipeline event into an FNV-1a stream hash: equal
// simulations produce equal (count, hash) pairs, and any reordering, dropped
// or altered event changes the hash.
type eventHasher struct {
	n    int64
	hash uint64
}

func (h *eventHasher) Emit(e trace.Event) {
	h.n++
	const prime = 1099511628211
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h.hash ^= v & 0xff
			h.hash *= prime
			v >>= 8
		}
	}
	if h.hash == 0 {
		h.hash = 14695981039346656037
	}
	mix(e.Cycle)
	mix(uint64(e.Kind))
	mix(e.Seq)
	mix(e.Frag)
	mix(e.PC)
	mix(uint64(uint16(e.Lane)))
	mix(uint64(uint32(e.N)))
	mix(uint64(e.Cause))
	mix(e.Arg)
}

// histRecord serializes one histogram bit-exactly.
type histRecord struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets"`
}

func recordHist(h *metrics.Histogram) histRecord {
	r := histRecord{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
	for i := 0; i <= h.NumBuckets(); i++ {
		_, _, c := h.Bucket(i)
		r.Buckets = append(r.Buckets, c)
	}
	return r
}

// goldenRecord is one (config, workload) cell. Floats are stored as IEEE-754
// bit patterns so the comparison is bit-identical, not epsilon-based.
type goldenRecord struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`

	Cycles    uint64 `json:"cycles"`
	Committed int64  `json:"committed"`
	IPCBits   uint64 `json:"ipc_bits"`

	FrontEnd core.Stats `json:"front_end"`

	FragPredAccuracyBits uint64 `json:"frag_pred_accuracy_bits"`
	L1IMissRateBits      uint64 `json:"l1i_miss_rate_bits"`
	L1DMissRateBits      uint64 `json:"l1d_miss_rate_bits"`
	TCHitRateBits        uint64 `json:"tc_hit_rate_bits"`
	BufferReuseRateBits  uint64 `json:"buffer_reuse_rate_bits"`

	FragLen      histRecord `json:"frag_len"`
	BufResidency histRecord `json:"buf_residency"`
	SquashDepth  histRecord `json:"squash_depth"`

	EventCount int64  `json:"event_count"`
	EventHash  uint64 `json:"event_hash"`
}

func runGoldenCell(t testing.TB, fe core.Config, workload string, p *program.Program) goldenRecord {
	t.Helper()
	hasher := &eventHasher{}
	cfg := testConfig(fe)
	cfg.Events = hasher
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", fe.Name, workload, err)
	}
	return goldenRecord{
		Config:               fe.Name,
		Workload:             workload,
		Cycles:               r.Cycles,
		Committed:            r.Committed,
		IPCBits:              math.Float64bits(r.IPC),
		FrontEnd:             r.FrontEnd,
		FragPredAccuracyBits: math.Float64bits(r.FragPredAccuracy),
		L1IMissRateBits:      math.Float64bits(r.L1IMissRate),
		L1DMissRateBits:      math.Float64bits(r.L1DMissRate),
		TCHitRateBits:        math.Float64bits(r.TCHitRate),
		BufferReuseRateBits:  math.Float64bits(r.BufferReuseRate),
		FragLen:              recordHist(r.Pipeline.FragLen),
		BufResidency:         recordHist(r.Pipeline.BufResidency),
		SquashDepth:          recordHist(r.Pipeline.SquashDepth),
		EventCount:           hasher.n,
		EventHash:            hasher.hash,
	}
}

func TestGoldenDeterminism(t *testing.T) {
	workloads := goldenWorkloads(t)
	names := []string{"testspec", "gcc"}

	var got []goldenRecord
	for _, cfg := range goldenConfigs() {
		for _, wname := range names {
			got = append(got, runGoldenCell(t, cfg, wname, workloads[wname]))
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to record): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Config != g.Config || w.Workload != g.Workload {
			t.Fatalf("record %d: cell mismatch: golden %s/%s vs run %s/%s",
				i, w.Config, w.Workload, g.Config, g.Workload)
		}
		if diff := diffRecords(w, g); diff != "" {
			t.Errorf("%s/%s diverges from the pinned implementation:\n%s", w.Config, w.Workload, diff)
		}
	}
}

// diffRecords renders a field-by-field diff (empty when bit-identical).
func diffRecords(w, g goldenRecord) string {
	var diff string
	add := func(field string, want, got any) {
		diff += fmt.Sprintf("  %-24s golden=%v got=%v\n", field, want, got)
	}
	if w.Cycles != g.Cycles {
		add("Cycles", w.Cycles, g.Cycles)
	}
	if w.Committed != g.Committed {
		add("Committed", w.Committed, g.Committed)
	}
	if w.IPCBits != g.IPCBits {
		add("IPC", math.Float64frombits(w.IPCBits), math.Float64frombits(g.IPCBits))
	}
	if w.FrontEnd != g.FrontEnd {
		add("FrontEnd", w.FrontEnd, g.FrontEnd)
	}
	if w.FragPredAccuracyBits != g.FragPredAccuracyBits {
		add("FragPredAccuracy", math.Float64frombits(w.FragPredAccuracyBits), math.Float64frombits(g.FragPredAccuracyBits))
	}
	if w.L1IMissRateBits != g.L1IMissRateBits {
		add("L1IMissRate", math.Float64frombits(w.L1IMissRateBits), math.Float64frombits(g.L1IMissRateBits))
	}
	if w.L1DMissRateBits != g.L1DMissRateBits {
		add("L1DMissRate", math.Float64frombits(w.L1DMissRateBits), math.Float64frombits(g.L1DMissRateBits))
	}
	if w.TCHitRateBits != g.TCHitRateBits {
		add("TCHitRate", math.Float64frombits(w.TCHitRateBits), math.Float64frombits(g.TCHitRateBits))
	}
	if w.BufferReuseRateBits != g.BufferReuseRateBits {
		add("BufferReuseRate", math.Float64frombits(w.BufferReuseRateBits), math.Float64frombits(g.BufferReuseRateBits))
	}
	hists := []struct {
		name string
		w, g histRecord
	}{
		{"FragLen", w.FragLen, g.FragLen},
		{"BufResidency", w.BufResidency, g.BufResidency},
		{"SquashDepth", w.SquashDepth, g.SquashDepth},
	}
	for _, h := range hists {
		if h.w.Count != h.g.Count || h.w.Sum != h.g.Sum || h.w.Max != h.g.Max || !equalInt64s(h.w.Buckets, h.g.Buckets) {
			add(h.name, h.w, h.g)
		}
	}
	if w.EventCount != g.EventCount {
		add("EventCount", w.EventCount, g.EventCount)
	}
	if w.EventHash != g.EventHash {
		add("EventHash", w.EventHash, g.EventHash)
	}
	return diff
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenRepeatability runs the same cell twice in one process and
// demands bit-identical results — the direct check that nothing (pools,
// free-lists, predictor state) leaks from one simulation into the next.
func TestGoldenRepeatability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := program.TestSpec()
	spec.PhaseIters = 2000
	p1, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range goldenConfigs() {
		a := runGoldenCell(t, cfg, "testspec", p1)
		b := runGoldenCell(t, cfg, "testspec", p2)
		if diff := diffRecords(a, b); diff != "" {
			t.Errorf("%s: two identical runs diverge (state leaked between sims):\n%s", cfg.Name, diff)
		}
	}
}
