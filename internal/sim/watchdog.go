package sim

import (
	"fmt"
	"io"
	"os"

	"github.com/parallel-frontend/pfe/internal/trace"
)

// DefaultNoProgressCycles is the forward-progress watchdog threshold used
// when Config.NoProgressCycles is zero: a run that commits nothing for this
// many consecutive cycles is declared stalled.
const DefaultNoProgressCycles = 200_000

// DiagVersion versions the stall-diagnostic dump header so tooling (and the
// golden tests) can detect format changes.
const DiagVersion = 1

// Diag is the diagnostic bundle captured when the forward-progress watchdog
// trips (deadlock / livelock / MaxCycles): enough machine state to explain
// *why* the pipeline stopped, without re-running the cell under a debugger.
type Diag struct {
	Reason    string // "no-progress" or "max-cycles"
	Config    string // front-end configuration name
	Bench     string // benchmark name
	Cycle     uint64 // cycle the watchdog tripped on
	Committed int64  // instructions committed so far (warmup included)

	// Per-stage occupancy at the moment of the trip.
	Window       int    // back-end window entries in flight
	BuffersInUse int    // fragment buffers currently allocated (parallel fetch)
	Drained      bool   // front-end had no unrenamed ops queued
	BackendHead  string // oldest in-flight op (the likely blocker)
	Pending      string // pending stream redirect, or "none"

	// Front-end progress counters (whole run).
	Fetched, Renamed, Redirects int64

	// Fragment predictor state: predictions generated and correct over the
	// whole run.
	FragPredGenerated, FragPredCorrect int64

	// Flight recorder contents: the last events retained by the ring
	// (oldest first), plus lifetime totals.
	Events        []trace.Event
	EventsTotal   uint64
	EventsDropped uint64
}

// Render writes the diagnostic as a readable dump: a fixed "key: value"
// header (stable field names, golden-checked by tests) followed by the
// flight-recorder tail.
func (d *Diag) Render(w io.Writer) error {
	fmt.Fprintf(w, "pfe stall diagnostic v%d\n", DiagVersion)
	fmt.Fprintf(w, "reason: %s\n", d.Reason)
	fmt.Fprintf(w, "config: %s\n", d.Config)
	fmt.Fprintf(w, "bench: %s\n", d.Bench)
	fmt.Fprintf(w, "cycle: %d\n", d.Cycle)
	fmt.Fprintf(w, "committed: %d\n", d.Committed)
	fmt.Fprintf(w, "window-occupancy: %d\n", d.Window)
	fmt.Fprintf(w, "frag-buffers-in-use: %d\n", d.BuffersInUse)
	fmt.Fprintf(w, "frontend-drained: %v\n", d.Drained)
	fmt.Fprintf(w, "pending-redirect: %s\n", d.Pending)
	fmt.Fprintf(w, "backend-head: %s\n", d.BackendHead)
	fmt.Fprintf(w, "fetched: %d\n", d.Fetched)
	fmt.Fprintf(w, "renamed: %d\n", d.Renamed)
	fmt.Fprintf(w, "redirects: %d\n", d.Redirects)
	fmt.Fprintf(w, "frag-pred: %d/%d correct\n", d.FragPredCorrect, d.FragPredGenerated)
	fmt.Fprintf(w, "flight-recorder: %d retained / %d total (%d dropped)\n",
		len(d.Events), d.EventsTotal, d.EventsDropped)
	if len(d.Events) > 0 {
		fmt.Fprintf(w, "--- last events (oldest first) ---\n")
		if err := trace.WriteText(w, d.Events); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the dump to path (mode 0644).
func (d *Diag) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StallError is the error a run ends with when the forward-progress
// watchdog trips. It wraps the one-line description the harness logs and
// carries the full diagnostic bundle for callers that want to dump it
// (errors.As(&stall) from any layer above).
type StallError struct {
	Reason string // "no-progress" or "max-cycles"
	Diag   *Diag
	msg    string
}

// Error returns the one-line description.
func (e *StallError) Error() string { return e.msg }

// stall captures the diagnostic bundle for the current machine state and
// wraps it in a StallError. It also counts the trip in the live telemetry.
func (s *Sim) stall(reason, msg string) *StallError {
	d := &Diag{
		Reason:      reason,
		Config:      s.cfg.FrontEnd.Name,
		Bench:       s.p.Name,
		Cycle:       s.now,
		Committed:   s.be.Committed(),
		Window:      s.be.InFlight(),
		Drained:     s.fe.Drained(),
		BackendHead: s.be.DebugHead(),
		Pending:     "none",
	}
	if pend := s.stream.Pending(); pend != nil {
		d.Pending = fmt.Sprintf("culprit=%d", pend.CulpritSeq)
	}
	if pool := s.fe.Pool(); pool != nil {
		d.BuffersInUse = pool.InUseCount()
	}
	st := s.fe.Stats()
	d.Fetched, d.Renamed, d.Redirects = st.Fetched, st.Renamed, st.Redirects
	d.FragPredGenerated, d.FragPredCorrect = s.stream.Accuracy()
	if s.ring != nil {
		d.Events = s.ring.Tail(s.ring.Cap())
		d.EventsTotal = s.ring.Total()
		d.EventsDropped = s.ring.Dropped()
	}
	if s.cfg.Obs != nil {
		s.cfg.Obs.WatchdogTrips.Inc()
	}
	return &StallError{Reason: reason, Diag: d, msg: msg}
}
