package artifact

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/program"
)

// seekAndCompare positions one reader via Seek(at) and another by stepping a
// fresh reader from zero, then drains both in lockstep for n instructions.
// This is the contract every sampling window and slice boundary relies on:
// a seek is indistinguishable from a from-zero replay advanced to the same
// sequence index.
func seekAndCompare(t *testing.T, tape *Tape, at, n uint64) {
	t.Helper()
	sought := tape.NewReader()
	if err := sought.Seek(at); err != nil {
		t.Fatalf("Seek(%d): %v", at, err)
	}
	if got := sought.Pos(); got != at && at < tape.Len() {
		t.Fatalf("Seek(%d): Pos() = %d", at, got)
	}
	walked := tape.NewReader()
	for walked.Pos() < at && !walked.Halted() {
		if _, err := walked.Step(); err != nil {
			t.Fatalf("walk to %d: %v", at, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if walked.Halted() != sought.Halted() {
			t.Fatalf("seek %d + %d: halted walked=%v sought=%v", at, i, walked.Halted(), sought.Halted())
		}
		if walked.Halted() {
			break
		}
		want, werr := walked.Step()
		got, gerr := sought.Step()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("seek %d + %d: err walked=%v sought=%v", at, i, werr, gerr)
		}
		if werr != nil {
			break
		}
		if got != want {
			t.Fatalf("seek %d + %d: diverged:\n walked %+v\n sought %+v", at, i, want, got)
		}
	}
}

// TestTapeSeekBitIdentical seeks to positions straddling every interesting
// boundary — block starts, mid-block, the recorded end, past the end — on a
// truncated recording of each suite benchmark, and requires the sought
// reader to produce the identical stream a from-zero walk produces.
func TestTapeSeekBitIdentical(t *testing.T) {
	for _, name := range program.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := program.SpecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := program.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			const budget = 3 * IndexStride
			tape, err := Record(p, budget)
			if err != nil {
				t.Fatal(err)
			}
			targets := []uint64{
				0, 1, 17,
				IndexStride - 1, IndexStride, IndexStride + 1,
				2*IndexStride + 100,
				tape.Len() - 1, tape.Len(), // last recorded inst; live fallback
				tape.Len() + 500, // deep into the fallback region
			}
			for _, at := range targets {
				seekAndCompare(t, tape, at, 600)
			}
		})
	}
}

// TestTapeSeekHalted covers seeks on a recording that reached OpHalt: in-tape
// positions replay exactly, and seeks at or past the end land the reader in
// the halted end-of-stream state instead of engaging the live fallback.
func TestTapeSeekHalted(t *testing.T) {
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tape.Halted() {
		t.Fatalf("test spec should halt within the budget (recorded %d)", tape.Len())
	}
	seekAndCompare(t, tape, 0, tape.Len()+10)
	seekAndCompare(t, tape, tape.Len()/2, tape.Len())
	seekAndCompare(t, tape, tape.Len()-1, 10)
	for _, at := range []uint64{tape.Len(), tape.Len() + 99} {
		r := tape.NewReader()
		if err := r.Seek(at); err != nil {
			t.Fatalf("Seek(%d) on halted tape: %v", at, err)
		}
		if !r.Halted() {
			t.Fatalf("Seek(%d) on halted tape: not halted", at)
		}
	}
	if got := tape.FallbackSteps(); got != 0 {
		t.Fatalf("halted-tape seeks used the live fallback: %d steps", got)
	}
}

// TestTapeSeekBackward rewinds a reader that has already advanced and checks
// the rebuilt cursor replays the earlier region identically — slices and
// sampling windows reuse one reader across non-monotonic positions.
func TestTapeSeekBackward(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 2*IndexStride)
	if err != nil {
		t.Fatal(err)
	}
	r := tape.NewReader()
	if err := r.Seek(IndexStride + 700); err != nil {
		t.Fatal(err)
	}
	first := make([]emu.DynInst, 50)
	for i := range first {
		d, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		first[i] = d
	}
	if err := r.Seek(IndexStride + 700); err != nil {
		t.Fatalf("backward Seek: %v", err)
	}
	for i := range first {
		d, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d != first[i] {
			t.Fatalf("replay after backward seek diverged at +%d:\n first  %+v\n second %+v", i, first[i], d)
		}
	}
}

// TestTapeSeekAllocs is the steady-state allocation guard for the seek +
// fast-forward path: positioning a reader anywhere inside the recording must
// not allocate, matching the replay guarantee Step already pins.
func TestTapeSeekAllocs(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 4*IndexStride)
	if err != nil {
		t.Fatal(err)
	}
	r := tape.NewReader()
	targets := []uint64{IndexStride / 2, 3*IndexStride + 1000, 100, 2 * IndexStride}
	allocs := testing.AllocsPerRun(20, func() {
		for _, at := range targets {
			if err := r.Seek(at); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if _, err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("in-tape seek + fast-forward allocates %.1f objects/run, want 0", allocs)
	}
}

// FuzzTapeSeekReplay feeds random seek offsets (including past-the-end and
// backward positions) into a truncated recording and requires the sought
// reader to replay bit-identically to a from-zero replay advanced to the
// same instruction index.
func FuzzTapeSeekReplay(f *testing.F) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		f.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		f.Fatal(err)
	}
	tape, err := Record(p, 2*IndexStride+137)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(IndexStride), uint64(IndexStride-1))
	f.Add(tape.Len()-1, tape.Len()+50)
	f.Add(uint64(123456789), uint64(42))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		// Bound fallback fast-forwards so a huge random offset doesn't
		// emulate for minutes; in-tape offsets are used as-is.
		const span = 4 * IndexStride
		a %= span
		b %= span
		r := tape.NewReader()
		ref := tape.NewReader()
		for _, at := range []uint64{a, b} { // second seek exercises reuse + backward
			if err := r.Seek(at); err != nil {
				t.Fatalf("Seek(%d): %v", at, err)
			}
			if err := ref.Seek(0); err != nil {
				t.Fatal(err)
			}
			for ref.Pos() < at && !ref.Halted() {
				if _, err := ref.Step(); err != nil {
					t.Fatalf("walk to %d: %v", at, err)
				}
			}
			for i := 0; i < 64; i++ {
				if r.Halted() != ref.Halted() {
					t.Fatalf("seek %d + %d: halted sought=%v walked=%v", at, i, r.Halted(), ref.Halted())
				}
				if r.Halted() {
					break
				}
				got, gerr := r.Step()
				want, werr := ref.Step()
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("seek %d + %d: err sought=%v walked=%v", at, i, gerr, werr)
				}
				if werr != nil {
					break
				}
				if got != want {
					t.Fatalf("seek %d + %d: diverged:\n walked %+v\n sought %+v", at, i, want, got)
				}
			}
		}
	})
}
