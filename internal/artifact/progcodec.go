package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// The on-disk program format (version 1): a JSON header carrying the
// metadata and generator spec, then the raw encoded code image and the
// initialised data segment. The decoded instruction slice is not stored —
// it is reconstructed by the same isa.DecodeImage the generator validates
// against, so the image byte string is the single source of truth and a
// decoded program is structurally identical to a freshly built one.
//
// Layout, all little-endian:
//
//	magic "PFEP" | u32 version | u32 headerLen | header JSON
//	u32 imageLen | image bytes | u32 dataLen | data bytes
const (
	progMagic   = "PFEP"
	progVersion = 1
)

type progHeader struct {
	Name     string       `json:"name"`
	Input    string       `json:"input"`
	EntryPC  uint64       `json:"entry_pc"`
	DataSize int          `json:"data_size"`
	Spec     program.Spec `json:"spec"`
}

// EncodeProgram serializes a built program image for the persistent store.
func EncodeProgram(p *program.Program) ([]byte, error) {
	hdr, err := json.Marshal(progHeader{
		Name: p.Name, Input: p.Input, EntryPC: p.EntryPC, DataSize: p.DataSize, Spec: p.Spec,
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding program header: %w", err)
	}
	var out bytes.Buffer
	out.WriteString(progMagic)
	le32(&out, progVersion)
	le32(&out, uint32(len(hdr)))
	out.Write(hdr)
	le32(&out, uint32(len(p.Image)))
	out.Write(p.Image)
	le32(&out, uint32(len(p.Data)))
	out.Write(p.Data)
	return out.Bytes(), nil
}

// DecodeProgram reconstructs a program image from its stored encoding,
// re-decoding the instruction stream from the image bytes and re-running the
// generator's structural validation, so a corrupted-but-checksum-passing
// blob still cannot smuggle an invalid program into a simulation.
func DecodeProgram(data []byte) (*program.Program, error) {
	if len(data) < 12 || string(data[:4]) != progMagic {
		return nil, fmt.Errorf("artifact: bad program frame")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != progVersion {
		return nil, fmt.Errorf("artifact: program format version %d, want %d", v, progVersion)
	}
	off := 8
	next := func() ([]byte, error) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("artifact: program frame truncated")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n > len(data) {
			return nil, fmt.Errorf("artifact: program frame truncated")
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	hdrBytes, err := next()
	if err != nil {
		return nil, err
	}
	var hdr progHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("artifact: decoding program header: %w", err)
	}
	image, err := next()
	if err != nil {
		return nil, err
	}
	dseg, err := next()
	if err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("artifact: program frame has %d trailing bytes", len(data)-off)
	}
	p := &program.Program{
		Name:     hdr.Name,
		Input:    hdr.Input,
		EntryPC:  hdr.EntryPC,
		DataSize: hdr.DataSize,
		Spec:     hdr.Spec,
		// Copy out of the caller's buffer: programs live for the whole
		// sweep, and unlike tape sections they are written to by nobody,
		// but the backing store mapping may be unmapped at Close.
		Image: append([]byte(nil), image...),
		Data:  append([]byte(nil), dseg...),
	}
	p.Code = isa.DecodeImage(p.Image)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: stored program failed validation: %w", err)
	}
	return p, nil
}
