package artifact

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TestProgramCodecRoundTrip encodes and decodes every suite benchmark's built
// image and requires the decoded program to be structurally identical and to
// emulate bit-identically to the original.
func TestProgramCodecRoundTrip(t *testing.T) {
	for _, name := range program.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := program.SpecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := program.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := EncodeProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeProgram(enc)
			if err != nil {
				t.Fatalf("DecodeProgram: %v", err)
			}
			switch {
			case dec.Name != p.Name, dec.Input != p.Input:
				t.Fatalf("identity differs: %s/%s != %s/%s", dec.Name, dec.Input, p.Name, p.Input)
			case dec.EntryPC != p.EntryPC:
				t.Fatalf("entry PC %#x != %#x", dec.EntryPC, p.EntryPC)
			case dec.DataSize != p.DataSize:
				t.Fatalf("data size %d != %d", dec.DataSize, p.DataSize)
			case !reflect.DeepEqual(dec.Spec, p.Spec):
				t.Fatalf("spec differs:\n got  %+v\n want %+v", dec.Spec, p.Spec)
			case !bytes.Equal(dec.Image, p.Image):
				t.Fatalf("code image differs (%d vs %d bytes)", len(dec.Image), len(p.Image))
			case !bytes.Equal(dec.Data, p.Data):
				t.Fatalf("data segment differs (%d vs %d bytes)", len(dec.Data), len(p.Data))
			case len(dec.Code) != len(p.Code):
				t.Fatalf("decoded instruction count %d != %d", len(dec.Code), len(p.Code))
			}
			// The decoded program must drive the emulator exactly like the
			// original — the functional definition of "same program".
			drainBoth(t, name, emu.New(p), emu.New(dec), 2_000)
		})
	}
}

// TestProgramCodecDetectsCorruption feeds structurally damaged encodings to
// DecodeProgram; every one must be rejected. (Payload bit flips that leave
// the frame intact are the store checksum's job — see the store's corruption
// battery — so this table only covers the codec's own framing.)
func TestProgramCodecDetectsCorruption(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-magic", func(b []byte) []byte { return b[:2] }},
		{"truncated-header-len", func(b []byte) []byte { return b[:10] }},
		{"truncated-mid-header", func(b []byte) []byte { return b[:20] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[4] ^= 0xff; return b }},
		{"corrupt-header-json", func(b []byte) []byte { b[12] ^= 0xff; return b }},
		{"oversized-section-len", func(b []byte) []byte {
			for i := 8; i < 12; i++ {
				b[i] = 0xff
			}
			return b
		}},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0x00) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.corrupt(append([]byte(nil), enc...))
			if dec, err := DecodeProgram(mut); err == nil {
				t.Fatalf("corrupted encoding decoded without error (%s)", dec.Name)
			}
		})
	}
	if _, err := DecodeProgram(enc); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}
}
