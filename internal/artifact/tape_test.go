package artifact

import (
	"errors"
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/program"
)

// drainBoth steps a live machine and a tape reader in lockstep for up to n
// instructions, failing on the first divergence. Returns how many
// instructions both produced.
func drainBoth(t *testing.T, name string, live, replay emu.Oracle, n uint64) uint64 {
	t.Helper()
	var i uint64
	for ; i < n; i++ {
		if live.Halted() != replay.Halted() {
			t.Fatalf("%s: seq %d: halted live=%v replay=%v", name, i, live.Halted(), replay.Halted())
		}
		if live.Halted() {
			break
		}
		want, werr := live.Step()
		got, gerr := replay.Step()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: seq %d: err live=%v replay=%v", name, i, werr, gerr)
		}
		if werr != nil {
			break
		}
		if got != want {
			t.Fatalf("%s: seq %d: replay diverged:\n live  %+v\n replay %+v", name, i, want, got)
		}
	}
	return i
}

// TestTapeReplayBitIdentical replays every suite benchmark against the live
// emulator and requires the identical DynInst stream, including the region
// past the recorded end (the live-fallback path) and post-halt behaviour.
func TestTapeReplayBitIdentical(t *testing.T) {
	for _, name := range program.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := program.SpecByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := program.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			const budget = 20_000
			tape, err := Record(p, budget)
			if err != nil {
				t.Fatal(err)
			}
			// Drain past the tape's end so the fallback region is compared
			// too.
			drainBoth(t, name, emu.New(p), tape.NewReader(), budget+5_000)
		})
	}
}

// TestTapeReplayHalt runs the halting miniature benchmark to completion on
// both paths: same stream, same halt point, same post-halt errors.
func TestTapeReplayHalt(t *testing.T) {
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tape.Halted() {
		t.Fatalf("test spec should halt within the recording budget (recorded %d)", tape.Len())
	}
	live, replay := emu.New(p), tape.NewReader()
	n := drainBoth(t, "testspec", live, replay, 2_000_000)
	if n != tape.Len() {
		t.Fatalf("replayed %d instructions, tape recorded %d", n, tape.Len())
	}
	if !replay.Halted() || !live.Halted() {
		t.Fatalf("halted: live=%v replay=%v", live.Halted(), replay.Halted())
	}
	if _, err := replay.Step(); !errors.Is(err, emu.ErrHalted) {
		t.Fatalf("Step after halt: got %v, want ErrHalted", err)
	}
	if tape.FallbackSteps() != 0 {
		t.Fatalf("halting replay used the fallback: %d steps", tape.FallbackSteps())
	}
}

// TestTapeFallbackCounts verifies that reading past a truncated recording
// both stays bit-identical (covered above) and is visible in the fallback
// counter.
func TestTapeFallbackCounts(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	n := drainBoth(t, "gcc-truncated", emu.New(p), tape.NewReader(), 3_000)
	if n != 3_000 {
		t.Fatalf("drained %d instructions, want 3000", n)
	}
	if got := tape.FallbackSteps(); got != 2_000 {
		t.Fatalf("FallbackSteps = %d, want 2000", got)
	}
}

// TestTapeCompactness pins the point of the delta encoding: the tape must
// stay well under a byte per recorded instruction (a raw DynInst is 48).
func TestTapeCompactness(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50_000
	tape, err := Record(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	perInst := float64(tape.Bytes()) / float64(tape.Len())
	if perInst >= 1.5 {
		t.Fatalf("tape costs %.2f bytes/instruction (%d bytes for %d insts); encoding regressed",
			perInst, tape.Bytes(), tape.Len())
	}
	t.Logf("tape: %d insts in %d bytes (%.3f bytes/inst)", tape.Len(), tape.Bytes(), perInst)
}

// TestTapeReplayAllocsLessThanLive is the steady-state allocation guard:
// serving a cell's oracle from a shared tape must allocate less than live
// emulation, which pays for a fresh data segment and stack every run.
func TestTapeReplayAllocsLessThanLive(t *testing.T) {
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5_000
	tape, err := Record(p, steps)
	if err != nil {
		t.Fatal(err)
	}
	replayAllocs := testing.AllocsPerRun(10, func() {
		r := tape.NewReader()
		for i := 0; i < steps; i++ {
			if _, err := r.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	liveAllocs := testing.AllocsPerRun(10, func() {
		m := emu.New(p)
		for i := 0; i < steps; i++ {
			if _, err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if replayAllocs >= liveAllocs {
		t.Fatalf("tape replay allocates %.0f objects/run, live emulation %.0f; replay should be cheaper",
			replayAllocs, liveAllocs)
	}
	t.Logf("allocs/run: replay %.0f, live %.0f", replayAllocs, liveAllocs)
}
