package artifact

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/parallel-frontend/pfe/internal/program"
)

// tapeCodecHeaderLen is the fixed tape-frame header: magic, version, startPC,
// count, halted, blockSize, three per-section block counts. Bytes past it
// (the block table and payload) are individually guarded by per-block CRCs;
// the header itself is guarded by the store's whole-blob checksum.
const tapeCodecHeaderLen = 4 + 4 + 8 + 8 + 1 + 4 + 4*tapeNumSecs

// tapeStructEqual compares every stored field of two tapes (the program
// pointer is external input to DecodeTape and deliberately excluded).
func tapeStructEqual(a, b *Tape) error {
	switch {
	case a.startPC != b.startPC:
		return fmt.Errorf("startPC %#x != %#x", a.startPC, b.startPC)
	case a.count != b.count:
		return fmt.Errorf("count %d != %d", a.count, b.count)
	case a.halted != b.halted:
		return fmt.Errorf("halted %v != %v", a.halted, b.halted)
	case !bytes.Equal(a.taken, b.taken):
		return fmt.Errorf("taken sections differ (%d vs %d bytes)", len(a.taken), len(b.taken))
	case !bytes.Equal(a.aux, b.aux):
		return fmt.Errorf("aux sections differ (%d vs %d bytes)", len(a.aux), len(b.aux))
	case len(a.index) != len(b.index):
		return fmt.Errorf("index has %d points vs %d", len(a.index), len(b.index))
	}
	for i := range a.index {
		if a.index[i] != b.index[i] {
			return fmt.Errorf("index point %d: %+v != %+v", i, a.index[i], b.index[i])
		}
	}
	return nil
}

// recordSuiteTape builds the named benchmark and records budget instructions.
func recordSuiteTape(tb testing.TB, name string, budget uint64) (*program.Program, *Tape) {
	tb.Helper()
	spec, err := program.SpecByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := program.Build(spec)
	if err != nil {
		tb.Fatal(err)
	}
	tape, err := Record(p, budget)
	if err != nil {
		tb.Fatal(err)
	}
	return p, tape
}

// TestTapeCodecRoundTrip encodes and decodes a truncated recording of every
// suite benchmark and requires the decoded tape to be structurally identical
// and to replay bit-identically — including past the recorded end, where the
// live fallback takes over — and to honor the seek contract.
func TestTapeCodecRoundTrip(t *testing.T) {
	for _, name := range program.SuiteNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			const budget = 2*IndexStride + 137
			p, tape := recordSuiteTape(t, name, budget)
			enc := EncodeTape(tape)
			dec, err := DecodeTape(enc, p)
			if err != nil {
				t.Fatalf("DecodeTape: %v", err)
			}
			if err := tapeStructEqual(tape, dec); err != nil {
				t.Fatalf("decoded tape differs: %v", err)
			}
			// Replay equivalence, original as the reference oracle, through
			// the fallback region.
			drainBoth(t, name, tape.NewReader(), dec.NewReader(), budget+500)
			// Seek-vs-serial on the decoded tape across block boundaries.
			for _, at := range []uint64{0, 1, IndexStride - 1, IndexStride, IndexStride + 1, dec.Len() - 1, dec.Len() + 100} {
				seekAndCompare(t, dec, at, 300)
			}
			t.Logf("%s: %d insts, %d bytes framed (%.3f bytes/inst)",
				name, tape.Len(), len(enc), float64(len(enc))/float64(tape.Len()))
		})
	}
}

// TestTapeCodecHaltedRoundTrip round-trips a recording that reached OpHalt:
// the halt must survive the codec and the decoded replay must end exactly
// where the original does, with no live fallback engaged.
func TestTapeCodecHaltedRoundTrip(t *testing.T) {
	p, err := program.Build(program.TestSpec())
	if err != nil {
		t.Fatal(err)
	}
	tape, err := Record(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tape.Halted() {
		t.Fatalf("test spec should halt within the budget (recorded %d)", tape.Len())
	}
	dec, err := DecodeTape(EncodeTape(tape), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tapeStructEqual(tape, dec); err != nil {
		t.Fatalf("decoded tape differs: %v", err)
	}
	if !dec.Halted() {
		t.Fatal("halt flag lost in round trip")
	}
	n := drainBoth(t, "halted", tape.NewReader(), dec.NewReader(), 2*tape.Len())
	if n != tape.Len() {
		t.Fatalf("decoded replay drained %d instructions, want %d", n, tape.Len())
	}
	if dec.FallbackSteps() != 0 {
		t.Fatalf("decoded halting tape used the live fallback: %d steps", dec.FallbackSteps())
	}
}

// TestTapeCodecEmpty round-trips the degenerate zero-instruction recording
// (every section empty, no index points).
func TestTapeCodecEmpty(t *testing.T) {
	p, tape := recordSuiteTape(t, "gcc", 0)
	if tape.Len() != 0 {
		t.Fatalf("recorded %d instructions, want 0", tape.Len())
	}
	dec, err := DecodeTape(EncodeTape(tape), p)
	if err != nil {
		t.Fatalf("DecodeTape(empty): %v", err)
	}
	if err := tapeStructEqual(tape, dec); err != nil {
		t.Fatalf("decoded empty tape differs: %v", err)
	}
}

// TestTapeCodecCorruptionDetected drives targeted corruptions — truncation,
// header damage, block-table damage, payload bit flips, trailing garbage —
// through DecodeTape and requires every one to be rejected with an error,
// never a silently wrong tape.
func TestTapeCodecCorruptionDetected(t *testing.T) {
	p, tape := recordSuiteTape(t, "gcc", IndexStride+57)
	enc := EncodeTape(tape)
	if len(enc) <= tapeCodecHeaderLen+13 {
		t.Fatalf("encoding too small to corrupt meaningfully: %d bytes", len(enc))
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-magic", func(b []byte) []byte { return b[:3] }},
		{"truncated-header", func(b []byte) []byte { return b[:tapeCodecHeaderLen-1] }},
		{"truncated-table", func(b []byte) []byte { return b[:tapeCodecHeaderLen+5] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad-version", func(b []byte) []byte { b[4] ^= 0xff; return b }},
		{"zero-block-size", func(b []byte) []byte {
			for i := 25; i < 29; i++ {
				b[i] = 0
			}
			return b
		}},
		{"unknown-block-encoding", func(b []byte) []byte { b[tapeCodecHeaderLen] = 7; return b }},
		{"flipped-table-crc", func(b []byte) []byte { b[tapeCodecHeaderLen+9] ^= 0x01; return b }},
		{"flipped-payload-first", func(b []byte) []byte {
			// First payload byte: header + 13 bytes per table record.
			nblocks := 0
			for s := 0; s < tapeNumSecs; s++ {
				nblocks += int(uint32(b[29+4*s]) | uint32(b[29+4*s+1])<<8 | uint32(b[29+4*s+2])<<16 | uint32(b[29+4*s+3])<<24)
			}
			b[tapeCodecHeaderLen+13*nblocks] ^= 0x01
			return b
		}},
		{"flipped-payload-last", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.corrupt(append([]byte(nil), enc...))
			if dec, err := DecodeTape(mut, p); err == nil {
				t.Fatalf("corrupted encoding decoded without error (count=%d)", dec.Len())
			}
		})
	}
	// The pristine encoding must still decode — the corruptions above, not
	// some unrelated strictness, are what the errors detect.
	if _, err := DecodeTape(enc, p); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}
}

// FuzzTapeBlockCodec is the block-codec differential fuzz target. For a pool
// of real recordings (empty, tiny, multi-block, halted) it checks, per input:
//
//  1. encode → decode reproduces the tape exactly (every stored field);
//  2. a decoded tape's Seek(at) replays bit-identically to a serial walk to
//     the same position (the contract sampling windows rely on);
//  3. a one-byte corruption anywhere past the fixed header (block table or
//     payload — the region the codec's own checksums guard) is rejected.
func FuzzTapeBlockCodec(f *testing.F) {
	gccSpec, err := program.SpecByName("gcc")
	if err != nil {
		f.Fatal(err)
	}
	gcc, err := program.Build(gccSpec)
	if err != nil {
		f.Fatal(err)
	}
	halting, err := program.Build(program.TestSpec())
	if err != nil {
		f.Fatal(err)
	}
	type fixture struct {
		prog *program.Program
		tape *Tape
		enc  []byte
	}
	var fixtures []fixture
	for _, budget := range []uint64{0, 1, 137, IndexStride + 5, 2*IndexStride + 137} {
		tape, err := Record(gcc, budget)
		if err != nil {
			f.Fatal(err)
		}
		fixtures = append(fixtures, fixture{gcc, tape, EncodeTape(tape)})
	}
	ht, err := Record(halting, 1_000_000)
	if err != nil {
		f.Fatal(err)
	}
	fixtures = append(fixtures, fixture{halting, ht, EncodeTape(ht)})

	f.Add(uint8(0), uint64(0), uint64(0), byte(0))
	f.Add(uint8(4), uint64(IndexStride), uint64(100), byte(1))
	f.Add(uint8(4), uint64(2*IndexStride+136), uint64(9999), byte(0x80))
	f.Add(uint8(5), uint64(50), uint64(3), byte(0xff))
	f.Fuzz(func(t *testing.T, which uint8, at, mutOff uint64, mutXor byte) {
		fx := fixtures[int(which)%len(fixtures)]
		dec, err := DecodeTape(fx.enc, fx.prog)
		if err != nil {
			t.Fatalf("decoding pristine tape: %v", err)
		}
		if err := tapeStructEqual(fx.tape, dec); err != nil {
			t.Fatalf("round trip not identical: %v", err)
		}
		// Seek-vs-serial equivalence at a fuzzed offset, bounded just past
		// the recorded end so the live-fallback edge is reachable but cheap.
		at %= fx.tape.Len() + 64
		seekAndCompare(t, dec, at, 64)

		if mutXor != 0 && len(fx.enc) > tapeCodecHeaderLen {
			mut := append([]byte(nil), fx.enc...)
			off := tapeCodecHeaderLen + int(mutOff%uint64(len(mut)-tapeCodecHeaderLen))
			mut[off] ^= mutXor
			if dec2, err := DecodeTape(mut, fx.prog); err == nil {
				// The codec may only accept a mutation if it decodes to the
				// very same tape — anything else is a wrong artifact.
				if serr := tapeStructEqual(fx.tape, dec2); serr != nil {
					t.Fatalf("corruption at offset %d (xor %#x) decoded to a different tape: %v", off, mutXor, serr)
				}
				t.Fatalf("corruption at offset %d (xor %#x) not detected", off, mutXor)
			}
		}
	})
}
