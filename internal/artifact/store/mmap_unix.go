//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. The second return reports whether the bytes are
// a real mapping (and must eventually be munmap'd) as opposed to a heap copy.
// Reading through the mapping is zero-copy: tape replay on a warm hit touches
// only the pages the Reader walks. On Linux an entry evicted while mapped is
// simply unlinked — the mapping stays valid until munmap.
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Fall back to a plain read (some filesystems refuse mmap).
		buf := make([]byte, size)
		if _, rerr := f.ReadAt(buf, 0); rerr != nil {
			return nil, false, rerr
		}
		return buf, false, nil
	}
	return data, true, nil
}

func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}

// dirLock takes an exclusive advisory flock on path (creating it), blocking
// until the lock is granted, and returns the unlock function. flock is
// per-open-file, so concurrent opens within one process also serialize.
func dirLock(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
