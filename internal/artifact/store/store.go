// Package store is the persistent tier of the artifact cache: a disk-backed
// content-addressed object store under -artifact-dir that survives the
// process, so repeated sweeps, CI runs and -compare gates across process
// boundaries hit warm artifacts instead of rebuilding them.
//
// Layout of a store directory:
//
//	index.wal        CRC'd, fsynced JSONL journal of put/del records — the
//	                 durable source of truth for what the store holds,
//	                 replayed (and compacted) at Open
//	objects/<kind>/<key>   blob files, each framed with a length + CRC32
//	quarantine/      corrupt blobs moved aside for post-mortem, never served
//	tmp/             in-flight writes (crash leftovers are swept at Open)
//	locks/           advisory flock files for cross-process build dedup
//
// Durability discipline: a Put writes the framed blob to tmp/, fsyncs it,
// renames it into objects/ (atomic), fsyncs the directory, and only then
// appends the put record to the index journal. A crash at any point leaves
// either a tmp leftover or an un-journaled orphan, both of which Open sweeps
// — the journal never references a blob that is not fully durable. Every Get
// re-verifies the blob's frame and checksum before returning a byte; a
// mismatch quarantines the entry, so a corrupted store degrades to a cold
// cache, never to a wrong artifact.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/parallel-frontend/pfe/internal/journal"
	"github.com/parallel-frontend/pfe/internal/obs"
)

// Blob framing: every object file is magic | version | payload length |
// payload CRC32 | payload. The frame is what lets Get distinguish "this is
// the artifact that was put" from truncation, bit rot, or a foreign file.
const (
	blobMagic   = "PFEO"
	blobVersion = 1
	blobHeader  = 4 + 4 + 8 + 4
)

// walCompactFactor triggers index-journal compaction at Open when the
// journal holds this many times more records than live entries (dead del/dup
// records from previous runs' GC).
const walCompactFactor = 4

// indexRec is the journal's wire record: one put or del of a store entry.
type indexRec struct {
	Op    string `json:"op"` // "put" | "del"
	Kind  string `json:"kind,omitempty"`
	Key   string `json:"key"`
	Bytes int64  `json:"bytes,omitempty"`
}

// entry is one live object in the in-memory index.
type entry struct {
	kind, key string
	bytes     int64
	lastUse   int64 // in-process LRU clock (seeded from file mtime at Open)
}

// KindStats is one artifact kind's disk traffic.
type KindStats struct {
	Hits, Misses int64
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Dir      string
	Entries  int
	Bytes    int64
	MaxBytes int64

	Kinds map[string]KindStats

	Puts        int64
	PutErrors   int64
	Evictions   int64 // entries removed by GC under the byte budget
	Quarantined int64 // corrupt blobs moved aside
	Orphans     int64 // un-journaled files swept at Open
	TornTail    int64 // torn trailing journal records dropped at Open
	Rebuilt     bool  // index rebuilt from the directory (journal unreadable)
}

// Hits and Misses total the per-kind traffic.
func (s Stats) Hits() int64 {
	var n int64
	for _, k := range s.Kinds {
		n += k.Hits
	}
	return n
}

// Misses totals the per-kind miss counts.
func (s Stats) Misses() int64 {
	var n int64
	for _, k := range s.Kinds {
		n += k.Misses
	}
	return n
}

// Store is the persistent artifact store. All methods are safe for
// concurrent use, and every method is nil-safe (a nil *Store misses every
// lookup and drops every put), so callers thread an optional store without
// branching. Multiple processes may open the same directory concurrently:
// renames are atomic, journal appends are O_APPEND single writes, GC
// tolerates losing races, and BuildLock spans processes via flock.
type Store struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	wal      *journal.Writer
	entries  map[string]*entry
	bytes    int64
	seq      int64
	pins     map[string]int
	building map[string]bool
	maps     [][]byte
	closed   bool

	hits, misses map[string]int64
	puts         int64
	putErrors    int64
	evictions    int64
	quarantined  int64
	orphans      int64
	tornTail     int64
	rebuilt      bool
}

// Open opens (creating if needed) the store at dir, bounded to maxBytes of
// blob payloads (0 = unbounded). It replays the index journal, reconciles it
// against the objects directory — un-journaled orphans from a crash
// mid-put are swept, journaled entries whose file vanished are dropped — and
// compacts the journal when it has accumulated dead records. A journal
// corrupted at rest (not merely torn at the tail) is quarantined and the
// index rebuilt from the directory, every blob still guarded by its own
// checksum on Get.
func Open(dir string, maxBytes int64) (*Store, error) {
	for _, sub := range []string{"objects", "quarantine", "tmp", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
		pins:     map[string]int{},
		building: map[string]bool{},
		hits:     map[string]int64{},
		misses:   map[string]int64{},
	}
	unlock, err := dirLock(filepath.Join(dir, ".lock"))
	if err != nil {
		return nil, fmt.Errorf("store: locking %s: %w", dir, err)
	}
	defer unlock()

	// Sweep tmp leftovers: anything still here was a put that never renamed.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(filepath.Join(dir, "tmp", t.Name()))
		}
	}

	walPath := filepath.Join(dir, "index.wal")
	var fromWal []indexRec
	if _, err := os.Stat(walPath); err == nil {
		_, torn, err := journal.Scan(walPath, func(payload []byte) error {
			var r indexRec
			if err := json.Unmarshal(payload, &r); err != nil {
				return fmt.Errorf("store: index record: %w", err)
			}
			fromWal = append(fromWal, r)
			return nil
		})
		if err != nil {
			// Corrupt at rest: quarantine the journal and fall back to the
			// directory; the per-blob checksums still guard every Get.
			s.rebuilt = true
			fromWal = nil
			os.Rename(walPath, filepath.Join(dir, "quarantine",
				fmt.Sprintf("index.wal.%d", time.Now().UnixNano())))
		}
		s.tornTail = int64(torn)
	}

	// The journal is the source of truth; the directory tells us which
	// entries actually survived (and their recency, via mtime).
	type fileInfo struct {
		size  int64
		mtime int64
	}
	onDisk := map[string]fileInfo{}
	kinds, _ := os.ReadDir(filepath.Join(dir, "objects"))
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(dir, "objects", kd.Name()))
		for _, f := range files {
			fi, err := f.Info()
			if err != nil {
				continue
			}
			onDisk[kd.Name()+"/"+f.Name()] = fileInfo{size: fi.Size(), mtime: fi.ModTime().UnixNano()}
		}
	}

	if s.rebuilt {
		// No trustworthy journal: adopt every file present.
		for id, fi := range onDisk {
			kind, name, _ := strings.Cut(id, "/")
			s.entries[id] = &entry{kind: kind, key: name, bytes: fi.size - blobHeader, lastUse: fi.mtime}
		}
	} else {
		live := map[string]indexRec{}
		for _, r := range fromWal {
			id := r.Kind + "/" + sanitize(r.Key)
			switch r.Op {
			case "put":
				live[id] = r
			case "del":
				delete(live, id)
			}
		}
		for id, r := range live {
			fi, ok := onDisk[id]
			if !ok {
				continue // journaled but gone (GC'd by a racing process, or lost)
			}
			s.entries[id] = &entry{kind: r.Kind, key: r.Key, bytes: r.Bytes, lastUse: fi.mtime}
		}
		// Orphans: durable files whose put record never made the journal (a
		// crash between rename and append). The journal is authoritative, so
		// they are swept and will be rebuilt on demand.
		for id := range onDisk {
			if s.entries[id] == nil {
				os.Remove(filepath.Join(dir, "objects", filepath.FromSlash(id)))
				s.orphans++
			}
		}
	}
	for _, e := range s.entries {
		s.bytes += e.bytes
		if e.lastUse > s.seq {
			s.seq = e.lastUse
		}
	}
	s.seq++

	// Compact: rewrite the journal as one put per live entry when it carries
	// dead weight (dels, duplicate puts, a rebuild, or entries that vanished).
	if s.rebuilt || s.tornTail > 0 || len(fromWal) != len(s.entries) ||
		len(fromWal) > walCompactFactor*(len(s.entries)+1) {
		if err := s.compactLocked(walPath); err != nil {
			return nil, err
		}
	} else {
		w, err := journal.Create(walPath)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.wal = w
	}
	s.gcLocked()
	return s, nil
}

// compactLocked rewrites the index journal from the in-memory index (temp
// file + rename, so a crash mid-compaction keeps the old journal) and leaves
// the store appending to the fresh one.
func (s *Store) compactLocked(walPath string) error {
	tmp := filepath.Join(s.dir, "tmp", "index.wal.compact")
	os.Remove(tmp)
	w, err := journal.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compacting index: %w", err)
	}
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := s.entries[id]
		if err := w.Append(indexRec{Op: "put", Kind: e.kind, Key: e.key, Bytes: e.bytes}); err != nil {
			w.Close()
			return fmt.Errorf("store: compacting index: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("store: compacting index: %w", err)
	}
	if err := os.Rename(tmp, walPath); err != nil {
		return fmt.Errorf("store: compacting index: %w", err)
	}
	nw, err := journal.Create(walPath)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal = nw
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// sanitize maps a cache key to a filesystem-safe object name.
func sanitize(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		default:
			return '+'
		}
	}, key)
}

func (s *Store) objectPath(kind, key string) string {
	return filepath.Join(s.dir, "objects", kind, sanitize(key))
}

// Get returns the payload stored under (kind, key) and whether it was
// present and intact. The returned bytes are memory-mapped read-only where
// the platform supports it and stay valid until Close — callers may
// reference them zero-copy (the tape codec does) but must not write to
// them. A frame or checksum mismatch quarantines the blob and reports a
// miss: the store never returns bytes it cannot prove are the ones put.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := kind + "/" + sanitize(key)
	e := s.entries[id]
	if e == nil {
		s.misses[kind]++
		return nil, false
	}
	path := s.objectPath(kind, key)
	data, err := s.mapFileLocked(path)
	if err != nil {
		// Vanished underneath us (a racing process GC'd it): drop the entry.
		s.dropLocked(id, e, false)
		s.misses[kind]++
		return nil, false
	}
	payload, err := checkFrame(data)
	if err != nil {
		s.quarantineLocked(id, e, path)
		s.misses[kind]++
		return nil, false
	}
	s.hits[kind]++
	e.lastUse = s.seq
	s.seq++
	now := time.Now()
	os.Chtimes(path, now, now) // persist recency for cross-process LRU
	return payload, true
}

// Has reports whether (kind, key) is present in the index, without touching
// the blob (no checksum verification, no recency update).
func (s *Store) Has(kind, key string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[kind+"/"+sanitize(key)] != nil
}

// Put stores payload under (kind, key), replacing any previous blob. The
// write is durable (fsynced, atomically renamed, journaled) before Put
// returns nil. Put failures are counted but leave the store consistent —
// the entry simply stays absent.
func (s *Store) Put(kind, key string, payload []byte) error {
	if s == nil {
		return nil
	}
	framed := frame(payload)
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return s.putErr(fmt.Errorf("store: put %s/%s: %w", kind, key, err))
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(framed); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: put %s/%s: %w", kind, key, err))
	}
	final := s.objectPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: put %s/%s: %w", kind, key, err))
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return s.putErr(fmt.Errorf("store: put %s/%s: %w", kind, key, err))
	}
	syncDir(filepath.Dir(final))

	s.mu.Lock()
	defer s.mu.Unlock()
	id := kind + "/" + sanitize(key)
	if old := s.entries[id]; old != nil {
		s.bytes -= old.bytes
	}
	e := &entry{kind: kind, key: key, bytes: int64(len(payload)), lastUse: s.seq}
	s.seq++
	s.entries[id] = e
	s.bytes += e.bytes
	s.puts++
	if s.wal != nil {
		// The blob is durable; now make the index say so. A crash before
		// this append leaves an orphan that the next Open sweeps.
		if err := s.wal.Append(indexRec{Op: "put", Kind: kind, Key: key, Bytes: e.bytes}); err != nil {
			s.putErrors++
			return err
		}
	}
	s.gcLocked()
	return nil
}

func (s *Store) putErr(err error) error {
	s.mu.Lock()
	s.putErrors++
	s.mu.Unlock()
	return err
}

// Frame wraps payload in the store's blob frame (magic, version, length,
// CRC32). Exported for the fabric artifact plane: blobs travel the wire in
// the exact frame the store writes to disk, so a receiver re-verifies the
// same checksum the sender's store maintains.
func Frame(payload []byte) []byte { return frame(payload) }

// CheckFrame validates a blob frame and returns its payload. It is the
// receiving end of Frame: a truncated, bit-flipped or foreign transfer is
// rejected here before any byte of it is trusted.
func CheckFrame(data []byte) ([]byte, error) { return checkFrame(data) }

// frame wraps payload in the store's blob frame.
func frame(payload []byte) []byte {
	out := make([]byte, blobHeader+len(payload))
	copy(out, blobMagic)
	binary.LittleEndian.PutUint32(out[4:], blobVersion)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[blobHeader:], payload)
	return out
}

// checkFrame validates a blob frame and returns the payload.
func checkFrame(data []byte) ([]byte, error) {
	if len(data) < blobHeader || string(data[:4]) != blobMagic {
		return nil, fmt.Errorf("store: bad blob frame")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != blobVersion {
		return nil, fmt.Errorf("store: blob version %d", v)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if n != uint64(len(data)-blobHeader) {
		return nil, fmt.Errorf("store: blob length %d, frame says %d", len(data)-blobHeader, n)
	}
	payload := data[blobHeader:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[16:]) {
		return nil, fmt.Errorf("store: blob checksum mismatch")
	}
	return payload, nil
}

// quarantineLocked moves a corrupt blob aside and removes it from the index.
func (s *Store) quarantineLocked(id string, e *entry, path string) {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s-%s-%d", e.kind, sanitize(e.key), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarantined++
	s.dropLocked(id, e, true)
}

// Quarantine moves (kind, key) aside explicitly. The cache layer calls this
// when a blob passes the store checksum but fails semantic decoding — the
// entry must never be served again.
func (s *Store) Quarantine(kind, key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := kind + "/" + sanitize(key)
	e := s.entries[id]
	if e == nil {
		return
	}
	s.quarantineLocked(id, e, s.objectPath(kind, key))
}

// dropLocked removes an entry from the index (journaling the deletion when
// journal is true; file removal is the caller's business).
func (s *Store) dropLocked(id string, e *entry, journalIt bool) {
	delete(s.entries, id)
	s.bytes -= e.bytes
	if journalIt && s.wal != nil {
		s.wal.Append(indexRec{Op: "del", Kind: e.kind, Key: e.key})
	}
}

// Pin marks (kind, key) immune to GC until a matching Unpin; pins nest.
// Callers pin entries whose mapped bytes are referenced long-term.
func (s *Store) Pin(kind, key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.pins[kind+"/"+sanitize(key)]++
	s.mu.Unlock()
}

// Unpin releases one Pin.
func (s *Store) Unpin(kind, key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	id := kind + "/" + sanitize(key)
	if s.pins[id] > 1 {
		s.pins[id]--
	} else {
		delete(s.pins, id)
	}
	s.mu.Unlock()
}

// BuildLock serializes builds of (kind, key) across processes (advisory
// flock on a lock file) and marks the key in-flight so GC leaves it alone.
// It returns the unlock function; callers re-check the store after acquiring
// the lock, since another process may have completed the same build while
// they waited. On platforms without flock the lock degrades to the
// in-process mark (duplicate cross-process builds are wasteful, not wrong:
// both produce identical content-addressed artifacts).
func (s *Store) BuildLock(kind, key string) func() {
	if s == nil {
		return func() {}
	}
	id := kind + "/" + sanitize(key)
	s.mu.Lock()
	s.building[id] = true
	s.mu.Unlock()
	unlock, err := dirLock(filepath.Join(s.dir, "locks", sanitize(kind+"-"+key)+".lock"))
	return func() {
		if err == nil {
			unlock()
		}
		s.mu.Lock()
		delete(s.building, id)
		s.mu.Unlock()
	}
}

// GC evicts least-recently-used entries until the store is within its byte
// budget. Pinned and in-flight entries survive. Runs automatically after
// every Put; exported for tests and explicit maintenance.
func (s *Store) GC() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcLocked()
}

func (s *Store) gcLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type victim struct {
		id string
		e  *entry
	}
	var order []victim
	for id, e := range s.entries {
		if s.pins[id] > 0 || s.building[id] {
			continue
		}
		order = append(order, victim{id, e})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].e.lastUse != order[j].e.lastUse {
			return order[i].e.lastUse < order[j].e.lastUse
		}
		return order[i].id < order[j].id // deterministic tie-break
	})
	for _, v := range order {
		if s.bytes <= s.maxBytes {
			break
		}
		os.Remove(s.objectPath(v.e.kind, v.e.key))
		s.dropLocked(v.id, v.e, true)
		s.evictions++
	}
}

// mapFileLocked maps path read-only (or reads it on platforms without mmap)
// and retains the mapping until Close.
func (s *Store) mapFileLocked(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return []byte{}, nil
	}
	data, mapped, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, err
	}
	if mapped {
		s.maps = append(s.maps, data)
	}
	return data, nil
}

// Stats snapshots the store's traffic and footprint.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := map[string]KindStats{}
	for k, v := range s.hits {
		ks := kinds[k]
		ks.Hits = v
		kinds[k] = ks
	}
	for k, v := range s.misses {
		ks := kinds[k]
		ks.Misses = v
		kinds[k] = ks
	}
	return Stats{
		Dir:         s.dir,
		Entries:     len(s.entries),
		Bytes:       s.bytes,
		MaxBytes:    s.maxBytes,
		Kinds:       kinds,
		Puts:        s.puts,
		PutErrors:   s.putErrors,
		Evictions:   s.evictions,
		Quarantined: s.quarantined,
		Orphans:     s.orphans,
		TornTail:    s.tornTail,
		Rebuilt:     s.rebuilt,
	}
}

// Register exposes the store on an obs metrics registry as
// pfe_artifact_disk_* counters and gauges.
func (s *Store) Register(r *obs.Registry) {
	if s == nil || r == nil {
		return
	}
	for _, kind := range []string{"program", "tape", "result", "report"} {
		kind := kind
		r.CounterFunc("pfe_artifact_disk_hits_total",
			"Persistent artifact store hits by kind.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.hits[kind]) },
			"kind", kind)
		r.CounterFunc("pfe_artifact_disk_misses_total",
			"Persistent artifact store misses by kind.",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.misses[kind]) },
			"kind", kind)
	}
	r.GaugeFunc("pfe_artifact_disk_bytes",
		"Payload bytes held by the persistent artifact store.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.bytes) })
	r.GaugeFunc("pfe_artifact_disk_entries",
		"Live entries in the persistent artifact store.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.entries)) })
	r.CounterFunc("pfe_artifact_disk_evictions_total",
		"Entries evicted by the -artifact-disk byte budget (LRU).",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.evictions) })
	r.CounterFunc("pfe_artifact_disk_quarantines_total",
		"Corrupt blobs detected and quarantined.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.quarantined) })
	r.CounterFunc("pfe_artifact_disk_put_errors_total",
		"Failed attempts to persist an artifact.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.putErrors) })
}

// Close releases the store: the index journal is closed and every live
// mapping unmapped. Bytes returned by Get (and artifacts decoded zero-copy
// from them, such as tapes) must not be used after Close.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, m := range s.maps {
		if err := munmap(m); err != nil && first == nil {
			first = err
		}
	}
	s.maps = nil
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable (best-effort: some platforms reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
