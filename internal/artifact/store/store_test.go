package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/parallel-frontend/pfe/internal/journal"
)

// openT opens a store rooted in its own temp directory and arranges for it to
// be closed with the test.
func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// mustGet fetches (kind, key) and fails the test on a miss or a payload
// mismatch — the store must never return bytes other than the ones put.
func mustGet(t *testing.T, s *Store, kind, key string, want []byte) {
	t.Helper()
	got, ok := s.Get(kind, key)
	if !ok {
		t.Fatalf("Get(%s, %s): miss, want %d bytes", kind, key, len(want))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get(%s, %s): payload differs (%d vs %d bytes)", kind, key, len(got), len(want))
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	payloads := map[[2]string][]byte{
		{"program", "prog:abc123"}:       []byte("program image bytes"),
		{"tape", "tape:abc123:8000"}:     bytes.Repeat([]byte{0x5a}, 4096),
		{"result", "res:deadbeef"}:       []byte(`{"ipc":1.5}`),
		{"result", "empty"}:              {},
		{"report", "baseline:0011/wei*"}: []byte("sanitized key"),
	}
	for id, p := range payloads {
		if err := s.Put(id[0], id[1], p); err != nil {
			t.Fatalf("Put(%s, %s): %v", id[0], id[1], err)
		}
	}
	for id, p := range payloads {
		mustGet(t, s, id[0], id[1], p)
	}
	if _, ok := s.Get("tape", "absent"); ok {
		t.Fatal("Get of an absent key reported a hit")
	}
	st := s.Stats()
	if st.Puts != int64(len(payloads)) || st.Entries != len(payloads) {
		t.Fatalf("stats: puts=%d entries=%d, want %d/%d", st.Puts, st.Entries, len(payloads), len(payloads))
	}
	if st.Hits() != int64(len(payloads)) || st.Misses() != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want %d/1", st.Hits(), st.Misses(), len(payloads))
	}
	var wantBytes int64
	for _, p := range payloads {
		wantBytes += int64(len(p))
	}
	if st.Bytes != wantBytes {
		t.Fatalf("stats: bytes=%d, want %d", st.Bytes, wantBytes)
	}
}

func TestStoreReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir, 0)
	if err := s1.Put("tape", "k1", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("program", "k2", []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	st := s2.Stats()
	if st.Entries != 2 || st.Orphans != 0 || st.TornTail != 0 || st.Rebuilt {
		t.Fatalf("reopen stats: %+v", st)
	}
	mustGet(t, s2, "tape", "k1", []byte("first"))
	mustGet(t, s2, "program", "k2", []byte("second"))
}

// TestStoreOverwriteReplaces puts a second payload under the same key: the
// new bytes win, the byte accounting replaces (not accumulates) the old size.
func TestStoreOverwriteReplaces(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("tape", "k", bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tape", "k", []byte("short")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, "tape", "k", []byte("short"))
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("after overwrite: entries=%d bytes=%d, want 1/5", st.Entries, st.Bytes)
	}
}

// TestStoreOrphanSweep plants a durable-looking blob with no journal record —
// the signature of a crash between rename and journal append — and requires
// the next Open to sweep it while leaving journaled entries alone.
func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir, 0)
	if err := s1.Put("tape", "keep", []byte("journaled")); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	stray := filepath.Join(dir, "objects", "tape", "stray")
	if err := os.WriteFile(stray, frame([]byte("never journaled")), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	if st := s2.Stats(); st.Orphans != 1 || st.Entries != 1 {
		t.Fatalf("after orphan sweep: %+v", st)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("orphan file still present: %v", err)
	}
	mustGet(t, s2, "tape", "keep", []byte("journaled"))
	if _, ok := s2.Get("tape", "stray"); ok {
		t.Fatal("swept orphan served")
	}
}

// TestStoreVanishedEntryDropped removes a journaled blob's file behind the
// store's back (what a racing process's GC looks like): Open drops the entry,
// and the remaining one still serves.
func TestStoreVanishedEntryDropped(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir, 0)
	if err := s1.Put("tape", "gone", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("tape", "stays", []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if err := os.Remove(filepath.Join(dir, "objects", "tape", "gone")); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 0)
	if s2.Has("tape", "gone") {
		t.Fatal("vanished entry still indexed")
	}
	mustGet(t, s2, "tape", "stays", []byte("survivor"))
}

// TestStoreTmpSweep leaves an in-flight write in tmp/ (a crash mid-Put) and
// requires Open to clear it.
func TestStoreTmpSweep(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir, 0).Close()
	leftover := filepath.Join(dir, "tmp", "put-12345")
	if err := os.WriteFile(leftover, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	openT(t, dir, 0)
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatalf("tmp leftover survived Open: %v", err)
	}
}

// TestStoreWalCompaction accumulates dead journal weight (duplicate puts of
// one key) and checks the next Open rewrites the journal down to one record
// per live entry, without losing any of them.
func TestStoreWalCompaction(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir, 0)
	for i := 0; i < 10; i++ {
		if err := s1.Put("tape", "hot", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Put("tape", "other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2 := openT(t, dir, 0)
	mustGet(t, s2, "tape", "hot", []byte{9})
	mustGet(t, s2, "tape", "other", []byte("x"))
	s2.Close()
	records, torn, err := journal.Scan(filepath.Join(dir, "index.wal"), func([]byte) error { return nil })
	if err != nil || torn != 0 {
		t.Fatalf("scanning compacted journal: records=%d torn=%d err=%v", records, torn, err)
	}
	if records != 2 {
		t.Fatalf("compacted journal holds %d records, want 2 (one per live entry)", records)
	}
}

// TestStoreHasCountsNoTraffic: Has answers from the index without touching
// the blob or the hit/miss counters (the cache's double-count guard).
func TestStoreHasCountsNoTraffic(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("tape", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("tape", "k") || s.Has("tape", "nope") {
		t.Fatal("Has gave wrong answers")
	}
	if st := s.Stats(); st.Hits() != 0 || st.Misses() != 0 {
		t.Fatalf("Has moved traffic counters: hits=%d misses=%d", st.Hits(), st.Misses())
	}
}

// TestStoreSanitizedKeys round-trips keys containing filesystem-hostile
// characters through the object-name sanitizer.
func TestStoreSanitizedKeys(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	keys := []string{"a/b/../c", "res:hash:42", "spaces and\ttabs", "uniécode"}
	for i, k := range keys {
		if err := s.Put("result", k, []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		mustGet(t, s, "result", k, []byte{byte(i)})
	}
	// Every object must have landed inside objects/result — the sanitizer
	// must not let a key path-traverse out of the store.
	files, err := os.ReadDir(filepath.Join(dir, "objects", "result"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(keys) {
		t.Fatalf("objects/result holds %d files, want %d", len(files), len(keys))
	}
}

// TestStoreQuarantineExplicit: a semantic-decode failure (the cache layer's
// call) moves the blob aside and the entry is never served again.
func TestStoreQuarantineExplicit(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("tape", "bad", []byte("passes checksum, fails decode")); err != nil {
		t.Fatal(err)
	}
	s.Quarantine("tape", "bad")
	if _, ok := s.Get("tape", "bad"); ok {
		t.Fatal("quarantined entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("after quarantine: %+v", st)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: %d files, err %v", len(q), err)
	}
}

// TestStoreBuildLockSerializes: a second BuildLock on the same key must wait
// for the first holder's unlock (in-process and, via flock, cross-process).
func TestStoreBuildLockSerializes(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	unlock1 := s.BuildLock("tape", "k")
	acquired := make(chan struct{})
	go func() {
		unlock2 := s.BuildLock("tape", "k")
		close(acquired)
		unlock2()
	}()
	select {
	case <-acquired:
		t.Fatal("second BuildLock acquired while the first was held")
	case <-time.After(50 * time.Millisecond):
	}
	unlock1()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second BuildLock never acquired after unlock")
	}
}

// TestStoreNilSafe: every method on a nil *Store is a harmless no-op, the
// contract that lets callers thread an optional store without branching.
func TestStoreNilSafe(t *testing.T) {
	var s *Store
	if err := s.Put("tape", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("tape", "k"); ok {
		t.Fatal("nil store hit")
	}
	if s.Has("tape", "k") {
		t.Fatal("nil store Has")
	}
	s.Pin("tape", "k")
	s.Unpin("tape", "k")
	s.Quarantine("tape", "k")
	s.GC()
	s.BuildLock("tape", "k")()
	if s.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatal("nil store has entries")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCloseIdempotent(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	if err := s.Put("tape", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("tape", "k"); !ok {
		t.Fatal("miss")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
