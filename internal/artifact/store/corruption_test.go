package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The corruption battery: simulated crash damage and bit rot applied to blob
// files and to the index journal. The invariant under test is single:
// whatever the damage, the store detects it, degrades to a miss (quarantining
// the evidence), and NEVER returns bytes other than the ones that were put.

// damageFile applies fn to the file's contents in place.
func damageFile(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// blobDamage is the table of object-file corruptions. Each receives the full
// framed file contents and returns the damaged replacement.
var blobDamage = []struct {
	name string
	fn   func([]byte) []byte
}{
	{"truncate-half", func(b []byte) []byte { return b[:len(b)/2] }},
	{"truncate-mid-header", func(b []byte) []byte { return b[:7] }},
	{"truncate-empty", func(b []byte) []byte { return nil }},
	{"flip-magic", func(b []byte) []byte { b[0] ^= 0x01; return b }},
	{"flip-version", func(b []byte) []byte { b[5] ^= 0x01; return b }},
	{"flip-length", func(b []byte) []byte { b[9] ^= 0x01; return b }},
	{"flip-checksum", func(b []byte) []byte { b[17] ^= 0x01; return b }},
	{"flip-payload-first", func(b []byte) []byte { b[blobHeader] ^= 0x01; return b }},
	{"flip-payload-mid", func(b []byte) []byte { b[blobHeader+(len(b)-blobHeader)/2] ^= 0x80; return b }},
	{"flip-payload-last", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
	{"zero-page", func(b []byte) []byte {
		n := 4096
		if n > len(b) {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			b[i] = 0
		}
		return b
	}},
	{"zero-tail", func(b []byte) []byte {
		start := len(b) - 4096
		if start < 0 {
			start = 0
		}
		for i := start; i < len(b); i++ {
			b[i] = 0
		}
		return b
	}},
	{"append-garbage", func(b []byte) []byte { return append(b, bytes.Repeat([]byte{0xa5}, 64)...) }},
}

// TestStoreBlobCorruptionDetected corrupts a victim blob while the store is
// open: the very next Get must detect, quarantine and miss, while an intact
// sibling keeps serving its exact payload.
func TestStoreBlobCorruptionDetected(t *testing.T) {
	for _, d := range blobDamage {
		d := d
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, 0)
			victim := bytes.Repeat([]byte{0x42}, 8192)
			intact := []byte("the control payload")
			if err := s.Put("tape", "victim", victim); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("tape", "intact", intact); err != nil {
				t.Fatal(err)
			}
			damageFile(t, filepath.Join(dir, "objects", "tape", "victim"), d.fn)

			if got, ok := s.Get("tape", "victim"); ok {
				if !bytes.Equal(got, victim) {
					t.Fatalf("corrupted blob served WRONG bytes (%d of them)", len(got))
				}
				t.Fatalf("corrupted blob (%s) served", d.name)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("corruption not quarantined: %+v", st)
			}
			// Dropped from the index: the second lookup is a plain miss, no
			// double quarantine.
			if _, ok := s.Get("tape", "victim"); ok {
				t.Fatal("quarantined blob served on retry")
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("retry quarantined again: %+v", st)
			}
			mustGet(t, s, "tape", "intact", intact)
		})
	}
}

// TestStoreBlobCorruptionAcrossReopen applies the same damage table between
// process lifetimes (Close, corrupt, Open): the reopened store indexes the
// entry — the journal says it exists — but the first Get still detects and
// quarantines. Cold-vs-warm equality for the survivor is checked both ways.
func TestStoreBlobCorruptionAcrossReopen(t *testing.T) {
	for _, d := range blobDamage {
		d := d
		t.Run(d.name, func(t *testing.T) {
			dir := t.TempDir()
			s1 := openT(t, dir, 0)
			victim := bytes.Repeat([]byte{0x42}, 8192)
			intact := []byte("the control payload")
			if err := s1.Put("tape", "victim", victim); err != nil {
				t.Fatal(err)
			}
			if err := s1.Put("tape", "intact", intact); err != nil {
				t.Fatal(err)
			}
			mustGet(t, s1, "tape", "victim", victim)
			s1.Close()

			damageFile(t, filepath.Join(dir, "objects", "tape", "victim"), d.fn)
			s2 := openT(t, dir, 0)
			if got, ok := s2.Get("tape", "victim"); ok {
				if !bytes.Equal(got, victim) {
					t.Fatalf("corrupted blob served WRONG bytes after reopen")
				}
				t.Fatalf("corrupted blob (%s) served after reopen", d.name)
			}
			if st := s2.Stats(); st.Quarantined != 1 {
				t.Fatalf("corruption not quarantined after reopen: %+v", st)
			}
			mustGet(t, s2, "tape", "intact", intact)
		})
	}
}

// walStore seeds a store with n entries and returns the expected payloads.
func walStore(t *testing.T, dir string, n int) map[string][]byte {
	t.Helper()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
		payload := bytes.Repeat([]byte{byte(i)}, 100+i)
		if err := s.Put("tape", key, payload); err != nil {
			t.Fatal(err)
		}
		want[key] = payload
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// checkServes asserts every present key serves exactly its original payload
// and returns how many of the wanted keys were served.
func checkServes(t *testing.T, s *Store, want map[string][]byte) int {
	t.Helper()
	served := 0
	for key, payload := range want {
		got, ok := s.Get("tape", key)
		if !ok {
			continue
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("key %q served WRONG bytes", key)
		}
		served++
	}
	return served
}

// TestStoreWalTornTail simulates a crash mid-append: an undecodable final
// journal line. The torn record is dropped, everything before it survives.
func TestStoreWalTornTail(t *testing.T) {
	dir := t.TempDir()
	want := walStore(t, dir, 4)
	f, err := os.OpenFile(filepath.Join(dir, "index.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"00000000","d":{"op":"pu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := openT(t, dir, 0)
	st := s.Stats()
	if st.TornTail != 1 || st.Rebuilt {
		t.Fatalf("torn tail not reported as such: %+v", st)
	}
	if got := checkServes(t, s, want); got != len(want) {
		t.Fatalf("served %d/%d entries after torn tail", got, len(want))
	}
}

// TestStoreWalCorruptAtRest flips a byte in an *early* journal record (valid
// records follow, so this is bit rot, not a torn tail): the journal is
// quarantined and the index rebuilt from the directory, with every blob still
// integrity-checked on Get.
func TestStoreWalCorruptAtRest(t *testing.T) {
	dir := t.TempDir()
	want := walStore(t, dir, 6)
	damageFile(t, filepath.Join(dir, "index.wal"), func(b []byte) []byte {
		b[10] ^= 0xff // inside the first record's line
		return b
	})

	s := openT(t, dir, 0)
	st := s.Stats()
	if !st.Rebuilt {
		t.Fatalf("corrupt-at-rest journal did not trigger a rebuild: %+v", st)
	}
	// The rebuilt index adopts every durable blob, and each still serves its
	// exact payload.
	if got := checkServes(t, s, want); got != len(want) {
		t.Fatalf("served %d/%d entries after rebuild", got, len(want))
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) == 0 {
		t.Fatalf("corrupt journal not quarantined (err %v, %d files)", err, len(q))
	}
}

// TestStoreWalZeroed overwrites the whole journal with NULs (a lost page at
// the start of the file, nothing decodable after it). However Open classifies
// it, the outcome must be safe: the store opens, never serves wrong bytes,
// and remains usable for fresh puts.
func TestStoreWalZeroed(t *testing.T) {
	dir := t.TempDir()
	want := walStore(t, dir, 3)
	damageFile(t, filepath.Join(dir, "index.wal"), func(b []byte) []byte {
		return make([]byte, len(b))
	})

	s := openT(t, dir, 0)
	checkServes(t, s, want) // any hit must be exact; misses are fine
	if err := s.Put("tape", "fresh", []byte("post-damage put")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, "tape", "fresh", []byte("post-damage put"))
}

// TestStoreWalDeleted removes the journal outright. The journal is the source
// of truth, so the durable blobs are unreferenced (swept as orphans) and the
// store comes up cold — empty but consistent and usable.
func TestStoreWalDeleted(t *testing.T) {
	dir := t.TempDir()
	want := walStore(t, dir, 3)
	if err := os.Remove(filepath.Join(dir, "index.wal")); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, 0)
	st := s.Stats()
	if st.Entries != 0 || st.Orphans != int64(len(want)) {
		t.Fatalf("after journal loss: %+v, want 0 entries and %d orphans", st, len(want))
	}
	if got := checkServes(t, s, want); got != 0 {
		t.Fatalf("%d entries served from a journal-less store", got)
	}
	if err := s.Put("tape", "fresh", []byte("cold start")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, "tape", "fresh", []byte("cold start"))
}

// TestStoreWalZeroPageMidFile zeroes the first 4 KiB of a journal large
// enough that valid records follow the hole — corruption at rest, so the
// index must be rebuilt from the directory and every entry still serve
// exactly its payload.
func TestStoreWalZeroPageMidFile(t *testing.T) {
	dir := t.TempDir()
	want := walStore(t, dir, 120) // ~70 bytes per record: well past 4 KiB
	walPath := filepath.Join(dir, "index.wal")
	if fi, err := os.Stat(walPath); err != nil || fi.Size() < 5000 {
		t.Fatalf("journal too small for a mid-file hole: %v", err)
	}
	damageFile(t, walPath, func(b []byte) []byte {
		for i := 0; i < 4096; i++ {
			b[i] = 0
		}
		return b
	})

	s := openT(t, dir, 0)
	if st := s.Stats(); !st.Rebuilt {
		t.Fatalf("mid-file hole did not trigger a rebuild: %+v", st)
	}
	if got := checkServes(t, s, want); got != len(want) {
		t.Fatalf("served %d/%d entries after mid-file hole rebuild", got, len(want))
	}
}
