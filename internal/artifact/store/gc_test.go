package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestGCLRUOrder pins the eviction policy: with equal-size entries, the entry
// whose last touch is oldest goes first, and a Get refreshes recency.
func TestGCLRUOrder(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 300)
	pay := func(b byte) []byte { return bytes.Repeat([]byte{b}, 100) }
	for _, k := range []string{"A", "B", "C"} {
		if err := s.Put("tape", k, pay(k[0])); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(t, s, "tape", "A", pay('A')) // A is now more recent than B, C
	if err := s.Put("tape", "D", pay('D')); err != nil {
		t.Fatal(err)
	}
	if s.Has("tape", "B") {
		t.Fatal("LRU victim B survived")
	}
	for _, k := range []string{"A", "C", "D"} {
		if !s.Has("tape", k) {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes != 300 {
		t.Fatalf("after LRU eviction: %+v", st)
	}
}

// TestGCPinnedSurvives: a pinned entry is immune while pinned — even when it
// is the coldest entry and the store is over budget — and becomes an ordinary
// LRU victim again after Unpin.
func TestGCPinnedSurvives(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1000)
	big := bytes.Repeat([]byte{0xee}, 800)
	if err := s.Put("tape", "pinned", big); err != nil {
		t.Fatal(err)
	}
	s.Pin("tape", "pinned")
	for i := 0; i < 5; i++ {
		if err := s.Put("tape", fmt.Sprintf("filler-%d", i), bytes.Repeat([]byte{byte(i)}, 800)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Has("tape", "pinned") {
		t.Fatal("pinned entry evicted")
	}
	mustGet(t, s, "tape", "pinned", big)

	s.Unpin("tape", "pinned")
	// Two more puts: each is more recent than the ex-pinned entry (its Get
	// above predates them), so it is now the LRU victim.
	for i := 5; i < 7; i++ {
		if err := s.Put("tape", fmt.Sprintf("filler-%d", i), bytes.Repeat([]byte{byte(i)}, 800)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Has("tape", "pinned") {
		t.Fatal("unpinned entry not evicted as LRU victim")
	}
}

// TestGCInFlightSurvives: an entry whose key holds a BuildLock is treated as
// in-flight and spared, then reaped normally once the lock is released.
func TestGCInFlightSurvives(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1000)
	if err := s.Put("tape", "building", bytes.Repeat([]byte{1}, 800)); err != nil {
		t.Fatal(err)
	}
	unlock := s.BuildLock("tape", "building")
	for i := 0; i < 4; i++ {
		if err := s.Put("tape", fmt.Sprintf("filler-%d", i), bytes.Repeat([]byte{byte(i)}, 800)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Has("tape", "building") {
		t.Fatal("in-flight entry evicted while its BuildLock was held")
	}
	unlock()
	for i := 4; i < 6; i++ {
		if err := s.Put("tape", fmt.Sprintf("filler-%d", i), bytes.Repeat([]byte{byte(i)}, 800)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Has("tape", "building") {
		t.Fatal("released entry not evicted")
	}
}

// TestGCOversizeEntry documents the budget's hard edge: a single entry larger
// than the whole budget is evicted by the Put that stored it — the store
// degrades to no reuse, never to a budget overrun.
func TestGCOversizeEntry(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 100)
	if err := s.Put("tape", "huge", bytes.Repeat([]byte{1}, 500)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Bytes > 100 || st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("oversize entry kept the store over budget: %+v", st)
	}
}

// TestGCRandomizedProperty is the GC property test: a randomized put/get
// battery against a small byte budget, with invariants checked after every
// operation and the whole surviving state cross-checked against a fresh Open.
//
// Invariants:
//   - with no pins and no builds in flight, the store never sits over budget
//     after a Put returns;
//   - a Get only ever returns the exact last payload put under that key;
//   - after reopen, the index and the objects directory agree entry for
//     entry, and every survivor still serves its exact payload.
func TestGCRandomizedProperty(t *testing.T) {
	const (
		budget = 10_000
		keys   = 30
		ops    = 400
	)
	dir := t.TempDir()
	s := openT(t, dir, budget)
	rng := rand.New(rand.NewSource(1))
	expect := map[string][]byte{} // last payload put per key
	var puts int
	for op := 0; op < ops; op++ {
		key := fmt.Sprintf("key-%02d", rng.Intn(keys))
		if rng.Intn(10) < 7 {
			payload := make([]byte, 100+rng.Intn(2900))
			rng.Read(payload)
			if err := s.Put("tape", key, payload); err != nil {
				t.Fatalf("op %d: Put(%s): %v", op, key, err)
			}
			expect[key] = payload
			puts++
		} else if got, ok := s.Get("tape", key); ok {
			if !bytes.Equal(got, expect[key]) {
				t.Fatalf("op %d: Get(%s) returned wrong bytes", op, key)
			}
		}
		if st := s.Stats(); st.Bytes > budget {
			t.Fatalf("op %d: store over budget: %d > %d", op, st.Bytes, budget)
		}
	}
	st := s.Stats()
	if st.Puts != int64(puts) || st.PutErrors != 0 {
		t.Fatalf("battery stats: %+v, want %d clean puts", st, puts)
	}
	if st.Evictions == 0 {
		t.Fatal("battery never triggered GC; budget too generous for the test to mean anything")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cross-process agreement: reopen and audit index vs directory vs content.
	s2 := openT(t, dir, budget)
	st2 := s2.Stats()
	if st2.Orphans != 0 || st2.Rebuilt || st2.TornTail != 0 {
		t.Fatalf("reopen after battery found damage: %+v", st2)
	}
	var files int
	var diskBytes int64
	for _, kd := range []string{"tape"} {
		ents, err := os.ReadDir(filepath.Join(dir, "objects", kd))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			files++
			diskBytes += fi.Size() - blobHeader
		}
	}
	if files != st2.Entries || diskBytes != st2.Bytes {
		t.Fatalf("index/directory disagree: %d files (%d bytes) vs %d entries (%d bytes)",
			files, diskBytes, st2.Entries, st2.Bytes)
	}
	if st2.Bytes > budget {
		t.Fatalf("reopened store over budget: %d > %d", st2.Bytes, budget)
	}
	served := 0
	for key, payload := range expect {
		got, ok := s2.Get("tape", key)
		if !ok {
			continue // evicted — fine
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("survivor %s serves wrong bytes after reopen", key)
		}
		served++
	}
	if served != st2.Entries {
		t.Fatalf("served %d survivors but index holds %d", served, st2.Entries)
	}
	t.Logf("battery: %d puts, %d evictions, %d survivors at %d/%d bytes",
		puts, st.Evictions, served, st2.Bytes, budget)
}
