//go:build !unix

package store

import "os"

// Non-unix fallback: no mmap (plain reads) and no advisory locks. Without
// flock, cross-process build dedup degrades to duplicate work — both
// processes produce identical content-addressed artifacts, so the store
// stays correct, just less efficient.

func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, false, err
	}
	return buf, false, nil
}

func munmap(b []byte) error { return nil }

func dirLock(path string) (func(), error) {
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644); err == nil {
		f.Close()
	}
	return func() {}, nil
}
