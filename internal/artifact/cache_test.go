package artifact

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/program"
)

func gccSpec(t *testing.T) program.Spec {
	t.Helper()
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCacheSingleFlight hammers one key from many goroutines: everyone gets
// the same shared *Program, and the build ran exactly once (one miss, the
// rest hits).
func TestCacheSingleFlight(t *testing.T) {
	c := New(0)
	spec := gccSpec(t)
	const n = 16
	progs := make([]*program.Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Program(spec)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different *Program than caller 0", i)
		}
	}
	s := c.Stats()
	if s.ProgramMisses != 1 || s.ProgramHits != n-1 {
		t.Fatalf("program traffic: %d misses / %d hits, want 1 / %d", s.ProgramMisses, s.ProgramHits, n-1)
	}
}

// TestCacheTapeSharesProgram verifies the tape build goes through the same
// cache for its program, and tape bytes are accounted separately.
func TestCacheTapeSharesProgram(t *testing.T) {
	c := New(0)
	spec := gccSpec(t)
	tape1, err := c.Tape(spec, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	tape2, err := c.Tape(spec, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if tape1 != tape2 {
		t.Fatal("same (spec, budget) returned distinct tapes")
	}
	s := c.Stats()
	if s.TapeMisses != 1 || s.TapeHits != 1 {
		t.Fatalf("tape traffic: %d misses / %d hits, want 1 / 1", s.TapeMisses, s.TapeHits)
	}
	if s.ProgramMisses != 1 {
		t.Fatalf("tape recording should have built the program once, got %d misses", s.ProgramMisses)
	}
	if s.TapeBytes <= 0 || s.TapeBytes >= s.Bytes {
		t.Fatalf("tape bytes accounting: tape=%d total=%d", s.TapeBytes, s.Bytes)
	}
}

// TestCacheLRUEviction fills a tiny cache with results and checks the cap
// holds, oldest-first, while the most recent entry always survives.
func TestCacheLRUEviction(t *testing.T) {
	c := New(1024)
	for i := 0; i < 8; i++ {
		c.PutResult(fmt.Sprintf("k%d", i), i, 256)
	}
	s := c.Stats()
	if s.Bytes > 1024 {
		t.Fatalf("cache holds %d bytes, cap is 1024", s.Bytes)
	}
	if s.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", s.Evictions)
	}
	if _, ok := c.GetResult("k0"); ok {
		t.Fatal("oldest entry k0 survived eviction")
	}
	if v, ok := c.GetResult("k7"); !ok || v.(int) != 7 {
		t.Fatalf("newest entry k7 missing (ok=%v v=%v)", ok, v)
	}
}

// TestCacheResultRoundTrip covers the memoization surface incl. the miss
// counter and the keep-first semantics.
func TestCacheResultRoundTrip(t *testing.T) {
	c := New(0)
	if _, ok := c.GetResult("cell"); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutResult("cell", "first", 100)
	c.PutResult("cell", "second", 100)
	v, ok := c.GetResult("cell")
	if !ok || v.(string) != "first" {
		t.Fatalf("got (%v, %v), want (first, true)", v, ok)
	}
	s := c.Stats()
	if s.ResultMisses != 1 || s.ResultHits != 1 {
		t.Fatalf("result traffic: %d misses / %d hits, want 1 / 1", s.ResultMisses, s.ResultHits)
	}
}

// TestNilCache ensures the optional-cache idiom holds: a nil *Cache builds
// cold and never panics.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, err := c.Program(gccSpec(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("x"); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.PutResult("x", 1, 1)
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	c.Register(nil)
}

// TestCacheMetrics registers the cache on a registry and checks the scrape
// carries the advertised series.
func TestCacheMetrics(t *testing.T) {
	c := New(0)
	if _, err := c.Tape(gccSpec(t), 1_000); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pfe_artifact_hits_total{kind="tape"}`,
		`pfe_artifact_misses_total{kind="program"} 1`,
		`pfe_artifact_tape_bytes`,
		`pfe_artifact_evictions_total`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}
