package artifact

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parallel-frontend/pfe/internal/artifact/store"
	"github.com/parallel-frontend/pfe/internal/fabric"
	"github.com/parallel-frontend/pfe/internal/program"
)

// Remote is the cache's third tier: the coordinator's artifact plane. A miss
// that falls through memory and the local disk store fetches the blob by
// content key over HTTP (GET /fabric/v1/blob/{kind}/{key}), re-verifies the
// CRC frame on receipt, and a locally built artifact is published back (PUT)
// so the rest of the fleet can fetch instead of rebuilding.
//
// All methods are nil-safe: a nil *Remote never fetches and never publishes,
// so the single-process paths thread it without branching.
type Remote struct {
	BaseURL string
	Client  *http.Client // nil = default client (chaos wraps via transport)

	// MaxAttempts bounds fetch retries on transport errors and corrupt
	// frames (0 = 3). A 404 is a definitive miss and is never retried.
	MaxAttempts int

	// WaitBudget bounds how long a fetch polls behind another worker's
	// in-flight build (the coordinator answers 202 while the builder works;
	// see fabric build collapsing). Past the budget the fetch reports a miss
	// and the caller builds locally (0 = 10s; negative = never wait).
	WaitBudget time.Duration

	fetches    atomic.Int64 // blobs fetched and verified
	misses     atomic.Int64 // definitive 404 misses
	waits      atomic.Int64 // 202 responses (build pending on another worker)
	corrupt    atomic.Int64 // transfers rejected by CRC re-verification
	errors     atomic.Int64 // transport/status errors (retried)
	publishes  atomic.Int64 // blobs published back to the coordinator
	bytesIn    atomic.Int64 // framed bytes fetched (accepted transfers)
	bytesOut   atomic.Int64 // framed bytes published
	fetchNanos atomic.Int64 // cumulative wall time inside successful fetches
	waitNanos  atomic.Int64 // cumulative wall time spent polling behind builds
}

// RemoteStats snapshots one worker's artifact-plane traffic.
type RemoteStats struct {
	Fetches      int64   // blobs fetched and CRC-verified
	Misses       int64   // definitive 404s (artifact not on the coordinator)
	Waits        int64   // 202s seen (polled behind another worker's build)
	Corrupt      int64   // transfers rejected by CRC re-verification
	Errors       int64   // transport/status errors
	Publishes    int64   // locally built blobs published back
	BytesIn      int64   // framed bytes received
	BytesOut     int64   // framed bytes published
	FetchSeconds float64 // cumulative wall time inside successful fetches
	WaitSeconds  float64 // cumulative wall time polling behind builds
}

// Stats returns the remote tier's traffic counters (zero for nil).
func (r *Remote) Stats() RemoteStats {
	if r == nil {
		return RemoteStats{}
	}
	return RemoteStats{
		Fetches:      r.fetches.Load(),
		Misses:       r.misses.Load(),
		Waits:        r.waits.Load(),
		Corrupt:      r.corrupt.Load(),
		Errors:       r.errors.Load(),
		Publishes:    r.publishes.Load(),
		BytesIn:      r.bytesIn.Load(),
		BytesOut:     r.bytesOut.Load(),
		FetchSeconds: float64(r.fetchNanos.Load()) / float64(time.Second),
		WaitSeconds:  float64(r.waitNanos.Load()) / float64(time.Second),
	}
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func (r *Remote) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 3
}

// Fetch retrieves the payload for (kind, key) from the coordinator,
// re-verifying the store frame's CRC on receipt. A corrupt transfer (bit
// error on the wire) is discarded and retried; after MaxAttempts the fetch
// reports a miss so the caller falls back to building locally — the plane is
// an accelerator, never a correctness dependency.
//
// A 202 means another worker is already building this artifact (fleet-wide
// build collapsing): Fetch polls with a growing interval until the builder
// publishes or WaitBudget runs out, whichever is first. Polls don't consume
// retry attempts.
func (r *Remote) Fetch(kind, key string) ([]byte, bool) {
	if r == nil {
		return nil, false
	}
	url := r.BaseURL + fabric.BlobPath(kind, key)
	var waitDeadline time.Time
	poll := 25 * time.Millisecond
	for attempt := 1; attempt <= r.attempts(); {
		start := time.Now()
		resp, err := r.client().Get(url)
		if err != nil {
			r.errors.Add(1)
			attempt++
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.misses.Add(1)
			return nil, false
		}
		if resp.StatusCode == http.StatusAccepted {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.waits.Add(1)
			now := time.Now()
			if waitDeadline.IsZero() {
				wb := r.WaitBudget
				if wb == 0 {
					wb = 10 * time.Second
				}
				waitDeadline = now.Add(wb)
			}
			if now.After(waitDeadline) {
				// The builder is slow or gone: stop waiting and report a
				// miss so the caller builds locally.
				return nil, false
			}
			time.Sleep(poll)
			r.waitNanos.Add(time.Since(now).Nanoseconds())
			if poll < 250*time.Millisecond {
				poll *= 2
			}
			continue
		}
		framed, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			r.errors.Add(1)
			attempt++
			continue
		}
		payload, err := store.CheckFrame(framed)
		if err != nil {
			// The frame failed its CRC: the transfer was corrupted on the
			// wire (or the coordinator served a damaged blob). Quarantine
			// the attempt and retry — the next transfer is independent.
			r.corrupt.Add(1)
			attempt++
			continue
		}
		r.fetches.Add(1)
		r.bytesIn.Add(int64(len(framed)))
		r.fetchNanos.Add(time.Since(start).Nanoseconds())
		return payload, true
	}
	return nil, false
}

// Publish sends a locally built artifact to the coordinator so the rest of
// the fleet can fetch it instead of rebuilding. Errors are counted and
// dropped: publishing is an optimization, never on the correctness path.
func (r *Remote) Publish(kind, key string, payload []byte) {
	if r == nil {
		return
	}
	framed := store.Frame(payload)
	req, err := http.NewRequest(http.MethodPut, r.BaseURL+fabric.BlobPath(kind, key), bytes.NewReader(framed))
	if err != nil {
		r.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client().Do(req)
	if err != nil {
		r.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.errors.Add(1)
		return
	}
	r.publishes.Add(1)
	r.bytesOut.Add(int64(len(framed)))
}

// SetRemote attaches the coordinator's artifact plane as the tier behind the
// local disk store. Attach before first use — SetRemote is not synchronized
// against concurrent lookups.
func (c *Cache) SetRemote(r *Remote) {
	if c == nil {
		return
	}
	c.remote = r
}

// Remote returns the attached remote tier (nil when none).
func (c *Cache) Remote() *Remote {
	if c == nil {
		return nil
	}
	return c.remote
}

// remoteProgram tries the coordinator's artifact plane for a program image.
// A fetched blob is semantically decoded before use and persisted into the
// local store so this worker never pays its wire cost again.
func (c *Cache) remoteProgram(key string) (*program.Program, bool) {
	data, ok := c.remote.Fetch(storeKindProgram, key)
	if !ok {
		return nil, false
	}
	p, err := DecodeProgram(data)
	if err != nil {
		// CRC-valid but semantically broken: a foreign or version-skewed
		// blob. Treat as a miss and build locally.
		return nil, false
	}
	if c.store != nil {
		c.store.Put(storeKindProgram, key, data)
	}
	return p, true
}

// remoteTape tries the coordinator's artifact plane for an oracle tape. The
// tape stays block-compressed on the wire (the encoded form is the stored
// form), and the fetched blob is persisted locally before use.
func (c *Cache) remoteTape(key string, prog *program.Program) (*Tape, bool) {
	data, ok := c.remote.Fetch(storeKindTape, key)
	if !ok {
		return nil, false
	}
	if c.store != nil {
		// Persist first, then decode through the store's mapping so replay
		// is zero-copy off the page cache, same as a disk hit.
		c.store.Put(storeKindTape, key, data)
		if t, ok := c.diskTape(key, prog); ok {
			return t, true
		}
		return nil, false
	}
	t, err := DecodeTape(data, prog)
	if err != nil {
		return nil, false
	}
	t.sink = &c.tapeFallback
	return t, true
}

// BlobRelay adapts a content-addressed store to the fabric's BlobSource: the
// coordinator serves GETs straight out of its store and ingests worker
// publishes into it. With no store attached (running -no-artifact-store) it
// falls back to a bounded in-memory framed-blob map, so the fleet still
// deduplicates builds within the run.
type BlobRelay struct {
	store *store.Store

	mu       sync.Mutex
	mem      map[string][]byte // framed blobs, key = kind/key
	memBytes int64
	memCap   int64
}

// NewBlobRelay returns a relay over st. memCap bounds the in-memory fallback
// used when st is nil (0 = 256 MiB).
func NewBlobRelay(st *store.Store, memCap int64) *BlobRelay {
	if memCap <= 0 {
		memCap = 256 << 20
	}
	return &BlobRelay{store: st, mem: map[string][]byte{}, memCap: memCap}
}

// OpenBlob returns the framed bytes for (kind, key). Store blobs are framed
// on the fly from the store's verified payload mapping; the frame a worker
// receives therefore carries a freshly computed CRC over exactly the bytes
// the coordinator's store considers good.
func (b *BlobRelay) OpenBlob(kind, key string) ([]byte, bool) {
	if b.store != nil {
		if payload, ok := b.store.Get(kind, key); ok {
			return store.Frame(payload), true
		}
	}
	b.mu.Lock()
	framed, ok := b.mem[kind+"/"+key]
	b.mu.Unlock()
	return framed, ok
}

// AcceptBlob verifies and ingests a worker-published framed blob. It reports
// accepted=false (nil error) for a duplicate of an artifact already present.
func (b *BlobRelay) AcceptBlob(kind, key string, framed []byte) (bool, error) {
	payload, err := store.CheckFrame(framed)
	if err != nil {
		return false, fmt.Errorf("artifact: published blob %s/%s: %w", kind, key, err)
	}
	if b.store != nil {
		if b.store.Has(kind, key) {
			return false, nil
		}
		if err := b.store.Put(kind, key, payload); err != nil {
			return false, err
		}
		return true, nil
	}
	mk := kind + "/" + key
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.mem[mk]; dup {
		return false, nil
	}
	if b.memBytes+int64(len(framed)) > b.memCap {
		// Full: drop the publish. Workers that miss here rebuild locally,
		// which is always correct.
		return false, nil
	}
	b.mem[mk] = framed
	b.memBytes += int64(len(framed))
	return true, nil
}
