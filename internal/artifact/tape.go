// Package artifact is the cross-cell workload reuse layer: a
// content-addressed, concurrency-safe cache of the expensive inputs a sweep
// cell needs — built program images, oracle tapes of the emulator's dynamic
// stream, and memoized cell results — shared read-only across work-stealing
// workers so a multi-config sweep pays each workload's functional cost once
// instead of once per cell.
package artifact

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TapeSlack is how many instructions beyond a cell's commit budget a tape
// records. The stream's fetch machinery reads ahead of the commit point —
// bounded by the backend window (256), the fragment buffers (16 × 32
// instructions) and the oracle lookahead ring (128) — so the slack covers
// the deepest possible read-ahead many times over. A reader that outruns
// the tape anyway degrades gracefully to live emulation (see Reader.Step).
const TapeSlack = 8192

// Tape is a compact recording of a program's true dynamic instruction
// stream, replayable as an emu.Oracle. Only the dynamic information that
// cannot be reconstructed from the static code image is stored:
//
//   - one bit per conditional branch (taken/not-taken),
//   - a uvarint per indirect jump (the target PC),
//   - a zigzag-varint per memory op (effective-address delta from the
//     previous memory op).
//
// Everything else — opcodes, immediates, fall-through and direct-jump
// targets — replays from the shared Program, so the typical instruction
// costs zero tape bytes and the stream averages well under one byte per
// instruction. Tapes are immutable after Record and safe to share across
// any number of concurrent Readers.
type Tape struct {
	prog    *program.Program
	startPC uint64
	count   uint64 // recorded instructions
	halted  bool   // the recording ended at OpHalt (vs. the budget)

	taken []byte // packed taken bits, one per conditional branch
	aux   []byte // varint stream: indirect targets and EA deltas in program order

	// fallbackSteps counts instructions served by the live-emulation
	// fallback across all Readers of this tape (tape exhausted before the
	// consumer was done). sink, when set by the owning cache, aggregates
	// the same count cache-wide.
	fallbackSteps atomic.Int64
	sink          *atomic.Int64
}

// Record executes p on a fresh emulator for up to maxInsts instructions (or
// until halt) and returns the recording.
func Record(p *program.Program, maxInsts uint64) (*Tape, error) {
	t := &Tape{prog: p, startPC: p.EntryPC}
	m := emu.New(p)
	var bitBuf byte
	var bitN uint
	var prevEA uint64
	var buf [binary.MaxVarintLen64]byte
	for t.count < maxInsts && !m.Halted() {
		d, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("artifact: recording %s: %w", p.Name, err)
		}
		in := d.Inst
		switch {
		case in.IsCondBranch():
			if d.Taken {
				bitBuf |= 1 << bitN
			}
			if bitN++; bitN == 8 {
				t.taken = append(t.taken, bitBuf)
				bitBuf, bitN = 0, 0
			}
		case in.IsIndirect():
			n := binary.PutUvarint(buf[:], d.NextPC)
			t.aux = append(t.aux, buf[:n]...)
		case in.IsMem():
			n := binary.PutVarint(buf[:], int64(d.EA)-int64(prevEA))
			t.aux = append(t.aux, buf[:n]...)
			prevEA = d.EA
		}
		t.count++
	}
	if bitN > 0 {
		t.taken = append(t.taken, bitBuf)
	}
	t.halted = m.Halted()
	return t, nil
}

// Len returns the number of recorded instructions.
func (t *Tape) Len() uint64 { return t.count }

// Halted reports whether the recording reached OpHalt (as opposed to the
// recording budget).
func (t *Tape) Halted() bool { return t.halted }

// Bytes returns the tape's encoded payload size.
func (t *Tape) Bytes() int64 { return int64(len(t.taken) + len(t.aux)) }

// FallbackSteps returns how many instructions Readers of this tape have
// served via the live-emulation fallback.
func (t *Tape) FallbackSteps() int64 { return t.fallbackSteps.Load() }

// NewReader returns a fresh replay cursor positioned at the program entry.
// Each simulation needs its own Reader; Readers of one tape may run
// concurrently.
func (r *Tape) NewReader() *Reader {
	return &Reader{t: r, pc: r.startPC}
}

// Reader replays a Tape as an emu.Oracle, reproducing the live emulator's
// DynInst stream bit for bit. If a consumer reads past the recorded end of
// a truncated (non-halted) tape, the Reader transparently falls back to a
// fresh emulator fast-forwarded to the tape's end, so correctness never
// depends on the recording budget.
type Reader struct {
	t      *Tape
	pc     uint64
	seq    uint64
	bitPos uint64 // next taken-bit index
	auxOff int    // next aux byte
	prevEA uint64
	halted bool

	live *emu.Machine // non-nil once the fallback engaged
}

// Halted reports whether the replayed program has executed OpHalt.
func (r *Reader) Halted() bool { return r.halted }

// Step returns the next instruction of the true dynamic stream.
func (r *Reader) Step() (emu.DynInst, error) {
	if r.halted {
		return emu.DynInst{}, emu.ErrHalted
	}
	if r.live != nil || r.seq >= r.t.count {
		return r.stepLive()
	}
	in, ok := r.t.prog.InstAt(r.pc)
	if !ok {
		return emu.DynInst{}, fmt.Errorf("artifact: replay PC %#x outside code image", r.pc)
	}
	d := emu.DynInst{Seq: r.seq, PC: r.pc, Inst: in}
	next := r.pc + isa.InstBytes
	switch {
	case in.IsCondBranch():
		if r.t.taken[r.bitPos>>3]>>(r.bitPos&7)&1 != 0 {
			d.Taken = true
			next = uint64(int64(r.pc) + isa.InstBytes + int64(in.Imm)*isa.InstBytes)
		}
		r.bitPos++
	case in.IsDirectJump():
		next = uint64(in.Imm) * isa.InstBytes
	case in.IsIndirect():
		v, n := binary.Uvarint(r.t.aux[r.auxOff:])
		if n <= 0 {
			return emu.DynInst{}, fmt.Errorf("artifact: corrupt tape (indirect target at seq %d)", r.seq)
		}
		r.auxOff += n
		next = v
	case in.IsMem():
		delta, n := binary.Varint(r.t.aux[r.auxOff:])
		if n <= 0 {
			return emu.DynInst{}, fmt.Errorf("artifact: corrupt tape (EA delta at seq %d)", r.seq)
		}
		r.auxOff += n
		d.EA = uint64(int64(r.prevEA) + delta)
		r.prevEA = d.EA
	case in.Op == isa.OpHalt:
		next = r.pc
		r.halted = true
	}
	d.NextPC = next
	r.pc = next
	r.seq++
	return d, nil
}

// stepLive serves instructions past the recorded end: a fresh emulator is
// fast-forwarded through the recorded prefix once, then stepped live.
func (r *Reader) stepLive() (emu.DynInst, error) {
	if r.live == nil {
		r.live = emu.New(r.t.prog)
		if _, err := r.live.Run(r.t.count); err != nil {
			return emu.DynInst{}, fmt.Errorf("artifact: tape fallback fast-forward: %w", err)
		}
	}
	d, err := r.live.Step()
	if err != nil {
		return d, err
	}
	if r.live.Halted() {
		r.halted = true
	}
	r.seq = d.Seq + 1
	r.t.fallbackSteps.Add(1)
	if r.t.sink != nil {
		r.t.sink.Add(1)
	}
	return d, nil
}

var _ emu.Oracle = (*Reader)(nil)
