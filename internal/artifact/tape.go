// Package artifact is the cross-cell workload reuse layer: a
// content-addressed, concurrency-safe cache of the expensive inputs a sweep
// cell needs — built program images, oracle tapes of the emulator's dynamic
// stream, and memoized cell results — shared read-only across work-stealing
// workers so a multi-config sweep pays each workload's functional cost once
// instead of once per cell.
package artifact

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TapeSlack is how many instructions beyond a cell's commit budget a tape
// records. The stream's fetch machinery reads ahead of the commit point —
// bounded by the backend window (256), the fragment buffers (16 × 32
// instructions) and the oracle lookahead ring (128) — so the slack covers
// the deepest possible read-ahead many times over. A reader that outruns
// the tape anyway degrades gracefully to live emulation (see Reader.Step).
const TapeSlack = 8192

// IndexStride is how many instructions separate consecutive index blocks in
// a recording. Seek jumps to the nearest preceding block in O(1) and decodes
// at most IndexStride-1 instructions forward, so positioning a reader
// anywhere in a tape costs a constant bounded by the stride — not a replay
// from instruction zero. The stride trades index footprint (32 bytes per
// block, ~0.008 B/inst) against that decode bound.
const IndexStride = 4096

// seekPoint is one index block: the complete replay-cursor state as of the
// instruction whose sequence index is a multiple of IndexStride.
type seekPoint struct {
	pc     uint64 // next PC at this point
	bitPos uint64 // taken bits consumed
	auxOff int    // aux bytes consumed
	prevEA uint64 // last memory effective address seen
}

// Tape is a compact recording of a program's true dynamic instruction
// stream, replayable as an emu.Oracle. Only the dynamic information that
// cannot be reconstructed from the static code image is stored:
//
//   - one bit per conditional branch (taken/not-taken),
//   - a uvarint per indirect jump (the target PC),
//   - a zigzag-varint per memory op (effective-address delta from the
//     previous memory op).
//
// Everything else — opcodes, immediates, fall-through and direct-jump
// targets — replays from the shared Program, so the typical instruction
// costs zero tape bytes and the stream averages well under one byte per
// instruction. Tapes are immutable after Record and safe to share across
// any number of concurrent Readers.
type Tape struct {
	prog    *program.Program
	startPC uint64
	count   uint64 // recorded instructions
	halted  bool   // the recording ended at OpHalt (vs. the budget)

	taken []byte // packed taken bits, one per conditional branch
	aux   []byte // varint stream: indirect targets and EA deltas in program order

	// index holds one seekPoint per IndexStride instructions (index[i] is
	// the cursor state just before instruction i*IndexStride), giving Seek
	// its O(1) block jump.
	index []seekPoint

	// fallbackSteps counts instructions served by the live-emulation
	// fallback across all Readers of this tape (tape exhausted before the
	// consumer was done). sink, when set by the owning cache, aggregates
	// the same count cache-wide.
	fallbackSteps atomic.Int64
	sink          *atomic.Int64
}

// Record executes p on a fresh emulator for up to maxInsts instructions (or
// until halt) and returns the recording.
func Record(p *program.Program, maxInsts uint64) (*Tape, error) {
	t := &Tape{prog: p, startPC: p.EntryPC}
	m := emu.New(p)
	var bitBuf byte
	var bitN uint
	var bits uint64 // total taken bits recorded
	var prevEA uint64
	var buf [binary.MaxVarintLen64]byte
	for t.count < maxInsts && !m.Halted() {
		if t.count%IndexStride == 0 {
			t.index = append(t.index, seekPoint{
				pc: m.PC(), bitPos: bits, auxOff: len(t.aux), prevEA: prevEA,
			})
		}
		d, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("artifact: recording %s: %w", p.Name, err)
		}
		in := d.Inst
		switch {
		case in.IsCondBranch():
			if d.Taken {
				bitBuf |= 1 << bitN
			}
			bits++
			if bitN++; bitN == 8 {
				t.taken = append(t.taken, bitBuf)
				bitBuf, bitN = 0, 0
			}
		case in.IsIndirect():
			n := binary.PutUvarint(buf[:], d.NextPC)
			t.aux = append(t.aux, buf[:n]...)
		case in.IsMem():
			n := binary.PutVarint(buf[:], int64(d.EA)-int64(prevEA))
			t.aux = append(t.aux, buf[:n]...)
			prevEA = d.EA
		}
		t.count++
	}
	if bitN > 0 {
		t.taken = append(t.taken, bitBuf)
	}
	t.halted = m.Halted()
	return t, nil
}

// Len returns the number of recorded instructions.
func (t *Tape) Len() uint64 { return t.count }

// Halted reports whether the recording reached OpHalt (as opposed to the
// recording budget).
func (t *Tape) Halted() bool { return t.halted }

// Bytes returns the tape's encoded payload size (excluding the seek index;
// see IndexBytes).
func (t *Tape) Bytes() int64 { return int64(len(t.taken) + len(t.aux)) }

// IndexBytes returns the resident footprint of the tape's seek index.
func (t *Tape) IndexBytes() int64 { return int64(len(t.index)) * 32 }

// FallbackSteps returns how many instructions Readers of this tape have
// served via the live-emulation fallback.
func (t *Tape) FallbackSteps() int64 { return t.fallbackSteps.Load() }

// NewReader returns a fresh replay cursor positioned at the program entry.
// Each simulation needs its own Reader; Readers of one tape may run
// concurrently.
func (r *Tape) NewReader() *Reader {
	return &Reader{t: r, pc: r.startPC}
}

// Reader replays a Tape as an emu.Oracle, reproducing the live emulator's
// DynInst stream bit for bit. If a consumer reads past the recorded end of
// a truncated (non-halted) tape, the Reader transparently falls back to a
// fresh emulator fast-forwarded to the tape's end, so correctness never
// depends on the recording budget.
type Reader struct {
	t      *Tape
	pc     uint64
	seq    uint64
	bitPos uint64 // next taken-bit index
	auxOff int    // next aux byte
	prevEA uint64
	halted bool

	live     *emu.Machine // non-nil once the fallback engaged
	fallback int64        // instructions this reader served via the fallback
}

// Halted reports whether the replayed program has executed OpHalt.
func (r *Reader) Halted() bool { return r.halted }

// FallbackSteps returns how many instructions this reader (as opposed to the
// whole tape — see Tape.FallbackSteps) served through the live-emulation
// fallback, for per-run metrics and span annotations.
func (r *Reader) FallbackSteps() int64 { return r.fallback }

// Pos returns the sequence index of the next instruction Step will produce.
func (r *Reader) Pos() uint64 { return r.seq }

// Seek positions the reader so the next Step produces the instruction with
// sequence index seq, replaying neither the simulator nor the emulator
// through the skipped region: it jumps to the nearest preceding index block
// and decodes at most IndexStride-1 instructions forward — a zero-allocation
// fast-forward. Seeking backward is allowed (the cursor state is rebuilt
// from the block, not rewound).
//
// Seeking at or past the end of a halted recording leaves the reader at
// end-of-stream (Halted reports true). Seeking past the end of a truncated
// (non-halted) recording falls back to a fresh emulator fast-forwarded to
// seq, exactly as Step's past-the-end fallback would.
func (r *Reader) Seek(seq uint64) error {
	t := r.t
	if seq >= t.count && !t.halted {
		// Beyond a truncated recording: the tape cannot reconstruct this
		// region, so engage the live fallback immediately, fast-forwarded
		// to the target.
		live := emu.New(t.prog)
		if _, err := live.Run(seq); err != nil {
			return fmt.Errorf("artifact: seek fallback fast-forward: %w", err)
		}
		r.live = live
		r.seq = seq
		r.halted = live.Halted()
		return nil
	}
	if seq > t.count {
		seq = t.count // halted recording: clamp to end-of-stream
	}
	r.live = nil
	r.halted = false
	b := seq / IndexStride
	if n := uint64(len(t.index)); b >= n {
		// seq == count on an exact multiple of the stride records no
		// trailing block; decode forward from the last one.
		b = n - 1
	}
	sp := t.index[b]
	r.pc, r.seq = sp.pc, b*IndexStride
	r.bitPos, r.auxOff, r.prevEA = sp.bitPos, sp.auxOff, sp.prevEA
	for r.seq < seq {
		if _, err := r.Step(); err != nil {
			return fmt.Errorf("artifact: seek decode at seq %d: %w", r.seq, err)
		}
	}
	return nil
}

// Step returns the next instruction of the true dynamic stream.
func (r *Reader) Step() (emu.DynInst, error) {
	if r.halted {
		return emu.DynInst{}, emu.ErrHalted
	}
	if r.live != nil || r.seq >= r.t.count {
		return r.stepLive()
	}
	in, ok := r.t.prog.InstAt(r.pc)
	if !ok {
		return emu.DynInst{}, fmt.Errorf("artifact: replay PC %#x outside code image", r.pc)
	}
	d := emu.DynInst{Seq: r.seq, PC: r.pc, Inst: in}
	next := r.pc + isa.InstBytes
	switch {
	case in.IsCondBranch():
		if r.t.taken[r.bitPos>>3]>>(r.bitPos&7)&1 != 0 {
			d.Taken = true
			next = uint64(int64(r.pc) + isa.InstBytes + int64(in.Imm)*isa.InstBytes)
		}
		r.bitPos++
	case in.IsDirectJump():
		next = uint64(in.Imm) * isa.InstBytes
	case in.IsIndirect():
		v, n := binary.Uvarint(r.t.aux[r.auxOff:])
		if n <= 0 {
			return emu.DynInst{}, fmt.Errorf("artifact: corrupt tape (indirect target at seq %d)", r.seq)
		}
		r.auxOff += n
		next = v
	case in.IsMem():
		delta, n := binary.Varint(r.t.aux[r.auxOff:])
		if n <= 0 {
			return emu.DynInst{}, fmt.Errorf("artifact: corrupt tape (EA delta at seq %d)", r.seq)
		}
		r.auxOff += n
		d.EA = uint64(int64(r.prevEA) + delta)
		r.prevEA = d.EA
	case in.Op == isa.OpHalt:
		next = r.pc
		r.halted = true
	}
	d.NextPC = next
	r.pc = next
	r.seq++
	return d, nil
}

// stepLive serves instructions past the recorded end: a fresh emulator is
// fast-forwarded through the recorded prefix once, then stepped live.
func (r *Reader) stepLive() (emu.DynInst, error) {
	if r.live == nil {
		r.live = emu.New(r.t.prog)
		if _, err := r.live.Run(r.t.count); err != nil {
			return emu.DynInst{}, fmt.Errorf("artifact: tape fallback fast-forward: %w", err)
		}
	}
	d, err := r.live.Step()
	if err != nil {
		return d, err
	}
	if r.live.Halted() {
		r.halted = true
	}
	r.seq = d.Seq + 1
	r.fallback++
	r.t.fallbackSteps.Add(1)
	if r.t.sink != nil {
		r.t.sink.Add(1)
	}
	return d, nil
}

var _ emu.Oracle = (*Reader)(nil)
