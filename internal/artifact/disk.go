package artifact

import (
	"github.com/parallel-frontend/pfe/internal/artifact/store"
	"github.com/parallel-frontend/pfe/internal/program"
)

// Store kinds used by the cache's persistent tier. The store itself is
// kind-agnostic; these names pick the objects/<kind>/ subdirectory and the
// per-kind metric labels.
const (
	storeKindProgram = "program"
	storeKindTape    = "tape"
	storeKindResult  = "result"
	storeKindWarm    = "warm"
)

// ResultCodec serializes memoized cell results for the persistent store. The
// cache treats results as opaque values, so the codec lives with the code
// that owns the concrete type (internal/experiments) and is injected via
// SetStore. DecodeResult returns the value plus its accounted in-memory
// footprint (the PutResult bytes argument for the re-inserted entry).
type ResultCodec interface {
	EncodeResult(v any) ([]byte, error)
	DecodeResult(data []byte) (v any, bytes int64, err error)
}

// SetStore attaches a persistent disk tier: cache misses fall through to the
// store before building, and completed builds are written back. codec
// enables the result kind (nil leaves results memory-only). Attach before
// first use — SetStore is not synchronized against concurrent lookups.
func (c *Cache) SetStore(st *store.Store, codec ResultCodec) {
	if c == nil {
		return
	}
	c.store = st
	c.resultCodec = codec
}

// DiskStats snapshots the persistent tier (zero Stats when none attached).
func (c *Cache) DiskStats() store.Stats {
	if c == nil {
		return store.Stats{}
	}
	return c.store.Stats()
}

// diskProgram tries the persistent tier for a program image. A blob that
// passes the store's checksum but fails semantic decoding is quarantined so
// it can never be served again.
func (c *Cache) diskProgram(key string) (*program.Program, bool) {
	data, ok := c.store.Get(storeKindProgram, key)
	if !ok {
		return nil, false
	}
	p, err := DecodeProgram(data)
	if err != nil {
		c.store.Quarantine(storeKindProgram, key)
		return nil, false
	}
	return p, true
}

// diskWarm tries the persistent tier for a warm-state snapshot. The payload
// is opaque here — the caller's codec owns the format, and calls
// QuarantineWarm when a checksum-valid blob fails semantic decoding.
func (c *Cache) diskWarm(key string) ([]byte, bool) {
	return c.store.Get(storeKindWarm, key)
}

// QuarantineWarm drops a warm-state snapshot that passed the store checksum
// but failed the caller's semantic decode (foreign or version-skewed blob),
// evicting it from the memory tier and quarantining the disk copy so it is
// never served again.
func (c *Cache) QuarantineWarm(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil && e.elem != nil {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		c.bytes -= e.bytes
	}
	c.mu.Unlock()
	c.store.Quarantine(storeKindWarm, key)
}

// diskTape tries the persistent tier for an oracle tape. Decoding is
// zero-copy against the store's mapping where the sections are stored raw,
// so a warm replay reads tape bytes straight off the page cache.
func (c *Cache) diskTape(key string, prog *program.Program) (*Tape, bool) {
	data, ok := c.store.Get(storeKindTape, key)
	if !ok {
		return nil, false
	}
	t, err := DecodeTape(data, prog)
	if err != nil {
		c.store.Quarantine(storeKindTape, key)
		return nil, false
	}
	t.sink = &c.tapeFallback
	return t, true
}
