package artifact

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/parallel-frontend/pfe/internal/program"
)

// The framed on-disk tape format (version 1). A tape file is three sections
// — the packed taken bits, the varint aux stream, and the seek index — each
// cut into fixed-size blocks that are individually flate-compressed when
// that actually shrinks them and stored raw otherwise. The block table
// (lengths + per-block CRC32) is never compressed, so locating any block is
// O(1) arithmetic over the table, and the seek-index section is forced raw,
// so Reader.Seek on a decoded tape keeps its O(1) block jump without
// inflating anything first.
//
// Layout, all little-endian:
//
//	magic "PFET" | u32 version | u64 startPC | u64 count | u8 halted
//	u32 blockSize | u32 nblocks per section (taken, aux, index)
//	block table: per block u8 enc (0 raw, 1 flate) | u32 rawLen | u32 storedLen | u32 crc32(stored)
//	payload: stored block bytes, back to back, in table order
//
// Because payloads are laid out back to back, a section whose blocks are all
// raw occupies one contiguous byte range of the file: DecodeTape references
// it as a subslice of the input — the zero-copy path a Store mmap hit rides
// — instead of copying it onto the heap. Sections with any compressed block
// are inflated into a fresh contiguous buffer.
const (
	tapeMagic     = "PFET"
	tapeVersion   = 1
	tapeBlockSize = 64 << 10

	seekPointBytes = 32 // u64 pc | u64 bitPos | u64 auxOff (as u64) | u64 prevEA
	tapeNumSecs    = 3  // taken, aux, index
)

// tapeBlock is one block-table record.
type tapeBlock struct {
	enc       byte // 0 raw, 1 flate
	rawLen    uint32
	storedLen uint32
	crc       uint32
}

// EncodeTape serializes t into the framed block-compressed format. The
// encoding is self-contained except for the program image, which is stored
// separately under its own content address (DecodeTape takes it back).
func EncodeTape(t *Tape) []byte {
	idx := make([]byte, len(t.index)*seekPointBytes)
	for i, sp := range t.index {
		o := i * seekPointBytes
		binary.LittleEndian.PutUint64(idx[o:], sp.pc)
		binary.LittleEndian.PutUint64(idx[o+8:], sp.bitPos)
		binary.LittleEndian.PutUint64(idx[o+16:], uint64(sp.auxOff))
		binary.LittleEndian.PutUint64(idx[o+24:], sp.prevEA)
	}
	secs := [tapeNumSecs][]byte{t.taken, t.aux, idx}
	// The index section stays raw so seeks never pay an inflate.
	compressible := [tapeNumSecs]bool{true, true, false}

	var tables [tapeNumSecs][]tapeBlock
	var payload bytes.Buffer
	for s, sec := range secs {
		for off := 0; off < len(sec) || (off == 0 && len(sec) == 0); off += tapeBlockSize {
			end := off + tapeBlockSize
			if end > len(sec) {
				end = len(sec)
			}
			raw := sec[off:end]
			b := tapeBlock{enc: 0, rawLen: uint32(len(raw))}
			stored := raw
			if compressible[s] && len(raw) > 0 {
				if z := deflate(raw); len(z) < len(raw) {
					b.enc, stored = 1, z
				}
			}
			b.storedLen = uint32(len(stored))
			b.crc = crc32.ChecksumIEEE(stored)
			tables[s] = append(tables[s], b)
			payload.Write(stored)
			if len(sec) == 0 {
				break // empty section still gets one empty block
			}
		}
	}

	var out bytes.Buffer
	out.WriteString(tapeMagic)
	le32(&out, tapeVersion)
	le64(&out, t.startPC)
	le64(&out, t.count)
	if t.halted {
		out.WriteByte(1)
	} else {
		out.WriteByte(0)
	}
	le32(&out, tapeBlockSize)
	for s := range tables {
		le32(&out, uint32(len(tables[s])))
	}
	for s := range tables {
		for _, b := range tables[s] {
			out.WriteByte(b.enc)
			le32(&out, b.rawLen)
			le32(&out, b.storedLen)
			le32(&out, b.crc)
		}
	}
	out.Write(payload.Bytes())
	return out.Bytes()
}

func le32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func le64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

// deflate compresses b at the speed-biased level (tapes are written once and
// read many times, but puts sit on the first run's critical path).
func deflate(b []byte) []byte {
	var z bytes.Buffer
	w, err := flate.NewWriter(&z, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := w.Write(b); err != nil {
		return nil
	}
	if err := w.Close(); err != nil {
		return nil
	}
	return z.Bytes()
}

// DecodeTape reconstructs a Tape from its framed encoding and the program
// image it was recorded from. Every block's CRC is verified before any byte
// is trusted; any framing, checksum, or consistency failure returns an error
// and never a partially decoded tape. Sections stored raw are referenced as
// subslices of data (zero-copy — the caller must keep data alive, e.g. an
// mmap'd store entry, for the life of the tape); compressed sections are
// inflated into fresh buffers.
func DecodeTape(data []byte, prog *program.Program) (*Tape, error) {
	const headerLen = 4 + 4 + 8 + 8 + 1 + 4 + 4*tapeNumSecs
	if len(data) < headerLen {
		return nil, fmt.Errorf("artifact: tape frame truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != tapeMagic {
		return nil, fmt.Errorf("artifact: bad tape magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != tapeVersion {
		return nil, fmt.Errorf("artifact: tape format version %d, want %d", v, tapeVersion)
	}
	startPC := binary.LittleEndian.Uint64(data[8:])
	count := binary.LittleEndian.Uint64(data[16:])
	halted := data[24] != 0
	if bs := binary.LittleEndian.Uint32(data[25:]); bs == 0 || bs > 1<<30 {
		return nil, fmt.Errorf("artifact: tape block size %d out of range", bs)
	}
	var nblocks [tapeNumSecs]int
	total := 0
	for s := 0; s < tapeNumSecs; s++ {
		n := binary.LittleEndian.Uint32(data[29+4*s:])
		if n > uint32(len(data)) { // cheap bound before we size the table
			return nil, fmt.Errorf("artifact: tape section %d claims %d blocks", s, n)
		}
		nblocks[s] = int(n)
		total += int(n)
	}
	tableOff := headerLen
	tableLen := total * 13
	if len(data) < tableOff+tableLen {
		return nil, fmt.Errorf("artifact: tape block table truncated")
	}
	payload := data[tableOff+tableLen:]

	// Walk the table once: verify every stored block's CRC and remember each
	// section's extent so raw sections can be referenced in place.
	type secPlan struct {
		blocks  []tapeBlock
		start   int // payload offset of first block
		rawLen  int
		allRaw  bool
		present bool
	}
	var plans [tapeNumSecs]secPlan
	rec := tableOff
	off := 0
	for s := 0; s < tapeNumSecs; s++ {
		p := secPlan{start: off, allRaw: true, present: true}
		for i := 0; i < nblocks[s]; i++ {
			b := tapeBlock{
				enc:       data[rec],
				rawLen:    binary.LittleEndian.Uint32(data[rec+1:]),
				storedLen: binary.LittleEndian.Uint32(data[rec+5:]),
				crc:       binary.LittleEndian.Uint32(data[rec+9:]),
			}
			rec += 13
			if b.enc > 1 {
				return nil, fmt.Errorf("artifact: tape block encoding %d unknown", b.enc)
			}
			if off+int(b.storedLen) > len(payload) {
				return nil, fmt.Errorf("artifact: tape payload truncated at block %d/%d", s, i)
			}
			stored := payload[off : off+int(b.storedLen)]
			if crc32.ChecksumIEEE(stored) != b.crc {
				return nil, fmt.Errorf("artifact: tape block %d/%d checksum mismatch", s, i)
			}
			if b.enc == 1 {
				p.allRaw = false
			} else if b.rawLen != b.storedLen {
				return nil, fmt.Errorf("artifact: raw tape block %d/%d length mismatch", s, i)
			}
			p.rawLen += int(b.rawLen)
			off += int(b.storedLen)
			p.blocks = append(p.blocks, b)
		}
		plans[s] = p
	}
	if off != len(payload) {
		return nil, fmt.Errorf("artifact: tape payload has %d trailing bytes", len(payload)-off)
	}

	assemble := func(p secPlan) ([]byte, error) {
		if p.allRaw {
			return payload[p.start : p.start+p.rawLen], nil
		}
		out := make([]byte, 0, p.rawLen)
		o := p.start
		for i, b := range p.blocks {
			stored := payload[o : o+int(b.storedLen)]
			o += int(b.storedLen)
			if b.enc == 0 {
				out = append(out, stored...)
				continue
			}
			r := flate.NewReader(bytes.NewReader(stored))
			raw, err := io.ReadAll(io.LimitReader(r, int64(b.rawLen)+1))
			r.Close()
			if err != nil {
				return nil, fmt.Errorf("artifact: inflating tape block %d: %w", i, err)
			}
			if len(raw) != int(b.rawLen) {
				return nil, fmt.Errorf("artifact: tape block %d inflated to %d bytes, want %d", i, len(raw), b.rawLen)
			}
			out = append(out, raw...)
		}
		return out, nil
	}

	taken, err := assemble(plans[0])
	if err != nil {
		return nil, err
	}
	aux, err := assemble(plans[1])
	if err != nil {
		return nil, err
	}
	idxBytes, err := assemble(plans[2])
	if err != nil {
		return nil, err
	}
	if len(idxBytes)%seekPointBytes != 0 {
		return nil, fmt.Errorf("artifact: tape index length %d not a whole number of points", len(idxBytes))
	}
	wantPoints := 0
	if count > 0 {
		wantPoints = int((count + IndexStride - 1) / IndexStride)
	}
	if got := len(idxBytes) / seekPointBytes; got != wantPoints {
		return nil, fmt.Errorf("artifact: tape index has %d points, want %d for %d instructions", got, wantPoints, count)
	}
	index := make([]seekPoint, wantPoints)
	for i := range index {
		o := i * seekPointBytes
		index[i] = seekPoint{
			pc:     binary.LittleEndian.Uint64(idxBytes[o:]),
			bitPos: binary.LittleEndian.Uint64(idxBytes[o+8:]),
			auxOff: int(binary.LittleEndian.Uint64(idxBytes[o+16:])),
			prevEA: binary.LittleEndian.Uint64(idxBytes[o+24:]),
		}
		if index[i].auxOff > len(aux) || index[i].bitPos > uint64(len(taken))*8 {
			return nil, fmt.Errorf("artifact: tape index point %d out of section bounds", i)
		}
	}
	if count > 0 {
		if index[0] != (seekPoint{pc: startPC}) {
			return nil, fmt.Errorf("artifact: tape index origin %+v inconsistent with start PC %#x", index[0], startPC)
		}
	}
	return &Tape{
		prog:    prog,
		startPC: startPC,
		count:   count,
		halted:  halted,
		taken:   taken,
		aux:     aux,
		index:   index,
	}, nil
}
