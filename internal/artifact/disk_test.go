package artifact

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/parallel-frontend/pfe/internal/artifact/store"
	"github.com/parallel-frontend/pfe/internal/program"
)

// strCodec is a minimal ResultCodec for tests: values are strings, and only
// payloads carrying the "ok:" tag decode — anything else is a semantic
// decode failure, which must trigger quarantine.
type strCodec struct{}

func (strCodec) EncodeResult(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("strCodec: %T", v)
	}
	return []byte(s), nil
}

func (strCodec) DecodeResult(data []byte) (any, int64, error) {
	if !strings.HasPrefix(string(data), "ok:") {
		return nil, 0, errors.New("strCodec: missing tag")
	}
	return string(data), int64(len(data)), nil
}

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestCacheDiskTierWarm is the two-tier integration test: a cold cache
// populates the store; a fresh cache over the same directory (a new process,
// as far as the cache can tell) serves program, tape and result from disk —
// with correct provenance — and the warm artifacts equal the cold ones.
func TestCacheDiskTierWarm(t *testing.T) {
	dir := t.TempDir()
	spec := gccSpec(t)
	const minInsts = 5_000

	// Cold process: everything misses, builds, and is written back.
	st1 := openStoreT(t, dir)
	c1 := New(0)
	c1.SetStore(st1, strCodec{})
	p1, pinfo, err := c1.ProgramInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.Source != "miss" || pinfo.Hit {
		t.Fatalf("cold program lookup: %+v", pinfo)
	}
	t1, tinfo, err := c1.TapeInfo(spec, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tinfo.Source != "miss" {
		t.Fatalf("cold tape lookup: %+v", tinfo)
	}
	c1.PutResult("cell-1", "ok:ipc=1.5", 16)
	if ds := c1.DiskStats(); ds.Puts != 3 {
		t.Fatalf("cold run persisted %d artifacts, want 3 (program, tape, result): %+v", ds.Puts, ds)
	}
	// Second lookup in the same process: memory tier.
	if _, info, err := c1.ProgramInfo(spec); err != nil || info.Source != "mem-hit" {
		t.Fatalf("repeat program lookup: %+v, %v", info, err)
	}
	st1.Close()

	// Warm process: a fresh cache and store over the same directory.
	st2 := openStoreT(t, dir)
	c2 := New(0)
	c2.SetStore(st2, strCodec{})
	p2, pinfo2, err := c2.ProgramInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo2.Source != "disk-hit" || !pinfo2.Hit {
		t.Fatalf("warm program lookup: %+v", pinfo2)
	}
	if p2.Name != p1.Name || string(p2.Image) != string(p1.Image) || string(p2.Data) != string(p1.Data) {
		t.Fatal("warm program differs from cold build")
	}
	t2, tinfo2, err := c2.TapeInfo(spec, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tinfo2.Source != "disk-hit" {
		t.Fatalf("warm tape lookup: %+v", tinfo2)
	}
	if err := tapeStructEqual(t1, t2); err != nil {
		t.Fatalf("warm tape differs from cold recording: %v", err)
	}
	// The decoded tape must replay exactly like the cold one.
	drainBoth(t, "warm-tape", t1.NewReader(), t2.NewReader(), minInsts+200)

	v, rinfo, ok := c2.GetResultInfo("cell-1")
	if !ok || rinfo.Source != "disk-hit" || v.(string) != "ok:ipc=1.5" {
		t.Fatalf("warm result lookup: ok=%v info=%+v v=%v", ok, rinfo, v)
	}
	// The disk hit promotes into the memory tier.
	if _, rinfo2, ok := c2.GetResultInfo("cell-1"); !ok || rinfo2.Source != "mem-hit" {
		t.Fatalf("promoted result lookup: ok=%v info=%+v", ok, rinfo2)
	}
	ds := st2.Stats()
	if ds.Hits() != 3 || ds.Misses() != 0 {
		t.Fatalf("warm run traffic: %d hits / %d misses, want 3/0 (%+v)", ds.Hits(), ds.Misses(), ds.Kinds)
	}
}

// TestCacheDiskQuarantineRebuilds plants store blobs that pass the store's
// checksum but fail semantic decoding (the layer above the frame): the cache
// must quarantine them, rebuild the artifact from scratch, and leave a good
// blob behind for the next process.
func TestCacheDiskQuarantineRebuilds(t *testing.T) {
	dir := t.TempDir()
	spec := gccSpec(t)
	const minInsts = 4_000
	progKey := "prog:" + SpecHash(spec)
	tapeKey := fmt.Sprintf("tape:%s:%d", SpecHash(spec), minInsts)

	st0 := openStoreT(t, dir)
	if err := st0.Put("program", progKey, []byte("not a program")); err != nil {
		t.Fatal(err)
	}
	if err := st0.Put("tape", tapeKey, []byte("not a tape")); err != nil {
		t.Fatal(err)
	}
	st0.Close()

	st := openStoreT(t, dir)
	c := New(0)
	c.SetStore(st, nil)
	tape, info, err := c.TapeInfo(spec, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "miss" {
		t.Fatalf("poisoned tape lookup served from disk: %+v", info)
	}
	if st.Stats().Quarantined != 2 {
		t.Fatalf("poisoned blobs not quarantined: %+v", st.Stats())
	}
	// The rebuilt artifacts must match a from-scratch build...
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Record(p, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tapeStructEqual(ref, tape); err != nil {
		t.Fatalf("rebuilt tape differs from reference: %v", err)
	}
	// ...and the write-back must have replaced the poison with good blobs.
	data, ok := st.Get("tape", tapeKey)
	if !ok {
		t.Fatal("rebuilt tape not re-persisted")
	}
	if _, err := DecodeTape(data, p); err != nil {
		t.Fatalf("re-persisted tape does not decode: %v", err)
	}
	st.Close()
}

// TestCacheDiskResultQuarantine: an undecodable result blob is quarantined
// and reported as a miss, and a subsequent PutResult re-persists cleanly.
func TestCacheDiskResultQuarantine(t *testing.T) {
	dir := t.TempDir()
	st0 := openStoreT(t, dir)
	// The cache namespaces result keys as "res:"+key at both tiers.
	if err := st0.Put("result", "res:cell-9", []byte("garbage, no tag")); err != nil {
		t.Fatal(err)
	}
	st0.Close()

	st := openStoreT(t, dir)
	c := New(0)
	c.SetStore(st, strCodec{})
	if _, _, ok := c.GetResultInfo("cell-9"); ok {
		t.Fatal("undecodable result served")
	}
	if st.Stats().Quarantined != 1 {
		t.Fatalf("undecodable result not quarantined: %+v", st.Stats())
	}
	c.PutResult("cell-9", "ok:fresh", 8)
	st.Close()

	st2 := openStoreT(t, dir)
	c2 := New(0)
	c2.SetStore(st2, strCodec{})
	if v, info, ok := c2.GetResultInfo("cell-9"); !ok || info.Source != "disk-hit" || v.(string) != "ok:fresh" {
		t.Fatalf("re-persisted result lookup: ok=%v info=%+v v=%v", ok, info, v)
	}
}

// TestCacheWithoutStore pins the seam's default: no store attached means the
// in-memory tiers behave exactly as before, with "miss"/"mem-hit" provenance.
func TestCacheWithoutStore(t *testing.T) {
	spec := gccSpec(t)
	c := New(0)
	if _, info, err := c.ProgramInfo(spec); err != nil || info.Source != "miss" {
		t.Fatalf("first lookup: %+v, %v", info, err)
	}
	if _, info, err := c.ProgramInfo(spec); err != nil || info.Source != "mem-hit" {
		t.Fatalf("second lookup: %+v, %v", info, err)
	}
	if ds := c.DiskStats(); ds.Entries != 0 || ds.Puts != 0 {
		t.Fatalf("storeless cache reports disk activity: %+v", ds)
	}
}
