package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/parallel-frontend/pfe/internal/artifact/store"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/program"
)

// Kinds of cached artifacts, in Stats order.
const (
	kindProgram = iota
	kindTape
	kindResult
	kindWarm
	numKinds
)

var kindNames = [numKinds]string{"program", "tape", "result", "warm"}

// Stats is a point-in-time snapshot of a Cache's traffic and footprint.
type Stats struct {
	ProgramHits, ProgramMisses int64
	TapeHits, TapeMisses       int64
	ResultHits, ResultMisses   int64
	WarmHits, WarmMisses       int64

	Evictions int64 // entries removed by the byte cap
	Entries   int   // live entries
	Bytes     int64 // accounted footprint of live entries
	TapeBytes int64 // portion of Bytes holding tape payloads
	MaxBytes  int64 // configured cap (0 = unbounded)

	// TapeFallbackSteps counts instructions served by tape Readers' live
	// fallback (consumers reading past a truncated recording).
	TapeFallbackSteps int64
}

// Hits and Misses return the all-kind totals.
func (s Stats) Hits() int64 { return s.ProgramHits + s.TapeHits + s.ResultHits + s.WarmHits }
func (s Stats) Misses() int64 {
	return s.ProgramMisses + s.TapeMisses + s.ResultMisses + s.WarmMisses
}

// Cache is the content-addressed artifact store. All methods are safe for
// concurrent use; a nil *Cache disables every lookup (misses without
// recording them), so callers can thread an optional cache without
// branching.
type Cache struct {
	mu        sync.Mutex
	maxBytes  int64
	entries   map[string]*entry
	lru       *list.List // ready entries, front = most recently used
	bytes     int64
	tapeBytes int64

	hits, misses [numKinds]int64
	evictions    int64

	tapeFallback atomic.Int64

	// Persistent tier (optional, see SetStore): misses fall through to the
	// store before building, completed builds are written back.
	store       *store.Store
	resultCodec ResultCodec

	// Remote tier (optional, see SetRemote): misses that fall through the
	// disk store fetch from the coordinator's artifact plane before
	// building, and local builds are published back to it.
	remote *Remote
}

// entry is one cached artifact. A pending entry (ready not yet closed) is
// in the map but not the LRU: concurrent requests for the same key block on
// ready instead of duplicating the build (single-flight), and the byte cap
// only governs completed artifacts.
type entry struct {
	kind  int
	val   any
	err   error
	bytes int64
	ready chan struct{}
	elem  *list.Element // nil while pending
	key   string
}

// New returns a cache bounded to maxBytes of accounted artifact footprint
// (least-recently-used artifacts are evicted past the cap; the cap never
// blocks an in-flight build). maxBytes <= 0 means unbounded.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
}

// SpecHash returns the content address of a benchmark spec: every field of
// the generator input that determines the program image (and therefore the
// dynamic stream).
func SpecHash(spec program.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v", spec)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Info describes how one artifact lookup was served, for span annotation:
// the content address used and whether a cache tier satisfied it
// (single-flight waiters that shared an in-progress build count as hits).
type Info struct {
	Key string
	Hit bool
	// Source is which tier served the lookup: "mem-hit" (in-process cache),
	// "disk-hit" (persistent store), "remote-hit" (fetched from the
	// coordinator's artifact plane), or "miss" (built fresh). Empty when
	// the lookup bypassed the cache entirely (nil *Cache).
	Source string
}

// Program returns the built image for spec, building it on first use and
// sharing the same read-only *program.Program with every subsequent caller.
func (c *Cache) Program(spec program.Spec) (*program.Program, error) {
	p, _, err := c.ProgramInfo(spec)
	return p, err
}

// ProgramInfo is Program plus cache-hit provenance.
func (c *Cache) ProgramInfo(spec program.Spec) (*program.Program, Info, error) {
	if c == nil {
		p, err := program.Build(spec)
		return p, Info{}, err
	}
	key := "prog:" + SpecHash(spec)
	source := "miss"
	v, hit, err := c.get(key, kindProgram, func() (any, int64, error) {
		if p, ok := c.diskProgram(key); ok {
			source = "disk-hit"
			return p, programBytes(p), nil
		}
		// Serialize the build across processes; whoever loses the race finds
		// the winner's artifact on disk when the lock is granted.
		unlock := c.store.BuildLock(storeKindProgram, key)
		defer unlock()
		// Re-check behind the lock (Has first, so a plain cold build does not
		// double-count the miss): the lock's previous holder may have
		// completed this exact build.
		if c.store.Has(storeKindProgram, key) {
			if p, ok := c.diskProgram(key); ok {
				source = "disk-hit"
				return p, programBytes(p), nil
			}
		}
		// Third tier: the coordinator's artifact plane. Fetch-by-hash is
		// cheaper than building, and the fetched blob lands in the local
		// store so the wire cost is paid once per worker.
		if p, ok := c.remoteProgram(key); ok {
			source = "remote-hit"
			return p, programBytes(p), nil
		}
		p, err := program.Build(spec)
		if err != nil {
			return nil, 0, err
		}
		if c.store != nil || c.remote != nil {
			if data, err := EncodeProgram(p); err == nil {
				if c.store != nil {
					c.store.Put(storeKindProgram, key, data)
				}
				// Publish so the rest of the fleet fetches instead of
				// rebuilding (counted/dropped on error, never fatal).
				c.remote.Publish(storeKindProgram, key, data)
			}
		}
		return p, programBytes(p), nil
	})
	if err != nil {
		return nil, Info{Key: key, Source: source}, err
	}
	if hit {
		source = "mem-hit"
	}
	return v.(*program.Program), Info{Key: key, Hit: source != "miss", Source: source}, nil
}

// Tape returns a recording of spec's dynamic stream covering at least
// minInsts instructions (or to halt), recording it on first use. The shared
// program image comes from the same cache.
func (c *Cache) Tape(spec program.Spec, minInsts uint64) (*Tape, error) {
	t, _, err := c.TapeInfo(spec, minInsts)
	return t, err
}

// TapeInfo is Tape plus cache-hit provenance.
func (c *Cache) TapeInfo(spec program.Spec, minInsts uint64) (*Tape, Info, error) {
	if c == nil {
		return nil, Info{}, fmt.Errorf("artifact: nil cache")
	}
	key := fmt.Sprintf("tape:%s:%d", SpecHash(spec), minInsts)
	source := "miss"
	v, hit, err := c.get(key, kindTape, func() (any, int64, error) {
		p, err := c.Program(spec)
		if err != nil {
			return nil, 0, err
		}
		if t, ok := c.diskTape(key, p); ok {
			source = "disk-hit"
			return t, t.Bytes() + t.IndexBytes() + 64, nil
		}
		unlock := c.store.BuildLock(storeKindTape, key)
		defer unlock()
		if c.store.Has(storeKindTape, key) {
			if t, ok := c.diskTape(key, p); ok {
				source = "disk-hit"
				return t, t.Bytes() + t.IndexBytes() + 64, nil
			}
		}
		// Third tier: fetch the block-compressed tape from the coordinator
		// (recording is the single most expensive artifact build).
		if t, ok := c.remoteTape(key, p); ok {
			source = "remote-hit"
			return t, t.Bytes() + t.IndexBytes() + 64, nil
		}
		t, err := Record(p, minInsts)
		if err != nil {
			return nil, 0, err
		}
		t.sink = &c.tapeFallback
		if c.store != nil || c.remote != nil {
			data := EncodeTape(t)
			if c.store != nil {
				c.store.Put(storeKindTape, key, data)
			}
			c.remote.Publish(storeKindTape, key, data)
		}
		return t, t.Bytes() + t.IndexBytes() + 64, nil
	})
	if err != nil {
		return nil, Info{Key: key, Source: source}, err
	}
	if hit {
		source = "mem-hit"
	}
	return v.(*Tape), Info{Key: key, Hit: source != "miss", Source: source}, nil
}

// WarmState returns the warm-state snapshot stored under key — an opaque,
// already-encoded byte blob owned by the caller's codec (see pfe's warm-state
// artifacts) — building it with build on first use. Lookups walk the same
// tier chain as every other artifact: in-process memory, the local disk
// store, the coordinator's blob plane, then build (serialized across local
// processes by the store's build lock, with the finished snapshot persisted
// and published so the rest of the fleet fetches instead of re-warming).
func (c *Cache) WarmStateInfo(key string, build func() ([]byte, error)) ([]byte, Info, error) {
	if c == nil {
		data, err := build()
		return data, Info{}, err
	}
	source := "miss"
	v, hit, err := c.get(key, kindWarm, func() (any, int64, error) {
		if data, ok := c.diskWarm(key); ok {
			source = "disk-hit"
			return data, int64(len(data)) + 64, nil
		}
		unlock := c.store.BuildLock(storeKindWarm, key)
		defer unlock()
		if c.store.Has(storeKindWarm, key) {
			if data, ok := c.diskWarm(key); ok {
				source = "disk-hit"
				return data, int64(len(data)) + 64, nil
			}
		}
		if data, ok := c.remote.Fetch(storeKindWarm, key); ok {
			source = "remote-hit"
			if c.store != nil {
				c.store.Put(storeKindWarm, key, data)
			}
			return data, int64(len(data)) + 64, nil
		}
		data, err := build()
		if err != nil {
			return nil, 0, err
		}
		if c.store != nil {
			c.store.Put(storeKindWarm, key, data)
		}
		c.remote.Publish(storeKindWarm, key, data)
		return data, int64(len(data)) + 64, nil
	})
	if err != nil {
		return nil, Info{Key: key, Source: source}, err
	}
	if hit {
		source = "mem-hit"
	}
	return v.([]byte), Info{Key: key, Hit: source != "miss", Source: source}, nil
}

// GetResult returns a previously memoized cell result (see PutResult). The
// value is opaque to the cache; callers own the key scheme and must treat
// returned values as immutable shared state.
func (c *Cache) GetResult(key string) (any, bool) {
	v, _, ok := c.GetResultInfo(key)
	return v, ok
}

// GetResultInfo is GetResult plus tier provenance. A memory miss falls
// through to the persistent store (when attached with a ResultCodec); a disk
// hit is decoded and promoted into the memory tier so repeats stay cheap.
func (c *Cache) GetResultInfo(key string) (any, Info, bool) {
	if c == nil {
		return nil, Info{}, false
	}
	resKey := "res:" + key
	c.mu.Lock()
	if e := c.entries[resKey]; e != nil && e.elem != nil {
		c.lru.MoveToFront(e.elem)
		c.hits[kindResult]++
		c.mu.Unlock()
		return e.val, Info{Key: resKey, Hit: true, Source: "mem-hit"}, true
	}
	c.misses[kindResult]++
	c.mu.Unlock()

	if c.store != nil && c.resultCodec != nil {
		if data, ok := c.store.Get(storeKindResult, resKey); ok {
			v, bytes, err := c.resultCodec.DecodeResult(data)
			if err != nil {
				c.store.Quarantine(storeKindResult, resKey)
				return nil, Info{Key: resKey, Source: "miss"}, false
			}
			c.putResultMem(resKey, v, bytes)
			return v, Info{Key: resKey, Hit: true, Source: "disk-hit"}, true
		}
	}
	return nil, Info{Key: resKey, Source: "miss"}, false
}

// PutResult memoizes a completed cell result under key, accounted as bytes
// toward the cache cap, and persists it to the store when one is attached. A
// key already present is left untouched (results are deterministic, so the
// first value is as good as any).
func (c *Cache) PutResult(key string, v any, bytes int64) {
	if c == nil {
		return
	}
	resKey := "res:" + key
	c.putResultMem(resKey, v, bytes)
	if c.store != nil && c.resultCodec != nil && !c.store.Has(storeKindResult, resKey) {
		if data, err := c.resultCodec.EncodeResult(v); err == nil {
			c.store.Put(storeKindResult, resKey, data)
		}
	}
}

func (c *Cache) putResultMem(resKey string, v any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[resKey] != nil {
		return
	}
	e := &entry{kind: kindResult, val: v, bytes: bytes, key: resKey, ready: closedCh}
	c.insertReadyLocked(e)
}

var closedCh = func() chan struct{} { ch := make(chan struct{}); close(ch); return ch }()

// get returns the artifact for key, running build exactly once per key even
// under concurrent callers (waiters block until the builder finishes and
// count as hits — they shared the one build). The second return reports
// whether the lookup was a hit. Build errors are returned to every waiter
// but not cached.
func (c *Cache) get(key string, kind int, build func() (any, int64, error)) (any, bool, error) {
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.hits[kind]++
		c.mu.Unlock()
		<-e.ready
		return e.val, true, e.err
	}
	e := &entry{kind: kind, key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses[kind]++
	c.mu.Unlock()

	val, bytes, err := build()

	c.mu.Lock()
	e.val, e.err, e.bytes = val, err, bytes
	if err != nil {
		delete(c.entries, key)
	} else {
		c.insertReadyLocked(e)
	}
	c.mu.Unlock()
	close(e.ready)
	return val, false, err
}

// insertReadyLocked accounts a completed entry and applies the byte cap.
// Eviction only considers other ready entries (pending builds are not in
// the LRU), and always keeps the entry just inserted: a cap smaller than
// one artifact degrades to "no reuse", never to a failure.
func (c *Cache) insertReadyLocked(e *entry) {
	e.elem = c.lru.PushFront(e)
	c.entries[e.key] = e
	c.bytes += e.bytes
	if e.kind == kindTape {
		c.tapeBytes += e.bytes
	}
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		if back == nil || back.Value.(*entry) == e {
			break
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		if victim.kind == kindTape {
			c.tapeBytes -= victim.bytes
		}
		c.evictions++
	}
}

// Stats snapshots the cache's traffic counters and footprint.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		ProgramHits:       c.hits[kindProgram],
		ProgramMisses:     c.misses[kindProgram],
		TapeHits:          c.hits[kindTape],
		TapeMisses:        c.misses[kindTape],
		ResultHits:        c.hits[kindResult],
		ResultMisses:      c.misses[kindResult],
		WarmHits:          c.hits[kindWarm],
		WarmMisses:        c.misses[kindWarm],
		Evictions:         c.evictions,
		Entries:           len(c.entries),
		Bytes:             c.bytes,
		TapeBytes:         c.tapeBytes,
		MaxBytes:          c.maxBytes,
		TapeFallbackSteps: c.tapeFallback.Load(),
	}
}

// Register exposes the cache on an obs metrics registry:
// pfe_artifact_hits_total / pfe_artifact_misses_total (per artifact kind),
// pfe_artifact_evictions_total, pfe_artifact_bytes, pfe_artifact_tape_bytes
// and pfe_artifact_tape_fallback_steps_total.
func (c *Cache) Register(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	for k := 0; k < numKinds; k++ {
		k := k
		r.CounterFunc("pfe_artifact_hits_total",
			"Artifact cache hits by kind.",
			func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.hits[k]) },
			"kind", kindNames[k])
		r.CounterFunc("pfe_artifact_misses_total",
			"Artifact cache misses by kind.",
			func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.misses[k]) },
			"kind", kindNames[k])
	}
	r.CounterFunc("pfe_artifact_evictions_total",
		"Artifacts evicted by the -artifact-mem byte cap.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.evictions) })
	r.GaugeFunc("pfe_artifact_bytes",
		"Accounted footprint of live cached artifacts.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.bytes) })
	r.GaugeFunc("pfe_artifact_tape_bytes",
		"Portion of pfe_artifact_bytes holding oracle tape payloads.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.tapeBytes) })
	r.CounterFunc("pfe_artifact_tape_fallback_steps_total",
		"Instructions served by tape readers' live-emulation fallback.",
		func() float64 { return float64(c.tapeFallback.Load()) })
}

// programBytes estimates the resident footprint of a built program image.
func programBytes(p *program.Program) int64 {
	return int64(len(p.Data)) + int64(len(p.Image)) + int64(len(p.Code))*16 + 256
}
