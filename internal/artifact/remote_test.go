package artifact

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parallel-frontend/pfe/internal/artifact/store"
	"github.com/parallel-frontend/pfe/internal/fabric"
)

// blobServer stands up a coordinator-shaped blob endpoint over a relay.
func blobServer(t *testing.T, relay *BlobRelay) *httptest.Server {
	t.Helper()
	c := fabric.NewCoordinator(fabric.Options{Blobs: relay})
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteFetchPublishRoundTrip publishes a payload through one Remote and
// fetches it back through another, pinning both sides' traffic counters.
func TestRemoteFetchPublishRoundTrip(t *testing.T) {
	relay := NewBlobRelay(openStoreT(t, t.TempDir()), 0)
	srv := blobServer(t, relay)
	payload := []byte("tape payload, block-compressed on the wire")

	pub := &Remote{BaseURL: srv.URL}
	pub.Publish("tape", "tape:k:1", payload)
	if s := pub.Stats(); s.Publishes != 1 || s.Errors != 0 || s.BytesOut == 0 {
		t.Fatalf("publisher stats: %+v", s)
	}
	// Duplicate publish is acknowledged (the coordinator dedups server-side).
	pub.Publish("tape", "tape:k:1", payload)
	if s := pub.Stats(); s.Publishes != 2 || s.Errors != 0 {
		t.Fatalf("dup publish stats: %+v", s)
	}

	sub := &Remote{BaseURL: srv.URL}
	got, ok := sub.Fetch("tape", "tape:k:1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("fetch = (%q, %v), want the published payload", got, ok)
	}
	if _, ok := sub.Fetch("tape", "absent"); ok {
		t.Fatal("fetch of an absent key reported a hit")
	}
	s := sub.Stats()
	if s.Fetches != 1 || s.Misses != 1 || s.Corrupt != 0 || s.Errors != 0 {
		t.Fatalf("fetcher stats: %+v", s)
	}
	if s.BytesIn <= int64(len(payload)) {
		t.Errorf("BytesIn = %d, want > payload length (frame overhead)", s.BytesIn)
	}
}

// TestRemoteFetchRetriesCorruptTransfer serves a bit-flipped frame on the
// first transfer: the Remote must reject it by CRC, retry, and succeed —
// and a permanently corrupt source must exhaust attempts into a miss.
func TestRemoteFetchRetriesCorruptTransfer(t *testing.T) {
	framed := store.Frame([]byte("oracle tape"))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := append([]byte(nil), framed...)
		if calls.Add(1) == 1 {
			body[len(body)-1] ^= 0xff
		}
		w.Write(body)
	}))
	defer srv.Close()

	r := &Remote{BaseURL: srv.URL}
	got, ok := r.Fetch("tape", "k")
	if !ok || string(got) != "oracle tape" {
		t.Fatalf("fetch after one corrupt transfer = (%q, %v)", got, ok)
	}
	if s := r.Stats(); s.Corrupt != 1 || s.Fetches != 1 {
		t.Fatalf("stats after transient corruption: %+v", s)
	}

	// Permanently corrupt source: every attempt rejected, ends as a miss.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := append([]byte(nil), framed...)
		body[0] ^= 0xff
		w.Write(body)
	}))
	defer bad.Close()
	r2 := &Remote{BaseURL: bad.URL, MaxAttempts: 2}
	if _, ok := r2.Fetch("tape", "k"); ok {
		t.Fatal("permanently corrupt source reported a hit")
	}
	if s := r2.Stats(); s.Corrupt != 2 || s.Fetches != 0 {
		t.Fatalf("stats after exhausted retries: %+v", s)
	}
}

// TestRemote404IsDefinitive pins that a miss answers in one round trip —
// retrying a 404 would add latency to every cold build for nothing.
func TestRemote404IsDefinitive(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	r := &Remote{BaseURL: srv.URL}
	if _, ok := r.Fetch("tape", "k"); ok {
		t.Fatal("404 reported a hit")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("404 took %d round trips, want 1", n)
	}
	if s := r.Stats(); s.Misses != 1 || s.Errors != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// TestNilRemote pins nil-safety: the single-process paths thread a nil
// *Remote without branching.
func TestNilRemote(t *testing.T) {
	var r *Remote
	if _, ok := r.Fetch("tape", "k"); ok {
		t.Error("nil Remote fetched something")
	}
	r.Publish("tape", "k", []byte("x"))
	if s := r.Stats(); s != (RemoteStats{}) {
		t.Errorf("nil Remote stats: %+v", s)
	}
}

// TestBlobRelayMemFallback exercises the storeless relay: publishes land in
// the bounded memory map, duplicates and over-cap publishes are dropped
// without error, and corrupt frames are rejected.
func TestBlobRelayMemFallback(t *testing.T) {
	framed := store.Frame([]byte("small"))
	relay := NewBlobRelay(nil, int64(len(framed))) // room for exactly one blob
	if acc, err := relay.AcceptBlob("tape", "a", framed); err != nil || !acc {
		t.Fatalf("accept = (%v, %v)", acc, err)
	}
	if acc, err := relay.AcceptBlob("tape", "a", framed); err != nil || acc {
		t.Fatalf("dup accept = (%v, %v), want (false, nil)", acc, err)
	}
	got, ok := relay.OpenBlob("tape", "a")
	if !ok || !bytes.Equal(got, framed) {
		t.Fatal("memory relay did not serve the accepted frame back")
	}
	// Cap: a second distinct blob would exceed it; dropped, no error.
	if acc, err := relay.AcceptBlob("tape", "b", framed); err != nil || acc {
		t.Fatalf("over-cap accept = (%v, %v), want (false, nil)", acc, err)
	}
	if _, ok := relay.OpenBlob("tape", "b"); ok {
		t.Error("over-cap blob was ingested")
	}
	corrupt := append([]byte(nil), framed...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := relay.AcceptBlob("tape", "c", corrupt); err == nil {
		t.Error("corrupt frame accepted")
	}
}

// TestCacheRemoteReadThrough is the artifact-plane integration test: a
// builder cache publishes its program and tape to the coordinator; a fresh,
// empty, memory-only cache (a cold fetching worker) pulls both over the wire
// with "remote-hit" provenance and artifacts bit-identical to the builder's;
// and a third cache with its own empty disk store persists fetched blobs
// locally so its next process starts warm without touching the wire.
func TestCacheRemoteReadThrough(t *testing.T) {
	relay := NewBlobRelay(openStoreT(t, t.TempDir()), 0)
	srv := blobServer(t, relay)
	spec := gccSpec(t)
	const minInsts = 5_000

	// Builder: cold everywhere, builds locally, publishes both artifacts.
	builder := New(0)
	builder.SetRemote(&Remote{BaseURL: srv.URL})
	p1, pinfo, err := builder.ProgramInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.Source != "miss" {
		t.Fatalf("builder program lookup: %+v", pinfo)
	}
	t1, _, err := builder.TapeInfo(spec, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if s := builder.Remote().Stats(); s.Publishes != 2 {
		t.Fatalf("builder published %d blobs, want 2 (program, tape): %+v", s.Publishes, s)
	}

	// Fetching worker: memory-only cache, empty, same coordinator.
	fetcher := New(0)
	fetcher.SetRemote(&Remote{BaseURL: srv.URL})
	p2, pinfo2, err := fetcher.ProgramInfo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo2.Source != "remote-hit" || !pinfo2.Hit {
		t.Fatalf("fetcher program lookup: %+v", pinfo2)
	}
	if p2.Name != p1.Name || !bytes.Equal(p2.Image, p1.Image) || !bytes.Equal(p2.Data, p1.Data) {
		t.Fatal("fetched program differs from the builder's")
	}
	t2, tinfo2, err := fetcher.TapeInfo(spec, minInsts)
	if err != nil {
		t.Fatal(err)
	}
	if tinfo2.Source != "remote-hit" {
		t.Fatalf("fetcher tape lookup: %+v", tinfo2)
	}
	if err := tapeStructEqual(t1, t2); err != nil {
		t.Fatalf("fetched tape differs from the builder's recording: %v", err)
	}
	drainBoth(t, "remote-tape", t1.NewReader(), t2.NewReader(), minInsts+200)
	if s := fetcher.Remote().Stats(); s.Fetches != 2 || s.Publishes != 0 {
		t.Fatalf("fetcher wire traffic: %+v, want 2 fetches and no publishes", s)
	}
	// Second lookup: memory tier, no new wire traffic.
	if _, info, err := fetcher.ProgramInfo(spec); err != nil || info.Source != "mem-hit" {
		t.Fatalf("repeat fetcher lookup: %+v, %v", info, err)
	}
	if s := fetcher.Remote().Stats(); s.Fetches != 2 {
		t.Fatalf("repeat lookup touched the wire: %+v", s)
	}

	// Disk-backed worker: the fetched blobs persist into its local store.
	dir := t.TempDir()
	disk := New(0)
	disk.SetStore(openStoreT(t, dir), nil)
	disk.SetRemote(&Remote{BaseURL: srv.URL})
	if _, info, err := disk.ProgramInfo(spec); err != nil || info.Source != "remote-hit" {
		t.Fatalf("disk worker program lookup: %+v, %v", info, err)
	}
	if t3, info, err := disk.TapeInfo(spec, minInsts); err != nil || info.Source != "remote-hit" {
		t.Fatalf("disk worker tape lookup: %+v, %v", info, err)
	} else if err := tapeStructEqual(t1, t3); err != nil {
		t.Fatalf("disk worker tape differs: %v", err)
	}
	// Next process over the same directory: warm from disk, wire untouched.
	warm := New(0)
	warm.SetStore(openStoreT(t, dir), nil)
	rem := &Remote{BaseURL: srv.URL}
	warm.SetRemote(rem)
	if _, info, err := warm.ProgramInfo(spec); err != nil || info.Source != "disk-hit" {
		t.Fatalf("warm program lookup: %+v, %v", info, err)
	}
	if _, info, err := warm.TapeInfo(spec, minInsts); err != nil || info.Source != "disk-hit" {
		t.Fatalf("warm tape lookup: %+v, %v", info, err)
	}
	if s := rem.Stats(); s.Fetches != 0 && s.Misses != 0 {
		t.Fatalf("warm process touched the wire: %+v", s)
	}
}

// TestCacheRemoteMissBuildsLocally pins the fallback: with the plane up but
// empty and no local store, a cache still builds — the remote tier is an
// accelerator, never a correctness dependency.
func TestCacheRemoteMissBuildsLocally(t *testing.T) {
	relay := NewBlobRelay(nil, 0)
	srv := blobServer(t, relay)
	c := New(0)
	c.SetRemote(&Remote{BaseURL: srv.URL})
	spec := gccSpec(t)
	if _, info, err := c.ProgramInfo(spec); err != nil || info.Source != "miss" {
		t.Fatalf("program lookup against an empty plane: %+v, %v", info, err)
	}
	s := c.Remote().Stats()
	if s.Misses == 0 {
		t.Errorf("no recorded 404 miss: %+v", s)
	}
	if s.Publishes == 0 {
		t.Errorf("local build was not published back: %+v", s)
	}
	// The publish seeded the plane: a second cache now fetches it.
	c2 := New(0)
	c2.SetRemote(&Remote{BaseURL: srv.URL})
	if _, info, err := c2.ProgramInfo(spec); err != nil || info.Source != "remote-hit" {
		t.Fatalf("second cache lookup: %+v, %v", info, err)
	}
}

// TestRemoteFetchWaitsForBuilder pins the client half of build collapsing: a
// 202 parks the fetch, which polls until the builder's publish lands and
// then completes normally — one transfer, no duplicate build signal.
func TestRemoteFetchWaitsForBuilder(t *testing.T) {
	framed := store.Frame([]byte("tape built elsewhere"))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusAccepted)
			return
		}
		w.Write(framed)
	}))
	defer srv.Close()
	r := &Remote{BaseURL: srv.URL}
	got, ok := r.Fetch("tape", "k")
	if !ok || string(got) != "tape built elsewhere" {
		t.Fatalf("fetch behind a builder = (%q, %v)", got, ok)
	}
	s := r.Stats()
	if s.Waits != 2 || s.Fetches != 1 || s.Misses != 0 {
		t.Fatalf("stats: %+v, want 2 waits then 1 fetch", s)
	}
	if s.WaitSeconds <= 0 {
		t.Errorf("no wait time recorded: %+v", s)
	}
}

// TestRemoteFetchWaitBudgetExpires pins the stall bound: a fetch parked
// behind a builder that never publishes gives up after WaitBudget and
// reports a miss, so the caller builds locally instead of hanging.
func TestRemoteFetchWaitBudgetExpires(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	r := &Remote{BaseURL: srv.URL, WaitBudget: 60 * time.Millisecond}
	start := time.Now()
	if _, ok := r.Fetch("tape", "k"); ok {
		t.Fatal("fetch behind a dead builder reported a hit")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("fetch hung %v past its wait budget", waited)
	}
	if s := r.Stats(); s.Waits < 2 {
		t.Errorf("stats: %+v, want at least 2 parked polls", s)
	}
	// Negative budget: never park, miss on the first 202.
	r2 := &Remote{BaseURL: srv.URL, WaitBudget: -1}
	if _, ok := r2.Fetch("tape", "k"); ok {
		t.Fatal("never-wait fetch reported a hit")
	}
	if s := r2.Stats(); s.Waits != 1 {
		t.Errorf("never-wait stats: %+v, want exactly 1 observed 202", s)
	}
}

// TestWarmStateTierChain walks a warm-state snapshot through every tier:
// built once, then served from memory, from the local disk store, and from
// the coordinator's blob plane by a different worker — never rebuilt.
func TestWarmStateTierChain(t *testing.T) {
	relay := NewBlobRelay(openStoreT(t, t.TempDir()), 0)
	srv := blobServer(t, relay)
	snapshot := []byte("warmed front-end state, opaque to the cache")
	var builds atomic.Int64
	build := func() ([]byte, error) { builds.Add(1); return snapshot, nil }

	// Worker A: cold everywhere — builds, persists, publishes.
	dirA := t.TempDir()
	a := New(0)
	a.SetStore(openStoreT(t, dirA), nil)
	a.SetRemote(&Remote{BaseURL: srv.URL})
	got, info, err := a.WarmStateInfo("ws1:k", build)
	if err != nil || !bytes.Equal(got, snapshot) {
		t.Fatalf("WarmStateInfo = (%q, %v)", got, err)
	}
	if info.Source != "miss" || builds.Load() != 1 {
		t.Fatalf("first lookup source = %q, builds = %d", info.Source, builds.Load())
	}
	if _, info, _ = a.WarmStateInfo("ws1:k", build); info.Source != "mem-hit" {
		t.Fatalf("repeat lookup source = %q, want mem-hit", info.Source)
	}

	// A fresh process over worker A's store: disk hit, no rebuild.
	a2 := New(0)
	a2.SetStore(openStoreT(t, dirA), nil)
	if _, info, _ = a2.WarmStateInfo("ws1:k", build); info.Source != "disk-hit" {
		t.Fatalf("same-store lookup source = %q, want disk-hit", info.Source)
	}

	// Worker B: empty store, same coordinator — fetches over the plane and
	// persists locally, so a restart of B hits its own disk.
	dirB := t.TempDir()
	b := New(0)
	b.SetStore(openStoreT(t, dirB), nil)
	b.SetRemote(&Remote{BaseURL: srv.URL})
	if _, info, _ = b.WarmStateInfo("ws1:k", build); info.Source != "remote-hit" {
		t.Fatalf("cross-worker lookup source = %q, want remote-hit", info.Source)
	}
	b2 := New(0)
	b2.SetStore(openStoreT(t, dirB), nil)
	if _, info, _ = b2.WarmStateInfo("ws1:k", build); info.Source != "disk-hit" {
		t.Fatalf("post-fetch restart source = %q, want disk-hit", info.Source)
	}
	if builds.Load() != 1 {
		t.Fatalf("snapshot built %d times, want exactly once", builds.Load())
	}

	if s := a.Stats(); s.WarmHits != 1 || s.WarmMisses != 1 {
		t.Fatalf("worker A warm traffic: %d hits / %d misses, want 1 / 1", s.WarmHits, s.WarmMisses)
	}
}

// TestWarmStateQuarantine drops a checksum-valid but semantically broken
// snapshot from both tiers so the next lookup rebuilds instead of re-serving
// the bad blob.
func TestWarmStateQuarantine(t *testing.T) {
	var builds atomic.Int64
	c := New(0)
	c.SetStore(openStoreT(t, t.TempDir()), nil)
	build := func() ([]byte, error) { builds.Add(1); return []byte("v1"), nil }
	if _, _, err := c.WarmStateInfo("ws1:q", build); err != nil {
		t.Fatal(err)
	}
	c.QuarantineWarm("ws1:q")
	if _, info, _ := c.WarmStateInfo("ws1:q", build); info.Source != "miss" {
		t.Fatalf("post-quarantine source = %q, want miss (rebuild)", info.Source)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
}
