package frag

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

func straight(pc uint64, n int) []Dyn {
	ds := make([]Dyn, n)
	for i := range ds {
		ds[i] = Dyn{PC: pc + uint64(i*4), Inst: isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 2}}
	}
	return ds
}

func TestSplitStopsAtSixteen(t *testing.T) {
	n, id := Split(straight(0x1000, 40))
	if n != MaxLen {
		t.Errorf("straight-line fragment length = %d, want %d", n, MaxLen)
	}
	if id.StartPC != 0x1000 || id.NumBr != 0 {
		t.Errorf("bad id %v", id)
	}
}

func TestSplitStopsAtIndirect(t *testing.T) {
	ds := straight(0x1000, 3)
	ds = append(ds, Dyn{PC: 0x100c, Inst: isa.Inst{Op: isa.OpJr, Rs1: isa.RegLink}})
	ds = append(ds, straight(0x2000, 10)...)
	n, id := Split(ds)
	if n != 4 {
		t.Errorf("fragment with return at position 4: length %d, want 4", n)
	}
	if id.NumBr != 0 {
		t.Errorf("return must not consume a direction bit: %v", id)
	}
}

func TestSplitEarlyBranchContinues(t *testing.T) {
	// A conditional branch at position 4 (<= 8) must not terminate.
	ds := straight(0x1000, 3)
	ds = append(ds, Dyn{PC: 0x100c, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: 10}, Taken: true})
	ds = append(ds, straight(0x1038, 20)...)
	n, id := Split(ds)
	if n != MaxLen {
		t.Errorf("length %d, want %d", n, MaxLen)
	}
	if id.NumBr != 1 || id.BrMask != 1 {
		t.Errorf("expected one taken branch recorded, got %v", id)
	}
}

func TestSplitLateBranchStops(t *testing.T) {
	// A conditional branch at position 9 (> 8) terminates the fragment.
	ds := straight(0x1000, 8)
	ds = append(ds, Dyn{PC: 0x1020, Inst: isa.Inst{Op: isa.OpBeq, Rs1: 1, Rs2: 1, Imm: 5}, Taken: false})
	ds = append(ds, straight(0x3000, 10)...)
	n, id := Split(ds)
	if n != 9 {
		t.Errorf("length %d, want 9", n)
	}
	if id.NumBr != 1 || id.BrMask != 0 {
		t.Errorf("expected one not-taken branch recorded, got %v", id)
	}
}

func TestSplitBranchAtCutoffContinues(t *testing.T) {
	// Position 8 exactly: must NOT stop ("after the eighth instruction").
	ds := straight(0x1000, 7)
	ds = append(ds, Dyn{PC: 0x101c, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: 4}, Taken: true})
	ds = append(ds, straight(0x1034, 20)...)
	n, _ := Split(ds)
	if n != MaxLen {
		t.Errorf("length %d, want %d (branch at position 8 continues)", n, MaxLen)
	}
}

func TestIDKeyUniqueness(t *testing.T) {
	seen := make(map[uint64]ID)
	ids := []ID{
		{StartPC: 0x1000},
		{StartPC: 0x1004},
		{StartPC: 0x1000, BrMask: 1, NumBr: 1},
		{StartPC: 0x1000, BrMask: 0, NumBr: 1},
		{StartPC: 0x1000, BrMask: 3, NumBr: 2},
		{StartPC: 0x2000, BrMask: 3, NumBr: 2},
	}
	for _, id := range ids {
		k := id.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v", prev, id)
		}
		seen[k] = id
	}
}

// TestFromCodeMatchesSplit is the core speculative-fetch correctness
// property: splitting the true dynamic stream yields an ID; walking the
// static code with that ID must reproduce the exact same instruction
// sequence. The front-end relies on this equivalence whenever a fragment
// prediction is correct.
func TestFromCodeMatchesSplit(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m := emu.New(p)

	var stream []Dyn
	refill := func() {
		for len(stream) < 2*MaxLen && !m.Halted() {
			d, err := m.Step()
			if err != nil {
				break
			}
			stream = append(stream, Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
		}
	}

	frags := 0
	for refill(); len(stream) > 0; refill() {
		n, id := Split(stream)
		if n == 0 {
			break
		}
		f := FromCode(p, id)
		if f.Len() != n {
			t.Fatalf("fragment %d %v: FromCode length %d, split length %d", frags, id, f.Len(), n)
		}
		for i := 0; i < n; i++ {
			if f.PCs[i] != stream[i].PC {
				t.Fatalf("fragment %d %v: PC[%d] = %#x, stream %#x", frags, id, i, f.PCs[i], stream[i].PC)
			}
			if f.Insts[i] != stream[i].Inst {
				t.Fatalf("fragment %d %v: inst[%d] mismatch", frags, id, i)
			}
		}
		stream = stream[n:]
		frags++
	}
	if frags < 100 {
		t.Errorf("only %d fragments checked", frags)
	}
}

// TestTable2FragmentSizes calibrates the suite against the paper's Table 2:
// every benchmark's average fragment size must land in the paper's overall
// range (roughly 9–13 instructions).
func TestTable2FragmentSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite calibration is not short")
	}
	for _, spec := range program.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			avg := averageFragmentSize(t, spec, 120_000)
			if avg < 7.5 || avg > 14.5 {
				t.Errorf("%s: average fragment size %.2f outside plausible range [7.5,14.5]", spec.Name, avg)
			}
			t.Logf("%s: avg fragment size %.2f", spec.Name, avg)
		})
	}
}

func averageFragmentSize(t *testing.T, spec program.Spec, maxInsts int) float64 {
	t.Helper()
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	var stream []Dyn
	total, frags := 0, 0
	for total < maxInsts {
		for len(stream) < 2*MaxLen && !m.Halted() {
			d, err := m.Step()
			if err != nil {
				break
			}
			stream = append(stream, Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
		}
		if len(stream) == 0 {
			break
		}
		n, _ := Split(stream)
		stream = stream[n:]
		total += n
		frags++
	}
	if frags == 0 {
		t.Fatal("no fragments")
	}
	return float64(total) / float64(frags)
}

func TestPoolReuse(t *testing.T) {
	pool := NewPool(4)
	f := &Fragment{ID: ID{StartPC: 0x1000}, PCs: []uint64{0x1000}, Insts: []isa.Inst{{Op: isa.OpAdd, Rd: 1}}}
	b, reused := pool.Allocate(f, 0)
	if b == nil || reused {
		t.Fatal("first allocation must be fresh")
	}
	b.MarkFetched(1)
	if !b.Complete {
		t.Fatal("buffer should be complete")
	}
	pool.Release(b)

	// Reuse must keep the buffer's stale copy: pass a DIFFERENT Fragment
	// value with the same ID and verify the original contents survive.
	f2 := &Fragment{ID: f.ID}
	b2, reused := pool.Allocate(f2, 1)
	if b2 != b || !reused {
		t.Fatal("expected reuse of the same buffer")
	}
	if b2.Frag != f {
		t.Error("reuse must keep the buffer's existing contents, not rebuild")
	}
	if !b2.Complete || b2.Fetched != 1 {
		t.Error("reused buffer must be immediately complete")
	}
	if pool.ReuseRate() != 0.5 {
		t.Errorf("reuse rate %.2f, want 0.5", pool.ReuseRate())
	}
}

func TestPoolExhaustion(t *testing.T) {
	pool := NewPool(2)
	mk := func(pc uint64) *Fragment { return &Fragment{ID: ID{StartPC: pc}} }
	a, _ := pool.Allocate(mk(0x100), 0)
	b, _ := pool.Allocate(mk(0x200), 1)
	if a == nil || b == nil {
		t.Fatal("allocations failed")
	}
	if c, _ := pool.Allocate(mk(0x300), 2); c != nil {
		t.Fatal("pool should be exhausted")
	}
	pool.Release(a)
	if c, _ := pool.Allocate(mk(0x300), 2); c == nil {
		t.Fatal("allocation should succeed after release")
	}
}

func TestPoolSquashDropsContents(t *testing.T) {
	pool := NewPool(4)
	mk := func(pc uint64) *Fragment { return &Fragment{ID: ID{StartPC: pc}} }
	pool.Allocate(mk(0x100), 10)
	pool.Allocate(mk(0x200), 11)
	pool.SquashYounger(11)
	if pool.InUseCount() != 1 {
		t.Errorf("in use = %d, want 1", pool.InUseCount())
	}
	// The squashed fragment must not be reusable.
	b, reused := pool.Allocate(mk(0x200), 12)
	if b == nil || reused {
		t.Error("squashed contents must not satisfy reuse")
	}
	old := pool.Oldest()
	if old == nil || old.Seq != 10 {
		t.Errorf("oldest = %+v, want seq 10", old)
	}
}

func TestPoolVictimRoundRobin(t *testing.T) {
	pool := NewPool(3)
	mk := func(pc uint64) *Fragment { return &Fragment{ID: ID{StartPC: pc}} }
	var seq uint64
	alloc := func(pc uint64) *Buffer {
		b, _ := pool.Allocate(mk(pc), seq)
		seq++
		return b
	}
	a := alloc(0x100)
	pool.Release(a)
	b := alloc(0x200)
	pool.Release(b)
	c := alloc(0x300)
	pool.Release(c)
	if a.Index == b.Index || b.Index == c.Index || a.Index == c.Index {
		t.Errorf("round-robin should use distinct buffers: %d %d %d", a.Index, b.Index, c.Index)
	}
}
