// Package frag implements the paper's fragment model (§3.1–§3.2): the
// heuristics that chop the dynamic instruction stream into fragments, the
// fragment identity used by the fragment predictor and the trace cache, and
// the fragment buffers that stage fetched fragments until rename reads them.
//
// The paper deliberately makes fragments identical to traces so the parallel
// front-end can be compared against a trace cache with no selection bias;
// this package is therefore shared by both mechanisms.
package frag

import (
	"fmt"
	"strings"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// MaxLen is the paper's maximum fragment length in instructions and
// BranchCutoff the position after which a conditional branch terminates the
// fragment; MaxBranches bounds the conditional branches a default fragment
// can contain (eight early branches plus the terminating one). These are
// the defaults — Heuristics generalizes them for the fragment-selection
// studies the paper's conclusion calls for.
const (
	MaxLen       = 16
	BranchCutoff = 8
	MaxBranches  = BranchCutoff + 1

	// AbsMaxLen is the hard upper bound on fragment length for ANY
	// heuristics: the ID's direction mask has 32 bits, so no selectable
	// fragment can exceed 32 instructions. Fixed-size per-fragment storage
	// (e.g. the simulator's recycled op arrays) is sized by this.
	AbsMaxLen = 32
)

// Heuristics parameterizes fragment selection (§6: "fragments can be longer
// and can have a larger variance in size ... further research on fragment
// selection"). The paper's heuristics are {MaxLen: 16, BranchCutoff: 8};
// larger values produce longer fragments at the cost of more direction bits
// per prediction. MaxLen is capped at 32 (the ID's direction-mask width).
type Heuristics struct {
	MaxLen       int
	BranchCutoff int
}

// DefaultHeuristics returns the paper's fragment-selection parameters.
func DefaultHeuristics() Heuristics {
	return Heuristics{MaxLen: MaxLen, BranchCutoff: BranchCutoff}
}

// normalize clamps a (possibly zero) Heuristics to valid values.
func (h Heuristics) normalize() Heuristics {
	if h.MaxLen <= 0 {
		h.MaxLen = MaxLen
	}
	if h.MaxLen > AbsMaxLen {
		h.MaxLen = AbsMaxLen
	}
	if h.BranchCutoff <= 0 {
		h.BranchCutoff = BranchCutoff
	}
	return h
}

// ID identifies a fragment the way the paper's trace predictor does: by its
// starting address and the directions of its conditional branches. Length is
// derived (the static code plus the directions determine it) and is not part
// of identity.
type ID struct {
	StartPC uint64
	BrMask  uint32 // bit i = direction of the i-th conditional branch
	NumBr   uint8  // number of conditional branches in the fragment
}

// Key packs the ID into a uint64 for hashing: word-address in the low bits,
// direction mask and branch count above. Code images are far below 2^28
// bytes, so the packing is collision-free.
func (id ID) Key() uint64 {
	return id.StartPC/isa.InstBytes | uint64(id.BrMask)<<26 | uint64(id.NumBr)<<58
}

// Zero reports whether the ID is the zero value (no fragment).
func (id ID) Zero() bool { return id == ID{} }

// String renders the ID compactly for logs and tests.
func (id ID) String() string {
	if id.Zero() {
		return "frag{}"
	}
	var dirs strings.Builder
	for i := 0; i < int(id.NumBr); i++ {
		if id.BrMask&(1<<i) != 0 {
			dirs.WriteByte('T')
		} else {
			dirs.WriteByte('N')
		}
	}
	return fmt.Sprintf("frag{%#x %s}", id.StartPC, dirs.String())
}

// Fragment is a materialized fragment: its identity plus the instructions
// (and their addresses) it contains.
type Fragment struct {
	ID    ID
	PCs   []uint64
	Insts []isa.Inst
}

// Len returns the fragment length in instructions.
func (f *Fragment) Len() int { return len(f.Insts) }

// EndsInIndirect reports whether the fragment was terminated by an indirect
// branch (return, indirect jump or indirect call).
func (f *Fragment) EndsInIndirect() bool {
	if len(f.Insts) == 0 {
		return false
	}
	return f.Insts[len(f.Insts)-1].IsIndirect()
}

// FallthroughPC returns the address the stream continues at if the fragment
// is not ended by a taken control transfer: the address after the last
// instruction.
func (f *Fragment) FallthroughPC() uint64 {
	if len(f.PCs) == 0 {
		return f.ID.StartPC
	}
	return f.PCs[len(f.PCs)-1] + isa.InstBytes
}

// Stops reports whether instruction in at 1-indexed position pos terminates
// a fragment under h: all indirect branches stop; a conditional branch
// stops if it is after the cutoff; the MaxLen-th instruction always stops.
// Halt also stops.
func (h Heuristics) Stops(in isa.Inst, pos int) bool {
	switch {
	case in.IsIndirect():
		return true
	case in.IsCondBranch() && pos > h.BranchCutoff:
		return true
	case pos >= h.MaxLen:
		return true
	case in.Op == isa.OpHalt:
		return true
	}
	return false
}

// stops applies the default heuristics.
func stops(in isa.Inst, pos int) bool { return DefaultHeuristics().Stops(in, pos) }

// CodeReader provides static code access for speculative fragment
// construction; *program.Program implements it.
type CodeReader interface {
	InstAt(pc uint64) (isa.Inst, bool)
}

// FromCode walks the static code from id.StartPC following id's predicted
// branch directions and materializes the fragment the front-end should
// fetch. Direction bits beyond id.NumBr (possible only for corrupted or
// aliased predictions) default to not-taken. The walk stops early if it
// leaves the code image, which models wrong-path fetch running into
// non-code bytes.
//
// The returned fragment's ID is canonicalized: NumBr is the number of
// conditional branches actually walked and BrMask holds exactly the
// direction bits consumed (including the terminating branch's), so the ID
// matches what Split would produce for the same instruction sequence.
func FromCode(code CodeReader, id ID) *Fragment {
	return DefaultHeuristics().FromCode(code, id)
}

// FromCode is the heuristics-parameterized variant of the package-level
// FromCode.
func (h Heuristics) FromCode(code CodeReader, id ID) *Fragment {
	h = h.normalize()
	f := &Fragment{ID: ID{StartPC: id.StartPC}}
	pc := id.StartPC
	br := 0
	for pos := 1; pos <= h.MaxLen; pos++ {
		in, ok := code.InstAt(pc)
		if !ok {
			break
		}
		f.PCs = append(f.PCs, pc)
		f.Insts = append(f.Insts, in)
		taken := false
		if in.IsCondBranch() {
			taken = br < int(id.NumBr) && id.BrMask&(1<<br) != 0
			if taken {
				f.ID.BrMask |= 1 << br
			}
			br++
		}
		if h.Stops(in, pos) {
			break
		}
		switch {
		case in.IsCondBranch():
			if taken {
				pc = uint64(int64(pc) + isa.InstBytes + int64(in.Imm)*isa.InstBytes)
			} else {
				pc += isa.InstBytes
			}
		case in.IsDirectJump():
			pc = uint64(in.Imm) * isa.InstBytes
		default:
			pc += isa.InstBytes
		}
	}
	f.ID.NumBr = uint8(br)
	return f
}

// DirectionOf returns the canonical direction bit (bit index i for the i-th
// conditional branch) consumed for the branch at instruction index idx, and
// whether that instruction is a conditional branch.
func (f *Fragment) DirectionOf(idx int) (taken, ok bool) {
	br := 0
	for i, in := range f.Insts {
		if !in.IsCondBranch() {
			continue
		}
		if i == idx {
			return f.ID.BrMask&(1<<br) != 0, true
		}
		br++
	}
	return false, false
}

// Dyn is the slice of the true dynamic stream the splitter consumes; it
// mirrors emu.DynInst without importing it (frag is below emu in the
// dependency order so the trace cache and predictor can use it standalone).
type Dyn struct {
	PC    uint64
	Inst  isa.Inst
	Taken bool
}

// Split consumes the longest prefix of stream that forms one fragment under
// the selection heuristics and returns its length and identity. An empty
// stream returns n == 0.
func Split(stream []Dyn) (n int, id ID) {
	return DefaultHeuristics().Split(stream)
}

// Split is the heuristics-parameterized variant of the package-level Split.
func (h Heuristics) Split(stream []Dyn) (n int, id ID) {
	h = h.normalize()
	if len(stream) == 0 {
		return 0, ID{}
	}
	id.StartPC = stream[0].PC
	for i, d := range stream {
		pos := i + 1
		if d.Inst.IsCondBranch() && id.NumBr < 32 {
			if d.Taken {
				id.BrMask |= 1 << id.NumBr
			}
			id.NumBr++
		}
		if h.Stops(d.Inst, pos) || pos == len(stream) {
			return pos, id
		}
	}
	return len(stream), id
}
