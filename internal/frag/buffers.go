package frag

// Buffer is one fragment buffer (§3.2): a FIFO of instructions large enough
// for a whole fragment, plus fetch-progress state. Contents persist after
// release so that a re-encountered fragment can be reused without touching
// the instruction cache — the "tiny trace cache" behaviour the paper
// measures at 20–70% reuse with 16 buffers.
type Buffer struct {
	Index int // position in the pool, fixed at construction

	// Contents. Frag stays valid after release for reuse detection.
	Frag *Fragment

	// Allocation state for the current use.
	InUse    bool
	Seq      uint64 // program-order fragment number of the current use
	Fetched  int    // instructions available to rename (prefix length)
	Complete bool   // Fetched == Frag.Len()
	Reused   bool   // this use was satisfied from stale contents
	Renamed  int    // instructions already consumed by the rename stage
}

// reset prepares the buffer for a new use with fragment f.
func (b *Buffer) reset(f *Fragment, seq uint64, reused bool) {
	b.Frag = f
	b.InUse = true
	b.Seq = seq
	b.Reused = reused
	b.Renamed = 0
	if reused {
		b.Fetched = f.Len()
		b.Complete = true
	} else {
		b.Fetched = 0
		b.Complete = false
	}
}

// MarkFetched records that n more instructions arrived from the sequencer.
func (b *Buffer) MarkFetched(n int) {
	b.Fetched += n
	if b.Fetched >= b.Frag.Len() {
		b.Fetched = b.Frag.Len()
		b.Complete = true
	}
}

// Pool is the array of fragment buffers. Allocation is in predicted program
// order; victims among free buffers are chosen round-robin, which matches
// the paper's description of buffers being "reallocated" in turn.
type Pool struct {
	bufs   []*Buffer
	victim int

	allocs int64
	reuses int64
}

// NewPool creates a pool of n buffers.
func NewPool(n int) *Pool {
	p := &Pool{bufs: make([]*Buffer, n)}
	for i := range p.bufs {
		p.bufs[i] = &Buffer{Index: i}
	}
	return p
}

// Size returns the number of buffers.
func (p *Pool) Size() int { return len(p.bufs) }

// Buffer returns the i-th buffer (used by the fetch and rename stages to
// walk program order).
func (p *Pool) Buffer(i int) *Buffer { return p.bufs[i] }

// Allocate assigns a free buffer to fragment f. It returns nil if every
// buffer is in use — the fetch unit stalls. If a released buffer still holds
// a fragment with the same ID, that buffer is reused: its existing contents
// are valid immediately and the instruction cache is never consulted (the
// passed f is ignored — the stale copy is the hardware's).
func (p *Pool) Allocate(f *Fragment, seq uint64) (b *Buffer, reused bool) {
	// Reuse scan: any free buffer still holding this fragment.
	for _, cand := range p.bufs {
		if !cand.InUse && cand.Frag != nil && cand.Frag.ID == f.ID {
			cand.reset(cand.Frag, seq, true)
			p.allocs++
			p.reuses++
			return cand, true
		}
	}
	// Round-robin victim among free buffers.
	n := len(p.bufs)
	for i := 0; i < n; i++ {
		cand := p.bufs[(p.victim+i)%n]
		if cand.InUse {
			continue
		}
		p.victim = (cand.Index + 1) % n
		cand.reset(f, seq, false)
		p.allocs++
		return cand, false
	}
	return nil, false
}

// Release marks the buffer unused but keeps its contents for reuse.
func (p *Pool) Release(b *Buffer) {
	b.InUse = false
	b.Complete = false
	b.Fetched = 0
	b.Renamed = 0
}

// SquashYounger releases every in-use buffer with Seq >= seq (fetch
// redirect after a misprediction). Squashed contents are NOT kept for
// reuse: a wrong-path fragment's instructions were fetched along a wrong
// path, and keeping them would let mispredicted fragments shadow real ones.
func (p *Pool) SquashYounger(seq uint64) {
	for _, b := range p.bufs {
		if b.InUse && b.Seq >= seq {
			b.InUse = false
			b.Complete = false
			b.Fetched = 0
			b.Renamed = 0
			b.Frag = nil
		}
	}
}

// Oldest returns the in-use buffer with the smallest Seq, or nil.
func (p *Pool) Oldest() *Buffer {
	var best *Buffer
	for _, b := range p.bufs {
		if b.InUse && (best == nil || b.Seq < best.Seq) {
			best = b
		}
	}
	return best
}

// InUseCount returns how many buffers are currently allocated.
func (p *Pool) InUseCount() int {
	n := 0
	for _, b := range p.bufs {
		if b.InUse {
			n++
		}
	}
	return n
}

// Allocs and Reuses report allocation statistics; ReuseRate is the fraction
// of allocations satisfied from stale buffer contents.
func (p *Pool) Allocs() int64 { return p.allocs }
func (p *Pool) Reuses() int64 { return p.reuses }
func (p *Pool) ReuseRate() float64 {
	if p.allocs == 0 {
		return 0
	}
	return float64(p.reuses) / float64(p.allocs)
}
