package frag

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

func TestHeuristicsNormalize(t *testing.T) {
	h := Heuristics{}.normalize()
	if h != DefaultHeuristics() {
		t.Errorf("zero value normalized to %+v", h)
	}
	h = Heuristics{MaxLen: 100, BranchCutoff: 50}.normalize()
	if h.MaxLen != 32 {
		t.Errorf("MaxLen not capped: %d", h.MaxLen)
	}
}

func TestLongFragmentsSplit(t *testing.T) {
	h := Heuristics{MaxLen: 32, BranchCutoff: 16}
	n, _ := h.Split(straight(0x1000, 64))
	if n != 32 {
		t.Errorf("straight-line length %d, want 32", n)
	}
	// A branch at position 12 continues under cutoff 16 but stops under
	// the default cutoff 8.
	ds := straight(0x1000, 11)
	ds = append(ds, Dyn{PC: 0x102c, Inst: isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: 4}, Taken: false})
	ds = append(ds, straight(0x1030, 40)...)
	if n, _ := h.Split(ds); n != 32 {
		t.Errorf("cutoff-16 split = %d, want 32", n)
	}
	if n, _ := Split(ds); n != 12 {
		t.Errorf("default split = %d, want 12", n)
	}
}

// TestHeuristicsFromCodeMatchesSplit extends the core speculative-fetch
// equivalence property to non-default heuristics: for any heuristics, the
// ID produced by Split must reconstruct the same instructions via FromCode.
func TestHeuristicsFromCodeMatchesSplit(t *testing.T) {
	spec := program.TestSpec()
	spec.PhaseIters = 40 // enough dynamic length for 400 long fragments
	p := program.MustBuild(spec)
	for _, h := range []Heuristics{
		{MaxLen: 16, BranchCutoff: 8},
		{MaxLen: 24, BranchCutoff: 12},
		{MaxLen: 32, BranchCutoff: 16},
		{MaxLen: 8, BranchCutoff: 4},
	} {
		m := emu.New(p)
		var stream []Dyn
		frags := 0
		for frags < 400 {
			for len(stream) < 2*h.MaxLen && !m.Halted() {
				d, err := m.Step()
				if err != nil {
					break
				}
				stream = append(stream, Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
			}
			if len(stream) == 0 {
				break
			}
			n, id := h.Split(stream)
			f := h.FromCode(p, id)
			if f.Len() != n {
				t.Fatalf("h=%+v frag %d: FromCode %d vs Split %d", h, frags, f.Len(), n)
			}
			for i := 0; i < n; i++ {
				if f.PCs[i] != stream[i].PC {
					t.Fatalf("h=%+v frag %d idx %d: %#x vs %#x", h, frags, i, f.PCs[i], stream[i].PC)
				}
			}
			stream = stream[n:]
			frags++
		}
		if frags < 100 {
			t.Fatalf("h=%+v: only %d fragments", h, frags)
		}
	}
}

func TestLongerHeuristicsYieldLongerFragments(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	avg := func(h Heuristics) float64 {
		m := emu.New(p)
		var stream []Dyn
		total, frags := 0, 0
		for total < 20000 {
			for len(stream) < 2*h.MaxLen && !m.Halted() {
				d, err := m.Step()
				if err != nil {
					break
				}
				stream = append(stream, Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
			}
			if len(stream) == 0 {
				break
			}
			n, _ := h.Split(stream)
			stream = stream[n:]
			total += n
			frags++
		}
		return float64(total) / float64(frags)
	}
	short := avg(Heuristics{MaxLen: 16, BranchCutoff: 8})
	long := avg(Heuristics{MaxLen: 32, BranchCutoff: 16})
	t.Logf("avg fragment: 16/8 -> %.2f, 32/16 -> %.2f", short, long)
	if long <= short {
		t.Errorf("longer heuristics did not lengthen fragments: %.2f vs %.2f", short, long)
	}
}

func TestIDKeyDistinguishesWideMasks(t *testing.T) {
	a := ID{StartPC: 0x1000, BrMask: 1 << 16, NumBr: 17}
	b := ID{StartPC: 0x1000, BrMask: 1 << 15, NumBr: 17}
	if a.Key() == b.Key() {
		t.Error("keys collide for wide direction masks")
	}
}
