package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/parallel-frontend/pfe/internal/obs"
)

type rec struct {
	Key string  `json:"key"`
	N   int     `json:"n"`
	V   float64 `json:"v"`
}

func readAll(t *testing.T, path string) ([]rec, int) {
	t.Helper()
	var out []rec
	n, torn, err := Scan(path, func(payload []byte) error {
		var r rec
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("Scan reported %d records, delivered %d", n, len(out))
	}
	return out, torn
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{{"a", 1, 1.5}, {"b", 2, 0.1234567890123456}, {"c", 3, -7}}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn := readAll(t, path)
	if torn != 0 {
		t.Errorf("torn = %d, want 0", torn)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v (floats must round-trip exactly)", i, got[i], want[i])
		}
	}
}

func TestAppendExtendsExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := Create(path)
	w.Append(rec{"a", 1, 1})
	w.Close()
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(rec{"b", 2, 2})
	w2.Close()
	got, _ := readAll(t, path)
	if len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Fatalf("reopened journal = %+v, want [a b]", got)
	}
}

func TestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := Create(path)
	w.Append(rec{"a", 1, 1})
	w.Append(rec{"b", 2, 2})
	w.Close()
	// Simulate a SIGKILL mid-append: a half-written final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":"deadbeef","d":{"key":"c","n`)
	f.Close()

	got, torn := readAll(t, path)
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (torn tail dropped)", len(got))
	}
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
}

func TestChecksumMismatchTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := Create(path)
	w.Append(rec{"a", 1, 1})
	w.Close()
	// Bit-flip inside the final record's payload: the line parses but the
	// checksum no longer matches.
	data, _ := os.ReadFile(path)
	s := strings.Replace(string(data), `"key":"a"`, `"key":"x"`, 1)
	os.WriteFile(path, []byte(s), 0o644)

	got, torn := readAll(t, path)
	if len(got) != 0 || torn != 1 {
		t.Fatalf("got %d records torn=%d, want 0 records torn=1", len(got), torn)
	}
}

func TestMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := Create(path)
	w.Append(rec{"a", 1, 1})
	w.Append(rec{"b", 2, 2})
	w.Close()
	data, _ := os.ReadFile(path)
	// Corrupt the FIRST record: valid data follows, so this is not a torn
	// tail and must be reported, not replayed around.
	s := strings.Replace(string(data), `"key":"a"`, `"key":"z"`, 1)
	os.WriteFile(path, []byte(s), 0o644)

	_, _, err := Scan(path, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("expected an error for mid-file corruption")
	}
	if !strings.Contains(err.Error(), "corrupt record") {
		t.Errorf("error %q does not name the corruption", err)
	}
}

func TestConcurrentAppendsAllDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, _ := Create(path)
	hist := obs.NewHistogram([]float64{0.001, 0.01, 0.1})
	w.FsyncHist = hist
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.Append(rec{"k", i, float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	w.Close()
	got, torn := readAll(t, path)
	if len(got) != n || torn != 0 {
		t.Fatalf("got %d records torn=%d, want %d torn=0", len(got), torn, n)
	}
	seen := map[int]bool{}
	for _, r := range got {
		seen[r.N] = true
	}
	if len(seen) != n {
		t.Errorf("records interleaved/lost: %d distinct of %d", len(seen), n)
	}
	if hist.Count() != n {
		t.Errorf("fsync histogram observed %d, want %d", hist.Count(), n)
	}
}
