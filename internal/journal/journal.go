// Package journal is a crash-safe append-only JSONL write-ahead log for
// experiment results: each record is one line carrying a CRC32 of its exact
// payload bytes, and every append is fsynced before it is reported durable.
// A process killed mid-write can therefore leave at most one torn final
// line, which readers detect and drop; anything the journal acknowledged
// survives the kill and is replayable with `pfe-bench -resume`.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"github.com/parallel-frontend/pfe/internal/obs"
)

// line is the wire form of one record: crc is the IEEE CRC32 of the exact
// bytes of d as they appear on the line.
type line struct {
	CRC string          `json:"crc"`
	D   json.RawMessage `json:"d"`
}

// Writer appends checksummed records to a journal file. Append is safe for
// concurrent use (experiment workers journal from many goroutines).
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	buf      bytes.Buffer
	firstErr error

	// FsyncHist, if non-nil, observes each append's fsync latency in
	// seconds (pfe_journal_fsync_seconds).
	FsyncHist *obs.Histogram
}

// Create opens path for appending, creating it if needed. An existing
// journal is extended, never truncated — that is what makes resume append
// new results to the same file it replayed.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append marshals v, frames it with a checksum and fsyncs the record. When
// Append returns nil the record is durable. The first error is also
// retained for Err(), so fire-and-forget callers (the experiment hot path)
// can surface a broken journal once at the end of the run.
func (w *Writer) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return w.fail(fmt.Errorf("journal: marshaling record: %w", err))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Reset()
	fmt.Fprintf(&w.buf, `{"crc":"%08x","d":`, crc32.ChecksumIEEE(payload))
	w.buf.Write(payload)
	w.buf.WriteString("}\n")
	if _, err := w.f.Write(w.buf.Bytes()); err != nil {
		return w.failLocked(fmt.Errorf("journal: appending record: %w", err))
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return w.failLocked(fmt.Errorf("journal: fsync: %w", err))
	}
	if w.FsyncHist != nil {
		w.FsyncHist.Observe(time.Since(start).Seconds())
	}
	return nil
}

func (w *Writer) fail(err error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failLocked(err)
}

func (w *Writer) failLocked(err error) error {
	if w.firstErr == nil {
		w.firstErr = err
	}
	return err
}

// Err returns the first append error, if any. A non-nil Err means the
// journal is missing records and must not be trusted as a resume base.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstErr
}

// Close closes the underlying file. Records already appended stay durable.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Scan reads a journal, calling fn with each record's payload bytes in
// append order. It returns the number of valid records delivered and the
// number of trailing lines dropped as torn (0 or 1 in practice).
//
// A checksum or framing failure on the *final* line is the expected
// signature of a crash mid-append and is tolerated; the same failure
// followed by further valid records means the file was corrupted at rest,
// which Scan reports as an error rather than silently replaying around.
func Scan(path string, fn func(payload []byte) error) (records, torn int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	badLine := 0 // 1-based line number of the first undecodable line
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if badLine != 0 {
			return records, 0, fmt.Errorf("journal: %s:%d: corrupt record followed by more data (not a torn tail)", path, badLine)
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			badLine = lineNo
			continue
		}
		sum := fmt.Sprintf("%08x", crc32.ChecksumIEEE(l.D))
		if sum != l.CRC {
			badLine = lineNo
			continue
		}
		if err := fn(l.D); err != nil {
			return records, 0, err
		}
		records++
	}
	if err := sc.Err(); err != nil {
		return records, 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	if badLine != 0 {
		torn = 1
	}
	return records, torn, nil
}
