package pool

import "testing"

type thing struct{ n int }

func TestFreeListReuse(t *testing.T) {
	built := 0
	fl := NewFreeList(func() *thing { built++; return &thing{} })

	a := fl.Get()
	if built != 1 {
		t.Fatalf("built = %d, want 1", built)
	}
	a.n = 42
	fl.Put(a)
	b := fl.Get()
	if b != a {
		t.Fatal("Get did not return the recycled object")
	}
	if b.n != 42 {
		t.Fatal("recycled object was reset by the pool; resetting is the caller's job")
	}
	if built != 1 {
		t.Fatalf("built = %d, want 1 (second Get must reuse)", built)
	}

	st := fl.Stats()
	if st.Gets != 2 || st.Misses != 1 || st.Puts != 1 || st.Reuses() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFreeListDefaultConstructor(t *testing.T) {
	fl := NewFreeList[thing](nil)
	if fl.Get() == nil {
		t.Fatal("nil constructor must fall back to new(T)")
	}
}

func TestFreeListLIFOAndLen(t *testing.T) {
	fl := NewFreeList[thing](nil)
	a, b := fl.Get(), fl.Get()
	fl.Put(a)
	fl.Put(b)
	if fl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", fl.Len())
	}
	if got := fl.Get(); got != b {
		t.Fatal("expected LIFO order (hot object first)")
	}
	if fl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fl.Len())
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Gets: 1, Misses: 1, Puts: 0}
	s.Add(Stats{Gets: 4, Misses: 1, Puts: 3})
	if s != (Stats{Gets: 5, Misses: 2, Puts: 3}) {
		t.Fatalf("Add = %+v", s)
	}
}

func TestAllocFreeSteadyState(t *testing.T) {
	fl := NewFreeList[thing](nil)
	x := fl.Get()
	fl.Put(x)
	allocs := testing.AllocsPerRun(1000, func() {
		fl.Put(fl.Get())
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v per run, want 0", allocs)
	}
}
