// Package pool provides free-lists for the simulator's hot-path state:
// fetched fragments, fragment queue entries, and any other object the cycle
// loop would otherwise allocate fresh every time. A FreeList is owned by one
// simulation (it is deliberately not safe for concurrent use — sharing
// recycled state across concurrent simulations would both race and leak
// state between runs, which the golden determinism suite forbids), so Get
// and Put cost a slice operation and no synchronization.
//
// Recycling policy: Get returns objects as they were put — callers reset the
// fields they need. Stats counts every Get, the subset of Gets that had to
// construct a new object (Misses), and every Put; the steady-state contract
// the allocation guards pin is Misses flat after warmup.
package pool

// Stats counts free-list traffic. Reuse is Gets - Misses.
type Stats struct {
	Gets   int64 // objects handed out
	Misses int64 // Gets served by constructing a new object
	Puts   int64 // objects returned
}

// Add accumulates other into s (aggregation across a simulation's lists).
func (s *Stats) Add(other Stats) {
	s.Gets += other.Gets
	s.Misses += other.Misses
	s.Puts += other.Puts
}

// Reuses returns the number of Gets served from the free list.
func (s Stats) Reuses() int64 { return s.Gets - s.Misses }

// FreeList recycles objects of type T for a single simulation.
type FreeList[T any] struct {
	free  []*T
	newT  func() *T
	stats Stats
}

// NewFreeList creates a free list constructing objects with newT. A nil
// newT means Get constructs via new(T).
func NewFreeList[T any](newT func() *T) *FreeList[T] {
	if newT == nil {
		newT = func() *T { return new(T) }
	}
	return &FreeList[T]{newT: newT}
}

// Get returns a recycled object, or a newly constructed one when the list
// is empty. The object's fields are whatever the last user left; callers
// reset what they use.
func (f *FreeList[T]) Get() *T {
	f.stats.Gets++
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return x
	}
	f.stats.Misses++
	return f.newT()
}

// Put returns an object to the list. The caller must not use x afterwards.
func (f *FreeList[T]) Put(x *T) {
	f.stats.Puts++
	f.free = append(f.free, x)
}

// Stats returns the list's cumulative traffic counters.
func (f *FreeList[T]) Stats() Stats { return f.stats }

// Len returns how many objects are currently free.
func (f *FreeList[T]) Len() int { return len(f.free) }
