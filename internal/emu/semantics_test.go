package emu

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// run assembles insts (with a final halt appended), runs them to
// completion, and returns the machine for register inspection.
func run(t *testing.T, insts []isa.Inst) *Machine {
	t.Helper()
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	p, err := program.FromInsts("semantics", insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	return m
}

// li loads a small constant into rd.
func li(rd isa.Reg, v int32) isa.Inst {
	return isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: isa.RegZero, Imm: v}
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name string
		prog []isa.Inst
		reg  isa.Reg
		want uint32
	}{
		{"add", []isa.Inst{li(1, 7), li(2, 5), {Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 12},
		{"sub", []isa.Inst{li(1, 7), li(2, 5), {Op: isa.OpSub, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 2},
		{"sub-underflow", []isa.Inst{li(1, 5), li(2, 7), {Op: isa.OpSub, Rd: 3, Rs1: 1, Rs2: 2}}, 3, ^uint32(1)},
		{"and", []isa.Inst{li(1, 0xff), li(2, 0x0f), {Op: isa.OpAnd, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 0x0f},
		{"or", []isa.Inst{li(1, 0xf0), li(2, 0x0f), {Op: isa.OpOr, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 0xff},
		{"xor", []isa.Inst{li(1, 0xff), li(2, 0x0f), {Op: isa.OpXor, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 0xf0},
		{"slt-true", []isa.Inst{li(1, -3), li(2, 2), {Op: isa.OpSlt, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 1},
		{"slt-false", []isa.Inst{li(1, 2), li(2, -3), {Op: isa.OpSlt, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 0},
		{"mul", []isa.Inst{li(1, 6), li(2, 7), {Op: isa.OpMul, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 42},
		{"sll", []isa.Inst{li(1, 3), li(2, 4), {Op: isa.OpSll, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 48},
		{"srl", []isa.Inst{li(1, 48), li(2, 4), {Op: isa.OpSrl, Rd: 3, Rs1: 1, Rs2: 2}}, 3, 3},
		{"sra-sign", []isa.Inst{li(1, -8), li(2, 2), {Op: isa.OpSra, Rd: 3, Rs1: 1, Rs2: 2}}, 3, ^uint32(1)},
		{"addi", []isa.Inst{li(1, 10), {Op: isa.OpAddi, Rd: 3, Rs1: 1, Imm: -4}}, 3, 6},
		{"andi", []isa.Inst{li(1, 0x7f), {Op: isa.OpAndi, Rd: 3, Rs1: 1, Imm: 0x0f}}, 3, 0x0f},
		{"ori", []isa.Inst{li(1, 0x70), {Op: isa.OpOri, Rd: 3, Rs1: 1, Imm: 0x07}}, 3, 0x77},
		{"xori", []isa.Inst{li(1, 0x7f), {Op: isa.OpXori, Rd: 3, Rs1: 1, Imm: 0x0f}}, 3, 0x70},
		{"slti", []isa.Inst{li(1, -1), {Op: isa.OpSlti, Rd: 3, Rs1: 1, Imm: 0}}, 3, 1},
		{"slli", []isa.Inst{li(1, 5), {Op: isa.OpSlli, Rd: 3, Rs1: 1, Imm: 3}}, 3, 40},
		{"srli", []isa.Inst{li(1, 40), {Op: isa.OpSrli, Rd: 3, Rs1: 1, Imm: 3}}, 3, 5},
		{"lui", []isa.Inst{{Op: isa.OpLui, Rd: 3, Imm: 5}}, 3, 5 << isa.LuiShift},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := run(t, c.prog)
			if got := m.IntReg(c.reg); got != c.want {
				t.Errorf("%s: r%d = %#x, want %#x", c.name, c.reg, got, c.want)
			}
		})
	}
}

func TestMemorySemantics(t *testing.T) {
	// Store 0xabcd at DataBase+64, load it back.
	prog := []isa.Inst{
		{Op: isa.OpLui, Rd: 1, Imm: program.DataBase >> isa.LuiShift},
		li(2, 0x1bcd),
		{Op: isa.OpSw, Rs1: 1, Rs2: 2, Imm: 64},
		{Op: isa.OpLw, Rd: 3, Rs1: 1, Imm: 64},
		{Op: isa.OpLw, Rd: 4, Rs1: 1, Imm: 68}, // untouched word reads 0
	}
	m := run(t, prog)
	if got := m.IntReg(3); got != 0x1bcd {
		t.Errorf("loaded %#x", got)
	}
	if got := m.IntReg(4); got != 0 {
		t.Errorf("untouched word = %#x", got)
	}
}

func TestBranchSemantics(t *testing.T) {
	// beq taken skips the poison write.
	prog := []isa.Inst{
		li(1, 5),
		li(2, 5),
		{Op: isa.OpBeq, Rs1: 1, Rs2: 2, Imm: 1}, // skip next
		li(3, 99),                               // poison
		li(4, 1),
	}
	m := run(t, prog)
	if m.IntReg(3) != 0 || m.IntReg(4) != 1 {
		t.Errorf("beq taken: r3=%d r4=%d", m.IntReg(3), m.IntReg(4))
	}

	// bne not taken executes fallthrough.
	prog = []isa.Inst{
		li(1, 5),
		li(2, 5),
		{Op: isa.OpBne, Rs1: 1, Rs2: 2, Imm: 1},
		li(3, 42),
	}
	m = run(t, prog)
	if m.IntReg(3) != 42 {
		t.Errorf("bne not-taken: r3=%d", m.IntReg(3))
	}

	// blt/bge are signed.
	prog = []isa.Inst{
		li(1, -1),
		li(2, 1),
		{Op: isa.OpBlt, Rs1: 1, Rs2: 2, Imm: 1}, // -1 < 1: taken
		li(3, 99),
		{Op: isa.OpBge, Rs1: 1, Rs2: 2, Imm: 1}, // -1 >= 1: not taken
		li(4, 7),
	}
	m = run(t, prog)
	if m.IntReg(3) != 0 || m.IntReg(4) != 7 {
		t.Errorf("signed branches: r3=%d r4=%d", m.IntReg(3), m.IntReg(4))
	}
}

func TestJumpAndLinkSemantics(t *testing.T) {
	// main: jal f (index 2); after return set r4. f: set r3, jr r31.
	prog := []isa.Inst{
		{Op: isa.OpJal, Imm: program.WordTarget(2)}, // 0: call f
		{Op: isa.OpJ, Imm: program.WordTarget(4)},   // 1: jump to end
		li(3, 11),                        // 2: f body
		{Op: isa.OpJr, Rs1: isa.RegLink}, // 3: return
		li(4, 22),                        // 4: end
	}
	m := run(t, prog)
	if m.IntReg(3) != 11 || m.IntReg(4) != 22 {
		t.Errorf("call/return: r3=%d r4=%d", m.IntReg(3), m.IntReg(4))
	}
}

func TestJalrSemantics(t *testing.T) {
	// Compute the target address in a register and call through it.
	target := uint32(program.CodeBase) + 4*4
	prog := []isa.Inst{
		{Op: isa.OpLui, Rd: 5, Imm: int32(target >> isa.LuiShift)},
		{Op: isa.OpOri, Rd: 5, Rs1: 5, Imm: int32(target & (1<<isa.LuiShift - 1))},
		{Op: isa.OpJalr, Rd: isa.RegLink, Rs1: 5}, // 2: indirect call
		{Op: isa.OpJ, Imm: program.WordTarget(6)}, // 3: to end
		li(3, 33),                        // 4: callee
		{Op: isa.OpJr, Rs1: isa.RegLink}, // 5: return to 3
		li(4, 44),                        // 6: end
	}
	m := run(t, prog)
	if m.IntReg(3) != 33 || m.IntReg(4) != 44 {
		t.Errorf("jalr: r3=%d r4=%d", m.IntReg(3), m.IntReg(4))
	}
}

func TestLoopSemantics(t *testing.T) {
	// r1 counts 10 down to 0; r2 accumulates.
	prog := []isa.Inst{
		li(1, 10),
		li(2, 0),
		{Op: isa.OpAdd, Rd: 2, Rs1: 2, Rs2: 1},   // 2: r2 += r1
		{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -1}, // 3: r1--
		{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: -3}, // 4: loop to 2
	}
	m := run(t, prog)
	if got := m.IntReg(2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestFPSemanticsDoNotTrap(t *testing.T) {
	// FP ops must execute without affecting integer state.
	f0 := isa.FPBase
	prog := []isa.Inst{
		li(1, 77),
		{Op: isa.OpFadd, Rd: f0 + 2, Rs1: f0, Rs2: f0 + 1},
		{Op: isa.OpFsub, Rd: f0 + 3, Rs1: f0 + 2, Rs2: f0},
		{Op: isa.OpFmul, Rd: f0 + 4, Rs1: f0 + 3, Rs2: f0 + 2},
		{Op: isa.OpFneg, Rd: f0 + 5, Rs1: f0 + 4},
	}
	m := run(t, prog)
	if m.IntReg(1) != 77 {
		t.Errorf("integer state disturbed: r1=%d", m.IntReg(1))
	}
}

func TestStackSemantics(t *testing.T) {
	// Classic push/pop through the stack segment.
	prog := []isa.Inst{
		{Op: isa.OpLui, Rd: isa.RegSP, Imm: program.StackBase >> isa.LuiShift},
		{Op: isa.OpAddi, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -16},
		li(1, 123),
		{Op: isa.OpSw, Rs1: isa.RegSP, Rs2: 1, Imm: 4},
		li(1, 0),
		{Op: isa.OpLw, Rd: 2, Rs1: isa.RegSP, Imm: 4},
	}
	m := run(t, prog)
	if m.IntReg(2) != 123 {
		t.Errorf("stack round-trip = %d", m.IntReg(2))
	}
	if m.StrayAccesses() != 0 {
		t.Errorf("%d stray accesses", m.StrayAccesses())
	}
}
