package emu

import (
	"errors"
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

func TestTinyProgramRunsToCompletion(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m := New(p)
	n, err := m.Run(5_000_000)
	if err != nil {
		t.Fatalf("run failed after %d instructions: %v", n, err)
	}
	if !m.Halted() {
		t.Fatalf("program did not halt within %d instructions", n)
	}
	if n < 1000 {
		t.Errorf("suspiciously short run: %d instructions", n)
	}
	if m.StrayAccesses() != 0 {
		t.Errorf("%d stray memory accesses", m.StrayAccesses())
	}
	t.Logf("tiny program: %d dynamic instructions, %d static", n, p.NumInsts())
}

func TestStepAfterHalt(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m := New(p)
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestDynamicStreamIsConsistent(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m := New(p)
	var prev DynInst
	for i := 0; i < 20000 && !m.Halted(); i++ {
		d, err := m.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if d.Seq != uint64(i) {
			t.Fatalf("step %d: seq %d", i, d.Seq)
		}
		if i > 0 && prev.NextPC != d.PC {
			t.Fatalf("step %d: prev NextPC %#x != PC %#x", i, prev.NextPC, d.PC)
		}
		if d.Inst.IsCondBranch() {
			want := d.PC + isa.InstBytes
			if d.Taken {
				want = uint64(int64(d.PC) + isa.InstBytes + int64(d.Inst.Imm)*isa.InstBytes)
			}
			if d.NextPC != want {
				t.Fatalf("branch at %#x: NextPC %#x, want %#x", d.PC, d.NextPC, want)
			}
		}
		if d.Inst.IsMem() && d.EA == 0 {
			t.Fatalf("memory op at %#x with zero EA", d.PC)
		}
		prev = d
	}
}

func TestDeterminism(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m1, m2 := New(p), New(p)
	for i := 0; i < 10000; i++ {
		if m1.Halted() != m2.Halted() {
			t.Fatal("halt divergence")
		}
		if m1.Halted() {
			break
		}
		d1, err1 := m1.Step()
		d2, err2 := m2.Step()
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: %v %v", i, err1, err2)
		}
		if d1 != d2 {
			t.Fatalf("step %d: %+v != %+v", i, d1, d2)
		}
	}
}

func TestZeroRegisterStaysZero(t *testing.T) {
	p := program.MustBuild(program.TestSpec())
	m := New(p)
	for i := 0; i < 5000 && !m.Halted(); i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
		if m.IntReg(isa.RegZero) != 0 {
			t.Fatalf("r0 became %d", m.IntReg(isa.RegZero))
		}
	}
}

// TestSuitePrograms builds every suite benchmark, validates it, and runs a
// slice of it, checking that control flow never leaves the code image and
// that no memory access strays outside the mapped segments.
func TestSuitePrograms(t *testing.T) {
	for _, spec := range program.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := program.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			m := New(p)
			n, err := m.Run(200_000)
			if err != nil {
				t.Fatalf("after %d instructions: %v", n, err)
			}
			if n < 200_000 && !m.Halted() {
				t.Fatalf("run stopped early at %d", n)
			}
			if m.StrayAccesses() != 0 {
				t.Errorf("%d stray accesses", m.StrayAccesses())
			}
			t.Logf("%s: %d static instructions (%.0f KB code)",
				spec.Name, p.NumInsts(), float64(p.CodeBytes())/1024)
		})
	}
}
