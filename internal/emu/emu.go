// Package emu is the functional emulator for the synthetic ISA. It executes
// a generated program instruction by instruction and produces the true
// dynamic instruction stream — the oracle the timing simulator measures
// itself against: the front-end's predictions are compared to this stream,
// and divergences drive wrong-path fetch and recovery, exactly as the
// paper's execution-driven simulator did on top of SimpleScalar's
// instruction semantics.
package emu

import (
	"errors"
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// ErrHalted is returned by Step once the program has executed OpHalt.
var ErrHalted = errors.New("emu: program halted")

// Oracle is the dynamic-stream source the timing simulator consumes: the
// live Machine, or any replacement producing the identical stream (e.g. an
// artifact-cache tape replayer). Step returns the next executed instruction;
// Halted reports that the program has executed OpHalt. Implementations must
// be bit-exact with Machine: the simulator's determinism guarantees are
// defined against its stream.
type Oracle interface {
	Step() (DynInst, error)
	Halted() bool
}

// DynInst is one executed instruction of the true dynamic stream.
type DynInst struct {
	Seq    uint64   // dynamic sequence number, starting at 0
	PC     uint64   // byte address of the instruction
	Inst   isa.Inst // the decoded instruction
	NextPC uint64   // address of the next executed instruction
	Taken  bool     // conditional branches: whether the branch was taken
	EA     uint64   // memory ops: effective byte address
}

// Machine is the architectural state of one running program.
type Machine struct {
	prog *program.Program

	pc      uint64
	intRegs [isa.NumIntRegs]uint32
	fpRegs  [isa.NumFPRegs]float64

	data  []byte // data segment at program.DataBase
	stack []byte // stack segment, covers [StackBase-StackSize, StackBase)

	// stray holds accesses outside the mapped segments (should not occur
	// on the correct path; kept so wrong specs fail loudly in tests
	// rather than silently corrupting state).
	stray map[uint64]uint32

	icount uint64
	halted bool
}

// New creates a machine ready to execute p from its entry point. The data
// segment is copied so multiple machines can share one Program.
func New(p *program.Program) *Machine {
	m := &Machine{
		prog:  p,
		pc:    p.EntryPC,
		data:  make([]byte, len(p.Data)),
		stack: make([]byte, program.StackSize),
	}
	copy(m.data, p.Data)
	return m
}

// PC returns the address of the next instruction to execute.
func (m *Machine) PC() uint64 { return m.pc }

// Halted reports whether the program has executed OpHalt.
func (m *Machine) Halted() bool { return m.halted }

// ICount returns the number of instructions executed so far.
func (m *Machine) ICount() uint64 { return m.icount }

// IntReg returns the current value of integer register r. FP registers and
// r0 read as zero, so instruction decoding never needs to special-case the
// register bank before reading.
func (m *Machine) IntReg(r isa.Reg) uint32 {
	if r == isa.RegZero || r >= isa.FPBase {
		return 0
	}
	return m.intRegs[r]
}

// StrayAccesses reports how many memory accesses fell outside the mapped
// data and stack segments (always zero for generator-produced programs).
func (m *Machine) StrayAccesses() int { return len(m.stray) }

func (m *Machine) setInt(r isa.Reg, v uint32) {
	if r != isa.RegZero {
		m.intRegs[r] = v
	}
}

// Step executes one instruction and returns its dynamic record.
func (m *Machine) Step() (DynInst, error) {
	if m.halted {
		return DynInst{}, ErrHalted
	}
	in, ok := m.prog.InstAt(m.pc)
	if !ok {
		return DynInst{}, fmt.Errorf("emu: PC %#x outside code image", m.pc)
	}
	d := DynInst{Seq: m.icount, PC: m.pc, Inst: in}
	next := m.pc + isa.InstBytes

	rs1 := m.IntReg(in.Rs1)
	rs2 := m.IntReg(in.Rs2)

	switch in.Op {
	case isa.OpAdd:
		m.setInt(in.Rd, rs1+rs2)
	case isa.OpSub:
		m.setInt(in.Rd, rs1-rs2)
	case isa.OpAnd:
		m.setInt(in.Rd, rs1&rs2)
	case isa.OpOr:
		m.setInt(in.Rd, rs1|rs2)
	case isa.OpXor:
		m.setInt(in.Rd, rs1^rs2)
	case isa.OpSlt:
		m.setInt(in.Rd, boolToU32(int32(rs1) < int32(rs2)))
	case isa.OpSll:
		m.setInt(in.Rd, rs1<<(rs2&31))
	case isa.OpSrl:
		m.setInt(in.Rd, rs1>>(rs2&31))
	case isa.OpSra:
		m.setInt(in.Rd, uint32(int32(rs1)>>(rs2&31)))
	case isa.OpMul:
		m.setInt(in.Rd, rs1*rs2)

	case isa.OpAddi:
		m.setInt(in.Rd, rs1+uint32(in.Imm))
	case isa.OpAndi:
		m.setInt(in.Rd, rs1&uint32(in.Imm))
	case isa.OpOri:
		m.setInt(in.Rd, rs1|uint32(in.Imm))
	case isa.OpXori:
		m.setInt(in.Rd, rs1^uint32(in.Imm))
	case isa.OpSlti:
		m.setInt(in.Rd, boolToU32(int32(rs1) < in.Imm))
	case isa.OpSlli:
		m.setInt(in.Rd, rs1<<(uint32(in.Imm)&31))
	case isa.OpSrli:
		m.setInt(in.Rd, rs1>>(uint32(in.Imm)&31))
	case isa.OpLui:
		m.setInt(in.Rd, uint32(in.Imm)<<isa.LuiShift)

	case isa.OpLw:
		ea := uint64(rs1 + uint32(in.Imm))
		d.EA = ea
		m.setInt(in.Rd, m.loadWord(ea))
	case isa.OpSw:
		ea := uint64(rs1 + uint32(in.Imm))
		d.EA = ea
		m.storeWord(ea, rs2)
	case isa.OpLf:
		ea := uint64(rs1 + uint32(in.Imm))
		d.EA = ea
		m.fpRegs[in.Rd-isa.FPBase] = float64(m.loadWord(ea))
	case isa.OpSf:
		ea := uint64(rs1 + uint32(in.Imm))
		d.EA = ea
		m.storeWord(ea, uint32(int64(m.fpRegs[in.Rs2-isa.FPBase])))

	case isa.OpFadd:
		m.fpRegs[in.Rd-isa.FPBase] = m.fp(in.Rs1) + m.fp(in.Rs2)
	case isa.OpFsub:
		m.fpRegs[in.Rd-isa.FPBase] = m.fp(in.Rs1) - m.fp(in.Rs2)
	case isa.OpFmul:
		m.fpRegs[in.Rd-isa.FPBase] = m.fp(in.Rs1) * m.fp(in.Rs2)
	case isa.OpFneg:
		m.fpRegs[in.Rd-isa.FPBase] = -m.fp(in.Rs1)

	case isa.OpBeq:
		d.Taken = rs1 == rs2
	case isa.OpBne:
		d.Taken = rs1 != rs2
	case isa.OpBlt:
		d.Taken = int32(rs1) < int32(rs2)
	case isa.OpBge:
		d.Taken = int32(rs1) >= int32(rs2)

	case isa.OpJ:
		next = uint64(in.Imm) * isa.InstBytes
	case isa.OpJal:
		m.setInt(isa.RegLink, uint32(m.pc+isa.InstBytes))
		next = uint64(in.Imm) * isa.InstBytes
	case isa.OpJr:
		next = uint64(rs1)
	case isa.OpJalr:
		m.setInt(in.Rd, uint32(m.pc+isa.InstBytes))
		next = uint64(rs1)

	case isa.OpHalt:
		m.halted = true
		next = m.pc

	default:
		return DynInst{}, fmt.Errorf("emu: invalid opcode at PC %#x", m.pc)
	}

	if d.Taken {
		next = uint64(int64(m.pc) + isa.InstBytes + int64(in.Imm)*isa.InstBytes)
	}
	d.NextPC = next
	m.pc = next
	m.icount++
	return d, nil
}

func (m *Machine) fp(r isa.Reg) float64 { return m.fpRegs[r-isa.FPBase] }

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// segment resolves an address to a backing slice and offset, or nil if the
// address is outside the data and stack segments.
func (m *Machine) segment(ea uint64) ([]byte, int) {
	switch {
	case ea >= program.DataBase && ea+4 <= program.DataBase+uint64(len(m.data)):
		return m.data, int(ea - program.DataBase)
	case ea >= program.StackBase-program.StackSize && ea+4 <= program.StackBase:
		return m.stack, int(ea - (program.StackBase - program.StackSize))
	}
	return nil, 0
}

func (m *Machine) loadWord(ea uint64) uint32 {
	ea &^= 3
	if seg, off := m.segment(ea); seg != nil {
		return uint32(seg[off]) | uint32(seg[off+1])<<8 | uint32(seg[off+2])<<16 | uint32(seg[off+3])<<24
	}
	if m.stray == nil {
		return 0
	}
	return m.stray[ea]
}

func (m *Machine) storeWord(ea uint64, v uint32) {
	ea &^= 3
	if seg, off := m.segment(ea); seg != nil {
		seg[off] = byte(v)
		seg[off+1] = byte(v >> 8)
		seg[off+2] = byte(v >> 16)
		seg[off+3] = byte(v >> 24)
		return
	}
	if m.stray == nil {
		m.stray = make(map[uint64]uint32)
	}
	m.stray[ea] = v
}

// Run executes up to maxInsts instructions (or until halt) and returns the
// number executed. It is the convenience used by tests and tools that do
// not need the per-instruction stream.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	var n uint64
	for n < maxInsts && !m.halted {
		if _, err := m.Step(); err != nil {
			if errors.Is(err, ErrHalted) {
				break
			}
			return n, err
		}
		n++
	}
	return n, nil
}

var _ Oracle = (*Machine)(nil)
