package emu

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
	"github.com/parallel-frontend/pfe/internal/program"
)

// refState is an independent reference interpreter for the synthetic ISA,
// deliberately written in a different style from Machine (word-addressed map
// memory instead of byte segments, flat next-PC computation) so the fuzz
// differential catches semantic drift in either implementation.
type refState struct {
	pc     uint64
	regs   [isa.NumIntRegs]uint32
	fp     [isa.NumFPRegs]float64
	mem    map[uint64]uint32 // word-addressed; zero default matches zero-init segments
	halted bool
}

func newRef(p *program.Program) *refState {
	return &refState{pc: p.EntryPC, mem: make(map[uint64]uint32)}
}

func (r *refState) readInt(reg isa.Reg) uint32 {
	if reg == isa.RegZero || reg >= isa.FPBase {
		return 0
	}
	return r.regs[reg]
}

func (r *refState) writeInt(reg isa.Reg, v uint32) {
	if reg != isa.RegZero {
		r.regs[reg] = v
	}
}

// step executes one instruction. It returns false when the interpreter is
// stuck (PC outside the code image, or an invalid opcode) — the same
// conditions that make Machine.Step return an error.
func (r *refState) step(p *program.Program) bool {
	if r.halted {
		return false
	}
	in, ok := p.InstAt(r.pc)
	if !ok || in.Op == isa.OpInvalid {
		return false
	}
	a := r.readInt(in.Rs1)
	b := r.readInt(in.Rs2)
	next := r.pc + isa.InstBytes

	switch in.Op {
	case isa.OpAdd:
		r.writeInt(in.Rd, a+b)
	case isa.OpSub:
		r.writeInt(in.Rd, a-b)
	case isa.OpAnd:
		r.writeInt(in.Rd, a&b)
	case isa.OpOr:
		r.writeInt(in.Rd, a|b)
	case isa.OpXor:
		r.writeInt(in.Rd, a^b)
	case isa.OpSlt:
		var v uint32
		if int32(a) < int32(b) {
			v = 1
		}
		r.writeInt(in.Rd, v)
	case isa.OpSll:
		r.writeInt(in.Rd, a<<(b&31))
	case isa.OpSrl:
		r.writeInt(in.Rd, a>>(b&31))
	case isa.OpSra:
		r.writeInt(in.Rd, uint32(int32(a)>>(b&31)))
	case isa.OpMul:
		r.writeInt(in.Rd, a*b)
	case isa.OpAddi:
		r.writeInt(in.Rd, a+uint32(in.Imm))
	case isa.OpAndi:
		r.writeInt(in.Rd, a&uint32(in.Imm))
	case isa.OpOri:
		r.writeInt(in.Rd, a|uint32(in.Imm))
	case isa.OpXori:
		r.writeInt(in.Rd, a^uint32(in.Imm))
	case isa.OpSlti:
		var v uint32
		if int32(a) < in.Imm {
			v = 1
		}
		r.writeInt(in.Rd, v)
	case isa.OpSlli:
		r.writeInt(in.Rd, a<<(uint32(in.Imm)&31))
	case isa.OpSrli:
		r.writeInt(in.Rd, a>>(uint32(in.Imm)&31))
	case isa.OpLui:
		r.writeInt(in.Rd, uint32(in.Imm)<<isa.LuiShift)
	case isa.OpLw:
		r.writeInt(in.Rd, r.mem[uint64(a+uint32(in.Imm))&^3])
	case isa.OpSw:
		r.mem[uint64(a+uint32(in.Imm))&^3] = b
	case isa.OpLf:
		r.fp[in.Rd-isa.FPBase] = float64(r.mem[uint64(a+uint32(in.Imm))&^3])
	case isa.OpSf:
		r.mem[uint64(a+uint32(in.Imm))&^3] = uint32(int64(r.fp[in.Rs2-isa.FPBase]))
	case isa.OpFadd:
		r.fp[in.Rd-isa.FPBase] = r.fp[in.Rs1-isa.FPBase] + r.fp[in.Rs2-isa.FPBase]
	case isa.OpFsub:
		r.fp[in.Rd-isa.FPBase] = r.fp[in.Rs1-isa.FPBase] - r.fp[in.Rs2-isa.FPBase]
	case isa.OpFmul:
		r.fp[in.Rd-isa.FPBase] = r.fp[in.Rs1-isa.FPBase] * r.fp[in.Rs2-isa.FPBase]
	case isa.OpFneg:
		r.fp[in.Rd-isa.FPBase] = -r.fp[in.Rs1-isa.FPBase]
	case isa.OpBeq:
		if a == b {
			next = branchTarget(r.pc, in.Imm)
		}
	case isa.OpBne:
		if a != b {
			next = branchTarget(r.pc, in.Imm)
		}
	case isa.OpBlt:
		if int32(a) < int32(b) {
			next = branchTarget(r.pc, in.Imm)
		}
	case isa.OpBge:
		if int32(a) >= int32(b) {
			next = branchTarget(r.pc, in.Imm)
		}
	case isa.OpJ:
		next = uint64(in.Imm) * isa.InstBytes
	case isa.OpJal:
		r.writeInt(isa.RegLink, uint32(r.pc+isa.InstBytes))
		next = uint64(in.Imm) * isa.InstBytes
	case isa.OpJr:
		next = uint64(a)
	case isa.OpJalr:
		r.writeInt(in.Rd, uint32(r.pc+isa.InstBytes))
		next = uint64(a)
	case isa.OpHalt:
		r.halted = true
		next = r.pc
	default:
		return false
	}
	r.pc = next
	return true
}

func branchTarget(pc uint64, imm int32) uint64 {
	return uint64(int64(pc) + isa.InstBytes + int64(imm)*isa.InstBytes)
}

// sanitizeInsts turns an arbitrary decoded instruction stream into a valid
// self-contained program, mirroring the invariants the generator guarantees
// (and that program.Validate enforces): no invalid opcodes, direct control
// transfers inside the image, integer destinations in the integer bank, FP
// operands in the FP bank, and a final halt.
func sanitizeInsts(insts []isa.Inst) []isa.Inst {
	const maxInsts = 512
	if len(insts) > maxInsts {
		insts = insts[:maxInsts]
	}
	n := len(insts) + 1 // +1 for the trailing halt
	out := make([]isa.Inst, 0, n)
	for i, in := range insts {
		if in.Op == isa.OpInvalid || int(in.Op) >= isa.NumOps {
			in = isa.Inst{Op: isa.OpAddi, Rd: in.Rd & 31, Rs1: in.Rs1 & 31, Imm: in.Imm}
		}
		switch in.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt,
			isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpMul,
			isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlti,
			isa.OpSlli, isa.OpSrli, isa.OpLui, isa.OpLw, isa.OpJalr:
			in.Rd &= 31 // integer destination
		case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFneg:
			in.Rd |= isa.FPBase
			in.Rs1 |= isa.FPBase
			in.Rs2 |= isa.FPBase
		case isa.OpLf:
			in.Rd |= isa.FPBase
		case isa.OpSf:
			in.Rs2 |= isa.FPBase
		case isa.OpJ, isa.OpJal:
			tgt := int(in.Imm) % n
			if tgt < 0 {
				tgt += n
			}
			in.Imm = program.WordTarget(tgt)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			tgt := (i + 1 + int(in.Imm)) % n
			if tgt < 0 {
				tgt += n
			}
			in.Imm = int32(tgt - i - 1)
		}
		out = append(out, in)
	}
	return append(out, isa.Inst{Op: isa.OpHalt})
}

// FuzzEmuVsInterp runs the emulator and the reference interpreter in
// lockstep over fuzz-generated programs and requires identical control flow,
// branch outcomes, effective addresses and integer register state at every
// step.
func FuzzEmuVsInterp(f *testing.F) {
	// Seed with real generated code (the suite's miniature benchmark at
	// two scales) and a couple of hand-written kernels.
	for _, scale := range []float64{1, 0.4} {
		p, err := program.Build(program.TestSpec().Scaled(scale))
		if err != nil {
			f.Fatal(err)
		}
		img := p.Image
		if len(img) > 2048 {
			img = img[:2048]
		}
		f.Add(img)
	}
	loop := []isa.Inst{
		{Op: isa.OpAddi, Rd: 1, Imm: 5},
		{Op: isa.OpAddi, Rd: 2, Rs1: 2, Imm: 3},
		{Op: isa.OpAddi, Rd: 1, Rs1: 1, Imm: -1},
		{Op: isa.OpBne, Rs1: 1, Rs2: 0, Imm: -3},
		{Op: isa.OpSw, Rs1: 0, Rs2: 2, Imm: 64},
		{Op: isa.OpLw, Rd: 3, Rs1: 0, Imm: 64},
		{Op: isa.OpHalt},
	}
	img, err := isa.EncodeAll(loop)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)

	f.Fuzz(func(t *testing.T, raw []byte) {
		insts := sanitizeInsts(isa.DecodeImage(raw))
		p, err := program.FromInsts("fuzz", insts, 0)
		if err != nil {
			t.Fatalf("sanitized program rejected: %v", err)
		}
		m := New(p)
		ref := newRef(p)

		const maxSteps = 4096
		for step := 0; step < maxSteps; step++ {
			if m.Halted() {
				if !ref.halted {
					t.Fatalf("step %d: emu halted, reference did not (ref pc %#x)", step, ref.pc)
				}
				break
			}
			pc := m.PC()
			d, err := m.Step()
			ok := ref.step(p)
			if err != nil {
				if ok {
					t.Fatalf("step %d: emu error (%v) but reference stepped past pc %#x", step, err, pc)
				}
				break
			}
			if !ok {
				t.Fatalf("step %d: reference stuck at pc %#x but emu executed %v", step, pc, d.Inst)
			}
			if d.NextPC != ref.pc {
				t.Fatalf("step %d at pc %#x (%v): next PC emu %#x, reference %#x",
					step, pc, d.Inst, d.NextPC, ref.pc)
			}
			for r := isa.Reg(0); r < isa.NumIntRegs; r++ {
				if got, want := m.IntReg(r), ref.readInt(r); got != want {
					t.Fatalf("step %d at pc %#x (%v): register %v emu %#x, reference %#x",
						step, pc, d.Inst, r, got, want)
				}
			}
		}
		if m.Halted() != ref.halted {
			t.Fatalf("final halt state diverged: emu %v, reference %v", m.Halted(), ref.halted)
		}
	})
}
