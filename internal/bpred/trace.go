// Package bpred implements the control-flow predictors: the path-based
// next-trace predictor of Jacobson, Rotenberg and Smith (the paper's
// fragment predictor, Table 1: DOLC D=9 O=4 L=7 C=9, 64 K-entry primary
// table, 16 K-entry secondary table), plus simple direction predictors used
// for ablation studies.
//
// The trace predictor predicts the next fragment's full identity — start PC
// and the directions of every conditional branch inside it — from a hashed
// history of recent fragment IDs. Because directions come with the
// prediction, sequencers need no local branch predictors (§3.1), and the
// same prediction stream drives every front-end in the evaluation so the
// comparison is unbiased.
package bpred

import (
	"github.com/parallel-frontend/pfe/internal/frag"
)

// DOLC carries the history-hashing parameters of the Jacobson et al.
// predictor: history Depth, bits taken from Older IDs, bits from the Last
// ID, and bits from the Current (most recent) ID.
type DOLC struct {
	Depth   int
	Older   uint
	Last    uint
	Current uint
}

// DefaultDOLC returns the paper's Table 1 parameters.
func DefaultDOLC() DOLC { return DOLC{Depth: 9, Older: 4, Last: 7, Current: 9} }

// maxDepth bounds the history ring so History stays a copyable value type
// cheap enough to checkpoint per in-flight fragment.
const maxDepth = 16

// History is the speculative path history: the keys of the most recent
// fragment IDs, newest last. It is a value type — the fetch unit copies it
// into a checkpoint before each prediction so that recovery after a
// misprediction restores the exact history the paper's hardware would.
type History struct {
	keys [maxDepth]uint64
	n    int // ring fill for warm-up behaviour; saturates at maxDepth
	head int // index of the oldest key
}

// Push appends the key of a new fragment ID, evicting the oldest.
func (h *History) Push(key uint64) {
	h.keys[(h.head+h.n)%maxDepth] = key
	if h.n == maxDepth {
		h.head = (h.head + 1) % maxDepth
	} else {
		h.n++
	}
}

// recent returns the i-th most recent key (i=0 is newest); zero if the
// history is not that deep yet.
func (h *History) recent(i int) uint64 {
	if i >= h.n {
		return 0
	}
	return h.keys[(h.head+h.n-1-i)%maxDepth]
}

// Config sizes the trace predictor. Tables must be powers of two.
type Config struct {
	PrimaryEntries   int
	SecondaryEntries int
	DOLC             DOLC
}

// DefaultConfig returns Table 1's predictor: 64 K primary, 16 K secondary.
func DefaultConfig() Config {
	return Config{PrimaryEntries: 64 << 10, SecondaryEntries: 16 << 10, DOLC: DefaultDOLC()}
}

// entry is one tagless table entry: a predicted next-fragment ID and a
// 2-bit replacement/confidence counter.
type entry struct {
	id  frag.ID
	ctr uint8
}

// TracePredictor is the two-level path-based next-trace predictor.
type TracePredictor struct {
	cfg       Config
	primary   []entry
	secondary []entry

	predicts int64
	updates  int64
	correct  int64
	fromSec  int64
}

// New creates a predictor with the given configuration; sizes are rounded
// up to powers of two.
func New(cfg Config) *TracePredictor {
	if cfg.PrimaryEntries <= 0 {
		cfg.PrimaryEntries = 64 << 10
	}
	if cfg.SecondaryEntries <= 0 {
		cfg.SecondaryEntries = cfg.PrimaryEntries / 4
	}
	if cfg.DOLC.Depth <= 0 {
		cfg.DOLC = DefaultDOLC()
	}
	if cfg.DOLC.Depth > maxDepth {
		cfg.DOLC.Depth = maxDepth
	}
	return &TracePredictor{
		cfg:       cfg,
		primary:   make([]entry, ceilPow2(cfg.PrimaryEntries)),
		secondary: make([]entry, ceilPow2(cfg.SecondaryEntries)),
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fold XOR-folds v down to bits wide.
func fold(v uint64, bits uint) uint64 {
	mask := uint64(1)<<bits - 1
	r := uint64(0)
	for v != 0 {
		r ^= v & mask
		v >>= bits
	}
	return r
}

// primaryIndex hashes the full DOLC history: Current bits from the newest
// ID, Last bits from the next, Older bits from each of the remaining
// Depth-2 IDs, concatenated and folded to the table size.
func (p *TracePredictor) primaryIndex(h *History) int {
	d := p.cfg.DOLC
	var acc uint64
	var width uint
	push := func(v uint64, bits uint) {
		acc ^= (v & (1<<bits - 1)) << (width % 48)
		width += bits
	}
	push(fold(h.recent(0), d.Current), d.Current)
	if d.Depth > 1 {
		push(fold(h.recent(1), d.Last), d.Last)
	}
	for i := 2; i < d.Depth; i++ {
		push(fold(h.recent(i), d.Older), d.Older)
	}
	return int(fold(acc, tableBits(len(p.primary))))
}

// secondaryIndex hashes only the most recent ID — the shallow-history table
// that warms up fast and catches primary cold misses.
func (p *TracePredictor) secondaryIndex(h *History) int {
	return int(fold(h.recent(0), tableBits(len(p.secondary))))
}

func tableBits(n int) uint {
	b := uint(0)
	for 1<<b < n {
		b++
	}
	return b
}

// Prediction is the predictor's output for one lookup.
type Prediction struct {
	ID            frag.ID
	Valid         bool // false: no table has a confident entry
	FromSecondary bool
}

// Predict returns the predicted next fragment for the given history.
// The primary table predicts when its entry is confident (counter >= 2);
// otherwise the secondary table predicts if it has ever been trained.
func (p *TracePredictor) Predict(h *History) Prediction {
	p.predicts++
	pe := p.primary[p.primaryIndex(h)]
	if pe.ctr >= 2 && !pe.id.Zero() {
		return Prediction{ID: pe.id, Valid: true}
	}
	se := p.secondary[p.secondaryIndex(h)]
	if !se.id.Zero() {
		p.fromSec++
		return Prediction{ID: se.id, Valid: true, FromSecondary: true}
	}
	if !pe.id.Zero() {
		return Prediction{ID: pe.id, Valid: true}
	}
	return Prediction{}
}

// Update trains both tables with the actual next fragment for the given
// (pre-fragment) history, and records accuracy against what the predictor
// would have said. The fetch engine calls Update on the true fragment
// stream — speculative fetch uses checkpointed histories, so recovery is a
// history restore plus retraining, as in the paper.
func (p *TracePredictor) Update(h *History, actual frag.ID) {
	p.updates++
	// The history is hashed once and the indices shared between the
	// accuracy peek and the training writes — Update is called once per
	// true-path fragment by the simulator and the functional warmer alike,
	// and the DOLC fold is the predictor's hottest computation.
	pi, si := p.primaryIndex(h), p.secondaryIndex(h)
	if pred := p.peekAt(pi, si); pred.Valid && pred.ID == actual {
		p.correct++
	}
	train := func(e *entry) {
		if e.id == actual {
			if e.ctr < 3 {
				e.ctr++
			}
			return
		}
		if e.ctr > 0 {
			e.ctr--
			return
		}
		e.id = actual
		e.ctr = 1
	}
	train(&p.primary[pi])
	train(&p.secondary[si])
}

// peekAt is Predict without statistics over already-computed table indices,
// used for accuracy accounting inside Update.
func (p *TracePredictor) peekAt(pi, si int) Prediction {
	pe := p.primary[pi]
	if pe.ctr >= 2 && !pe.id.Zero() {
		return Prediction{ID: pe.id, Valid: true}
	}
	se := p.secondary[si]
	if !se.id.Zero() {
		return Prediction{ID: se.id, Valid: true, FromSecondary: true}
	}
	if !pe.id.Zero() {
		return Prediction{ID: pe.id, Valid: true}
	}
	return Prediction{}
}

// Accuracy returns the fraction of Update calls whose fragment the
// predictor had right, and the total number of trained fragments.
func (p *TracePredictor) Accuracy() (float64, int64) {
	if p.updates == 0 {
		return 0, 0
	}
	return float64(p.correct) / float64(p.updates), p.updates
}

// Stats returns raw counters: predictions made, correct, and how many came
// from the secondary table.
func (p *TracePredictor) Stats() (predicts, correct, fromSecondary int64) {
	return p.predicts, p.correct, p.fromSec
}
