package bpred

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/program"
)

func TestHistoryPushAndRecent(t *testing.T) {
	var h History
	if h.recent(0) != 0 {
		t.Error("empty history must read zero")
	}
	for i := 1; i <= 20; i++ {
		h.Push(uint64(i))
	}
	for i := 0; i < maxDepth; i++ {
		want := uint64(20 - i)
		if got := h.recent(i); got != want {
			t.Errorf("recent(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistoryIsValueType(t *testing.T) {
	var h History
	h.Push(1)
	h.Push(2)
	cp := h // checkpoint
	h.Push(3)
	if cp.recent(0) != 2 {
		t.Error("checkpoint mutated by later push")
	}
	if h.recent(0) != 3 {
		t.Error("original lost later push")
	}
}

func TestFoldStaysInRange(t *testing.T) {
	for _, bits := range []uint{1, 7, 9, 16} {
		for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
			if f := fold(v, bits); f >= 1<<bits {
				t.Errorf("fold(%#x,%d) = %#x out of range", v, bits, f)
			}
		}
	}
}

func TestPredictorLearnsRepeatingSequence(t *testing.T) {
	p := New(Config{PrimaryEntries: 1024, SecondaryEntries: 256})
	seq := []frag.ID{
		{StartPC: 0x1000, NumBr: 1, BrMask: 1},
		{StartPC: 0x1040, NumBr: 2, BrMask: 2},
		{StartPC: 0x1100},
		{StartPC: 0x1200, NumBr: 1},
	}
	var h History
	// Train a few passes.
	for pass := 0; pass < 8; pass++ {
		for _, id := range seq {
			p.Update(&h, id)
			h.Push(id.Key())
		}
	}
	// The predictor must now be essentially perfect on this loop.
	correct := 0
	for pass := 0; pass < 4; pass++ {
		for _, id := range seq {
			if pred := p.Predict(&h); pred.Valid && pred.ID == id {
				correct++
			}
			p.Update(&h, id)
			h.Push(id.Key())
		}
	}
	if correct < 15 {
		t.Errorf("learned-sequence accuracy %d/16", correct)
	}
}

func TestPredictorDisambiguatesByPath(t *testing.T) {
	// Two contexts A->X and B->Y where X and Y follow the same immediate
	// predecessor C. Only path history can tell them apart.
	p := New(Config{PrimaryEntries: 4096, SecondaryEntries: 1024, DOLC: DefaultDOLC()})
	a := frag.ID{StartPC: 0xa000}
	b := frag.ID{StartPC: 0xb000}
	c := frag.ID{StartPC: 0xc000}
	x := frag.ID{StartPC: 0x1000}
	y := frag.ID{StartPC: 0x2000}

	var h History
	feed := func(ids ...frag.ID) {
		for _, id := range ids {
			p.Update(&h, id)
			h.Push(id.Key())
		}
	}
	for i := 0; i < 20; i++ {
		feed(a, c, x)
		feed(b, c, y)
	}
	// Keep streaming the same pattern and check the prediction made at
	// each post-C point. The most recent fragment is always C, so only
	// deeper path history can separate the two cases; a predictor keyed
	// on the last fragment alone would be at most 50% correct here.
	okX, okY := 0, 0
	for i := 0; i < 10; i++ {
		feed(a)
		feed(c)
		if pred := p.Predict(&h); pred.Valid && pred.ID == x {
			okX++
		}
		feed(x)
		feed(b)
		feed(c)
		if pred := p.Predict(&h); pred.Valid && pred.ID == y {
			okY++
		}
		feed(y)
	}
	if okX < 8 || okY < 8 {
		t.Errorf("path disambiguation: X %d/10, Y %d/10", okX, okY)
	}
}

// fragmentStream replays a benchmark's true fragment sequence into fn.
func fragmentStream(t *testing.T, spec program.Spec, maxInsts int, fn func(frag.ID)) {
	t.Helper()
	p, err := program.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	var stream []frag.Dyn
	total := 0
	for total < maxInsts {
		for len(stream) < 2*frag.MaxLen && !m.Halted() {
			d, err := m.Step()
			if err != nil {
				break
			}
			stream = append(stream, frag.Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
		}
		if len(stream) == 0 {
			return
		}
		n, id := frag.Split(stream)
		fn(id)
		stream = stream[n:]
		total += n
	}
}

// TestSuitePredictability calibrates fragment-predictor accuracy on the
// suite: the paper's front-ends live around 80-95% next-fragment accuracy
// (trace cache hit rates average 87%). Workloads outside a broad band would
// distort every downstream experiment.
func TestSuitePredictability(t *testing.T) {
	if testing.Short() {
		t.Skip("suite calibration is not short")
	}
	for _, spec := range program.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := New(DefaultConfig())
			var h History
			fragmentStream(t, spec, 300_000, func(id frag.ID) {
				p.Update(&h, id)
				h.Push(id.Key())
			})
			acc, n := p.Accuracy()
			if n < 1000 {
				t.Fatalf("only %d fragments", n)
			}
			if acc < 0.55 || acc > 0.999 {
				t.Errorf("%s: fragment accuracy %.3f outside [0.55,0.999]", spec.Name, acc)
			}
			t.Logf("%s: fragment prediction accuracy %.3f over %d fragments", spec.Name, acc, n)
		})
	}
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(12)
	// Strongly biased branch: ~90% taken in a fixed pattern.
	for i := 0; i < 2000; i++ {
		g.Update(0x4000, i%10 != 0)
	}
	if acc := g.Accuracy(); acc < 0.8 {
		t.Errorf("gshare accuracy %.3f on 90%% biased branch", acc)
	}
}

func TestGsharePerfectOnAlternation(t *testing.T) {
	g := NewGshare(12)
	for i := 0; i < 4000; i++ {
		g.Update(0x4000, i%2 == 0)
	}
	if acc := g.Accuracy(); acc < 0.9 {
		t.Errorf("gshare accuracy %.3f on alternating branch, want >0.9", acc)
	}
}

func TestPredictorSizeMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	// Bigger tables should not be (much) worse on a large-footprint
	// benchmark (Fig 10's premise).
	spec, err := program.SpecByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	accAt := func(entries int) float64 {
		p := New(Config{PrimaryEntries: entries, SecondaryEntries: entries / 4})
		var h History
		fragmentStream(t, spec, 200_000, func(id frag.ID) {
			p.Update(&h, id)
			h.Push(id.Key())
		})
		acc, _ := p.Accuracy()
		return acc
	}
	small, large := accAt(1<<12), accAt(1<<16)
	t.Logf("gcc: 4K entries %.3f, 64K entries %.3f", small, large)
	if large < small-0.02 {
		t.Errorf("accuracy degraded with larger table: %.3f -> %.3f", small, large)
	}
}
