package bpred

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/program"
)

// TestDOLCDepthMatters: a context that only differs D fragments back can
// be disambiguated with a deep history but not with depth 1.
func TestDOLCDepthMatters(t *testing.T) {
	mk := func(pc uint64) frag.ID { return frag.ID{StartPC: pc} }
	a, b := mk(0xa000), mk(0xb000)
	mid := []frag.ID{mk(0x1000), mk(0x2000), mk(0x3000)}
	x, y := mk(0xe000), mk(0xf000)

	accuracy := func(depth int) float64 {
		p := New(Config{PrimaryEntries: 1 << 14, SecondaryEntries: 1 << 12,
			DOLC: DOLC{Depth: depth, Older: 4, Last: 7, Current: 9}})
		var h History
		correct, total := 0, 0
		feed := func(score bool, ids ...frag.ID) {
			for _, id := range ids {
				if score {
					if pred := p.Predict(&h); pred.Valid && pred.ID == id {
						correct++
					}
					total++
				}
				p.Update(&h, id)
				h.Push(id.Key())
			}
		}
		for i := 0; i < 30; i++ {
			feed(false, a)
			feed(false, mid...)
			feed(false, x)
			feed(false, b)
			feed(false, mid...)
			feed(false, y)
		}
		for i := 0; i < 10; i++ {
			feed(false, a)
			feed(false, mid...)
			feed(true, x) // predictable only with depth > len(mid)+1
			feed(false, b)
			feed(false, mid...)
			feed(true, y)
		}
		return float64(correct) / float64(total)
	}

	shallow := accuracy(2) // sees only mid[2], identical in both contexts
	deep := accuracy(6)    // sees a/b
	t.Logf("depth-2 accuracy %.2f, depth-6 accuracy %.2f", shallow, deep)
	if deep < 0.9 {
		t.Errorf("deep history should disambiguate: %.2f", deep)
	}
	if shallow > 0.75 {
		t.Errorf("shallow history should be confused: %.2f", shallow)
	}
}

// TestPredictorColdStart: with no training, predictions must be invalid
// rather than garbage.
func TestPredictorColdStart(t *testing.T) {
	p := New(DefaultConfig())
	var h History
	if pred := p.Predict(&h); pred.Valid {
		t.Errorf("cold predictor returned a valid prediction: %+v", pred)
	}
}

// TestSecondaryCatchesColdPrimary: the shallow-history secondary table
// warms up faster after a context switch to fresh code.
func TestSecondaryCatchesColdPrimary(t *testing.T) {
	p := New(Config{PrimaryEntries: 1024, SecondaryEntries: 256})
	var h History
	seq := []frag.ID{{StartPC: 0x1000}, {StartPC: 0x2000}, {StartPC: 0x3000}}
	// One pass: primary counters are at most 1, so the secondary (which
	// predicts whenever trained) supplies the predictions on pass two.
	for _, id := range seq {
		p.Update(&h, id)
		h.Push(id.Key())
	}
	sawSecondary := false
	for _, id := range seq {
		pred := p.Predict(&h)
		if pred.Valid && pred.FromSecondary && pred.ID == id {
			sawSecondary = true
		}
		p.Update(&h, id)
		h.Push(id.Key())
	}
	if !sawSecondary {
		t.Error("secondary table never supplied an early prediction")
	}
}

// TestPredictorSuiteDeterminism: identical streams produce identical
// predictor statistics.
func TestPredictorSuiteDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		spec, err := program.SpecByName("gzip")
		if err != nil {
			t.Fatal(err)
		}
		p := New(DefaultConfig())
		var h History
		fragmentStream(t, spec, 50_000, func(id frag.ID) {
			p.Update(&h, id)
			h.Push(id.Key())
		})
		return p.Accuracy()
	}
	a1, n1 := run()
	a2, n2 := run()
	if a1 != a2 || n1 != n2 {
		t.Errorf("nondeterministic: %.6f/%d vs %.6f/%d", a1, n1, a2, n2)
	}
}
