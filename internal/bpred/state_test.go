package bpred

import (
	"bytes"
	"testing"

	"github.com/parallel-frontend/pfe/internal/frag"
)

func warmPredictor(t *testing.T) (*TracePredictor, *History) {
	t.Helper()
	cfg := Config{PrimaryEntries: 1 << 10, SecondaryEntries: 1 << 8, DOLC: DefaultConfig().DOLC}
	p := New(cfg)
	var h History
	for i := 0; i < 2000; i++ {
		id := frag.ID{StartPC: uint64(i%37) * 16, BrMask: uint32(i % 7), NumBr: uint8(i % 4)}
		p.Predict(&h)
		p.Update(&h, id)
		h.Push(id.StartPC ^ uint64(id.BrMask))
	}
	return p, &h
}

func TestTracePredictorStateRoundTrip(t *testing.T) {
	p, h := warmPredictor(t)
	snap := p.AppendState(nil)
	snap = h.AppendState(snap)

	cfg := Config{PrimaryEntries: 1 << 10, SecondaryEntries: 1 << 8, DOLC: DefaultConfig().DOLC}
	fp := New(cfg)
	var fh History
	rest, err := fp.LoadState(snap)
	if err != nil {
		t.Fatalf("predictor LoadState: %v", err)
	}
	if rest, err = fh.LoadState(rest); err != nil {
		t.Fatalf("history LoadState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("LoadState left %d bytes", len(rest))
	}
	resnap := fp.AppendState(nil)
	resnap = fh.AppendState(resnap)
	if !bytes.Equal(resnap, snap) {
		t.Fatal("re-snapshot differs from original")
	}
	// Restored predictor must predict identically going forward.
	for i := 0; i < 500; i++ {
		a, b := fp.Predict(&fh), p.Predict(h)
		if a != b {
			t.Fatalf("post-restore prediction diverges at %d: %+v vs %+v", i, a, b)
		}
		id := frag.ID{StartPC: uint64(i%23) * 8, BrMask: uint32(i % 5), NumBr: uint8(i % 3)}
		p.Update(h, id)
		fp.Update(&fh, id)
		h.Push(id.StartPC)
		fh.Push(id.StartPC)
	}
}

func TestTracePredictorStateSizeMismatch(t *testing.T) {
	p, _ := warmPredictor(t)
	snap := p.AppendState(nil)
	other := New(Config{PrimaryEntries: 1 << 11, SecondaryEntries: 1 << 8, DOLC: DefaultConfig().DOLC})
	if _, err := other.LoadState(snap); err == nil {
		t.Fatal("expected error loading snapshot into differently sized predictor")
	}
}

func TestHistoryStateCorrupt(t *testing.T) {
	var h History
	h.Push(1)
	h.Push(2)
	snap := h.AppendState(nil)
	snap[len(snap)-2] = 200 // n out of range
	var fh History
	if _, err := fh.LoadState(snap); err == nil {
		t.Fatal("expected error on corrupt history count")
	}
	if _, err := fh.LoadState(snap[:5]); err == nil {
		t.Fatal("expected error on truncated history")
	}
}
