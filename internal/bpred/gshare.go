package bpred

// Gshare is a classic global-history direction predictor. The paper's
// front-ends do not need it (the trace predictor supplies directions), but
// the repository uses it for ablation benchmarks that quantify how much the
// path-based predictor buys over a conventional scheme, and tests use it as
// a baseline for predictability of the synthetic workloads.
type Gshare struct {
	table   []uint8 // 2-bit counters
	history uint64
	bits    uint

	updates int64
	correct int64
}

// NewGshare creates a gshare predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	if bits == 0 || bits > 24 {
		bits = 14
	}
	return &Gshare{table: make([]uint8, 1<<bits), bits: bits}
}

func (g *Gshare) index(pc uint64) int {
	return int(((pc >> 2) ^ g.history) & (uint64(len(g.table)) - 1))
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the actual outcome and shifts the global
// history, self-scoring against its own pre-update prediction. Callers must
// Update in program order for history coherence.
func (g *Gshare) Update(pc uint64, taken bool) {
	g.updates++
	i := g.index(pc)
	if (g.table[i] >= 2) == taken {
		g.correct++
	}
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = g.history<<1 | boolBit(taken)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Accuracy returns the fraction of updates whose direction the predictor
// had right before training.
func (g *Gshare) Accuracy() float64 {
	if g.updates == 0 {
		return 0
	}
	return float64(g.correct) / float64(g.updates)
}
