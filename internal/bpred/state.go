package bpred

import (
	"encoding/binary"
	"fmt"

	"github.com/parallel-frontend/pfe/internal/frag"
)

// State serialization for the trace predictor and path history, in a
// deterministic fixed-width little-endian layout: warmed predictor tables
// can be snapshotted as content-addressed artifacts and restored bit-exactly
// into an identically configured predictor (see pfe's warm-state
// artifacts). Configuration is not serialized — callers key snapshots on it.

func appendEntries(b []byte, es []entry) []byte {
	for _, e := range es {
		b = binary.LittleEndian.AppendUint64(b, e.id.StartPC)
		b = binary.LittleEndian.AppendUint32(b, e.id.BrMask)
		b = append(b, e.id.NumBr, e.ctr)
	}
	return b
}

func loadEntries(b []byte, es []entry) ([]byte, error) {
	const w = 8 + 4 + 1 + 1
	if len(b) < len(es)*w {
		return nil, fmt.Errorf("bpred: truncated predictor table state")
	}
	for i := range es {
		es[i].id = frag.ID{
			StartPC: binary.LittleEndian.Uint64(b),
			BrMask:  binary.LittleEndian.Uint32(b[8:]),
			NumBr:   b[12],
		}
		es[i].ctr = b[13]
		b = b[w:]
	}
	return b, nil
}

// AppendState appends both table contents and the accuracy counters to b.
func (p *TracePredictor) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.primary)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.secondary)))
	b = appendEntries(b, p.primary)
	b = appendEntries(b, p.secondary)
	for _, c := range [...]int64{p.predicts, p.updates, p.correct, p.fromSec} {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return b
}

// LoadState restores a snapshot written by AppendState into an identically
// sized predictor, returning the remaining bytes.
func (p *TracePredictor) LoadState(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("bpred: truncated predictor state")
	}
	np, ns := int(binary.LittleEndian.Uint32(b)), int(binary.LittleEndian.Uint32(b[4:]))
	if np != len(p.primary) || ns != len(p.secondary) {
		return nil, fmt.Errorf("bpred: predictor state tables %d/%d, predictor has %d/%d",
			np, ns, len(p.primary), len(p.secondary))
	}
	b = b[8:]
	var err error
	if b, err = loadEntries(b, p.primary); err != nil {
		return nil, err
	}
	if b, err = loadEntries(b, p.secondary); err != nil {
		return nil, err
	}
	if len(b) < 8*4 {
		return nil, fmt.Errorf("bpred: truncated predictor counters")
	}
	p.predicts = int64(binary.LittleEndian.Uint64(b))
	p.updates = int64(binary.LittleEndian.Uint64(b[8:]))
	p.correct = int64(binary.LittleEndian.Uint64(b[16:]))
	p.fromSec = int64(binary.LittleEndian.Uint64(b[24:]))
	return b[32:], nil
}

// AppendState appends the history's ring contents to b.
func (h *History) AppendState(b []byte) []byte {
	for _, k := range h.keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	return append(b, byte(h.n), byte(h.head))
}

// LoadState restores a history snapshot, returning the remaining bytes.
func (h *History) LoadState(b []byte) ([]byte, error) {
	if len(b) < maxDepth*8+2 {
		return nil, fmt.Errorf("bpred: truncated history state")
	}
	for i := range h.keys {
		h.keys[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	b = b[maxDepth*8:]
	h.n, h.head = int(b[0]), int(b[1])
	if h.n < 0 || h.n > maxDepth || h.head < 0 || h.head >= maxDepth {
		return nil, fmt.Errorf("bpred: corrupt history state (n=%d head=%d)", h.n, h.head)
	}
	return b[2:], nil
}
