package tcache

import (
	"encoding/binary"
	"fmt"

	"github.com/parallel-frontend/pfe/internal/frag"
)

// State serialization for the trace cache (deterministic fixed-width
// little-endian). Lines store only the trace identity — the fragment bodies
// are pure functions of (program, ID) and are re-materialized on load via
// the caller's resolver, exactly as the fill unit would build them.

// AppendState appends the cache's line identities and counters to b.
func (c *Cache) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.lines)))
	for i := range c.lines {
		ln := &c.lines[i]
		var v byte
		if ln.valid {
			v = 1
		}
		b = append(b, v)
		b = binary.LittleEndian.AppendUint64(b, ln.id.StartPC)
		b = binary.LittleEndian.AppendUint32(b, ln.id.BrMask)
		b = append(b, ln.id.NumBr)
		b = binary.LittleEndian.AppendUint64(b, ln.lru)
	}
	b = binary.LittleEndian.AppendUint64(b, c.stamp)
	for _, v := range [...]int64{c.lookups, c.hits, c.fills} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

// LoadState restores a snapshot written by AppendState into an identically
// shaped cache, rebuilding each valid line's trace through resolve, and
// returns the remaining bytes.
func (c *Cache) LoadState(b []byte, resolve func(frag.ID) *frag.Fragment) ([]byte, error) {
	const w = 1 + 8 + 4 + 1 + 8
	if len(b) < 4 {
		return nil, fmt.Errorf("tcache: truncated state")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n != len(c.lines) {
		return nil, fmt.Errorf("tcache: state has %d lines, cache has %d", n, len(c.lines))
	}
	if len(b) < n*w+8*4 {
		return nil, fmt.Errorf("tcache: truncated state")
	}
	for i := range c.lines {
		ln := line{
			valid: b[0] != 0,
			id: frag.ID{
				StartPC: binary.LittleEndian.Uint64(b[1:]),
				BrMask:  binary.LittleEndian.Uint32(b[9:]),
				NumBr:   b[13],
			},
			lru: binary.LittleEndian.Uint64(b[14:]),
		}
		if ln.valid {
			ln.f = resolve(ln.id)
		}
		c.lines[i] = ln
		b = b[w:]
	}
	c.stamp = binary.LittleEndian.Uint64(b)
	c.lookups = int64(binary.LittleEndian.Uint64(b[8:]))
	c.hits = int64(binary.LittleEndian.Uint64(b[16:]))
	c.fills = int64(binary.LittleEndian.Uint64(b[24:]))
	return b[32:], nil
}
