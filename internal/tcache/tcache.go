// Package tcache implements the trace cache baseline (§5: "TC"): a 2-way
// set-associative cache of instruction traces with a maximum trace size of
// 16 instructions, filled by a fill unit observing the committed instruction
// stream, and indexed by trace identity (start PC + branch directions).
//
// Trace selection uses the identical heuristics as fragment selection
// (internal/frag) — the paper deliberately makes fragments and traces the
// same so the comparison between TC and the parallel front-end is unbiased.
package tcache

import (
	"github.com/parallel-frontend/pfe/internal/frag"
)

// Config sizes the trace cache.
type Config struct {
	// SizeBytes is the storage budget. Each entry holds one trace line
	// of frag.MaxLen instructions at 4 bytes each.
	SizeBytes int
	Ways      int
}

// LineBytes is the storage charged per trace entry: a full-length trace's
// instruction words. (Tag and metadata overheads are excluded from the
// budget, as is conventional and as the paper's "32 KB trace cache" sizing
// implies.)
const LineBytes = frag.MaxLen * 4

// DefaultConfig returns the paper's TC configuration: 32 KB, 2-way.
func DefaultConfig() Config { return Config{SizeBytes: 32 << 10, Ways: 2} }

type line struct {
	id    frag.ID
	f     *frag.Fragment
	valid bool
	lru   uint64
}

// Cache is the trace cache.
type Cache struct {
	sets  int
	ways  int
	lines []line
	stamp uint64

	lookups int64
	hits    int64
	fills   int64
}

// New builds a trace cache; entries = SizeBytes / LineBytes rounded down to
// a power of two of sets.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		cfg.Ways = 2
	}
	entries := cfg.SizeBytes / LineBytes
	if entries < cfg.Ways {
		entries = cfg.Ways
	}
	sets := 1
	for sets*2*cfg.Ways <= entries {
		sets *= 2
	}
	return &Cache{
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]line, sets*cfg.Ways),
	}
}

// Entries returns the total number of trace lines.
func (c *Cache) Entries() int { return len(c.lines) }

func (c *Cache) setOf(id frag.ID) int {
	// Index by start PC only (the conventional design): different
	// direction variants of the same start compete within the set, which
	// is a real source of trace-cache conflict the paper leans on.
	return int((id.StartPC >> 2) % uint64(c.sets))
}

// Lookup returns the stored trace for id, if present.
func (c *Cache) Lookup(id frag.ID) (*frag.Fragment, bool) {
	c.lookups++
	c.stamp++
	base := c.setOf(id) * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.id == id {
			ln.lru = c.stamp
			c.hits++
			return ln.f, true
		}
	}
	return nil, false
}

// Fill inserts a trace built by the fill unit, evicting LRU within the set.
func (c *Cache) Fill(f *frag.Fragment) {
	c.fills++
	c.stamp++
	base := c.setOf(f.ID) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.id == f.ID {
			ln.f = f // refresh in place
			ln.lru = c.stamp
			return
		}
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	c.lines[victim] = line{id: f.ID, f: f, valid: true, lru: c.stamp}
}

// HitRate returns hits/lookups.
func (c *Cache) HitRate() float64 {
	if c.lookups == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.lookups)
}

// Stats returns raw counters.
func (c *Cache) Stats() (lookups, hits, fills int64) { return c.lookups, c.hits, c.fills }
