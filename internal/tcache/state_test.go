package tcache

import (
	"bytes"
	"testing"

	"github.com/parallel-frontend/pfe/internal/frag"
)

func testFrag(id frag.ID) *frag.Fragment {
	f := &frag.Fragment{ID: id}
	for j := 0; j < 4; j++ {
		f.PCs = append(f.PCs, id.StartPC+uint64(j)*4)
	}
	return f
}

func warmTCache(t *testing.T) *Cache {
	t.Helper()
	c := New(Config{SizeBytes: 1 << 14, Ways: 2})
	for i := 0; i < 800; i++ {
		id := frag.ID{StartPC: uint64(i%97) * 32, BrMask: uint32(i % 11), NumBr: uint8(i % 4)}
		if _, ok := c.Lookup(id); !ok {
			c.Fill(testFrag(id))
		}
	}
	return c
}

func TestTCacheStateRoundTrip(t *testing.T) {
	c := warmTCache(t)
	snap := c.AppendState(nil)

	fresh := New(Config{SizeBytes: 1 << 14, Ways: 2})
	rest, err := fresh.LoadState(snap, testFrag)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("LoadState left %d bytes", len(rest))
	}
	if !bytes.Equal(fresh.AppendState(nil), snap) {
		t.Fatal("re-snapshot differs from original")
	}
	if fresh.Entries() != c.Entries() {
		t.Fatalf("entries differ: %d vs %d", fresh.Entries(), c.Entries())
	}
	// Restored cache must hit/miss identically going forward, and hits must
	// return re-materialized fragments with the right identity.
	for i := 0; i < 300; i++ {
		id := frag.ID{StartPC: uint64(i%89) * 32, BrMask: uint32(i % 7), NumBr: uint8(i % 3)}
		af, aok := c.Lookup(id)
		bf, bok := fresh.Lookup(id)
		if aok != bok {
			t.Fatalf("post-restore hit/miss diverges at %d", i)
		}
		if aok && (bf == nil || bf.ID != af.ID || len(bf.PCs) != len(af.PCs)) {
			t.Fatalf("post-restore fragment differs at %d", i)
		}
	}
}

func TestTCacheStateSizeMismatch(t *testing.T) {
	snap := warmTCache(t).AppendState(nil)
	other := New(Config{SizeBytes: 1 << 15, Ways: 2})
	if _, err := other.LoadState(snap, testFrag); err == nil {
		t.Fatal("expected error loading snapshot into differently sized cache")
	}
	fresh := New(Config{SizeBytes: 1 << 14, Ways: 2})
	if _, err := fresh.LoadState(snap[:len(snap)-5], testFrag); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}
