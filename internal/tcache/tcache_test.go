package tcache

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/program"
)

func mkFrag(pc uint64, mask uint32, nbr uint8) *frag.Fragment {
	return &frag.Fragment{ID: frag.ID{StartPC: pc, BrMask: mask, NumBr: nbr}}
}

func TestSizing(t *testing.T) {
	c := New(Config{SizeBytes: 32 << 10, Ways: 2})
	if got := c.Entries(); got != 512 {
		t.Errorf("32KB cache entries = %d, want 512", got)
	}
	c = New(Config{SizeBytes: 64 << 10, Ways: 2})
	if got := c.Entries(); got != 1024 {
		t.Errorf("64KB cache entries = %d, want 1024", got)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 2})
	f := mkFrag(0x2000, 1, 1)
	if _, hit := c.Lookup(f.ID); hit {
		t.Fatal("cold lookup must miss")
	}
	c.Fill(f)
	got, hit := c.Lookup(f.ID)
	if !hit || got != f {
		t.Fatal("lookup after fill must hit")
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %.2f, want 0.5", c.HitRate())
	}
}

func TestDirectionVariantsAreDistinct(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 2})
	a := mkFrag(0x2000, 0, 1) // not-taken variant
	b := mkFrag(0x2000, 1, 1) // taken variant
	c.Fill(a)
	if _, hit := c.Lookup(b.ID); hit {
		t.Fatal("different direction mask must miss")
	}
	c.Fill(b)
	if _, hit := c.Lookup(a.ID); !hit {
		t.Fatal("both variants should coexist in a 2-way set")
	}
	if _, hit := c.Lookup(b.ID); !hit {
		t.Fatal("second variant missing")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	c := New(Config{SizeBytes: LineBytes * 2, Ways: 2}) // single set
	a, b, d := mkFrag(0x1000, 0, 0), mkFrag(0x2000, 0, 0), mkFrag(0x3000, 0, 0)
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a.ID) // touch a
	c.Fill(d)      // evicts b
	if _, hit := c.Lookup(a.ID); !hit {
		t.Error("a should survive")
	}
	if _, hit := c.Lookup(b.ID); hit {
		t.Error("b should have been evicted")
	}
	if _, hit := c.Lookup(d.ID); !hit {
		t.Error("d should be resident")
	}
}

func TestRefillSameIDRefreshes(t *testing.T) {
	c := New(Config{SizeBytes: LineBytes * 2, Ways: 2})
	a := mkFrag(0x1000, 0, 0)
	c.Fill(a)
	a2 := mkFrag(0x1000, 0, 0)
	c.Fill(a2)
	got, hit := c.Lookup(a.ID)
	if !hit || got != a2 {
		t.Error("refill must replace contents in place")
	}
	// Only one way should be consumed; another fragment must still fit.
	b := mkFrag(0x2000, 0, 0)
	c.Fill(b)
	if _, hit := c.Lookup(a.ID); !hit {
		t.Error("duplicate fill consumed both ways")
	}
}

// TestSuiteHitRates calibrates the trace cache against the paper: a 32 KB
// trace cache filled from the committed stream should land in the vicinity
// of the paper's reported ~87% average hit rate, with large-footprint
// benchmarks (gcc, perl, vortex, crafty) markedly lower than small ones.
func TestSuiteHitRates(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	rates := make(map[string]float64)
	for _, spec := range program.Suite() {
		p, err := program.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		m := emu.New(p)
		c := New(DefaultConfig())
		var stream []frag.Dyn
		total := 0
		for total < 300_000 {
			for len(stream) < 2*frag.MaxLen && !m.Halted() {
				d, err := m.Step()
				if err != nil {
					break
				}
				stream = append(stream, frag.Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
			}
			if len(stream) == 0 {
				break
			}
			n, id := frag.Split(stream)
			if _, hit := c.Lookup(id); !hit {
				f := frag.FromCode(p, id)
				c.Fill(f)
			}
			stream = stream[n:]
			total += n
		}
		rates[spec.Name] = c.HitRate()
		t.Logf("%s: trace cache hit rate %.3f", spec.Name, c.HitRate())
	}
	// Shape checks rather than absolute numbers.
	if rates["gzip"] < rates["gcc"] {
		t.Errorf("small-footprint gzip (%.3f) should out-hit gcc (%.3f)", rates["gzip"], rates["gcc"])
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	avg := sum / float64(len(rates))
	if avg < 0.6 || avg > 0.99 {
		t.Errorf("average hit rate %.3f outside plausible band", avg)
	}
}
