package stats

import (
	"strings"
	"testing"

	"github.com/parallel-frontend/pfe/internal/metrics"
)

func TestHistogramTable(t *testing.T) {
	h := metrics.NewHistogram("frag-len", 4, 8)
	for i := 0; i < 30; i++ {
		h.Observe(3) // bucket 0
	}
	for i := 0; i < 10; i++ {
		h.Observe(12) // bucket 1
	}
	h.Observe(100) // overflow

	s := HistogramTable(h).String()
	for _, want := range []string{
		"frag-len (n=41, mean=",
		"max=100",
		"0-7", "8-15", "32+", // bucket ranges (empty 16-23/24-31 omitted)
		"73.2", // 30/41 share
	} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "16-23") || strings.Contains(s, "24-31") {
		t.Errorf("table shows empty buckets:\n%s", s)
	}
	// The modal bucket gets the full-width bar.
	if !strings.Contains(s, strings.Repeat("#", 40)) {
		t.Errorf("no full-width bar for the peak bucket:\n%s", s)
	}
}

func TestHistogramTableSingleWidthAndEmpty(t *testing.T) {
	empty := metrics.NewHistogram("none", 4, 8)
	s := HistogramTable(empty).String()
	if !strings.Contains(s, "none (n=0") {
		t.Errorf("empty histogram title missing:\n%s", s)
	}

	h := metrics.NewHistogram("unit", 4, 1)
	h.Observe(2)
	s = HistogramTable(h).String()
	if !strings.Contains(s, "2") || strings.Contains(s, "2-2") {
		t.Errorf("width-1 bucket should render as a single value:\n%s", s)
	}
}
