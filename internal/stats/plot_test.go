package stats

import (
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := NewPlot("demo", 0, 1, 2, 3)
	p.XLabel = "x axis"
	p.AddSeries("up", 1, 2, 3, 4)
	p.AddSeries("down", 4, 3, 2, 1)
	out := p.String()
	for _, want := range []string{"demo", "legend:", "* up", "+ down", "x axis"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("markers missing")
	}
}

func TestPlotMonotoneSeriesShape(t *testing.T) {
	p := NewPlot("", 0, 1, 2)
	p.AddSeries("rise", 0, 5, 10)
	out := p.String()
	lines := strings.Split(out, "\n")
	// The first data row (top, max y) must contain the marker for the
	// final point; the last data row (min y) the first point.
	var top, bottom string
	for _, ln := range lines {
		if strings.Contains(ln, "|") && strings.Contains(ln, "*") {
			if top == "" {
				top = ln
			}
			bottom = ln
		}
	}
	if top == "" || bottom == "" || top == bottom {
		t.Fatalf("rising series should span rows:\n%s", out)
	}
	ti, bi := strings.LastIndex(top, "*"), strings.Index(bottom, "*")
	if ti <= bi {
		t.Errorf("rising series should put later points to the right: top %d, bottom %d", ti, bi)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if out := NewPlot("x").String(); !strings.Contains(out, "empty") {
		t.Errorf("no-data plot: %q", out)
	}
	p := NewPlot("flat", 1, 2)
	p.AddSeries("c", 3, 3)
	if out := p.String(); out == "" {
		t.Error("flat series must still render")
	}
}
