package stats

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/metrics"
)

// HistogramTable renders a fixed-bucket histogram as a stats.Table: one row
// per non-empty bucket with its range, count, share of observations and a
// proportional bar, plus a summary row. It is how cmd tools and Result
// surface the internal/metrics distributions.
func HistogramTable(h *metrics.Histogram) *Table {
	title := fmt.Sprintf("%s (n=%d, mean=%.2f, max=%d)", h.Name(), h.Count(), h.Mean(), h.Max())
	t := NewTable(title, "range", "count", "%", "")
	if h.Count() == 0 {
		return t
	}
	var peak int64
	for i := 0; i <= h.NumBuckets(); i++ {
		if _, _, c := h.Bucket(i); c > peak {
			peak = c
		}
	}
	for i := 0; i <= h.NumBuckets(); i++ {
		lo, hi, c := h.Bucket(i)
		if c == 0 {
			continue
		}
		var rng string
		switch {
		case hi == -1:
			rng = fmt.Sprintf("%d+", lo)
		case hi == lo+1:
			rng = fmt.Sprintf("%d", lo)
		default:
			rng = fmt.Sprintf("%d-%d", lo, hi-1)
		}
		bar := ""
		if peak > 0 {
			n := int(40 * c / peak)
			for j := 0; j < n; j++ {
				bar += "#"
			}
		}
		t.AddRow(rng, fmt.Sprintf("%d", c),
			fmt.Sprintf("%.1f", 100*float64(c)/float64(h.Count())), bar)
	}
	return t
}
