package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Plot renders line series as an ASCII chart — enough to eyeball the shape
// of Figure 9/10-style sensitivity curves directly in terminal output.
type Plot struct {
	Title  string
	XLabel string
	YLabel string

	xs     []float64
	series []plotSeries

	Width  int // plot area columns (default 56)
	Height int // plot area rows (default 16)
}

type plotSeries struct {
	name   string
	marker byte
	ys     []float64
}

// NewPlot creates a plot over the given x coordinates.
func NewPlot(title string, xs ...float64) *Plot {
	return &Plot{Title: title, xs: xs, Width: 56, Height: 16}
}

// AddSeries adds a named series; ys must align with the plot's xs. Markers
// are assigned in order: * + o x # @.
func (p *Plot) AddSeries(name string, ys ...float64) {
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	m := markers[len(p.series)%len(markers)]
	p.series = append(p.series, plotSeries{name: name, marker: m, ys: ys})
}

// String renders the chart.
func (p *Plot) String() string {
	if len(p.xs) == 0 || len(p.series) == 0 {
		return "(empty plot)\n"
	}
	w, h := p.Width, p.Height
	if w < 16 {
		w = 16
	}
	if h < 4 {
		h = 4
	}

	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for _, y := range s.ys {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	xmin, xmax := p.xs[0], p.xs[0]
	for _, x := range p.xs {
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		return clamp(c, 0, w-1)
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
		return clamp(r, 0, h-1)
	}

	// Connect consecutive points with interpolated markers, then stamp
	// the data points on top.
	for _, s := range p.series {
		for i := 0; i+1 < len(s.ys) && i+1 < len(p.xs); i++ {
			c0, r0 := col(p.xs[i]), row(s.ys[i])
			c1, r1 := col(p.xs[i+1]), row(s.ys[i+1])
			steps := max(abs(c1-c0), abs(r1-r0))
			for t := 1; t < steps; t++ {
				c := c0 + (c1-c0)*t/steps
				r := r0 + (r1-r0)*t/steps
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}
	for _, s := range p.series {
		for i, y := range s.ys {
			if i >= len(p.xs) {
				break
			}
			grid[row(y)][col(p.xs[i])] = s.marker
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	labelW := 9
	for r := 0; r < h; r++ {
		label := ""
		switch r {
		case 0:
			label = trimFloat(ymax)
		case h - 1:
			label = trimFloat(ymin)
		case (h - 1) / 2:
			label = trimFloat((ymax + ymin) / 2)
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", w))

	// X tick labels: first, middle, last.
	ticks := make([]byte, w)
	for i := range ticks {
		ticks[i] = ' '
	}
	writeTick := func(c int, s string) {
		start := clamp(c-len(s)/2, 0, w-len(s))
		copy(ticks[start:], s)
	}
	writeTick(0, trimFloat(xmin))
	writeTick(w/2, trimFloat((xmin+xmax)/2))
	writeTick(w-1, trimFloat(xmax))
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "", string(ticks))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "%*s  %s\n", labelW, "", p.XLabel)
	}

	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.marker, s.name))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%*s  legend: %s\n", labelW, "", strings.Join(legend, "   "))
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
