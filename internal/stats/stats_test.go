package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if s.Get("x") != 0 {
		t.Error("untouched counter must read zero")
	}
	s.Inc("x")
	s.Add("x", 4)
	s.Add("y", 2)
	if s.Get("x") != 5 || s.Get("y") != 2 {
		t.Errorf("x=%d y=%d", s.Get("x"), s.Get("y"))
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("names = %v", names)
	}
}

func TestSetRatio(t *testing.T) {
	var s Set
	if s.Ratio("a", "b") != 0 {
		t.Error("zero denominator must yield 0")
	}
	s.Add("a", 3)
	s.Add("b", 4)
	if got := s.Ratio("a", "b"); got != 0.75 {
		t.Errorf("ratio = %v", got)
	}
}

func TestSetMergeAndReset(t *testing.T) {
	var a, b Set
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merge: x=%d y=%d", a.Get("x"), a.Get("y"))
	}
	a.Reset()
	if a.Get("x") != 0 || len(a.Names()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestSetString(t *testing.T) {
	var s Set
	s.Add("beta", 2)
	s.Add("alpha", 1)
	want := "alpha=1\nbeta=2\n"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHarmonicMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 0.5}, 2.0 / 3.0},
		{[]float64{1, 0}, 0}, // non-positive rejected
		{[]float64{1, -1}, 0},
	}
	for _, c := range cases {
		if got := HarmonicMean(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HarmonicMean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeometricMean(2,8) = %v", got)
	}
	if GeometricMean([]float64{1, 0}) != 0 || GeometricMean(nil) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestArithmeticMean(t *testing.T) {
	if got := ArithmeticMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if ArithmeticMean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2, 3); math.Abs(got-50) > 1e-12 {
		t.Errorf("Speedup(2,3) = %v, want 50", got)
	}
	if got := Speedup(2, 1); math.Abs(got+50) > 1e-12 {
		t.Errorf("Speedup(2,1) = %v, want -50", got)
	}
	if Speedup(0, 1) != 0 {
		t.Error("zero base must yield 0")
	}
}

// TestMeanInequality: for positive inputs, harmonic <= geometric <=
// arithmetic — the classical inequality, checked property-style.
func TestMeanInequality(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a%50) + 1, float64(b%50) + 1, float64(c%50) + 1}
		h, g, m := HarmonicMean(xs), GeometricMean(xs), ArithmeticMean(xs)
		return h <= g+1e-9 && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", 7)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"== Demo ==", "Name", "alpha", "2.50", "gamma  7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 3 rows.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// All data lines should be equally wide (padded columns).
	if len(lines[3]) != len(lines[1]) && len(lines[4]) != len(lines[1]) {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("only-a")
	out := tb.String()
	if !strings.Contains(out, "only-a") {
		t.Errorf("short row lost: %s", out)
	}
}
