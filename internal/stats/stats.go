// Package stats provides the statistics primitives shared by the simulator
// and the experiment harness: named counters, ratio helpers, summary means,
// and simple fixed-width table formatting for experiment output.
//
// The simulator is deterministic, so all statistics are plain integers and
// floats; there is no sampling or randomness here.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is a collection of named integer counters. The zero value is ready to
// use. Counters are created on first touch and iterate in sorted name order,
// which keeps experiment output stable across runs.
type Set struct {
	counters map[string]int64
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta int64) {
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the current value of counter name (zero if never touched).
func (s *Set) Get(name string) int64 { return s.counters[name] }

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ratio returns Get(num)/Get(den), or 0 if the denominator is zero.
func (s *Set) Ratio(num, den string) float64 {
	d := s.Get(den)
	if d == 0 {
		return 0
	}
	return float64(s.Get(num)) / float64(d)
}

// Merge adds every counter in other into s.
func (s *Set) Merge(other *Set) {
	for n, v := range other.counters {
		s.Add(n, v)
	}
}

// Reset clears every counter.
func (s *Set) Reset() { s.counters = nil }

// String renders the set as "name=value" lines in sorted order.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n])
	}
	return b.String()
}

// HarmonicMean returns the harmonic mean of xs. Non-positive values make a
// harmonic mean undefined; they are rejected with a zero result, matching the
// paper's use of harmonic means over strictly positive rates.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// GeometricMean returns the geometric mean of xs (zero if any x <= 0).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// ArithmeticMean returns the arithmetic mean of xs (zero for empty input).
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Speedup returns the relative speedup of new over base expressed as a
// percentage: 100*(new/base - 1). A zero base yields zero.
func Speedup(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (new/base - 1)
}
