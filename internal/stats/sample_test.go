package stats

import (
	"math"
	"testing"
)

func close(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestSummarize drives the estimator through its table of regular and
// degenerate inputs: empty, one window (no variance estimate, infinite CI),
// zero-variance windows (zero-width CI), and hand-checked small sets.
func TestSummarize(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{name: "empty", xs: nil, want: Summary{}},
		{
			name: "one window",
			xs:   []float64{2.5},
			want: Summary{N: 1, Mean: 2.5, CI95: math.Inf(1)},
		},
		{
			name: "zero variance",
			xs:   []float64{1.25, 1.25, 1.25, 1.25},
			want: Summary{N: 4, Mean: 1.25},
		},
		{
			name: "two windows",
			xs:   []float64{1, 3},
			// variance 2, stderr 1, t(1) = 12.706
			want: Summary{N: 2, Mean: 2, Variance: 2, StdDev: math.Sqrt2,
				StdErr: 1, CI95: 12.706},
		},
		{
			name: "five windows",
			xs:   []float64{2, 4, 4, 4, 6},
			// mean 4, ss = 8, variance 2, stderr sqrt(2/5), t(4) = 2.776
			want: Summary{N: 5, Mean: 4, Variance: 2, StdDev: math.Sqrt2,
				StdErr: math.Sqrt(0.4), CI95: 2.776 * math.Sqrt(0.4)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.xs)
			if got.N != tc.want.N ||
				!close(got.Mean, tc.want.Mean) ||
				!close(got.Variance, tc.want.Variance) ||
				!close(got.StdDev, tc.want.StdDev) ||
				!close(got.StdErr, tc.want.StdErr) ||
				!close(got.CI95, tc.want.CI95) {
				t.Fatalf("Summarize(%v) =\n %+v, want\n %+v", tc.xs, got, tc.want)
			}
		})
	}
}

// TestTCrit95 pins the table boundaries and the coarse rows beyond it; the
// critical value must never increase with more degrees of freedom.
func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, math.Inf(1)}, {0, math.Inf(1)},
		{1, 12.706}, {2, 4.303}, {30, 2.042},
		{31, 2.021}, {59, 2.021}, {60, 2.000}, {119, 2.000},
		{120, 1.980}, {999, 1.980}, {1000, 1.960}, {1 << 20, 1.960},
	}
	for _, tc := range cases {
		if got := TCrit95(tc.df); !close(got, tc.want) {
			t.Errorf("TCrit95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	prev := math.Inf(1)
	for df := 1; df <= 2000; df++ {
		v := TCrit95(df)
		if v > prev {
			t.Fatalf("TCrit95 not monotone: df=%d gives %v after %v", df, v, prev)
		}
		prev = v
	}
}

// TestSampleWindows is the planner's table: regular plans, a truncated tail
// window, the period-smaller-than-unit degenerate (back-to-back coverage),
// window size exceeding the instruction count (one truncated window), and
// empty streams.
func TestSampleWindows(t *testing.T) {
	cases := []struct {
		name                string
		total, unit, period uint64
		want                []Window
	}{
		{name: "empty stream", total: 0, unit: 10, period: 100, want: nil},
		{name: "zero unit", total: 100, unit: 0, period: 10, want: nil},
		{
			name: "regular", total: 250, unit: 10, period: 100,
			want: []Window{{0, 10}, {100, 10}, {200, 10}},
		},
		{
			name: "truncated tail", total: 205, unit: 10, period: 100,
			want: []Window{{0, 10}, {100, 10}, {200, 5}},
		},
		{
			name: "unit exceeds total", total: 7, unit: 100, period: 1000,
			want: []Window{{0, 7}},
		},
		{
			name: "period below unit covers stream", total: 25, unit: 10, period: 3,
			want: []Window{{0, 10}, {10, 10}, {20, 5}},
		},
		{
			name: "zero period covers stream", total: 20, unit: 10, period: 0,
			want: []Window{{0, 10}, {10, 10}},
		},
		{
			name: "exact fit", total: 200, unit: 10, period: 100,
			want: []Window{{0, 10}, {100, 10}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SampleWindows(tc.total, tc.unit, tc.period)
			if len(got) != len(tc.want) {
				t.Fatalf("SampleWindows(%d,%d,%d) = %v, want %v", tc.total, tc.unit, tc.period, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("SampleWindows(%d,%d,%d)[%d] = %v, want %v", tc.total, tc.unit, tc.period, i, got[i], tc.want[i])
				}
			}
			var covered uint64
			for _, w := range got {
				covered += w.Len
				if w.Start+w.Len > tc.total {
					t.Fatalf("window %v overruns total %d", w, tc.total)
				}
			}
			if covered > tc.total {
				t.Fatalf("windows cover %d of %d instructions", covered, tc.total)
			}
		})
	}
}
