package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns.
// It is the single formatter used by every experiment so that cmd/pfe-bench
// output and bench_test.go output look identical.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Cells may be fewer than the header; missing cells
// render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is formatted with fmt.Sprintf from
// the corresponding (format, value) behaviour of %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header rule, and columns
// padded to the widest cell.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
