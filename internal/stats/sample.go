// Package stats holds the statistical estimators behind sampled simulation:
// summarizing per-window IPC observations into a mean with a 95% confidence
// interval (SMARTS-style systematic sampling reports an estimate with a
// quantified error bound instead of paying for exhaustive cycles), and
// planning where the detailed windows fall in the instruction stream.
package stats

import "math"

// Summary describes a set of observations by its first two moments and the
// derived 95% confidence half-width for the mean.
type Summary struct {
	N        int     // observations
	Mean     float64 // sample mean
	Variance float64 // unbiased sample variance (n-1 denominator)
	StdDev   float64
	StdErr   float64 // standard error of the mean
	CI95     float64 // 95% confidence half-width: t_{.975,n-1} * StdErr
}

// Summarize computes the Summary of xs. Degenerate inputs follow the
// statistics rather than panicking: no observations yield a zero Summary;
// a single observation has a defined mean but no variance estimate, so its
// CI95 is +Inf (one window supports no error claim); zero-variance inputs
// yield a zero-width interval.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N == 1 {
		s.CI95 = math.Inf(1)
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.N-1)
	s.StdDev = math.Sqrt(s.Variance)
	s.StdErr = s.StdDev / math.Sqrt(float64(s.N))
	s.CI95 = TCrit95(s.N-1) * s.StdErr
	return s
}

// tTable holds two-sided 97.5th-percentile Student-t critical values for
// degrees of freedom 1..30.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom. Exact table values cover df 1..30; beyond that the standard
// coarse table rows (40, 60, 120, ∞) apply, rounding df down so the returned
// interval is never narrower than the exact one.
func TCrit95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(tTable):
		return tTable[df-1]
	case df < 60:
		return 2.021 // df 40 row
	case df < 120:
		return 2.000 // df 60 row
	case df < 1000:
		return 1.980 // df 120 row
	default:
		return 1.960 // normal limit
	}
}

// Window is one detailed-simulation region of a systematic sampling plan,
// in measured-stream instruction offsets.
type Window struct {
	Start uint64 // offset of the first measured instruction
	Len   uint64 // instructions to measure in detail
}

// SampleWindows plans systematic sampling over a stream of total
// instructions: a detailed window of unit instructions begins every period
// instructions, starting at offset zero, with the final window truncated at
// the stream's end. A period smaller than the unit (or zero) degenerates to
// back-to-back windows covering the whole stream; total of zero plans
// nothing. The plan depends only on (total, unit, period) — systematic, not
// random — so a sampled run is reproducible by construction.
func SampleWindows(total, unit, period uint64) []Window {
	if total == 0 || unit == 0 {
		return nil
	}
	if period < unit {
		period = unit
	}
	ws := make([]Window, 0, total/period+1)
	for start := uint64(0); start < total; start += period {
		n := unit
		if rest := total - start; n > rest {
			n = rest
		}
		ws = append(ws, Window{Start: start, Len: n})
	}
	return ws
}
