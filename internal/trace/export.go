package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonlRecord is the JSONL wire form of one event.
type jsonlRecord struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	N     int32  `json:"n"`
	PC    string `json:"pc,omitempty"`
	Frag  uint64 `json:"frag,omitempty"`
	Lane  int16  `json:"lane,omitempty"`
	Cause string `json:"cause,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
}

// WriteJSONL writes one JSON object per line per event — the grep-friendly
// export for ad-hoc analysis (jq, awk, pandas).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		rec := jsonlRecord{
			Cycle: ev.Cycle,
			Kind:  ev.Kind.String(),
			Seq:   ev.Seq,
			N:     ev.N,
			Frag:  ev.Frag,
			Lane:  ev.Lane,
			Arg:   ev.Arg,
		}
		if ev.PC != 0 {
			rec.PC = fmt.Sprintf("%#x", ev.PC)
		}
		if ev.Kind == KindSquash {
			rec.Cause = ev.Cause.String()
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteText writes events one per line in their debug String form — the
// human-readable export used by flight-recorder dumps.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if _, err := fmt.Fprintln(bw, ev.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Chrome trace_event format (the JSON Array/Object format consumed by
// chrome://tracing and https://ui.perfetto.dev). Each pipeline stage gets
// one "thread" per lane; events become "X" (complete) slices one cycle wide
// by default, N cycles of work shown in args. Squashes become "i" (instant)
// events spanning the whole track group.
//
// Spec: "Trace Event Format" (Google, catapult project).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a (kind, lane) pair onto a stable thread id so each
// pipeline stage renders as its own named track, parallel lanes stacked.
func chromeTID(k Kind, lane int16) int {
	l := int(lane)
	if l < 0 {
		l = 0
	}
	return int(k)*64 + l + 1
}

// WriteChromeTrace writes the events as a Chrome trace_event JSON object
// (load it in chrome://tracing or Perfetto). Cycles are presented as
// microseconds — one cycle = 1 µs — which keeps the UI's zoom arithmetic
// exact.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+16)}

	// Thread-name metadata for every (kind, lane) track present, emitted
	// in sorted tid order so output is deterministic.
	tids := map[int]string{}
	for _, ev := range events {
		tid := chromeTID(ev.Kind, ev.Lane)
		if _, ok := tids[tid]; !ok {
			name := ev.Kind.String()
			if ev.Lane > 0 || ev.Kind == KindFetch || ev.Kind == KindRenamePhase2 {
				name = fmt.Sprintf("%s[%d]", ev.Kind, ev.Lane)
			}
			tids[tid] = name
		}
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Phase: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": tids[tid]},
		})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Cat: "pipeline",
			TS:  ev.Cycle,
			PID: 0,
			TID: chromeTID(ev.Kind, ev.Lane),
			Args: map[string]any{
				"seq": ev.Seq,
				"n":   ev.N,
			},
		}
		if ev.PC != 0 {
			ce.Args["pc"] = fmt.Sprintf("%#x", ev.PC)
		}
		if ev.Frag != 0 {
			ce.Args["frag"] = ev.Frag
		}
		switch ev.Kind {
		case KindSquash:
			ce.Phase = "i"
			ce.Scope = "p"
			ce.Name = "squash:" + ev.Cause.String()
			ce.Args["cause"] = ev.Cause.String()
		default:
			ce.Phase = "X"
			ce.Dur = 1
			ce.Name = fmt.Sprintf("%s seq=%d+%d", ev.Kind, ev.Seq, ev.N)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
