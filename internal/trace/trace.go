// Package trace is the pipeline observability layer: every stage of the
// simulated front-end and back-end can emit typed events (fragment
// prediction, fetch, the two rename phases, dispatch, commit, squash) into a
// Sink attached to the run. The paper's claims are microarchitectural —
// fragment occupancy, rename-phase overlap, squash causes — and aggregate
// end-of-run counters cannot distinguish *why* a configuration is fast or
// wrong; the event stream can, and the simulator's invariant tests assert
// directly against it (e.g. "phase-2 rename of a fragment never precedes its
// phase-1 allocation").
//
// The hot path is allocation-free: Event is a small value struct, emit sites
// compile to a nil-check when no sink is attached, and RingSink writes into
// a preallocated power-of-two ring. Exporters (Chrome trace_event JSON and
// JSONL) live in export.go.
package trace

import "fmt"

// Kind enumerates the pipeline event types.
type Kind uint8

const (
	// KindFragPredict is one fragment prediction leaving the stream: Seq
	// and Frag are the first op's sequence number, PC the fragment start,
	// N the fragment length, Arg the index of its first wrong-path
	// instruction (== N when fully correct-path).
	KindFragPredict Kind = iota

	// KindFetch is a group of instructions delivered by the fetch unit
	// (cache path, trace-cache hit or buffer reuse): Seq the first
	// delivered op, N the count, Lane the sequencer that fetched it.
	KindFetch

	// KindRenamePhase1 is a fragment's in-order rename allocation: the
	// live-out prediction and reorder-buffer reservation of the parallel
	// scheme (§4.2), or the moment a monolithic/delayed renamer first
	// admits the fragment. Seq/Frag identify the fragment, N its length.
	KindRenamePhase1

	// KindRenamePhase2 is a group of instructions renamed by one renamer
	// in one cycle: Seq the first op renamed, N the count, Lane the
	// renamer index.
	KindRenamePhase2

	// KindDispatch is one renamed op entering the out-of-order window.
	KindDispatch

	// KindCommit is one op retiring in program order.
	KindCommit

	// KindSquash is a pipeline squash: Seq the first squashed sequence
	// number, N the number of window entries removed, Cause the reason.
	KindSquash

	numKinds
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	KindFragPredict:  "frag-predict",
	KindFetch:        "fetch",
	KindRenamePhase1: "rename-phase1",
	KindRenamePhase2: "rename-phase2",
	KindDispatch:     "dispatch",
	KindCommit:       "commit",
	KindSquash:       "squash",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the enumerated kinds.
func (k Kind) Valid() bool { return k < numKinds }

// SquashCause enumerates why a squash happened. Every KindSquash event must
// carry one of these; other kinds carry CauseNone.
type SquashCause uint8

const (
	CauseNone SquashCause = iota

	// CauseBranchMispredict: a control misprediction resolved in the
	// back-end and the wrong path was flushed.
	CauseBranchMispredict

	// CauseLiveOutMispredict: the parallel renamer detected a wrong
	// live-out prediction at fragment completion (§4.3) and reset every
	// younger fragment.
	CauseLiveOutMispredict

	numCauses
)

var causeNames = [...]string{
	CauseNone:              "none",
	CauseBranchMispredict:  "branch-mispredict",
	CauseLiveOutMispredict: "liveout-mispredict",
}

// String names the cause.
func (c SquashCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Valid reports whether c is one of the enumerated causes.
func (c SquashCause) Valid() bool { return c < numCauses }

// Event is one pipeline occurrence. It is a pure value — emitting one
// allocates nothing.
type Event struct {
	Cycle uint64 // simulation cycle the event happened on
	Seq   uint64 // first op sequence number the event covers
	Frag  uint64 // first sequence number of the owning fragment (0 if n/a)
	PC    uint64 // instruction address (first op's PC where applicable)
	Arg   uint64 // kind-specific extra (frag-predict: wrong-path index)
	Kind  Kind
	Cause SquashCause // KindSquash only
	Lane  int16       // sequencer / renamer index (0 for monolithic units)
	N     int32       // ops covered: [Seq, Seq+N)
}

// String renders the event for debugging output.
func (e Event) String() string {
	s := fmt.Sprintf("cycle %d %s seq=%d n=%d pc=%#x lane=%d", e.Cycle, e.Kind, e.Seq, e.N, e.PC, e.Lane)
	if e.Kind == KindSquash {
		s += " cause=" + e.Cause.String()
	}
	return s
}

// Sink receives pipeline events. Implementations must not retain pointers
// into the simulator; the event is a self-contained value. Emit is called on
// the simulator's hot path — keep it cheap.
type Sink interface {
	Emit(ev Event)
}

// RingSink keeps the most recent events in a fixed ring: emission never
// allocates and never grows, so it is safe to attach to arbitrarily long
// runs. Capacity is rounded up to a power of two.
type RingSink struct {
	buf []Event
	n   uint64 // total events ever emitted
}

// NewRingSink creates a ring holding at least capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &RingSink{buf: make([]Event, c)}
}

// Emit stores the event, overwriting the oldest once the ring is full.
func (r *RingSink) Emit(ev Event) {
	r.buf[r.n&uint64(len(r.buf)-1)] = ev
	r.n++
}

// Cap returns the ring capacity.
func (r *RingSink) Cap() int { return len(r.buf) }

// Total returns how many events were emitted over the ring's lifetime.
func (r *RingSink) Total() uint64 { return r.n }

// Dropped returns how many events were overwritten.
func (r *RingSink) Dropped() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Tail returns the most recent n retained events oldest-first (a copy).
// n larger than the retained count returns everything retained.
func (r *RingSink) Tail(n int) []Event {
	evs := r.Events()
	if n >= 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Events returns the retained events oldest-first (a copy).
func (r *RingSink) Events() []Event {
	size := uint64(len(r.buf))
	if r.n < size {
		out := make([]Event, r.n)
		copy(out, r.buf[:r.n])
		return out
	}
	out := make([]Event, size)
	start := r.n & (size - 1)
	n := copy(out, r.buf[start:])
	copy(out[n:], r.buf[:start])
	return out
}

// CollectSink retains every emitted event. Meant for tests and short runs;
// it grows without bound.
type CollectSink struct {
	Events []Event
}

// Emit appends the event.
func (c *CollectSink) Emit(ev Event) { c.Events = append(c.Events, ev) }

// TeeSink fans one event stream out to several sinks.
type TeeSink []Sink

// Emit forwards the event to every sink.
func (t TeeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// CountSink tallies events and covered ops by kind without retaining them —
// the cheapest way to answer "how many instructions did fetch deliver".
type CountSink struct {
	Events [NumKinds]uint64 // events per kind
	Ops    [NumKinds]int64  // sum of N per kind
}

// Emit tallies the event.
func (c *CountSink) Emit(ev Event) {
	if !ev.Kind.Valid() {
		return
	}
	c.Events[ev.Kind]++
	c.Ops[ev.Kind] += int64(ev.N)
}
