package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/trace"
)

// TestChromeTraceFromSimulation is the end-to-end export check: simulate
// the parser benchmark with a ring sink attached at the quick budgets, then
// assert the Chrome trace_event JSON a user would load into Perfetto has
// the documented shape.
func TestChromeTraceFromSimulation(t *testing.T) {
	ring := trace.NewRingSink(1 << 14)
	opts := pfe.Quick()
	opts.Events = ring
	res, err := pfe.Run("parser", pfe.Preset(pfe.PR2x8w), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if ring.Total() == 0 {
		t.Fatal("no events recorded")
	}
	if ring.Total() > uint64(ring.Cap()) && ring.Dropped() == 0 {
		t.Error("ring overflowed but reports no drops")
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, ring.Events()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, e := range out.TraceEvents {
		phases[e.Phase]++
		switch e.Phase {
		case "M":
			if e.Cat != "__metadata" || e.Name != "thread_name" {
				t.Fatalf("bad metadata event: %+v", e)
			}
		case "X", "i":
			if e.Cat != "pipeline" || e.TID < 1 {
				t.Fatalf("bad pipeline event: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	// A real run exercises every track type: named threads, duration
	// slices for the pipeline stages, and instants for squashes (the
	// quick budget sees hundreds of redirects).
	for _, ph := range []string{"M", "X", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in exported trace (phases: %v)", ph, phases)
		}
	}

	// JSONL export of the same run decodes line by line.
	buf.Reset()
	if err := trace.WriteJSONL(&buf, ring.Events()); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	lines := 0
	for dec.More() {
		var rec struct {
			Kind string `json:"kind"`
			N    int32  `json:"n"`
		}
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("JSONL line %d: %v", lines, err)
		}
		if rec.Kind == "" {
			t.Fatalf("JSONL line %d has no kind", lines)
		}
		lines++
	}
	if lines != len(ring.Events()) {
		t.Errorf("JSONL has %d lines for %d events", lines, len(ring.Events()))
	}
}
