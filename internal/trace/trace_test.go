package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func ev(cycle, seq uint64, k Kind, n int32) Event {
	return Event{Cycle: cycle, Seq: seq, Kind: k, N: n}
}

func TestRingSinkBelowCapacity(t *testing.T) {
	r := NewRingSink(8)
	for i := uint64(0); i < 5; i++ {
		r.Emit(ev(i, i, KindFetch, 1))
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("total %d dropped %d", r.Total(), r.Dropped())
	}
	got := r.Events()
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i, e := range got {
		if e.Cycle != uint64(i) {
			t.Fatalf("event %d has cycle %d", i, e.Cycle)
		}
	}
}

func TestRingSinkWraparound(t *testing.T) {
	r := NewRingSink(8)
	const total = 21
	for i := uint64(0); i < total; i++ {
		r.Emit(ev(i, i, KindCommit, 1))
	}
	if r.Cap() < 8 {
		t.Fatalf("capacity %d < requested 8", r.Cap())
	}
	if r.Total() != total {
		t.Fatalf("total %d", r.Total())
	}
	if want := uint64(total - r.Cap()); r.Dropped() != want {
		t.Fatalf("dropped %d, want %d", r.Dropped(), want)
	}
	got := r.Events()
	if len(got) != r.Cap() {
		t.Fatalf("retained %d, cap %d", len(got), r.Cap())
	}
	// Oldest-first, ending with the most recent emit.
	for i := 1; i < len(got); i++ {
		if got[i].Cycle != got[i-1].Cycle+1 {
			t.Fatalf("events out of order at %d: %d then %d", i, got[i-1].Cycle, got[i].Cycle)
		}
	}
	if last := got[len(got)-1]; last.Cycle != total-1 {
		t.Fatalf("last retained cycle %d, want %d", last.Cycle, total-1)
	}
}

func TestRingSinkRoundsCapacityUp(t *testing.T) {
	r := NewRingSink(5)
	if c := r.Cap(); c&(c-1) != 0 || c < 5 {
		t.Fatalf("cap %d is not a power of two >= 5", c)
	}
	if NewRingSink(0).Cap() < 1 {
		t.Fatal("zero capacity ring")
	}
}

func TestTeeAndCountSinks(t *testing.T) {
	var a, b CollectSink
	cnt := &CountSink{}
	tee := TeeSink{&a, &b, cnt}
	tee.Emit(ev(1, 10, KindFetch, 8))
	tee.Emit(ev(2, 10, KindRenamePhase2, 8))
	tee.Emit(ev(3, 18, KindFetch, 4))
	if len(a.Events) != 3 || len(b.Events) != 3 {
		t.Fatalf("tee fanout: %d and %d events", len(a.Events), len(b.Events))
	}
	if cnt.Events[KindFetch] != 2 || cnt.Ops[KindFetch] != 12 {
		t.Fatalf("fetch tally: %d events %d ops", cnt.Events[KindFetch], cnt.Ops[KindFetch])
	}
	if cnt.Events[KindRenamePhase2] != 1 || cnt.Ops[KindRenamePhase2] != 8 {
		t.Fatalf("phase2 tally: %d events %d ops", cnt.Events[KindRenamePhase2], cnt.Ops[KindRenamePhase2])
	}
}

func TestKindAndCauseStrings(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
	if Kind(200).Valid() {
		t.Error("out-of-range kind is Valid")
	}
	for c := SquashCause(0); c.Valid(); c++ {
		if s := c.String(); s == "" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if SquashCause(200).Valid() {
		t.Error("out-of-range cause is Valid")
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{Cycle: 5, Seq: 100, Kind: KindFetch, N: 8, PC: 0x10000, Frag: 100, Lane: 1},
		{Cycle: 9, Seq: 100, Kind: KindSquash, N: 32, Cause: CauseBranchMispredict},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "fetch" || rec["cycle"] != float64(5) || rec["pc"] != "0x10000" {
		t.Errorf("first record: %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "squash" || rec["cause"] != "branch-mispredict" {
		t.Errorf("squash record: %v", rec)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	events := []Event{
		{Cycle: 1, Seq: 0, Kind: KindFragPredict, N: 12, PC: 0x10000},
		{Cycle: 2, Seq: 0, Kind: KindFetch, N: 8, Lane: 0, PC: 0x10000},
		{Cycle: 2, Seq: 8, Kind: KindFetch, N: 4, Lane: 1, PC: 0x10020},
		{Cycle: 4, Seq: 0, Kind: KindRenamePhase2, N: 8},
		{Cycle: 7, Seq: 3, Kind: KindSquash, N: 20, Cause: CauseLiveOutMispredict},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", out.DisplayTimeUnit)
	}

	var meta, slices, instants int
	tids := map[int]bool{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "M":
			meta++
			if e.Args["name"] == "" {
				t.Errorf("metadata event with no thread name: %+v", e)
			}
		case "X":
			slices++
			tids[e.TID] = true
		case "i":
			instants++
			if e.Scope != "p" {
				t.Errorf("instant scope %q, want p", e.Scope)
			}
			if e.Args["cause"] != "liveout-mispredict" {
				t.Errorf("squash args: %v", e.Args)
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if slices != 4 || instants != 1 {
		t.Errorf("phases: %d slices, %d instants", slices, instants)
	}
	// One named track per (kind, lane) present: fragpredict, fetch lane 0
	// and 1, phase2 lane 0, squash.
	if meta != 5 {
		t.Errorf("%d metadata events, want 5", meta)
	}
	// The two fetch lanes must land on distinct tracks.
	if chromeTID(KindFetch, 0) == chromeTID(KindFetch, 1) {
		t.Error("fetch lanes share a tid")
	}
	if len(tids) != 4 {
		t.Errorf("slice events spread over %d tids, want 4", len(tids))
	}
}
