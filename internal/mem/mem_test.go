package mem

import (
	"testing"
	"testing/quick"
)

func testGeom(size, ways, block int) CacheGeometry {
	return CacheGeometry{SizeBytes: size, Ways: ways, BlockBytes: block, HitLatency: 1}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", testGeom(1024, 2, 64), &FixedLatency{Latency: 10})
	if done := c.Access(0x100, false, 0); done != 11 {
		t.Errorf("first access done at %d, want 11 (1 hit latency + 10 lower)", done)
	}
	if done := c.Access(0x100, false, 20); done != 21 {
		t.Errorf("second access done at %d, want 21 (hit)", done)
	}
	if c.Misses() != 1 || c.Accesses() != 2 {
		t.Errorf("misses=%d accesses=%d, want 1,2", c.Misses(), c.Accesses())
	}
}

func TestCacheSameBlockHits(t *testing.T) {
	c := NewCache("t", testGeom(1024, 2, 64), &FixedLatency{Latency: 10})
	c.Access(0x100, false, 0)
	if done := c.Access(0x13c, false, 5); done != 6 {
		t.Errorf("same-block access done at %d, want 6", done)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 2 sets of 64B blocks => size 256B. Three blocks mapping to
	// set 0: 0x000, 0x100, 0x200.
	c := NewCache("t", testGeom(256, 2, 64), &FixedLatency{Latency: 10})
	c.Access(0x000, false, 0)
	c.Access(0x100, false, 0)
	c.Access(0x000, false, 1) // touch 0x000, making 0x100 LRU
	c.Access(0x200, false, 2) // evicts 0x100
	if !c.Probe(0x000) {
		t.Error("0x000 should still be resident")
	}
	if c.Probe(0x100) {
		t.Error("0x100 should have been evicted")
	}
	if !c.Probe(0x200) {
		t.Error("0x200 should be resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := NewCache("t", testGeom(256, 2, 64), &FixedLatency{Latency: 10})
	c.Access(0x000, false, 0)
	c.Access(0x100, false, 0)
	for i := 0; i < 10; i++ {
		c.Probe(0x100) // must not refresh LRU
	}
	c.Access(0x000, false, 1)
	c.Access(0x200, false, 2)
	if c.Probe(0x100) {
		t.Error("probe refreshed LRU state")
	}
	if got := c.Accesses(); got != 4 {
		t.Errorf("probe counted as access: %d", got)
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Property: a working set that fits in the cache has no misses after
	// the first pass, regardless of the (power-of-two) geometry.
	f := func(seed int64) bool {
		sizes := []int{512, 1024, 4096}
		ways := []int{1, 2, 4}
		s := sizes[uint64(seed)%3]
		w := ways[uint64(seed/3)%3]
		c := NewCache("t", testGeom(s, w, 64), &FixedLatency{Latency: 10})
		blocks := s / 64
		for pass := 0; pass < 3; pass++ {
			for b := 0; b < blocks; b++ {
				c.Access(uint64(b*64), false, 0)
			}
		}
		return c.Misses() == int64(blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold access: L1 (1) -> L2 miss (10) -> memory (100).
	if done := h.L1I.Access(0x4000, false, 0); done != 111 {
		t.Errorf("cold access done at %d, want 111", done)
	}
	// L1 hit.
	if done := h.L1I.Access(0x4000, false, 200); done != 201 {
		t.Errorf("L1 hit done at %d, want 201", done)
	}
	// L1D cold miss on a block sharing the L2 block: L2 hit.
	if done := h.L1D.Access(0x4040, false, 300); done != 311 {
		t.Errorf("L2 hit done at %d, want 311", done)
	}
}

func TestIBankMapping(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	seen := make(map[int]bool)
	for i := 0; i < 16; i++ {
		b := h.IBankOf(uint64(i * 64))
		if b < 0 || b >= 16 {
			t.Fatalf("bank %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) != 16 {
		t.Errorf("consecutive blocks hit %d distinct banks, want 16", len(seen))
	}
	if h.IBankOf(0x40) != h.IBankOf(0x40+16*64) {
		t.Error("bank mapping must repeat every 16 blocks")
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	NewCache("bad", CacheGeometry{SizeBytes: 3000, Ways: 2, BlockBytes: 64, HitLatency: 1}, nil)
}

func TestResetClearsState(t *testing.T) {
	c := NewCache("t", testGeom(512, 2, 64), &FixedLatency{Latency: 10})
	c.Access(0x40, false, 0)
	c.Reset()
	if c.Probe(0x40) || c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("reset did not clear state")
	}
}
