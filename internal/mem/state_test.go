package mem

import (
	"bytes"
	"testing"
)

func warmCache(t *testing.T) *Cache {
	t.Helper()
	c := NewCache("l1t", CacheGeometry{SizeBytes: 4096, Ways: 2, BlockBytes: 64, HitLatency: 1}, nil)
	for i := 0; i < 500; i++ {
		c.Access(uint64(i)*88+13, i%3 == 0, uint64(i))
	}
	return c
}

func TestCacheStateRoundTrip(t *testing.T) {
	c := warmCache(t)
	snap := c.AppendState(nil)

	fresh := NewCache("l1t", CacheGeometry{SizeBytes: 4096, Ways: 2, BlockBytes: 64, HitLatency: 1}, nil)
	rest, err := fresh.LoadState(snap)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("LoadState left %d bytes", len(rest))
	}
	if !bytes.Equal(fresh.AppendState(nil), snap) {
		t.Fatal("re-snapshot differs from original")
	}
	if fresh.Accesses() != c.Accesses() || fresh.Misses() != c.Misses() {
		t.Fatalf("counters differ: %d/%d vs %d/%d", fresh.Accesses(), fresh.Misses(), c.Accesses(), c.Misses())
	}
	// Restored cache must behave identically going forward.
	for i := 0; i < 200; i++ {
		addr := uint64(i)*72 + 7
		a := c.Access(addr, false, uint64(500+i))
		b := fresh.Access(addr, false, uint64(500+i))
		if a != b {
			t.Fatalf("post-restore latency diverges at %d: %d vs %d", i, a, b)
		}
	}
}

func TestCacheStateGeometryMismatch(t *testing.T) {
	snap := warmCache(t).AppendState(nil)
	other := NewCache("l1t", CacheGeometry{SizeBytes: 8192, Ways: 2, BlockBytes: 64, HitLatency: 1}, nil)
	if _, err := other.LoadState(snap); err == nil {
		t.Fatal("expected error loading snapshot into differently shaped cache")
	}
}

func TestCacheStateTruncated(t *testing.T) {
	snap := warmCache(t).AppendState(nil)
	fresh := NewCache("l1t", CacheGeometry{SizeBytes: 4096, Ways: 2, BlockBytes: 64, HitLatency: 1}, nil)
	for _, n := range []int{0, 10, len(snap) / 2, len(snap) - 1} {
		if _, err := fresh.LoadState(snap[:n]); err == nil {
			t.Fatalf("expected error at truncation %d", n)
		}
	}
}

func TestHierarchyStateRoundTrip(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	for i := 0; i < 1000; i++ {
		h.L1I.Access(uint64(i)*64, false, uint64(i))
		h.L1D.Access(uint64(i)*96+1<<20, i%4 == 0, uint64(i))
	}
	snap := h.AppendState(nil)

	fresh := NewHierarchy(cfg)
	rest, err := fresh.LoadState(snap)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("LoadState left %d bytes", len(rest))
	}
	if !bytes.Equal(fresh.AppendState(nil), snap) {
		t.Fatal("re-snapshot differs from original")
	}
	if fresh.Memory.Accesses != h.Memory.Accesses {
		t.Fatalf("DRAM accesses differ: %d vs %d", fresh.Memory.Accesses, h.Memory.Accesses)
	}
}
