package mem

import "testing"

func TestSharedL2BetweenL1s(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// An instruction fetch warms the L2; a data access to the same L2
	// block then hits the L2 rather than memory.
	h.L1I.Access(0x10000, false, 0)
	if h.Memory.Accesses != 1 {
		t.Fatalf("memory accesses = %d", h.Memory.Accesses)
	}
	done := h.L1D.Access(0x10040, false, 100) // same 128B L2 block
	if done != 111 {
		t.Errorf("cross-L1 access done at %d, want 111 (L2 hit)", done)
	}
	if h.Memory.Accesses != 1 {
		t.Errorf("memory accessed again: %d", h.Memory.Accesses)
	}
}

func TestWritesAllocate(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.L1D.Access(0x2000, true, 0) // store miss allocates
	if done := h.L1D.Access(0x2004, false, 50); done != 51 {
		t.Errorf("load after store done at %d, want 51", done)
	}
}

func TestHierarchyConfigVariants(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1I.SizeBytes = 8 << 10
	cfg.IBanks = 4
	h := NewHierarchy(cfg)
	if h.IBanks != 4 {
		t.Errorf("banks = %d", h.IBanks)
	}
	// 8KB 2-way 64B: 64 sets. Fill with 128 blocks: all still miss on
	// second pass of a 16KB footprint (capacity).
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < 256; b++ {
			h.L1I.Access(uint64(b*64), false, 0)
		}
	}
	if h.L1I.MissRate() < 0.99 {
		t.Errorf("8KB cache with 16KB footprint should thrash: miss rate %.2f", h.L1I.MissRate())
	}
}

func TestIBanksDefaultToOne(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.IBanks = 0
	h := NewHierarchy(cfg)
	if h.IBanks != 1 {
		t.Errorf("banks = %d, want 1", h.IBanks)
	}
	if h.IBankOf(0xdeadbeef)|h.IBankOf(0) != 0 {
		t.Error("single-bank mapping must be zero")
	}
}

func TestCacheCounters(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.L1I.Access(0, false, 0)
	h.L1I.Access(0, false, 1)
	if h.L1I.Accesses() != 2 || h.L1I.Misses() != 1 {
		t.Errorf("accesses=%d misses=%d", h.L1I.Accesses(), h.L1I.Misses())
	}
	if h.L1I.Name() != "l1i" || h.L2.Name() != "l2" {
		t.Error("cache names wrong")
	}
	if h.L1I.BlockBytes() != 64 || h.L2.BlockBytes() != 128 {
		t.Error("block sizes wrong")
	}
}
