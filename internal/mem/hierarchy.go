package mem

// HierarchyConfig sizes the whole memory system. The zero value is not
// useful; DefaultHierarchyConfig returns Table 1's machine.
type HierarchyConfig struct {
	L1I CacheGeometry
	L1D CacheGeometry
	L2  CacheGeometry
	// MemoryLatency is DRAM access time in cycles.
	MemoryLatency uint64
	// IBanks is the number of instruction-cache banks available to a
	// parallel fetch unit (Table 1 / §5: 16 banks).
	IBanks int
}

// DefaultHierarchyConfig returns the paper's Table 1 memory system: 64 KB
// 2-way L1s with 64-byte blocks and 1-cycle access, a 1 MB 4-way unified L2
// with 128-byte blocks and 10-cycle access, and 100-cycle memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:           CacheGeometry{SizeBytes: 64 << 10, Ways: 2, BlockBytes: 64, HitLatency: 1},
		L1D:           CacheGeometry{SizeBytes: 64 << 10, Ways: 2, BlockBytes: 64, HitLatency: 1},
		L2:            CacheGeometry{SizeBytes: 1 << 20, Ways: 4, BlockBytes: 128, HitLatency: 10},
		MemoryLatency: 100,
		IBanks:        16,
	}
}

// Hierarchy is one processor's memory system.
type Hierarchy struct {
	L1I    *Cache
	L1D    *Cache
	L2     *Cache
	Memory *FixedLatency
	IBanks int
}

// NewHierarchy builds the configured memory system with a shared L2 behind
// both L1s.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	dram := &FixedLatency{Latency: cfg.MemoryLatency}
	l2 := NewCache("l2", cfg.L2, dram)
	banks := cfg.IBanks
	if banks <= 0 {
		banks = 1
	}
	return &Hierarchy{
		L1I:    NewCache("l1i", cfg.L1I, l2),
		L1D:    NewCache("l1d", cfg.L1D, l2),
		L2:     l2,
		Memory: dram,
		IBanks: banks,
	}
}

// IBankOf returns the instruction-cache bank serving addr: consecutive
// blocks map to consecutive banks, so parallel sequencers working on
// different fragments rarely collide while a single fragment streams
// through banks round-robin.
func (h *Hierarchy) IBankOf(addr uint64) int {
	return int(h.L1I.BlockOf(addr)) & (h.IBanks - 1)
}
