// Package mem models the memory hierarchy of Table 1: split 64 KB 2-way L1
// instruction and data caches (64-byte blocks, 1-cycle access), a unified
// 1 MB 4-way L2 (10-cycle access), and 100-cycle DRAM.
//
// The timing contract is completion-cycle based: Access(addr, write, now)
// returns the cycle at which the data is available. Independent accesses
// overlap freely (each computes its own completion), which is exactly the
// property the paper's parallel fetch unit exploits — a sequencer blocked on
// its own miss does not serialize the others. Structural limits that the
// paper does model (one line per cycle from a sequential I-cache, bank
// conflicts in the banked I-cache) are enforced by the fetch units, which
// know which requests compete in a given cycle.
package mem

import "github.com/parallel-frontend/pfe/internal/stats"

// Level is anything that can service a memory access.
type Level interface {
	// Access requests the block containing addr at cycle now and returns
	// the cycle at which the block is available. write distinguishes
	// stores (allocate-on-write, same latency).
	Access(addr uint64, write bool, now uint64) uint64
}

// FixedLatency is the DRAM model: every access completes after a constant
// delay.
type FixedLatency struct {
	Latency  uint64
	Accesses int64
}

// Access implements Level.
func (f *FixedLatency) Access(addr uint64, write bool, now uint64) uint64 {
	f.Accesses++
	return now + f.Latency
}

// Cache is a set-associative write-allocate cache with true-LRU
// replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	setMask   uint64

	tags  []uint64 // sets*ways entries
	valid []bool
	lru   []uint64 // last-touch stamp per line
	stamp uint64

	hitLatency uint64
	lower      Level

	accesses int64
	misses   int64
}

// CacheGeometry describes a cache for construction and reporting.
type CacheGeometry struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	HitLatency uint64
}

// NewCache builds a cache with the given geometry over the given lower
// level. Sizes must be powers of two and consistent; NewCache panics on a
// malformed geometry because geometries are static configuration.
func NewCache(name string, g CacheGeometry, lower Level) *Cache {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.BlockBytes <= 0 {
		panic("mem: non-positive cache geometry")
	}
	sets := g.SizeBytes / (g.Ways * g.BlockBytes)
	if sets <= 0 || sets&(sets-1) != 0 || g.BlockBytes&(g.BlockBytes-1) != 0 {
		panic("mem: cache sets and block size must be powers of two")
	}
	blockBits := uint(0)
	for 1<<blockBits < g.BlockBytes {
		blockBits++
	}
	n := sets * g.Ways
	return &Cache{
		name:       name,
		sets:       sets,
		ways:       g.Ways,
		blockBits:  blockBits,
		setMask:    uint64(sets - 1),
		tags:       make([]uint64, n),
		valid:      make([]bool, n),
		lru:        make([]uint64, n),
		hitLatency: g.HitLatency,
		lower:      lower,
	}
}

// Access implements Level: an LRU lookup, with misses filled from the lower
// level and charged its latency.
func (c *Cache) Access(addr uint64, write bool, now uint64) uint64 {
	c.accesses++
	c.stamp++
	block := addr >> c.blockBits
	set := int(block & c.setMask)
	base := set * c.ways

	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == block {
			c.lru[i] = c.stamp
			return now + c.hitLatency
		}
	}

	c.misses++
	done := now + c.hitLatency
	if c.lower != nil {
		done = c.lower.Access(addr, write, now+c.hitLatency)
	}

	// Fill, evicting the LRU way.
	victim := base
	for w := 1; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.tags[victim] = block
	c.valid[victim] = true
	c.lru[victim] = c.stamp
	return done
}

// Probe reports whether addr currently hits without touching LRU state or
// statistics. Fetch units use it to decide bank scheduling; tests use it to
// inspect fill behaviour.
func (c *Cache) Probe(addr uint64) bool {
	block := addr >> c.blockBits
	base := int(block&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == block {
			return true
		}
	}
	return false
}

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return 1 << c.blockBits }

// BlockOf returns the block number containing addr.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr >> c.blockBits }

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Accesses and Misses report access statistics.
func (c *Cache) Accesses() int64 { return c.accesses }
func (c *Cache) Misses() int64   { return c.misses }

// MissRate returns misses/accesses (zero when unused).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics (used between warmup and measurement
// is deliberately NOT done in the harness — caches stay warm as in the
// paper — but tests use Reset for isolation).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.stamp = 0
	c.accesses = 0
	c.misses = 0
}

// ResetStats zeroes the access counters while keeping contents — used after
// functional warming so a run's miss rates describe its own traffic, not the
// warming replay's.
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// AddTo dumps the cache's counters into a stats set under its name.
func (c *Cache) AddTo(s *stats.Set) {
	s.Add(c.name+".accesses", c.accesses)
	s.Add(c.name+".misses", c.misses)
}
