package mem

import (
	"encoding/binary"
	"fmt"
)

// State serialization: a cache's replay-relevant contents (tags, valid bits,
// LRU stamps, counters) in a deterministic fixed-width little-endian layout,
// so functionally warmed hierarchies can be snapshotted as content-addressed
// artifacts and restored bit-exactly (see pfe's warm-state artifacts). The
// geometry itself is NOT serialized — a snapshot only loads into a cache of
// the exact same shape, which the caller guarantees by keying snapshots on
// the machine's memory configuration.

// AppendState appends the cache's contents to b and returns the extended
// slice.
func (c *Cache) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, c.stamp)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.accesses))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.misses))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.tags)))
	for _, t := range c.tags {
		b = binary.LittleEndian.AppendUint64(b, t)
	}
	for _, v := range c.valid {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, l := range c.lru {
		b = binary.LittleEndian.AppendUint64(b, l)
	}
	return b
}

// LoadState restores contents previously written by AppendState into a cache
// of identical geometry, returning the remaining bytes. A line-count
// mismatch (snapshot from a differently shaped cache) is an error, never a
// silent partial restore.
func (c *Cache) LoadState(b []byte) ([]byte, error) {
	if len(b) < 8*3+4 {
		return nil, fmt.Errorf("mem: truncated cache state for %s", c.name)
	}
	stamp := binary.LittleEndian.Uint64(b)
	accesses := int64(binary.LittleEndian.Uint64(b[8:]))
	misses := int64(binary.LittleEndian.Uint64(b[16:]))
	n := int(binary.LittleEndian.Uint32(b[24:]))
	b = b[28:]
	if n != len(c.tags) {
		return nil, fmt.Errorf("mem: cache state for %s has %d lines, cache has %d", c.name, n, len(c.tags))
	}
	if len(b) < n*8+n+n*8 {
		return nil, fmt.Errorf("mem: truncated cache state for %s", c.name)
	}
	c.stamp, c.accesses, c.misses = stamp, accesses, misses
	for i := 0; i < n; i++ {
		c.tags[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	b = b[n*8:]
	for i := 0; i < n; i++ {
		c.valid[i] = b[i] != 0
	}
	b = b[n:]
	for i := 0; i < n; i++ {
		c.lru[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return b[n*8:], nil
}

// AppendState appends the hierarchy's contents (all three caches plus the
// DRAM access counter) to b.
func (h *Hierarchy) AppendState(b []byte) []byte {
	b = h.L1I.AppendState(b)
	b = h.L1D.AppendState(b)
	b = h.L2.AppendState(b)
	return binary.LittleEndian.AppendUint64(b, uint64(h.Memory.Accesses))
}

// LoadState restores a hierarchy snapshot into an identically configured
// hierarchy, returning the remaining bytes.
func (h *Hierarchy) LoadState(b []byte) ([]byte, error) {
	var err error
	if b, err = h.L1I.LoadState(b); err != nil {
		return nil, err
	}
	if b, err = h.L1D.LoadState(b); err != nil {
		return nil, err
	}
	if b, err = h.L2.LoadState(b); err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("mem: truncated hierarchy state")
	}
	h.Memory.Accesses = int64(binary.LittleEndian.Uint64(b))
	return b[8:], nil
}
