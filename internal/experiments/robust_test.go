package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/journal"
	"github.com/parallel-frontend/pfe/internal/obs"
)

func fakeResult(bench, config string, ipc float64) *pfe.Result {
	return &pfe.Result{Bench: bench, Config: config, IPC: ipc, Cycles: 1000, Committed: int64(ipc * 1000)}
}

// TestRunCellsRetriesPanickingCell pins panic isolation plus bounded retry:
// a cell that panics on its first two attempts and succeeds on the third
// must deliver its result when MaxRetries >= 2, with the retries counted on
// the pfe_cell_retries_total counter and nothing recorded as a failure.
func TestRunCellsRetriesPanickingCell(t *testing.T) {
	var calls atomic.Int32
	cells := []cell{{
		bench: "gzip", machine: pfe.Preset(pfe.W16), key: "flaky",
		run: func() (*pfe.Result, error) {
			if calls.Add(1) <= 2 {
				panic("transient fault")
			}
			return fakeResult("gzip", "W16", 2.5), nil
		},
	}}
	sc := obs.NewSimCounters(nil)
	log := &FailureLog{}
	o := Options{Workers: 1, MaxRetries: 2, RetryBackoff: -1, Sim: sc, Failures: log}
	got, err := runCells(o, cells)
	if err != nil {
		t.Fatal(err)
	}
	r := got[[2]string{"gzip", "flaky"}]
	if r == nil || r.Failed || r.IPC != 2.5 {
		t.Fatalf("result = %+v, want the third attempt's success", r)
	}
	if calls.Load() != 3 {
		t.Errorf("cell ran %d times, want 3", calls.Load())
	}
	if v := sc.CellRetries.Value(); v != 2 {
		t.Errorf("pfe_cell_retries_total = %d, want 2", v)
	}
	if sc.CellFailures.Value() != 0 || log.Len() != 0 {
		t.Errorf("recovered cell still recorded as a failure (%d counted, %d logged)",
			sc.CellFailures.Value(), log.Len())
	}
}

// TestRunCellsFailureBudget pins the degraded mode: a cell that exhausts
// its retries becomes a placeholder result plus a structured failure record
// when the budget allows it, and aborts the batch when it does not.
func TestRunCellsFailureBudget(t *testing.T) {
	mk := func() []cell {
		return []cell{
			{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "ok",
				run: func() (*pfe.Result, error) { return fakeResult("gzip", "W16", 2.0), nil }},
			{bench: "mcf", machine: pfe.Preset(pfe.W16), key: "doomed",
				run: func() (*pfe.Result, error) { panic("hard fault") }},
		}
	}

	sc := obs.NewSimCounters(nil)
	log := &FailureLog{}
	o := Options{Workers: 1, MaxRetries: 1, RetryBackoff: -1, FailBudget: 1,
		Sim: sc, Failures: log, ExperimentID: "exp1"}
	got, err := runCells(o, mk())
	if err != nil {
		t.Fatalf("under-budget failure aborted the batch: %v", err)
	}
	if r := got[[2]string{"gzip", "ok"}]; r == nil || r.Failed {
		t.Errorf("healthy cell result = %+v", r)
	}
	ph := got[[2]string{"mcf", "doomed"}]
	if ph == nil || !ph.Failed {
		t.Fatalf("failed cell placeholder = %+v, want Failed=true", ph)
	}
	if sc.CellFailures.Value() != 1 {
		t.Errorf("pfe_cell_failures_total = %d, want 1", sc.CellFailures.Value())
	}
	fails := log.All()
	if len(fails) != 1 {
		t.Fatalf("failure log has %d records, want 1", len(fails))
	}
	f := fails[0]
	if f.Experiment != "exp1" || f.Bench != "mcf" || f.Key != "doomed" {
		t.Errorf("failure identity = %+v", f)
	}
	if f.Attempts != 2 || !f.Panic || !strings.Contains(f.Error, "hard fault") {
		t.Errorf("failure detail = %+v, want 2 attempts, panic, 'hard fault'", f)
	}
	if !strings.Contains(f.Stack, "runCell") && !strings.Contains(f.Stack, "safeRun") {
		t.Errorf("failure stack does not show the cell frame:\n%s", f.Stack)
	}

	// Same cells, zero budget: the batch must abort with a descriptive error.
	o.FailBudget = 0
	o.Failures = &FailureLog{}
	if _, err := runCells(o, mk()); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget batch returned %v, want a budget error", err)
	}
}

// TestRunCellsDrainsOnCancel pins graceful-shutdown semantics at the
// scheduler layer: cancelling the context mid-sweep returns the cells that
// completed, leaves the rest unrun (no placeholders, no failures), and
// wraps context.Canceled.
func TestRunCellsDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 40
	cells := make([]cell, n)
	var done atomic.Int32
	for i := range cells {
		i := i
		cells[i] = cell{
			bench: "gzip", machine: pfe.Preset(pfe.W16), key: fmt.Sprintf("c%02d", i),
			run: func() (*pfe.Result, error) {
				if done.Add(1) == 3 {
					cancel() // cancel from inside the third cell
				}
				return fakeResult("gzip", fmt.Sprintf("c%02d", i), 1.0), nil
			},
		}
	}
	o := Options{Workers: 1, Ctx: ctx}
	got, err := runCells(o, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("%d/%d cells completed; want a strict partial subset", len(got), n)
	}
	if int(done.Load()) != len(got) {
		t.Errorf("%d cells executed but %d results returned: drained cells must still report", done.Load(), len(got))
	}
	for k, r := range got {
		if r == nil || r.Failed {
			t.Errorf("completed cell %v = %+v", k, r)
		}
	}
}

// TestJournalResumeRoundTrip pins the resume contract end to end within the
// package: journal a sweep, reload it, and a resumed sweep must serve every
// cell from the journal (the run hook proves no re-execution) with
// bit-identical float results — then re-run when the config hash changes.
func TestJournalResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "cells.journal")

	mkCells := func(reran *atomic.Int32) []cell {
		cells := make([]cell, 0, 4)
		for i := 0; i < 4; i++ {
			i := i
			cells = append(cells, cell{
				bench: "gzip", machine: pfe.Preset(pfe.W16), key: fmt.Sprintf("k%d", i),
				run: func() (*pfe.Result, error) {
					if reran != nil {
						reran.Add(1)
					}
					// Awkward floats that must round-trip exactly.
					return fakeResult("gzip", "W16", 1.0/3.0+float64(i)*0.1), nil
				},
			})
		}
		return cells
	}

	w, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Workers: 2, Journal: w, ExperimentID: "rt"}
	first, err := runCells(o, mkCells(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("journal reported append errors: %v", err)
	}
	w.Close()

	res, err := LoadResume(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells() != 4 || res.Torn != 0 {
		t.Fatalf("resume index: %d cells, %d torn; want 4, 0", res.Cells(), res.Torn)
	}

	var reran atomic.Int32
	o2 := Options{Workers: 2, Resume: res, ExperimentID: "rt"}
	second, err := runCells(o2, mkCells(&reran))
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 0 {
		t.Fatalf("%d cells re-ran despite a complete journal", reran.Load())
	}
	if res.Replayed.Load() != 4 {
		t.Errorf("replayed = %d, want 4", res.Replayed.Load())
	}
	for k, want := range first {
		got := second[k]
		if got == nil {
			t.Fatalf("resumed sweep missing %v", k)
		}
		if got.IPC != want.IPC || got.Cycles != want.Cycles || got.Committed != want.Committed {
			t.Errorf("%v: replayed result differs: IPC %v vs %v", k, got.IPC, want.IPC)
		}
	}

	// Determinism cross-check: a different instruction budget changes the
	// config hash, so the journal must NOT be replayed.
	reran.Store(0)
	o3 := Options{Workers: 2, Resume: res, ExperimentID: "rt", Warmup: 1, Measure: 2}
	if _, err := runCells(o3, mkCells(&reran)); err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 4 {
		t.Errorf("%d cells re-ran after config change, want all 4", reran.Load())
	}
	if res.Mismatched.Load() != 4 {
		t.Errorf("mismatched = %d, want 4", res.Mismatched.Load())
	}
}

// TestInjectStallProducesDiagnosticDump drives a real simulation through
// the "stall" injection mode: the watchdog must trip, the cell must fail
// with a StallError, and the failure record must reference a diagnostic
// dump whose header identifies the stall.
func TestInjectStallProducesDiagnosticDump(t *testing.T) {
	dir := t.TempDir()
	log := &FailureLog{}
	o := Options{
		Warmup: 1_000, Measure: 2_000, Workers: 1,
		RetryBackoff: -1, FailBudget: 1,
		Failures: log, DumpDir: dir, ExperimentID: "inj",
		Inject: map[string]string{"gzip/W16": "stall"},
	}
	cells := []cell{{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "W16"}}
	got, err := runCells(o, cells)
	if err != nil {
		t.Fatal(err)
	}
	if r := got[[2]string{"gzip", "W16"}]; r == nil || !r.Failed {
		t.Fatalf("injected cell result = %+v, want a Failed placeholder", r)
	}
	fails := log.All()
	if len(fails) != 1 {
		t.Fatalf("failure log has %d records, want 1", len(fails))
	}
	f := fails[0]
	if !strings.Contains(f.Error, "no commit") {
		t.Errorf("failure error %q does not describe the stall", f.Error)
	}
	if f.DumpPath == "" {
		t.Fatal("stall failure has no diagnostic dump path")
	}
	b, err := os.ReadFile(f.DumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "pfe stall diagnostic v1\n") {
		t.Errorf("dump does not start with the diagnostic header:\n%.200s", b)
	}
	if !strings.Contains(string(b), "reason: no-progress") {
		t.Errorf("dump missing stall reason:\n%.400s", b)
	}
}

// TestInjectPanicAndErrorModes covers the two remaining injection modes
// through a real cell config: both must fail without retries (budget 2) and
// be distinguishable in their records.
func TestInjectPanicAndErrorModes(t *testing.T) {
	log := &FailureLog{}
	o := Options{
		Warmup: 1_000, Measure: 2_000, Workers: 2,
		RetryBackoff: -1, FailBudget: 2,
		Failures: log, ExperimentID: "inj2",
		Inject: map[string]string{
			"gzip/a": "panic",
			"mcf/b":  "error",
		},
	}
	cells := []cell{
		{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "a"},
		{bench: "mcf", machine: pfe.Preset(pfe.W16), key: "b"},
	}
	if _, err := runCells(o, cells); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]obs.CellFailure{}
	for _, f := range log.All() {
		byKey[f.Key] = f
	}
	if f := byKey["a"]; !f.Panic || !strings.Contains(f.Error, "injected") {
		t.Errorf("panic injection record = %+v", f)
	}
	if f := byKey["b"]; f.Panic || !strings.Contains(f.Error, "injected") {
		t.Errorf("error injection record = %+v", f)
	}
}
