package experiments

import (
	"fmt"
	"strings"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/stats"
)

// SweepResult is the common shape of the simulation-driven figures: one
// float per (benchmark, config-key), plus a per-config summary mean.
type SweepResult struct {
	Title   string
	Metric  string // what the values are
	Benches []string
	Keys    []string
	Values  map[[2]string]float64 // (bench, key) -> metric
	Summary map[string]float64    // key -> mean across benches
	Note    string
}

// Value returns the metric for (bench, key).
func (r *SweepResult) Value(bench, key string) float64 {
	return r.Values[[2]string{bench, key}]
}

// String renders one row per benchmark, one column per config, plus the
// summary row.
func (r *SweepResult) String() string {
	header := append([]string{"Benchmark"}, r.Keys...)
	t := stats.NewTable(r.Title, header...)
	for _, b := range r.Benches {
		row := []string{b}
		for _, k := range r.Keys {
			row = append(row, fmt.Sprintf("%.2f", r.Value(b, k)))
		}
		t.AddRow(row...)
	}
	srow := []string{"MEAN"}
	for _, k := range r.Keys {
		srow = append(srow, fmt.Sprintf("%.2f", r.Summary[k]))
	}
	t.AddRow(srow...)
	var b strings.Builder
	b.WriteString(t.String())
	if r.Note != "" {
		b.WriteString(r.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

// sweep runs benches × machines and projects a metric.
func sweep(o Options, title, metric string, machines []pfe.Machine, keys []string,
	project func(*pfe.Result) float64, mean func([]float64) float64) (*SweepResult, error) {

	var cells []cell
	for _, b := range o.benches() {
		for i, m := range machines {
			cells = append(cells, cell{bench: b, machine: m, key: keys[i]})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	r := &SweepResult{
		Title:   title,
		Metric:  metric,
		Benches: o.benches(),
		Keys:    keys,
		Values:  make(map[[2]string]float64),
		Summary: make(map[string]float64),
	}
	for _, k := range keys {
		var xs []float64
		for _, b := range r.Benches {
			v := project(results[[2]string{b, k}])
			r.Values[[2]string{b, k}] = v
			xs = append(xs, v)
		}
		r.Summary[k] = mean(xs)
	}
	return r, nil
}

// runFig4 reproduces Figure 4: fetch slot utilization per mechanism
// (harmonic mean across benchmarks, as in the paper).
func runFig4(o Options) (fmt.Stringer, error) {
	fes := []pfe.FrontEnd{pfe.W16, pfe.TC, pfe.TC2x, pfe.PF2x8w, pfe.PF4x4w}
	machines := make([]pfe.Machine, len(fes))
	keys := make([]string, len(fes))
	for i, fe := range fes {
		machines[i] = pfe.Preset(fe)
		keys[i] = string(fe)
	}
	r, err := sweep(o, "Figure 4: Fetch Slot Utilization", "slot utilization",
		machines, keys,
		func(res *pfe.Result) float64 { return res.FetchSlotUtilization },
		stats.HarmonicMean)
	if err != nil {
		return nil, err
	}
	r.Note = "paper (harmonic means): W16 ~0.40, TC/TC2x ~0.60, PF-2x8w ~0.70, PF-4x4w ~0.80"
	return r, nil
}

// Fig5Result holds Figure 5: per-mechanism fetch and rename rates.
type Fig5Result struct {
	Keys   []string
	Fetch  map[string]float64
	Rename map[string]float64
}

func runFig5(o Options) (fmt.Stringer, error) {
	fes := []pfe.FrontEnd{pfe.W16, pfe.TC, pfe.TC2x, pfe.PF2x8w, pfe.PF4x4w, pfe.PR2x8w, pfe.PR4x4w}
	var cells []cell
	for _, b := range o.benches() {
		for _, fe := range fes {
			cells = append(cells, cell{bench: b, machine: pfe.Preset(fe), key: string(fe)})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	r := &Fig5Result{Fetch: map[string]float64{}, Rename: map[string]float64{}}
	for _, fe := range fes {
		k := string(fe)
		r.Keys = append(r.Keys, k)
		var f, rn []float64
		for _, b := range o.benches() {
			res := results[[2]string{b, k}]
			f = append(f, res.FetchRate)
			rn = append(rn, res.RenameRate)
		}
		r.Fetch[k] = stats.ArithmeticMean(f)
		r.Rename[k] = stats.ArithmeticMean(rn)
	}
	return r, nil
}

// String renders fetch and rename instructions/cycle per mechanism.
func (r *Fig5Result) String() string {
	t := stats.NewTable("Figure 5: Instructions Fetched and Renamed per Cycle (incl. wrong path)",
		"Mechanism", "Fetch/cyc", "Rename/cyc")
	for _, k := range r.Keys {
		t.AddRow(k, fmt.Sprintf("%.2f", r.Fetch[k]), fmt.Sprintf("%.2f", r.Rename[k]))
	}
	return t.String() +
		"paper: PF fetch ~7/cyc (+20% vs TC, +49% vs W16); PR rename ~= PF rename +13%\n"
}

// runFig6 reproduces Figure 6: the performance penalty of replacing a
// monolithic renamer with a parallel renamer under a trace-cache fetch unit
// (percent slowdown vs TC; positive = slower).
func runFig6(o Options) (fmt.Stringer, error) {
	machines := []pfe.Machine{pfe.Preset(pfe.TC), pfe.Preset(pfe.TCPR2x8w), pfe.Preset(pfe.TCPR4x4w)}
	keys := []string{"TC", "TC+PR-2x8w", "TC+PR-4x4w"}
	var cells []cell
	for _, b := range o.benches() {
		for i, m := range machines {
			cells = append(cells, cell{bench: b, machine: m, key: keys[i]})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	r := &SweepResult{
		Title:   "Figure 6: Slowdown of Parallel Renaming under Trace-Cache Fetch (% vs TC)",
		Metric:  "% slowdown",
		Benches: o.benches(),
		Keys:    keys[1:],
		Values:  map[[2]string]float64{},
		Summary: map[string]float64{},
	}
	for _, k := range r.Keys {
		var xs []float64
		for _, b := range r.Benches {
			base := results[[2]string{b, "TC"}].IPC
			v := -stats.Speedup(base, results[[2]string{b, k}].IPC)
			r.Values[[2]string{b, k}] = v
			xs = append(xs, v)
		}
		r.Summary[k] = stats.ArithmeticMean(xs)
	}
	r.Note = "paper: 2x8w ~1% average slowdown, 4x4w ~3.5%"
	return r, nil
}

// runFig8 reproduces Figure 8: percent speedup over W16 for TC, TC2x,
// PF/PR-2x8w and PF/PR-4x4w (the PR bars' lower sections are the PF
// configurations).
func runFig8(o Options) (fmt.Stringer, error) {
	fes := []pfe.FrontEnd{pfe.W16, pfe.TC, pfe.TC2x, pfe.PF2x8w, pfe.PF4x4w, pfe.PR2x8w, pfe.PR4x4w}
	var cells []cell
	for _, b := range o.benches() {
		for _, fe := range fes {
			cells = append(cells, cell{bench: b, machine: pfe.Preset(fe), key: string(fe)})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	keys := []string{"TC", "TC2x", "PF-2x8w", "PR-2x8w", "PF-4x4w", "PR-4x4w"}
	r := &SweepResult{
		Title:   "Figure 8: Performance (% speedup over W16)",
		Metric:  "% speedup vs W16",
		Benches: o.benches(),
		Keys:    keys,
		Values:  map[[2]string]float64{},
		Summary: map[string]float64{},
	}
	for _, k := range keys {
		var xs []float64
		for _, b := range r.Benches {
			base := results[[2]string{b, "W16"}].IPC
			v := stats.Speedup(base, results[[2]string{b, k}].IPC)
			r.Values[[2]string{b, k}] = v
			xs = append(xs, v)
		}
		r.Summary[k] = stats.ArithmeticMean(xs)
	}
	r.Note = "paper: PR-2x8w ~= TC2x with half the storage, ~TC+5%, ~W16+10-13%;\n" +
		"PR-4x4w ~TC+3%; on large-footprint benchmarks (crafty/gcc/perl/vortex) PR-2x8w beats TC by 10-20%"
	return r, nil
}

// runFig9 reproduces Figure 9: speedup over W16@64KB as total L1
// instruction storage varies from 8 to 128 KB.
func runFig9(o Options) (fmt.Stringer, error) {
	sizes := []int{8, 16, 32, 64, 128}
	fes := []pfe.FrontEnd{pfe.W16, pfe.TC, pfe.PR2x8w, pfe.PR4x4w}
	var cells []cell
	var keys []string
	var machines []pfe.Machine
	for _, fe := range fes {
		for _, kb := range sizes {
			keys = append(keys, fmt.Sprintf("%s@%dKB", fe, kb))
			machines = append(machines, pfe.Preset(fe).WithTotalL1I(kb))
		}
	}
	for _, b := range o.benches() {
		for i := range machines {
			cells = append(cells, cell{bench: b, machine: machines[i], key: keys[i]})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}

	r := &Fig9Result{Sizes: sizes}
	for _, fe := range fes {
		r.FrontEnds = append(r.FrontEnds, string(fe))
	}
	r.Speedup = map[[2]string]float64{}
	for _, fe := range fes {
		for _, kb := range sizes {
			k := fmt.Sprintf("%s@%dKB", fe, kb)
			var xs []float64
			for _, b := range o.benches() {
				base := results[[2]string{b, "W16@64KB"}].IPC
				xs = append(xs, results[[2]string{b, k}].IPC/base)
			}
			r.Speedup[[2]string{string(fe), fmt.Sprintf("%d", kb)}] = stats.GeometricMean(xs)
		}
	}
	return r, nil
}

// Fig9Result holds the cache-size sensitivity curves.
type Fig9Result struct {
	Sizes     []int
	FrontEnds []string
	Speedup   map[[2]string]float64 // (frontend, sizeKB) -> mean speedup vs W16@64KB
}

// At returns the mean speedup for a front-end at a total-storage point.
func (r *Fig9Result) At(fe string, kb int) float64 {
	return r.Speedup[[2]string{fe, fmt.Sprintf("%d", kb)}]
}

// String renders one row per front-end, one column per storage size, plus
// an ASCII rendition of the figure's curves.
func (r *Fig9Result) String() string {
	header := []string{"FrontEnd"}
	for _, kb := range r.Sizes {
		header = append(header, fmt.Sprintf("%d KB", kb))
	}
	t := stats.NewTable("Figure 9: Sensitivity to Cache Size (speedup vs W16@64KB, geometric mean)", header...)
	xs := make([]float64, len(r.Sizes))
	for i := range r.Sizes {
		xs[i] = float64(i) // log-spaced axis: one step per doubling
	}
	plot := stats.NewPlot("", xs...)
	plot.XLabel = "total L1 instruction storage (8, 16, 32, 64, 128 KB)"
	for _, fe := range r.FrontEnds {
		row := []string{fe}
		ys := make([]float64, 0, len(r.Sizes))
		for _, kb := range r.Sizes {
			v := r.At(fe, kb)
			row = append(row, fmt.Sprintf("%.3f", v))
			ys = append(ys, v)
		}
		t.AddRow(row...)
		plot.AddSeries(fe, ys...)
	}
	return t.String() + plot.String() +
		"paper: PR loses only ~6% from 128KB to 8KB; sequential fetch is 50-62% slower than PR at small sizes;\nTC has the steepest slope\n"
}

// runFig10 reproduces Figure 10: speedup over W16 (with the default 64K
// predictor) as the fragment predictor's primary table varies.
func runFig10(o Options) (fmt.Stringer, error) {
	entries := []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	fes := []pfe.FrontEnd{pfe.TC, pfe.PR2x8w, pfe.PR4x4w}
	var cells []cell
	for _, b := range o.benches() {
		cells = append(cells, cell{bench: b, machine: pfe.Preset(pfe.W16), key: "W16"})
		for _, fe := range fes {
			for _, e := range entries {
				cells = append(cells, cell{
					bench:   b,
					machine: pfe.Preset(fe).WithPredictorEntries(e),
					key:     fmt.Sprintf("%s@%dK", fe, e>>10),
				})
			}
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	r := &Fig10Result{Entries: entries}
	for _, fe := range fes {
		r.FrontEnds = append(r.FrontEnds, string(fe))
	}
	r.Speedup = map[[2]string]float64{}
	for _, fe := range fes {
		for _, e := range entries {
			k := fmt.Sprintf("%s@%dK", fe, e>>10)
			var xs []float64
			for _, b := range o.benches() {
				base := results[[2]string{b, "W16"}].IPC
				xs = append(xs, results[[2]string{b, k}].IPC/base)
			}
			r.Speedup[[2]string{string(fe), fmt.Sprintf("%d", e>>10)}] = stats.GeometricMean(xs)
		}
	}
	return r, nil
}

// Fig10Result holds the predictor-size sensitivity curves.
type Fig10Result struct {
	Entries   []int
	FrontEnds []string
	Speedup   map[[2]string]float64
}

// At returns the mean speedup for a front-end at a predictor size.
func (r *Fig10Result) At(fe string, entries int) float64 {
	return r.Speedup[[2]string{fe, fmt.Sprintf("%d", entries>>10)}]
}

// String renders one row per front-end, one column per predictor size, plus
// the curves.
func (r *Fig10Result) String() string {
	header := []string{"FrontEnd"}
	for _, e := range r.Entries {
		header = append(header, fmt.Sprintf("%dK", e>>10))
	}
	t := stats.NewTable("Figure 10: Sensitivity to Fragment Predictor Size (speedup vs W16, geometric mean)", header...)
	xs := make([]float64, len(r.Entries))
	for i := range r.Entries {
		xs[i] = float64(i)
	}
	plot := stats.NewPlot("", xs...)
	plot.XLabel = "fragment predictor primary entries (16K, 32K, 64K, 128K, 256K)"
	for _, fe := range r.FrontEnds {
		row := []string{fe}
		ys := make([]float64, 0, len(r.Entries))
		for _, e := range r.Entries {
			v := r.At(fe, e)
			row = append(row, fmt.Sprintf("%.3f", v))
			ys = append(ys, v)
		}
		t.AddRow(row...)
		plot.AddSeries(fe, ys...)
	}
	return t.String() + plot.String() + "paper: ~1.25% gain per predictor doubling for all mechanisms\n"
}

// runConstruction reproduces the §3.2/§3.3 claims: fragment-buffer reuse
// (20-70% with 16 buffers) and fragments fully constructed before rename
// reads them (~84%, vs the trace cache's ~87% hit rate).
func runConstruction(o Options) (fmt.Stringer, error) {
	var cells []cell
	for _, b := range o.benches() {
		cells = append(cells, cell{bench: b, machine: pfe.Preset(pfe.PF2x8w), key: "PF-2x8w"})
		cells = append(cells, cell{bench: b, machine: pfe.Preset(pfe.TC), key: "TC"})
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("§3.2/§3.3: Fragment Buffer Reuse and Just-in-Time Construction",
		"Benchmark", "Buffer reuse", "Constructed before rename", "TC hit rate")
	var reuse, early, tchit []float64
	for _, b := range o.benches() {
		pf := results[[2]string{b, "PF-2x8w"}]
		tc := results[[2]string{b, "TC"}]
		t.AddRow(b,
			fmt.Sprintf("%.2f", pf.BufferReuseRate),
			fmt.Sprintf("%.2f", pf.FragsConstructedEarly),
			fmt.Sprintf("%.2f", tc.TCHitRate))
		reuse = append(reuse, pf.BufferReuseRate)
		early = append(early, pf.FragsConstructedEarly)
		tchit = append(tchit, tc.TCHitRate)
	}
	t.AddRow("MEAN",
		fmt.Sprintf("%.2f", stats.ArithmeticMean(reuse)),
		fmt.Sprintf("%.2f", stats.ArithmeticMean(early)),
		fmt.Sprintf("%.2f", stats.ArithmeticMean(tchit)))
	return stringerString(t.String() +
		"paper: reuse 20-70%; 84% of fragments complete before rename; TC hit rate ~87%\n"), nil
}

type stringerString string

func (s stringerString) String() string { return string(s) }
