package experiments

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/journal"
)

// cellRecord is the journal's wire record for one completed cell: identity,
// the config hash the result was produced under, and the full scalar mirror
// of the result. Go's JSON encoder emits the shortest representation that
// round-trips each float64 exactly, so a replayed result is bit-identical
// to the one that was journaled — that is what makes `-resume` produce the
// same report as an uninterrupted run.
type cellRecord struct {
	Exp      string `json:"exp"`
	Bench    string `json:"bench"`
	Key      string `json:"key"`
	Hash     string `json:"hash"`
	Attempts int    `json:"attempts,omitempty"`
	// Epoch is the fabric lease epoch the result was accepted under (0 for
	// in-process cells). Distributed sweeps can journal the same cell twice —
	// a zombie worker's fenced report raced an accepted one — and on replay
	// the higher epoch must win regardless of append order.
	Epoch  int64      `json:"epoch,omitempty"`
	Result cellResult `json:"result"`
}

// cellResult mirrors every scalar field of pfe.Result. The Pipeline
// histograms are deliberately not journaled (they are debug artifacts, and
// every renderer is documented nil-tolerant); StageSeconds rides along so
// self-profiled runs resume losslessly.
type cellResult struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`

	Cycles    uint64  `json:"cycles"`
	Committed int64   `json:"committed"`
	IPC       float64 `json:"ipc"`

	FetchSlotUtilization float64 `json:"fetch_slot_util"`
	FetchRate            float64 `json:"fetch_rate"`
	RenameRate           float64 `json:"rename_rate"`

	FragPredAccuracy float64 `json:"frag_pred_accuracy"`
	L1IMissRate      float64 `json:"l1i_miss_rate"`
	L1DMissRate      float64 `json:"l1d_miss_rate"`
	TCHitRate        float64 `json:"tc_hit_rate"`

	BufferReuseRate       float64 `json:"buffer_reuse_rate"`
	FragsConstructedEarly float64 `json:"frags_constructed_early"`

	LiveOutMispredicts      int64   `json:"live_out_mispredicts"`
	LiveOutMisses           int64   `json:"live_out_misses"`
	RenamedBeforeSourceFrac float64 `json:"renamed_before_source_frac"`

	Redirects int64 `json:"redirects"`

	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`

	// Acceleration-mode detail (sampled / time-parallel runs). All omitempty,
	// so exact-mode records — and therefore existing journals — are
	// byte-for-byte unchanged.
	SampledIPC float64           `json:"sampled_ipc,omitempty"`
	Sampling   *pfe.SamplingInfo `json:"sampling,omitempty"`
	Slices     []pfe.SliceInfo   `json:"slices,omitempty"`
}

func newCellRecord(exp string, c *cell, hash string, attempts int, epoch int64, r *pfe.Result) cellRecord {
	return cellRecord{
		Exp:      exp,
		Bench:    c.bench,
		Key:      c.key,
		Hash:     hash,
		Attempts: attempts,
		Epoch:    epoch,
		Result:   toCellResult(r),
	}
}

func toCellResult(r *pfe.Result) cellResult {
	return cellResult{
		Bench:                   r.Bench,
		Config:                  r.Config,
		Cycles:                  r.Cycles,
		Committed:               r.Committed,
		IPC:                     r.IPC,
		FetchSlotUtilization:    r.FetchSlotUtilization,
		FetchRate:               r.FetchRate,
		RenameRate:              r.RenameRate,
		FragPredAccuracy:        r.FragPredAccuracy,
		L1IMissRate:             r.L1IMissRate,
		L1DMissRate:             r.L1DMissRate,
		TCHitRate:               r.TCHitRate,
		BufferReuseRate:         r.BufferReuseRate,
		FragsConstructedEarly:   r.FragsConstructedEarly,
		LiveOutMispredicts:      r.LiveOutMispredicts,
		LiveOutMisses:           r.LiveOutMisses,
		RenamedBeforeSourceFrac: r.RenamedBeforeSourceFrac,
		Redirects:               r.Redirects,
		StageSeconds:            r.StageSeconds,
		SampledIPC:              r.SampledIPC,
		Sampling:                r.Sampling,
		Slices:                  r.Slices,
	}
}

func (cr *cellResult) toResult() *pfe.Result {
	return &pfe.Result{
		Bench:                   cr.Bench,
		Config:                  cr.Config,
		Cycles:                  cr.Cycles,
		Committed:               cr.Committed,
		IPC:                     cr.IPC,
		FetchSlotUtilization:    cr.FetchSlotUtilization,
		FetchRate:               cr.FetchRate,
		RenameRate:              cr.RenameRate,
		FragPredAccuracy:        cr.FragPredAccuracy,
		L1IMissRate:             cr.L1IMissRate,
		L1DMissRate:             cr.L1DMissRate,
		TCHitRate:               cr.TCHitRate,
		BufferReuseRate:         cr.BufferReuseRate,
		FragsConstructedEarly:   cr.FragsConstructedEarly,
		LiveOutMispredicts:      cr.LiveOutMispredicts,
		LiveOutMisses:           cr.LiveOutMisses,
		RenamedBeforeSourceFrac: cr.RenamedBeforeSourceFrac,
		Redirects:               cr.Redirects,
		StageSeconds:            cr.StageSeconds,
		SampledIPC:              cr.SampledIPC,
		Sampling:                cr.Sampling,
		Slices:                  cr.Slices,
	}
}

// Resume is the replay index built from a journal: completed cells keyed by
// (experiment, bench, key), each guarded by the config hash it was produced
// under. Lookups are read-only after load and safe for concurrent workers.
type Resume struct {
	results map[[3]string]*pfe.Result
	hashes  map[[3]string]string

	// Records and Torn report what LoadResume found: valid journal records
	// and trailing torn lines dropped (at most one, from a crash
	// mid-append).
	Records int
	Torn    int

	// Replayed counts cells served from the journal; Mismatched counts
	// journaled cells whose config hash no longer matched the cell about to
	// run (stale journal — the cell is re-run instead of replayed).
	Replayed   atomic.Int64
	Mismatched atomic.Int64
}

// LoadResume reads a journal written by a previous (possibly killed) run
// and builds the replay index. A duplicate (exp, bench, key) keeps the last
// record — the one whose append was acknowledged most recently — unless the
// duplicate carries a lower fabric lease epoch: a fenced zombie's record
// must lose to the lease that actually resolved the cell, whatever order
// the appends landed in.
func LoadResume(path string) (*Resume, error) {
	r := &Resume{
		results: map[[3]string]*pfe.Result{},
		hashes:  map[[3]string]string{},
	}
	epochs := map[[3]string]int64{}
	records, torn, err := journal.Scan(path, func(payload []byte) error {
		var rec cellRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("experiments: resume record: %w", err)
		}
		k := [3]string{rec.Exp, rec.Bench, rec.Key}
		if cur, seen := epochs[k]; seen && rec.Epoch < cur {
			return nil
		}
		epochs[k] = rec.Epoch
		r.results[k] = rec.Result.toResult()
		r.hashes[k] = rec.Hash
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Records, r.Torn = records, torn
	return r, nil
}

// Cells reports how many distinct cells the index can replay.
func (r *Resume) Cells() int { return len(r.results) }

// lookup returns the journaled result for a cell if one exists and its
// config hash matches; a hash mismatch (the determinism cross-check)
// returns ok=false so the caller re-runs the cell.
func (r *Resume) lookup(exp, bench, key, hash string) (*pfe.Result, bool) {
	k := [3]string{exp, bench, key}
	res := r.results[k]
	if res == nil {
		return nil, false
	}
	if r.hashes[k] != hash {
		r.Mismatched.Add(1)
		return nil, false
	}
	r.Replayed.Add(1)
	return res, true
}
