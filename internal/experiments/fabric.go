package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/artifact"
	"github.com/parallel-frontend/pfe/internal/fabric"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/obs/span"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/sim"
)

// Fabric switches runCells onto the distributed sweep fabric: instead of the
// in-process work-stealing pool, cells are leased to fabric workers over
// HTTP and their results folded back in. One Fabric serves one sweep (the
// batch numbering below is part of the cell addressing contract with
// workers, so a Fabric must not be reused across sweeps).
type Fabric struct {
	C *fabric.Coordinator

	mu   sync.Mutex
	next map[string]int
}

// nextBatch numbers runCells batches per experiment. Workers enumerate an
// experiment's batches in the same deterministic order, so (experiment,
// batch, index) names a cell across processes.
func (f *Fabric) nextBatch(exp string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next == nil {
		f.next = map[string]int{}
	}
	n := f.next[exp]
	f.next[exp] = n + 1
	return n
}

// FabricObserver is an optional Observer extension mirroring ShardObserver
// for distributed sweeps: after each batch it receives the coordinator's
// per-worker lease accounting alongside the batch wall time.
type FabricObserver interface {
	Observer
	Fabric(wall time.Duration, workers []fabric.WorkerStat)
}

// FabricConfig is the wire form of the sweep options a coordinator serves to
// its workers: everything that shapes a cell's identity and result (budgets,
// benchmark selection, acceleration modes, injected faults) and nothing
// process-local. A worker that applies this over its own base options
// enumerates the exact cell grid — and computes the exact config hashes —
// the coordinator did.
type FabricConfig struct {
	Warmup           int64             `json:"warmup"`
	Measure          int64             `json:"measure"`
	Benchmarks       []string          `json:"benchmarks,omitempty"`
	NoProgressCycles uint64            `json:"no_progress_cycles,omitempty"`
	FlightRecorder   int               `json:"flight_recorder,omitempty"`
	Inject           map[string]string `json:"inject,omitempty"`
	Sample           *pfe.SampleSpec   `json:"sample,omitempty"`
	Slices           int               `json:"slices,omitempty"`
	SliceWarmup      int64             `json:"slice_warmup,omitempty"`
}

// FabricConfig extracts the wire config from a coordinator's options.
func (o Options) FabricConfig() FabricConfig {
	return FabricConfig{
		Warmup:           o.Warmup,
		Measure:          o.Measure,
		Benchmarks:       o.Benchmarks,
		NoProgressCycles: o.NoProgressCycles,
		FlightRecorder:   o.FlightRecorder,
		Inject:           o.Inject,
		Sample:           o.Sample,
		Slices:           o.Slices,
		SliceWarmup:      o.SliceWarmup,
	}
}

// FabricConfigJSON marshals the wire config for fabric.Options.Config.
func (o Options) FabricConfigJSON() (json.RawMessage, error) {
	b, err := json.Marshal(o.FabricConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding fabric config: %w", err)
	}
	return b, nil
}

// ApplyTo overlays the wire config onto a worker's base options (which keep
// their process-local fields: artifact cache, dump dir, worker count).
func (fc FabricConfig) ApplyTo(o Options) Options {
	o.Warmup = fc.Warmup
	o.Measure = fc.Measure
	o.Benchmarks = fc.Benchmarks
	o.NoProgressCycles = fc.NoProgressCycles
	o.FlightRecorder = fc.FlightRecorder
	o.Inject = fc.Inject
	o.Sample = fc.Sample
	o.Slices = fc.Slices
	o.SliceWarmup = fc.SliceWarmup
	return o
}

// cellCollector records the cell grids runCells would execute, without
// executing them.
type cellCollector struct {
	batches [][]cell
}

// add records one batch and returns placeholder results so the experiment's
// rendering code stays total (the collector's caller discards the artifact).
func (cc *cellCollector) add(cells []cell) map[[2]string]*pfe.Result {
	cc.batches = append(cc.batches, append([]cell(nil), cells...))
	results := make(map[[2]string]*pfe.Result, len(cells))
	for i := range cells {
		c := &cells[i]
		results[[2]string{c.bench, c.key}] = &pfe.Result{Bench: c.bench, Config: c.machine.Name()}
	}
	return results
}

// enumerateCells rebuilds an experiment's deterministic cell grid under o by
// running it in collect mode: every runCells batch is recorded in order, no
// simulation happens. The grid is a pure function of (experiment, options) —
// that determinism is what lets a lease travel as (exp, batch, index) plus a
// hash instead of a serialized machine configuration.
func enumerateCells(expID string, o Options) ([][]cell, error) {
	e, err := ByID(expID)
	if err != nil {
		return nil, err
	}
	oc := o
	oc.collect = &cellCollector{}
	oc.Observer = nil
	oc.Sim = nil
	oc.Spans = nil
	oc.Journal = nil
	oc.Resume = nil
	oc.Fabric = nil
	oc.Failures = nil
	if _, err := e.Run(oc); err != nil {
		return nil, fmt.Errorf("experiments: enumerating %s cells: %w", expID, err)
	}
	return oc.collect.batches, nil
}

// runCellsFabric is runCells over the distributed fabric: resume replay and
// memo hits resolve locally exactly as in-process, the rest of the batch is
// registered with the coordinator's lease table and resolved by workers.
// Cell spans, journaling (with the accepting lease epoch), failure
// accounting and the FailBudget contract are preserved; test-hook cells
// (with a run closure) cannot travel and run locally.
func runCellsFabric(o Options, cells []cell) (map[[2]string]*pfe.Result, error) {
	if o.Observer != nil {
		o.Observer.Planned(len(cells))
	}
	ctx := o.ctx()
	ro := o.runOpts()
	outs := make([]cellOutcome, len(cells))
	batchNum := o.Fabric.nextBatch(o.ExperimentID)
	batch := o.Spans.StartBatch(o.ExperimentID, len(cells))
	start := time.Now()

	spans := make([]span.Span, len(cells))
	remote := make([]bool, len(cells))
	var refs []fabric.CellRef
	for i := range cells {
		c := &cells[i]
		if c.run != nil {
			outs[i] = o.runCell(ctx, c, ro, batch, 0, i)
			continue
		}
		hash := cellHash(c, ro)
		cs := batch.StartCell(i, c.bench, c.key, -1)
		cs.Str("cell_hash", hash)
		if out, ok := o.replayCell(cs, c, hash); ok {
			cs.End()
			outs[i] = out
			continue
		}
		spans[i] = cs
		remote[i] = true
		refs = append(refs, fabric.CellRef{
			Exp: o.ExperimentID, Batch: batchNum, Index: i,
			Bench: c.bench, Key: c.key, Hash: hash,
		})
	}

	// fail resolves cell i as a terminal failure (counters, failure log,
	// span close). The coordinator guarantees each cell resolves exactly
	// once, so outs[i] is written by exactly one hook invocation.
	fail := func(i int, f *obs.CellFailure) {
		cs := spans[i]
		cs.Str("outcome", "failed")
		cs.Int("attempts", int64(f.Attempts))
		if o.Sim != nil {
			o.Sim.CellFailures.Inc()
		}
		if o.Failures != nil {
			o.Failures.add(*f)
		}
		outs[i] = cellOutcome{fail: f}
		cs.End()
	}
	hooks := fabric.BatchHooks{
		OnLease: func(i int, worker string, num int, epoch int64) {
			spans[i].Str("leased_to", worker)
			spans[i].Int("epoch", epoch)
		},
		OnRequeue: func(i int, worker string, epoch int64, cause string) {
			spans[i].Str("requeue", fmt.Sprintf("%s under %s (epoch %d)", cause, worker, epoch))
			if o.Sim != nil {
				o.Sim.CellRetries.Inc()
			}
		},
		OnResult: func(i int, payload json.RawMessage, m fabric.ResultMeta) {
			c := &cells[i]
			cs := spans[i]
			var cr cellResult
			if err := json.Unmarshal(payload, &cr); err != nil {
				fail(i, &obs.CellFailure{
					Experiment: o.ExperimentID, Bench: c.bench, Key: c.key,
					Attempts: m.Attempts,
					Error:    fmt.Sprintf("fabric: undecodable result payload from worker %q: %v", m.Worker, err),
				})
				return
			}
			r := cr.toResult()
			cs.Str("source", "fabric")
			cs.Str("fabric_worker", m.Worker)
			if m.Attempts > 1 {
				cs.Int("retries", int64(m.Attempts-1))
			}
			hash := cellHash(c, ro)
			if o.Artifacts != nil && o.Inject[c.bench+"/"+c.key] == "" {
				o.Artifacts.PutResult(hash, r, memoResultBytes)
			}
			o.journalCell(cs, newCellRecord(o.ExperimentID, c, hash, m.Attempts, m.Epoch, r))
			wall := m.Wall
			if wall <= 0 {
				// Zero wall is the "did not simulate" convention upstream; a
				// remote cell always simulated, so clamp to a measurable tick.
				wall = time.Microsecond
			}
			if o.Observer != nil {
				o.Observer.Completed(c.bench, c.key, wall, r)
			}
			outs[i] = cellOutcome{r: r}
			cs.End()
		},
		OnFailure: func(i int, e fabric.CellError, attempts int) {
			c := &cells[i]
			fail(i, &obs.CellFailure{
				Experiment: o.ExperimentID, Bench: c.bench, Key: c.key,
				Attempts: attempts, Error: e.Msg, Panic: e.Panic,
				Stack: e.Stack, DumpPath: e.DumpPath,
			})
		},
	}
	stats, runErr := o.Fabric.C.RunBatch(ctx, refs, hooks)
	// A cancelled sweep leaves cells unresolved; their spans must still
	// close (an unended cell span never reaches the trace output).
	for i := range cells {
		if remote[i] && outs[i].r == nil && outs[i].fail == nil {
			spans[i].Str("outcome", "unrun")
			spans[i].End()
		}
	}
	batch.End()
	if fo, ok := o.Observer.(FabricObserver); ok {
		fo.Fabric(time.Since(start), stats)
	}
	if runErr != nil && !errors.Is(runErr, ctx.Err()) {
		return nil, fmt.Errorf("experiments: fabric batch: %w", runErr)
	}

	results := make(map[[2]string]*pfe.Result, len(cells))
	var failed int
	var firstFail *obs.CellFailure
	for i := range outs {
		c := &cells[i]
		switch {
		case outs[i].r != nil:
			results[[2]string{c.bench, c.key}] = outs[i].r
		case outs[i].fail != nil:
			failed++
			if firstFail == nil {
				firstFail = outs[i].fail
			}
			results[[2]string{c.bench, c.key}] = &pfe.Result{
				Bench: c.bench, Config: c.machine.Name(), Failed: true,
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("experiments: sweep interrupted with %d/%d cells done: %w",
			len(results), len(cells), err)
	}
	if failed > o.FailBudget {
		return nil, fmt.Errorf("experiments: %d cells failed (budget %d); first: %s/%s after %d attempts: %s",
			failed, o.FailBudget, firstFail.Bench, firstFail.Key, firstFail.Attempts, firstFail.Error)
	}
	return results, nil
}

// FabricRunner executes leased cells on a worker: it re-enumerates the
// experiment's deterministic cell grid, cross-checks the lease against it
// (fault-domain isolation — an address out of range, a bench/key mismatch,
// or a config-hash skew is refused rather than simulated wrong), and runs
// the cell behind the same panic isolation as the in-process path.
type FabricRunner struct {
	// Opts are the worker-local options: normally the coordinator's
	// FabricConfig applied over a base carrying the worker's artifact cache
	// and dump dir.
	Opts Options

	// OnKill, when non-nil, replaces in-process abandonment for
	// kill-injected cells — the worker CLI exits the whole process, the
	// in-process -local fleet just walks off the lease.
	OnKill func()

	mu    sync.Mutex
	cells map[string][][]cell
}

// NewFabricRunner returns a runner for one sweep configuration.
func NewFabricRunner(o Options) *FabricRunner {
	return &FabricRunner{Opts: o, cells: map[string][][]cell{}}
}

// batches returns (enumerating once and caching) the cell grid of exp.
func (f *FabricRunner) batches(exp string) ([][]cell, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if b, ok := f.cells[exp]; ok {
		return b, nil
	}
	b, err := enumerateCells(exp, f.Opts)
	if err != nil {
		return nil, err
	}
	f.cells[exp] = b
	return b, nil
}

// Prefetch warms the worker's artifact tiers for a queued lease: it resolves
// the lease to its cell exactly as Run would (refusing on any address, name
// or hash skew) and pulls the cell's program image and oracle tape through
// the cache's read-through chain — memory, local disk store, coordinator
// fetch — so the network transfer overlaps the preceding cell's compute. The
// cache's single-flight guarantees the eventual Run joins an in-flight
// prefetch instead of duplicating it. Safe to call concurrently with Run;
// failures are silent (the run pays the fetch itself and reports properly).
func (f *FabricRunner) Prefetch(lease fabric.Lease) {
	ref := lease.Cell
	o := f.Opts
	o.ExperimentID = ref.Exp
	if o.Artifacts == nil {
		return
	}
	batches, err := f.batches(ref.Exp)
	if err != nil {
		return
	}
	if ref.Batch < 0 || ref.Batch >= len(batches) || ref.Index < 0 || ref.Index >= len(batches[ref.Batch]) {
		return
	}
	c := &batches[ref.Batch][ref.Index]
	if c.run != nil || c.bench != ref.Bench || c.key != ref.Key {
		return
	}
	ro := o.runOpts()
	hash := cellHash(c, ro)
	if hash != ref.Hash {
		return
	}
	if o.Inject[c.bench+"/"+c.key] == "" {
		if _, ok := o.Artifacts.GetResult(hash); ok {
			// Memoized: Run will replay the result, no artifacts needed.
			return
		}
	}
	spec, err := program.SpecByName(c.bench)
	if err != nil {
		return
	}
	if _, err := o.Artifacts.Program(spec); err != nil {
		return
	}
	// Same budget expression as pfe.runSpec/tapeFor, so the prefetched tape
	// is the exact cache key the run will ask for.
	o.Artifacts.Tape(spec, uint64(ro.WarmupInsts+ro.MeasureInsts)+artifact.TapeSlack)
}

// killEpochs interprets a "kill[:n]" inject mode: the worker abandons the
// cell (vanishing mid-lease, no report) while the lease epoch is at most n.
// Epoch n+1 — the lease re-issued after the coordinator recovers the cell —
// runs clean, which is exactly the kill-and-recover drill.
func killEpochs(mode string) (int64, bool) {
	if mode == "kill" {
		return 1, true
	}
	if !strings.HasPrefix(mode, "kill:") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(mode, "kill:"), 10, 64)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Run implements fabric.Runner.
func (f *FabricRunner) Run(ctx context.Context, lease fabric.Lease) (json.RawMessage, time.Duration, *fabric.CellError, bool) {
	ref := lease.Cell
	o := f.Opts
	o.ExperimentID = ref.Exp
	batches, err := f.batches(ref.Exp)
	if err != nil {
		return nil, 0, &fabric.CellError{Msg: err.Error(), Kind: "enumerate"}, false
	}
	if ref.Batch < 0 || ref.Batch >= len(batches) || ref.Index < 0 || ref.Index >= len(batches[ref.Batch]) {
		return nil, 0, &fabric.CellError{
			Msg:  fmt.Sprintf("experiments: no cell %s batch %d index %d on this worker", ref.Exp, ref.Batch, ref.Index),
			Kind: "no-such-cell",
		}, false
	}
	c := &batches[ref.Batch][ref.Index]
	if c.bench != ref.Bench || c.key != ref.Key {
		return nil, 0, &fabric.CellError{
			Msg: fmt.Sprintf("experiments: cell identity skew at %s[%d][%d]: lease says %s/%s, grid says %s/%s",
				ref.Exp, ref.Batch, ref.Index, ref.Bench, ref.Key, c.bench, c.key),
			Kind: "cell-mismatch",
		}, false
	}
	ro := o.runOpts()
	// The whole experiment grid is this cell's sweep roster: the first cell
	// to build a warm-state boundary on this worker warms every class of
	// the experiment in one replay and publishes the lot to the blob plane.
	for _, b := range batches {
		ro.WarmRoster = append(ro.WarmRoster, warmRosterOf(b)...)
	}
	hash := cellHash(c, ro)
	if hash != ref.Hash {
		// This worker would compute a different result than the coordinator
		// expects (skewed binary or budgets): refuse rather than contribute
		// a wrong row. The coordinator charges the attempt and retries —
		// possibly on a healthy worker.
		return nil, 0, &fabric.CellError{
			Msg: fmt.Sprintf("experiments: config hash skew on %s/%s: lease carries %s, this worker computes %s",
				c.bench, c.key, ref.Hash, hash),
			Kind: "config-skew",
		}, false
	}
	inject := o.Inject[c.bench+"/"+c.key]
	if n, ok := killEpochs(inject); ok {
		if lease.Epoch <= n {
			if f.OnKill != nil {
				f.OnKill()
			}
			return nil, 0, nil, true
		}
		inject = "" // kill budget spent: this epoch runs clean
	}
	start := time.Now()
	memoize := o.Artifacts != nil && inject == ""
	if memoize {
		if v, _, ok := o.Artifacts.GetResultInfo(hash); ok {
			payload, merr := json.Marshal(toCellResult(v.(*pfe.Result)))
			if merr == nil {
				return payload, time.Since(start), nil, false
			}
		}
	}
	if inject == "stall" {
		ro.NoProgressCycles = 2
		if ro.FlightRecorder == 0 {
			ro.FlightRecorder = 256
		}
	}
	r, rerr, panicked, stack := safeRun(c, ro, inject)
	wall := time.Since(start)
	if rerr != nil {
		fe := &fabric.CellError{
			Msg: rerr.Error(), Kind: failureCause(rerr, panicked),
			Panic: panicked, Stack: stack,
		}
		var stall *sim.StallError
		if errors.As(rerr, &stall) && stall.Diag != nil {
			// The diagnostic bundle lands on the worker's disk; the path
			// travels so the coordinator's failure record points at it.
			path := o.dumpPath(c)
			if werr := stall.Diag.WriteFile(path); werr == nil {
				fe.DumpPath = path
			}
		}
		return nil, wall, fe, false
	}
	if memoize {
		o.Artifacts.PutResult(hash, r, memoResultBytes)
	}
	payload, merr := json.Marshal(toCellResult(r))
	if merr != nil {
		return nil, wall, &fabric.CellError{Msg: "experiments: encoding result: " + merr.Error(), Kind: "encode"}, false
	}
	return payload, wall, nil, false
}

// ParseInject parses the -inject spec: comma-separated entries, each either
// a cell fault
//
//	bench/key=mode          mode: panic | error | stall | kill[:n]
//
// or a network chaos rule for the distributed fabric
//
//	net/endpoint=kind[:n]   endpoint: config | lease | heartbeat | report | blob
//	                        kind: drop | blackhole | dup | delay | corrupt
//
// Unknown modes and kinds are errors — a typo must not silently skip the
// fault drill it was meant to run.
func ParseInject(s string) (map[string]string, []fabric.Rule, error) {
	cells := map[string]string{}
	var rules []fabric.Rule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.HasPrefix(part, "net/") {
			r, err := fabric.ParseRule(strings.TrimPrefix(part, "net/"))
			if err != nil {
				return nil, nil, fmt.Errorf("-inject %q: %w", part, err)
			}
			rules = append(rules, r)
			continue
		}
		target, mode, ok := strings.Cut(part, "=")
		if !ok || !strings.Contains(target, "/") {
			return nil, nil, fmt.Errorf("-inject %q: want bench/key=mode or net/endpoint=kind[:n]", part)
		}
		if _, isKill := killEpochs(mode); !isKill {
			switch mode {
			case "panic", "error", "stall":
			default:
				return nil, nil, fmt.Errorf("-inject %q: mode must be panic, error, stall or kill[:n]", part)
			}
		}
		cells[target] = mode
	}
	if len(cells) == 0 && len(rules) == 0 {
		return nil, nil, fmt.Errorf("-inject %q: no injections parsed", s)
	}
	return cells, rules, nil
}
