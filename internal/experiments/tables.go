package experiments

import (
	"fmt"
	"strings"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/stats"
)

// Table1Result reproduces Table 1: the simulated processor parameters.
type Table1Result struct{}

func runTable1(Options) (fmt.Stringer, error) { return Table1Result{}, nil }

// String prints the machine description in the paper's Table 1 layout.
func (Table1Result) String() string {
	t := stats.NewTable("Table 1: Simulation Parameters", "Parameter", "Value")
	t.AddRow("Width", "Fetch, decode and commit at most 16 instructions per cycle")
	t.AddRow("Functional Units", "16 Int adders, 4 Int multipliers, 4 FP adders,")
	t.AddRow("", "1 FP multiplier, 4 load/store units")
	t.AddRow("Window", "256 entry instruction window")
	t.AddRow("L1 Caches (I & D)", "64 KB, 2-way set-associative, 1 cycle access,")
	t.AddRow("", "64 byte blocks (16 instructions per block)")
	t.AddRow("L2 Cache (Unified)", "1 MB, 4-way set-associative, 10 cycle access, 128 byte blocks")
	t.AddRow("Memory", "100 cycle access time")
	t.AddRow("Trace & Fragment Predictor", "DOLC path-based, 64K entry primary table,")
	t.AddRow("", "16K entry secondary table, D=9 O=4 L=7 C=9")
	t.AddRow("Parallel Fetch and Rename", "16 fragment buffers, 16 instructions each (1 KB);")
	t.AddRow("", "2-way 4K entry live-out predictor (84 bits per entry, 42 KB)")
	return t.String()
}

// Table2Result reproduces Table 2: benchmark, input, average fragment size.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one benchmark's characteristics.
type Table2Row struct {
	Bench       string
	Input       string
	AvgFragSize float64
	PaperSize   float64
	CodeKB      float64
}

// paperFragSizes records Table 2's published values for side-by-side
// comparison.
var paperFragSizes = map[string]float64{
	"bzip2": 12.79, "crafty": 11.99, "eon": 10.98, "gap": 10.69,
	"gcc": 11.15, "gzip": 12.06, "mcf": 9.04, "parser": 10.35,
	"perl": 11.32, "twolf": 12.16, "vortex": 11.20, "vpr": 12.33,
}

func runTable2(o Options) (fmt.Stringer, error) {
	res := &Table2Result{}
	budget := o.Measure
	if budget == 0 {
		budget = Default().Measure
	}
	for _, name := range o.benches() {
		spec, err := program.SpecByName(name)
		if err != nil {
			return nil, err
		}
		p, err := program.Build(spec)
		if err != nil {
			return nil, err
		}
		avg, err := averageFragSize(p, budget)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Bench:       name,
			Input:       spec.Input,
			AvgFragSize: avg,
			PaperSize:   paperFragSizes[name],
			CodeKB:      float64(p.CodeBytes()) / 1024,
		})
	}
	return res, nil
}

// averageFragSize splits the benchmark's true dynamic stream into fragments
// and returns the mean length.
func averageFragSize(p *program.Program, budget int64) (float64, error) {
	m := emu.New(p)
	var stream []frag.Dyn
	var total, frags int64
	for total < budget {
		for len(stream) < 2*frag.MaxLen && !m.Halted() {
			d, err := m.Step()
			if err != nil {
				return 0, err
			}
			stream = append(stream, frag.Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
		}
		if len(stream) == 0 {
			break
		}
		n, _ := frag.Split(stream)
		stream = stream[:copy(stream, stream[n:])]
		total += int64(n)
		frags++
	}
	if frags == 0 {
		return 0, fmt.Errorf("experiments: %s produced no fragments", p.Name)
	}
	return float64(total) / float64(frags), nil
}

// String renders the table with the paper's values alongside.
func (r *Table2Result) String() string {
	t := stats.NewTable("Table 2: Benchmark Characteristics",
		"Benchmark", "Input", "Avg Frag Size", "Paper", "Code KB")
	var sum float64
	for _, row := range r.Rows {
		t.AddRow(row.Bench, row.Input,
			fmt.Sprintf("%.2f", row.AvgFragSize),
			fmt.Sprintf("%.2f", row.PaperSize),
			fmt.Sprintf("%.0f", row.CodeKB))
		sum += row.AvgFragSize
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "mean fragment size: %.2f (paper: 11.42)\n", sum/float64(len(r.Rows)))
	return b.String()
}
