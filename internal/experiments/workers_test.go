package experiments

import (
	"runtime"
	"testing"

	pfe "github.com/parallel-frontend/pfe"
)

func TestWorkersClamped(t *testing.T) {
	cases := []struct {
		in   int
		want int
	}{
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{4, 4},
		{-1, 1},
		{-100, 1},
	}
	for _, tc := range cases {
		if got := (Options{Workers: tc.in}).workers(); got != tc.want {
			t.Errorf("Workers=%d: workers() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRunCellsDeterministicAcrossWorkerCounts runs the same small sweep with
// serial, parallel and (formerly panicking) negative worker caps and
// requires identical results: the worker pool must only change scheduling,
// never outcomes or which cells run.
func TestRunCellsDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := []cell{
		{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "W16"},
		{bench: "gzip", machine: pfe.Preset(pfe.PR2x8w), key: "PR-2x8w"},
		{bench: "mcf", machine: pfe.Preset(pfe.W16), key: "W16"},
		{bench: "mcf", machine: pfe.Preset(pfe.PR2x8w), key: "PR-2x8w"},
	}
	opts := Options{Warmup: 2_000, Measure: 8_000}

	var base map[[2]string]*pfe.Result
	for _, workers := range []int{1, 4, -2} {
		o := opts
		o.Workers = workers
		got, err := runCells(o, cells)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(got) != len(cells) {
			t.Fatalf("Workers=%d: %d results for %d cells", workers, len(got), len(cells))
		}
		if base == nil {
			base = got
			continue
		}
		for k, r := range got {
			want, ok := base[k]
			if !ok {
				t.Fatalf("Workers=%d: unexpected result key %v", workers, k)
			}
			if r.Cycles != want.Cycles || r.Committed != want.Committed || r.IPC != want.IPC {
				t.Errorf("Workers=%d: %v diverged: IPC %.4f vs %.4f, cycles %d vs %d",
					workers, k, r.IPC, want.IPC, r.Cycles, want.Cycles)
			}
		}
	}
}
