package experiments

import (
	"fmt"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/stats"
)

// The ablations extend the paper's evaluation along the axes its text
// raises but does not measure:
//
//   - "delayed": §4's first solution (Multiscalar-style delayed rename)
//     against the live-out-prediction scheme the paper chose;
//   - "switchonmiss": §2.2's optional sequencer policy (park a missing
//     fragment, fetch another meanwhile), measured where it should matter —
//     small instruction caches;
//   - "fragsel": §6's future-work direction, longer fragments with more
//     intra-fragment control flow.

// runDelayed compares the two parallel-rename designs of §4 plus the
// sequential-rename baseline on the full suite.
func runDelayed(o Options) (fmt.Stringer, error) {
	fes := []pfe.FrontEnd{pfe.PF2x8w, pfe.PR2x8w, pfe.PRD2x8w, pfe.PF4x4w, pfe.PR4x4w, pfe.PRD4x4w}
	var cells []cell
	for _, b := range o.benches() {
		for _, fe := range fes {
			cells = append(cells, cell{bench: b, machine: pfe.Preset(fe), key: string(fe)})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(fes))
	for i, fe := range fes {
		keys[i] = string(fe)
	}
	r := &SweepResult{
		Title:   "Ablation: §4's two parallel-rename designs (IPC)",
		Metric:  "IPC",
		Benches: o.benches(),
		Keys:    keys,
		Values:  map[[2]string]float64{},
		Summary: map[string]float64{},
	}
	for _, k := range keys {
		var xs []float64
		for _, b := range r.Benches {
			v := results[[2]string{b, k}].IPC
			r.Values[[2]string{b, k}] = v
			xs = append(xs, v)
		}
		r.Summary[k] = stats.ArithmeticMean(xs)
	}
	r.Note = "PRd = delayed rename (solution 1: no live-out prediction, instructions wait for\n" +
		"cross-fragment mappings). The paper predicts solution 2 (PR) wins on latency;\n" +
		"solution 1 never squashes but holds fragments in buffers longer."
	return r, nil
}

// runSwitchOnMiss measures §2.2's switch-on-miss policy where misses are
// frequent: PF-2x8w with and without the policy across cache sizes.
func runSwitchOnMiss(o Options) (fmt.Stringer, error) {
	sizes := []int{8, 16, 32, 64}
	var cells []cell
	for _, b := range o.benches() {
		for _, kb := range sizes {
			cells = append(cells, cell{
				bench: b, machine: pfe.Preset(pfe.PF2x8w).WithTotalL1I(kb),
				key: fmt.Sprintf("base@%dKB", kb),
			})
			cells = append(cells, cell{
				bench: b, machine: pfe.Preset(pfe.PF2x8w).WithTotalL1I(kb).WithSwitchOnMiss(),
				key: fmt.Sprintf("som@%dKB", kb),
			})
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: switch-on-miss sequencers (PF-2x8w, mean IPC gain %)",
		"Total L1I", "base IPC", "switch-on-miss IPC", "gain %")
	res := &SwitchOnMissResult{table: t}
	for _, kb := range sizes {
		var base, som []float64
		for _, b := range o.benches() {
			base = append(base, results[[2]string{b, fmt.Sprintf("base@%dKB", kb)}].IPC)
			som = append(som, results[[2]string{b, fmt.Sprintf("som@%dKB", kb)}].IPC)
		}
		gb, gs := stats.GeometricMean(base), stats.GeometricMean(som)
		gain := stats.Speedup(gb, gs)
		res.GainPct = append(res.GainPct, gain)
		res.SizesKB = append(res.SizesKB, kb)
		t.AddRow(fmt.Sprintf("%d KB", kb),
			fmt.Sprintf("%.3f", gb), fmt.Sprintf("%.3f", gs), fmt.Sprintf("%+.2f", gain))
	}
	return res, nil
}

// SwitchOnMissResult carries the switch-on-miss gains per cache size.
type SwitchOnMissResult struct {
	SizesKB []int
	GainPct []float64
	table   *stats.Table
}

// String renders the gain table.
func (r *SwitchOnMissResult) String() string {
	return r.table.String() +
		"expected: gains grow as the cache shrinks (more misses to hide); ~0 at 64 KB\n"
}

// runFragSel sweeps the fragment-selection heuristics (§6): the paper's
// 16/8 against longer fragments.
func runFragSel(o Options) (fmt.Stringer, error) {
	type variant struct {
		key    string
		maxLen int
		cutoff int
	}
	variants := []variant{
		{"16/8 (paper)", 16, 8},
		{"24/12", 24, 12},
		{"32/16", 32, 16},
	}
	fes := []pfe.FrontEnd{pfe.PF2x8w, pfe.PR2x8w}
	var cells []cell
	for _, b := range o.benches() {
		for _, fe := range fes {
			for _, v := range variants {
				cells = append(cells, cell{
					bench:   b,
					machine: pfe.Preset(fe).WithFragmentHeuristics(v.maxLen, v.cutoff),
					key:     string(fe) + " " + v.key,
				})
			}
		}
	}
	results, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: fragment selection heuristics (mean IPC; mean fragment-prediction accuracy)",
		"Config", "IPC", "frag-pred")
	res := &FragSelResult{table: t, IPC: map[string]float64{}}
	for _, fe := range fes {
		for _, v := range variants {
			k := string(fe) + " " + v.key
			var ipc, acc []float64
			for _, b := range o.benches() {
				r := results[[2]string{b, k}]
				ipc = append(ipc, r.IPC)
				acc = append(acc, r.FragPredAccuracy)
			}
			mi := stats.GeometricMean(ipc)
			res.IPC[k] = mi
			t.AddRow(k, fmt.Sprintf("%.3f", mi), fmt.Sprintf("%.3f", stats.ArithmeticMean(acc)))
		}
	}
	return res, nil
}

// FragSelResult carries the fragment-selection sweep.
type FragSelResult struct {
	IPC   map[string]float64
	table *stats.Table
}

// String renders the sweep.
func (r *FragSelResult) String() string {
	return r.table.String() +
		"longer fragments raise per-prediction throughput but each prediction carries\n" +
		"more branches, so prediction accuracy (and wrong-path cost) suffers\n"
}
