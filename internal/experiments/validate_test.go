package experiments

import (
	"context"
	"math"
	"testing"

	pfe "github.com/parallel-frontend/pfe"
)

// TestValidateSampling runs the sampled-vs-full gate on a suite subset with
// CI budgets: rows must be complete, internally consistent, and — the point
// of the suite — every error within its own confidence interval.
func TestValidateSampling(t *testing.T) {
	o := CI()
	o.Benchmarks = []string{"gcc", "twolf", "mcf"}
	spec := pfe.SampleSpec{Unit: 2_000, Period: 6_000, Warmup: 3_000}
	v, err := ValidateSampling(pfe.Preset(pfe.PR2x8w), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != len(o.Benchmarks) {
		t.Fatalf("rows = %d, want %d", len(v.Rows), len(o.Benchmarks))
	}
	for _, r := range v.Rows {
		if r.FullIPC <= 0 || r.SampledIPC <= 0 {
			t.Errorf("%s: empty IPCs: full %v sampled %v", r.Bench, r.FullIPC, r.SampledIPC)
		}
		if r.Windows < 2 {
			t.Errorf("%s: %d windows, want >= 2 for a CI", r.Bench, r.Windows)
		}
		if r.Detailed <= 0 || r.Skipped <= 0 {
			t.Errorf("%s: detailed %d skipped %d, want both positive", r.Bench, r.Detailed, r.Skipped)
		}
		wantErr := 100 * (r.SampledIPC - r.FullIPC) / r.FullIPC
		if math.Abs(wantErr-r.ErrPct) > 1e-9 {
			t.Errorf("%s: ErrPct %v, want %v", r.Bench, r.ErrPct, wantErr)
		}
		if !r.Pass {
			t.Errorf("%s: gate failed: err %.2f%% vs ci ±%.2f%%", r.Bench, r.ErrPct, r.CI95Pct)
		}
	}
	if !v.Passed {
		t.Error("suite did not pass")
	}
	if s := v.String(); s == "" {
		t.Error("empty rendering")
	}
}

// TestValidateSamplingRespectsCancel pins that a cancelled context aborts
// before any simulation runs.
func TestValidateSamplingRespectsCancel(t *testing.T) {
	o := CI()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Ctx = ctx
	if _, err := ValidateSampling(pfe.Preset(pfe.PR2x8w), pfe.DefaultSampleSpec(), o); err == nil {
		t.Fatal("want context error, got nil")
	}
}
