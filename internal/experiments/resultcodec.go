package experiments

import (
	"encoding/json"
	"fmt"

	pfe "github.com/parallel-frontend/pfe"
)

// ResultCodec serializes memoized cell results (*pfe.Result) for the
// persistent artifact store, implementing artifact.ResultCodec. It reuses
// the resume journal's cellResult mirror, so a result that crosses the disk
// boundary round-trips exactly like one replayed with -resume: every float
// in Go's shortest-round-trip JSON form, pipeline histograms (debug-only,
// nil-tolerant everywhere) deliberately dropped.
type ResultCodec struct{}

// EncodeResult marshals a *pfe.Result for the store.
func (ResultCodec) EncodeResult(v any) ([]byte, error) {
	r, ok := v.(*pfe.Result)
	if !ok {
		return nil, fmt.Errorf("experiments: result codec got %T, want *pfe.Result", v)
	}
	return json.Marshal(toCellResult(r))
}

// DecodeResult unmarshals a stored result and reports its accounted
// in-memory footprint for the cache cap.
func (ResultCodec) DecodeResult(data []byte) (any, int64, error) {
	var cr cellResult
	if err := json.Unmarshal(data, &cr); err != nil {
		return nil, 0, fmt.Errorf("experiments: decoding stored result: %w", err)
	}
	return cr.toResult(), memoResultBytes, nil
}
