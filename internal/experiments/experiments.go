// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named runner producing a formatted
// table plus structured data that bench targets and tests assert against.
// The same runners back cmd/pfe-bench and the repository's bench_test.go,
// so the printed artifacts are identical either way.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/obs"
)

// Observer receives cell-level lifecycle callbacks from an experiment run:
// Planned once per scheduled batch with the number of simulations it will
// run, Completed for each finished simulation. Completed is called from
// concurrent worker goroutines, so implementations must be safe for
// concurrent use.
type Observer interface {
	Planned(n int)
	Completed(bench, key string, wall time.Duration, r *pfe.Result)
}

// ShardObserver is an optional extension of Observer: implementations also
// receive the work-stealing scheduler's per-worker statistics after each
// batch of cells completes, along with the batch's wall time.
type ShardObserver interface {
	Observer
	Sharded(wall time.Duration, stats []ShardStat)
}

// Options bounds experiment runs.
type Options struct {
	// Warmup and Measure are per-simulation instruction budgets.
	Warmup  int64
	Measure int64
	// Benchmarks restricts the suite (nil = all twelve).
	Benchmarks []string
	// Workers caps concurrent simulations (0 = GOMAXPROCS).
	Workers int

	// Observer, if non-nil, is notified as simulations are planned and
	// completed (progress lines, /status, JSON report rows).
	Observer Observer

	// Sim, if non-nil, receives live telemetry from every simulation
	// (cycles, committed, squashes) for /metrics exposition.
	Sim *obs.SimCounters

	// SelfProfile enables per-run wall-time attribution of the simulator
	// itself, surfaced in each Result.StageSeconds.
	SelfProfile bool
}

// Default returns the harness budgets used for the recorded results in
// EXPERIMENTS.md.
func Default() Options { return Options{Warmup: 100_000, Measure: 300_000} }

// CI returns reduced budgets for tests.
func CI() Options { return Options{Warmup: 20_000, Measure: 60_000} }

func (o Options) benches() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return pfe.Benchmarks()
}

func (o Options) runOpts() pfe.RunOptions {
	if o.Measure == 0 {
		// Fill in only the budgets; observability fields pass through.
		def := Default()
		o.Warmup, o.Measure = def.Warmup, def.Measure
	}
	return pfe.RunOptions{
		WarmupInsts:  o.Warmup,
		MeasureInsts: o.Measure,
		Obs:          o.Sim,
		SelfProfile:  o.SelfProfile,
	}
}

func (o Options) workers() int {
	n := o.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		// Negative caps (e.g. from a bad flag) mean "serial", not
		// "unbounded": clamp instead of handing make(chan) a negative
		// capacity.
		n = 1
	}
	return n
}

// cell identifies one simulation in a sweep.
type cell struct {
	bench   string
	machine pfe.Machine
	key     string // caller-defined config key
}

// runCells executes all cells (across up to Workers work-stealing shards,
// see runSharded) and returns results keyed by (bench, key). Dispatch is by
// cell index: workers read the shared cells slice in place and write
// disjoint outcome slots, so no per-goroutine copy of a cell (or of the run
// options, which are hoisted and invariant across the batch) is ever made.
func runCells(o Options, cells []cell) (map[[2]string]*pfe.Result, error) {
	type outcome struct {
		r   *pfe.Result
		err error
	}
	if o.Observer != nil {
		o.Observer.Planned(len(cells))
	}
	ro := o.runOpts()
	obsv := o.Observer
	outs := make([]outcome, len(cells))
	start := time.Now()
	stats := runSharded(len(cells), o.workers(), func(i int) {
		c := &cells[i]
		cellStart := time.Now()
		r, err := pfe.Run(c.bench, c.machine, ro)
		if err == nil && obsv != nil {
			obsv.Completed(c.bench, c.key, time.Since(cellStart), r)
		}
		outs[i] = outcome{r: r, err: err}
	})
	if so, ok := obsv.(ShardObserver); ok {
		so.Sharded(time.Since(start), stats)
	}
	results := make(map[[2]string]*pfe.Result, len(cells))
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", cells[i].key, cells[i].bench, outs[i].err)
		}
		results[[2]string{cells[i].bench, cells[i].key}] = outs[i].r
	}
	return results, nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // "table1", "table2", "fig4" ... "fig10", "construction"
	Title string
	Run   func(Options) (fmt.Stringer, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: Simulation Parameters", Run: runTable1},
		{ID: "table2", Title: "Table 2: Benchmark Characteristics", Run: runTable2},
		{ID: "fig4", Title: "Figure 4: Fetch Slot Utilization", Run: runFig4},
		{ID: "fig5", Title: "Figure 5: Fetch and Rename Rates", Run: runFig5},
		{ID: "fig6", Title: "Figure 6: Parallel Rename with a Trace Cache", Run: runFig6},
		{ID: "fig7", Title: "Figure 7: Live-Out Predictor Accuracy", Run: runFig7},
		{ID: "fig8", Title: "Figure 8: Performance", Run: runFig8},
		{ID: "fig9", Title: "Figure 9: Sensitivity to Cache Size", Run: runFig9},
		{ID: "fig10", Title: "Figure 10: Sensitivity to Fragment Predictor Size", Run: runFig10},
		{ID: "construction", Title: "§3.2/§3.3: Fragment Buffers and Construction", Run: runConstruction},
		{ID: "delayed", Title: "Ablation: Delayed vs Live-Out Parallel Rename (§4)", Run: runDelayed},
		{ID: "switchonmiss", Title: "Ablation: Switch-on-Miss Sequencers (§2.2)", Run: runSwitchOnMiss},
		{ID: "fragsel", Title: "Ablation: Fragment Selection Heuristics (§6)", Run: runFragSel},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
