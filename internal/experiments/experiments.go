// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a named runner producing a formatted
// table plus structured data that bench targets and tests assert against.
// The same runners back cmd/pfe-bench and the repository's bench_test.go,
// so the printed artifacts are identical either way.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/artifact"
	"github.com/parallel-frontend/pfe/internal/journal"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/obs/span"
	"github.com/parallel-frontend/pfe/internal/shard"
)

// Observer receives cell-level lifecycle callbacks from an experiment run:
// Planned once per scheduled batch with the number of simulations it will
// run, Completed for each finished simulation. Completed is called from
// concurrent worker goroutines, so implementations must be safe for
// concurrent use.
type Observer interface {
	Planned(n int)
	Completed(bench, key string, wall time.Duration, r *pfe.Result)
}

// ShardObserver is an optional extension of Observer: implementations also
// receive the work-stealing scheduler's per-worker statistics after each
// batch of cells completes, along with the batch's wall time.
type ShardObserver interface {
	Observer
	Sharded(wall time.Duration, stats []ShardStat)
}

// Options bounds experiment runs.
type Options struct {
	// Warmup and Measure are per-simulation instruction budgets.
	Warmup  int64
	Measure int64
	// Benchmarks restricts the suite (nil = all twelve).
	Benchmarks []string
	// Workers caps concurrent simulations (0 = GOMAXPROCS).
	Workers int

	// Observer, if non-nil, is notified as simulations are planned and
	// completed (progress lines, /status, JSON report rows).
	Observer Observer

	// Sim, if non-nil, receives live telemetry from every simulation
	// (cycles, committed, squashes) for /metrics exposition.
	Sim *obs.SimCounters

	// Spans, if non-nil, receives hierarchical sweep spans: one sweep span
	// per batch of cells, a cell span per simulation (worker-attributed),
	// attempt spans under it, and run-phase spans below those (program/tape
	// builds, sim, sampled windows, slices). Steal events stream as they
	// happen; cell-scoped events stream in deterministic cell order. Nil
	// disables tracing at ~zero cost.
	Spans *span.Tracer

	// SelfProfile enables per-run wall-time attribution of the simulator
	// itself, surfaced in each Result.StageSeconds.
	SelfProfile bool

	// Ctx, if non-nil, cancels the sweep: workers drain (in-flight cells
	// finish, unclaimed cells are never started) and runCells returns the
	// completed subset alongside a context error. Nil means Background.
	Ctx context.Context

	// MaxRetries is how many times a failed cell (panic, error, or watchdog
	// stall) is re-run before it counts against FailBudget. 0 = no retries.
	MaxRetries int

	// RetryBackoff is the delay before the first retry; it doubles per
	// subsequent attempt (capped at 5s). 0 means the 100ms default; negative
	// disables backoff entirely (tests).
	RetryBackoff time.Duration

	// FailBudget is how many cells may exhaust their retries before the
	// sweep aborts with an error. Failures at or under budget degrade the
	// sweep to partial results: failed cells get zero-valued placeholder
	// results (marked Failed) and structured records in Failures.
	FailBudget int

	// Failures, if non-nil, collects a structured obs.CellFailure for every
	// cell that exhausted its retries.
	Failures *FailureLog

	// Journal, if non-nil, receives a crash-safe record of every completed
	// cell (config hash + full scalar result) so an interrupted sweep can be
	// resumed with Resume. Appends are fsynced before the cell is reported
	// complete.
	Journal *journal.Writer

	// Resume, if non-nil, replays previously journaled cells instead of
	// re-running them, after cross-checking the journaled config hash
	// against the cell about to run (a mismatch re-runs the cell).
	Resume *Resume

	// ExperimentID namespaces journal and failure records; cmd/pfe-bench
	// sets it per experiment.
	ExperimentID string

	// DumpDir is where watchdog stall diagnostics are written (flight
	// recorder tail, per-stage occupancy, predictor state). Empty means the
	// OS temp dir.
	DumpDir string

	// NoProgressCycles and FlightRecorder configure the simulator's
	// forward-progress watchdog and event ring; see pfe.RunOptions.
	NoProgressCycles uint64
	FlightRecorder   int

	// Inject maps "bench/key" to a fault mode ("panic", "error", "stall",
	// or — on fabric workers — "kill[:n]") injected into that cell: the
	// harness's own fault-tolerance test hook, reachable via pfe-bench
	// -inject. See ParseInject.
	Inject map[string]string

	// Sample, if non-nil, runs every cell in systematic-sampling mode
	// (detailed windows over an oracle tape; see pfe.RunOptions.Sample).
	// Requires Artifacts. Reported IPCs are sampled estimates with
	// confidence intervals in each Result.Sampling.
	Sample *pfe.SampleSpec

	// Slices, when positive, runs every cell in time-parallel mode: the
	// measured stream is cut into Slices tape-indexed pieces simulated
	// concurrently (see pfe.RunOptions.Slices). Mutually exclusive with
	// Sample when greater than 1. SliceWarmup is the per-slice overlapped
	// detailed warmup (0 = Warmup).
	Slices      int
	SliceWarmup int64

	// Artifacts, if non-nil, is the cross-cell workload reuse cache:
	// program images and oracle tapes are shared across every cell of the
	// same benchmark (see pfe.RunOptions.Artifacts), and completed cell
	// results are memoized under their config hash so an identical cell in
	// a later experiment of the same run (Fig 4/5/8 share most of their
	// grid) is served without re-simulating. Results are bit-identical
	// with or without it.
	Artifacts *artifact.Cache

	// Fabric, if non-nil, dispatches every cell batch to the distributed
	// sweep fabric (coordinator/worker leases over HTTP) instead of the
	// in-process work-stealing pool. Resume replay, result memoization,
	// journaling and failure accounting behave identically; see fabric.go.
	Fabric *Fabric

	// collect, if non-nil, switches runCells into enumeration mode: cells
	// are recorded (and given placeholder results) instead of simulated.
	// Fabric workers use it to re-derive a leased cell's machine
	// configuration from (experiment, batch, index).
	collect *cellCollector
}

// Default returns the harness budgets used for the recorded results in
// EXPERIMENTS.md.
func Default() Options { return Options{Warmup: 100_000, Measure: 300_000} }

// CI returns reduced budgets for tests.
func CI() Options { return Options{Warmup: 20_000, Measure: 60_000} }

func (o Options) benches() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return pfe.Benchmarks()
}

func (o Options) runOpts() pfe.RunOptions {
	if o.Measure == 0 {
		// Fill in only the budgets; observability fields pass through.
		def := Default()
		o.Warmup, o.Measure = def.Warmup, def.Measure
	}
	return pfe.RunOptions{
		WarmupInsts:      o.Warmup,
		MeasureInsts:     o.Measure,
		Obs:              o.Sim,
		SelfProfile:      o.SelfProfile,
		NoProgressCycles: o.NoProgressCycles,
		FlightRecorder:   o.FlightRecorder,
		Spans:            o.Spans,
		Artifacts:        o.Artifacts,
		Sample:           o.Sample,
		Slices:           o.Slices,
		SliceWarmup:      o.SliceWarmup,
	}
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) workers() int {
	n := o.Workers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		// Negative caps (e.g. from a bad flag) mean "serial", not
		// "unbounded": clamp instead of handing make(chan) a negative
		// capacity.
		n = 1
	}
	return n
}

// warmRosterOf collects one machine per distinct config key of a batch —
// the sweep roster handed to pfe.RunOptions.WarmRoster so the first cell to
// reach a warm-state boundary trains every class of the sweep in one replay
// (union warming; see pfe's warmstate.go). Purely a performance hint: it
// never changes any cell's result or its config hash.
func warmRosterOf(cells []cell) []pfe.Machine {
	var ms []pfe.Machine
	seen := map[string]bool{}
	for i := range cells {
		if cells[i].run != nil || seen[cells[i].key] {
			continue
		}
		seen[cells[i].key] = true
		ms = append(ms, cells[i].machine)
	}
	return ms
}

// cell identifies one simulation in a sweep. run, when non-nil, replaces
// pfe.Run for this cell (a test hook for the fault-tolerance machinery).
type cell struct {
	bench   string
	machine pfe.Machine
	key     string // caller-defined config key
	run     func() (*pfe.Result, error)
}

// runCells executes all cells (across up to Workers work-stealing shards,
// see runSharded) and returns results keyed by (bench, key). Dispatch is by
// cell index: workers read the shared cells slice in place and write
// disjoint outcome slots, so no per-goroutine copy of a cell (or of the run
// options, which are hoisted and invariant across the batch) is ever made.
//
// Fault tolerance: each cell runs behind a recover barrier with bounded
// retries; a cell that exhausts them becomes a structured failure and a
// zero-valued placeholder result (so downstream table/figure rendering
// survives), unless the batch's failure count exceeds o.FailBudget, in
// which case the whole batch errors. Cancelling o.Ctx drains workers and
// returns the completed subset wrapped around the context error.
func runCells(o Options, cells []cell) (map[[2]string]*pfe.Result, error) {
	if o.collect != nil {
		return o.collect.add(cells), nil
	}
	if o.Fabric != nil {
		return runCellsFabric(o, cells)
	}
	if o.Observer != nil {
		o.Observer.Planned(len(cells))
	}
	ctx := o.ctx()
	ro := o.runOpts()
	ro.WarmRoster = warmRosterOf(cells)
	outs := make([]cellOutcome, len(cells))
	batch := o.Spans.StartBatch(o.ExperimentID, len(cells))
	start := time.Now()
	stats := runShardedHooked(ctx, len(cells), o.workers(), shard.Hooks{OnSteal: batch.Steal},
		func(w, i int) {
			outs[i] = o.runCell(ctx, &cells[i], ro, batch, w, i)
		})
	batch.End()
	if so, ok := o.Observer.(ShardObserver); ok {
		so.Sharded(time.Since(start), stats)
	}
	results := make(map[[2]string]*pfe.Result, len(cells))
	var failed int
	var firstFail *obs.CellFailure
	for i := range outs {
		c := &cells[i]
		switch {
		case outs[i].r != nil:
			results[[2]string{c.bench, c.key}] = outs[i].r
		case outs[i].fail != nil:
			failed++
			if firstFail == nil {
				firstFail = outs[i].fail
			}
			// Placeholder keeps renderers total over the sweep's key set;
			// the real story is in the failure log and report.
			results[[2]string{c.bench, c.key}] = &pfe.Result{
				Bench: c.bench, Config: c.machine.Name(), Failed: true,
			}
			// Neither r nor fail set: the cell was never claimed (drained
			// by cancellation) — leave it absent.
		}
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("experiments: sweep interrupted with %d/%d cells done: %w",
			len(results), len(cells), err)
	}
	if failed > o.FailBudget {
		return nil, fmt.Errorf("experiments: %d cells failed (budget %d); first: %s/%s after %d attempts: %s",
			failed, o.FailBudget, firstFail.Bench, firstFail.Key, firstFail.Attempts, firstFail.Error)
	}
	return results, nil
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // "table1", "table2", "fig4" ... "fig10", "construction"
	Title string
	Run   func(Options) (fmt.Stringer, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: Simulation Parameters", Run: runTable1},
		{ID: "table2", Title: "Table 2: Benchmark Characteristics", Run: runTable2},
		{ID: "fig4", Title: "Figure 4: Fetch Slot Utilization", Run: runFig4},
		{ID: "fig5", Title: "Figure 5: Fetch and Rename Rates", Run: runFig5},
		{ID: "fig6", Title: "Figure 6: Parallel Rename with a Trace Cache", Run: runFig6},
		{ID: "fig7", Title: "Figure 7: Live-Out Predictor Accuracy", Run: runFig7},
		{ID: "fig8", Title: "Figure 8: Performance", Run: runFig8},
		{ID: "fig9", Title: "Figure 9: Sensitivity to Cache Size", Run: runFig9},
		{ID: "fig10", Title: "Figure 10: Sensitivity to Fragment Predictor Size", Run: runFig10},
		{ID: "construction", Title: "§3.2/§3.3: Fragment Buffers and Construction", Run: runConstruction},
		{ID: "delayed", Title: "Ablation: Delayed vs Live-Out Parallel Rename (§4)", Run: runDelayed},
		{ID: "switchonmiss", Title: "Ablation: Switch-on-Miss Sequencers (§2.2)", Run: runSwitchOnMiss},
		{ID: "fragsel", Title: "Ablation: Fragment Selection Heuristics (§6)", Run: runFragSel},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
