package experiments

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	pfe "github.com/parallel-frontend/pfe"
)

// TestRunShardedExactlyOnce checks the scheduler's core contract under
// contention: every task index runs exactly once, whatever the worker
// count, and the per-shard Ran counts account for all of them. Run with
// -race this also exercises the deque locking across take/steal/push.
func TestRunShardedExactlyOnce(t *testing.T) {
	const n = 5000
	counts := make([]atomic.Int32, n)
	for _, workers := range []int{1, 3, 8, 64} {
		for i := range counts {
			counts[i].Store(0)
		}
		stats := runSharded(context.Background(), n, workers, func(i int) { counts[i].Add(1) })
		if len(stats) != workers {
			t.Fatalf("workers=%d: %d shard stats", workers, len(stats))
		}
		total := 0
		for _, s := range stats {
			total += s.Ran
		}
		if total != n {
			t.Errorf("workers=%d: shards report %d tasks ran, want %d", workers, total, n)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times, want exactly once", workers, i, c)
			}
		}
	}
}

// TestRunShardedBounds covers the degenerate shapes: no tasks, more workers
// than tasks (clamped so no deque starts empty), and non-positive worker
// counts (clamped to serial).
func TestRunShardedBounds(t *testing.T) {
	if stats := runSharded(context.Background(), 0, 4, func(int) { t.Error("ran a task of zero") }); stats != nil {
		t.Errorf("n=0: stats = %v, want nil", stats)
	}
	var ran atomic.Int32
	stats := runSharded(context.Background(), 3, 100, func(int) { ran.Add(1) })
	if len(stats) != 3 || ran.Load() != 3 {
		t.Errorf("n=3 workers=100: %d shards, %d runs; want 3 and 3", len(stats), ran.Load())
	}
	for _, workers := range []int{0, -5} {
		ran.Store(0)
		stats := runSharded(context.Background(), 4, workers, func(int) { ran.Add(1) })
		if len(stats) != 1 || stats[0].Ran != 4 || ran.Load() != 4 {
			t.Errorf("workers=%d: stats %v, %d runs; want one serial shard of 4", workers, stats, ran.Load())
		}
	}
}

// TestRunShardedStealsSkewedWork gives worker 0 a block of slow tasks and
// worker 1 a block of fast ones: the fast worker must steal from the slow
// block, and the batch must finish well before the slow block's serial time
// — the tail-skew bound that fixed fan-out could not provide. Sleeps are
// reliable lower bounds, so the wall-clock assertion holds even on a noisy
// host as long as the margin stays generous.
func TestRunShardedStealsSkewedWork(t *testing.T) {
	const slow = 25 * time.Millisecond
	var ran [8]atomic.Int32
	start := time.Now()
	stats := runSharded(context.Background(), len(ran), 2, func(i int) {
		ran[i].Add(1)
		if i < 4 {
			time.Sleep(slow) // worker 0's seeded block
		} else {
			time.Sleep(time.Millisecond)
		}
	})
	elapsed := time.Since(start)
	for i := range ran {
		if c := ran[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", i, c)
		}
	}
	stolen := 0
	for _, s := range stats {
		stolen += s.Stolen
	}
	if stolen == 0 {
		t.Error("no tasks stolen despite a 25x duration skew between worker blocks")
	}
	if serial := 4 * slow; elapsed >= serial {
		t.Errorf("batch took %v, not faster than the slow block's serial %v: stealing did not shed the skew", elapsed, serial)
	}
}

// TestRunCellsMatchesDirectRuns pins runCells' index dispatch: the result
// stored under each (bench, key) must be identical to running exactly that
// cell's machine directly with the hoisted run options. This is the
// regression guard for the old per-goroutine copies of cell and option
// structs, which could silently drift from the cells slice.
func TestRunCellsMatchesDirectRuns(t *testing.T) {
	cells := []cell{
		{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "W16"},
		{bench: "gzip", machine: pfe.Preset(pfe.PR2x8w), key: "PR-2x8w"},
		{bench: "mcf", machine: pfe.Preset(pfe.W16), key: "W16"},
		{bench: "gcc", machine: pfe.Preset(pfe.PR2x8w), key: "PR-2x8w"},
	}
	o := Options{Warmup: 2_000, Measure: 8_000, Workers: len(cells)}
	got, err := runCells(o, cells)
	if err != nil {
		t.Fatal(err)
	}
	ro := o.runOpts()
	for _, c := range cells {
		want, err := pfe.Run(c.bench, c.machine, ro)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.bench, c.key, err)
		}
		r := got[[2]string{c.bench, c.key}]
		if r == nil {
			t.Fatalf("no result for %s/%s", c.bench, c.key)
		}
		if r.IPC != want.IPC || r.Cycles != want.Cycles || r.Committed != want.Committed {
			t.Errorf("%s/%s: sharded run diverged from direct run: IPC %.4f vs %.4f, cycles %d vs %d",
				c.bench, c.key, r.IPC, want.IPC, r.Cycles, want.Cycles)
		}
	}
}
