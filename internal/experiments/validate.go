package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/artifact"
)

// ValidationRow is one benchmark's sampled-vs-full comparison: the exact
// (full-detail) IPC, the sampled estimate with its 95% confidence
// half-width, and whether the measured error falls inside the interval.
type ValidationRow struct {
	Bench      string  `json:"bench"`
	FullIPC    float64 `json:"full_ipc"`
	SampledIPC float64 `json:"sampled_ipc"`
	ErrPct     float64 `json:"err_pct"`  // signed, relative to FullIPC
	CI95Pct    float64 `json:"ci95_pct"` // half-width as a % of FullIPC
	Windows    int     `json:"windows"`
	Detailed   int64   `json:"detailed_insts"`
	Skipped    int64   `json:"skipped_insts"`
	Speedup    float64 `json:"speedup"` // full wall time / sampled wall time
	Pass       bool    `json:"pass"`
}

// Validation is the sampled-vs-full validation suite's outcome: one row per
// benchmark under one machine configuration and sampling spec. The suite
// passes only if every benchmark's sampled IPC lands within its own 95%
// confidence interval of the exact IPC — the statistical gate behind
// `pfe-bench -validate-sampling`.
type Validation struct {
	Config string          `json:"config"`
	Spec   pfe.SampleSpec  `json:"spec"`
	Rows   []ValidationRow `json:"rows"`
	Passed bool            `json:"passed"`
}

// ValidateSampling runs the sampled-vs-full validation suite: for every
// benchmark in o, one exact run and one sampled run under spec on machine
// m, compared row by row. A row passes when the sampled estimate's error is
// within its own 95% confidence half-width and the plan produced at least
// two windows (a single window supports no error claim). Rows run
// concurrently on the shared scheduler; each row's speedup compares the
// wall times of its own two runs.
func ValidateSampling(m pfe.Machine, spec pfe.SampleSpec, o Options) (*Validation, error) {
	if err := o.ctx().Err(); err != nil {
		return nil, err
	}
	benches := o.benches()
	ro := o.runOpts()
	ro.Sample = nil
	ro.Slices = 0
	if ro.Artifacts == nil {
		// The sampled path needs tapes; budget two workloads per worker
		// plus slack so full and sampled runs of a benchmark share one
		// recording.
		ro.Artifacts = artifact.New(256 << 20)
	}

	type out struct {
		row ValidationRow
		err error
	}
	outs := make([]out, len(benches))
	runSharded(o.ctx(), len(benches), o.workers(), func(i int) {
		b := benches[i]
		t0 := time.Now()
		full, err := pfe.Run(b, m, ro)
		if err != nil {
			outs[i] = out{err: fmt.Errorf("validate %s full: %w", b, err)}
			return
		}
		fullWall := time.Since(t0)
		so := ro
		sp := spec
		so.Sample = &sp
		t1 := time.Now()
		sampled, err := pfe.Run(b, m, so)
		if err != nil {
			outs[i] = out{err: fmt.Errorf("validate %s sampled: %w", b, err)}
			return
		}
		sampledWall := time.Since(t1)
		row := ValidationRow{
			Bench:      b,
			FullIPC:    full.IPC,
			SampledIPC: sampled.SampledIPC,
			Windows:    sampled.Sampling.Windows,
			Detailed:   sampled.Sampling.DetailedInsts,
			Skipped:    sampled.Sampling.SkippedInsts,
		}
		if full.IPC > 0 {
			row.ErrPct = 100 * (sampled.SampledIPC - full.IPC) / full.IPC
			row.CI95Pct = 100 * sampled.Sampling.IPCCI95 / full.IPC
		}
		if sampledWall > 0 {
			row.Speedup = float64(fullWall) / float64(sampledWall)
		}
		row.Pass = row.Windows >= 2 && math.Abs(row.ErrPct) <= row.CI95Pct
		outs[i] = out{row: row}
	})
	if err := o.ctx().Err(); err != nil {
		return nil, err
	}

	v := &Validation{Config: m.Name(), Spec: spec, Passed: true}
	for _, ot := range outs {
		if ot.err != nil {
			return nil, ot.err
		}
		v.Rows = append(v.Rows, ot.row)
		if !ot.row.Pass {
			v.Passed = false
		}
	}
	return v, nil
}

// String renders the validation as the error table EXPERIMENTS.md records.
func (v *Validation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled-vs-full validation — %s, unit %d / period %d / warmup %d\n\n",
		v.Config, v.Spec.Unit, v.Spec.Period, v.Spec.Warmup)
	fmt.Fprintf(&b, "%-10s %9s %9s %8s %8s %4s %8s  %s\n",
		"bench", "full", "sampled", "err", "ci95", "win", "speedup", "gate")
	for _, r := range v.Rows {
		gate := "pass"
		if !r.Pass {
			gate = "FAIL"
		}
		fmt.Fprintf(&b, "%-10s %9.4f %9.4f %7.2f%% %7.2f%% %4d %7.1fx  %s\n",
			r.Bench, r.FullIPC, r.SampledIPC, r.ErrPct, r.CI95Pct, r.Windows, r.Speedup, gate)
	}
	if v.Passed {
		b.WriteString("\nPASS: every benchmark's error is within its 95% confidence interval\n")
	} else {
		b.WriteString("\nFAIL: at least one benchmark's error exceeds its confidence interval\n")
	}
	return b.String()
}
