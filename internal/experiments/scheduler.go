package experiments

import (
	"context"

	"github.com/parallel-frontend/pfe/internal/shard"
)

// ShardStat describes one worker's share of a runSharded batch. It is the
// shared scheduler's per-worker statistic; the alias keeps the experiments
// API (cmd/pfe-bench's ShardObserver) stable now that the work-stealing
// pool lives in internal/shard, where the time-parallel simulation slicer
// uses it too.
type ShardStat = shard.Stat

// runSharded executes run(i) exactly once for every i in [0, n) on the
// shared deterministic work-stealing pool; see internal/shard.Run.
func runSharded(ctx context.Context, n, workers int, run func(idx int)) []ShardStat {
	return shard.Run(ctx, n, workers, run)
}

// runShardedHooked is runSharded with worker attribution and steal hooks,
// for span-traced sweeps; see internal/shard.RunHooked.
func runShardedHooked(ctx context.Context, n, workers int, h shard.Hooks, run func(worker, idx int)) []ShardStat {
	return shard.RunHooked(ctx, n, workers, h, run)
}
