package experiments

import (
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: two benchmarks, small budgets.
func fastOpts() Options {
	return Options{Warmup: 10_000, Measure: 30_000, Benchmarks: []string{"gzip", "mcf"}}
}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
}

func TestTable1(t *testing.T) {
	res, err := runTable1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "256 entry instruction window") {
		t.Error("Table 1 missing window row")
	}
}

func TestTable2(t *testing.T) {
	res, err := runTable2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table2Result)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AvgFragSize < 6 || row.AvgFragSize > 16 {
			t.Errorf("%s: fragment size %.2f implausible", row.Bench, row.AvgFragSize)
		}
		if row.PaperSize == 0 {
			t.Errorf("%s: no paper reference value", row.Bench)
		}
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := runFig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*SweepResult)
	w16, tc := r.Summary["W16"], r.Summary["TC"]
	pf2, pf4 := r.Summary["PF-2x8w"], r.Summary["PF-4x4w"]
	t.Logf("util: W16 %.2f TC %.2f PF-2x8w %.2f PF-4x4w %.2f", w16, tc, pf2, pf4)
	if !(w16 < tc && tc < pf2 && pf2 < pf4) {
		t.Errorf("Fig 4 ordering broken: %.2f %.2f %.2f %.2f", w16, tc, pf2, pf4)
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven sweep")
	}
	res, err := runFig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig7Result)
	small, large := r.At(256, 2), r.At(16384, 2)
	t.Logf("live-out accuracy: 256 entries %.3f, 16K entries %.3f", small, large)
	if large < small {
		t.Error("accuracy must not fall with more entries")
	}
	if large < 0.7 {
		t.Errorf("16K 2-way accuracy %.3f too low", large)
	}
}

func TestFig9SlopesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep")
	}
	o := Options{Warmup: 10_000, Measure: 30_000, Benchmarks: []string{"gcc"}}
	res, err := runFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig9Result)
	// On the large-footprint benchmark: TC must lose more from 128->8KB
	// than PR (the paper's latency-tolerance claim).
	tcLoss := 1 - r.At("TC", 8)/r.At("TC", 128)
	prLoss := 1 - r.At("PR-2x8w", 8)/r.At("PR-2x8w", 128)
	t.Logf("gcc: TC loss %.2f, PR loss %.2f", tcLoss, prLoss)
	if prLoss >= tcLoss {
		t.Errorf("PR loss %.2f not smaller than TC loss %.2f", prLoss, tcLoss)
	}
}

func TestConstructionClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := runConstruction(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "MEAN") {
		t.Errorf("missing summary row:\n%s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments")
	}
	for _, id := range []string{"delayed", "switchonmiss", "fragsel"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Warmup: 5_000, Measure: 15_000, Benchmarks: []string{"gzip"}}
		res, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.String() == "" {
			t.Errorf("%s: empty output", id)
		}
	}
}
