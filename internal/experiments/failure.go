package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/obs"
	"github.com/parallel-frontend/pfe/internal/obs/span"
	"github.com/parallel-frontend/pfe/internal/sim"
)

// FailureLog is a concurrency-safe collector of per-cell failure records,
// shared across every experiment of a pfe-bench run so the final report can
// list all of them.
type FailureLog struct {
	mu    sync.Mutex
	fails []obs.CellFailure
}

func (l *FailureLog) add(f obs.CellFailure) {
	l.mu.Lock()
	l.fails = append(l.fails, f)
	l.mu.Unlock()
}

// All returns a copy of the collected failures in arrival order.
func (l *FailureLog) All() []obs.CellFailure {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]obs.CellFailure(nil), l.fails...)
}

// Len reports how many failures have been collected.
func (l *FailureLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fails)
}

// cellOutcome is one cell's terminal state: exactly one of r (success or
// replay), fail (retries exhausted), or neither (never claimed — the sweep
// was cancelled first).
type cellOutcome struct {
	r    *pfe.Result
	fail *obs.CellFailure
}

// memoResultBytes is the accounted footprint of one memoized *pfe.Result
// in the artifact cache: the scalar fields plus the three pipeline
// histograms it references (a conservative flat estimate — results are tiny
// next to tapes, the cap exists for tapes and program images).
const memoResultBytes = 4096

// cellHash fingerprints everything that determines a cell's result: bench,
// config key, instruction budgets, and the full machine configuration
// (simulation is deterministic in these). Resume uses it to cross-check
// that a journaled result was produced by the same configuration before
// replaying it.
func cellHash(c *cell, ro pfe.RunOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%d|%+v", c.bench, c.key, ro.WarmupInsts, ro.MeasureInsts, c.machine)
	// Acceleration modes change the result, so they extend the
	// fingerprint — but only when in use, keeping every exact-mode hash
	// (and therefore existing journals) stable.
	if ro.Sample != nil {
		fmt.Fprintf(h, "|sample:%d/%d/%d", ro.Sample.Unit, ro.Sample.Period, ro.Sample.Warmup)
	}
	if ro.Slices > 0 {
		fmt.Fprintf(h, "|slices:%d/%d", ro.Slices, ro.SliceWarmup)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// runCell drives one cell to a terminal outcome: resume replay if the
// journal already has it, otherwise up to 1+MaxRetries attempts behind a
// recover barrier, with exponential backoff between attempts. Success is
// journaled (fsynced) before it is observable; exhaustion produces a
// structured failure, writing the watchdog diagnostic bundle to DumpDir
// when the error carries one.
//
// batch, worker, and idx scope the cell's span (batch may come from a nil
// tracer, in which case every span call is a free no-op): the cell span
// carries the memo/resume short-circuits, retry causes and backoff, and
// watchdog dump paths as typed annotations, with attempt spans nested under
// it and the run's phase spans under those.
func (o Options) runCell(ctx context.Context, c *cell, ro pfe.RunOptions, batch span.Batch, worker, idx int) cellOutcome {
	hash := cellHash(c, ro)
	cs := batch.StartCell(idx, c.bench, c.key, worker)
	defer cs.End()
	cs.Str("cell_hash", hash)
	if out, ok := o.replayCell(cs, c, hash); ok {
		return out
	}
	inject := o.Inject[c.bench+"/"+c.key]
	memoize := o.Artifacts != nil && c.run == nil && inject == ""
	if inject == "stall" {
		// Trip the forward-progress watchdog deterministically: a
		// threshold shorter than the pipeline fill depth means no cell can
		// commit before the watchdog fires.
		ro.NoProgressCycles = 2
		if ro.FlightRecorder == 0 {
			ro.FlightRecorder = 256
		}
	}

	var lastErr error
	var lastPanic bool
	var lastStack string
	attempts := 0
	for attempt := 1; attempt <= o.MaxRetries+1; attempt++ {
		if ctx.Err() != nil {
			break
		}
		attempts = attempt
		cellStart := time.Now()
		as := cs.Child(span.KindAttempt, "attempt")
		as.Int("attempt", int64(attempt))
		rc := ro
		rc.SpanParent = as.ID()
		r, err, panicked, stack := safeRun(c, rc, inject)
		if err == nil {
			as.End()
			if memoize {
				o.Artifacts.PutResult(hash, r, memoResultBytes)
			}
			// Journal before reporting: a record exists for every cell
			// an observer (and thus a report) has seen complete.
			o.journalCell(cs, newCellRecord(o.ExperimentID, c, hash, attempt, 0, r))
			if attempt > 1 {
				cs.Int("retries", int64(attempt-1))
			}
			if o.Observer != nil {
				o.Observer.Completed(c.bench, c.key, time.Since(cellStart), r)
			}
			return cellOutcome{r: r}
		}
		as.Str("cause", failureCause(err, panicked))
		as.Str("error", firstLine(err.Error()))
		as.End()
		lastErr, lastPanic, lastStack = err, panicked, stack
		if attempt <= o.MaxRetries {
			if o.Sim != nil {
				o.Sim.CellRetries.Inc()
			}
			bs := cs.Child(span.KindPhase, "retry-backoff")
			sleepBackoff(ctx, o.RetryBackoff, attempt)
			bs.End()
		}
	}
	if lastErr == nil {
		// Cancelled before the first attempt: not a failure, just unrun.
		return cellOutcome{}
	}
	f := &obs.CellFailure{
		Experiment: o.ExperimentID,
		Bench:      c.bench,
		Key:        c.key,
		Attempts:   attempts,
		Error:      lastErr.Error(),
		Panic:      lastPanic,
		Stack:      lastStack,
	}
	cs.Str("outcome", "failed")
	cs.Int("attempts", int64(attempts))
	var stall *sim.StallError
	if errors.As(lastErr, &stall) && stall.Diag != nil {
		cs.Str("cause", "watchdog-stall")
		path := o.dumpPath(c)
		if werr := stall.Diag.WriteFile(path); werr == nil {
			f.DumpPath = path
			cs.Str("stall_dump", path)
		}
	}
	if o.Sim != nil {
		o.Sim.CellFailures.Inc()
	}
	if o.Failures != nil {
		o.Failures.add(*f)
	}
	return cellOutcome{fail: f}
}

// replayCell resolves a cell without simulating when a previous run's
// journal (resume) or this run's result memo already holds it, annotating
// the open cell span with the provenance. ok=false means the cell must
// actually run. Shared between the in-process path (runCell) and the fabric
// coordinator (runCellsFabric), so both short-circuit identically.
func (o Options) replayCell(cs span.Span, c *cell, hash string) (cellOutcome, bool) {
	if o.Resume != nil {
		if r, ok := o.Resume.lookup(o.ExperimentID, c.bench, c.key, hash); ok {
			cs.Str("source", "resume-replay")
			if o.Observer != nil {
				o.Observer.Completed(c.bench, c.key, 0, r)
			}
			return cellOutcome{r: r}, true
		}
	}
	inject := o.Inject[c.bench+"/"+c.key]
	// Result memoization: the simulation is a pure function of everything
	// cellHash covers, so an identical cell completed earlier in this run
	// (e.g. by a previous experiment sharing the config grid) is served
	// as-is. Skipped for injected faults and test-hook cells, whose outcome
	// is not a function of the hash. Memoized completions are journaled like
	// fresh ones so a resumed run replays them under this experiment too.
	memoize := o.Artifacts != nil && c.run == nil && inject == ""
	if memoize {
		if v, info, ok := o.Artifacts.GetResultInfo(hash); ok {
			r := v.(*pfe.Result)
			// Keep the established "memo-hit" annotation for in-process
			// hits; a result inherited from the persistent store is marked
			// distinctly so warm-run provenance is traceable per cell.
			if info.Source == "disk-hit" {
				cs.Str("source", "memo-disk-hit")
			} else {
				cs.Str("source", "memo-hit")
			}
			o.journalCell(cs, newCellRecord(o.ExperimentID, c, hash, 0, 0, r))
			if o.Observer != nil {
				o.Observer.Completed(c.bench, c.key, 0, r)
			}
			return cellOutcome{r: r}, true
		}
	}
	return cellOutcome{}, false
}

// journalCell appends a completed-cell record to the crash-safe journal (a
// no-op without one), wrapped in a phase span so fsync stalls are visible in
// the sweep timeline.
func (o Options) journalCell(cs span.Span, rec any) {
	if o.Journal == nil {
		return
	}
	js := cs.Child(span.KindPhase, "journal-append")
	o.Journal.Append(rec)
	js.End()
}

// failureCause classifies an attempt error for span annotation.
func failureCause(err error, panicked bool) string {
	if panicked {
		return "panic"
	}
	var stall *sim.StallError
	if errors.As(err, &stall) {
		return "watchdog-stall"
	}
	return "error"
}

// firstLine truncates a (possibly multi-line) error message for annotation.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// safeRun executes one attempt behind a recover barrier, converting a panic
// anywhere in the simulator stack into an error plus the goroutine stack at
// the point of the panic.
func safeRun(c *cell, ro pfe.RunOptions, inject string) (r *pfe.Result, err error, panicked bool, stack string) {
	defer func() {
		if rec := recover(); rec != nil {
			r = nil
			err = fmt.Errorf("panic: %v", rec)
			panicked = true
			stack = string(debug.Stack())
		}
	}()
	switch {
	case inject == "panic":
		panic("injected cell fault (-inject mode panic)")
	case inject == "error":
		return nil, errors.New("injected cell fault (-inject mode error)"), false, ""
	case inject == "" || inject == "stall":
		// stall is applied by the caller (watchdog threshold); run normally.
	default:
		if _, ok := killEpochs(inject); ok {
			// kill is consumed by the fabric worker before safeRun; reaching
			// it here means the cell ran in-process, where a worker cannot be
			// killed.
			return nil, fmt.Errorf("experiments: inject mode %q applies to fabric workers (-local or -worker)", inject), false, ""
		}
		// An unknown mode must fail the cell loudly, never run it clean: a
		// typo in -inject would otherwise silently pass the fault drill it
		// was meant to perform.
		return nil, fmt.Errorf("experiments: unknown inject mode %q", inject), false, ""
	}
	if c.run != nil {
		r, err = c.run()
	} else {
		r, err = pfe.Run(c.bench, c.machine, ro)
	}
	return r, err, false, ""
}

// sleepBackoff waits base<<(attempt-1), capped at 5s, or until ctx is
// cancelled. base 0 means the 100ms default; negative disables the wait.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) {
	if base < 0 {
		return
	}
	if base == 0 {
		base = 100 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > 5*time.Second || d <= 0 {
		d = 5 * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// dumpPath names a stall diagnostic file uniquely per cell within DumpDir
// (or the OS temp dir).
func (o Options) dumpPath(c *cell) string {
	dir := o.DumpDir
	if dir == "" {
		dir = os.TempDir()
	}
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
				return r
			default:
				return '_'
			}
		}, s)
	}
	name := fmt.Sprintf("pfe-stall-%s-%s-%s.txt", clean(o.ExperimentID), clean(c.bench), clean(c.key))
	return filepath.Join(dir, name)
}
