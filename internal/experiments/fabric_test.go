package experiments

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	pfe "github.com/parallel-frontend/pfe"
	"github.com/parallel-frontend/pfe/internal/artifact"
	"github.com/parallel-frontend/pfe/internal/fabric"
	"github.com/parallel-frontend/pfe/internal/journal"
	"github.com/parallel-frontend/pfe/internal/program"
)

// startTestFleet wires o onto a coordinator with n loopback workers whose
// options are round-tripped through the wire config — exactly what a remote
// `pfe-bench -worker` would compute. skew mutates the worker-side options
// after the round trip (nil for a faithful fleet).
func startTestFleet(t *testing.T, o *Options, n int, fopts fabric.Options, skew func(*Options)) (*fabric.Coordinator, *fabric.LocalFleet) {
	t.Helper()
	cfg, err := o.FabricConfigJSON()
	if err != nil {
		t.Fatal(err)
	}
	fopts.Config = cfg
	coord := fabric.NewCoordinator(fopts)
	var fc FabricConfig
	if err := json.Unmarshal(cfg, &fc); err != nil {
		t.Fatal(err)
	}
	wopts := fc.ApplyTo(Options{DumpDir: t.TempDir()})
	if skew != nil {
		skew(&wopts)
	}
	runner := NewFabricRunner(wopts)
	fleet := fabric.StartLocal(coord, n, nil, func(id, baseURL string, client *http.Client) *fabric.Worker {
		return &fabric.Worker{ID: id, BaseURL: baseURL, Client: client,
			Run: runner.Run, Poll: 2 * time.Millisecond}
	})
	o.Fabric = &Fabric{C: coord}
	return coord, fleet
}

// journalResults decodes every cell record of a journal, keyed by
// (exp, bench, key), keeping the record the resume machinery would keep.
func journalResults(t *testing.T, path string) map[[3]string]cellRecord {
	t.Helper()
	out := map[[3]string]cellRecord{}
	epochs := map[[3]string]int64{}
	_, _, err := journal.Scan(path, func(payload []byte) error {
		var rec cellRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		k := [3]string{rec.Exp, rec.Bench, rec.Key}
		if cur, seen := epochs[k]; seen && rec.Epoch < cur {
			return nil
		}
		epochs[k] = rec.Epoch
		out[k] = rec
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFabricLocalEquivalence is the distributed determinism gate at the
// package level: the same figure sweep run in-process and through a loopback
// worker fleet must render identically and journal bit-identical results
// (the journal's JSON floats round-trip float64 exactly, so byte equality of
// the result payloads is bit equality of every metric).
func TestFabricLocalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	dir := t.TempDir()
	base := Options{Warmup: 2000, Measure: 5000,
		Benchmarks: []string{"gzip", "mcf"}, ExperimentID: "fig4"}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(o Options, jpath string) string {
		w, err := journal.Create(jpath)
		if err != nil {
			t.Fatal(err)
		}
		o.Journal = w
		res, err := e.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return res.String()
	}

	singleJ := filepath.Join(dir, "single.wal")
	single := runWith(base, singleJ)

	fab := base
	coord, fleet := startTestFleet(t, &fab, 3, fabric.Options{LeaseTTL: 2 * time.Second}, nil)
	fabricJ := filepath.Join(dir, "fabric.wal")
	distributed := runWith(fab, fabricJ)
	coord.Shutdown()
	if err := fleet.Close(); err != nil {
		t.Fatalf("fleet close: %v", err)
	}

	if single != distributed {
		t.Errorf("rendered output differs between in-process and fabric runs:\n--- single\n%s\n--- fabric\n%s", single, distributed)
	}
	sr, fr := journalResults(t, singleJ), journalResults(t, fabricJ)
	if len(sr) == 0 || len(sr) != len(fr) {
		t.Fatalf("journals hold %d vs %d cells; want identical non-empty sets", len(sr), len(fr))
	}
	for k, srec := range sr {
		frec, ok := fr[k]
		if !ok {
			t.Fatalf("fabric journal missing cell %v", k)
		}
		sb, _ := json.Marshal(srec.Result)
		fb, _ := json.Marshal(frec.Result)
		if string(sb) != string(fb) {
			t.Errorf("cell %v result not bit-identical:\nsingle: %s\nfabric: %s", k, sb, fb)
		}
		if srec.Hash != frec.Hash {
			t.Errorf("cell %v config hash skewed across processes: %s vs %s", k, srec.Hash, frec.Hash)
		}
	}
	if st := coord.Stats(); st.Completed != int64(len(sr)) || st.Failed != 0 {
		t.Errorf("coordinator stats = %+v, want %d clean completions", st, len(sr))
	}
}

// TestFabricChaosKillBitIdentical is the chaos acceptance gate: a worker
// killed mid-cell (kill injection — it abandons the lease without reporting)
// forces recovery through lease expiry, and the sweep's results remain
// bit-identical to an undisturbed in-process run.
func TestFabricChaosKillBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	dir := t.TempDir()
	base := Options{Warmup: 1000, Measure: 3000,
		Benchmarks: []string{"gzip"}, ExperimentID: "fig4"}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	cleanJ := filepath.Join(dir, "clean.wal")
	w, err := journal.Create(cleanJ)
	if err != nil {
		t.Fatal(err)
	}
	clean := base
	clean.Journal = w
	cleanRes, err := e.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	fab := base
	fab.Inject = map[string]string{"gzip/W16": "kill"}
	fab.Failures = &FailureLog{}
	coord, fleet := startTestFleet(t, &fab, 2,
		fabric.Options{LeaseTTL: 100 * time.Millisecond, MaxRetries: 2, RetryBackoff: -1}, nil)
	w2, err := journal.Create(filepath.Join(dir, "chaos.wal"))
	if err != nil {
		t.Fatal(err)
	}
	fab.Journal = w2
	chaosRes, err := e.Run(fab)
	coord.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()

	if cleanRes.String() != chaosRes.String() {
		t.Errorf("kill-recovered sweep differs from the undisturbed run:\n--- clean\n%s\n--- chaos\n%s",
			cleanRes, chaosRes)
	}
	cr, xr := journalResults(t, cleanJ), journalResults(t, filepath.Join(dir, "chaos.wal"))
	for k, crec := range cr {
		cb, _ := json.Marshal(crec.Result)
		xb, _ := json.Marshal(xr[k].Result)
		if string(cb) != string(xb) {
			t.Errorf("cell %v not bit-identical after kill recovery:\nclean: %s\nchaos: %s", k, cb, xb)
		}
	}
	st := coord.Stats()
	if st.Expiries < 1 || st.Requeues < 1 {
		t.Errorf("stats = %+v: the kill never exercised lease expiry", st)
	}
	if st.Failed != 0 || fab.Failures.Len() != 0 {
		t.Errorf("kill drill produced terminal failures: stats %+v, %d logged", st, fab.Failures.Len())
	}
	// The recovered cell's journal record carries the re-issued epoch.
	killed := xr[[3]string{"fig4", "gzip", "W16"}]
	if killed.Epoch < 2 {
		t.Errorf("recovered cell journaled under epoch %d, want >= 2 (the re-issued lease)", killed.Epoch)
	}
}

// TestFabricConfigSkewRefused pins fault-domain isolation: a worker whose
// budgets disagree with the coordinator computes different config hashes and
// must refuse its leases rather than contribute wrong rows — surfacing as a
// config-skew failure, not silent corruption.
func TestFabricConfigSkewRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Options{Warmup: 1000, Measure: 2000, Benchmarks: []string{"gzip"},
		ExperimentID: "fig4", Failures: &FailureLog{}}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	coord, fleet := startTestFleet(t, &o, 1,
		fabric.Options{LeaseTTL: time.Second, MaxRetries: 0, RetryBackoff: -1},
		func(w *Options) { w.Measure = 2001 }) // skewed binary stand-in
	_, err = e.Run(o)
	coord.Shutdown()
	if cerr := fleet.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err == nil || !strings.Contains(err.Error(), "config hash skew") {
		t.Fatalf("skewed fleet returned %v, want a config-hash-skew budget error", err)
	}
	if st := coord.Stats(); st.Completed != 0 || st.Failed == 0 {
		t.Errorf("stats = %+v: a skewed worker must complete nothing", st)
	}
}

// TestEnumerateCellsDeterministic pins the addressing contract that lets a
// lease travel as (exp, batch, index): two independent enumerations of the
// same sweep produce identical grids with identical config hashes.
func TestEnumerateCellsDeterministic(t *testing.T) {
	o := Options{Warmup: 2000, Measure: 5000, Benchmarks: []string{"gzip", "mcf"}}
	b1, err := enumerateCells("fig4", o)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := enumerateCells("fig4", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 || len(b1[0]) == 0 {
		t.Fatal("enumeration produced no cells")
	}
	if len(b1) != len(b2) {
		t.Fatalf("batch counts differ: %d vs %d", len(b1), len(b2))
	}
	ro := o.runOpts()
	for bi := range b1 {
		if len(b1[bi]) != len(b2[bi]) {
			t.Fatalf("batch %d sizes differ: %d vs %d", bi, len(b1[bi]), len(b2[bi]))
		}
		for i := range b1[bi] {
			c1, c2 := &b1[bi][i], &b2[bi][i]
			if c1.bench != c2.bench || c1.key != c2.key {
				t.Errorf("cell [%d][%d] identity differs: %s/%s vs %s/%s",
					bi, i, c1.bench, c1.key, c2.bench, c2.key)
			}
			if cellHash(c1, ro) != cellHash(c2, ro) {
				t.Errorf("cell [%d][%d] %s/%s hash differs across enumerations", bi, i, c1.bench, c1.key)
			}
		}
	}
}

// TestFabricRunnerRefusesForeignCells pins the remaining fault-domain
// checks: leases addressing cells that do not exist, or whose identity
// disagrees with the worker's grid, are refused with typed errors.
func TestFabricRunnerRefusesForeignCells(t *testing.T) {
	o := Options{Warmup: 2000, Measure: 5000, Benchmarks: []string{"gzip"}}
	f := NewFabricRunner(o)
	ctx := context.Background()

	_, _, cellErr, _ := f.Run(ctx, fabric.Lease{Cell: fabric.CellRef{
		Exp: "fig4", Batch: 99, Index: 0, Bench: "gzip", Key: "W16"}})
	if cellErr == nil || cellErr.Kind != "no-such-cell" {
		t.Errorf("out-of-range batch: %+v, want a no-such-cell refusal", cellErr)
	}

	_, _, cellErr, _ = f.Run(ctx, fabric.Lease{Cell: fabric.CellRef{
		Exp: "fig4", Batch: 0, Index: 0, Bench: "mcf", Key: "W16"}})
	if cellErr == nil || cellErr.Kind != "cell-mismatch" {
		t.Errorf("bench mismatch: %+v, want a cell-mismatch refusal", cellErr)
	}

	_, _, cellErr, _ = f.Run(ctx, fabric.Lease{Cell: fabric.CellRef{
		Exp: "nope", Batch: 0, Index: 0}})
	if cellErr == nil || cellErr.Kind != "enumerate" {
		t.Errorf("unknown experiment: %+v, want an enumerate refusal", cellErr)
	}
}

// TestParseInject pins the -inject grammar, in particular that unknown cell
// modes and chaos kinds are rejected instead of silently skipping the drill
// they were meant to run.
func TestParseInject(t *testing.T) {
	cells, rules, err := ParseInject("gzip/W16=panic, mcf/b=error,gcc/c=stall,gzip/a=kill:3,net/report=dup:2,net/heartbeat=blackhole")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"gzip/W16": "panic", "mcf/b": "error", "gcc/c": "stall", "gzip/a": "kill:3"}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v, want %v", cells, want)
	}
	for k, v := range want {
		if cells[k] != v {
			t.Errorf("cells[%q] = %q, want %q", k, cells[k], v)
		}
	}
	if len(rules) != 2 || rules[0].Kind != "dup" || rules[0].Times != 2 || rules[1].Endpoint != "heartbeat" {
		t.Errorf("rules = %+v, want dup:2 on report and blackhole on heartbeat", rules)
	}

	bad := []string{
		"gzip/W16=frobnicate", // unknown cell mode
		"gzip/a=kill:0",       // kill budget must be >= 1
		"gzipW16=panic",       // no bench/key separator
		"net/bogus=drop",      // unknown endpoint
		"net/report=smash",    // unknown chaos kind
		"",                    // nothing parsed
		"gzip/W16",            // no mode at all
	}
	for _, in := range bad {
		if _, _, err := ParseInject(in); err == nil {
			t.Errorf("ParseInject(%q) accepted, want an error", in)
		}
	}
}

// TestInProcessInjectRejectsUnknownAndKill pins the in-process side of the
// same satellite: a mode safeRun does not implement fails the cell loudly
// (kill with a pointer at the fabric, anything else as unknown) instead of
// silently running it clean.
func TestInProcessInjectRejectsUnknownAndKill(t *testing.T) {
	log := &FailureLog{}
	o := Options{
		Warmup: 1000, Measure: 2000, Workers: 1,
		RetryBackoff: -1, FailBudget: 2,
		Failures: log, ExperimentID: "inj3",
		Inject: map[string]string{
			"gzip/a": "kill",
			"mcf/b":  "frobnicate",
		},
	}
	cells := []cell{
		{bench: "gzip", machine: pfe.Preset(pfe.W16), key: "a"},
		{bench: "mcf", machine: pfe.Preset(pfe.W16), key: "b"},
	}
	if _, err := runCells(o, cells); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]string{}
	for _, f := range log.All() {
		byKey[f.Key] = f.Error
	}
	if msg := byKey["a"]; !strings.Contains(msg, "fabric workers") {
		t.Errorf("in-process kill inject error = %q, want a pointer at -local/-worker", msg)
	}
	if msg := byKey["b"]; !strings.Contains(msg, "unknown inject mode") {
		t.Errorf("unknown inject mode error = %q", msg)
	}
}

// TestResumeFencedEpochLoses pins satellite replay semantics directly on the
// journal: when a cell appears twice under different lease epochs, the
// higher epoch wins regardless of append order, while equal epochs keep
// last-wins (the acknowledged-most-recently rule).
func TestResumeFencedEpochLoses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(epoch int64, ipc float64) cellRecord {
		return cellRecord{Exp: "e", Bench: "gzip", Key: "k", Hash: "h", Epoch: epoch,
			Result: cellResult{Bench: "gzip", Config: "W16", IPC: ipc}}
	}
	// The accepted epoch-2 result lands first; the fenced zombie's epoch-1
	// record is appended later (it raced the acceptance) and must lose.
	for _, r := range []cellRecord{rec(2, 2.5), rec(1, 1.5)} {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	res, err := LoadResume(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells() != 1 || res.Records != 2 {
		t.Fatalf("resume index: %d cells from %d records, want 1 from 2", res.Cells(), res.Records)
	}
	r, ok := res.lookup("e", "gzip", "k", "h")
	if !ok || r.IPC != 2.5 {
		t.Fatalf("lookup = %+v (ok=%v), want the epoch-2 result (IPC 2.5)", r, ok)
	}

	// Same epoch twice: the later append wins (in-process duplicate rule,
	// unchanged by the epoch field).
	path2 := filepath.Join(t.TempDir(), "ties.wal")
	w2, err := journal.Create(path2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []cellRecord{rec(2, 2.5), rec(2, 3.5)} {
		if err := w2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w2.Close()
	res2, err := LoadResume(path2)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := res2.lookup("e", "gzip", "k", "h"); !ok || r.IPC != 3.5 {
		t.Fatalf("tie lookup = %+v (ok=%v), want last-wins (IPC 3.5)", r, ok)
	}
}

// TestResumeFencedDuplicateBitIdentical runs the fenced-duplicate scenario
// end to end: a journal holding every cell of a real sweep plus a poisoned
// lower-epoch duplicate must resume to output identical to the original run
// — the zombie record is invisible.
func TestResumeFencedDuplicateBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	dir := t.TempDir()
	o := Options{Warmup: 1000, Measure: 2000, Benchmarks: []string{"gzip"}, ExperimentID: "fig4"}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}

	j1 := filepath.Join(dir, "orig.wal")
	w, err := journal.Create(j1)
	if err != nil {
		t.Fatal(err)
	}
	run1 := o
	run1.Journal = w
	res1, err := e.Run(run1)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Rebuild the journal as a distributed run would have left it after a
	// fence race: every record under epoch 2, plus one poisoned epoch-1
	// duplicate appended last.
	var recs []cellRecord
	if _, _, err := journal.Scan(j1, func(p []byte) error {
		var rec cellRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return err
		}
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("original run journaled nothing")
	}
	j2 := filepath.Join(dir, "raced.wal")
	w2, err := journal.Create(j2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		rec.Epoch = 2
		if err := w2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	zombie := recs[0]
	zombie.Epoch = 1
	zombie.Result.IPC = -99 // would be unmissable in the rendered output
	if err := w2.Append(zombie); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	res, err := LoadResume(j2)
	if err != nil {
		t.Fatal(err)
	}
	run2 := o
	run2.Resume = res
	res2, err := e.Run(run2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed.Load() != int64(len(recs)) || res.Mismatched.Load() != 0 {
		t.Errorf("replayed %d/%d cells (%d mismatched); the whole sweep must replay",
			res.Replayed.Load(), len(recs), res.Mismatched.Load())
	}
	if res1.String() != res2.String() {
		t.Errorf("resumed output differs — the fenced duplicate leaked in:\n--- original\n%s\n--- resumed\n%s",
			res1, res2)
	}
}

// TestPrefetchWarmsRunArtifacts pins the compute/network overlap contract:
// Prefetch on a queued lease must populate exactly the cache keys the
// eventual Run asks for (program image, and the tape at Run's own budget), so
// the run opens both as memory hits. Skewed leases must warm nothing.
func TestPrefetchWarmsRunArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	o := Options{Warmup: 2000, Measure: 5000, Benchmarks: []string{"gzip"},
		ExperimentID: "fig4", Artifacts: artifact.New(0)}
	batches, err := enumerateCells("fig4", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 || len(batches[0]) == 0 {
		t.Fatal("fig4 enumerated no cells")
	}
	c := &batches[0][0]
	ro := o.runOpts()
	lease := fabric.Lease{Cell: fabric.CellRef{Exp: "fig4", Batch: 0, Index: 0,
		Bench: c.bench, Key: c.key, Hash: cellHash(c, ro)}}

	runner := NewFabricRunner(o)
	runner.Prefetch(lease)

	spec, err := program.SpecByName(c.bench)
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err := o.Artifacts.ProgramInfo(spec); err != nil || info.Source != "mem-hit" {
		t.Errorf("post-prefetch program lookup: %+v, %v — want a memory hit", info, err)
	}
	budget := uint64(ro.WarmupInsts+ro.MeasureInsts) + artifact.TapeSlack
	if _, info, err := o.Artifacts.TapeInfo(spec, budget); err != nil || info.Source != "mem-hit" {
		t.Errorf("post-prefetch tape lookup at Run's budget: %+v, %v — want a memory hit", info, err)
	}

	// A lease whose config hash skewed (a stale or foreign coordinator) must
	// warm nothing: prefetching under skew would mask the fault Run refuses.
	skewed := Options{Warmup: 2000, Measure: 5000, Benchmarks: []string{"gzip"},
		ExperimentID: "fig4", Artifacts: artifact.New(0)}
	bad := lease
	bad.Cell.Hash = "skewed"
	NewFabricRunner(skewed).Prefetch(bad)
	if s := skewed.Artifacts.Stats(); s.ProgramMisses+s.TapeMisses != 0 {
		t.Errorf("skewed lease warmed the cache: %+v", s)
	}

	// A memoized cell skips artifact warming entirely: Run will replay the
	// stored result without touching program or tape.
	memo := Options{Warmup: 2000, Measure: 5000, Benchmarks: []string{"gzip"},
		ExperimentID: "fig4", Artifacts: artifact.New(0)}
	memo.Artifacts.PutResult(lease.Cell.Hash, "done", 8)
	NewFabricRunner(memo).Prefetch(lease)
	if s := memo.Artifacts.Stats(); s.ProgramMisses+s.TapeMisses != 0 {
		t.Errorf("memoized lease warmed the cache: %+v", s)
	}
}
