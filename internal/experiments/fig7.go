package experiments

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/emu"
	"github.com/parallel-frontend/pfe/internal/frag"
	"github.com/parallel-frontend/pfe/internal/program"
	"github.com/parallel-frontend/pfe/internal/rename"
	"github.com/parallel-frontend/pfe/internal/stats"
)

// Fig7Result holds live-out predictor accuracy for each (entries, ways)
// point, averaged across the suite. Accuracy is the fraction of fragments
// whose complete live-out description (register bitmap and last-write
// bitmap) was predicted exactly; table misses count as mispredictions.
type Fig7Result struct {
	Entries  []int
	Ways     []int
	Accuracy map[[2]int]float64
}

// At returns the mean accuracy at (entries, ways).
func (r *Fig7Result) At(entries, ways int) float64 {
	return r.Accuracy[[2]int{entries, ways}]
}

// runFig7 sweeps the live-out predictor geometry over the true fragment
// stream of every benchmark — the predictor's accuracy does not depend on
// timing, so this experiment is trace-driven like the paper's own
// predictor characterization.
func runFig7(o Options) (fmt.Stringer, error) {
	entries := []int{256, 1024, 4096, 16384}
	ways := []int{1, 2, 4}
	budget := o.Measure
	if budget == 0 {
		budget = Default().Measure
	}

	r := &Fig7Result{Entries: entries, Ways: ways, Accuracy: map[[2]int]float64{}}
	sums := map[[2]int]float64{}
	for _, name := range o.benches() {
		spec, err := program.SpecByName(name)
		if err != nil {
			return nil, err
		}
		p, err := program.Build(spec)
		if err != nil {
			return nil, err
		}

		// One predictor per configuration, trained on the same stream.
		preds := map[[2]int]*rename.LiveOutPredictor{}
		correct := map[[2]int]int64{}
		for _, e := range entries {
			for _, w := range ways {
				preds[[2]int{e, w}] = rename.NewLiveOutPredictor(
					rename.LiveOutPredictorConfig{Entries: e, Ways: w})
			}
		}

		m := emu.New(p)
		var stream []frag.Dyn
		var total, frags int64
		for total < budget {
			for len(stream) < 2*frag.MaxLen && !m.Halted() {
				d, err := m.Step()
				if err != nil {
					return nil, err
				}
				stream = append(stream, frag.Dyn{PC: d.PC, Inst: d.Inst, Taken: d.Taken})
			}
			if len(stream) == 0 {
				break
			}
			n, id := frag.Split(stream)
			insts := make(rename.Insts, n)
			for i := 0; i < n; i++ {
				insts[i] = stream[i].Inst
			}
			actual := rename.ComputeLiveOuts(insts)
			for key, lp := range preds {
				if pred, ok := lp.Predict(id); ok &&
					rename.CheckPrediction(pred, insts) == rename.PredictionCorrect {
					correct[key]++
				}
				lp.Train(id, actual)
			}
			stream = stream[:copy(stream, stream[n:])]
			total += int64(n)
			frags++
		}
		for key := range preds {
			sums[key] += float64(correct[key]) / float64(frags)
		}
	}
	for key, s := range sums {
		r.Accuracy[key] = s / float64(len(o.benches()))
	}
	return r, nil
}

// String renders accuracy rows per associativity.
func (r *Fig7Result) String() string {
	header := []string{"Ways \\ Entries"}
	for _, e := range r.Entries {
		header = append(header, fmt.Sprintf("%d", e))
	}
	t := stats.NewTable("Figure 7: Live-Out Predictor Accuracy (mean across benchmarks)", header...)
	for _, w := range r.Ways {
		row := []string{fmt.Sprintf("%d-way", w)}
		for _, e := range r.Entries {
			row = append(row, fmt.Sprintf("%.3f", r.At(e, w)))
		}
		t.AddRow(row...)
	}
	return t.String() +
		"paper: space-limited; 2-way 4K entries reaches ~98%; 1->2 ways helps, 2->4 helps little\n"
}
