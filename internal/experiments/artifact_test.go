package experiments

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/artifact"
)

// TestSweepArtifactEquivalence runs the same experiment three ways — cold,
// with a fresh artifact cache (program + tape reuse within the sweep), and
// again on the warm cache (every cell served from the result memo) — and
// requires the rendered artifact to be identical each time. This is the
// sweep-level face of the cross-path golden guarantee.
func TestSweepArtifactEquivalence(t *testing.T) {
	base := CI()
	base.Benchmarks = []string{"gzip", "mcf"}
	fig8, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}

	cold, err := fig8.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cached := base
	cached.Artifacts = artifact.New(0)
	warm1, err := fig8.Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm1.String() {
		t.Fatalf("cached sweep diverged from cold sweep:\ncold:\n%s\ncached:\n%s", cold, warm1)
	}
	s := cached.Artifacts.Stats()
	if s.ResultHits != 0 {
		t.Fatalf("first sweep has no duplicate cells, yet %d result hits", s.ResultHits)
	}
	if s.ProgramMisses != 2 || s.TapeMisses != 2 {
		t.Fatalf("two benchmarks should build two programs and two tapes, got %d / %d misses",
			s.ProgramMisses, s.TapeMisses)
	}

	warm2, err := fig8.Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm2.String() {
		t.Fatalf("memoized sweep diverged from cold sweep:\ncold:\n%s\nmemoized:\n%s", cold, warm2)
	}
	s2 := cached.Artifacts.Stats()
	if got := s2.ResultHits - s.ResultHits; got != 14 {
		// fig8: 7 configs × 2 benches, all served from the memo.
		t.Fatalf("second sweep served %d cells from the result memo, want 14", got)
	}
}
