package program

import (
	"strings"
	"testing"
)

// TestBuildOverflowIsErrorNotPanic pins the generator's failure contract: a
// spec whose jump tables cannot fit the data-segment region must come back
// from Build as an error (which the experiment harness turns into a cell
// failure), never as a panic that would abort a whole sweep.
func TestBuildOverflowIsErrorNotPanic(t *testing.T) {
	spec := TestSpec()
	spec.Name = "overflow"
	// Each switch allocates SwitchWays*4 bytes of jump table; the region
	// holds heapDataOff-jumpTableBase bytes. Force every worker to emit a
	// maximal switch so the second one overflows.
	spec.SwitchWays = 16384 // 64 KiB of table per switch
	spec.SwitchFrac = 1.0
	spec.IndirectCallFrac = 0
	spec.Workers = 6

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Build panicked: %v", r)
		}
	}()
	p, err := Build(spec)
	if err == nil {
		t.Fatalf("Build succeeded (%d insts) on an overflowing spec", len(p.Code))
	}
	if !strings.Contains(err.Error(), "jump-table region overflow") {
		t.Errorf("error %q does not describe the overflow", err)
	}
}

// TestBuildUnrelatedPanicsStillPropagate makes sure the recover in Build is
// scoped to generator errors only: checkSpec rejections still flow as plain
// errors, and valid specs still build.
func TestBuildValidSpecUnaffectedByRecover(t *testing.T) {
	if _, err := Build(TestSpec()); err != nil {
		t.Fatalf("valid spec failed: %v", err)
	}
	bad := TestSpec()
	bad.Name = ""
	if _, err := Build(bad); err == nil {
		t.Fatal("nameless spec accepted")
	}
}
