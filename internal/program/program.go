// Package program generates the deterministic synthetic benchmark suite that
// stands in for the paper's SPEC CPU2000 integer binaries.
//
// The paper's experiments depend on statistical properties of the dynamic
// instruction stream — fragment length (Table 2), control-flow
// predictability, instruction-cache footprint, and indirect-branch density —
// not on what the programs compute. Each generated benchmark is a real
// program in the repository's ISA: functions with prologues/epilogues, loops
// with stack-held counters, data-dependent branches reading a seeded entropy
// array, switch statements through jump tables in the data segment, and
// direct/indirect calls. Per-benchmark parameters (Spec) are calibrated so
// the suite reproduces the paper's reported workload characteristics.
package program

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// Address-space layout. The layout is fixed and shared by every benchmark:
// code low, data (entropy + jump tables + heap) in the middle, stack high
// and growing down. All constants are reachable by the two-instruction
// lui/ori materialization sequence (lui shifts by 13 bits).
const (
	CodeBase    = 0x0000_2000 // first instruction byte
	DataBase    = 0x0100_0000 // entropy array lives here
	EntropySize = 8192        // bytes; 2048 words, mask fits a 14-bit immediate
	StackBase   = 0x0200_0000 // initial stack pointer (grows down)
	StackSize   = 1 << 20     // modelled stack extent

	// LuiShift mirrors isa.LuiShift for address-materialization math.
	LuiShift = isa.LuiShift
)

// Program is a fully linked synthetic benchmark: a byte-accurate code image,
// an initialised data segment, and the metadata the emulator and simulator
// need to run it.
type Program struct {
	Name  string // benchmark name (e.g. "gcc")
	Input string // the paper's input set for the same benchmark ("test"/"train")

	Code    []isa.Inst // decoded instructions, index = (PC-CodeBase)/4
	Image   []byte     // encoded code image starting at CodeBase
	EntryPC uint64     // address of the first instruction of main

	Data     []byte // initialised data segment starting at DataBase
	DataSize int    // total data extent in bytes (entropy+tables+heap)

	Spec Spec // the generator parameters that produced this program
}

// InstAt returns the decoded instruction at byte address pc and whether the
// address falls inside the code image. Wrong-path fetch can run beyond the
// image; callers treat !ok as an invalid instruction.
func (p *Program) InstAt(pc uint64) (isa.Inst, bool) {
	if pc < CodeBase || pc%isa.InstBytes != 0 {
		return isa.Inst{}, false
	}
	idx := (pc - CodeBase) / isa.InstBytes
	if idx >= uint64(len(p.Code)) {
		return isa.Inst{}, false
	}
	return p.Code[idx], true
}

// CodeBytes returns the size of the code image in bytes (the benchmark's
// static instruction footprint).
func (p *Program) CodeBytes() int { return len(p.Image) }

// NumInsts returns the static instruction count.
func (p *Program) NumInsts() int { return len(p.Code) }

// StaticMix counts static instructions by functional-unit class; used by
// cmd/pfe-trace and by tests that validate generator output.
func (p *Program) StaticMix() map[isa.Class]int {
	mix := make(map[isa.Class]int, int(isa.NumClasses))
	for _, in := range p.Code {
		mix[in.Classify()]++
	}
	return mix
}

// Validate performs structural checks on the linked program: every direct
// control transfer must land inside the code image on an instruction
// boundary, and the image must round-trip through the encoder. The generator
// calls this before returning a program.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %s: empty code", p.Name)
	}
	if p.EntryPC < CodeBase || p.EntryPC >= CodeBase+uint64(len(p.Code)*isa.InstBytes) {
		return fmt.Errorf("program %s: entry PC %#x outside code", p.Name, p.EntryPC)
	}
	limit := int64(len(p.Code))
	for i, in := range p.Code {
		switch {
		case in.Op == isa.OpInvalid:
			return fmt.Errorf("program %s: invalid instruction at index %d", p.Name, i)
		case in.IsDirectJump():
			tgt := int64(in.Imm) - CodeBase/isa.InstBytes
			if tgt < 0 || tgt >= limit {
				return fmt.Errorf("program %s: jump at %d targets word %d outside code", p.Name, i, tgt)
			}
		case in.IsCondBranch():
			tgt := int64(i) + 1 + int64(in.Imm)
			if tgt < 0 || tgt >= limit {
				return fmt.Errorf("program %s: branch at %d targets %d outside code", p.Name, i, tgt)
			}
		}
	}
	back := isa.DecodeImage(p.Image)
	if len(back) != len(p.Code) {
		return fmt.Errorf("program %s: image/code length mismatch", p.Name)
	}
	for i := range back {
		if back[i] != p.Code[i] {
			return fmt.Errorf("program %s: image mismatch at %d: %v vs %v", p.Name, i, back[i], p.Code[i])
		}
	}
	return nil
}
