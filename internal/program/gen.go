package program

import (
	"fmt"
	"math/rand"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// Spec parameterizes one synthetic benchmark. The fields map directly onto
// the workload characteristics the paper's evaluation depends on: BlockLen
// controls fragment length (Table 2), Workers/constructs control static code
// footprint (Fig 8/9 cache sensitivity), BranchBias and HammockFrac control
// control-flow predictability, SwitchFrac/IndirectCallFrac control
// indirect-branch density, and HeapKB controls the data working set.
type Spec struct {
	Name  string // benchmark name, matching the paper's Table 2
	Input string // the input set the paper used for this benchmark
	Seed  int64  // generator seed; everything downstream is deterministic

	Workers    int    // worker functions (the bulk of the code footprint)
	Helpers    int    // leaf helper functions callable from workers
	Constructs [2]int // min,max constructs per worker function
	// HelperConstructs bounds constructs per helper ({0,0} means the
	// default of 1..3). Short helpers raise return density, the main
	// lever for short average fragments (mcf).
	HelperConstructs [2]int
	BlockLen         [2]int // min,max straight-line body instructions per block
	LoopTrip         [2]int // min,max static loop trip counts

	LoopFrac    float64 // fraction of constructs that are counted loops
	HammockFrac float64 // fraction that are if/else hammocks on entropy data
	CallFrac    float64 // fraction that are calls to helper functions
	// The remainder of the construct budget is straight-line blocks.

	BranchBias float64 // P(common fall-through arm) for hammock branches
	SwitchFrac float64 // probability a worker ends with a switch construct
	SwitchWays int     // jump-table fanout (power of two)

	IndirectCallFrac float64 // fraction of driver->worker calls made indirect

	MemFrac float64 // fraction of body instructions that are memory ops
	FPFrac  float64 // fraction of body instructions that are FP arithmetic
	MulFrac float64 // fraction of body instructions that are integer multiplies

	// ChaseFrac is the probability that a memory-op slot becomes a
	// pointer-chase: a serial chain of ChaseDepth dependent loads whose
	// addresses come from loaded (seeded-random) heap values, spanning
	// the whole heap. This is what makes mcf memory-latency-bound the
	// way the real benchmark is.
	ChaseFrac  float64
	ChaseDepth int

	Phases          int // static phases in main (distinct code working sets)
	WorkersPerPhase int // workers called per driver invocation
	PhaseStride     int // worker-window shift between consecutive phases
	PhaseIters      int // iterations of each phase loop (≤ 8191)

	HeapKB int // data heap extent touched by body memory ops
}

// Scaled returns a copy of the spec with PhaseIters scaled by f (minimum 1).
// Tests use small scales so whole programs run to completion quickly.
func (s Spec) Scaled(f float64) Spec {
	n := int(float64(s.PhaseIters) * f)
	if n < 1 {
		n = 1
	}
	s.PhaseIters = n
	return s
}

// Reserved registers (software convention baked into the generator):
//
//	r26 entropy-array base, r27 entropy byte index (word aligned),
//	r28/r29 codegen temporaries, r30 stack pointer, r31 link register.
//
// r1..r25 are the scratch pool for generated dataflow.
const (
	regEntBase = isa.Reg(26)
	regEntIdx  = isa.Reg(27)
	regT1      = isa.Reg(28)
	regT2      = isa.Reg(29)
	// regChase holds the global pointer-chase cursor: every chase link
	// in the program extends ONE serial chain through the heap, the
	// defining memory behaviour of pointer codes.
	regChase = isa.Reg(25)

	numScratch = 24 // r1..r24

	jumpTableBase = EntropySize // data offset where jump tables start
	heapDataOff   = 128 << 10   // data offset where the heap starts
	entIdxMask    = EntropySize - 4

	frameSize   = 32 // bytes per stack frame
	linkSlot    = 0  // frame offset holding the saved link register
	counterSlot = 8  // frame offset holding the innermost loop counter
)

// gen carries generator state across one Build call.
type gen struct {
	spec Spec
	rng  *rand.Rand
	a    *asm

	nextTable  int // next free jump-table byte offset in the data segment
	heapChunks int
	labelSeq   int
}

// genError carries a generation failure up from deep inside the emitters
// (which have no error returns) to Build's API boundary, where it becomes an
// ordinary error. Any other panic value is re-raised untouched.
type genError struct{ err error }

// Build generates, links and validates the benchmark described by spec. All
// failure modes — a malformed spec, a layout overflow during generation, a
// link or encode error — come back as errors, never as panics: a bad spec
// must cost one experiment cell, not the whole process.
func Build(spec Spec) (p *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			ge, ok := r.(genError)
			if !ok {
				panic(r)
			}
			p, err = nil, ge.err
		}
	}()
	if err := checkSpec(spec); err != nil {
		return nil, err
	}
	g := &gen{
		spec:      spec,
		rng:       rand.New(rand.NewSource(spec.Seed)),
		a:         newAsm(),
		nextTable: jumpTableBase,
	}
	g.heapChunks = spec.HeapKB * 1024 / (1 << LuiShift)
	if g.heapChunks < 1 {
		g.heapChunks = 1
	}

	// Layout: main, drivers, workers, helpers. main comes first so the
	// entry PC is CodeBase.
	g.genMain()
	for ph := 0; ph < spec.Phases; ph++ {
		g.genDriver(ph)
	}
	for w := 0; w < spec.Workers; w++ {
		g.genWorker(w)
	}
	for h := 0; h < spec.Helpers; h++ {
		g.genHelper(h)
	}

	dataSize := heapDataOff + spec.HeapKB*1024
	data := make([]byte, dataSize)
	fillEntropy(data[:EntropySize], spec.Seed)
	fillHeap(data[heapDataOff:], spec.Seed)

	if err := g.a.link(data); err != nil {
		return nil, fmt.Errorf("program %s: %w", spec.Name, err)
	}
	img, err := isa.EncodeAll(g.a.insts)
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", spec.Name, err)
	}
	p = &Program{
		Name:     spec.Name,
		Input:    spec.Input,
		Code:     g.a.insts,
		Image:    img,
		EntryPC:  CodeBase,
		Data:     data,
		DataSize: dataSize,
		Spec:     spec,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for callers with hard-coded specs (the suite, tests).
func MustBuild(spec Spec) *Program {
	p, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func checkSpec(s Spec) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("program: spec needs a name")
	case s.Workers < 1 || s.Helpers < 1:
		return fmt.Errorf("program %s: need at least one worker and helper", s.Name)
	case s.Phases < 1 || s.WorkersPerPhase < 1:
		return fmt.Errorf("program %s: need at least one phase and worker per phase", s.Name)
	case s.PhaseIters < 1 || s.PhaseIters > 8191:
		return fmt.Errorf("program %s: PhaseIters %d out of range [1,8191]", s.Name, s.PhaseIters)
	case s.SwitchWays != 0 && (s.SwitchWays&(s.SwitchWays-1)) != 0:
		return fmt.Errorf("program %s: SwitchWays must be a power of two", s.Name)
	case s.BlockLen[0] < 1 || s.BlockLen[1] < s.BlockLen[0]:
		return fmt.Errorf("program %s: bad BlockLen range", s.Name)
	case s.LoopTrip[0] < 1 || s.LoopTrip[1] < s.LoopTrip[0] || s.LoopTrip[1] > 8191:
		return fmt.Errorf("program %s: bad LoopTrip range", s.Name)
	case s.HeapKB < 8:
		return fmt.Errorf("program %s: HeapKB must be at least 8", s.Name)
	}
	return nil
}

// fillEntropy fills the entropy array with seeded uniform words in [0,8192).
// Branch sites compare these against a bias threshold with slti.
func fillEntropy(dst []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed_e27_0))
	for off := 0; off+4 <= len(dst); off += 4 {
		v := uint32(rng.Intn(8192))
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
}

// fillHeap seeds the heap with random words so pointer-chase loads read
// real (deterministic) link values.
func fillHeap(dst []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x4ea9_c4a5e))
	for off := 0; off+4 <= len(dst); off += 4 {
		v := uint32(rng.Int63())
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
}

func (g *gen) newLabel(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

func (g *gen) intn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// ---- top-level program structure ----

// genMain emits the entry function: establish the stack and entropy
// registers, then run each phase loop in turn, then halt.
func (g *gen) genMain() {
	a := g.a
	a.label("main")
	a.loadAddr(isa.RegSP, StackBase)
	a.loadAddr(regEntBase, DataBase)
	a.loadConst(regEntIdx, 0)
	a.loadAddr(regChase, DataBase+heapDataOff)
	a.opImm(isa.OpAddi, isa.RegSP, isa.RegSP, -frameSize)
	for p := 0; p < g.spec.Phases; p++ {
		head := fmt.Sprintf("phase_%d", p)
		a.loadConst(regT1, int32(g.spec.PhaseIters))
		a.emit(isa.Inst{Op: isa.OpSw, Rs1: isa.RegSP, Rs2: regT1, Imm: counterSlot})
		a.label(head)
		a.jump(isa.OpJal, driverLabel(p))
		g.emitCounterDecrement(head)
	}
	a.emit(isa.Inst{Op: isa.OpHalt})
}

// emitCounterDecrement loads the frame counter, decrements, stores it back
// and loops to head while non-zero — the canonical loop latch shape used
// everywhere so counters survive arbitrary callee clobbering.
func (g *gen) emitCounterDecrement(head string) {
	a := g.a
	a.opImm(isa.OpLw, regT1, isa.RegSP, counterSlot)
	a.opImm(isa.OpAddi, regT1, regT1, -1)
	a.emit(isa.Inst{Op: isa.OpSw, Rs1: isa.RegSP, Rs2: regT1, Imm: counterSlot})
	a.branch(isa.OpBne, regT1, isa.RegZero, head)
}

func driverLabel(p int) string { return fmt.Sprintf("driver_%d", p) }
func workerLabel(w int) string { return fmt.Sprintf("worker_%d", w) }
func helperLabel(h int) string { return fmt.Sprintf("helper_%d", h) }

// genDriver emits the phase-p driver: it calls each worker in the phase's
// window once, some calls optionally made through an indirect-call table
// (function-pointer-style control flow, as in perl).
func (g *gen) genDriver(p int) {
	a := g.a
	a.label(driverLabel(p))
	g.prologue()

	s := g.spec
	window := make([]int, s.WorkersPerPhase)
	for i := range window {
		window[i] = (p*s.PhaseStride + i) % s.Workers
	}

	// Indirect-call table for this phase, sized to the next power of two
	// ≥ the window, filled by repeating the window.
	tsize := 1
	for tsize < len(window) {
		tsize <<= 1
	}
	var tableOff int
	useIndirect := s.IndirectCallFrac > 0
	if useIndirect {
		tableOff = g.allocTable(tsize)
		for i := 0; i < tsize; i++ {
			a.tableWord(tableOff+i*4, workerLabel(window[i%len(window)]))
		}
	}

	for _, w := range window {
		if useIndirect && g.rng.Float64() < s.IndirectCallFrac {
			g.emitIndirectCall(tableOff, tsize)
		} else {
			a.jump(isa.OpJal, workerLabel(w))
		}
	}
	g.epilogue()
}

// emitIndirectCall picks a table slot from the entropy stream and calls
// through it: the classic switch-on-function-pointer shape.
func (g *gen) emitIndirectCall(tableOff, tsize int) {
	a := g.a
	g.emitEntropyLoad(regT2)
	a.opImm(isa.OpAndi, regT2, regT2, int32(tsize-1))
	a.opImm(isa.OpSlli, regT2, regT2, 2)
	a.loadAddr(regT1, uint32(DataBase+tableOff))
	a.op3(isa.OpAdd, regT1, regT1, regT2)
	a.opImm(isa.OpLw, regT1, regT1, 0)
	a.op3(isa.OpJalr, isa.RegLink, regT1, 0)
}

// genWorker emits one worker function: a prologue, a run of constructs
// (loops, hammocks, straight blocks, helper calls), an optional switch, and
// an epilogue.
func (g *gen) genWorker(w int) {
	a := g.a
	a.label(workerLabel(w))
	g.prologue()

	s := g.spec
	n := g.intn(s.Constructs[0], s.Constructs[1])
	for i := 0; i < n; i++ {
		g.genConstruct(true)
	}
	if g.rng.Float64() < s.SwitchFrac && s.SwitchWays > 1 {
		g.genSwitch()
	}
	g.epilogue()
}

// genHelper emits a leaf function: shorter, no calls, no switches.
func (g *gen) genHelper(h int) {
	a := g.a
	a.label(helperLabel(h))
	g.prologue()
	lo, hi := g.spec.HelperConstructs[0], g.spec.HelperConstructs[1]
	if hi == 0 {
		lo, hi = 1, 3
	}
	n := g.intn(lo, hi)
	for i := 0; i < n; i++ {
		g.genConstruct(false)
	}
	g.epilogue()
}

func (g *gen) prologue() {
	a := g.a
	a.opImm(isa.OpAddi, isa.RegSP, isa.RegSP, -frameSize)
	a.emit(isa.Inst{Op: isa.OpSw, Rs1: isa.RegSP, Rs2: isa.RegLink, Imm: linkSlot})
}

func (g *gen) epilogue() {
	a := g.a
	a.opImm(isa.OpLw, isa.RegLink, isa.RegSP, linkSlot)
	a.opImm(isa.OpAddi, isa.RegSP, isa.RegSP, frameSize)
	a.op3(isa.OpJr, 0, isa.RegLink, 0)
}

// genConstruct emits one randomly chosen construct. Calls are only allowed
// from workers (allowCalls) to keep the static call graph acyclic:
// main -> drivers -> workers -> helpers.
func (g *gen) genConstruct(allowCalls bool) {
	s := g.spec
	if g.rng.Float64() < s.ChaseFrac {
		// Pointer-chase on the common path: each one extends the
		// global serial chain through the heap, so a high ChaseFrac
		// makes the benchmark memory-latency-bound (mcf).
		g.emitPointerChase()
	}
	r := g.rng.Float64()
	switch {
	case r < s.LoopFrac:
		g.genLoop(allowCalls)
	case r < s.LoopFrac+s.HammockFrac:
		g.genHammock()
	case allowCalls && r < s.LoopFrac+s.HammockFrac+s.CallFrac:
		g.a.jump(isa.OpJal, helperLabel(g.rng.Intn(s.Helpers)))
	default:
		g.genStraight(g.blockLen())
	}
}

func (g *gen) blockLen() int { return g.intn(g.spec.BlockLen[0], g.spec.BlockLen[1]) }

// genLoop emits a counted loop whose counter lives in the stack frame so
// that calls inside the body cannot clobber it. The trip count is fixed at
// generation time, making the back-edge strongly biased and learnable.
func (g *gen) genLoop(allowCalls bool) {
	a := g.a
	trip := g.intn(g.spec.LoopTrip[0], g.spec.LoopTrip[1])
	head := g.newLabel("loop")

	a.loadConst(regT1, int32(trip))
	a.emit(isa.Inst{Op: isa.OpSw, Rs1: isa.RegSP, Rs2: regT1, Imm: counterSlot})
	a.label(head)

	g.genStraight(g.blockLen())
	if g.rng.Float64() < g.spec.HammockFrac {
		g.genHammock()
	}
	// Up to two call sites per iteration: call-dense benchmarks (mcf,
	// parser) get their short, return-terminated fragments from loop
	// bodies, which dominate dynamic instruction counts.
	for j := 0; j < 2; j++ {
		if allowCalls && g.rng.Float64() < g.spec.CallFrac {
			a.jump(isa.OpJal, helperLabel(g.rng.Intn(g.spec.Helpers)))
		}
	}
	g.emitCounterDecrement(head)
}

// genHammock emits an if/else diamond whose condition is a fresh entropy
// word. As compilers arrange real code, the common arm falls through: the
// branch to the else arm is taken with probability 1-BranchBias, so a
// BranchBias of 0.85 yields a branch that is 85% not-taken.
func (g *gen) genHammock() {
	a := g.a
	elseL := g.newLabel("else")
	joinL := g.newLabel("join")

	g.emitEntropyBranch(elseL, 1-g.spec.BranchBias)
	g.genStraight(g.blockLen())
	a.jump(isa.OpJ, joinL)
	a.label(elseL)
	g.genStraight(g.blockLen())
	a.label(joinL)
}

// emitEntropyLoad loads the next entropy word into rd and advances the
// entropy index with wraparound.
func (g *gen) emitEntropyLoad(rd isa.Reg) {
	a := g.a
	a.op3(isa.OpAdd, regT1, regEntBase, regEntIdx)
	a.opImm(isa.OpLw, rd, regT1, 0)
	a.opImm(isa.OpAddi, regEntIdx, regEntIdx, 4)
	a.opImm(isa.OpAndi, regEntIdx, regEntIdx, entIdxMask)
}

// emitEntropyBranch branches to target with probability bias: entropy words
// are uniform in [0,8192), so (word < bias*8192) is true with P≈bias.
func (g *gen) emitEntropyBranch(target string, bias float64) {
	a := g.a
	thresh := int32(bias * 8192)
	if thresh < 1 {
		thresh = 1
	}
	if thresh > 8191 {
		thresh = 8191
	}
	g.emitEntropyLoad(regT2)
	a.opImm(isa.OpSlti, regT1, regT2, thresh)
	a.branch(isa.OpBne, regT1, isa.RegZero, target)
}

// genSwitch emits a k-way computed jump through a data-segment jump table,
// selected by entropy, with k small case blocks converging on a join label.
func (g *gen) genSwitch() {
	a := g.a
	k := g.spec.SwitchWays
	tableOff := g.allocTable(k)
	joinL := g.newLabel("swjoin")

	caseLabels := make([]string, k)
	for i := range caseLabels {
		caseLabels[i] = g.newLabel("case")
		a.tableWord(tableOff+i*4, caseLabels[i])
	}

	g.emitEntropyLoad(regT2)
	a.opImm(isa.OpAndi, regT2, regT2, int32(k-1))
	a.opImm(isa.OpSlli, regT2, regT2, 2)
	a.loadAddr(regT1, uint32(DataBase+tableOff))
	a.op3(isa.OpAdd, regT1, regT1, regT2)
	a.opImm(isa.OpLw, regT1, regT1, 0)
	a.op3(isa.OpJr, 0, regT1, 0)

	for _, cl := range caseLabels {
		a.label(cl)
		g.genStraight(g.intn(2, g.spec.BlockLen[1]))
		a.jump(isa.OpJ, joinL)
	}
	a.label(joinL)
}

// allocTable reserves k word slots in the jump-table region of the data
// segment and returns the byte offset of the first slot.
func (g *gen) allocTable(k int) int {
	off := g.nextTable
	g.nextTable += k * 4
	if g.nextTable > heapDataOff {
		panic(genError{fmt.Errorf("program %s: jump-table region overflow (%d bytes > %d available)",
			g.spec.Name, g.nextTable-jumpTableBase, heapDataOff-jumpTableBase)})
	}
	return off
}

// genStraight emits n straight-line body instructions: a seeded mix of
// integer ALU, multiplies, FP arithmetic and heap loads/stores with real
// register dataflow (each op sources recently produced values).
func (g *gen) genStraight(n int) {
	a := g.a
	s := g.spec
	// Recent destinations feed later sources within the block. Seeded
	// with the always-live entropy registers so the first ops have
	// sensible inputs.
	recent := [4]isa.Reg{regEntBase, regEntIdx, regEntBase, regEntIdx}
	ri := 0
	pick := func() isa.Reg { r := recent[g.rng.Intn(len(recent))]; return r }
	scratch := func() isa.Reg { return isa.Reg(1 + g.rng.Intn(numScratch)) }
	record := func(r isa.Reg) { recent[ri%len(recent)] = r; ri++ }

	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < s.MemFrac:
			g.emitHeapMemOp(pick, scratch, record)
			i++ // heap ops cost two instructions (lui + access)
		case r < s.MemFrac+s.FPFrac:
			fd := isa.FPBase + isa.Reg(g.rng.Intn(isa.NumFPRegs))
			fa := isa.FPBase + isa.Reg(g.rng.Intn(isa.NumFPRegs))
			fb := isa.FPBase + isa.Reg(g.rng.Intn(isa.NumFPRegs))
			ops := [...]isa.Op{isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFneg}
			a.op3(ops[g.rng.Intn(len(ops))], fd, fa, fb)
		case r < s.MemFrac+s.FPFrac+s.MulFrac:
			rd := scratch()
			a.op3(isa.OpMul, rd, pick(), pick())
			record(rd)
		default:
			g.emitALUOp(pick, scratch, record)
		}
	}
}

func (g *gen) emitALUOp(pick func() isa.Reg, scratch func() isa.Reg, record func(isa.Reg)) {
	a := g.a
	rd := scratch()
	if g.rng.Intn(2) == 0 {
		ops := [...]isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt}
		a.op3(ops[g.rng.Intn(len(ops))], rd, pick(), pick())
	} else {
		ops := [...]isa.Op{isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlli, isa.OpSrli}
		op := ops[g.rng.Intn(len(ops))]
		imm := int32(g.rng.Intn(256))
		if op == isa.OpSlli || op == isa.OpSrli {
			imm = int32(g.rng.Intn(16))
		}
		a.opImm(op, rd, pick(), imm)
	}
	record(rd)
}

// emitPointerChase emits a serial chain of dependent loads: each loaded
// word (seeded-random heap data) is masked, scaled and added to the heap
// base to form the next load's address. The chain's addresses span up to
// 2 MB of heap, so on large-heap benchmarks every link is a likely cache
// miss that cannot overlap with the next — the memory-latency-bound
// behaviour of pointer codes like mcf. Returns the instruction count.
func (g *gen) emitPointerChase() int {
	a := g.a
	depth := g.spec.ChaseDepth
	if depth <= 0 {
		depth = 2
	}
	span := g.spec.HeapKB * 1024
	if span > 2<<20 {
		span = 2 << 20
	}
	// Scale factor: value in [0,8192) << shift stays inside the heap.
	shift := int32(0)
	for (8192 << (shift + 1)) <= span {
		shift++
	}
	base := uint32(DataBase + heapDataOff)
	n := 0
	rV := regT2
	for d := 0; d < depth; d++ {
		a.opImm(isa.OpLw, rV, regChase, 0)
		// Mix in the entropy cursor so the walk does not collapse
		// into the short cycle of a fixed functional graph (a pure
		// val->next map on 8K nodes has an expected cycle of only
		// ~sqrt(8K) nodes, which would fit in the L1).
		a.op3(isa.OpAdd, rV, rV, regEntIdx)
		a.opImm(isa.OpAndi, rV, rV, 8191)
		if shift > 0 {
			a.opImm(isa.OpSlli, rV, rV, shift)
		}
		a.opImm(isa.OpLui, regChase, 0, int32(base>>LuiShift))
		a.op3(isa.OpAdd, regChase, regChase, rV)
		n += 5
	}
	return n
}

// emitHeapMemOp emits a two-instruction heap access: lui materializes an
// 8 KB-aligned chunk base, then a load or store with a random word offset.
// The chunk is chosen from the benchmark's heap extent, so HeapKB directly
// sets the data working set.
func (g *gen) emitHeapMemOp(pick func() isa.Reg, scratch func() isa.Reg, record func(isa.Reg)) {
	a := g.a
	chunk := g.rng.Intn(g.heapChunks)
	base := uint32(DataBase+heapDataOff) + uint32(chunk)<<LuiShift
	a.opImm(isa.OpLui, regT1, 0, int32(base>>LuiShift))
	off := int32(g.rng.Intn(2048) * 4)
	switch g.rng.Intn(3) {
	case 0: // load
		rd := scratch()
		a.opImm(isa.OpLw, rd, regT1, off)
		record(rd)
	case 1: // store
		a.emit(isa.Inst{Op: isa.OpSw, Rs1: regT1, Rs2: pick(), Imm: off})
	default: // FP load (keeps the FP side fed with memory traffic)
		fd := isa.FPBase + isa.Reg(g.rng.Intn(isa.NumFPRegs))
		a.opImm(isa.OpLf, fd, regT1, off)
	}
}
