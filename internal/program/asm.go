package program

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// asm is a tiny two-pass assembler: the generator emits instructions with
// symbolic labels, and link() resolves branch offsets, jump targets and
// data-segment fixups once layout is final.
type asm struct {
	insts  []isa.Inst
	labels map[string]int // label -> instruction index
	fixups []fixup

	// dataFixups patch absolute code addresses into the data segment
	// (jump tables, indirect-call tables) after layout.
	dataFixups []dataFixup
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // PC-relative conditional branch offset
	fixJump                    // absolute word target (j/jal)
)

type fixup struct {
	index int    // instruction to patch
	label string // target label
	kind  fixupKind
}

type dataFixup struct {
	dataOff int    // word offset within the data segment
	label   string // code label whose byte address is stored
}

func newAsm() *asm {
	return &asm{labels: make(map[string]int)}
}

// pc returns the index the next emitted instruction will occupy.
func (a *asm) pc() int { return len(a.insts) }

// label binds name to the current position.
func (a *asm) label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	a.labels[name] = a.pc()
}

// emit appends a fully-formed instruction.
func (a *asm) emit(in isa.Inst) { a.insts = append(a.insts, in) }

func (a *asm) op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (a *asm) opImm(op isa.Op, rd, rs1 isa.Reg, imm int32) {
	a.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// branch emits a conditional branch to label (offset patched at link time).
func (a *asm) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	a.fixups = append(a.fixups, fixup{index: a.pc(), label: label, kind: fixBranch})
	a.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// jump emits a direct jump (OpJ) or call (OpJal) to label.
func (a *asm) jump(op isa.Op, label string) {
	a.fixups = append(a.fixups, fixup{index: a.pc(), label: label, kind: fixJump})
	a.emit(isa.Inst{Op: op})
}

// loadAddr materializes a full 32-bit address into rd using lui+ori.
func (a *asm) loadAddr(rd isa.Reg, addr uint32) {
	if addr>>LuiShift > 8191 {
		panic(fmt.Sprintf("asm: address %#x not materializable", addr))
	}
	a.opImm(isa.OpLui, rd, 0, int32(addr>>LuiShift))
	if low := int32(addr & (1<<LuiShift - 1)); low != 0 {
		a.opImm(isa.OpOri, rd, rd, low)
	}
}

// loadConst materializes a small constant (|c| <= 8191) into rd.
func (a *asm) loadConst(rd isa.Reg, c int32) {
	a.opImm(isa.OpAddi, rd, isa.RegZero, c)
}

// tableWord reserves a jump-table slot at the given data word offset that
// will hold the byte address of label after linking.
func (a *asm) tableWord(dataOff int, label string) {
	a.dataFixups = append(a.dataFixups, dataFixup{dataOff: dataOff, label: label})
}

// link resolves all fixups. Branch offsets are in instructions relative to
// the instruction after the branch (matching isa semantics); jump targets
// are absolute word addresses.
func (a *asm) link(data []byte) error {
	for _, f := range a.fixups {
		tgt, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("asm: undefined label %q", f.label)
		}
		in := &a.insts[f.index]
		switch f.kind {
		case fixBranch:
			off := tgt - (f.index + 1)
			if off < -8192 || off > 8191 {
				return fmt.Errorf("asm: branch to %q out of range (%d)", f.label, off)
			}
			in.Imm = int32(off)
		case fixJump:
			in.Imm = int32(CodeBase/isa.InstBytes + tgt)
		}
	}
	for _, df := range a.dataFixups {
		tgt, ok := a.labels[df.label]
		if !ok {
			return fmt.Errorf("asm: undefined table label %q", df.label)
		}
		addr := uint32(CodeBase + tgt*isa.InstBytes)
		off := df.dataOff
		if off+4 > len(data) {
			return fmt.Errorf("asm: table fixup at %d beyond data segment", off)
		}
		data[off] = byte(addr)
		data[off+1] = byte(addr >> 8)
		data[off+2] = byte(addr >> 16)
		data[off+3] = byte(addr >> 24)
	}
	return nil
}
