package program

import (
	"testing"
	"testing/quick"

	"github.com/parallel-frontend/pfe/internal/isa"
)

func TestBuildDeterminism(t *testing.T) {
	a := MustBuild(TestSpec())
	b := MustBuild(TestSpec())
	if a.NumInsts() != b.NumInsts() {
		t.Fatalf("sizes differ: %d vs %d", a.NumInsts(), b.NumInsts())
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("data byte %d differs", i)
		}
	}
}

func TestBuildSeedSensitivity(t *testing.T) {
	s1 := TestSpec()
	s2 := TestSpec()
	s2.Seed++
	a, b := MustBuild(s1), MustBuild(s2)
	if a.NumInsts() == b.NumInsts() {
		same := true
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical programs")
		}
	}
}

func TestCheckSpecRejections(t *testing.T) {
	base := TestSpec()
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Workers = 0 },
		func(s *Spec) { s.Helpers = 0 },
		func(s *Spec) { s.Phases = 0 },
		func(s *Spec) { s.WorkersPerPhase = 0 },
		func(s *Spec) { s.PhaseIters = 0 },
		func(s *Spec) { s.PhaseIters = 9000 },
		func(s *Spec) { s.SwitchWays = 3 },
		func(s *Spec) { s.BlockLen = [2]int{0, 4} },
		func(s *Spec) { s.BlockLen = [2]int{5, 4} },
		func(s *Spec) { s.LoopTrip = [2]int{0, 4} },
		func(s *Spec) { s.LoopTrip = [2]int{4, 9000} },
		func(s *Spec) { s.HeapKB = 4 },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if _, err := Build(s); err == nil {
			t.Errorf("case %d: malformed spec accepted", i)
		}
	}
}

func TestScaled(t *testing.T) {
	s := TestSpec()
	s.PhaseIters = 100
	if got := s.Scaled(0.5).PhaseIters; got != 50 {
		t.Errorf("Scaled(0.5) = %d", got)
	}
	if got := s.Scaled(0).PhaseIters; got != 1 {
		t.Errorf("Scaled(0) must clamp to 1, got %d", got)
	}
}

func TestInstAtBounds(t *testing.T) {
	p := MustBuild(TestSpec())
	if _, ok := p.InstAt(CodeBase); !ok {
		t.Error("entry instruction missing")
	}
	if _, ok := p.InstAt(CodeBase - 4); ok {
		t.Error("below code base must fail")
	}
	if _, ok := p.InstAt(CodeBase + 2); ok {
		t.Error("unaligned PC must fail")
	}
	end := CodeBase + uint64(p.NumInsts()*isa.InstBytes)
	if _, ok := p.InstAt(end); ok {
		t.Error("past-the-end PC must fail")
	}
}

func TestReservedRegistersRespected(t *testing.T) {
	// The generator's contract: generated code never writes the entropy
	// base register (r26), and writes r27 only via the entropy-advance
	// idiom (addi/andi), never as a scratch destination.
	p := MustBuild(TestSpec())
	for i, in := range p.Code {
		rd, ok := in.Dest()
		if !ok {
			continue
		}
		if rd == regEntBase && in.Op != isa.OpLui && in.Op != isa.OpOri {
			t.Fatalf("instruction %d (%v) writes the entropy base", i, in)
		}
		if rd == regEntIdx && in.Op != isa.OpAddi && in.Op != isa.OpAndi {
			t.Fatalf("instruction %d (%v) writes the entropy index", i, in)
		}
	}
}

func TestStaticMixMatchesSpec(t *testing.T) {
	spec := TestSpec()
	spec.Workers, spec.Helpers = 20, 6
	spec.FPFrac = 0.2
	p := MustBuild(spec)
	mix := p.StaticMix()
	total := 0
	for _, n := range mix {
		total += n
	}
	if total != p.NumInsts() {
		t.Fatalf("mix total %d != %d instructions", total, p.NumInsts())
	}
	if mix[isa.ClassFPAdd]+mix[isa.ClassFPMul] == 0 {
		t.Error("FPFrac 0.2 produced no FP instructions")
	}
	if mix[isa.ClassLoadStore] == 0 {
		t.Error("no memory instructions generated")
	}
}

func TestSuiteSpecsAreValid(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Suite() {
		if names[s.Name] {
			t.Errorf("duplicate benchmark %s", s.Name)
		}
		names[s.Name] = true
		if err := checkSpec(s); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if len(names) != 12 {
		t.Errorf("suite has %d benchmarks", len(names))
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("gcc")
	if err != nil || s.Name != "gcc" {
		t.Errorf("SpecByName(gcc) = %v, %v", s.Name, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestGeneratedProgramsValidate is a property over random specs: any spec
// accepted by checkSpec must produce a structurally valid program (all
// control transfers in range, image round-trips).
func TestGeneratedProgramsValidate(t *testing.T) {
	f := func(seed int64, w, h uint8) bool {
		spec := TestSpec()
		spec.Seed = seed
		spec.Workers = int(w%20) + 1
		spec.Helpers = int(h%8) + 1
		if spec.WorkersPerPhase > spec.Workers {
			spec.WorkersPerPhase = spec.Workers
		}
		p, err := Build(spec)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCodeFootprintScalesWithWorkers(t *testing.T) {
	small := TestSpec()
	small.Workers, small.Helpers = 5, 2
	large := TestSpec()
	large.Workers, large.Helpers = 50, 10
	ps, pl := MustBuild(small), MustBuild(large)
	if pl.CodeBytes() < 4*ps.CodeBytes() {
		t.Errorf("footprint scaling: %d -> %d bytes", ps.CodeBytes(), pl.CodeBytes())
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := newAsm()
	a.jump(isa.OpJ, "nowhere")
	if err := a.link(nil); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestAsmDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label must panic")
		}
	}()
	a := newAsm()
	a.label("x")
	a.label("x")
}

func TestAsmBranchRange(t *testing.T) {
	a := newAsm()
	a.label("start")
	a.branch(isa.OpBne, 1, 0, "start")
	for i := 0; i < 9000; i++ {
		a.op3(isa.OpAdd, 1, 1, 2)
	}
	a.branch(isa.OpBne, 1, 0, "start") // out of 14-bit range
	if err := a.link(nil); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestAsmLoadAddrPanicsOnHugeAddress(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unmaterializable address must panic")
		}
	}()
	a := newAsm()
	a.loadAddr(1, 1<<27)
}

func TestEntropyFillDistribution(t *testing.T) {
	data := make([]byte, EntropySize)
	fillEntropy(data, 12345)
	var sum, n float64
	for off := 0; off+4 <= len(data); off += 4 {
		v := uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
		if v >= 8192 {
			t.Fatalf("entropy word %d out of range", v)
		}
		sum += float64(v)
		n++
	}
	mean := sum / n
	if mean < 3500 || mean > 4700 {
		t.Errorf("entropy mean %v far from 4096", mean)
	}
}
