package program

import "fmt"

// Suite returns the specs for the twelve SPEC CPU2000 integer stand-ins, in
// the paper's Table 2 order. Each spec is calibrated toward its benchmark's
// published characteristics:
//
//   - average fragment size (Table 2: 9.04 for mcf up to 12.79 for bzip2),
//     driven mainly by BlockLen and the density of returns/switches;
//   - instruction footprint — crafty, gcc, perl and vortex exceed 64 KB so
//     they gain from doubling the L1 instruction storage (Fig 8/9);
//   - control predictability (BranchBias), with mcf/parser hardest;
//   - indirect-branch density (SwitchFrac, IndirectCallFrac), highest for
//     gcc and perl.
//
// The "Input" strings record which input set the paper used; they are
// descriptive only.
func Suite() []Spec {
	return []Spec{
		{
			Name: "bzip2", Input: "test", Seed: 1001,
			Workers: 40, Helpers: 10,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{6, 10}, LoopTrip: [2]int{3, 10},
			LoopFrac: 0.18, HammockFrac: 0.30, CallFrac: 0.18,
			BranchBias: 0.90, SwitchFrac: 0.06, SwitchWays: 4,
			MemFrac: 0.26, FPFrac: 0.0, MulFrac: 0.03,
			Phases: 5, WorkersPerPhase: 22, PhaseStride: 5, PhaseIters: 2000,
			HeapKB: 256,
		},
		{
			Name: "crafty", Input: "test", Seed: 1002,
			Workers: 190, Helpers: 30,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{5, 9}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.16, HammockFrac: 0.36, CallFrac: 0.15,
			BranchBias: 0.85, SwitchFrac: 0.15, SwitchWays: 8,
			MemFrac: 0.25, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 10, WorkersPerPhase: 38, PhaseStride: 19, PhaseIters: 1200,
			HeapKB: 512,
		},
		{
			Name: "eon", Input: "train (cook)", Seed: 1003,
			Workers: 110, Helpers: 24,
			Constructs: [2]int{4, 7}, BlockLen: [2]int{4, 7}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.18, HammockFrac: 0.30, CallFrac: 0.28,
			BranchBias: 0.90, SwitchFrac: 0.08, SwitchWays: 4,
			MemFrac: 0.24, FPFrac: 0.16, MulFrac: 0.04,
			Phases: 6, WorkersPerPhase: 28, PhaseStride: 16, PhaseIters: 1500,
			HeapKB: 256,
		},
		{
			Name: "gap", Input: "test", Seed: 1004,
			Workers: 85, Helpers: 20,
			Constructs: [2]int{4, 7}, BlockLen: [2]int{4, 7}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.18, HammockFrac: 0.32, CallFrac: 0.26,
			BranchBias: 0.82, SwitchFrac: 0.12, SwitchWays: 8,
			MemFrac: 0.27, FPFrac: 0.0, MulFrac: 0.05,
			Phases: 6, WorkersPerPhase: 26, PhaseStride: 14, PhaseIters: 1500,
			HeapKB: 512,
		},
		{
			Name: "gcc", Input: "test", Seed: 1005,
			Workers: 400, Helpers: 60,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{3, 7}, LoopTrip: [2]int{2, 6},
			LoopFrac: 0.14, HammockFrac: 0.38, CallFrac: 0.20,
			BranchBias: 0.78, SwitchFrac: 0.35, SwitchWays: 8,
			MemFrac: 0.26, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 12, WorkersPerPhase: 45, PhaseStride: 33, PhaseIters: 800,
			HeapKB: 1024,
		},
		{
			Name: "gzip", Input: "test", Seed: 1006,
			Workers: 35, Helpers: 8,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{6, 9}, LoopTrip: [2]int{3, 12},
			LoopFrac: 0.20, HammockFrac: 0.28, CallFrac: 0.14,
			BranchBias: 0.88, SwitchFrac: 0.05, SwitchWays: 4,
			MemFrac: 0.26, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 4, WorkersPerPhase: 20, PhaseStride: 5, PhaseIters: 2500,
			HeapKB: 192,
		},
		{
			Name: "mcf", Input: "train", Seed: 1007,
			Workers: 30, Helpers: 14,
			Constructs: [2]int{3, 6}, HelperConstructs: [2]int{0, 1}, BlockLen: [2]int{2, 4}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.14, HammockFrac: 0.20, CallFrac: 0.66,
			BranchBias: 0.68, SwitchFrac: 0.60, SwitchWays: 4,
			MemFrac: 0.34, FPFrac: 0.0, MulFrac: 0.02,
			ChaseFrac: 0.065, ChaseDepth: 2,
			Phases: 4, WorkersPerPhase: 16, PhaseStride: 5, PhaseIters: 2500,
			HeapKB: 2048,
		},
		{
			Name: "parser", Input: "test", Seed: 1008,
			Workers: 70, Helpers: 16,
			Constructs: [2]int{3, 7}, HelperConstructs: [2]int{0, 1}, BlockLen: [2]int{2, 5}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.16, HammockFrac: 0.30, CallFrac: 0.40,
			BranchBias: 0.72, SwitchFrac: 0.40, SwitchWays: 8,
			MemFrac: 0.28, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 6, WorkersPerPhase: 22, PhaseStride: 12, PhaseIters: 1500,
			HeapKB: 384,
		},
		{
			Name: "perl", Input: "train (diffmail)", Seed: 1009,
			Workers: 250, Helpers: 40,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{4, 8}, LoopTrip: [2]int{2, 6},
			LoopFrac: 0.14, HammockFrac: 0.34, CallFrac: 0.16,
			BranchBias: 0.80, SwitchFrac: 0.30, SwitchWays: 16,
			IndirectCallFrac: 0.30,
			MemFrac:          0.27, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 10, WorkersPerPhase: 35, PhaseStride: 25, PhaseIters: 1000,
			HeapKB: 512,
		},
		{
			Name: "twolf", Input: "train", Seed: 1010,
			Workers: 80, Helpers: 18,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{6, 9}, LoopTrip: [2]int{2, 10},
			LoopFrac: 0.18, HammockFrac: 0.32, CallFrac: 0.20,
			BranchBias: 0.80, SwitchFrac: 0.10, SwitchWays: 4,
			MemFrac: 0.27, FPFrac: 0.06, MulFrac: 0.04,
			Phases: 6, WorkersPerPhase: 24, PhaseStride: 13, PhaseIters: 1500,
			HeapKB: 384,
		},
		{
			Name: "vortex", Input: "test", Seed: 1011,
			Workers: 300, Helpers: 45,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{5, 8}, LoopTrip: [2]int{2, 8},
			LoopFrac: 0.16, HammockFrac: 0.32, CallFrac: 0.30,
			BranchBias: 0.93, SwitchFrac: 0.12, SwitchWays: 8,
			MemFrac: 0.30, FPFrac: 0.0, MulFrac: 0.02,
			Phases: 10, WorkersPerPhase: 42, PhaseStride: 30, PhaseIters: 1000,
			HeapKB: 768,
		},
		{
			Name: "vpr", Input: "train (place)", Seed: 1012,
			Workers: 55, Helpers: 14,
			Constructs: [2]int{4, 8}, BlockLen: [2]int{6, 9}, LoopTrip: [2]int{2, 10},
			LoopFrac: 0.20, HammockFrac: 0.30, CallFrac: 0.14,
			BranchBias: 0.85, SwitchFrac: 0.08, SwitchWays: 4,
			MemFrac: 0.26, FPFrac: 0.12, MulFrac: 0.04,
			Phases: 5, WorkersPerPhase: 26, PhaseStride: 8, PhaseIters: 1800,
			HeapKB: 256,
		},
	}
}

// SuiteNames returns the benchmark names in suite order.
func SuiteNames() []string {
	specs := Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SpecByName returns the suite spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("program: no benchmark named %q", name)
}

// TestSpec returns a miniature benchmark that runs to completion in well
// under 100 K dynamic instructions; unit tests across the repository use it
// to exercise whole-program paths quickly.
func TestSpec() Spec {
	return Spec{
		Name: "tiny", Input: "unit-test", Seed: 99,
		Workers: 6, Helpers: 3,
		Constructs: [2]int{2, 4}, BlockLen: [2]int{3, 6}, LoopTrip: [2]int{2, 5},
		LoopFrac: 0.3, HammockFrac: 0.35, CallFrac: 0.15,
		BranchBias: 0.8, SwitchFrac: 0.3, SwitchWays: 4,
		IndirectCallFrac: 0.2,
		MemFrac:          0.25, FPFrac: 0.05, MulFrac: 0.03,
		Phases: 2, WorkersPerPhase: 4, PhaseStride: 2, PhaseIters: 3,
		HeapKB: 16,
	}
}
