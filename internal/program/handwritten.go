package program

import (
	"fmt"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// FromInsts links a hand-written instruction sequence into a runnable
// Program: the instructions are placed at CodeBase, a data segment of
// dataKB kilobytes (minimum the entropy region) is zero-initialized, and
// entry is the first instruction. Tests use it for exact-semantics checks;
// tools can use it to run micro-kernels on the simulator.
//
// The sequence must be self-contained: direct jumps use absolute word
// targets (CodeBase/4 + index), conditional branches instruction-relative
// offsets, exactly as isa documents. FromInsts validates the result the
// same way the generator does.
func FromInsts(name string, insts []isa.Inst, dataKB int) (*Program, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("program: %s: no instructions", name)
	}
	img, err := isa.EncodeAll(insts)
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", name, err)
	}
	if dataKB < heapDataOff/1024+8 {
		dataKB = heapDataOff/1024 + 8
	}
	code := make([]isa.Inst, len(insts))
	copy(code, insts)
	p := &Program{
		Name:     name,
		Input:    "hand-written",
		Code:     code,
		Image:    img,
		EntryPC:  CodeBase,
		Data:     make([]byte, dataKB*1024),
		DataSize: dataKB * 1024,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WordTarget converts an instruction index into the absolute word target
// used by direct jumps and calls.
func WordTarget(index int) int32 {
	return int32(CodeBase/isa.InstBytes + index)
}
