package program

import (
	"testing"

	"github.com/parallel-frontend/pfe/internal/isa"
)

// clampSpec maps arbitrary fuzz-chosen parameters into a Spec that satisfies
// checkSpec, preserving as much of the fuzzer's choice as possible.
func clampSpec(seed int64, workers, helpers, blockLo, blockSpan, tripLo, tripSpan,
	switchLog2, phases, wpp, iters, heapKB int,
	loopFrac, hammockFrac, callFrac, branchBias, switchFrac, memFrac, fpFrac float64) Spec {

	clampInt := func(v, lo, hi int) int {
		if v < lo {
			v = lo + (lo-v)%(hi-lo+1)
		}
		if v > hi {
			v = lo + (v-lo)%(hi-lo+1)
		}
		return v
	}
	clampFrac := func(v float64) float64 {
		if v != v || v < 0 { // NaN or negative
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}

	blockLo = clampInt(blockLo, 1, 8)
	tripLo = clampInt(tripLo, 1, 16)
	return Spec{
		Name: "fuzz", Input: "fuzz", Seed: seed,
		Workers:  clampInt(workers, 1, 8),
		Helpers:  clampInt(helpers, 1, 4),
		BlockLen: [2]int{blockLo, blockLo + clampInt(blockSpan, 0, 8)},
		LoopTrip: [2]int{tripLo, tripLo + clampInt(tripSpan, 0, 16)},

		LoopFrac:    clampFrac(loopFrac),
		HammockFrac: clampFrac(hammockFrac),
		CallFrac:    clampFrac(callFrac),
		BranchBias:  clampFrac(branchBias),
		SwitchFrac:  clampFrac(switchFrac),
		SwitchWays:  1 << clampInt(switchLog2, 1, 4),
		MemFrac:     clampFrac(memFrac),
		FPFrac:      clampFrac(fpFrac),

		Phases:          clampInt(phases, 1, 3),
		WorkersPerPhase: clampInt(wpp, 1, 6),
		PhaseIters:      clampInt(iters, 1, 8),
		HeapKB:          clampInt(heapKB, 8, 64),
	}
}

// FuzzProgramAsm drives the program generator with fuzz-chosen parameters
// and checks the structural contract of every generated program: Validate
// passes, the code image round-trips through the encoder, and every direct
// control transfer lands inside the image.
func FuzzProgramAsm(f *testing.F) {
	// Seed with the miniature test benchmark and a few variants of it.
	ts := TestSpec()
	f.Add(ts.Seed, ts.Workers, ts.Helpers, ts.BlockLen[0], ts.BlockLen[1]-ts.BlockLen[0],
		ts.LoopTrip[0], ts.LoopTrip[1]-ts.LoopTrip[0], 2, ts.Phases, ts.WorkersPerPhase,
		ts.PhaseIters, ts.HeapKB,
		ts.LoopFrac, ts.HammockFrac, ts.CallFrac, ts.BranchBias, ts.SwitchFrac,
		ts.MemFrac, ts.FPFrac)
	f.Add(int64(7), 2, 1, 1, 2, 1, 3, 1, 1, 2, 2, 8,
		0.5, 0.5, 0.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(int64(-3), 8, 4, 6, 0, 4, 0, 4, 3, 6, 4, 32,
		0.0, 0.0, 0.9, 0.2, 1.0, 0.6, 0.4)

	f.Fuzz(func(t *testing.T, seed int64, workers, helpers, blockLo, blockSpan,
		tripLo, tripSpan, switchLog2, phases, wpp, iters, heapKB int,
		loopFrac, hammockFrac, callFrac, branchBias, switchFrac, memFrac, fpFrac float64) {

		spec := clampSpec(seed, workers, helpers, blockLo, blockSpan, tripLo, tripSpan,
			switchLog2, phases, wpp, iters, heapKB,
			loopFrac, hammockFrac, callFrac, branchBias, switchFrac, memFrac, fpFrac)
		p, err := Build(spec)
		if err != nil {
			t.Fatalf("Build rejected clamped spec %+v: %v", spec, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated program fails Validate: %v", err)
		}

		// Round-trip: re-encode the decoded instructions and compare
		// against the linked image byte for byte, then decode the image
		// and compare instruction for instruction.
		img, err := isa.EncodeAll(p.Code)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(img) != len(p.Image) {
			t.Fatalf("re-encoded image %d bytes, original %d", len(img), len(p.Image))
		}
		for i := range img {
			if img[i] != p.Image[i] {
				t.Fatalf("image byte %d differs after round-trip: %#x vs %#x", i, img[i], p.Image[i])
			}
		}
		back := isa.DecodeImage(p.Image)
		for i := range back {
			if back[i] != p.Code[i] {
				t.Fatalf("instruction %d differs after round-trip: %v vs %v", i, back[i], p.Code[i])
			}
		}
	})
}
