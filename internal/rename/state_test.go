package rename

import (
	"bytes"
	"testing"

	"github.com/parallel-frontend/pfe/internal/frag"
)

func warmLiveOut(t *testing.T) *LiveOutPredictor {
	t.Helper()
	lp := NewLiveOutPredictor(LiveOutPredictorConfig{Entries: 256, Ways: 2, TagBits: 4})
	for i := 0; i < 1500; i++ {
		id := frag.ID{StartPC: uint64(i%61) * 24, BrMask: uint32(i % 9), NumBr: uint8(i % 4)}
		lp.Predict(id)
		lp.Train(id, LiveOuts{RegMask: uint64(i) * 0x9e37, LastWrite: uint32(i % 16)})
	}
	return lp
}

func TestLiveOutStateRoundTrip(t *testing.T) {
	lp := warmLiveOut(t)
	snap := lp.AppendState(nil)

	fresh := NewLiveOutPredictor(LiveOutPredictorConfig{Entries: 256, Ways: 2, TagBits: 4})
	rest, err := fresh.LoadState(snap)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("LoadState left %d bytes", len(rest))
	}
	if !bytes.Equal(fresh.AppendState(nil), snap) {
		t.Fatal("re-snapshot differs from original")
	}
	// Restored predictor must answer identically going forward.
	for i := 0; i < 400; i++ {
		id := frag.ID{StartPC: uint64(i%53) * 24, BrMask: uint32(i % 6), NumBr: uint8(i % 3)}
		al, aok := lp.Predict(id)
		bl, bok := fresh.Predict(id)
		if al != bl || aok != bok {
			t.Fatalf("post-restore prediction diverges at %d", i)
		}
		lo := LiveOuts{RegMask: uint64(i), LastWrite: uint32(i % 8)}
		lp.Train(id, lo)
		fresh.Train(id, lo)
	}
}

func TestLiveOutStateSizeMismatch(t *testing.T) {
	snap := warmLiveOut(t).AppendState(nil)
	other := NewLiveOutPredictor(LiveOutPredictorConfig{Entries: 512, Ways: 2, TagBits: 4})
	if _, err := other.LoadState(snap); err == nil {
		t.Fatal("expected error loading snapshot into differently sized predictor")
	}
	fresh := NewLiveOutPredictor(LiveOutPredictorConfig{Entries: 256, Ways: 2, TagBits: 4})
	if _, err := fresh.LoadState(snap[:len(snap)-3]); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}
