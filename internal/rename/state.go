package rename

import (
	"encoding/binary"
	"fmt"
)

// State serialization for the live-out predictor (deterministic fixed-width
// little-endian), so warmed tables can travel inside pfe's warm-state
// artifacts. Snapshots only load into an identically configured predictor.

// AppendState appends the table contents and counters to b.
func (lp *LiveOutPredictor) AppendState(b []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(lp.entries)))
	for _, e := range lp.entries {
		var v byte
		if e.valid {
			v = 1
		}
		b = append(b, v)
		b = binary.LittleEndian.AppendUint16(b, e.tag)
		b = binary.LittleEndian.AppendUint64(b, e.lo.RegMask)
		b = binary.LittleEndian.AppendUint32(b, e.lo.LastWrite)
		b = binary.LittleEndian.AppendUint64(b, e.lru)
	}
	b = binary.LittleEndian.AppendUint64(b, lp.stamp)
	b = binary.LittleEndian.AppendUint64(b, uint64(lp.lookups))
	return binary.LittleEndian.AppendUint64(b, uint64(lp.hits))
}

// LoadState restores a snapshot written by AppendState, returning the
// remaining bytes.
func (lp *LiveOutPredictor) LoadState(b []byte) ([]byte, error) {
	const w = 1 + 2 + 8 + 4 + 8
	if len(b) < 4 {
		return nil, fmt.Errorf("rename: truncated live-out predictor state")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n != len(lp.entries) {
		return nil, fmt.Errorf("rename: live-out state has %d entries, predictor has %d", n, len(lp.entries))
	}
	if len(b) < n*w+8*3 {
		return nil, fmt.Errorf("rename: truncated live-out predictor state")
	}
	for i := range lp.entries {
		lp.entries[i] = loEntry{
			valid: b[0] != 0,
			tag:   binary.LittleEndian.Uint16(b[1:]),
			lo: LiveOuts{
				RegMask:   binary.LittleEndian.Uint64(b[3:]),
				LastWrite: binary.LittleEndian.Uint32(b[11:]),
			},
			lru: binary.LittleEndian.Uint64(b[15:]),
		}
		b = b[w:]
	}
	lp.stamp = binary.LittleEndian.Uint64(b)
	lp.lookups = int64(binary.LittleEndian.Uint64(b[8:]))
	lp.hits = int64(binary.LittleEndian.Uint64(b[16:]))
	return b[24:], nil
}
